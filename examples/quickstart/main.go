// Quickstart: build a 500-node static network, select contacts, and
// discover a resource — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"card"
)

func main() {
	// The paper's workhorse scenario: 500 nodes over 710x710 m, 50 m radio
	// range (Table 1, scenario 5).
	sim, err := card.NewSimulation(card.NetworkConfig{
		Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 42,
	}, card.Config{
		R:              3,  // proactive neighborhood radius (hops)
		MaxContactDist: 16, // contacts live between 2R and r hops away
		NoC:            5,  // contacts per node
		Depth:          2,  // query escalation: contacts, then contacts of contacts
	})
	if err != nil {
		log.Fatal(err)
	}

	added := sim.SelectContacts()
	fmt.Printf("selected %d contacts across %d nodes\n", added, sim.Nodes())
	fmt.Printf("mean reachability: %.1f%% at D=1, %.1f%% at D=2\n",
		sim.MeanReachability(1), sim.MeanReachability(2))

	// Inspect one node's contact table.
	src, dst := sim.RandomPair(7)
	fmt.Printf("\nnode %d's contacts:\n", src)
	for _, c := range sim.Contacts(src) {
		fmt.Printf("  contact %4d at %d hops (route %v...)\n", c.ID, c.Hops(), c.Path[:3])
	}

	// Discover a resource held by a random distant node.
	res := sim.Query(src, dst)
	if res.Found {
		fmt.Printf("\nquery %d -> %d: found at contact level %d, %d-hop path, %d control msgs\n",
			src, dst, res.Depth, res.PathHops, res.Messages)
	} else {
		fmt.Printf("\nquery %d -> %d: not found within depth %d (%d control msgs)\n",
			src, dst, sim.Config().Depth, res.Messages)
	}

	// Compare with the flooding baseline on the same pair.
	_, floodMsgs := sim.FloodQuery(src, dst)
	fmt.Printf("flooding the same query costs %d msgs\n", floodMsgs)
}
