// Sensorfield: resource discovery in a large static sensor network — the
// paper's motivating deployment where mobility-assisted schemes do not
// apply (§II) and energy per transmitted message is the budget that
// matters.
//
// A field of 900 sensors holds a handful of "sink" resources. Every sensor
// occasionally needs to find the nearest sink. The example compares the
// total control traffic of CARD against flooding and bordercasting for the
// same workload, then prints the energy story per discovery.
package main

import (
	"fmt"
	"log"

	"card"
)

func main() {
	const (
		sensors = 900
		side    = 950.0 // meters; density comparable to Table 1 scenario 8
		sinks   = 5
		lookups = 200
	)
	// Tuning follows the paper's Fig. 9 recipe for ~1000-node networks:
	// grow R and NoC with N so that depth-1/2 queries already cover most
	// of the field and deep (expensive) escalations stay rare.
	sim, err := card.NewSimulation(card.NetworkConfig{
		Nodes: sensors, Width: side, Height: side, TxRange: 50, Seed: 99,
	}, card.Config{
		R:              5,
		MaxContactDist: 22,
		NoC:            8,
		Depth:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := sim.TopologyCensus()
	fmt.Printf("sensor field: %d nodes, %d links, diameter %d hops, %.0f%% connected\n",
		sensors, c.Links, c.Diameter, c.LargestCompPct)

	// One-time cost: contact setup.
	sim.SelectContacts()
	setup := sim.Messages()
	fmt.Printf("contact setup: %.1f msgs/sensor (one-time)\n\n", setup.TotalPerNode)

	// The sinks are the resources; each lookup asks a random sensor to
	// find a random sink.
	var sinkIDs []card.NodeID
	for i := 0; i < sinks; i++ {
		_, s := sim.RandomPair(uint64(500 + i))
		sinkIDs = append(sinkIDs, s)
	}

	var pairs []card.Pair
	for i := 0; i < lookups; i++ {
		src, _ := sim.RandomPair(uint64(1000 + i))
		sink := sinkIDs[i%len(sinkIDs)]
		if src == sink {
			continue
		}
		pairs = append(pairs, card.Pair{Src: src, Dst: sink})
	}
	// CARD lookups are pure reads of the standing contact tables, so the
	// whole workload fans across cores in one batch.
	var cardMsgs, floodMsgs, bcMsgs int64
	cardHit, floodHit, bcHit := 0, 0, 0
	for _, res := range sim.BatchQuery(pairs) {
		cardMsgs += res.Messages
		if res.Found {
			cardHit++
		}
	}
	for _, p := range pairs {
		okF, fm := sim.FloodQuery(p.Src, p.Dst)
		floodMsgs += fm
		if okF {
			floodHit++
		}
		okB, bm, err := sim.BordercastQuery(p.Src, p.Dst)
		if err != nil {
			log.Fatal(err)
		}
		bcMsgs += bm
		if okB {
			bcHit++
		}
	}

	fmt.Printf("%d sink lookups from random sensors:\n", lookups)
	fmt.Printf("  %-14s %9s %9s\n", "scheme", "msgs", "success")
	fmt.Printf("  %-14s %9d %8d%%\n", "CARD", cardMsgs, 100*cardHit/lookups)
	fmt.Printf("  %-14s %9d %8d%%\n", "flooding", floodMsgs, 100*floodHit/lookups)
	fmt.Printf("  %-14s %9d %8d%%\n", "bordercasting", bcMsgs, 100*bcHit/lookups)

	// Energy story: setup is one-time, lookups recur for the lifetime of
	// the field. Report the break-even point after which CARD's total
	// (setup + queries) undercuts flooding.
	cardPer := float64(cardMsgs) / lookups
	floodPer := float64(floodMsgs) / lookups
	setupTotal := setup.TotalPerNode * sensors
	if floodPer > cardPer {
		breakeven := setupTotal / (floodPer - cardPer)
		fmt.Printf("\nper lookup: CARD %.0f msgs vs flooding %.0f; one-time setup %.0f msgs\n",
			cardPer, floodPer, setupTotal)
		fmt.Printf("CARD's setup pays for itself after ~%.0f lookups — weeks, not years,\n", breakeven)
		fmt.Println("for a sensor field answering queries continuously")
	}
}
