// Rescue: a mobile search-and-rescue network — the paper's dynamic
// deployment. 250 responders move under random-waypoint mobility; the
// contact architecture must survive link churn through periodic validation
// and local recovery while the mission keeps querying for role-holders
// (medic, relay, command).
package main

import (
	"fmt"
	"log"

	"card"
)

func main() {
	sim, err := card.NewSimulation(card.NetworkConfig{
		Nodes: 250, Width: 710, Height: 710, TxRange: 50,
		Mobility: card.RandomWaypoint,
		MinSpeed: 1, MaxSpeed: 10, // people and vehicles, not aircraft
		Seed: 2026,
	}, card.Config{
		R:              4,
		MaxContactDist: 16,
		NoC:            6,
		Depth:          2,
		ValidatePeriod: 1, // validate contact paths every second
	})
	if err != nil {
		log.Fatal(err)
	}

	sim.SelectContacts()
	fmt.Printf("t=0s: %d responders, initial contact setup done\n", sim.Nodes())

	// Role-holders to be discovered during the mission.
	var roles []card.NodeID
	for i := 0; i < 6; i++ {
		_, r := sim.RandomPair(uint64(40 + i))
		roles = append(roles, r)
	}

	// 20-second mission, reporting every 4 seconds.
	prevLost, prevSplices := int64(0), int64(0)
	for window := 1; window <= 5; window++ {
		sim.Advance(4)
		st := sim.Stats()
		lost := st.ContactsLost - prevLost
		splices := st.Recoveries - prevSplices
		prevLost, prevSplices = st.ContactsLost, st.Recoveries

		var lookups []card.Pair
		for i, role := range roles {
			src, _ := sim.RandomPair(uint64(window*100 + i))
			if src == role {
				continue
			}
			lookups = append(lookups, card.Pair{Src: src, Dst: role})
		}
		found, queries := 0, len(lookups)
		var msgs int64
		for _, res := range sim.BatchQuery(lookups) {
			msgs += res.Messages
			if res.Found {
				found++
			}
		}
		fmt.Printf("t=%2.0fs: reach %.0f%% | window: %2d contacts lost, %2d paths re-spliced | %d/%d role lookups ok (%d msgs)\n",
			sim.Now(), sim.MeanReachability(2), lost, splices, found, queries, msgs)
	}

	st := sim.Stats()
	m := sim.Messages()
	fmt.Printf("\nmission totals: %d contacts selected, %d lost, %d local recoveries (%d recovery failures)\n",
		st.ContactsSelected, st.ContactsLost, st.Recoveries, st.RecoveryFailures)
	fmt.Printf("control traffic per responder: %.1f msgs (%.1f%% validation, %.1f%% selection)\n",
		m.TotalPerNode,
		100*float64(m.Validation+m.Recovery)/float64(m.TotalPerNode*float64(sim.Nodes())),
		100*float64(m.Selection+m.Backtrack)/float64(m.TotalPerNode*float64(sim.Nodes())))
}
