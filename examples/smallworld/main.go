// Smallworld: the paper's §I framing made visible. A dense MANET is a
// highly clustered graph with long characteristic paths; contacts act as
// Watts-Strogatz short cuts, collapsing the degrees of separation a query
// has to cross. The example measures how the view of the network grows as
// contacts and query depth increase.
package main

import (
	"fmt"
	"log"

	"card"
)

func main() {
	const n = 500
	fmt.Println("contacts as small-world short cuts (500 nodes, 710x710 m, 50 m range)")

	// Base graph: clustering and path lengths without any short cuts.
	base, err := card.NewSimulation(card.NetworkConfig{
		Nodes: n, Width: 710, Height: 710, TxRange: 50, Seed: 11,
	}, card.Config{R: 3, MaxContactDist: 12, NoC: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := base.TopologyCensus()
	fmt.Printf("base graph: clustering %.3f, avg path %.1f hops, diameter %d\n",
		c.Clustering, c.AvgHops, c.Diameter)
	fmt.Printf("(high clustering + long paths: a 'large world' before short cuts)\n\n")

	fmt.Printf("%-6s %12s %12s %12s %14s\n", "NoC", "reach D=1", "reach D=2", "reach D=3", "mean contacts")
	for _, noc := range []int{0, 2, 4, 8} {
		sim, err := card.NewSimulation(card.NetworkConfig{
			Nodes: n, Width: 710, Height: 710, TxRange: 50, Seed: 11,
		}, card.Config{R: 3, MaxContactDist: 16, NoC: max(noc, 1), Depth: 3})
		if err != nil {
			log.Fatal(err)
		}
		if noc > 0 {
			sim.SelectContacts()
		}
		total := 0
		for u := card.NodeID(0); int(u) < sim.Nodes(); u++ {
			total += len(sim.Contacts(u))
		}
		fmt.Printf("%-6d %11.1f%% %11.1f%% %11.1f%% %14.2f\n",
			noc,
			sim.MeanReachability(1), sim.MeanReachability(2), sim.MeanReachability(3),
			float64(total)/float64(n))
	}

	fmt.Println("\neach contact level multiplies the visible network: the tree of")
	fmt.Println("short cuts is what lets CARD query without flooding (paper §III.C.4)")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
