module card

go 1.24
