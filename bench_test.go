package card

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, one benchmark per artifact. Benchmarks run the same runners
// as cmd/cardsim at a reduced scale (density-preserving) so the whole
// suite completes in minutes; run cmd/cardsim with -scale 1 for paper-size
// numbers. Key result values are attached to the benchmark output via
// ReportMetric, so `go test -bench` doubles as a regression record of the
// reproduced shapes.

import (
	"runtime"
	"strconv"
	"testing"

	"card/internal/experiments"
)

// benchOpts keeps every figure bench at a size that completes quickly
// while preserving node density and parameter shape.
func benchOpts() experiments.Options {
	return experiments.Options{Seeds: 1, Scale: 0.4}
}

func cell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable1(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunTable1(benchOpts())
	}
	b.ReportMetric(cell(b, t, 4, 5), "scenario5-degree")
	b.ReportMetric(cell(b, t, 4, 7), "scenario5-avg-hops")
}

func BenchmarkFig03(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig3(benchOpts())
	}
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 1), "pm-reach-noc9-%")
	b.ReportMetric(cell(b, t, last, 2), "em-reach-noc9-%")
}

func BenchmarkFig04(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig4(benchOpts())
	}
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 1), "pm-backtracks-node")
	b.ReportMetric(cell(b, t, last, 2), "em-backtracks-node")
}

// distMean computes the weighted mean of a reachability-distribution
// column (bins of 5 %).
func distMean(b *testing.B, t *experiments.Table, col int) float64 {
	var sum, n float64
	for row := range t.Rows {
		mid := 2.5 + 5*float64(row)
		c := cell(b, t, row, col)
		sum += mid * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

func BenchmarkFig05(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig5(benchOpts())
	}
	b.ReportMetric(distMean(b, t, 1), "mean-reach-R1-%")
	b.ReportMetric(distMean(b, t, 4), "mean-reach-R4-%")
	b.ReportMetric(distMean(b, t, 7), "mean-reach-R7-%")
}

func BenchmarkFig06(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig6(benchOpts())
	}
	b.ReportMetric(distMean(b, t, 1), "mean-reach-r2R-%")
	b.ReportMetric(distMean(b, t, 7), "mean-reach-r2R+12-%")
}

func BenchmarkFig07(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig7(benchOpts())
	}
	b.ReportMetric(distMean(b, t, 1), "mean-reach-noc0-%")
	b.ReportMetric(distMean(b, t, 4), "mean-reach-noc6-%")
	b.ReportMetric(distMean(b, t, 7), "mean-reach-noc12-%")
}

func BenchmarkFig08(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig8(benchOpts())
	}
	b.ReportMetric(distMean(b, t, 1), "mean-reach-D1-%")
	b.ReportMetric(distMean(b, t, 3), "mean-reach-D3-%")
}

func BenchmarkFig09(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig9(benchOpts())
	}
	b.ReportMetric(distMean(b, t, 1), "mean-reach-small-%")
	b.ReportMetric(distMean(b, t, 3), "mean-reach-large-%")
}

func BenchmarkFig10(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig10(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 1), "overhead-noc3-t2")
	b.ReportMetric(cell(b, t, 0, 4), "overhead-noc7-t2")
}

func BenchmarkFig11(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig11(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 1), "overhead-r8-t2")
	b.ReportMetric(cell(b, t, 0, 5), "overhead-r15-t2")
}

func BenchmarkFig12(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig12(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 1), "backtrack-r8-t2")
	b.ReportMetric(cell(b, t, 0, 5), "backtrack-r15-t2")
}

func BenchmarkFig13(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig13(benchOpts())
	}
	first, last := 0, len(t.Rows)-1
	b.ReportMetric(cell(b, t, first, 1), "maint-msgs-node-t2")
	b.ReportMetric(cell(b, t, last, 1), "maint-msgs-node-t20")
	b.ReportMetric(cell(b, t, last, 2), "contacts-t20")
}

func BenchmarkFig14(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig14(benchOpts())
	}
	b.ReportMetric(cell(b, t, 5, 3), "norm-reach-noc5")
	b.ReportMetric(cell(b, t, 5, 4), "norm-overhead-noc5")
}

func BenchmarkFig15(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunFig15(benchOpts())
	}
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 1), "flood-msgs-node")
	b.ReportMetric(cell(b, t, last, 2), "bordercast-msgs-node")
	b.ReportMetric(cell(b, t, last, 3), "card-msgs-node")
	b.ReportMetric(cell(b, t, last, 5), "card-success-%")
}

func BenchmarkAblationMethods(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunAblationMethods(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 2), "pm1-backtracks-node")
	b.ReportMetric(cell(b, t, 2, 2), "em-backtracks-node")
}

func BenchmarkAblationRecovery(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunAblationRecovery(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 4), "contacts-node-recovery-on")
	b.ReportMetric(cell(b, t, 1, 4), "contacts-node-recovery-off")
}

func BenchmarkAblationQD(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunAblationQD(benchOpts())
	}
	b.ReportMetric(cell(b, t, 0, 1), "msgs-query-qdnone")
	b.ReportMetric(cell(b, t, 2, 1), "msgs-query-qd2")
}

func BenchmarkSmallWorld(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.RunSmallWorld(benchOpts())
	}
	b.ReportMetric(cell(b, t, 3, 3), "reach-noc8-D3-%")
}

// scale1kScenario is the engine-scaling workload of the acceptance bar: a
// 1000-node random-waypoint fleet — nomadic teams that relocate in
// 10-19 m/s bursts between long dwells, the paper's §II rescue/military
// deployments — observed at a 20 Hz link-sensing rate (every Advance step
// refreshes the connectivity snapshot) and answering a 500-query batch. At
// that sensing rate topology recomputation dominates, which is exactly
// what the spatial-grid engine exists to fix; dwell times keep most nodes
// stationary per step, which is what the incremental builder exploits.
func scale1kScenario(topo TopologyKind) (NetworkConfig, Config) {
	return NetworkConfig{
			Nodes: 1000, Width: 1500, Height: 1500, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 10, MaxSpeed: 19, Pause: 300,
			Topology: topo, Seed: 11,
		}, Config{
			// Bounded CSQ retries and a 15 s validation period keep contact
			// churn realistic for slow-churn deployments; the workload's hot
			// path is the 20 Hz topology sensing, not reselection storms.
			R: 2, MaxContactDist: 10, NoC: 5, Depth: 2, ValidatePeriod: 15,
			MaxFailedWalks: 3,
		}
}

// newScale1k builds the scenario and runs it to mobility steady state
// (past the synchronized initial pause, with node phases spread out) in
// coarse steps. This is the benchmarks' untimed setup.
func newScale1k(tb testing.TB, topo TopologyKind) *Simulation {
	nc, cfg := scale1kScenario(topo)
	sim, err := NewSimulation(nc, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sim.SelectContacts()
	// Run past the synchronized initial pause and first relocation waves so
	// node phases spread across the pause+travel cycle (~350 s): from here
	// on a steady minority of the fleet is in motion at any instant.
	for sim.Now() < 900 {
		sim.Advance(1)
	}
	return sim
}

// runScale1k is the measured workload: 30 simulated seconds at 20 Hz link
// sensing followed by a 500-query batch.
func runScale1k(tb testing.TB, sim *Simulation, horizon float64) []QueryResult {
	for target := sim.Now() + horizon; sim.Now() < target; {
		sim.Advance(0.05)
	}
	pairs := sim.RandomPairs(500, 77)
	if len(pairs) != 500 {
		tb.Fatalf("drew %d pairs, want 500", len(pairs))
	}
	return sim.BatchQuery(pairs)
}

// BenchmarkScale1kGrid is the incremental spatial-grid engine on the
// 1k-node scenario; BenchmarkScale1kNaive is the same run on the O(N²)
// rebuild path. The acceptance bar for the engine refactor is grid ≥ 3×
// faster with bit-identical query results (TestScale1kTopologyEquivalence
// in card_test.go).
func BenchmarkScale1kGrid(b *testing.B)        { benchScale1k(b, SpatialGrid) }
func BenchmarkScale1kFullRebuild(b *testing.B) { benchScale1k(b, FullRebuild) }
func BenchmarkScale1kNaive(b *testing.B)       { benchScale1k(b, NaiveRebuild) }

func benchScale1k(b *testing.B, topo TopologyKind) {
	sim := newScale1k(b, topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runScale1k(b, sim, 30)
	}
}

// BenchmarkEndToEndQuery measures one full CARD query on a standing
// 500-node network — the protocol's steady-state hot path.
func BenchmarkEndToEndQuery(b *testing.B) {
	sim, err := NewSimulation(NetworkConfig{
		Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 1,
	}, Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2})
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := sim.RandomPair(uint64(i))
		sim.Query(src, dst)
	}
}

// BenchmarkSelectionRound measures one full network-wide contact-selection
// round (500 nodes).
func BenchmarkSelectionRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulation(NetworkConfig{
			Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: uint64(i),
		}, Config{R: 3, MaxContactDist: 16, NoC: 5})
		if err != nil {
			b.Fatal(err)
		}
		sim.SelectContacts()
	}
}

// benchMaintain5k measures network-wide maintenance rounds on the
// citywide-rwp-5k preset — the write-side hot loop the parallel round
// fan-out exists for. Mobility stepping and the topology refresh are
// serial fixed cost shared by both variants, so they run off the clock:
// each iteration churns the network untimed, then times one forced
// Maintain round on the fresh snapshot. Setup (build + initial selection)
// always runs with the default pool; only the measured rounds honor the
// worker bound, which is sound because the serial and sharded paths are
// bit-identical (TestMaintainParallelEquivalence).
func benchMaintain5k(b *testing.B, workers int) {
	sim, err := NewPresetSimulation("citywide-rwp-5k", 1)
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	sim.Engine().SetMaintainWorkers(workers)
	period := sim.Config().ValidatePeriod
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim.Advance(0.95 * period) // mobility + topology churn, off the clock
		b.StartTimer()
		sim.Maintain()
	}
}

// BenchmarkMaintain5kSerial is the serial reference; the acceptance bar
// for the round fan-out is BenchmarkMaintain5kParallel ≥ 2× faster on a
// multi-core runner (CI records both in BENCH_2.json).
func BenchmarkMaintain5kSerial(b *testing.B)   { benchMaintain5k(b, 1) }
func BenchmarkMaintain5kParallel(b *testing.B) { benchMaintain5k(b, 0) }

// benchScenarioAdvance measures one ValidatePeriod of engine time —
// mobility stepping, (masked) topology refresh, churn expiry and the
// maintenance round — on a named preset: the end-to-end cost of the
// scenario-diversity workloads. CI records the three variants below in
// BENCH_3.json.
func benchScenarioAdvance(b *testing.B, preset string) {
	sim, err := NewPresetSimulation(preset, 1)
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	period := sim.Config().ValidatePeriod
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(period)
	}
}

// BenchmarkAdvanceGM5k is Gauss–Markov drift at the 5k scale;
// BenchmarkAdvanceGroups1k is reference-point group mobility;
// BenchmarkAdvanceChurn2k is RWP plus node churn (masked incremental
// topology + contact expiry on every refresh).
func BenchmarkAdvanceGM5k(b *testing.B)     { benchScenarioAdvance(b, "citywide-gm-5k") }
func BenchmarkAdvanceGroups1k(b *testing.B) { benchScenarioAdvance(b, "rescue-groups-1k") }
func BenchmarkAdvanceChurn2k(b *testing.B)  { benchScenarioAdvance(b, "churn-2k") }

// BenchmarkWorkloadSustained1k measures the sustained-traffic engine end
// to end on the citywide-rwp-1k preset: each iteration streams 5 simulated
// seconds of 200 qps Zipf-skewed open-loop query traffic, interleaving
// mobility, topology refreshes and maintenance rounds with the sharded
// per-tick query batches. CI records it as BENCH_4.json — the cost record
// for the serving-scale path every future caching/replication feature
// lands on.
func BenchmarkWorkloadSustained1k(b *testing.B) {
	sim, err := NewPresetSimulation("citywide-rwp-1k", 1)
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	var last *WorkloadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.RunWorkload(WorkloadConfig{
			QPS: 200, Duration: 5, Resources: 256, Replicas: 4, ZipfS: 0.9,
			Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.SuccessPct, "success-%")
	b.ReportMetric(last.Messages.P95, "msgs-p95")
	b.ReportMetric(float64(last.Queries)/5, "achieved-qps")
}

// BenchmarkSweepGrid1k measures the parameter-sweep engine end to end on
// the citywide-rwp-1k preset: a 6-point NoC x r grid, one isolated
// 1000-node engine per cell (initial selection, 4 s of maintained
// mobility, a 100-query batch), sharded across the cell pool with the
// Pareto frontier extracted. CI records it as BENCH_5.json — the cost
// record for grid tuning at the 1k scale.
func BenchmarkSweepGrid1k(b *testing.B) {
	p, err := LookupPreset("citywide-rwp-1k")
	if err != nil {
		b.Fatal(err)
	}
	axes, err := ParseSweepSpec("NoC=4,8;r=8..12..2")
	if err != nil {
		b.Fatal(err)
	}
	var last *SweepResult
	for i := 0; i < b.N; i++ {
		g := &SweepGrid{Base: p.Protocol, Axes: axes, Seeds: 1}
		er := SweepEngineRunner{Net: p.Net, Horizon: 4, Queries: 100, Seed: uint64(i) + 1}
		res, err := g.Run(er.Run)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	front := last.Pareto()
	b.ReportMetric(float64(len(front)), "pareto-points")
	best := last.Points[front[len(front)-1]].Metrics
	b.ReportMetric(best.Reach, "frontier-max-reach-%")
	b.ReportMetric(best.Overhead, "frontier-max-overhead")
}

// new100k builds the citywide-rwp-100k preset simulation with initial
// contacts selected — the shared untimed setup of the 100k benchmarks.
// The preset runs DirtyMaintenance: long RWP pauses keep per-refresh
// adjacency diffs sparse, so steady-state rounds touch a small fraction
// of the 100k tables, which is the regime these benchmarks record.
func new100k(tb testing.TB) *Simulation {
	sim, err := NewPresetSimulation("citywide-rwp-100k", 1)
	if err != nil {
		tb.Fatal(err)
	}
	sim.SelectContacts()
	return sim
}

// BenchmarkAdvance100k measures one ValidatePeriod of engine time on the
// 100k preset — mobility stepping, incremental topology refresh, dirty-set
// expansion and the restricted maintenance round. CI records it (with
// allocation figures) in BENCH_6.json.
func BenchmarkAdvance100k(b *testing.B) {
	sim := new100k(b)
	period := sim.Config().ValidatePeriod
	// Warm up past the deficit-draining rounds that follow a cold
	// SelectContacts: below-NoC stragglers retry with fresh randomness each
	// round, and under the preset seed the deficit hits zero by t=34 (17
	// ticks). The timed window then measures the steady state the preset
	// spends almost all its time in — quiet refreshes inside the initial
	// dwell. Every node departs at exactly Pause=60 (and the wake pop is
	// strict), so iterations stay quiet through t=60: -benchtime up to 12x
	// is steady-state; beyond that the field wakes and mobility work mixes
	// in. CI records 1x.
	for i := 0; i < 17; i++ {
		sim.Advance(period)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(period)
	}
	b.ReportMetric(float64(sim.Engine().LastRoundNodes()), "round-nodes")
}

// BenchmarkMaintain100k isolates the restricted maintenance round at 100k:
// mobility and the topology refresh run off the clock (as in
// benchMaintain5k), so the timed section is dirty-list construction plus
// the round over it.
func BenchmarkMaintain100k(b *testing.B) {
	sim := new100k(b)
	period := sim.Config().ValidatePeriod
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim.Advance(0.95 * period) // mobility + dirty accumulation, off the clock
		b.StartTimer()
		sim.Maintain()
	}
	b.ReportMetric(float64(sim.Engine().LastRoundNodes()), "round-nodes")
}

// BenchmarkWorkload100k streams 2 simulated seconds of 200 qps Zipf-skewed
// open-loop traffic against the 100k network per iteration — the
// serving-scale record at the ceiling-breaking size. The workload path
// retains no per-query slices (stats.Window + Welford), so the iteration
// cost is query execution, not report assembly.
func BenchmarkWorkload100k(b *testing.B) {
	sim := new100k(b)
	var last *WorkloadReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.RunWorkload(WorkloadConfig{
			QPS: 200, Duration: 2, Resources: 512, Replicas: 8, ZipfS: 0.9,
			Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.SuccessPct, "success-%")
	b.ReportMetric(float64(last.Queries)/2, "achieved-qps")
}

// new1M builds the metro-rwp-1m preset simulation with initial contacts
// selected — the shared untimed setup of the million-node benchmarks.
// Construction plus the sharded cold-start selection round dominate the
// setup; the timed sections below are steady state.
func new1M(tb testing.TB) *Simulation {
	sim, err := NewPresetSimulation("metro-rwp-1m", 1)
	if err != nil {
		tb.Fatal(err)
	}
	sim.SelectContacts()
	return sim
}

// BenchmarkAdvance1M measures one ValidatePeriod of engine time on the
// million-node preset — lazy mobility stepping (only un-paused travelers),
// moved-list topology refresh, dirty expansion, deficit-merged restricted
// round, on-demand capped neighborhood views. CI records it (with
// allocation figures) in BENCH_9.json. Expect single iterations: the
// point of the record is the absolute per-tick cost at N=10⁶, not ns/op
// statistics.
func BenchmarkAdvance1M(b *testing.B) {
	sim := new1M(b)
	period := sim.Config().ValidatePeriod
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(period)
	}
	b.ReportMetric(float64(sim.Engine().LastRoundNodes()), "round-nodes")
}

// BenchmarkMaintain1M isolates the restricted maintenance round at 10⁶
// nodes: mobility and the topology refresh run off the clock (as in
// benchMaintain5k), so the timed section is deficit∪dirty list
// construction plus the round over it.
func BenchmarkMaintain1M(b *testing.B) {
	sim := new1M(b)
	period := sim.Config().ValidatePeriod
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim.Advance(0.95 * period) // mobility + dirty accumulation, off the clock
		b.StartTimer()
		sim.Maintain()
	}
	b.ReportMetric(float64(sim.Engine().LastRoundNodes()), "round-nodes")
}

// BenchmarkMaintenanceRound measures a network-wide validation round under
// mobility.
func BenchmarkMaintenanceRound(b *testing.B) {
	sim, err := NewSimulation(NetworkConfig{
		Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 3,
		Mobility: RandomWaypoint,
	}, Config{R: 3, MaxContactDist: 16, NoC: 5, ValidatePeriod: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(0.5)
	}
}

// BenchmarkSchemeSustained1k runs the identical sustained workload on the
// 1k preset under each headline discovery scheme — CARD, Rendezvous
// Regions, bordercast — so the comparative overhead claim has a standing
// ledger (CI records it as BENCH_8.json).
func BenchmarkSchemeSustained1k(b *testing.B) {
	for _, s := range []WorkloadScheme{SchemeCARD, SchemeRendezvous, SchemeBordercast} {
		b.Run(s, func(b *testing.B) {
			sim, err := NewPresetSimulation("citywide-rwp-1k", 1)
			if err != nil {
				b.Fatal(err)
			}
			sim.SelectContacts()
			var last *WorkloadReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunWorkload(WorkloadConfig{
					QPS: 100, Duration: 5, Resources: 128, Replicas: 2,
					ZipfS: 0.9, Scheme: s, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(last.SuccessPct, "success-%")
			b.ReportMetric(last.Messages.Mean, "msgs-mean")
			b.ReportMetric(last.Messages.P95, "msgs-p95")
		})
	}
}

// BenchmarkAdvanceHetero5k measures one ValidatePeriod on the
// disaster-hetero-5k preset: heterogeneous ±50% radios make the unit-disk
// graph directed (separate in/out adjacency maintained on every refresh,
// bidirectional hop checks on every walk) and the partition-and-heal
// schedule forces periodic full rebuilds — the end-to-end cost record for
// the directed link layer. CI records it in BENCH_10.json.
func BenchmarkAdvanceHetero5k(b *testing.B) { benchScenarioAdvance(b, "disaster-hetero-5k") }

// BenchmarkWorkloadLossy10k streams 2 simulated seconds of 100 qps
// Zipf-skewed traffic against the lossy-metro-10k preset per iteration:
// every unicast hop rolls the deterministic loss process and pays its
// retry tax, so this is the serving-scale record for the probabilistic
// link layer. The retry-share metric (retransmissions as a fraction of
// all transmissions over the streamed window, maintenance included) keeps
// the tax visible in the bench ledger. CI records it in BENCH_10.json.
func BenchmarkWorkloadLossy10k(b *testing.B) {
	sim, err := NewPresetSimulation("lossy-metro-10k", 1)
	if err != nil {
		b.Fatal(err)
	}
	sim.SelectContacts()
	before := sim.Engine().Messages()
	var last *WorkloadReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.RunWorkload(WorkloadConfig{
			QPS: 100, Duration: 2, Resources: 512, Replicas: 8, ZipfS: 0.9,
			Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(last.SuccessPct, "success-%")
	m := sim.Engine().Messages()
	retries := float64(m.Retry - before.Retry)
	total := (m.TotalPerNode - before.TotalPerNode) * float64(sim.Engine().Nodes())
	if total > 0 {
		b.ReportMetric(100*retries/total, "retry-share-%")
	}
}

// BenchmarkFootprint1M pins the resident memory of the million-node rung:
// each iteration builds the full metro-rwp-1m simulation (flat protocol
// slabs, incremental builder state, capped view cache) through the
// cold-start selection round, then reports the live-heap delta it
// retains after a GC. Run with -benchmem for the allocation ledger; CI
// records it alongside the 1M advance/maintain records in BENCH_9.json —
// the standing memory-profiling record for the 1M slab.
func BenchmarkFootprint1M(b *testing.B) {
	b.ReportAllocs()
	var before, after runtime.MemStats
	var live float64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		sim := new1M(b)
		runtime.GC()
		runtime.ReadMemStats(&after)
		live = float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20)
		runtime.KeepAlive(sim)
	}
	b.ReportMetric(live, "live-MB")
}
