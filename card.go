package card

import (
	proto "card/internal/card"
	"card/internal/engine"
	"card/internal/scheme"
	"card/internal/sweep"
	"card/internal/topology"
	"card/internal/workload"
)

// NodeID identifies a node; ids are dense in [0, Nodes).
type NodeID = topology.NodeID

// Config parameterizes the CARD protocol; see the field docs in the
// underlying type. Zero values take the documented defaults (EM method,
// NoC 5, depth 1).
type Config = proto.Config

// Method selects the contact-selection protocol.
type Method = proto.Method

// Contact-selection methods (§III.C.2 of the paper).
const (
	// EM is the edge method — the paper's recommended protocol.
	EM = proto.EM
	// PM1 is the probabilistic method with eq. 1, P = (d-R)/(r-R).
	PM1 = proto.PM1
	// PM2 is the probabilistic method with eq. 2, P = (d-2R)/(r-2R).
	PM2 = proto.PM2
)

// QueryResult reports one CARD resource-discovery attempt.
type QueryResult = proto.QueryResult

// Contact is one contact-table entry.
type Contact = proto.Contact

// Stats aggregates protocol-level events (selections, losses, recoveries).
type Stats = proto.Stats

// NetworkConfig describes the simulated network; see the engine type for
// field docs.
type NetworkConfig = engine.NetworkConfig

// MobilityKind selects the node-movement model of a simulation.
type MobilityKind = engine.MobilityKind

// Mobility models.
const (
	// Static pins nodes at their initial uniform placement.
	Static = engine.Static
	// RandomWaypoint is the paper's mobility model.
	RandomWaypoint = engine.RandomWaypoint
	// RandomWalk moves nodes at constant speed with periodic random
	// direction changes, reflecting off the boundary.
	RandomWalk = engine.RandomWalk
	// GaussMarkov runs autoregressive speed/direction processes with
	// tunable memory (NetworkConfig.GMAlpha) — smooth correlated motion.
	GaussMarkov = engine.GaussMarkov
	// GroupMobility runs reference-point group mobility: groups follow a
	// shared waypoint leader with bounded per-member jitter.
	GroupMobility = engine.GroupMobility
	// TraceReplay replays an ns-2 setdest movement trace
	// (NetworkConfig.TracePath) with piecewise-linear interpolation.
	TraceReplay = engine.TraceReplay
)

// ProactiveKind selects the neighborhood substrate implementation.
type ProactiveKind = engine.ProactiveKind

// Proactive substrates.
const (
	// OracleView (default) recomputes converged R-hop views per snapshot.
	OracleView = engine.OracleView
	// DSDVProtocol runs the real scoped distance-vector protocol.
	DSDVProtocol = engine.DSDVProtocol
)

// TopologyKind selects the connectivity-snapshot strategy.
type TopologyKind = engine.TopologyKind

// Topology strategies.
const (
	// SpatialGrid (default) is the incremental spatial-hash builder:
	// refreshes cost O(moved·degree).
	SpatialGrid = engine.SpatialGrid
	// FullRebuild rebuilds the grid-indexed graph every refresh.
	FullRebuild = engine.FullRebuild
	// NaiveRebuild is the O(N²) all-pairs reference path, kept for
	// equivalence tests and benchmarks.
	NaiveRebuild = engine.NaiveRebuild
)

// Pair is one (source, destination) query assignment for BatchQuery.
type Pair = engine.Pair

// MessageCounts reports cumulative control-message tallies by purpose.
type MessageCounts = engine.MessageCounts

// Preset is a named ready-to-run workload; see Presets.
type Preset = engine.Preset

// WorkloadConfig parameterizes a sustained open-loop query-traffic run:
// Poisson arrivals at QPS, Zipf-skewed resource popularity, sharded query
// ticks interleaved with mobility and maintenance. See the workload
// package docs for the traffic model and determinism contract.
type WorkloadConfig = workload.Config

// WorkloadReport aggregates one sustained-traffic run: success rate,
// P50/P95/P99 message and hop quantiles over the full stream, and the
// trailing sliding-window view.
type WorkloadReport = workload.Report

// WorkloadOutcome is one executed query of a sustained-traffic stream.
type WorkloadOutcome = workload.Outcome

// WorkloadScheme names the discovery mechanism sustained traffic
// exercises — any scheme registered with the pluggable scheme layer; see
// the Scheme* constants for the built-ins and SchemeNames for the full
// registered set.
type WorkloadScheme = workload.Scheme

// Discovery schemes for WorkloadConfig.Scheme and SweepGrid.Scheme.
const (
	// SchemeCARD runs contact-based discovery (the default), sharded
	// across workers per tick.
	SchemeCARD = workload.CARD
	// SchemeFlood runs the duplicate-suppressed flooding baseline.
	SchemeFlood = workload.Flood
	// SchemeExpandingRing runs the TTL-doubling anycast baseline.
	SchemeExpandingRing = workload.ExpandingRing
	// SchemeBordercast runs ZRP bordercasting with query detection.
	SchemeBordercast = workload.Bordercast
	// SchemeRendezvous runs Rendezvous Regions: resource keys hash to
	// geographic regions that registrations and lookups meet in.
	SchemeRendezvous = workload.Rendezvous
)

// SchemeNames lists every registered discovery scheme name, sorted.
func SchemeNames() []string { return scheme.Names() }

// SweepAxis is one swept parameter of a SweepGrid: a canonical config
// axis name (R, r, NoC, D, Method, VP) and its values.
type SweepAxis = sweep.Axis

// SweepGrid spans a parameter study over the CARD configuration axes
// times seeds. Each (point, seed) cell runs as an isolated simulation;
// results are bit-identical serial vs sharded at any GOMAXPROCS. See the
// sweep package docs for the cell isolation / determinism contract.
type SweepGrid = sweep.Grid

// SweepMetrics are one cell's (or one seed-averaged point's) trade-off
// measurements: overhead per node per second, mean reachability, query
// success, and per-query message/hop quantiles.
type SweepMetrics = sweep.Metrics

// SweepResult is a completed sweep: per-cell runs, seed-averaged points,
// and the overhead-vs-reachability Pareto frontier (Pareto, CSV, JSON).
type SweepResult = sweep.Result

// SweepEngineRunner is the default sweep cell runner: one isolated engine
// run per cell, seeded from the counter-based substream (point, seed) of
// the root seed.
type SweepEngineRunner = sweep.EngineRunner

// ParseSweepSpec parses a sweep grid specification like
// "NoC=1..10;r=6..20" or "Method=EM,PM2;D=1..3"; see sweep.ParseSpec for
// the grammar.
func ParseSweepSpec(spec string) ([]SweepAxis, error) { return sweep.ParseSpec(spec) }

// Presets lists the built-in workload presets (dense-sensor-field,
// sparse-rescue, citywide-rwp-1k/5k/10k, ...), sorted by name.
func Presets() []Preset { return engine.Presets() }

// LookupPreset returns the preset registered under name.
func LookupPreset(name string) (Preset, error) { return engine.LookupPreset(name) }

// NewPresetSimulation builds a simulation for a named preset with the
// given seed.
func NewPresetSimulation(name string, seed uint64) (*Simulation, error) {
	p, err := engine.LookupPreset(name)
	if err != nil {
		return nil, err
	}
	e, err := p.New(seed)
	if err != nil {
		return nil, err
	}
	return &Simulation{e: e}, nil
}

// Simulation binds a mobile network, its proactive neighborhood substrate
// and a CARD protocol instance, and offers the flooding and bordercasting
// baselines on the same topology for comparison. It is a thin facade over
// [engine.Engine], which owns the time-stepping loop and the batch-query
// fan-out.
//
// Mutating calls (Advance, SelectContacts, Maintain) are single-goroutine;
// run independent simulations on separate goroutines for parameter sweeps.
// BatchQuery — and, since the round fan-out, the selection/maintenance
// rounds inside Advance/SelectContacts/Maintain — parallelize internally,
// with results bit-identical to the serial loops at any GOMAXPROCS (use
// Engine().SetMaintainWorkers to bound or disable the round sharding).
type Simulation struct {
	e *engine.Engine
}

// NewSimulation builds a network per nc and a CARD instance per cfg.
func NewSimulation(nc NetworkConfig, cfg Config) (*Simulation, error) {
	e, err := engine.New(nc, cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{e: e}, nil
}

// Engine exposes the underlying engine for advanced use (custom scheduled
// events, direct network access).
func (s *Simulation) Engine() *engine.Engine { return s.e }

// Nodes returns the network size.
func (s *Simulation) Nodes() int { return s.e.Nodes() }

// UpNodes returns how many nodes are up in the current snapshot — equal
// to Nodes unless the scenario runs node churn (NetworkConfig.ChurnMeanUp
// / ChurnMeanDown).
func (s *Simulation) UpNodes() int { return s.e.UpNodes() }

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.e.Now() }

// Config returns the protocol configuration with defaults filled.
func (s *Simulation) Config() Config { return s.e.Config() }

// Protocol exposes the underlying CARD protocol instance for advanced use
// (per-node tables, raw reachability sets).
func (s *Simulation) Protocol() *proto.Protocol { return s.e.Protocol() }

// Advance moves simulated time forward by dt seconds: node positions and
// the connectivity snapshot are refreshed, one maintenance round runs for
// every elapsed ValidatePeriod boundary, and — under DSDVProtocol — the
// proactive substrate detects link breaks and issues its periodic dumps.
// The schedule is drift-free: maintenance boundaries are indexed by an
// integer round counter, so no boundary is skipped or fired twice no
// matter how Advance calls are sliced.
func (s *Simulation) Advance(dt float64) { s.e.Advance(dt) }

// SelectContacts runs initial contact selection for every node, sharded
// across the maintenance worker pool.
func (s *Simulation) SelectContacts() int { return s.e.SelectContacts() }

// Maintain forces one maintenance round for every node now, sharded
// across the maintenance worker pool.
func (s *Simulation) Maintain() { s.e.Maintain() }

// Query runs a CARD destination search from src for target.
func (s *Simulation) Query(src, target NodeID) QueryResult {
	return s.e.Query(src, target)
}

// BatchQuery runs one CARD destination search per pair, fanned across
// worker goroutines, and returns results indexed like pairs. Results and
// message accounting are identical to a sequential Query loop over the
// same pairs (each query is a pure read of protocol state), so equal seeds
// give equal results at any GOMAXPROCS.
func (s *Simulation) BatchQuery(pairs []Pair) []QueryResult {
	return s.e.BatchQuery(pairs)
}

// RunWorkload drives the simulation with sustained open-loop query
// traffic per cfg, advancing simulated time by cfg.Duration with mobility
// and maintenance interleaved tick by tick. The per-query outcome stream
// is bit-identical between serial and sharded execution at any GOMAXPROCS.
func (s *Simulation) RunWorkload(cfg WorkloadConfig) (*WorkloadReport, error) {
	return s.e.RunWorkload(cfg)
}

// Contacts returns node u's current contact table entries — a read-only
// view of the protocol's contact slab, valid until the next maintenance
// round or churn event.
func (s *Simulation) Contacts(u NodeID) []Contact { return s.e.Protocol().Table(u).Contacts() }

// Reachability returns the percentage of live network nodes u can reach
// with a depth-D contact search. Under node churn the denominator is the
// up population — down nodes are not discoverable, so counting them would
// conflate churn duty cycle with contact quality — and a down u reports
// 0. Without churn this is the plain over-N percentage.
func (s *Simulation) Reachability(u NodeID, depth int) float64 {
	return s.e.Reachability(u, depth)
}

// MeanReachability averages Reachability over the up nodes (all nodes
// when the scenario runs no churn).
func (s *Simulation) MeanReachability(depth int) float64 {
	return s.e.MeanReachability(depth)
}

// Stats returns protocol-level statistics.
func (s *Simulation) Stats() Stats { return s.e.Stats() }

// Messages returns the simulation's control-message accounting.
func (s *Simulation) Messages() MessageCounts { return s.e.Messages() }

// FloodQuery runs the flooding baseline on the current topology.
func (s *Simulation) FloodQuery(src, target NodeID) (found bool, messages int64) {
	return s.e.FloodQuery(src, target)
}

// BordercastQuery runs the ZRP bordercasting baseline (zone radius = R,
// query detection QD2) on the current topology.
func (s *Simulation) BordercastQuery(src, target NodeID) (found bool, messages int64, err error) {
	return s.e.BordercastQuery(src, target)
}

// Census summarizes the current topology (the paper's Table 1 metrics).
type Census struct {
	Links          int
	MeanDegree     float64
	Diameter       int
	AvgHops        float64
	LargestCompPct float64
	Clustering     float64
}

// TopologyCensus computes connectivity statistics of the current snapshot.
func (s *Simulation) TopologyCensus() Census {
	c := s.e.Network().Graph().ComputeCensus()
	return Census{
		Links:          c.Links,
		MeanDegree:     c.MeanDegree,
		Diameter:       c.Diameter,
		AvgHops:        c.AvgHops,
		LargestCompPct: 100 * c.LargestComponentFrac,
		Clustering:     c.MeanClustering,
	}
}

// RandomPair draws a uniformly random pair of distinct nodes from the
// largest connected component — the standard query workload. When the
// component holds fewer than two nodes (an empty or fully partitioned
// graph), both returns name the component's sole member (or 0), never an
// out-of-range index; use RandomPairs or Engine().RandomPair when the
// degenerate case must be detected.
func (s *Simulation) RandomPair(seed uint64) (src, dst NodeID) {
	p, _ := s.e.RandomPair(seed)
	return p.Src, p.Dst
}

// RandomPairs draws up to k distinct-node pairs from the largest connected
// component (fewer — possibly zero — when the component is degenerate).
func (s *Simulation) RandomPairs(k int, seed uint64) []Pair {
	return s.e.RandomPairs(k, seed)
}
