package card

import (
	"fmt"

	"card/internal/bordercast"
	proto "card/internal/card"
	"card/internal/flood"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID identifies a node; ids are dense in [0, Nodes).
type NodeID = topology.NodeID

// Config parameterizes the CARD protocol; see the field docs in the
// underlying type. Zero values take the documented defaults (EM method,
// NoC 5, depth 1).
type Config = proto.Config

// Method selects the contact-selection protocol.
type Method = proto.Method

// Contact-selection methods (§III.C.2 of the paper).
const (
	// EM is the edge method — the paper's recommended protocol.
	EM = proto.EM
	// PM1 is the probabilistic method with eq. 1, P = (d-R)/(r-R).
	PM1 = proto.PM1
	// PM2 is the probabilistic method with eq. 2, P = (d-2R)/(r-2R).
	PM2 = proto.PM2
)

// QueryResult reports one CARD resource-discovery attempt.
type QueryResult = proto.QueryResult

// Contact is one contact-table entry.
type Contact = proto.Contact

// Stats aggregates protocol-level events (selections, losses, recoveries).
type Stats = proto.Stats

// MobilityKind selects the node-movement model of a simulation.
type MobilityKind int

const (
	// Static pins nodes at their initial uniform placement (sensor
	// networks, the paper's motivating static case).
	Static MobilityKind = iota
	// RandomWaypoint is the paper's mobility model: uniform waypoints,
	// uniform speed in [MinSpeed, MaxSpeed], optional pauses.
	RandomWaypoint
)

// ProactiveKind selects the neighborhood substrate implementation.
type ProactiveKind int

const (
	// OracleView (default) uses the converged R-hop view recomputed from
	// each topology snapshot — the paper's modeling choice, whose metrics
	// exclude proactive-update traffic.
	OracleView ProactiveKind = iota
	// DSDVProtocol runs the real scoped destination-sequenced
	// distance-vector protocol: periodic dumps, triggered updates, soft
	// state. Neighborhood views then converge with protocol dynamics and
	// proactive broadcasts appear in MessageCounts.Proactive.
	DSDVProtocol
)

// NetworkConfig describes the simulated network.
type NetworkConfig struct {
	// Nodes is the network size (>= 2).
	Nodes int
	// Width, Height are the deployment area in meters.
	Width, Height float64
	// TxRange is the radio range in meters (> 0).
	TxRange float64
	// Mobility selects Static (default) or RandomWaypoint.
	Mobility MobilityKind
	// MinSpeed, MaxSpeed bound RWP speeds in m/s (defaults 1 and 19).
	MinSpeed, MaxSpeed float64
	// Pause is the RWP dwell time at waypoints in seconds.
	Pause float64
	// Proactive selects the neighborhood substrate (default OracleView).
	Proactive ProactiveKind
	// DSDVPeriod is the full-dump interval for DSDVProtocol in seconds
	// (default 1).
	DSDVPeriod float64
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64
}

func (nc *NetworkConfig) fill() error {
	if nc.Nodes < 2 {
		return fmt.Errorf("card: need at least 2 nodes, got %d", nc.Nodes)
	}
	if nc.Width <= 0 || nc.Height <= 0 {
		return fmt.Errorf("card: non-positive area %gx%g", nc.Width, nc.Height)
	}
	if nc.TxRange <= 0 {
		return fmt.Errorf("card: non-positive TxRange %g", nc.TxRange)
	}
	if nc.MinSpeed == 0 {
		nc.MinSpeed = 1
	}
	if nc.MaxSpeed == 0 {
		nc.MaxSpeed = 19
	}
	return nil
}

// Simulation binds a mobile network, its proactive neighborhood substrate
// and a CARD protocol instance, and offers the flooding and bordercasting
// baselines on the same topology for comparison.
//
// A Simulation is single-goroutine; run independent simulations on
// separate goroutines for parameter sweeps.
type Simulation struct {
	net  *manet.Network
	prot *proto.Protocol
	nb   neighborhood.Provider
	dsdv *neighborhood.DSDV // non-nil iff Proactive == DSDVProtocol
	cfg  Config
	now  float64
}

// NewSimulation builds a network per nc and a CARD instance per cfg.
func NewSimulation(nc NetworkConfig, cfg Config) (*Simulation, error) {
	if err := nc.fill(); err != nil {
		return nil, err
	}
	area := geom.Rect{W: nc.Width, H: nc.Height}
	rng := xrand.New(nc.Seed)
	var model mobility.Model
	switch nc.Mobility {
	case Static:
		model = mobility.NewStatic(topology.UniformPositions(nc.Nodes, area, rng.Derive(0)), area)
	case RandomWaypoint:
		m, err := mobility.NewRandomWaypoint(nc.Nodes, area, mobility.RWPConfig{
			MinSpeed: nc.MinSpeed, MaxSpeed: nc.MaxSpeed, Pause: nc.Pause,
		}, rng.Derive(0))
		if err != nil {
			return nil, err
		}
		model = m
	default:
		return nil, fmt.Errorf("card: unknown mobility kind %d", int(nc.Mobility))
	}
	net := manet.New(model, nc.TxRange, rng.Derive(1))
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var nb neighborhood.Provider
	var dsdv *neighborhood.DSDV
	switch nc.Proactive {
	case OracleView:
		nb = neighborhood.NewOracle(net, cfg.R)
	case DSDVProtocol:
		dcfg := neighborhood.DefaultDSDV()
		if nc.DSDVPeriod > 0 {
			dcfg.Period = nc.DSDVPeriod
			dcfg.ExpireAfter = 3 * nc.DSDVPeriod
		}
		d, err := neighborhood.NewDSDV(net, cfg.R, dcfg)
		if err != nil {
			return nil, err
		}
		// Converge the initial tables so t=0 selection sees a warm
		// substrate, exactly as a deployment would after R dump periods.
		d.Converge(0, 4*cfg.R)
		nb = d
		dsdv = d
	default:
		return nil, fmt.Errorf("card: unknown proactive kind %d", int(nc.Proactive))
	}
	p, err := proto.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		return nil, err
	}
	return &Simulation{net: net, prot: p, nb: nb, dsdv: dsdv, cfg: p.Config()}, nil
}

// Nodes returns the network size.
func (s *Simulation) Nodes() int { return s.net.N() }

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Config returns the protocol configuration with defaults filled.
func (s *Simulation) Config() Config { return s.cfg }

// Protocol exposes the underlying CARD protocol instance for advanced use
// (per-node tables, raw reachability sets).
func (s *Simulation) Protocol() *proto.Protocol { return s.prot }

// Advance moves simulated time forward by dt seconds: node positions and
// the connectivity snapshot are refreshed, one maintenance round runs for
// every elapsed ValidatePeriod boundary, and — under DSDVProtocol — the
// proactive substrate detects link breaks and issues its periodic dumps.
func (s *Simulation) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	target := s.now + dt
	period := s.cfg.ValidatePeriod
	for {
		next := nextBoundary(s.now, period)
		if next > target {
			break
		}
		s.net.RefreshAt(next)
		if s.dsdv != nil {
			s.dsdv.DetectBreaks(next)
			s.dsdv.Round(next)
		}
		s.prot.MaintainAll(next)
		s.now = next
	}
	if target > s.now {
		s.net.RefreshAt(target)
		if s.dsdv != nil {
			s.dsdv.DetectBreaks(target)
		}
		s.now = target
	}
}

func nextBoundary(now, period float64) float64 {
	k := int(now/period) + 1
	return float64(k) * period
}

// SelectContacts runs initial contact selection for every node.
func (s *Simulation) SelectContacts() int { return s.prot.SelectAll(s.now) }

// Maintain forces one maintenance round for every node now.
func (s *Simulation) Maintain() { s.prot.MaintainAll(s.now) }

// Query runs a CARD destination search from src for target.
func (s *Simulation) Query(src, target NodeID) QueryResult {
	return s.prot.Query(src, target)
}

// Contacts returns node u's current contact table entries.
func (s *Simulation) Contacts(u NodeID) []*Contact { return s.prot.Table(u).Contacts() }

// Reachability returns the percentage of the network node u can reach with
// a depth-D contact search.
func (s *Simulation) Reachability(u NodeID, depth int) float64 {
	return s.prot.Reachability(u, depth)
}

// MeanReachability averages Reachability over all nodes.
func (s *Simulation) MeanReachability(depth int) float64 {
	return s.prot.MeanReachability(depth)
}

// Stats returns protocol-level statistics.
func (s *Simulation) Stats() Stats { return s.prot.Stats() }

// MessageCounts returns the cumulative control-message tallies by purpose.
type MessageCounts struct {
	Selection    int64 // CSQ forward + reply hops
	Backtrack    int64 // CSQ backtracking hops
	Validation   int64 // contact path-validation hops
	Recovery     int64 // local-recovery splice hops
	Query        int64 // discovery query hops (CARD, flooding, bordercast)
	Reply        int64 // success-reply hops
	Proactive    int64 // neighborhood protocol broadcasts (when DSDV runs)
	TotalPerNode float64
}

// Messages returns the simulation's control-message accounting.
func (s *Simulation) Messages() MessageCounts {
	k := &s.net.Counters
	return MessageCounts{
		Selection:    k.Get(manet.CatCSQ),
		Backtrack:    k.Get(manet.CatBacktrack),
		Validation:   k.Get(manet.CatValidate),
		Recovery:     k.Get(manet.CatRecovery),
		Query:        k.Get(manet.CatQuery),
		Reply:        k.Get(manet.CatReply),
		Proactive:    k.Get(manet.CatDSDV),
		TotalPerNode: float64(k.Total()) / float64(s.net.N()),
	}
}

// FloodQuery runs the flooding baseline on the current topology.
func (s *Simulation) FloodQuery(src, target NodeID) (found bool, messages int64) {
	r := flood.Query(s.net, src, target, true)
	return r.Found, r.Messages
}

// BordercastQuery runs the ZRP bordercasting baseline (zone radius = R,
// query detection QD2) on the current topology.
func (s *Simulation) BordercastQuery(src, target NodeID) (found bool, messages int64, err error) {
	bc, err := bordercast.New(s.net, s.nb, bordercast.Config{Zone: s.cfg.R, QD: bordercast.QD2})
	if err != nil {
		return false, 0, err
	}
	r := bc.Query(src, target)
	return r.Found, r.Messages, nil
}

// Census summarizes the current topology (the paper's Table 1 metrics).
type Census struct {
	Links          int
	MeanDegree     float64
	Diameter       int
	AvgHops        float64
	LargestCompPct float64
	Clustering     float64
}

// TopologyCensus computes connectivity statistics of the current snapshot.
func (s *Simulation) TopologyCensus() Census {
	c := s.net.Graph().ComputeCensus()
	return Census{
		Links:          c.Links,
		MeanDegree:     c.MeanDegree,
		Diameter:       c.Diameter,
		AvgHops:        c.AvgHops,
		LargestCompPct: 100 * c.LargestComponentFrac,
		Clustering:     c.MeanClustering,
	}
}

// RandomPair draws a uniformly random (src, dst) pair from the largest
// connected component — the standard query workload.
func (s *Simulation) RandomPair(seed uint64) (src, dst NodeID) {
	comp := s.net.Graph().LargestComponent()
	rng := xrand.New(seed)
	src = comp[rng.Intn(len(comp))]
	dst = comp[rng.Intn(len(comp))]
	for dst == src && len(comp) > 1 {
		dst = comp[rng.Intn(len(comp))]
	}
	return src, dst
}
