package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Pareto returns the indices (into Points) of the overhead-vs-reachability
// Pareto frontier: the points no other point dominates. Point j dominates
// point i when j costs no more overhead, reaches at least as much, and is
// strictly better on at least one of the two. Ties survive (two identical
// trade-offs are both reported). Indices come back sorted by ascending
// overhead, then descending reachability — the order a tuning table reads
// naturally.
func (r *Result) Pareto() []int {
	var front []int
	for i := range r.Points {
		mi := r.Points[i].Metrics
		dominated := false
		for j := range r.Points {
			if i == j {
				continue
			}
			mj := r.Points[j].Metrics
			if mj.Overhead <= mi.Overhead && mj.Reach >= mi.Reach &&
				(mj.Overhead < mi.Overhead || mj.Reach > mi.Reach) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.Slice(front, func(a, b int) bool {
		pa, pb := r.Points[front[a]].Metrics, r.Points[front[b]].Metrics
		if pa.Overhead != pb.Overhead {
			return pa.Overhead < pb.Overhead
		}
		if pa.Reach != pb.Reach {
			return pa.Reach > pb.Reach
		}
		return front[a] < front[b]
	})
	return front
}

// metricHeaders are the scalar columns every emission shares, aligned
// with Row.
var metricHeaders = []string{
	"overhead/node/s", "reach%", "success%",
	"msgs-mean", "msgs-p50", "msgs-p95", "msgs-p99",
	"hops-p50", "hops-p95", "pareto",
}

// Headers returns the column names of the seed-averaged point table: one
// column per axis, then the metric columns.
func (r *Result) Headers() []string {
	cols := make([]string, 0, len(r.Axes)+len(metricHeaders))
	for _, a := range r.Axes {
		cols = append(cols, a.Name)
	}
	return append(cols, metricHeaders...)
}

// RowCells returns point p's row as typed cells aligned with Headers: axis
// values as label strings (methods render as EM/PM1/PM2), metrics as
// float64, and a "*" / "" frontier marker — for table renderers that do
// their own number formatting.
func (r *Result) RowCells(p int) []any {
	pr := r.Points[p]
	cells := make([]any, 0, len(r.Axes)+len(metricHeaders))
	for i, a := range r.Axes {
		cells = append(cells, renderAxisValue(a, pr.Point[i]))
	}
	m := pr.Metrics
	for _, v := range []float64{
		m.Overhead, m.Reach, m.Success,
		m.Msgs.Mean, m.Msgs.P50, m.Msgs.P95, m.Msgs.P99,
		m.Hops.P50, m.Hops.P95,
	} {
		cells = append(cells, v)
	}
	mark := ""
	if pr.OnFrontier {
		mark = "*"
	}
	return append(cells, mark)
}

// Row renders point p as strings aligned with Headers (metrics with two
// decimals); see RowCells for the typed variant.
func (r *Result) Row(p int) []string {
	cells := r.RowCells(p)
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = strconv.FormatFloat(v, 'f', 2, 64)
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	return out
}

// renderAxisValue renders one axis value by its definition's renderer.
func renderAxisValue(a Axis, v float64) string {
	d, err := canonAxis(a.Name)
	if err != nil {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return d.render(v)
}

// CSV renders the seed-averaged point table as comma-separated rows with
// a header line. Cells are numeric or bare identifiers, so no quoting is
// needed.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Headers(), ","))
	sb.WriteByte('\n')
	for p := range r.Points {
		sb.WriteString(strings.Join(r.Row(p), ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// JSON renders the whole result — axes, per-cell runs and seed-averaged
// points with frontier flags — as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return b, nil
}
