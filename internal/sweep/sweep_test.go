package sweep

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	proto "card/internal/card"
	"card/internal/engine"
)

func TestParseSpecRangesAndLists(t *testing.T) {
	axes, err := ParseSpec("NoC=1..4;r=8..16..4;Method=EM,PM2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Axis{
		{Name: "NoC", Values: []float64{1, 2, 3, 4}},
		{Name: "r", Values: []float64{8, 12, 16}},
		{Name: "Method", Values: []float64{float64(proto.EM), float64(proto.PM2)}},
	}
	if !reflect.DeepEqual(axes, want) {
		t.Errorf("axes = %+v, want %+v", axes, want)
	}
}

func TestParseSpecCaseRules(t *testing.T) {
	// R and r are distinct axes; aliases are case-insensitive.
	axes, err := ParseSpec("R=2,3; r=8..10; depth=1..2; vp=0.5,1")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(axes))
	for i, a := range axes {
		names[i] = a.Name
	}
	if got := strings.Join(names, " "); got != "R r D VP" {
		t.Errorf("canonical names = %q, want %q", got, "R r D VP")
	}
	cfg := proto.Config{NoC: 3, Method: proto.EM}
	g := &Grid{Base: cfg, Axes: axes}
	c, err := g.Config([]float64{3, 10, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Proto.R != 3 || c.Proto.MaxContactDist != 10 || c.Proto.Depth != 2 || c.Proto.ValidatePeriod != 0.5 {
		t.Errorf("applied config = %+v", c)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",               // empty grid
		"NoC",            // no values
		"bogus=1..3",     // unknown axis
		"NoC=3..1",       // descending range
		"NoC=1..5..0",    // zero step
		"NoC=1.5,2",      // non-integer on an int axis
		"Method=EM,QM",   // unknown method
		"D=0..2",         // below minimum
		"VP=0,1",         // non-positive period
		"NoC=1..3;noc=2", // duplicate axis (checked by Validate below)
		"NoC=x",          // unparseable
		"r=8..16..2..1",  // too many range parts
	} {
		axes, err := ParseSpec(bad)
		if err == nil {
			g := &Grid{Axes: axes}
			err = g.Validate()
		}
		if err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestGridEnumeration(t *testing.T) {
	g := &Grid{
		Axes: []Axis{
			{Name: "NoC", Values: []float64{2, 4}},
			{Name: "r", Values: []float64{8, 10, 12}},
		},
		Seeds: 2,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Points() != 6 || g.Cells() != 12 {
		t.Fatalf("points=%d cells=%d, want 6/12", g.Points(), g.Cells())
	}
	// Last axis varies fastest.
	wantPoints := [][]float64{
		{2, 8}, {2, 10}, {2, 12}, {4, 8}, {4, 10}, {4, 12},
	}
	for i, want := range wantPoints {
		if got := g.Point(i); !reflect.DeepEqual(got, want) {
			t.Errorf("Point(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestRunCellsOrderAndSeeds(t *testing.T) {
	g := &Grid{
		Base:  proto.Config{R: 2, MaxContactDist: 8},
		Axes:  []Axis{{Name: "NoC", Values: []float64{1, 2, 3}}},
		Seeds: 2,
	}
	type cellID struct {
		noc  int
		seed uint64
	}
	got, err := RunCells(g, func(cfg CellConfig, point []float64, pointIdx int, seed uint64) cellID {
		if int(point[0]) != cfg.Proto.NoC {
			t.Errorf("point %v vs applied NoC %d", point, cfg.Proto.NoC)
		}
		return cellID{cfg.Proto.NoC, seed}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []cellID{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cells = %v, want %v", got, want)
	}
}

func TestParetoFrontier(t *testing.T) {
	mk := func(over, reach float64) PointResult {
		return PointResult{Metrics: Metrics{Overhead: over, Reach: reach}}
	}
	r := &Result{Points: []PointResult{
		mk(1, 40),  // frontier: cheapest
		mk(2, 60),  // frontier
		mk(2, 50),  // dominated by (2,60)
		mk(3, 60),  // dominated by (2,60)
		mk(5, 90),  // frontier: best reach
		mk(5, 90),  // identical twin: ties survive
		mk(10, 85), // dominated by (5,90)
	}}
	got := r.Pareto()
	want := []int{0, 1, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Pareto() = %v, want %v", got, want)
	}
}

// testRunner returns a deterministic synthetic runner: metrics are pure
// functions of (pointIdx, seed), so equivalence and aggregation are
// checkable without simulation cost.
func testRunner(cfg CellConfig, _ []float64, pointIdx int, seed uint64) (Metrics, error) {
	v := float64(pointIdx*100) + float64(seed)
	return Metrics{Overhead: v, Reach: 100 - v/10, Success: 50 + v/7}, nil
}

func TestRunAggregatesSeeds(t *testing.T) {
	g := &Grid{
		Base:  proto.Config{R: 2, MaxContactDist: 8},
		Axes:  []Axis{{Name: "NoC", Values: []float64{1, 2}}},
		Seeds: 2,
	}
	res, err := g.Run(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || len(res.Points) != 2 {
		t.Fatalf("cells=%d points=%d", len(res.Cells), len(res.Points))
	}
	// Point 0: seeds 1 and 2 -> overheads 1, 2 -> mean 1.5.
	if got := res.Points[0].Metrics.Overhead; got != 1.5 {
		t.Errorf("point 0 overhead = %v, want 1.5", got)
	}
	// Point 1: overheads 101, 102 -> mean 101.5.
	if got := res.Points[1].Metrics.Overhead; got != 101.5 {
		t.Errorf("point 1 overhead = %v, want 101.5", got)
	}
	// Lower overhead and higher reach: point 0 alone is the frontier.
	if !res.Points[0].OnFrontier || res.Points[1].OnFrontier {
		t.Errorf("frontier flags = %v/%v, want true/false",
			res.Points[0].OnFrontier, res.Points[1].OnFrontier)
	}
}

func TestResultEmission(t *testing.T) {
	g := &Grid{
		Base: proto.Config{R: 2, MaxContactDist: 8},
		Axes: []Axis{
			{Name: "NoC", Values: []float64{1, 2}},
			{Name: "Method", Values: []float64{float64(proto.EM), float64(proto.PM1)}},
		},
	}
	res, err := g.Run(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "NoC,Method,overhead/node/s,") {
		t.Errorf("CSV header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "EM") || !strings.Contains(csv, "PM1") {
		t.Errorf("CSV does not render method names:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Errorf("CSV has %d lines, want 5 (header + 4 points)", lines)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"axes"`, `"points"`, `"cells"`, `"pareto"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestRunSurfacesCellErrors(t *testing.T) {
	g := &Grid{
		// r == R is invalid: every cell fails engine-side validation.
		Base: proto.Config{R: 4, MaxContactDist: 4},
		Axes: []Axis{{Name: "NoC", Values: []float64{1}}},
	}
	er := EngineRunner{
		Net:  engine.NetworkConfig{Nodes: 20, Width: 200, Height: 200, TxRange: 60},
		Seed: 1,
	}
	if _, err := g.Run(er.Run); err == nil {
		t.Fatal("invalid cell config did not surface an error")
	}
}

// sweepGrid12 is the acceptance grid: 6 points x 2 seeds = 12 cells of
// real engine runs, small enough for CI.
func sweepGrid12(workers int) (*Grid, EngineRunner) {
	g := &Grid{
		Base: proto.Config{R: 2, MaxContactDist: 10, Depth: 2, Method: proto.EM, ValidatePeriod: 1},
		Axes: []Axis{
			{Name: "NoC", Values: []float64{2, 4}},
			{Name: "r", Values: []float64{8, 10, 12}},
		},
		Seeds:   2,
		Workers: workers,
	}
	er := EngineRunner{
		Net: engine.NetworkConfig{
			Nodes: 150, Width: 400, Height: 400, TxRange: 60,
			Mobility: engine.RandomWaypoint, MinSpeed: 1, MaxSpeed: 10,
		},
		Horizon: 3,
		Queries: 50,
		Seed:    42,
	}
	return g, er
}

// TestSweepParallelEquivalence pins the sweep determinism contract: a
// 12-cell grid of real engine runs produces bit-identical cell and point
// metrics whether cells run serially or sharded, at GOMAXPROCS 1 and 4
// (run with -race in CI).
func TestSweepParallelEquivalence(t *testing.T) {
	run := func(workers, procs int) *Result {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		g, er := sweepGrid12(workers)
		res, err := g.Run(er.Run)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1, 1) // serial reference at GOMAXPROCS=1
	if len(base.Cells) != 12 {
		t.Fatalf("grid has %d cells, want 12", len(base.Cells))
	}
	// The grid must produce non-trivial measurements to be a meaningful pin.
	for p, pr := range base.Points {
		if pr.Metrics.Overhead <= 0 || pr.Metrics.Reach <= 0 {
			t.Fatalf("point %d has degenerate metrics %+v", p, pr.Metrics)
		}
	}
	if len(base.Pareto()) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"serial-procs4", 1, 4},
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
		{"auto-procs4", 0, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := run(c.workers, c.procs)
			if !reflect.DeepEqual(got.Cells, base.Cells) {
				t.Errorf("cell metrics diverge from the serial reference")
			}
			if !reflect.DeepEqual(got.Points, base.Points) {
				t.Errorf("point aggregates diverge from the serial reference")
			}
		})
	}
}
