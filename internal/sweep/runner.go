package sweep

import (
	proto "card/internal/card"
	"card/internal/engine"
	"card/internal/stats"
	"card/internal/xrand"
)

// pairSalt decorrelates the query-pair stream from the engine run stream.
const pairSalt = 0x517cc1b727220a95

// EngineRunner is the default cell runner: each cell is one isolated
// engine run — build the network, select contacts, advance the horizon
// under scheduled maintenance, then measure reachability and a batched
// query load.
//
// Determinism: the cell's network seed is the counter-based substream
// (pointIdx, seed) of Seed (xrand.StreamSeed), so every cell's randomness
// is a pure function of its grid coordinates — independent of sweep
// worker count and of every other cell. The engine's own internal
// parallelism (maintenance rounds, batch queries) is bit-identical to its
// serial loops by the engine's standing contract, so it composes freely
// with the sweep fan-out.
type EngineRunner struct {
	// Net is the scenario every cell instantiates (the cell seed
	// overrides Net.Seed).
	Net engine.NetworkConfig
	// Horizon is the simulated seconds each cell advances before
	// measuring (0 = static: measure right after initial selection).
	Horizon float64
	// Queries is the batched query-load size per cell (0 = skip the
	// query phase; Success/Msgs/Hops stay zero).
	Queries int
	// Seed is the sweep's root seed; cell streams derive from it.
	Seed uint64
}

// Run implements Runner.
func (er EngineRunner) Run(cfg proto.Config, _ []float64, pointIdx int, seed uint64) (Metrics, error) {
	nc := er.Net
	nc.Seed = xrand.New(er.Seed).StreamSeed(uint64(pointIdx), seed)
	e, err := engine.New(nc, cfg)
	if err != nil {
		return Metrics{}, err
	}
	e.SelectContacts()
	if er.Horizon > 0 {
		e.Advance(er.Horizon)
	}
	var out Metrics
	m := e.Messages()
	n := float64(e.Nodes())
	out.Overhead = float64(m.Selection+m.Backtrack+m.Validation+m.Recovery) / n
	if er.Horizon > 0 {
		out.Overhead /= er.Horizon
	}
	out.Reach = e.MeanReachability(e.Config().Depth)
	if er.Queries > 0 {
		pairs := e.RandomPairs(er.Queries, nc.Seed^pairSalt)
		res := e.BatchQuery(pairs)
		if len(res) > 0 {
			// Stream the per-query records through windows sized to the
			// batch: every sample is held, so the summaries are identical
			// to sorting a retained slice, but the cell's footprint is
			// bounded by its own query budget — the shape large sweeps
			// (many cells × many queries) rely on.
			winMsgs := stats.NewWindow(len(res))
			winHops := stats.NewWindow(len(res))
			found := 0
			for _, r := range res {
				winMsgs.Add(float64(r.Messages))
				if r.Found {
					found++
					winHops.Add(float64(r.PathHops))
				}
			}
			out.Success = 100 * float64(found) / float64(len(res))
			out.Msgs = winMsgs.Summary()
			out.Hops = winHops.Summary()
		}
	}
	return out, nil
}
