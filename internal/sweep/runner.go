package sweep

import (
	"card/internal/engine"
	"card/internal/resource"
	"card/internal/scheme"
	"card/internal/stats"
	"card/internal/xrand"
)

// pairSalt decorrelates the query-pair stream from the engine run stream.
const pairSalt = 0x517cc1b727220a95

// EngineRunner is the default cell runner: each cell is one isolated
// engine run — build the network, select contacts, advance the horizon
// under scheduled maintenance, then measure reachability and a batched
// query load.
//
// Determinism: the cell's network seed is the counter-based substream
// (pointIdx, seed) of Seed (xrand.StreamSeed), so every cell's randomness
// is a pure function of its grid coordinates — independent of sweep
// worker count and of every other cell. The engine's own internal
// parallelism (maintenance rounds, batch queries) is bit-identical to its
// serial loops by the engine's standing contract, so it composes freely
// with the sweep fan-out.
type EngineRunner struct {
	// Net is the scenario every cell instantiates (the cell seed
	// overrides Net.Seed).
	Net engine.NetworkConfig
	// Horizon is the simulated seconds each cell advances before
	// measuring (0 = static: measure right after initial selection).
	Horizon float64
	// Queries is the batched query-load size per cell (0 = skip the
	// query phase; Success/Msgs/Hops stay zero).
	Queries int
	// Resources and Replicas shape the catalogue cells with a named
	// discovery scheme place before querying (defaults 64 and 1). Cells
	// with the empty scheme run the legacy node-discovery batch instead
	// and ignore both.
	Resources int
	Replicas  int
	// Seed is the sweep's root seed; cell streams derive from it.
	Seed uint64
}

// Run implements Runner. A cell with a named discovery scheme resolves a
// replicated resource catalogue through that scheme (the scheme axis
// path); a cell with the empty scheme runs the legacy CARD node-discovery
// batch, bit-identical to pre-scheme sweeps.
func (er EngineRunner) Run(cfg CellConfig, _ []float64, pointIdx int, seed uint64) (Metrics, error) {
	nc := er.Net
	nc.Seed = xrand.New(er.Seed).StreamSeed(uint64(pointIdx), seed)
	// Network-layer axes: -1 means "not swept", so the scenario's own
	// Loss/RangeSpread survive unless an axis explicitly sets them (0 is a
	// real value, forcing lossless/uniform links per point).
	if cfg.Loss >= 0 {
		nc.Loss = cfg.Loss
	}
	if cfg.RangeSpread >= 0 {
		nc.RangeSpread = cfg.RangeSpread
	}
	e, err := engine.New(nc, cfg.Proto)
	if err != nil {
		return Metrics{}, err
	}
	e.SelectContacts()
	if er.Horizon > 0 {
		e.Advance(er.Horizon)
	}
	if cfg.Scheme != "" {
		return er.runScheme(e, cfg, nc.Seed)
	}
	var out Metrics
	m := e.Messages()
	n := float64(e.Nodes())
	out.Overhead = float64(m.Selection+m.Backtrack+m.Validation+m.Recovery) / n
	if er.Horizon > 0 {
		out.Overhead /= er.Horizon
	}
	out.Reach = e.MeanReachability(e.Config().Depth)
	if er.Queries > 0 {
		pairs := e.RandomPairs(er.Queries, nc.Seed^pairSalt)
		res := e.BatchQuery(pairs)
		if len(res) > 0 {
			// Stream the per-query records through windows sized to the
			// batch: every sample is held, so the summaries are identical
			// to sorting a retained slice, but the cell's footprint is
			// bounded by its own query budget — the shape large sweeps
			// (many cells × many queries) rely on.
			winMsgs := stats.NewWindow(len(res))
			winHops := stats.NewWindow(len(res))
			found := 0
			for _, r := range res {
				winMsgs.Add(float64(r.Messages))
				if r.Found {
					found++
					winHops.Add(float64(r.PathHops))
				}
			}
			out.Success = 100 * float64(found) / float64(len(res))
			out.Msgs = winMsgs.Summary()
			out.Hops = winHops.Summary()
		}
	}
	return out, nil
}

// runScheme measures a scheme-axis cell: place the replicated catalogue,
// run the scheme's registration (rendezvous charges CatRegister here),
// fold registration into the overhead rate, then resolve the query load
// through one scheme worker. Draws come from the cell seed's pairSalt
// substream, so the offered (source, resource) sequence is identical for
// every scheme at the same cell coordinates — the cross-scheme fairness
// the sustained workload pins, reproduced at sweep-cell scale.
func (er EngineRunner) runScheme(e *engine.Engine, cfg CellConfig, cellSeed uint64) (Metrics, error) {
	root := xrand.New(cellSeed ^ pairSalt)
	place := root.Derive(0)
	draws := root.Derive(1)
	n := e.Nodes()
	resources, replicas := er.Resources, er.Replicas
	if resources <= 0 {
		resources = 64
	}
	if replicas <= 0 {
		replicas = 1
	}
	dir := resource.NewDirectory(n)
	for id := 0; id < resources; id++ {
		dir.PlaceReplicas(resource.ID(id), replicas, place)
	}
	sch, err := scheme.New(cfg.Scheme, scheme.Env{Net: e.Network(), Prot: e.Protocol(), Dir: dir, Seed: cellSeed})
	if err != nil {
		return Metrics{}, err
	}
	sch.Setup()
	var out Metrics
	m := e.Messages()
	out.Overhead = float64(m.Selection+m.Backtrack+m.Validation+m.Recovery+m.Register) / float64(n)
	if er.Horizon > 0 {
		out.Overhead /= er.Horizon
	}
	out.Reach = e.MeanReachability(e.Config().Depth)
	if er.Queries > 0 {
		w := sch.Worker()
		winMsgs := stats.NewWindow(er.Queries)
		winHops := stats.NewWindow(er.Queries)
		found := 0
		net := e.Network()
		for q := 0; q < er.Queries; q++ {
			src := scheme.NodeID(draws.Intn(n))
			id := resource.ID(draws.Intn(resources))
			if net.Down(src) {
				continue // offered but unservable; a failure with no traffic
			}
			r := w.Discover(src, id)
			winMsgs.Add(float64(r.Messages))
			if r.Found {
				found++
				winHops.Add(float64(r.PathHops))
			}
		}
		w.Flush()
		out.Success = 100 * float64(found) / float64(er.Queries)
		out.Msgs = winMsgs.Summary()
		out.Hops = winHops.Summary()
	}
	return out, nil
}
