package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	proto "card/internal/card"
	"card/internal/scheme"
)

// axisDef describes one sweepable configuration field: how to apply a
// value to a CellConfig, how to validate it, and how to render it.
type axisDef struct {
	canon  string
	check  func(v float64) error
	apply  func(c *CellConfig, v float64) error
	render func(v float64) string
}

func intCheck(name string, min float64) func(float64) error {
	return func(v float64) error {
		if v != math.Trunc(v) {
			return fmt.Errorf("sweep: axis %s takes integers, got %g", name, v)
		}
		if v < min {
			return fmt.Errorf("sweep: axis %s value %g below minimum %g", name, v, min)
		}
		return nil
	}
}

func renderNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// axisDefs lists the sweepable axes. "R" and "r" are distinct and
// case-sensitive (the paper's neighborhood radius vs max contact
// distance); every other name matches case-insensitively.
var axisDefs = []axisDef{
	{
		canon: "R",
		check: intCheck("R", 1),
		apply: func(c *CellConfig, v float64) error { c.Proto.R = int(v); return nil },
	},
	{
		canon: "r",
		check: intCheck("r", 2),
		apply: func(c *CellConfig, v float64) error { c.Proto.MaxContactDist = int(v); return nil },
	},
	{
		canon: "NoC",
		check: intCheck("NoC", 0),
		apply: func(c *CellConfig, v float64) error { c.Proto.NoC = int(v); return nil },
	},
	{
		canon: "D",
		check: intCheck("D", 1),
		apply: func(c *CellConfig, v float64) error { c.Proto.Depth = int(v); return nil },
	},
	{
		canon: "Method",
		check: func(v float64) error {
			if v != math.Trunc(v) || v < float64(proto.EM) || v > float64(proto.PM2) {
				return fmt.Errorf("sweep: axis Method takes EM, PM1 or PM2, got %g", v)
			}
			return nil
		},
		apply:  func(c *CellConfig, v float64) error { c.Proto.Method = proto.Method(v); return nil },
		render: func(v float64) string { return proto.Method(v).String() },
	},
	{
		canon: "VP",
		check: func(v float64) error {
			if v <= 0 {
				return fmt.Errorf("sweep: axis VP needs a positive period, got %g", v)
			}
			return nil
		},
		apply: func(c *CellConfig, v float64) error { c.Proto.ValidatePeriod = v; return nil },
	},
	{
		canon: "Loss",
		check: func(v float64) error {
			if v < 0 || v >= 1 {
				return fmt.Errorf("sweep: axis Loss takes a probability in [0, 1), got %g", v)
			}
			return nil
		},
		apply: func(c *CellConfig, v float64) error { c.Loss = v; return nil },
	},
	{
		canon: "RangeSpread",
		check: func(v float64) error {
			if v < 0 || v >= 1 {
				return fmt.Errorf("sweep: axis RangeSpread takes a fraction in [0, 1), got %g", v)
			}
			return nil
		},
		apply: func(c *CellConfig, v float64) error { c.RangeSpread = v; return nil },
	},
	{
		canon: "Scheme",
		check: func(v float64) error {
			if v != math.Trunc(v) || v < 0 || int(v) >= len(scheme.Names()) {
				return fmt.Errorf("sweep: axis Scheme takes one of %v, got %g", scheme.Names(), v)
			}
			return nil
		},
		// Scheme values are indices into the sorted scheme registry
		// (scheme.Names()) as of parse time; ParseSpec accepts the names.
		apply:  func(c *CellConfig, v float64) error { c.Scheme = scheme.Names()[int(v)]; return nil },
		render: func(v float64) string { return scheme.Names()[int(v)] },
	},
}

// axisAliases maps lowercase alternate spellings to canonical names.
// "R"/"r" are intentionally absent: their case is meaningful.
var axisAliases = map[string]string{
	"noc":            "NoC",
	"d":              "D",
	"depth":          "D",
	"method":         "Method",
	"vp":             "VP",
	"validateperiod": "VP",
	"scheme":         "Scheme",
	"loss":           "Loss",
	"rangespread":    "RangeSpread",
	"spread":         "RangeSpread",
}

// canonAxis resolves an axis name to its definition.
func canonAxis(name string) (axisDef, error) {
	canon := name
	if name != "R" && name != "r" {
		if c, ok := axisAliases[strings.ToLower(name)]; ok {
			canon = c
		}
	}
	for _, d := range axisDefs {
		if d.canon == canon {
			if d.render == nil {
				d.render = renderNum
			}
			return d, nil
		}
	}
	names := make([]string, len(axisDefs))
	for i, d := range axisDefs {
		names[i] = d.canon
	}
	return axisDef{}, fmt.Errorf("sweep: unknown axis %q (have %v; R and r are case-sensitive)", name, names)
}

// ParseSpec parses a grid specification: semicolon-separated axes, each
// "name=values" where values are either an inclusive range "a..b" (step
// 1) or "a..b..step", or a comma list "v1,v2,v3". The Method axis accepts
// the protocol names EM, PM1, PM2; the Scheme axis accepts registered
// discovery-scheme names (card, flood, ring, bordercast, rendezvous).
// Examples:
//
//	NoC=1..10;r=6..20
//	r=8..16..2;Method=EM,PM2
//	R=2,3;NoC=2..8..2;D=1..3
//	Scheme=card,rendezvous;NoC=1..4
//	Loss=0,0.05,0.1;RangeSpread=0,0.25,0.5
//
// Axis names R and r are case-sensitive (neighborhood radius vs max
// contact distance); everything else is case-insensitive.
func ParseSpec(spec string) ([]Axis, error) {
	var axes []Axis
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("sweep: bad axis %q: want name=values", part)
		}
		name = strings.TrimSpace(name)
		d, err := canonAxis(name)
		if err != nil {
			return nil, err
		}
		values, err := parseValues(d, strings.TrimSpace(vals))
		if err != nil {
			return nil, err
		}
		axes = append(axes, Axis{Name: d.canon, Values: values})
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("sweep: empty grid spec %q", spec)
	}
	return axes, nil
}

// parseValues parses the value part of one axis: a range or a comma list.
func parseValues(d axisDef, s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("sweep: axis %s has no values", d.canon)
	}
	if strings.Contains(s, "..") {
		return parseRange(d, s)
	}
	var out []float64
	for _, item := range strings.Split(s, ",") {
		v, err := parseValue(d, strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRange parses "a..b" or "a..b..step" inclusively.
func parseRange(d axisDef, s string) ([]float64, error) {
	parts := strings.Split(s, "..")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("sweep: axis %s: bad range %q (want a..b or a..b..step)", d.canon, s)
	}
	lo, err := parseValue(d, strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, err
	}
	hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("sweep: axis %s: bad range bound %q", d.canon, parts[1])
	}
	step := 1.0
	if len(parts) == 3 {
		step, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || step <= 0 {
			return nil, fmt.Errorf("sweep: axis %s: bad range step %q (want > 0)", d.canon, parts[2])
		}
	}
	if hi < lo {
		return nil, fmt.Errorf("sweep: axis %s: descending range %q", d.canon, s)
	}
	var out []float64
	// Integer-step the enumeration so float accumulation cannot skip the
	// upper bound (a 1e-9 slack admits bounds that land on a step).
	for k := 0; ; k++ {
		v := lo + float64(k)*step
		if v > hi+1e-9 {
			break
		}
		if err := d.check(v); err != nil {
			return nil, err
		}
		out = append(out, v)
		if k > maxCells {
			return nil, fmt.Errorf("sweep: axis %s: range %q spans over %d values", d.canon, s, maxCells)
		}
	}
	return out, nil
}

// parseValue parses one scalar, accepting method names on the Method axis
// and registered scheme names on the Scheme axis.
func parseValue(d axisDef, s string) (float64, error) {
	if d.canon == "Method" {
		switch strings.ToUpper(s) {
		case "EM":
			return float64(proto.EM), nil
		case "PM1":
			return float64(proto.PM1), nil
		case "PM2":
			return float64(proto.PM2), nil
		}
	}
	if d.canon == "Scheme" {
		for i, name := range scheme.Names() {
			if strings.EqualFold(s, name) {
				return float64(i), nil
			}
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sweep: axis %s: bad value %q", d.canon, s)
	}
	if err := d.check(v); err != nil {
		return 0, err
	}
	return v, nil
}
