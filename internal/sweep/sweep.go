// Package sweep is the generic parameter-study engine: it spans a grid
// over the CARD configuration axes (R, r, NoC, depth of search, selection
// method, validation period) and the discovery-scheme axis (any name
// registered with the scheme package) times independent seeds, runs every
// cell as an isolated simulation, and aggregates the
// overhead-vs-reachability trade-off the paper's evaluation revolves
// around — including the Pareto frontier of non-dominated configurations.
//
// # Cell isolation and determinism
//
// A cell is one (grid point, seed) pair. Cells share nothing: each owns
// its whole simulation (network, protocol, RNG lineage), with the default
// engine-backed runner seeding every cell from the counter-based
// substream (pointIdx, seed) of the sweep's root seed (xrand.StreamSeed).
// A cell's result is therefore a pure function of (grid, root seed, cell
// coordinates) — independent of which worker runs it, in what order, or
// at what GOMAXPROCS. Results land in slices indexed by cell, so a sweep
// sharded across the par pool is bit-identical to the same sweep run
// serially (Grid.Workers = 1); TestSweepParallelEquivalence pins it, the
// same contract the engine pins for maintenance rounds and batch queries.
//
// # Layering
//
// sweep sits beside experiments: experiments declares the paper's figure
// sweeps as thin grids over this harness (plus bespoke time-series cell
// bodies via RunCells), while cmd/cardsim -sweep exposes ad-hoc grids over
// any workload preset.
package sweep

import (
	"fmt"

	proto "card/internal/card"
	"card/internal/par"
	"card/internal/scheme"
	"card/internal/stats"
)

// Axis is one swept parameter: a canonical config-axis name (see
// ParseSpec for the grammar and accepted names) plus the values it takes.
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Label renders value index i of the axis for human-facing output
// (methods render as EM/PM1/PM2, numbers compactly).
func (a Axis) Label(i int) string {
	d, err := canonAxis(a.Name)
	if err != nil {
		return fmt.Sprintf("%g", a.Values[i])
	}
	return d.render(a.Values[i])
}

// Grid spans the cartesian product of its axes, times Seeds repetitions
// per point. The zero Workers uses up to GOMAXPROCS cell workers; 1 forces
// the serial reference order (results are bit-identical either way).
type Grid struct {
	// Base is the configuration every cell starts from; axis values are
	// applied on top.
	Base proto.Config
	// Scheme is the discovery scheme every cell starts from ("" keeps the
	// runner's legacy default); a Scheme axis overrides it per point.
	Scheme string
	// Axes are the swept parameters; the last axis varies fastest in the
	// point enumeration. An empty Axes is a single-point grid.
	Axes []Axis
	// Seeds is the number of independent repetitions per point (>= 1;
	// 0 defaults to 1). Cell c of point p runs with seed c+1, matching the
	// experiment harness convention.
	Seeds int
	// Workers bounds the cell fan-out: 0 = up to GOMAXPROCS, 1 = serial.
	Workers int
}

// maxCells bounds a grid's total size; a sweep beyond it is almost
// certainly a spec typo (e.g. a float step underflow).
const maxCells = 100_000

// Validate checks the grid and fills defaults in place.
func (g *Grid) Validate() error {
	if g.Seeds <= 0 {
		g.Seeds = 1
	}
	if g.Scheme != "" && !scheme.Known(g.Scheme) {
		return fmt.Errorf("sweep: unknown scheme %q (have %v)", g.Scheme, scheme.Names())
	}
	seen := make(map[string]bool, len(g.Axes))
	for i, a := range g.Axes {
		d, err := canonAxis(a.Name)
		if err != nil {
			return err
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: axis %s has no values", a.Name)
		}
		if seen[d.canon] {
			return fmt.Errorf("sweep: axis %s appears twice", d.canon)
		}
		seen[d.canon] = true
		g.Axes[i].Name = d.canon
		for _, v := range a.Values {
			if err := d.check(v); err != nil {
				return err
			}
		}
	}
	if c := g.Points() * g.Seeds; c > maxCells {
		return fmt.Errorf("sweep: grid spans %d cells, max %d", c, maxCells)
	}
	return nil
}

// Points returns the number of grid points (1 with no axes).
func (g *Grid) Points() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Cells returns the total number of (point, seed) cells.
func (g *Grid) Cells() int { return g.Points() * g.Seeds }

// Point returns the axis values of point idx: the enumeration is
// row-major with the last axis varying fastest.
func (g *Grid) Point(idx int) []float64 {
	vals := make([]float64, len(g.Axes))
	for i := len(g.Axes) - 1; i >= 0; i-- {
		n := len(g.Axes[i].Values)
		vals[i] = g.Axes[i].Values[idx%n]
		idx /= n
	}
	return vals
}

// CellConfig is the full per-cell configuration a sweep materializes: the
// CARD protocol parameters plus the discovery scheme the cell's queries
// run through ("" leaves the runner's legacy default in charge).
type CellConfig struct {
	// Proto is the CARD protocol configuration of the cell.
	Proto proto.Config
	// Scheme names the discovery scheme of the cell (see scheme.Names).
	Scheme string
	// Loss and RangeSpread are network-layer axes: per-hop loss probability
	// and per-node radio-range spread (engine.NetworkConfig fields of the
	// same names). They default to -1, meaning "not swept — keep the
	// runner's scenario value"; a Loss/RangeSpread axis overwrites them
	// per point and the engine runner overlays non-negative values onto
	// its NetworkConfig. 0 is a real value (explicitly lossless/uniform),
	// distinct from the -1 sentinel.
	Loss        float64
	RangeSpread float64
}

// Config materializes the cell configuration of a point: Base (and the
// base Scheme) with the axis values applied. Cross-field consistency
// (e.g. r > R) is checked by the consumer's Config.Validate, so a grid
// may legally span points that turn out invalid — those cells surface the
// validation error.
func (g *Grid) Config(point []float64) (CellConfig, error) {
	cfg := CellConfig{Proto: g.Base, Scheme: g.Scheme, Loss: -1, RangeSpread: -1}
	for i, a := range g.Axes {
		d, err := canonAxis(a.Name)
		if err != nil {
			return cfg, err
		}
		if err := d.apply(&cfg, point[i]); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// RunCells runs one isolated cell per (point, seed) across the grid's
// worker bound and returns results indexed cell-major: cell i is point
// i/Seeds, repetition i%Seeds, run with seed (i%Seeds)+1. The cell body
// must be a pure function of its arguments (build your own simulation
// from them); results are then bit-identical at any worker count. This is
// the generic layer the figure sweeps use for time-series cells; scalar
// studies use Grid.Run on top.
func RunCells[M any](g *Grid, cell func(cfg CellConfig, point []float64, pointIdx int, seed uint64) M) ([]M, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	points := g.Points()
	// Materialize configs up front: spec-level errors surface before any
	// simulation spins up, and workers share read-only state.
	cfgs := make([]CellConfig, points)
	pts := make([][]float64, points)
	for p := 0; p < points; p++ {
		pts[p] = g.Point(p)
		cfg, err := g.Config(pts[p])
		if err != nil {
			return nil, err
		}
		cfgs[p] = cfg
	}
	out := make([]M, g.Cells())
	workers := g.Workers
	if workers <= 0 {
		workers = par.Limit()
	}
	par.WorkersN(workers, len(out), func(_, i int) {
		p := i / g.Seeds
		out[i] = cell(cfgs[p], pts[p], p, uint64(i%g.Seeds)+1)
	})
	return out, nil
}

// Metrics are the scalar measurements of one cell (or the seed-average of
// one point): the paper's §IV–§V trade-off quantities.
type Metrics struct {
	// Overhead is selection+maintenance control messages per node per
	// simulated second (total per node for horizon-less static cells).
	Overhead float64 `json:"overhead"`
	// Reach is the mean reachability percentage at the cell's depth.
	Reach float64 `json:"reach"`
	// Success is the batched-query success percentage.
	Success float64 `json:"success"`
	// Msgs summarizes control messages per query (P50/P95/P99 quantiles).
	Msgs stats.Summary `json:"msgs"`
	// Hops summarizes discovered-path lengths over the found queries.
	Hops stats.Summary `json:"hops"`
}

// Runner computes one cell's scalar metrics. Implementations must derive
// all randomness from (pointIdx, seed) — see EngineRunner for the default.
type Runner func(cfg CellConfig, point []float64, pointIdx int, seed uint64) (Metrics, error)

// Cell is one executed (point, seed) run.
type Cell struct {
	PointIdx int     `json:"point"`
	Seed     uint64  `json:"seed"`
	Metrics  Metrics `json:"metrics"`
}

// PointResult is the seed-average of one grid point. Quantile summaries
// average field-wise across seeds (N sums), the experiment harness
// convention for repeated cells.
type PointResult struct {
	Point   []float64 `json:"point"`
	Metrics Metrics   `json:"metrics"`
	// OnFrontier marks membership of the overhead-vs-reach Pareto
	// frontier (see Result.Pareto).
	OnFrontier bool `json:"pareto"`
}

// Result is a completed sweep.
type Result struct {
	Axes   []Axis        `json:"axes"`
	Seeds  int           `json:"seeds"`
	Cells  []Cell        `json:"cells"`
	Points []PointResult `json:"points"`
}

// Run executes the grid with the given cell runner and aggregates per
// point. The first cell error (in cell order) aborts the sweep.
func (g *Grid) Run(run Runner) (*Result, error) {
	type outcome struct {
		m   Metrics
		err error
	}
	cells, err := RunCells(g, func(cfg CellConfig, point []float64, pointIdx int, seed uint64) outcome {
		m, err := run(cfg, point, pointIdx, seed)
		return outcome{m, err}
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("sweep: cell %d (point %v, seed %d): %w",
				i, g.Point(i/g.Seeds), i%g.Seeds+1, c.err)
		}
	}
	res := &Result{Axes: g.Axes, Seeds: g.Seeds}
	res.Cells = make([]Cell, len(cells))
	for i, c := range cells {
		res.Cells[i] = Cell{PointIdx: i / g.Seeds, Seed: uint64(i%g.Seeds) + 1, Metrics: c.m}
	}
	res.Points = make([]PointResult, g.Points())
	s := float64(g.Seeds)
	for p := range res.Points {
		pr := PointResult{Point: g.Point(p)}
		for k := 0; k < g.Seeds; k++ {
			m := cells[p*g.Seeds+k].m
			pr.Metrics.Overhead += m.Overhead / s
			pr.Metrics.Reach += m.Reach / s
			pr.Metrics.Success += m.Success / s
			addSummary(&pr.Metrics.Msgs, m.Msgs, s)
			addSummary(&pr.Metrics.Hops, m.Hops, s)
		}
		res.Points[p] = pr
	}
	for _, i := range res.Pareto() {
		res.Points[i].OnFrontier = true
	}
	return res, nil
}

// addSummary folds one seed's quantile summary into the point average:
// quantiles and means average field-wise, sample counts sum.
func addSummary(dst *stats.Summary, src stats.Summary, seeds float64) {
	dst.N += src.N
	dst.Mean += src.Mean / seeds
	dst.P50 += src.P50 / seeds
	dst.P95 += src.P95 / seeds
	dst.P99 += src.P99 / seeds
	dst.Max += src.Max / seeds
}
