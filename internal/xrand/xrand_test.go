package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive(0)
	b := root.Derive(1)
	// Streams must differ from each other...
	if a.Uint64() == b.Uint64() {
		t.Error("derived streams 0 and 1 coincide on first draw")
	}
	// ...and must not depend on how much the parent has been consumed.
	root2 := New(7)
	root2.Uint64()
	root2.Uint64()
	c := root2.Derive(0)
	d := New(7).Derive(0)
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("Derive depends on parent consumption; must be stable")
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(3)
	for i := 0; i < 50; i++ {
		r.Uint64() // scramble state
	}
	r.Reseed(901)
	fresh := New(901)
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed(901) diverged from New(901) at draw %d", i)
		}
	}
	// Lineage must follow the reseed so stream derivation matches too.
	if r.StreamSeed(4, 9) != fresh.StreamSeed(4, 9) {
		t.Error("StreamSeed after Reseed differs from fresh generator")
	}
}

func TestStreamSeedStable(t *testing.T) {
	// The substream seed depends only on (lineage, a, b), never on draws.
	a := New(42)
	b := New(42)
	for i := 0; i < 17; i++ {
		b.Uint64()
	}
	for node := uint64(0); node < 8; node++ {
		for round := uint64(0); round < 8; round++ {
			if a.StreamSeed(node, round) != b.StreamSeed(node, round) {
				t.Fatalf("stream (%d,%d) depends on parent consumption", node, round)
			}
		}
	}
}

func TestStreamSeedDistinct(t *testing.T) {
	// All (a, b) pairs over a small grid — plus the swapped pairs — must
	// give distinct seeds; a collision would correlate two nodes' rounds.
	root := New(7)
	seen := map[uint64][2]uint64{}
	for a := uint64(0); a < 40; a++ {
		for b := uint64(0); b < 40; b++ {
			s := root.StreamSeed(a, b)
			if prev, dup := seen[s]; dup {
				t.Fatalf("streams (%d,%d) and (%d,%d) collide", a, b, prev[0], prev[1])
			}
			seen[s] = [2]uint64{a, b}
		}
	}
	if root.StreamSeed(1, 2) == root.StreamSeed(2, 1) {
		t.Error("StreamSeed is symmetric in (a, b)")
	}
}

func TestStreamSeedVariesWithLineage(t *testing.T) {
	if New(1).StreamSeed(3, 4) == New(2).StreamSeed(3, 4) {
		t.Error("different run seeds share substream (3,4)")
	}
}

func TestSplitStreamMatchesReseed(t *testing.T) {
	root := New(55)
	a := root.SplitStream(6, 2)
	b := New(0)
	b.Reseed(root.StreamSeed(6, 2))
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitStream and Reseed(StreamSeed) disagree")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 10 buckets.
	r := New(4242)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f by more than 5 sigma", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Range(3,9) = %v out of range", v)
		}
	}
	if got := r.Range(4, 4); got != 4 {
		t.Errorf("Range(4,4) = %v, want 4", got)
	}
}

func TestBool(t *testing.T) {
	r := New(10)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) empirical rate %v", p)
	}
}

func TestExpFloat64(t *testing.T) {
	r := New(11)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 = %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestNormFloat64(t *testing.T) {
	r := New(12)
	sum, sumSq := 0.0, 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Errorf("Perm(0) = %v, want empty", p)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(14)
	s := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 || len(s) != 7 {
		t.Errorf("shuffle changed contents: %v", s)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Errorf("Pick(0) = %d, want -1", got)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a := New(seed).Derive(stream)
		b := New(seed).Derive(stream)
		for i := 0; i < 5; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(77)
	for _, n := range []uint64{1, 2, 3, 1 << 40, math.MaxUint64} {
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nSmallUniform(t *testing.T) {
	// n=3 exercises the rejection path; verify near-uniform split.
	r := New(78)
	counts := [3]int{}
	const draws = 90000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(3)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/3.0) > 5*math.Sqrt(draws/3.0) {
			t.Errorf("Uint64n(3) bucket %d count %d far from uniform", b, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(-3, 1) },
		func() { NewZipf(10, -0.5) },
		func() { NewZipf(10, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Zipf construction did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestZipfRangeAndDeterminism(t *testing.T) {
	z := NewZipf(37, 1.1)
	if z.N() != 37 {
		t.Fatalf("N = %d, want 37", z.N())
	}
	a, b := New(5), New(5)
	for i := 0; i < 5000; i++ {
		va, vb := z.Draw(a), z.Draw(b)
		if va != vb {
			t.Fatalf("draw %d diverges: %d vs %d", i, va, vb)
		}
		if va < 0 || va >= 37 {
			t.Fatalf("draw %d out of range: %d", i, va)
		}
	}
}

// TestZipfOneDrawPerSample pins the stream contract the workload layer
// relies on: each Draw consumes exactly one Float64, whatever the sampled
// rank, so downstream draws never shift with the sampled values.
func TestZipfOneDrawPerSample(t *testing.T) {
	z := NewZipf(100, 1.5)
	a, b := New(9), New(9)
	const k = 257
	for i := 0; i < k; i++ {
		z.Draw(a)
	}
	for i := 0; i < k; i++ {
		b.Float64()
	}
	if va, vb := a.Uint64(), b.Uint64(); va != vb {
		t.Fatalf("Zipf draws consumed a different stream amount: next %d vs %d", va, vb)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(4, 0)
	r := New(11)
	counts := [4]int{}
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/4.0) > 5*math.Sqrt(draws/4.0) {
			t.Errorf("s=0 bucket %d count %d far from uniform", b, c)
		}
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	z := NewZipf(64, 1.0)
	r := New(13)
	counts := make([]int, 64)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	// P(0) = 1/H_64 ≈ 0.21; check the head dominates and the expected
	// 2:1 ratio between ranks 0 and 1 holds loosely.
	if counts[0] < counts[63]*4 {
		t.Errorf("rank 0 drawn %d times, rank 63 %d — no skew", counts[0], counts[63])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("rank0/rank1 ratio = %.2f, want ~2 for s=1", ratio)
	}
}
