// Package xrand provides a small, deterministic pseudo-random number
// generator suite for the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// figure in the paper is regenerated from a (scenario, seed) pair, and runs
// must be bit-identical across machines and across Go releases. The package
// therefore implements its own generators instead of relying on math/rand's
// unspecified internals:
//
//   - SplitMix64 — used to expand a single user seed into independent
//     sub-stream seeds (one per node, per mobility model, per protocol).
//   - xoshiro256++ — the workhorse generator behind Rand.
//
// Both are public-domain algorithms by Blackman & Vigna.
package xrand

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed xoshiro and to derive independent streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic generator. It is NOT safe for concurrent use; give
// each goroutine (each simulation run) its own Rand, derived via Derive.
type Rand struct {
	s [4]uint64
	// lineage is the seed the current state was initialized from — set by
	// New, updated by Reseed — and is what Derive and StreamSeed split
	// substreams from, independent of how much output has been drawn.
	lineage uint64
}

// New returns a generator seeded from seed. Distinct seeds yield
// uncorrelated streams (seed expansion via SplitMix64).
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place to the exact state New(seed) produces,
// without allocating. It exists for consumers that draw from a fresh
// counter-based stream per work item (e.g. one stream per (node, round) in
// the protocol's maintenance fan-out) and want to reuse one Rand per
// worker instead of allocating a generator per item.
func (r *Rand) Reseed(seed uint64) {
	r.lineage = seed
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// StreamSeed derives the seed of the counter-based substream (a, b) of r's
// lineage: a SplitMix64 absorption chain over (lineage, a, b). The result
// depends only on the construction seed and the two counters — never on
// how much output has been drawn from r — so any party holding the root
// generator can name the same stream. Distinct (a, b) pairs (including
// swapped ones) yield uncorrelated streams.
//
// This is the determinism backbone of the parallel maintenance rounds:
// every node draws from the stream (nodeID, round), so its randomness is
// identical whether the round runs serially in id order or sharded across
// any number of workers in any interleaving.
func (r *Rand) StreamSeed(a, b uint64) uint64 {
	s := r.lineage
	h := splitMix64(&s)
	s = h ^ (a+1)*0xd1342543de82ef95
	h = splitMix64(&s)
	s = h ^ (b+1)*0x9e3779b97f4a7c15
	return splitMix64(&s)
}

// SplitStream returns a new generator seeded on substream (a, b); see
// StreamSeed. Prefer Reseed(r.StreamSeed(a, b)) on a reused generator in
// hot loops.
func (r *Rand) SplitStream(a, b uint64) *Rand {
	return New(r.StreamSeed(a, b))
}

// Derive returns a new generator whose stream is a deterministic function of
// r's construction seed and the given stream id, independent of how much
// output has been drawn from r. Use it to give every node / protocol / model
// its own stream so that adding a consumer does not perturb the others.
func (r *Rand) Derive(stream uint64) *Rand {
	sm := r.lineage
	base := splitMix64(&sm)
	return New(base ^ (stream+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256++).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire's multiply-shift method with rejection for exact uniformity.
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= n || lo >= -n%n {
			// -n % n == (2^64 - n) % n: the threshold below which results
			// are biased. The first comparison short-circuits the common
			// case cheaply.
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	// Inverse CDF; Float64 returns [0,1) so 1-u ∈ (0,1] and Log is finite.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element index of a slice of length n,
// or -1 if n == 0.
func (r *Rand) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}

// Zipf samples from the bounded Zipf distribution over {0, …, n-1}:
// P(k) ∝ 1/(k+1)^s. s = 0 degenerates to the uniform distribution; larger
// s concentrates mass on the low ranks (rank 0 is the most popular).
//
// The sampler precomputes the cumulative distribution once and inverts it
// with a binary search per draw, so every Draw consumes exactly one
// Float64 from the caller's generator regardless of the sampled value.
// That fixed draw count is what lets the workload layer generate request
// streams that are pure functions of the seed — the determinism backbone
// of the serial==parallel traffic contract.
//
// A Zipf is immutable after construction and safe for concurrent Draw
// calls (each caller supplies its own Rand).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics when
// n <= 0 or s is negative or NaN.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: Zipf needs n > 0")
	}
	if !(s >= 0) {
		panic("xrand: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	// The last bucket owns the tail exactly: Float64 < 1 always lands.
	cdf[n-1] = 1
	return &Zipf{cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples one rank in [0, N) using exactly one uniform draw from r.
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	// First index with cdf[i] > u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
