package flood

import (
	"testing"

	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

func lineNet(n int) *manet.Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	a := geom.Rect{W: float64(n) * 10, H: 10}
	return manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
}

func randomNet(seed uint64, n int) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	return manet.New(mobility.NewStatic(pts, area), 50, xrand.New(seed))
}

func TestFloodFindsTargetOnLine(t *testing.T) {
	net := lineNet(10)
	res := Query(net, 0, 9, true)
	if !res.Found {
		t.Fatal("flood did not find a connected target")
	}
	if res.PathHops != 9 {
		t.Errorf("PathHops = %d, want 9", res.PathHops)
	}
	// Transmissions: nodes 0..8 rebroadcast (target 9 answers) = 9, plus
	// 9 reply hops = 18.
	if res.Messages != 18 {
		t.Errorf("Messages = %d, want 18", res.Messages)
	}
}

func TestFloodWithoutReplyCounting(t *testing.T) {
	net := lineNet(10)
	res := Query(net, 0, 9, false)
	if res.Messages != 9 {
		t.Errorf("Messages = %d, want 9 (no reply)", res.Messages)
	}
}

func TestFloodUnreachableTarget(t *testing.T) {
	// Two disconnected pairs.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 500, Y: 0}, {X: 510, Y: 0}}
	a := geom.Rect{W: 600, H: 10}
	net := manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	res := Query(net, 0, 3, true)
	if res.Found {
		t.Fatal("found target in another component")
	}
	if res.PathHops != -1 {
		t.Errorf("PathHops = %d, want -1", res.PathHops)
	}
	// Both nodes of src's component transmit.
	if res.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Messages)
	}
}

func TestFloodCostScalesWithComponent(t *testing.T) {
	// Flooding traffic ~ component size: the paper's core scalability
	// complaint about flooding.
	small := randomNet(5, 250)
	large := randomNet(5, 1000)
	rs := Query(small, 0, 1, false)
	rl := Query(large, 0, 1, false)
	if rl.Messages <= rs.Messages {
		t.Errorf("flood cost did not scale: N=250 -> %d, N=1000 -> %d", rs.Messages, rl.Messages)
	}
}

func TestQueryTTLBounds(t *testing.T) {
	net := lineNet(20)
	res := QueryTTL(net, 0, 15, 5, true)
	if res.Found {
		t.Fatal("TTL-5 flood found a 15-hop target")
	}
	// Nodes 0..4 rebroadcast; node 5 (at TTL) receives but does not relay.
	if res.Messages != 5 {
		t.Errorf("Messages = %d, want 5", res.Messages)
	}
	res2 := QueryTTL(net, 0, 4, 5, false)
	if !res2.Found || res2.PathHops != 4 {
		t.Errorf("TTL-5 flood missed a 4-hop target: %+v", res2)
	}
}

func TestExpandingRingCheaperForNearTargets(t *testing.T) {
	netA := lineNet(60)
	ring := ExpandingRing(netA, 0, 3, DoublingTTLs(64), false)
	netB := lineNet(60)
	full := Query(netB, 0, 3, false)
	if !ring.Found || !full.Found {
		t.Fatal("both searches should find the target")
	}
	if ring.Messages >= full.Messages {
		t.Errorf("expanding ring (%d msgs) not cheaper than full flood (%d) for a near target",
			ring.Messages, full.Messages)
	}
}

func TestExpandingRingFindsFarTargets(t *testing.T) {
	net := lineNet(40)
	res := ExpandingRing(net, 0, 39, DoublingTTLs(64), false)
	if !res.Found {
		t.Fatal("expanding ring never found far target")
	}
	if res.PathHops != 39 {
		t.Errorf("PathHops = %d, want 39", res.PathHops)
	}
}

func TestExpandingRingUnreachable(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 0}}
	a := geom.Rect{W: 600, H: 10}
	net := manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	res := ExpandingRing(net, 0, 1, DoublingTTLs(8), false)
	if res.Found {
		t.Fatal("found unreachable target")
	}
}

func TestDoublingTTLs(t *testing.T) {
	got := DoublingTTLs(10)
	want := []int{1, 2, 4, 8, -1}
	if len(got) != len(want) {
		t.Fatalf("DoublingTTLs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DoublingTTLs = %v, want %v", got, want)
		}
	}
}

func TestFloodSelfQuery(t *testing.T) {
	net := lineNet(5)
	res := Query(net, 2, 2, true)
	if !res.Found || res.PathHops != 0 {
		t.Errorf("self query = %+v", res)
	}
}

// TestFloodChargesComponent pins the dead-search primitive: a target-less
// flood costs exactly one broadcast per node of src's component.
func TestFloodChargesComponent(t *testing.T) {
	net := lineNet(10)
	r := Flood(net, 4)
	if r.Found || r.PathHops != -1 {
		t.Errorf("target-less flood reported a find: %+v", r)
	}
	if r.Messages != 10 {
		t.Errorf("flood cost %d messages, want 10 (component size)", r.Messages)
	}
	if got := net.Totals().Get(manet.CatQuery); got != 10 {
		t.Errorf("recorder saw %d query transmissions, want 10", got)
	}
}

// TestRingSweepMatchesDeadExpandingRing pins that the explicit dead-search
// sweep charges exactly what an ExpandingRing escalation toward an
// unreachable destination charges — the refactor removes the proxy
// target from the call, not any cost.
func TestRingSweepMatchesDeadExpandingRing(t *testing.T) {
	// Two components: a 6-node line and one far node (id 6, unreachable).
	pts := make([]geom.Point, 6)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	pts = append(pts, geom.Point{X: 500, Y: 500})
	a := geom.Rect{W: 600, H: 600}
	build := func() *manet.Network {
		return manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	}
	ttls := DoublingTTLs(8)
	ref := ExpandingRing(build(), 0, 6, ttls, false)
	got := RingSweep(build(), 0, ttls)
	if got.Found || got.PathHops != -1 {
		t.Errorf("RingSweep reported a find: %+v", got)
	}
	if got.Messages != ref.Messages {
		t.Errorf("RingSweep cost %d != dead ExpandingRing cost %d", got.Messages, ref.Messages)
	}
	// The sweep must cost more than one plain flood: every failed ring is
	// charged before the final unbounded one.
	if full := Flood(build(), 0); got.Messages <= full.Messages {
		t.Errorf("sweep (%d) not above one component flood (%d)", got.Messages, full.Messages)
	}
}
