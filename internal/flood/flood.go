// Package flood implements the flooding resource-discovery baseline the
// paper compares against (§IV.D), plus TTL-bounded and expanding-ring
// variants.
//
// Flooding model: the source broadcasts the query; every node hearing it
// for the first time rebroadcasts once (duplicate suppression). Each
// rebroadcast is one radio transmission, so a query costs one transmission
// per reached node (minus the target, which answers instead of relaying).
// The reply unicasts back along the reverse shortest path.
//
// Every primitive exists in two forms: the plain form accounts on the
// network's active recorder (the serial path), and an R-suffixed form
// accounts on an explicit [manet.Recorder]. The R forms are what the
// scheme layer's per-worker sharding uses: each worker tallies into a
// private Counters and flushes serially after the join, so flooding
// queries can fan out across workers with bit-identical totals — the same
// local-tally recipe card.Querier established.
package flood

import (
	"card/internal/manet"
	"card/internal/topology"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Result reports one flooding query.
type Result struct {
	// Found reports whether the target was reached.
	Found bool
	// Messages is the number of control messages the query generated
	// (query transmissions plus, when counted, reply hops).
	Messages int64
	// PathHops is the shortest-path length source→target, or -1.
	PathHops int
}

// Query floods the whole network from src for target. countReply includes
// the unicast reply path in the message count.
func Query(net *manet.Network, src, target NodeID, countReply bool) Result {
	return QueryTTL(net, src, target, -1, countReply)
}

// QueryR is Query accounting on an explicit recorder.
func QueryR(net *manet.Network, rec manet.Recorder, src, target NodeID, countReply bool) Result {
	return QueryTTLR(net, rec, src, target, -1, countReply)
}

// QueryTTL floods at most ttl hops from src (ttl < 0 means unbounded).
func QueryTTL(net *manet.Network, src, target NodeID, ttl int, countReply bool) Result {
	return QueryTTLR(net, net.Recorder(), src, target, ttl, countReply)
}

// QueryTTLR is QueryTTL accounting on an explicit recorder: relays charge
// CatQuery, the reply path (when counted) charges CatReply. The result and
// the tallies are pure functions of the current snapshot, so concurrent
// calls with private recorders are race-free and order-independent.
func QueryTTLR(net *manet.Network, rec manet.Recorder, src, target NodeID, ttl int, countReply bool) Result {
	bfs := net.Graph().BoundedBFS(src, ttl)
	found := bfs.Dist[target] >= 0
	var relays int64
	for _, v := range bfs.Visited {
		if found && v == target {
			continue // the target answers; it does not relay
		}
		if ttl >= 0 && int(bfs.Dist[v]) >= ttl {
			continue // leaf of the bounded flood: receives, does not relay
		}
		relays++
	}
	rec.Record(manet.CatQuery, relays)
	res := Result{Found: found, Messages: relays, PathHops: -1}
	if found {
		res.PathHops = int(bfs.Dist[target])
		if countReply {
			rec.Record(manet.CatReply, int64(res.PathHops))
			res.Messages += int64(res.PathHops)
		}
	}
	return res
}

// Flood charges one full duplicate-suppressed flood from src with no
// responder: every node in src's connected component (src included)
// rebroadcasts exactly once, so the cost is the component size. This is
// the canonical dead-search cost of the flooding baseline — a query for a
// resource no reachable node holds floods everywhere and dies. Unlike
// Query with an unreachable proxy target, the charge depends only on src's
// component, never on which unreachable node a caller happens to name.
func Flood(net *manet.Network, src NodeID) Result {
	return FloodR(net, net.Recorder(), src)
}

// FloodR is Flood accounting on an explicit recorder.
func FloodR(net *manet.Network, rec manet.Recorder, src NodeID) Result {
	n := int64(len(net.Graph().BFS(src).Visited))
	rec.Record(manet.CatQuery, n)
	return Result{Found: false, Messages: n, PathHops: -1}
}

// RingSweep charges a full expanding-ring escalation with no responder:
// every TTL ring floods and fails, so the search pays each bounded ring
// (interior nodes relay, ring-edge leaves receive without relaying) and —
// under the standard DoublingTTLs schedule — ends in one unbounded
// component flood. This is the deterministic dead-search cost of the
// expanding-ring baseline, a function of src's component alone.
func RingSweep(net *manet.Network, src NodeID, ttls []int) Result {
	return RingSweepR(net, net.Recorder(), src, ttls)
}

// RingSweepR is RingSweep accounting on an explicit recorder.
func RingSweepR(net *manet.Network, rec manet.Recorder, src NodeID, ttls []int) Result {
	var total int64
	for _, ttl := range ttls {
		bfs := net.Graph().BoundedBFS(src, ttl)
		var relays int64
		for _, v := range bfs.Visited {
			if ttl >= 0 && int(bfs.Dist[v]) >= ttl {
				continue // leaf of the bounded flood: receives, does not relay
			}
			relays++
		}
		rec.Record(manet.CatQuery, relays)
		total += relays
	}
	return Result{Found: false, Messages: total, PathHops: -1}
}

// ExpandingRing performs the classic expanding-ring search: successive
// floods with growing TTLs until the target is found or the last ring
// fails. The paper's §III.C.4 contrasts CARD's directed escalation against
// exactly this mechanism.
func ExpandingRing(net *manet.Network, src, target NodeID, ttls []int, countReply bool) Result {
	return ExpandingRingR(net, net.Recorder(), src, target, ttls, countReply)
}

// ExpandingRingR is ExpandingRing accounting on an explicit recorder. Each
// failed ring charges its own relays exactly once; the final successful
// ring charges its relays plus (when counted) the reply path, and the
// returned Messages is the cumulative escalation cost.
func ExpandingRingR(net *manet.Network, rec manet.Recorder, src, target NodeID, ttls []int, countReply bool) Result {
	var total int64
	for i, ttl := range ttls {
		r := QueryTTLR(net, rec, src, target, ttl, countReply)
		total += r.Messages
		if r.Found {
			r.Messages = total
			return r
		}
		if i == len(ttls)-1 {
			r.Messages = total
			return r
		}
	}
	return Result{Found: false, Messages: total, PathHops: -1}
}

// DoublingTTLs returns the TTL schedule 1, 2, 4, ... capped at max, ending
// with an unbounded flood (-1), the standard expanding-ring schedule.
func DoublingTTLs(max int) []int {
	var ttls []int
	for t := 1; t < max; t *= 2 {
		ttls = append(ttls, t)
	}
	return append(ttls, -1)
}
