package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLimitAtLeastOne(t *testing.T) {
	if l := Limit(); l < 1 {
		t.Fatalf("Limit() = %d, want >= 1", l)
	}
	// Limit tracks GOMAXPROCS but never drops below 1.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if l := Limit(); l != 1 {
		t.Fatalf("Limit() at GOMAXPROCS=1 = %d, want 1", l)
	}
}

func TestDoCoversAllIndicesExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int32, 1000)
	Do(len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d executed %d times, want 1", i, c)
		}
	}
	Do(0, func(int) { t.Error("fn called for n = 0") })
	Do(-3, func(int) { t.Error("fn called for n < 0") })
}

func TestWorkersNClampsWorkerIDs(t *testing.T) {
	// worker ids must be dense in [0, min(workers, n)).
	cases := []struct{ workers, n, maxID int }{
		{8, 3, 2},  // more workers than jobs: ids clamp to n
		{2, 50, 1}, // fewer workers than jobs
		{1, 10, 0}, // serial path
	}
	for _, c := range cases {
		var maxSeen atomic.Int32
		maxSeen.Store(-1)
		WorkersN(c.workers, c.n, func(worker, i int) {
			for {
				cur := maxSeen.Load()
				if int32(worker) <= cur || maxSeen.CompareAndSwap(cur, int32(worker)) {
					break
				}
			}
		})
		if got := int(maxSeen.Load()); got > c.maxID {
			t.Errorf("WorkersN(%d, %d): max worker id %d, want <= %d", c.workers, c.n, got, c.maxID)
		}
	}
	WorkersN(0, 5, func(int, int) { t.Error("fn called for workers = 0") })
}

// TestWorkerIDNeverConcurrent pins the per-worker-scratch contract: no two
// jobs with the same worker id may ever overlap in time.
func TestWorkerIDNeverConcurrent(t *testing.T) {
	const workers, jobs = 4, 400
	busy := make([]atomic.Bool, workers)
	var violations atomic.Int32
	WorkersN(workers, jobs, func(worker, i int) {
		if !busy[worker].CompareAndSwap(false, true) {
			violations.Add(1)
		}
		runtime.Gosched() // widen the race window
		busy[worker].Store(false)
	})
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d jobs observed their worker id already busy", v)
	}
}

// TestSerialPathPreservesOrder pins that the workers==1 fast path is the
// plain index-order loop: fan-outs bounded to one worker are the serial
// reference the equivalence tests compare against.
func TestSerialPathPreservesOrder(t *testing.T) {
	var order []int
	WorkersN(1, 20, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial path used worker id %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d", i, v)
		}
	}
}

// TestDistributionDeterminism pins that results indexed by job are
// identical across repeated runs and worker counts — the property every
// layer above relies on for bit-identical serial vs sharded output.
func TestDistributionDeterminism(t *testing.T) {
	compute := func(workers int) []uint64 {
		out := make([]uint64, 300)
		WorkersN(workers, len(out), func(_, i int) {
			v := uint64(i) * 0x9e3779b97f4a7c15
			out[i] = v ^ (v >> 29)
		})
		return out
	}
	ref := compute(1)
	for _, w := range []int{2, 4, 16} {
		got := compute(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

// mustPanic runs fn and returns the recovered panic value, failing the
// test when fn does not panic.
func mustPanic(t *testing.T, fn func()) (val any) {
	t.Helper()
	defer func() { val = recover() }()
	fn()
	t.Fatal("no panic surfaced")
	return nil
}

func TestPanicPropagatesFromWorkers(t *testing.T) {
	const bad = 57
	var executed atomic.Int32
	val := mustPanic(t, func() {
		WorkersN(4, 200, func(_, i int) {
			executed.Add(1)
			if i == bad {
				panic(i)
			}
		})
	})
	if val != bad {
		t.Errorf("recovered %v, want %d", val, bad)
	}
	// The fan-out stops dispatching after a panic; with only one panicking
	// job everything before it still ran (claims are monotone).
	if n := executed.Load(); int(n) <= bad {
		t.Errorf("only %d jobs executed, want > %d", n, bad)
	}
}

func TestPanicPropagatesSerial(t *testing.T) {
	val := mustPanic(t, func() {
		WorkersN(1, 10, func(_, i int) {
			if i == 3 {
				panic("boom")
			}
		})
	})
	if val != "boom" {
		t.Errorf("recovered %v, want boom", val)
	}
}

// TestPanicLowestIndexWins pins the determinism of panic propagation:
// when several jobs panic, the one a serial loop would have hit first is
// the one re-raised, at any worker count.
func TestPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		val := mustPanic(t, func() {
			WorkersN(workers, 100, func(_, i int) { panic(i) })
		})
		if val != 0 {
			t.Errorf("workers=%d: recovered %v, want 0 (lowest claimed index)", workers, val)
		}
	}
}

// TestPanicLeavesPoolReusable pins that a fan-out that panicked does not
// poison subsequent fan-outs (no stuck goroutines, no stale stop flags).
func TestPanicLeavesPoolReusable(t *testing.T) {
	mustPanic(t, func() {
		WorkersN(4, 50, func(_, i int) {
			if i%2 == 0 {
				panic(i)
			}
		})
	})
	var wg sync.WaitGroup
	wg.Add(1)
	done := make([]bool, 64)
	go func() {
		defer wg.Done()
		WorkersN(4, len(done), func(_, i int) { done[i] = true })
	}()
	wg.Wait()
	for i, d := range done {
		if !d {
			t.Fatalf("post-panic fan-out skipped index %d", i)
		}
	}
}
