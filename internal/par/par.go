// Package par is the simulator's shared worker-pool primitive: a static
// fan-out of independent index-addressed jobs across GOMAXPROCS goroutines.
//
// It sits below every layer that parallelizes — experiments fan whole
// simulation cells, the sweep harness fans grid cells, the engine fans
// read-only batch queries, the oracle neighborhood warms per-node views —
// so each layer shares one scheduling idiom instead of growing its own
// pool. Jobs must be independent: results land in caller-owned slices
// indexed by job, which keeps every fan-out deterministic regardless of
// goroutine interleaving.
//
// A panicking job does not crash the process from a worker goroutine:
// the fan-out stops dispatching, waits for in-flight jobs, and re-panics
// the lowest-indexed captured panic value on the calling goroutine — the
// same panic a serial loop over the indices would have surfaced first, so
// panic behavior is deterministic at any worker count (the original stack
// is lost to recover; the panic value is preserved verbatim).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit returns the maximum number of workers a fan-out will use
// (GOMAXPROCS at call time, never less than 1).
func Limit() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}

// Do runs fn(i) for every i in [0, n) across up to Limit() workers and
// waits for completion. fn must not assume any ordering between indices.
func Do(n int, fn func(i int)) {
	Workers(n, func(_, i int) { fn(i) })
}

// Workers runs fn(worker, i) for every i in [0, n) and waits for
// completion. The worker argument is a dense id in [0, Limit()) that is
// stable for the lifetime of one call, letting callers keep per-worker
// scratch state (e.g. a query scratchpad) without locking: no two jobs
// with the same worker id ever run concurrently.
func Workers(n int, fn func(worker, i int)) {
	WorkersN(Limit(), n, fn)
}

// WorkersN is Workers with an explicit worker-count bound: worker ids are
// dense in [0, min(workers, n)). Use it when per-worker state is sized
// ahead of the call, so the bound cannot drift from a second GOMAXPROCS
// read.
func WorkersN(workers, n int, fn func(worker, i int)) {
	if n <= 0 || workers <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		// Panic capture: the first panic (by job index, mirroring the order
		// a serial loop would hit it) is re-raised on the caller after the
		// join; stop drains the remaining queue so the fan-out ends quickly.
		stop     atomic.Bool
		panicMu  sync.Mutex
		panicIdx int64 = -1
		panicVal any
	)
	runJob := func(worker int, i int64) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				panicMu.Lock()
				if panicIdx < 0 || i < panicIdx {
					panicIdx, panicVal = i, r
				}
				panicMu.Unlock()
			}
		}()
		fn(worker, int(i))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !stop.Load() {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				runJob(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicVal)
	}
}
