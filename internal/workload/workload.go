// Package workload drives a CARD engine with sustained, open-loop query
// traffic — the serving-scale counterpart to the one-shot query batches
// the paper evaluates with.
//
// # Traffic model
//
// Requests arrive as a Poisson process at Config.QPS queries per simulated
// second (exponential inter-arrival gaps via xrand.ExpFloat64). Each
// request names a resource drawn from a Zipf-skewed popularity
// distribution over a fixed catalogue (xrand.Zipf; rank 0 hottest) and
// originates at a uniformly random node. The stream is *open loop*: the
// offered load never adapts to outcomes, matching how the Rendezvous
// Regions and mobility-assisted-discovery evaluations (PAPERS.md) model
// request streams.
//
// # Execution and determinism
//
// Time advances in ticks (Config.Tick): arrivals falling inside a tick
// execute together against the snapshot at the tick's end, after the
// driver has run mobility, churn expiry and any maintenance rounds
// scheduled inside the tick. The whole request sequence — arrival times,
// sources, resources, holder placements — is generated from Config.Seed
// with fixed draw counts per query, so it is a pure function of the
// configuration: every scheme, worker bound and GOMAXPROCS sees the
// identical offered load.
//
// Discovery is pluggable: Config.Scheme names any registered
// DiscoveryScheme (card, flood, ring, bordercast, rendezvous, ...), and
// every scheme's ticks shard across workers with the engine's batch-query
// recipe — neighborhood views warmed before the fan-out, one
// scheme.Worker with private tallies per OS worker, tallies flushed
// serially in worker order after the join. That makes the per-query
// outcome stream and the recorder totals bit-identical between serial and
// sharded execution at any GOMAXPROCS, for every scheme — the same
// equivalence contract the maintenance rounds honor, pinned by
// TestWorkloadParallelEquivalence in the engine package and by the
// cross-scheme conformance suite in internal/scheme. Scheme maintenance
// (rendezvous re-registration) runs serially at each tick boundary, after
// the driver advances and before the tick's queries.
package workload

import (
	"fmt"

	"card/internal/card"
	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/par"
	"card/internal/resource"
	"card/internal/scheme"
	"card/internal/stats"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Scheme names the discovery mechanism the traffic exercises — any name
// registered with the scheme package ("" means the default, card). See
// scheme.Names for the full set.
type Scheme = string

const (
	// CARD runs contact-based discovery through the contact architecture.
	CARD Scheme = "card"
	// Flood runs the duplicate-suppressed flooding baseline.
	Flood Scheme = "flood"
	// ExpandingRing runs the TTL-doubling anycast baseline.
	ExpandingRing Scheme = "ring"
	// Bordercast runs ZRP bordercasting over the neighborhood substrate.
	Bordercast Scheme = "bordercast"
	// Rendezvous runs Rendezvous Regions (geographic key hashing).
	Rendezvous Scheme = "rendezvous"
)

// Config parameterizes one sustained-traffic run.
type Config struct {
	// QPS is the mean arrival rate in queries per simulated second (> 0).
	QPS float64
	// Duration is how long to keep the stream open, in simulated seconds
	// (> 0), starting at the driver's current time.
	Duration float64
	// Tick is the batching granularity in seconds: arrivals within one
	// tick execute together at its end, after the driver has advanced
	// mobility and maintenance through it (default 0.5).
	Tick float64
	// Resources is the catalogue size (default 128).
	Resources int
	// Replicas is the number of holders placed per resource (default 1).
	Replicas int
	// ZipfS is the popularity skew: request popularity follows
	// P(rank k) ∝ 1/(k+1)^ZipfS. 0 (the default) is uniform.
	ZipfS float64
	// Window is the sliding-window size for the trailing quantiles
	// (default 256 queries).
	Window int
	// Scheme names the discovery mechanism (default "card"; any name
	// registered with the scheme package is valid).
	Scheme Scheme
	// Seed drives the placement and arrival streams. The request sequence
	// is a pure function of (Seed, QPS, Duration, Tick, Resources,
	// Replicas, ZipfS) — it never reads simulation state — so runs that
	// share these fields offer the identical load to every scheme.
	Seed uint64
	// Workers bounds the per-tick query fan-out (every scheme shards): 0
	// (default) uses up to GOMAXPROCS, 1 forces the serial reference path.
	// Outcomes are bit-identical at every setting.
	Workers int
	// KeepOutcomes retains the full per-query outcome stream in the
	// report (the equivalence tests pin it); leave false for long runs.
	KeepOutcomes bool
}

func (c *Config) fill() error {
	if !(c.QPS > 0) {
		return fmt.Errorf("workload: need QPS > 0, got %g", c.QPS)
	}
	if !(c.Duration > 0) {
		return fmt.Errorf("workload: need Duration > 0, got %g", c.Duration)
	}
	if c.Tick < 0 {
		return fmt.Errorf("workload: negative Tick %g", c.Tick)
	}
	if c.Tick == 0 {
		c.Tick = 0.5
	}
	if c.Resources < 0 || c.Replicas < 0 || c.Window < 0 {
		return fmt.Errorf("workload: negative Resources/Replicas/Window")
	}
	if c.Resources == 0 {
		c.Resources = 128
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if !(c.ZipfS >= 0) {
		return fmt.Errorf("workload: need ZipfS >= 0, got %g", c.ZipfS)
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if !scheme.Known(c.Scheme) {
		return fmt.Errorf("workload: unknown scheme %q (have %v)", c.Scheme, scheme.Names())
	}
	c.Scheme = scheme.Canon(c.Scheme)
	return nil
}

// Query is one offered request of the open-loop stream.
type Query struct {
	// T is the arrival time in simulated seconds.
	T float64
	// Src is the requesting node.
	Src NodeID
	// Resource is the requested resource (its Zipf popularity rank).
	Resource resource.ID
}

// Outcome is one executed query with its result.
type Outcome struct {
	Query
	// SrcDown marks arrivals whose source was churned down at execution
	// time: the request is counted as offered load and as a failure, but
	// no discovery runs and no messages are charged.
	SrcDown bool
	// Found reports whether some holder was located.
	Found bool
	// Messages is the control traffic of the discovery.
	Messages int64
	// Hops is the route length to the holder, or -1.
	Hops int
}

// Report aggregates one sustained-traffic run.
type Report struct {
	Scheme Scheme
	// Config is the effective configuration of the run, with defaults
	// filled — what consumers should display, since zero fields in the
	// requested config resolve here.
	Config Config
	// Queries is the total offered load (arrivals, including SrcDown).
	Queries int
	// Found counts successful discoveries.
	Found int
	// SrcDown counts arrivals dropped because the source was churned down.
	SrcDown int
	// Horizon is the simulated time the stream covered, in seconds.
	Horizon float64
	// SuccessPct is 100·Found/Queries (0 when no queries arrived).
	SuccessPct float64
	// Messages summarizes per-query control messages over the executed
	// stream (SrcDown arrivals excluded: they sent nothing). N, Mean and
	// Max are exact over the whole stream (Welford, O(1) memory); the
	// quantiles are over the trailing Config.Window samples — the run
	// never retains the full per-query record, so a 100k-node,
	// million-query stream costs O(Window) memory, not O(queries).
	Messages stats.Summary
	// Hops summarizes route lengths over successful queries, with the
	// same streamed semantics as Messages (exact N/Mean/Max, trailing
	// quantiles).
	Hops stats.Summary
	// WindowMessages / WindowSuccessPct are the trailing sliding-window
	// view at stream end: the last Config.Window executed (respectively
	// offered) queries.
	WindowMessages   stats.Summary
	WindowSuccessPct float64
	// Outcomes is the full per-query stream when Config.KeepOutcomes.
	Outcomes []Outcome
}

// Driver is the engine-shaped surface the workload drives. engine.Engine
// implements it; the interface keeps this package below the engine layer
// (the engine wraps Run as Engine.RunWorkload).
type Driver interface {
	// Advance moves simulated time forward dt seconds, running scheduled
	// maintenance (and churn expiry) on the way.
	Advance(dt float64)
	// Now returns the current simulation time.
	Now() float64
	// Nodes returns the network size.
	Nodes() int
	// Protocol exposes the CARD protocol instance queries run against.
	Protocol() *card.Protocol
	// Network exposes the substrate (topology, churn mask, recorder).
	Network() *manet.Network
}

// Run drives d with cfg's traffic and reports the outcome stream. The
// directory of resource holders is placed from cfg.Seed before traffic
// starts; the driver's clock advances by cfg.Duration.
func Run(d Driver, cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := d.Nodes()
	root := xrand.New(cfg.Seed)
	// Stream 0 places holders; stream 1 generates arrivals. Each query
	// consumes exactly three draws (gap, source, resource) so the sequence
	// never shifts with outcomes or simulation state.
	place := root.Derive(0)
	arrivals := root.Derive(1)
	dir := resource.NewDirectory(n)
	for id := 0; id < cfg.Resources; id++ {
		dir.PlaceReplicas(resource.ID(id), cfg.Replicas, place)
	}
	zipf := xrand.NewZipf(cfg.Resources, cfg.ZipfS)

	rep := &Report{Scheme: cfg.Scheme, Config: cfg, Horizon: cfg.Duration}
	// Streamed aggregation: Welford accumulators carry the exact
	// whole-stream N/Mean/Max, the windows carry the trailing samples the
	// quantiles are read from. Nothing here grows with the query count.
	winMsgs := stats.NewWindow(cfg.Window)
	winHops := stats.NewWindow(cfg.Window)
	winOK := stats.NewWindow(cfg.Window)
	var aggMsgs, aggHops stats.Welford

	prot, net := d.Protocol(), d.Network()
	sch, err := scheme.New(cfg.Scheme, scheme.Env{Net: net, Prot: prot, Dir: dir, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// One-time scheme setup (rendezvous registration floods) accounts on
	// the shared recorder before the stream opens.
	sch.Setup()
	limit := cfg.Workers
	if limit <= 0 {
		limit = par.Limit()
	}
	workers := make([]scheme.Worker, limit)

	start := d.Now()
	end := start + cfg.Duration
	next := start + arrivals.ExpFloat64()/cfg.QPS
	var batch []Query
	var outs []Outcome
	for now := start; now < end; {
		tickEnd := now + cfg.Tick
		if tickEnd > end {
			tickEnd = end
		}
		batch = batch[:0]
		for next <= tickEnd {
			batch = append(batch, Query{
				T:        next,
				Src:      NodeID(arrivals.Intn(n)),
				Resource: resource.ID(zipf.Draw(arrivals)),
			})
			next += arrivals.ExpFloat64() / cfg.QPS
		}
		// Mobility, topology refresh, churn expiry and every maintenance
		// boundary inside the tick run before the tick's queries: queries
		// observe the freshest snapshot, exactly like the one-shot batches.
		d.Advance(tickEnd - d.Now())
		// Scheme maintenance (rendezvous re-registration after mobility or
		// churn) runs serially on the fresh snapshot, before the queries.
		sch.Maintain(d.Now())
		if cap(outs) < len(batch) {
			outs = make([]Outcome, len(batch))
		}
		outs = outs[:len(batch)]
		runTick(prot, net, sch, limit, workers, batch, outs)
		for _, o := range outs {
			rep.Queries++
			ok := 0.0
			if o.Found {
				rep.Found++
				ok = 1
				aggHops.Add(float64(o.Hops))
				winHops.Add(float64(o.Hops))
			}
			if o.SrcDown {
				rep.SrcDown++
			} else {
				aggMsgs.Add(float64(o.Messages))
				winMsgs.Add(float64(o.Messages))
			}
			winOK.Add(ok)
			if cfg.KeepOutcomes {
				rep.Outcomes = append(rep.Outcomes, o)
			}
		}
		now = tickEnd
	}
	if rep.Queries > 0 {
		rep.SuccessPct = 100 * float64(rep.Found) / float64(rep.Queries)
	}
	rep.Messages = streamSummary(&aggMsgs, winMsgs)
	rep.Hops = streamSummary(&aggHops, winHops)
	rep.WindowMessages = winMsgs.Summary()
	if winOK.Len() > 0 {
		rep.WindowSuccessPct = 100 * winOK.Mean()
	}
	return rep, nil
}

// streamSummary combines a whole-stream Welford accumulator with the
// trailing window: exact N/Mean/Max, windowed P50/P95/P99 (see the
// Report.Messages doc). The quantiles stay monotone against the exact
// Max — the window is a subset of the stream, so its order statistics
// cannot exceed the stream maximum.
func streamSummary(agg *stats.Welford, win *stats.Window) stats.Summary {
	if agg.N() == 0 {
		return stats.Summary{}
	}
	w := win.Summary()
	return stats.Summary{
		N:    agg.N(),
		Mean: agg.Mean(),
		P50:  w.P50,
		P95:  w.P95,
		P99:  w.P99,
		Max:  agg.Max(),
	}
}

// runTick executes one tick's arrivals against the current snapshot,
// filling outs indexed like batch. Every scheme shards with the
// batch-query recipe: warm the neighborhood views (lazy per-epoch caches
// must not be populated concurrently), fan the batch across per-worker
// scheme.Workers with private tallies, then flush serially after the
// join.
func runTick(prot *card.Protocol, net *manet.Network, sch scheme.DiscoveryScheme,
	limit int, workers []scheme.Worker, batch []Query, outs []Outcome) {
	if len(batch) == 0 {
		return
	}
	if prot != nil {
		if w, ok := prot.Neighborhood().(neighborhood.Warmer); ok {
			w.WarmAll()
		}
	}
	par.WorkersN(limit, len(batch), func(worker, i int) {
		q := batch[i]
		if net.Down(q.Src) {
			outs[i] = downOutcome(q)
			return
		}
		sw := workers[worker]
		if sw == nil {
			sw = sch.Worker()
			workers[worker] = sw
		}
		r := sw.Discover(q.Src, q.Resource)
		outs[i] = Outcome{Query: q, Found: r.Found, Messages: r.Messages, Hops: r.PathHops}
	})
	// Serial flush after the join: the shared recorder sees one
	// deterministic sum per category, whatever the interleaving was.
	for _, sw := range workers {
		if sw != nil {
			sw.Flush()
		}
	}
}

func downOutcome(q Query) Outcome {
	return Outcome{Query: q, SrcDown: true, Hops: -1}
}
