package workload

import (
	"testing"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/scheme"
	"card/internal/topology"
	"card/internal/xrand"
)

// testDriver is a minimal Driver over a static network: Advance only moves
// the clock (and refreshes the snapshot so epochs behave like the
// engine's). The full engine-backed path — scheduled maintenance, churn,
// parallel equivalence — is exercised by the engine package's
// TestWorkloadParallelEquivalence.
type testDriver struct {
	net  *manet.Network
	prot *card.Protocol
	now  float64
}

func newTestDriver(t *testing.T, seed uint64, n int) *testDriver {
	t.Helper()
	area := geom.Rect{W: 710, H: 710}
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	net := manet.New(mobility.NewStatic(pts, area), 50, rng.Derive(1))
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	prot, err := card.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		t.Fatal(err)
	}
	prot.SelectAll(0)
	return &testDriver{net: net, prot: prot}
}

func (d *testDriver) Advance(dt float64) {
	if dt > 0 {
		d.now += dt
		d.net.RefreshAt(d.now)
	}
}
func (d *testDriver) Now() float64             { return d.now }
func (d *testDriver) Nodes() int               { return d.net.N() }
func (d *testDriver) Protocol() *card.Protocol { return d.prot }
func (d *testDriver) Network() *manet.Network  { return d.net }

func testTraffic() Config {
	return Config{
		QPS: 40, Duration: 5, Tick: 0.5,
		Resources: 24, Replicas: 3, ZipfS: 0.9,
		Window: 64, Seed: 11, KeepOutcomes: true,
	}
}

func TestRunValidatesConfig(t *testing.T) {
	d := newTestDriver(t, 1, 60)
	for name, bad := range map[string]Config{
		"no-qps":        {Duration: 5},
		"no-duration":   {QPS: 10},
		"negative-tick": {QPS: 10, Duration: 5, Tick: -1},
		"negative-zipf": {QPS: 10, Duration: 5, ZipfS: -0.5},
		"bad-scheme":    {QPS: 10, Duration: 5, Scheme: "zone-flooding"},
	} {
		if _, err := Run(d, bad); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}

func TestRunCARDStream(t *testing.T) {
	d := newTestDriver(t, 2, 250)
	rep, err := Run(d, testTraffic())
	if err != nil {
		t.Fatal(err)
	}
	// ~200 expected arrivals; Poisson keeps it near that.
	if rep.Queries < 120 || rep.Queries > 300 {
		t.Fatalf("arrivals = %d, want ~200", rep.Queries)
	}
	if len(rep.Outcomes) != rep.Queries {
		t.Fatalf("outcome stream %d != queries %d", len(rep.Outcomes), rep.Queries)
	}
	if rep.Found == 0 || rep.SuccessPct <= 0 {
		t.Error("no query succeeded on a connected replicated catalogue")
	}
	if rep.SrcDown != 0 {
		t.Errorf("%d sources down without churn", rep.SrcDown)
	}
	if rep.Horizon != 5 || d.Now() != 5 {
		t.Errorf("horizon %g, driver clock %g, want 5", rep.Horizon, d.Now())
	}
	if rep.Messages.N != int64(rep.Queries) {
		t.Errorf("message summary over %d samples, want %d", rep.Messages.N, rep.Queries)
	}
	if rep.Hops.N != int64(rep.Found) {
		t.Errorf("hop summary over %d samples, want %d successes", rep.Hops.N, rep.Found)
	}
	if rep.Messages.P50 > rep.Messages.P95 || rep.Messages.P95 > rep.Messages.P99 ||
		rep.Messages.P99 > rep.Messages.Max {
		t.Errorf("quantiles not monotone: %+v", rep.Messages)
	}
	if rep.WindowMessages.N == 0 {
		t.Error("trailing window empty after 5 s of traffic")
	}
	// Arrivals are strictly increasing within the horizon.
	prev := 0.0
	for i, o := range rep.Outcomes {
		if o.T < prev || o.T > 5 {
			t.Fatalf("outcome %d arrival %g out of order/horizon", i, o.T)
		}
		prev = o.T
	}
}

// TestRunDeterministic pins that two runs over identical engines and
// configs produce identical reports (the workload never reads wall clock
// or shared global state).
func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		d := newTestDriver(t, 3, 200)
		rep, err := Run(d, testTraffic())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.Found != b.Found || a.Messages != b.Messages ||
		a.Hops != b.Hops || a.WindowMessages != b.WindowMessages {
		t.Fatalf("reports diverge:\n a %+v\n b %+v", a, b)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d diverges: %+v vs %+v", i, a.Outcomes[i], b.Outcomes[i])
		}
	}
}

// TestSchemesShareOfferedLoad pins the cross-scheme fairness property: the
// same seed offers the bit-identical request sequence (arrival times,
// sources, resources) to every scheme — only the outcomes differ.
func TestSchemesShareOfferedLoad(t *testing.T) {
	schemes := scheme.Names()
	streams := make(map[string][]Query, len(schemes))
	reports := make(map[string]*Report, len(schemes))
	for _, s := range schemes {
		// 500 nodes over the 710 m square are well connected (mean degree
		// ~8): flooding pays component-sized per-query traffic there,
		// which is the paper's cost headline the last assertion pins.
		d := newTestDriver(t, 4, 500)
		cfg := testTraffic()
		cfg.Scheme = s
		rep, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reports[s] = rep
		for _, o := range rep.Outcomes {
			streams[s] = append(streams[s], o.Query)
		}
	}
	for _, s := range schemes {
		if s == CARD {
			continue
		}
		if len(streams[s]) != len(streams[CARD]) {
			t.Fatalf("%v offered %d queries, card %d", s, len(streams[s]), len(streams[CARD]))
		}
		for i := range streams[s] {
			if streams[s][i] != streams[CARD][i] {
				t.Fatalf("%v query %d = %+v, card %+v", s, i, streams[s][i], streams[CARD][i])
			}
		}
	}
	// Flooding answers every reachable request but pays component-sized
	// traffic: its success can't trail CARD's, its mean cost must exceed.
	if reports[Flood].SuccessPct < reports[CARD].SuccessPct {
		t.Errorf("flood success %.1f%% below CARD %.1f%%",
			reports[Flood].SuccessPct, reports[CARD].SuccessPct)
	}
	if reports[Flood].Messages.Mean <= reports[CARD].Messages.Mean {
		t.Errorf("flood mean cost %.1f not above CARD %.1f",
			reports[Flood].Messages.Mean, reports[CARD].Messages.Mean)
	}
}

// TestZipfSkewShowsInStream checks the popularity model end to end: with
// strong skew, the hottest resource rank is requested far more often than
// the coldest.
func TestZipfSkewShowsInStream(t *testing.T) {
	d := newTestDriver(t, 5, 100)
	cfg := testTraffic()
	cfg.QPS = 200
	cfg.ZipfS = 1.2
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Resources)
	for _, o := range rep.Outcomes {
		counts[o.Resource]++
	}
	cold := counts[len(counts)-1] + counts[len(counts)-2]
	if counts[0] <= 3*cold {
		t.Errorf("rank 0 requested %d times vs coldest pair %d — skew missing", counts[0], cold)
	}
}

// TestOutcomesDroppedByDefault pins the memory contract for long runs.
func TestOutcomesDroppedByDefault(t *testing.T) {
	d := newTestDriver(t, 6, 100)
	cfg := testTraffic()
	cfg.KeepOutcomes = false
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes != nil {
		t.Errorf("outcomes retained without KeepOutcomes: %d", len(rep.Outcomes))
	}
	if rep.Queries == 0 || rep.Messages.N == 0 {
		t.Error("summaries missing when outcomes dropped")
	}
}
