package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"card/internal/xrand"
)

func TestFiresInTimeOrder(t *testing.T) {
	q := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		q.At(at, func(now float64) { got = append(got, now) })
	}
	q.Drain()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(1, func(float64) { got = append(got, i) })
	}
	q.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	q := New()
	q.At(2.5, func(now float64) {
		if now != 2.5 {
			t.Errorf("callback now = %v, want 2.5", now)
		}
	})
	q.Step()
	if q.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", q.Now())
	}
}

func TestAfter(t *testing.T) {
	q := New()
	q.At(1, func(now float64) {
		q.After(2, func(now2 float64) {
			if now2 != 3 {
				t.Errorf("After fired at %v, want 3", now2)
			}
		})
	})
	q.Drain()
}

func TestSchedulingInPastPanics(t *testing.T) {
	q := New()
	q.At(5, func(float64) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	q.At(1, func(float64) {})
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	New().At(1, nil)
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	h := q.At(1, func(float64) { fired = true })
	if !h.Cancel() {
		t.Error("Cancel of pending event returned false")
	}
	if h.Cancel() {
		t.Error("second Cancel returned true")
	}
	q.Drain()
	if fired {
		t.Error("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var h Handle
	if h.Cancel() {
		t.Error("zero handle Cancel returned true")
	}
}

func TestRunUntil(t *testing.T) {
	q := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		q.At(at, func(now float64) { fired = append(fired, now) })
	}
	q.RunUntil(2.5)
	if len(fired) != 2 {
		t.Errorf("RunUntil(2.5) fired %d events, want 2: %v", len(fired), fired)
	}
	if q.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", q.Now())
	}
	q.RunUntil(10)
	if len(fired) != 4 {
		t.Errorf("after RunUntil(10), fired %d events, want 4", len(fired))
	}
	if q.Now() != 10 {
		t.Errorf("Now = %v, want 10", q.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	q := New()
	fired := false
	q.At(2, func(float64) { fired = true })
	q.RunUntil(2)
	if !fired {
		t.Error("event at exactly t did not fire in RunUntil(t)")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	q := New()
	var order []string
	q.At(1, func(float64) {
		order = append(order, "a")
		q.At(1.5, func(float64) { order = append(order, "b") })
	})
	q.At(2, func(float64) { order = append(order, "c") })
	q.Drain()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTicker(t *testing.T) {
	q := New()
	var times []float64
	tk := q.Every(1, 2, func(now float64) {
		times = append(times, now)
	})
	q.RunUntil(7.5)
	tk.Stop()
	q.RunUntil(20)
	want := []float64{1, 3, 5, 7}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestTickerStopFromWithin(t *testing.T) {
	q := New()
	count := 0
	var tk *Ticker
	tk = q.Every(0, 1, func(now float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	q.RunUntil(100)
	if count != 3 {
		t.Errorf("ticker fired %d times after self-stop at 3", count)
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(period=0) did not panic")
		}
	}()
	New().Every(0, 0, func(float64) {})
}

func TestLen(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Error("new queue Len != 0")
	}
	q.At(1, func(float64) {})
	h := q.At(2, func(float64) {})
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	h.Cancel()
	if q.Len() != 1 {
		t.Errorf("Len after cancel = %d, want 1", q.Len())
	}
}

func TestQuickRandomScheduleFiresSorted(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		q := New()
		n := 1 + rng.Intn(100)
		var fired []float64
		for i := 0; i < n; i++ {
			at := rng.Range(0, 1000)
			q.At(at, func(now float64) { fired = append(fired, now) })
		}
		q.Drain()
		return len(fired) == n && sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCancelSubsetNeverFires(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		q := New()
		n := 1 + rng.Intn(60)
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = q.At(rng.Range(0, 100), func(float64) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Bool(0.5) {
				cancelled[i] = true
				handles[i].Cancel()
			}
		}
		q.Drain()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndDrain(b *testing.B) {
	rng := xrand.New(1)
	ats := make([]float64, 1000)
	for i := range ats {
		ats[i] = rng.Range(0, 1e6)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := New()
		for _, at := range ats {
			q.At(at, func(float64) {})
		}
		q.Drain()
	}
}

// TestStressLargeHeap is the large-N regression for the heap: schedule
// hundreds of thousands of events in adversarial (reverse-sorted, then
// random, then heavily duplicated) timestamp order, interleave cancels and
// reschedules while draining, and check global time order plus stable FIFO
// among every run of equal timestamps. A 100k-node engine hangs this much
// state off one queue (maintenance boundaries, workload ticks, probes), so
// the heap must neither corrupt its order invariant under growth and
// shrinkage nor lose the seq tie-break at scale.
func TestStressLargeHeap(t *testing.T) {
	const n = 200_000
	rng := xrand.New(42)
	q := New()
	type firing struct {
		at  float64
		seq int // scheduling order among events sharing a timestamp
	}
	var fired []firing
	seqAt := make(map[float64]int)
	schedule := func(at float64) {
		seq := seqAt[at]
		seqAt[at]++
		q.At(at, func(now float64) {
			if now != at {
				t.Fatalf("event scheduled for %v fired at %v", at, now)
			}
			fired = append(fired, firing{at, seq})
		})
	}
	// Phase 1: reverse-sorted arrivals (worst case for naive insertion),
	// quantized so equal timestamps are common.
	for i := n / 2; i > 0; i-- {
		schedule(float64(i%1024) + 1)
	}
	// Phase 2: random arrivals over the same quantized range.
	for i := 0; i < n/2; i++ {
		schedule(float64(rng.Intn(1024)) + 1)
	}
	if q.Len() != n {
		t.Fatalf("queue holds %d events, want %d", q.Len(), n)
	}
	// Cancel a pseudo-random tenth and replace each with a later event, so
	// the heap shrinks and regrows while holding hundreds of thousands of
	// entries. Cancelled ids must not fire; replacements must.
	cancelled := 0
	for i := 0; i < n/10; i++ {
		h := q.At(float64(rng.Intn(1024))+1, func(float64) {
			t.Fatal("cancelled event fired")
		})
		if !h.Cancel() {
			t.Fatal("cancel of pending event failed")
		}
		cancelled++
		schedule(2000 + float64(i%64))
	}
	total := q.Drain()
	if want := n + n/10; total != want || len(fired) != want {
		t.Fatalf("drained %d events (recorded %d), want %d (cancelled %d never fire)",
			total, len(fired), want, cancelled)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at {
			t.Fatalf("firing %d out of time order: %v after %v", i, b.at, a.at)
		}
		if b.at == a.at && b.seq != a.seq+1 {
			t.Fatalf("equal-time FIFO broken at firing %d: seq %d after %d at t=%v",
				i, b.seq, a.seq, b.at)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.Len())
	}
}
