// Package eventq implements a discrete-event scheduler: a simulated clock
// and a time-ordered queue of callbacks.
//
// The MANET simulator is event driven at the protocol timescale — periodic
// DSDV dumps, contact validation rounds, topology refreshes — while
// individual control packets (CSQ walks, DSQ fan-outs) execute as
// synchronous hop-by-hop walks inside a single event, because packet flight
// time is orders of magnitude below the mobility timescale (the paper's
// NS-2 setup likewise ignores MAC/PHY timing).
//
// Events at equal timestamps fire in scheduling order (stable FIFO), which
// keeps runs deterministic.
package eventq

import (
	"container/heap"
	"fmt"
)

// Handle identifies a scheduled event and can cancel it.
type Handle struct {
	q  *Queue
	id uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.q == nil {
		return false
	}
	_, pending := h.q.pending[h.id]
	if pending {
		delete(h.q.pending, h.id)
	}
	return pending
}

type event struct {
	at  float64
	seq uint64 // tie-break: FIFO among equal timestamps
	id  uint64
	fn  func(now float64)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event queue with a monotonically advancing clock.
// The zero value is not usable; call New.
type Queue struct {
	now     float64
	events  eventHeap
	nextSeq uint64
	nextID  uint64
	pending map[uint64]struct{}
}

// New returns an empty queue with the clock at 0.
func New() *Queue {
	return &Queue{pending: make(map[uint64]struct{})}
}

// Now returns the current simulated time in seconds.
func (q *Queue) Now() float64 { return q.now }

// Len returns the number of scheduled (non-cancelled) events.
func (q *Queue) Len() int { return len(q.pending) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (q *Queue) At(t float64, fn func(now float64)) Handle {
	if t < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", t, q.now))
	}
	if fn == nil {
		panic("eventq: nil event function")
	}
	e := &event{at: t, seq: q.nextSeq, id: q.nextID, fn: fn}
	q.nextSeq++
	q.nextID++
	q.pending[e.id] = struct{}{}
	heap.Push(&q.events, e)
	return Handle{q: q, id: e.id}
}

// After schedules fn to run delay seconds from now.
func (q *Queue) After(delay float64, fn func(now float64)) Handle {
	if delay < 0 {
		panic("eventq: negative delay")
	}
	return q.At(q.now+delay, fn)
}

// Every schedules fn to run now+offset, then every period seconds until the
// returned handle is cancelled or the run horizon ends. period must be
// positive.
func (q *Queue) Every(offset, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("eventq: non-positive period")
	}
	t := &Ticker{q: q, period: period, fn: fn}
	t.handle = q.After(offset, t.tick)
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	q       *Queue
	period  float64
	fn      func(now float64)
	handle  Handle
	stopped bool
}

func (t *Ticker) tick(now float64) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped { // fn may have stopped us
		t.handle = t.q.After(t.period, t.tick)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (q *Queue) Step() bool {
	for len(q.events) > 0 {
		e := heap.Pop(&q.events).(*event)
		if _, ok := q.pending[e.id]; !ok {
			continue // cancelled
		}
		delete(q.pending, e.id)
		q.now = e.at
		e.fn(q.now)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is after t, then advances the clock to exactly t.
func (q *Queue) RunUntil(t float64) {
	if t < q.now {
		panic(fmt.Sprintf("eventq: RunUntil(%v) before now %v", t, q.now))
	}
	for len(q.events) > 0 {
		// Peek at the earliest live event.
		e := q.events[0]
		if _, ok := q.pending[e.id]; !ok {
			heap.Pop(&q.events)
			continue
		}
		if e.at > t {
			break
		}
		q.Step()
	}
	q.now = t
}

// Drain runs all pending events to exhaustion and returns how many ran.
// Use in tests; production runs should bound time with RunUntil.
func (q *Queue) Drain() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}
