package geom

import (
	"math"
	"testing"
	"testing/quick"

	"card/internal/xrand"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("Dist(self) = %v, want 0", got)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	if got := p.Add(3, -1); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := (Point{5, 7}).Sub(Point{2, 3}); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{100, 50}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 50}) || !r.Contains(Point{50, 25}) {
		t.Error("Contains rejects interior/boundary points")
	}
	if r.Contains(Point{-1, 0}) || r.Contains(Point{0, 51}) {
		t.Error("Contains accepts exterior points")
	}
	if got := r.Clamp(Point{-5, 60}); got != (Point{0, 50}) {
		t.Errorf("Clamp = %v, want (0,50)", got)
	}
	if got := r.Clamp(Point{40, 20}); got != (Point{40, 20}) {
		t.Errorf("Clamp of interior point moved it: %v", got)
	}
	if got := r.Area(); got != 5000 {
		t.Errorf("Area = %v", got)
	}
}

func TestGridRejectsBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with cell=0 did not panic")
		}
	}()
	NewGrid(Rect{10, 10}, 0)
}

// bruteNeighbors returns ids within radius of p by exhaustive scan.
func bruteNeighbors(pts []Point, p Point, radius float64) map[int32]bool {
	out := map[int32]bool{}
	r2 := radius * radius
	for i, q := range pts {
		if p.Dist2(q) <= r2 {
			out[int32(i)] = true
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := xrand.New(2024)
	area := Rect{710, 710}
	const n = 400
	const radius = 50.0
	pts := make([]Point, n)
	g := NewGrid(area, radius)
	for i := range pts {
		pts[i] = Point{rng.Range(0, area.W), rng.Range(0, area.H)}
		g.Insert(int32(i), pts[i])
	}
	for probe := 0; probe < 50; probe++ {
		p := Point{rng.Range(0, area.W), rng.Range(0, area.H)}
		want := bruteNeighbors(pts, p, radius)
		got := map[int32]bool{}
		g.VisitWithin(p, radius, func(id int32) {
			if p.Dist2(pts[id]) <= radius*radius {
				got[id] = true
			}
		})
		if len(got) != len(want) {
			t.Fatalf("probe %d: grid found %d, brute force %d", probe, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("probe %d: grid missed node %d", probe, id)
			}
		}
	}
}

func TestGridVisitIsSuperset(t *testing.T) {
	// Every node truly within radius must be visited, even at area borders.
	rng := xrand.New(7)
	area := Rect{100, 100}
	g := NewGrid(area, 30)
	pts := []Point{{0, 0}, {100, 100}, {0, 100}, {100, 0}, {50, 50}}
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	for probe := 0; probe < 200; probe++ {
		p := Point{rng.Range(0, 100), rng.Range(0, 100)}
		visited := map[int32]bool{}
		g.VisitWithin(p, 30, func(id int32) { visited[id] = true })
		for i, q := range pts {
			if p.Dist(q) <= 30 && !visited[int32(i)] {
				t.Fatalf("node %d at %v within 30 of %v but not visited", i, q, p)
			}
		}
	}
}

func TestGridReset(t *testing.T) {
	g := NewGrid(Rect{10, 10}, 5)
	g.Insert(1, Point{1, 1})
	g.Reset()
	count := 0
	g.VisitWithin(Point{1, 1}, 5, func(int32) { count++ })
	if count != 0 {
		t.Errorf("after Reset, VisitWithin saw %d nodes, want 0", count)
	}
}

func TestGridHandlesOutOfAreaPoints(t *testing.T) {
	// Mobility models clamp, but defensive: inserts outside the area must not
	// panic and must remain findable.
	g := NewGrid(Rect{10, 10}, 5)
	g.Insert(1, Point{-3, 20})
	found := false
	g.VisitWithin(Point{-3, 20}, 5, func(id int32) { found = id == 1 })
	if !found {
		t.Error("out-of-area point not rediscovered by VisitWithin at same spot")
	}
}

func TestQuickDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := Point{rng.Range(0, 1000), rng.Range(0, 1000)}
		b := Point{rng.Range(0, 1000), rng.Range(0, 1000)}
		c := Point{rng.Range(0, 1000), rng.Range(0, 1000)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickClampIdempotentAndInside(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		r := Rect{710, 710}
		c := r.Clamp(Point{x, y})
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGridBuildAndQuery(b *testing.B) {
	rng := xrand.New(1)
	area := Rect{710, 710}
	const n = 500
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Range(0, area.W), rng.Range(0, area.H)}
	}
	g := NewGrid(area, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		for j, p := range pts {
			g.Insert(int32(j), p)
		}
		total := 0
		for _, p := range pts {
			g.VisitWithin(p, 50, func(int32) { total++ })
		}
	}
}
