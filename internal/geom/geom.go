// Package geom provides the 2-D geometry primitives used by the MANET
// simulator: points, rectangular deployment areas, and a uniform-grid
// spatial index for unit-disk neighbor queries.
//
// All coordinates are in meters, matching the paper's scenario tables
// (500 m × 500 m up to 1000 m × 1000 m areas, 30–70 m transmission ranges).
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Sub returns the vector p - q as a Point.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance; cheaper when only comparing
// against a squared radius.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle anchored at the origin: the deployment
// area [0, W] × [0, H].
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the rectangle (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{math.Min(math.Max(p.X, 0), r.W), math.Min(math.Max(p.Y, 0), r.H)}
}

// Area returns W*H in square meters.
func (r Rect) Area() float64 { return r.W * r.H }

func (r Rect) String() string { return fmt.Sprintf("%gm x %gm", r.W, r.H) }

// Grid is a uniform-bucket spatial index over a Rect. With cell size equal to
// the radio range, a unit-disk neighbor query touches at most 9 cells, making
// adjacency construction O(N · density) instead of O(N²).
//
// A Grid is rebuilt from scratch each time node positions change (Reset +
// Insert); queries between rebuilds see a consistent snapshot.
type Grid struct {
	area  Rect
	cell  float64
	nx    int
	ny    int
	cells [][]int32 // node ids per bucket
}

// maxGridCells bounds the bucket count: a sparse network (tiny radio range
// over a huge area) must not allocate area/range² buckets. Coarsening the
// cell keeps queries correct — VisitWithin is an over-approximation by
// bucket either way — at worst visiting more candidates per query.
const maxGridCells = 1 << 20

// NewGrid creates an index over area with the given cell size (> 0). The
// effective cell may be coarser than requested when the area/cell ratio
// would exceed maxGridCells buckets.
func NewGrid(area Rect, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	dims := func(c float64) (int, int) {
		nx := int(math.Ceil(area.W/c)) + 1
		ny := int(math.Ceil(area.H/c)) + 1
		if nx < 1 {
			nx = 1
		}
		if ny < 1 {
			ny = 1
		}
		return nx, ny
	}
	nx, ny := dims(cell)
	// Compare in float64: for extreme area/cell ratios the int product
	// nx*ny can overflow before the guard sees it.
	for float64(nx)*float64(ny) > maxGridCells {
		cell *= 2
		nx, ny = dims(cell)
	}
	return &Grid{area: area, cell: cell, nx: nx, ny: ny, cells: make([][]int32, nx*ny)}
}

// Reset clears the index, retaining bucket capacity to limit allocation
// churn across rebuilds.
func (g *Grid) Reset() {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
}

func (g *Grid) index(p Point) int {
	cx := int(p.X / g.cell)
	cy := int(p.Y / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Insert records that node id is at position p.
func (g *Grid) Insert(id int32, p Point) {
	i := g.index(p)
	g.cells[i] = append(g.cells[i], id)
}

// Remove deletes one occurrence of id from the bucket holding position p
// (which must be where the id was inserted). It reports whether the id was
// found. Bucket order is not preserved — callers that need deterministic
// neighbor order must sort after distance filtering, as Build does.
func (g *Grid) Remove(id int32, p Point) bool {
	i := g.index(p)
	cell := g.cells[i]
	for j, v := range cell {
		if v == id {
			cell[j] = cell[len(cell)-1]
			g.cells[i] = cell[:len(cell)-1]
			return true
		}
	}
	return false
}

// VisitWithin calls fn for every inserted node id whose bucket could contain
// a point within radius of p. Callers must distance-filter: the visit is a
// superset of the true in-range set (bucket granularity), never a subset.
func (g *Grid) VisitWithin(p Point, radius float64, fn func(id int32)) {
	x0, y0, x1, y1 := g.BucketRange(p, radius)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, id := range g.cells[y*g.nx+x] {
				fn(id)
			}
		}
	}
}

// BucketRange returns the inclusive cell-coordinate bounds [x0,x1]×[y0,y1]
// whose buckets can contain points within radius of p. Together with
// Bucket it lets hot loops scan candidates without per-candidate callback
// indirection (the unit-disk builders' inner loop).
func (g *Grid) BucketRange(p Point, radius float64) (x0, y0, x1, y1 int) {
	span := int(math.Ceil(radius / g.cell))
	// Clamp the center cell exactly as Insert does, so that points outside
	// the nominal area are still found near where they were filed.
	center := g.index(p)
	cx, cy := center%g.nx, center/g.nx
	x0, x1 = cx-span, cx+span
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= g.nx {
		x1 = g.nx - 1
	}
	y0, y1 = cy-span, cy+span
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= g.ny {
		y1 = g.ny - 1
	}
	return x0, y0, x1, y1
}

// Bucket returns the ids filed in cell (x, y). Callers must not mutate the
// slice, and must treat it as invalidated by Insert/Remove/Reset.
func (g *Grid) Bucket(x, y int) []int32 { return g.cells[y*g.nx+x] }
