package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// knownKeys is the set of suppression keywords the full suite accepts;
// directive keys outside it are typos and are always reported.
func knownKeys() map[string]bool {
	m := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		m[a.Key] = true
	}
	return m
}

// RunPackage runs analyzers over one typechecked package and returns
// the surviving findings: analyzer diagnostics minus suppressed ones,
// plus directive hygiene findings (bare reasons, unknown keys, unused
// suppressions). Test files are outside the lint surface — the
// equivalence tests themselves iterate maps and read clocks freely —
// so _test.go files and test-binary packages are skipped entirely.
func RunPackage(scope *Scope, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string, analyzers []*Analyzer) []Diagnostic {
	// Normalize test-variant paths ("p [p.test]" → "p") and skip test
	// binaries and external test packages outright.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if strings.HasSuffix(path, ".test") || strings.HasSuffix(pkg.Name(), "_test") {
		return nil
	}
	var srcFiles []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		srcFiles = append(srcFiles, f)
	}
	if len(srcFiles) == 0 {
		return nil
	}

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     fset,
			Files:    srcFiles,
			Pkg:      pkg,
			Info:     info,
			Path:     path,
			Scope:    scope,
			analyzer: a,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			raw = append(raw, Diagnostic{
				Analyzer: a.Name,
				Pos:      token.Position{Filename: path},
				Message:  fmt.Sprintf("analyzer error: %v", err),
			})
		}
	}

	var directives []*directive
	for _, f := range srcFiles {
		directives = append(directives, parseDirectives(fset, f)...)
	}

	ranKeys := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ranKeys[a.Key] = true
	}

	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives {
			if dir.suppresses(d.Key, d.Pos) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	known := knownKeys()
	for _, dir := range directives {
		switch {
		case !known[dir.key]:
			out = append(out, Diagnostic{
				Analyzer: "cardlint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unknown cardlint directive key %q (known: ordered, impure, parallel, stream)", dir.key),
			})
		case dir.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "cardlint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("//cardlint:%s needs a reason: state why this cannot perturb results", dir.key),
			})
		case !dir.used && ranKeys[dir.key]:
			out = append(out, Diagnostic{
				Analyzer: "cardlint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused //cardlint:%s suppression: nothing on this or the next line is flagged", dir.key),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
