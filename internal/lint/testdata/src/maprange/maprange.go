// Package maprange is a cardlint fixture exercising the maprange
// analyzer: flagged iterations, the two unannotated exemptions, valid
// suppression, and the three directive-hygiene findings.
package maprange

import "sort"

func plain(m map[string]int) int {
	s := 0
	for _, v := range m { // want `range over map map\[string\]int`
		s += v
	}
	return s
}

// keyOnly sorts the collected slice, but the loop body is not exactly
// one append, so the collect-then-sort exemption must not apply: the
// extra statement could observe iteration order.
func keyOnly(m map[string]int) []string {
	var out []string
	n := 0
	for k := range m { // want `range over map`
		n++
		out = append(out, k)
	}
	sort.Strings(out)
	_ = n
	return out
}

func keyless(m map[string]int) int {
	n := 0
	for range m { // no iteration variables: the body cannot observe keys
		n++
	}
	return n
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // collected then sorted: order is canonical before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

func annotated(m map[string]int) int {
	s := 0
	//cardlint:ordered commutative sum over values; visit order cannot change the total
	for _, v := range m {
		s += v
	}
	return s
}

func annotatedTrailing(m map[string]int) int {
	s := 0
	for _, v := range m { //cardlint:ordered commutative sum, trailing form
		s += v
	}
	return s
}

func bareAnnotation(m map[string]int) int {
	s := 0
	// wantbelow `needs a reason`
	//cardlint:ordered
	for _, v := range m { // want `range over map`
		s += v
	}
	return s
}

func unknownKey(m map[string]int) int {
	s := 0
	// wantbelow `unknown cardlint directive key`
	//cardlint:sorted keys are fine here
	for _, v := range m { // want `range over map`
		s += v
	}
	return s
}

func unusedSuppression(xs []int) int {
	s := 0
	// wantbelow `unused //cardlint:ordered suppression`
	//cardlint:ordered slices already iterate in index order
	for _, v := range xs {
		s += v
	}
	return s
}
