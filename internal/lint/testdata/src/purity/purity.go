// Package purity is a cardlint fixture exercising the purity analyzer
// in a deterministic (sim) package: banned imports, wall-clock reads,
// env/pid reads, and a suppressed host-identity read.
package purity

import (
	crand "crypto/rand" // want `import of crypto/rand`
	"math/rand"         // want `import of math/rand`
	"os"
	"time"
)

func draw() int { return rand.Int() }

func entropy(b []byte) { crand.Read(b) }

func now() int64 { return time.Now().Unix() } // want `time\.Now in sim package`

func elapsed(t0 time.Time) time.Duration { return time.Since(t0) } // want `time\.Since in sim package`

func home() string { return os.Getenv("HOME") } // want `os\.Getenv in sim package`

func pid() int { return os.Getpid() } // want `os\.Getpid in sim package`

func host() string {
	//cardlint:impure host identity feeds a log prefix, never a result
	h, _ := os.Hostname()
	return h
}

// time.Time values and duration arithmetic are fine; only clock reads
// are banned.
func add(t time.Time, d time.Duration) time.Time { return t.Add(d) }
