// Package gostmt is a cardlint fixture exercising the gostmt analyzer:
// go statements and raw sync primitives outside internal/par, the
// sync.Pool/atomic allowances, and a suppressed registry guard.
package gostmt

import (
	"sync"
	"sync/atomic"
)

func spawn(f func()) {
	go f() // want `go statement outside internal/par`
}

type guarded struct {
	mu sync.Mutex // want `raw sync\.Mutex outside internal/par`
	n  int
}

var wg sync.WaitGroup // want `raw sync\.WaitGroup outside internal/par`

// wantbelow `raw sync\.RWMutex outside internal/par`
var rw sync.RWMutex

//cardlint:parallel construction-time registry guard off the sim path
var okMu sync.Mutex

// sync.Pool and atomic counters are deliberately allowed: scratch reuse
// and commutative tallies do not order results.
var scratch sync.Pool

var hits atomic.Uint64
