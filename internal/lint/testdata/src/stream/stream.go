// Package stream is a cardlint fixture exercising the streamdiscipline
// analyzer: shared generators captured by par worker closures, the
// StreamSeed and per-worker exemptions, and stored-field discipline.
package stream

import (
	"card/internal/par"
	"card/internal/xrand"
)

func sharedDraw(n int, root *xrand.Rand, out []float64) {
	par.Do(n, func(i int) {
		out[i] = root.Float64() // want `captured by a par worker closure`
	})
}

func sharedReseed(n int, root *xrand.Rand, out []float64) {
	par.Do(n, func(i int) {
		root.Reseed(uint64(i))  // want `captured by a par worker closure`
		out[i] = root.Float64() // want `captured by a par worker closure`
	})
}

// streamSeedOnly is the legal shared use: StreamSeed reads the
// immutable lineage, it does not advance the generator.
func streamSeedOnly(n int, root *xrand.Rand, out []uint64) {
	par.Do(n, func(i int) {
		out[i] = root.StreamSeed(uint64(i), 0)
	})
}

// perWorker is the canonical pattern: worker-owned generators reseeded
// to (item, round) substreams. rngs[w] is worker-private by index.
func perWorker(n int, root *xrand.Rand, out []float64) {
	rngs := make([]*xrand.Rand, par.Limit())
	for w := range rngs {
		rngs[w] = root.Derive(uint64(w))
	}
	par.Workers(n, func(w, i int) {
		rngs[w].Reseed(root.StreamSeed(uint64(i), 0))
		out[i] = rngs[w].Float64()
	})
}

// localRand declares its generator inside the closure: not a capture.
func localRand(n int, root *xrand.Rand, out []float64) {
	par.Do(n, func(i int) {
		r := xrand.New(root.StreamSeed(uint64(i), 1))
		out[i] = r.Float64()
	})
}

func annotatedCapture(n int, root *xrand.Rand, out []float64) {
	par.Do(n, func(i int) {
		//cardlint:stream fixture: documents the suppression path, not a pattern to copy
		out[i] = root.Float64()
	})
}

type undisciplined struct {
	rng *xrand.Rand // want `stores a \*xrand\.Rand with no Reseed/StreamSeed/Derive discipline`
}

type disciplined struct {
	rng *xrand.Rand // ok: reseeded per (item, round) in step below
}

func (d *disciplined) step(item, round uint64, root *xrand.Rand) float64 {
	d.rng.Reseed(root.StreamSeed(item, round))
	return d.rng.Float64()
}

type sliceDisciplined struct {
	rngs []*xrand.Rand // ok: every element assigned from Derive below
}

func newSliceDisciplined(n int, root *xrand.Rand) *sliceDisciplined {
	s := &sliceDisciplined{rngs: make([]*xrand.Rand, n)}
	for i := range s.rngs {
		s.rngs[i] = root.Derive(uint64(i))
	}
	return s
}

type litDisciplined struct {
	rng *xrand.Rand // ok: composite literal below derives it
}

func newLitDisciplined(root *xrand.Rand) *litDisciplined {
	return &litDisciplined{rng: root.Derive(7)}
}

type annotatedField struct {
	//cardlint:stream fixture: the owning engine reseeds this outside the package
	rng *xrand.Rand
}
