// Package purityexp is a cardlint fixture for the experiments tier:
// wall-clock reads are allowed (the harness prints real elapsed time),
// but the RNG and environment bans still hold.
package purityexp

import (
	"math/rand" // want `import of math/rand`
	"os"
	"time"
)

func draw() int { return rand.Int() }

func timed(f func()) time.Duration {
	t0 := time.Now() // allowed: experiments report wall-clock timings
	f()
	return time.Since(t0)
}

func home() string { return os.Getenv("HOME") } // want `os\.Getenv in sim package`
