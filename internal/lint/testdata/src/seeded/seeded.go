// Package seeded is a deliberately contract-violating fixture: the
// meta-test runs the full suite over it and must see unannotated
// findings, proving the repo-wide zero-findings assertion is not
// vacuously green.
package seeded

import "time"

func tally(m map[int]int) int {
	s := 0
	for _, v := range m { // maprange: unannotated
		s += v
	}
	return s
}

func stamp() int64 { return time.Now().UnixNano() } // purity: unannotated
