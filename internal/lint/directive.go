package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one //cardlint:<key> <reason> annotation.
type directive struct {
	pos    token.Position
	key    string
	reason string
	used   bool
}

// parseDirectives extracts every //cardlint: comment from file. The
// directive grammar is deliberately rigid: the comment must start
// exactly with "//cardlint:" (no space before the colon), the key runs
// to the first space, and everything after it is the reason.
func parseDirectives(fset *token.FileSet, file *ast.File) []*directive {
	var ds []*directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//cardlint:")
			if !ok {
				continue
			}
			key, reason, _ := strings.Cut(text, " ")
			ds = append(ds, &directive{
				pos:    fset.Position(c.Pos()),
				key:    strings.TrimSpace(key),
				reason: strings.TrimSpace(reason),
			})
		}
	}
	return ds
}

// suppresses reports whether d silences a finding with key at pos: same
// file, matching key, non-empty reason, and the directive sits on the
// finding's line (trailing comment) or the line directly above.
func (d *directive) suppresses(key string, pos token.Position) bool {
	return d.key == key &&
		d.reason != "" &&
		d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line+1 == pos.Line)
}
