package lint

import (
	"go/ast"
	"go/types"
)

// xrandPath is the deterministic RNG package every stream check keys on.
const xrandPath = "card/internal/xrand"

// derivationMethods are the xrand.Rand calls that constitute stream
// discipline: StreamSeed is a pure read of the lineage, Reseed resets a
// worker-owned generator to a named substream, SplitStream/Derive mint
// independent child streams.
var derivationMethods = map[string]bool{
	"StreamSeed":  true,
	"Reseed":      true,
	"SplitStream": true,
	"Derive":      true,
}

// StreamDiscipline guards the counter-based stream contract around the
// worker pool — the bug class the per-(node, round) streams exist to
// prevent. Two patterns are flagged:
//
//   - A *xrand.Rand declared outside a func literal that is handed to
//     par.Do/Workers/WorkersN, but drawn from (or reseeded) inside it.
//     Workers interleave nondeterministically, so a shared generator's
//     consumption order — and therefore every downstream draw — varies
//     run to run (and races). The only safe use of a captured root
//     generator is StreamSeed, which reads the immutable lineage;
//     worker code must draw from per-worker generators reseeded to
//     (item, round) substreams.
//
//   - A struct field of type *xrand.Rand (or []*xrand.Rand) in a
//     deterministic package whose defining package never visibly
//     derives it (no f.Reseed/StreamSeed/SplitStream/Derive call, no
//     assignment from an xrand constructor/derivation). Undisciplined
//     stored generators are how a "shared rand captured by a worker"
//     is born.
var StreamDiscipline = &Analyzer{
	Name: "streamdiscipline",
	Doc:  "enforces per-(item, round) xrand stream derivation around the worker pool",
	Key:  "stream",
	Run:  runStreamDiscipline,
}

func runStreamDiscipline(pass *Pass) error {
	class := pass.Scope.Class(pass.Path)
	if class == ClassExempt {
		return nil
	}
	for _, file := range pass.Files {
		checkParClosures(pass, file)
	}
	if class == ClassDeterministic {
		checkRandFields(pass)
	}
	return nil
}

// isXRand reports whether t is *xrand.Rand.
func isXRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == xrandPath
}

// checkParClosures flags shared *xrand.Rand use inside func literals
// passed directly to the worker pool's fan-out entry points.
func checkParClosures(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Scope.Par {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				checkClosureCaptures(pass, lit)
			}
		}
		return true
	})
}

// checkClosureCaptures reports every use of a captured *xrand.Rand
// inside lit except StreamSeed derivation.
func checkClosureCaptures(pass *Pass, lit *ast.FuncLit) {
	freeRand := func(e ast.Expr) bool {
		// An expression roots in a captured generator when its leftmost
		// identifier resolves to a variable declared outside the literal.
		root := e
		for {
			s, ok := root.(*ast.SelectorExpr)
			if !ok {
				break
			}
			root = s.X
		}
		id, ok := root.(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return false
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}
	// exempt holds nodes already handled as part of an enclosing
	// expression (the receiver of a StreamSeed call, or the X of a
	// selector we reported on).
	exempt := make(map[ast.Node]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || exempt[n] {
			return true
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil || !isXRand(tv.Type) {
			return true
		}
		switch e := e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if !freeRand(e) {
				return true
			}
		default:
			return true
		}
		// Mark sub-expressions so a flagged/exempted selector's parts
		// are not re-reported.
		if s, ok := e.(*ast.SelectorExpr); ok {
			exempt[s.X] = true
			exempt[s.Sel] = true
		}
		if m, onlyDerive := soleUseIsMethod(pass, lit.Body, e); onlyDerive && m == "StreamSeed" {
			return true
		}
		pass.Reportf(e.Pos(),
			"*xrand.Rand captured by a par worker closure: drawing from a shared generator is racy and order-dependent; reseed a per-worker Rand from StreamSeed(item, round) or annotate //cardlint:stream <reason>")
		return true
	})
}

// soleUseIsMethod reports whether expression e (an occurrence, compared
// by position) appears as the receiver of exactly one method selector,
// returning that method name. It inspects the immediate parent only: a
// captured rand used as `root.StreamSeed(a, b)` has its occurrence
// wrapped by that selector.
func soleUseIsMethod(pass *Pass, body ast.Node, e ast.Expr) (string, bool) {
	method := ""
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.X != e {
			return true
		}
		method = sel.Sel.Name
		found = true
		return false
	})
	return method, found
}

// checkRandFields flags *xrand.Rand (and []*xrand.Rand) struct fields
// with no visible derivation discipline anywhere in the package.
func checkRandFields(pass *Pass) {
	type fieldDecl struct {
		obj  types.Object
		pos  ast.Node
		name string
	}
	var fields []fieldDecl
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				tv, ok := pass.Info.Types[f.Type]
				if !ok {
					continue
				}
				t := tv.Type
				if sl, ok := t.(*types.Slice); ok {
					t = sl.Elem()
				}
				if !isXRand(t) {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						fields = append(fields, fieldDecl{obj: obj, pos: name, name: name.Name})
					}
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}
	disciplined := make(map[types.Object]bool)
	mark := func(sel *ast.SelectorExpr) {
		if s, ok := pass.Info.Selections[sel]; ok {
			disciplined[s.Obj()] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// m.rng.Reseed(…) / m.rngs[i].Derive(…) / p.rng.StreamSeed(…)
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !derivationMethods[sel.Sel.Name] {
					return true
				}
				recv := sel.X
				if ix, ok := recv.(*ast.IndexExpr); ok {
					recv = ix.X
				}
				if fieldSel, ok := recv.(*ast.SelectorExpr); ok {
					mark(fieldSel)
				}
			case *ast.AssignStmt:
				// m.rng = xrand.New(…) / m.rngs[i] = root.Derive(…)
				for i, lhs := range n.Lhs {
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						lhs = ix.X
					}
					fieldSel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if containsDerivation(pass, rhs) {
						mark(fieldSel)
					}
				}
			case *ast.CompositeLit:
				// &Model{rng: root.Derive(…)}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !containsDerivation(pass, kv.Value) {
						continue
					}
					if obj := pass.Info.Uses[key]; obj != nil {
						disciplined[obj] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range fields {
		if disciplined[f.obj] {
			continue
		}
		pass.Reportf(f.pos.Pos(),
			"struct field %s stores a *xrand.Rand with no Reseed/StreamSeed/Derive discipline visible in this package: shared stored generators break the per-(item, round) stream contract; derive it or annotate //cardlint:stream <reason>",
			f.name)
	}
}

// containsDerivation reports whether e contains a call to an xrand
// constructor or derivation (xrand.New, r.SplitStream, r.Derive, …).
func containsDerivation(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		var name *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun
		case *ast.SelectorExpr:
			name = fun.Sel
		default:
			return true
		}
		fn, ok := pass.Info.Uses[name].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == xrandPath &&
			(fn.Name() == "New" || derivationMethods[fn.Name()]) {
			found = true
		}
		return !found
	})
	return found
}
