package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range` over map-typed values in deterministic
// packages. Go's map iteration order is deliberately randomized, so any
// map range whose body's effect depends on visit order can perturb
// results between runs — the exact failure mode the serial==parallel
// equivalence tests only catch probabilistically.
//
// Two shapes pass without annotation:
//
//   - `for range m` with no iteration variables: the body cannot
//     observe keys, so order cannot leak.
//   - the collect-then-sort idiom: a body that only appends to a slice
//     which is later handed to a sort/slices call in the same function,
//     making the order canonical before use.
//
// Everything else needs //cardlint:ordered <reason>, turning the
// implicit "this is order-insensitive" argument into reviewed prose.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags nondeterministic map iteration in deterministic packages",
	Key:  "ordered",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) error {
	if pass.Scope.Class(pass.Path) != ClassDeterministic {
		return nil
	}
	for _, file := range pass.Files {
		var funcs []ast.Node // enclosing FuncDecl/FuncLit stack
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
				ast.Inspect(bodyOf(n), walk)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if n.Key == nil && n.Value == nil {
					return true // body cannot observe keys
				}
				var encl ast.Node
				if len(funcs) > 0 {
					encl = funcs[len(funcs)-1]
				}
				if encl != nil && isCollectThenSort(pass, encl, n) {
					return true
				}
				pass.Reportf(n.For,
					"range over map %s: iteration order is nondeterministic; iterate sorted keys or annotate //cardlint:ordered <reason>",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

func bodyOf(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return &ast.BlockStmt{}
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

// isCollectThenSort recognizes the canonical deterministic idiom: the
// range body is exactly `s = append(s, …)` for some slice s declared
// outside the loop, and a later statement in the same function passes s
// to a function from package sort or slices.
func isCollectThenSort(pass *Pass, fn ast.Node, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[lhs]
	if obj == nil {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || pass.Info.Uses[a0] != obj {
		return false
	}
	// The collected slice must reach a sort after the loop.
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range c.Args {
			if mentionsObject(pass, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func mentionsObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
