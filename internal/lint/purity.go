package lint

import (
	"go/ast"
	"strconv"
)

// Purity bans ambient nondeterminism sources in sim packages: the
// global/unspecified generators of math/rand (either version) and
// crypto/rand, wall-clock reads, and environment/pid reads. Every
// random draw in sim code must come from a seeded xrand stream and
// every timestamp from the simulated clock, or two runs of the same
// (scenario, seed) pair stop being bit-identical.
//
// cmd/* and examples/* are user-interface code and exempt;
// internal/experiments may read the wall clock (its timing columns
// report real elapsed time) but keeps the other bans.
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "bans math/rand, crypto/rand, wall-clock and env/pid reads in sim packages",
	Key:  "impure",
	Run:  runPurity,
}

var bannedImports = map[string]string{
	"math/rand":    "unseeded/global RNG; derive a stream from xrand instead",
	"math/rand/v2": "unseeded/global RNG; derive a stream from xrand instead",
	"crypto/rand":  "entropy source; sim randomness must be a pure function of the seed",
}

// bannedFuncs maps package path → function name → why.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; use the simulated clock",
		"Since": "wall-clock read; use the simulated clock",
		"Until": "wall-clock read; use the simulated clock",
	},
	"os": {
		"Getenv":    "environment read; results must not depend on the host",
		"LookupEnv": "environment read; results must not depend on the host",
		"Environ":   "environment read; results must not depend on the host",
		"Getpid":    "pid read; results must not depend on the host",
		"Getppid":   "pid read; results must not depend on the host",
		"Hostname":  "host identity read; results must not depend on the host",
	},
}

func runPurity(pass *Pass) error {
	class := pass.Scope.Class(pass.Path)
	if class == ClassExempt {
		return nil
	}
	wallClockOK := class == ClassExperiments
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in sim package: %s (or annotate //cardlint:impure <reason>)", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			names, ok := bannedFuncs[obj.Pkg().Path()]
			if !ok {
				return true
			}
			why, ok := names[obj.Name()]
			if !ok {
				return true
			}
			if wallClockOK && obj.Pkg().Path() == "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in sim package: %s (or annotate //cardlint:impure <reason>)",
				obj.Pkg().Name(), obj.Name(), why)
			return true
		})
	}
	return nil
}
