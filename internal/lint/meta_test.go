package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"card/internal/lint"
	"card/internal/lint/linttest"
)

// TestRepoHonorsDeterminismContract runs the full cardlint suite over
// every package in the module and fails on any unannotated finding.
// This is the enforcement point: a new map range, wall-clock read,
// stray goroutine or undisciplined stored generator anywhere in sim
// code breaks the build until it is fixed or given a reasoned
// //cardlint: annotation.
func TestRepoHonorsDeterminismContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the whole module")
	}
	root := linttest.ModuleRoot(t)
	diags, err := lint.Check(root, nil, nil, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix them or annotate with //cardlint:<key> <reason>", len(diags))
	}
}

// TestMetaCatchesSeededViolation proves the zero-findings assertion
// above has teeth: the same suite, pointed at a fixture package with
// deliberate unannotated violations, must report them.
func TestMetaCatchesSeededViolation(t *testing.T) {
	root := linttest.ModuleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "seeded")
	pkg, err := lint.LoadDir(root, dir, "fixture/seeded")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunPackage(fixtureScope, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path, lint.Analyzers)
	var gotMap, gotClock bool
	for _, d := range diags {
		if strings.Contains(d.Message, "range over map") {
			gotMap = true
		}
		if strings.Contains(d.Message, "time.Now") {
			gotClock = true
		}
	}
	if !gotMap || !gotClock {
		t.Fatalf("seeded violations not caught (map=%v clock=%v); findings: %v", gotMap, gotClock, diags)
	}
}
