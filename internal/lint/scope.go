package lint

import "strings"

// Class is a package's tier under the determinism contract.
type Class int

const (
	// ClassExempt packages (cmd/*, examples/*, the lint suite itself)
	// are user-interface or tooling code outside the sim contract.
	ClassExempt Class = iota
	// ClassPar is the worker-pool package: the one place raw
	// concurrency primitives are legal.
	ClassPar
	// ClassExperiments is harness code: deterministic streams required,
	// but wall-clock reads are allowed for the timing columns it prints.
	ClassExperiments
	// ClassSim is simulator library code: purity and concurrency
	// discipline apply, but the package holds no per-run protocol state
	// iterated in result order (map iteration is checked only in
	// ClassDeterministic packages).
	ClassSim
	// ClassDeterministic packages carry the full contract, including
	// the map-iteration and stream-discipline checks: any ordering
	// visible here can leak into figures.
	ClassDeterministic
)

// Scope maps import paths to classes. The zero value classifies
// everything as ClassSim; use DefaultScope for the repository layout.
type Scope struct {
	// Deterministic lists exact import paths under the full contract.
	Deterministic []string
	// Experiments lists exact import paths with wall-clock allowance.
	Experiments []string
	// Par is the worker-pool package's import path.
	Par string
	// ExemptPrefixes lists import-path prefixes outside the contract.
	ExemptPrefixes []string
}

// DefaultScope is the repository's package classification.
var DefaultScope = &Scope{
	Deterministic: []string{
		"card",
		"card/internal/card",
		"card/internal/engine",
		"card/internal/neighborhood",
		"card/internal/topology",
		"card/internal/manet",
		"card/internal/mobility",
		"card/internal/workload",
		"card/internal/sweep",
		"card/internal/resource",
		"card/internal/eventq",
	},
	Experiments: []string{"card/internal/experiments"},
	Par:         "card/internal/par",
	ExemptPrefixes: []string{
		"card/cmd/",
		"card/examples/",
		"card/internal/lint",
	},
}

// Class classifies path.
func (s *Scope) Class(path string) Class {
	for _, p := range s.ExemptPrefixes {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) {
			return ClassExempt
		}
	}
	if path == s.Par {
		return ClassPar
	}
	for _, p := range s.Experiments {
		if path == p {
			return ClassExperiments
		}
	}
	for _, p := range s.Deterministic {
		if path == p {
			return ClassDeterministic
		}
	}
	return ClassSim
}
