// Package lint is cardlint: a static-analysis suite that enforces the
// repository's determinism contract at compile time.
//
// Every parallel path in the simulator (batch queries, maintenance
// rounds, workload ticks, sweep cells, dirty-set rounds) is pinned
// bit-identical serial-vs-sharded by runtime equivalence tests, but the
// contract those tests probe — counter-based xrand streams, no
// wall-clock or global RNG in sim code, goroutines only via
// internal/par, no order-sensitive map iteration — used to live in
// reviewers' heads. This package turns each clause into an analyzer:
//
//   - maprange: flags `for … range` over map-typed values in the
//     deterministic packages unless the body is provably
//     order-insensitive (key-collection followed by a sort) or the
//     statement carries a //cardlint:ordered annotation.
//   - purity: bans math/rand, crypto/rand, wall-clock reads
//     (time.Now/Since/Until) and environment/pid reads in sim packages;
//     cmd/* and examples/* are exempt and internal/experiments may read
//     the wall clock for its timing columns.
//   - gostmt: permits `go` statements and raw sync.Mutex / sync.RWMutex /
//     sync.WaitGroup only inside internal/par, keeping the worker pool
//     the single concurrency choke point.
//   - streamdiscipline: flags shared *xrand.Rand values captured by
//     func literals handed to par.Do/Workers/WorkersN (drawing from a
//     shared generator inside a worker races and breaks the
//     serial==parallel contract; only StreamSeed derivation is
//     read-only) and *xrand.Rand struct fields in deterministic
//     packages with no visible Reseed/StreamSeed/Derive discipline.
//
// Findings are suppressed with an annotation on the offending line or
// the line directly above:
//
//	//cardlint:<key> <reason>
//
// where <key> is the analyzer's suppression keyword (ordered, impure,
// parallel, stream) and <reason> is mandatory prose documenting why the
// flagged construct cannot perturb results. A bare annotation, an
// unknown key, and an annotation that suppresses nothing are themselves
// findings, so the suppression inventory stays honest.
//
// The framework is intentionally self-contained: it mirrors the shape
// of golang.org/x/tools/go/analysis (Analyzer, Pass, Report) on the
// standard library alone, loading type information from the compiler's
// export data via `go list -export`, so the module keeps its empty
// dependency graph. cmd/cardlint additionally speaks the `go vet
// -vettool` single-unit protocol, and the meta-test in this package
// runs the whole suite over ./... and fails on any unannotated finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one determinism-contract check.
type Analyzer struct {
	// Name identifies the analyzer in output and as its driver flag.
	Name string
	// Doc is a one-line description.
	Doc string
	// Key is the suppression keyword accepted after "//cardlint:".
	Key string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass presents one typechecked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path with any test-variant suffix
	// (" [pkg.test]") stripped.
	Path string
	// Scope classifies packages into contract tiers.
	Scope *Scope

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.analyzer.Name,
		Key:      p.analyzer.Key,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in file coordinates so it
// survives past the pass's FileSet.
type Diagnostic struct {
	// Analyzer names the check that produced the finding; directive
	// findings (bare/unknown/unused annotations) use "cardlint".
	Analyzer string
	// Key is the suppression keyword that would silence the finding;
	// empty for directive findings, which cannot be suppressed.
	Key     string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers is the full cardlint suite in reporting order.
var Analyzers = []*Analyzer{
	MapRange,
	Purity,
	GoStmt,
	StreamDiscipline,
}
