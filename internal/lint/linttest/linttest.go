// Package linttest runs cardlint analyzers over fixture packages and
// checks their findings against expectations embedded in the fixture
// source — the same contract as golang.org/x/tools/go/analysis/analysistest,
// re-implemented on the standard library.
//
// Expectations are trailing comments:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match a finding reported on that line. A line
// that cannot carry a second comment (a //cardlint: directive being
// itself under test) takes its expectation from the line above via
// "wantbelow":
//
//	// wantbelow `needs a reason`
//	//cardlint:ordered
//
// The run fails if any expectation goes unmatched or any finding is
// unexpected, so fixtures pin both positives and negatives.
package linttest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"card/internal/lint"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one want clause: a pattern expected to match a finding
// at file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants scans one fixture file for want/wantbelow clauses.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wants []*expectation
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		idx := strings.Index(text, "// want")
		if idx < 0 {
			continue
		}
		clause := text[idx+len("// want"):]
		target := line
		if rest, ok := strings.CutPrefix(clause, "below"); ok {
			clause = rest
			target = line + 1
		}
		ms := wantRE.FindAllStringSubmatch(clause, -1)
		if len(ms) == 0 {
			t.Fatalf("%s:%d: want clause with no quoted pattern", path, line)
		}
		for _, m := range ms {
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, pat, err)
			}
			wants = append(wants, &expectation{file: path, line: target, pattern: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// ModuleRoot walks up from the working directory to the enclosing
// go.mod, which anchors fixture loading and `go list` runs.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above working directory")
		}
		dir = parent
	}
}

// Run loads the fixture package in dir under the given import path,
// runs analyzers (the full suite when nil) with scope, and compares
// findings against the fixture's want clauses.
func Run(t *testing.T, dir, importPath string, scope *lint.Scope, analyzers []*lint.Analyzer) {
	t.Helper()
	root := ModuleRoot(t)
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	pkg, err := lint.LoadDir(root, dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if analyzers == nil {
		analyzers = lint.Analyzers
	}
	diags := lint.RunPackage(scope, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path, analyzers)

	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, parseWants(t, pkg.Fset.Position(f.Package).Filename)...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
