package lint_test

import (
	"testing"

	"card/internal/lint"
	"card/internal/lint/linttest"
)

// fixtureScope classifies the fixture packages under testdata/src the
// way DefaultScope classifies the real tree, so every contract tier is
// exercised without depending on repository layout.
var fixtureScope = &lint.Scope{
	Deterministic: []string{
		"fixture/maprange",
		"fixture/purity",
		"fixture/gostmt",
		"fixture/stream",
		"fixture/seeded",
	},
	Experiments: []string{"fixture/purityexp"},
	Par:         "card/internal/par",
}

// Each fixture runs under the FULL suite: beyond its own analyzer's
// positives and exemptions, this pins that the other analyzers stay
// silent on it (no cross-fire) and that directive hygiene holds.
func TestMapRangeFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/maprange", "fixture/maprange", fixtureScope, nil)
}

func TestPurityFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/purity", "fixture/purity", fixtureScope, nil)
}

func TestPurityExperimentsFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/purityexp", "fixture/purityexp", fixtureScope, nil)
}

func TestGoStmtFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/gostmt", "fixture/gostmt", fixtureScope, nil)
}

func TestStreamDisciplineFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/stream", "fixture/stream", fixtureScope, nil)
}
