package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` over patterns in dir and
// returns the decoded entries. -export makes the go command build (or
// fetch from the build cache) each package's compiler export data, so
// typechecking needs no network and no source re-check of dependencies.
func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter builds a types.Importer that reads gc export data
// through the given importPath→file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Load loads the packages matching patterns (resolved relative to the
// module at dir), parses their non-test sources, and typechecks them
// against compiler export data. It is the standalone-driver and
// meta-test entry point; `go vet -vettool` mode receives the same
// inputs from the build system instead.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are outside cardlint's reach", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := newInfo()
		conf := &types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and typechecks one directory of Go files (a test
// fixture outside the module's package graph) as import path path,
// resolving its imports through export data from the module at modDir.
// Unlike Load it keeps _test.go files out by filename, since fixture
// directories are listed manually rather than through go list.
func LoadDir(modDir, dir, path string) (*Package, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		entries, err := goList(modDir, imports...)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	info := newInfo()
	conf := &types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Check loads patterns from the module at dir and runs the given
// analyzers (the full suite when analyzers is nil) under scope,
// returning every surviving finding. It is the core of both the
// repo-wide meta-test and cmd/cardlint's standalone mode.
func Check(dir string, scope *Scope, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	if scope == nil {
		scope = DefaultScope
	}
	if analyzers == nil {
		analyzers = Analyzers
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, RunPackage(scope, p.Fset, p.Files, p.Types, p.Info, p.Path, analyzers)...)
	}
	return out, nil
}
