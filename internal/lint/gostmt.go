package lint

import (
	"go/ast"
	"go/types"
)

// GoStmt keeps internal/par the single concurrency choke point: `go`
// statements and raw sync.Mutex / sync.RWMutex / sync.WaitGroup are
// flagged everywhere else in sim code. Every fan-out that goes through
// par.Do/Workers/WorkersN inherits the pool's determinism guarantees
// (index-addressed jobs, stable worker ids, deterministic panic
// propagation); a hand-rolled goroutine or lock sidesteps all of them.
//
// sync.Pool and sync/atomic are not flagged: pooled scratch reuse and
// atomic tallies do not order results (the recorder's atomic counters
// are commutative sums).
var GoStmt = &Analyzer{
	Name: "gostmt",
	Doc:  "permits go statements and raw sync primitives only inside internal/par",
	Key:  "parallel",
	Run:  runGoStmt,
}

var bannedSyncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
}

func runGoStmt(pass *Pass) error {
	switch pass.Scope.Class(pass.Path) {
	case ClassExempt, ClassPar:
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Go,
					"go statement outside internal/par: fan out through par.Do/Workers or annotate //cardlint:parallel <reason>")
			case *ast.SelectorExpr:
				tn, ok := pass.Info.Uses[n.Sel].(*types.TypeName)
				if !ok || tn.Pkg() == nil || tn.Pkg().Path() != "sync" || !bannedSyncTypes[tn.Name()] {
					return true
				}
				pass.Reportf(n.Pos(),
					"raw sync.%s outside internal/par: route concurrency through the worker pool or annotate //cardlint:parallel <reason>",
					tn.Name())
			}
			return true
		})
	}
	return nil
}
