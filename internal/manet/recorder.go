package manet

import (
	"fmt"
	"sync/atomic"
)

// Recorder is the message-accounting sink a Network writes to. Extracting
// it behind an interface decouples the protocols (which only ever *emit*
// transmissions) from how tallies are stored, so a run can choose the
// plain serial Counters, the concurrency-safe AtomicCounters, or any
// decorator (windowed deltas, per-node attribution) without touching
// protocol code.
type Recorder interface {
	// Record adds n transmissions of category cat. n may be zero.
	Record(cat Category, n int64)
	// Totals returns a consistent copy of the per-category tallies.
	Totals() Counters
}

// Counters is the serial Recorder: a plain per-category tally. The zero
// value is ready to use. Not safe for concurrent use — it is the right
// choice when a simulation run owns its Network exclusively, which is the
// default.
type Counters struct {
	c [numCategories]int64
}

// Record implements Recorder.
func (k *Counters) Record(cat Category, n int64) { k.c[cat] += n }

// Totals implements Recorder.
func (k *Counters) Totals() Counters { return *k }

// Add records n transmissions of category cat.
func (k *Counters) Add(cat Category, n int) { k.c[cat] += int64(n) }

// Get returns the count for one category.
func (k Counters) Get(cat Category) int64 { return k.c[cat] }

// Sum returns the combined count across the given categories.
func (k Counters) Sum(cats ...Category) int64 {
	var s int64
	for _, c := range cats {
		s += k.c[c]
	}
	return s
}

// Total returns the count across all categories.
func (k Counters) Total() int64 {
	var s int64
	for _, v := range k.c {
		s += v
	}
	return s
}

// AddTo adds k's tallies to r, walking categories in declaration order.
// This is the flush half of the local-tally recipe used by the parallel
// round fan-outs (engine.BatchQuery, the maintenance pool): workers
// accumulate into a private Counters while running, then flush serially —
// in worker order, after the join — so the shared recorder sees one
// deterministic sum per category no matter how the work interleaved.
func (k Counters) AddTo(r Recorder) {
	for i, v := range k.c {
		if v != 0 {
			r.Record(Category(i), v)
		}
	}
}

// DiffSince returns per-category counts accumulated since the snapshot.
func (k Counters) DiffSince(prev Counters) Counters {
	var d Counters
	for i := range k.c {
		d.c[i] = k.c[i] - prev.c[i]
	}
	return d
}

// Reset zeroes all categories.
func (k *Counters) Reset() { k.c = [numCategories]int64{} }

func (k Counters) String() string {
	s := ""
	for i, v := range k.c {
		if v == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", Category(i), v)
	}
	if s == "" {
		return "(none)"
	}
	return s
}

type paddedCounter struct {
	v atomic.Int64
	_ [56]byte // pad to a 64-byte cache line: categories never share a line
}

// AtomicCounters is the concurrent Recorder: per-category atomic tallies,
// each on its own cache line, safe for any number of concurrent writers
// and readers. Totals read each category atomically; a snapshot taken
// while writers are active can tear *across* categories, but is exact once
// writers quiesce — which is when the engine reads it (workers flush their
// local tallies after the batch joins).
type AtomicCounters struct {
	c [numCategories]paddedCounter
}

// NewAtomicCounters returns an empty concurrent recorder.
func NewAtomicCounters() *AtomicCounters { return &AtomicCounters{} }

// Record implements Recorder.
func (a *AtomicCounters) Record(cat Category, n int64) {
	if n == 0 {
		return
	}
	a.c[cat].v.Add(n)
}

// Totals implements Recorder.
func (a *AtomicCounters) Totals() Counters {
	var k Counters
	for cat := range a.c {
		k.c[cat] = a.c[cat].v.Load()
	}
	return k
}

// Reset zeroes all categories. Not atomic across categories; call only
// while writers are quiescent.
func (a *AtomicCounters) Reset() {
	for cat := range a.c {
		a.c[cat].v.Store(0)
	}
}

var (
	_ Recorder = (*Counters)(nil)
	_ Recorder = (*AtomicCounters)(nil)
)
