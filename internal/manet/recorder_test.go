package manet

import (
	"sync"
	"testing"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/xrand"
)

func TestAtomicCountersConcurrent(t *testing.T) {
	a := NewAtomicCounters()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Record(CatQuery, 2)
				a.Record(CatReply, 1)
				a.Record(CatCSQ, 0) // zero adds must be no-ops
			}
		}()
	}
	wg.Wait()
	k := a.Totals()
	if got := k.Get(CatQuery); got != 2*workers*perWorker {
		t.Errorf("CatQuery = %d, want %d", got, 2*workers*perWorker)
	}
	if got := k.Get(CatReply); got != workers*perWorker {
		t.Errorf("CatReply = %d, want %d", got, workers*perWorker)
	}
	if got := k.Get(CatCSQ); got != 0 {
		t.Errorf("CatCSQ = %d, want 0", got)
	}
	a.Reset()
	if a.Totals().Total() != 0 {
		t.Error("Reset did not zero the recorder")
	}
}

func TestCountersAddTo(t *testing.T) {
	var local Counters
	local.Add(CatCSQ, 3)
	local.Add(CatBacktrack, 5)
	local.Add(CatValidate, 0) // zero categories must not Record

	var sink Counters
	sink.Add(CatCSQ, 1)
	local.AddTo(&sink)
	if got := sink.Get(CatCSQ); got != 4 {
		t.Errorf("CatCSQ = %d, want 4", got)
	}
	if got := sink.Get(CatBacktrack); got != 5 {
		t.Errorf("CatBacktrack = %d, want 5", got)
	}
	if got := sink.Total(); got != 9 {
		t.Errorf("Total = %d, want 9", got)
	}

	// Flushing the same tallies from several "workers" into an atomic sink
	// sums exactly, in any order.
	a := NewAtomicCounters()
	local.AddTo(a)
	local.AddTo(a)
	if got := a.Totals().Get(CatCSQ); got != 6 {
		t.Errorf("atomic CatCSQ = %d, want 6", got)
	}
}

func TestSetRecorderSwaps(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 30, Y: 0}}
	n := staticNet(t, pts, 15)
	n.SendHop(CatQuery)
	a := NewAtomicCounters()
	n.SetRecorder(a)
	n.SendHops(CatQuery, 3)
	if got := n.Totals().Get(CatQuery); got != 3 {
		t.Errorf("after swap Totals = %d, want 3 (old tallies stay behind)", got)
	}
	if n.Recorder() != Recorder(a) {
		t.Error("Recorder() did not return the swapped recorder")
	}
	defer func() {
		if recover() == nil {
			t.Error("nil SetRecorder did not panic")
		}
	}()
	n.SetRecorder(nil)
}

// TestTopologyModesAgree cross-checks the three snapshot strategies over a
// mobile trace: identical adjacency at every refresh.
func TestTopologyModesAgree(t *testing.T) {
	mk := func(mode TopologyMode) *Network {
		m, err := mobility.NewRandomWaypoint(120, area, mobility.RWPConfig{
			MinSpeed: 1, MaxSpeed: 15, Pause: 2,
		}, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return NewWithMode(m, 60, xrand.New(6), mode)
	}
	inc, full, naive := mk(IncrementalTopology), mk(FullGridTopology), mk(NaiveTopology)
	for step := 1; step <= 12; step++ {
		tm := float64(step) * 0.5
		inc.RefreshAt(tm)
		full.RefreshAt(tm)
		naive.RefreshAt(tm)
		gi, gf, gn := inc.Graph(), full.Graph(), naive.Graph()
		if gi.Links() != gf.Links() || gf.Links() != gn.Links() {
			t.Fatalf("t=%v links diverge: inc=%d full=%d naive=%d", tm, gi.Links(), gf.Links(), gn.Links())
		}
		for u := 0; u < gi.N(); u++ {
			a, b, c := gi.Neighbors(NodeID(u)), gf.Neighbors(NodeID(u)), gn.Neighbors(NodeID(u))
			if len(a) != len(b) || len(b) != len(c) {
				t.Fatalf("t=%v node %d degree diverges: %v %v %v", tm, u, a, b, c)
			}
			for i := range a {
				if a[i] != b[i] || b[i] != c[i] {
					t.Fatalf("t=%v node %d adjacency diverges", tm, u)
				}
			}
		}
	}
}
