package manet

import (
	"testing"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

// lossyNet builds a static chain of n nodes 40 m apart (well inside the
// 50 m range) with the given loss config.
func lossyNet(t *testing.T, n int, loss LossConfig) *Network {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 40, Y: 10}
	}
	a := geom.Rect{W: float64(n) * 40, H: 100}
	return NewNetwork(mobility.NewStatic(pts, a), Config{
		Link: topology.LinkModel{Uniform: 50},
		Loss: loss,
	}, xrand.New(1))
}

func TestTryHopLossless(t *testing.T) {
	net := lossyNet(t, 4, LossConfig{})
	if att, ok := net.TryHop(0, 1); att != 1 || !ok {
		t.Fatalf("lossless adjacent hop: att=%d ok=%v, want 1 true", att, ok)
	}
	if att, ok := net.TryHop(0, 3); att != 0 || ok {
		t.Fatalf("lossless non-adjacent hop: att=%d ok=%v, want 0 false", att, ok)
	}
}

func TestTryHopAsymmetricAttemptsNothing(t *testing.T) {
	// Node 0 has a 100 m radio, node 1 a 30 m one, 50 m apart: 0→1 exists
	// but 1 cannot ack, so a protocol-level hop must not even transmit.
	pts := []geom.Point{{X: 10, Y: 10}, {X: 60, Y: 10}}
	a := geom.Rect{W: 200, H: 100}
	net := NewNetwork(mobility.NewStatic(pts, a), Config{
		Link: topology.LinkModel{Uniform: 100, Ranges: []float64{100, 30}},
	}, xrand.New(1))
	if !net.Adjacent(0, 1) || net.Adjacent(1, 0) {
		t.Fatal("fixture not asymmetric")
	}
	if att, ok := net.TryHop(0, 1); att != 0 || ok {
		t.Fatalf("asymmetric hop: att=%d ok=%v, want 0 false", att, ok)
	}
	if att, ok := net.TryHop(1, 0); att != 0 || ok {
		t.Fatalf("reverse asymmetric hop: att=%d ok=%v, want 0 false", att, ok)
	}
}

// TestTryHopRetryBudget pins the attempt envelope: 1 <= attempts <=
// retries+1, and an undelivered hop always exhausted the full budget.
func TestTryHopRetryBudget(t *testing.T) {
	const retries = 2
	net := lossyNet(t, 40, LossConfig{Rate: 0.5, Retries: retries})
	delivered, dropped := 0, 0
	for u := 0; u+1 < net.N(); u++ {
		att, ok := net.TryHop(NodeID(u), NodeID(u+1))
		if att < 1 || att > retries+1 {
			t.Fatalf("hop %d: %d attempts outside [1, %d]", u, att, retries+1)
		}
		if !ok && att != retries+1 {
			t.Fatalf("hop %d: dropped after %d attempts with budget left", u, att)
		}
		if ok {
			delivered++
		} else {
			dropped++
		}
	}
	// At rate 0.5 with 3 tries, ~87.5% deliver: both outcomes must appear
	// over 39 edges or the fixture isn't exercising the process.
	if delivered == 0 || dropped == 0 {
		t.Fatalf("degenerate loss process: %d delivered, %d dropped", delivered, dropped)
	}
}

// TestTryHopFrozenWithinEpoch pins the link-fade model: an edge's outcome
// is a constant of the epoch (repeat calls agree), and a refresh re-rolls
// the fade — across many edges at 50% loss, at least one outcome flips.
func TestTryHopFrozenWithinEpoch(t *testing.T) {
	net := lossyNet(t, 40, LossConfig{Rate: 0.5, Retries: 0})
	type hop struct {
		att int
		ok  bool
	}
	snap := func() []hop {
		out := make([]hop, 0, net.N()-1)
		for u := 0; u+1 < net.N(); u++ {
			att, ok := net.TryHop(NodeID(u), NodeID(u+1))
			out = append(out, hop{att, ok})
		}
		return out
	}
	first := snap()
	for i, h := range snap() {
		if h != first[i] {
			t.Fatalf("edge %d outcome changed within an epoch: %+v vs %+v", i, h, first[i])
		}
	}
	net.RefreshAt(1)
	flipped := false
	for i, h := range snap() {
		if h != first[i] {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no edge outcome re-rolled across 39 edges after an epoch advance")
	}
}

// TestWalkPathLossCharging pins the accounting contract: every attempted
// hop charges one transmission to the walk's category and its retries to
// CatRetry; the walk stops at the first undelivered hop.
func TestWalkPathLossCharging(t *testing.T) {
	net := lossyNet(t, 30, LossConfig{Rate: 0.4, Retries: 1})
	path := make([]NodeID, net.N())
	for i := range path {
		path[i] = NodeID(i)
	}
	before := net.Totals()
	ok, holder := net.WalkPath(CatValidate, path)
	d := net.Totals().DiffSince(before)

	// Reconstruct the expected charges from the pure per-hop outcomes.
	var wantVal, wantRetry int64
	attempted := 0
	for i := 0; i+1 < len(path); i++ {
		att, delivered := net.TryHop(path[i], path[i+1])
		wantVal++
		wantRetry += int64(att - 1)
		attempted = i + 1
		if !delivered {
			break
		}
	}
	if ok {
		t.Fatalf("30-hop walk at 40%% loss x2 tries delivered end to end (p ~ %g)", 0.84)
	}
	if holder != attempted-1 { // the walk died on the hop out of holder
		t.Fatalf("holder %d inconsistent with %d attempted hops", holder, attempted)
	}
	if got := d.Get(CatValidate); got != wantVal {
		t.Fatalf("validate charges %d, want %d", got, wantVal)
	}
	if got := d.Get(CatRetry); got != wantRetry {
		t.Fatalf("retry charges %d, want %d", got, wantRetry)
	}
	if extra := d.Total() - wantVal - wantRetry; extra != 0 {
		t.Fatalf("%d transmissions charged outside validate+retry: %v", extra, d)
	}
}

// TestPartitionSchedule pins the partition-and-heal process: the barrier
// activates for the last Duration seconds of each Period, cuts every
// crossing link while active, and restores the original graph bit for bit
// on heal.
func TestPartitionSchedule(t *testing.T) {
	n := 60
	pts := make([]geom.Point, n)
	rng := xrand.New(3)
	a := geom.Rect{W: 400, H: 400}
	for i := range pts {
		pts[i] = geom.Point{X: rng.Range(0, a.W), Y: rng.Range(0, a.H)}
	}
	net := NewNetwork(mobility.NewStatic(pts, a), Config{
		Link:      topology.LinkModel{Uniform: 80},
		Partition: PartitionConfig{Period: 10, Duration: 3},
	}, xrand.New(1))

	crossing := func() int {
		cut := 0
		g := net.Graph()
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(NodeID(u)) {
				if (net.Position(NodeID(u)).X < a.W/2) != (net.Position(v).X < a.W/2) {
					cut++
				}
			}
		}
		return cut
	}
	if net.PartitionActive() {
		t.Fatal("partition active at t=0")
	}
	healthy := crossing()
	if healthy == 0 {
		t.Fatal("fixture has no barrier-crossing links; test is vacuous")
	}
	healthyLinks := net.Graph().Links()

	net.RefreshAt(8) // 8 >= 10-3: inside the partition window
	if !net.PartitionActive() {
		t.Fatal("partition inactive at t=8 (window [7, 10))")
	}
	if c := crossing(); c != 0 {
		t.Fatalf("%d links cross the active barrier", c)
	}

	net.RefreshAt(11) // healed: 11 mod 10 = 1 < 7
	if net.PartitionActive() {
		t.Fatal("partition still active at t=11")
	}
	if c := crossing(); c != healthy {
		t.Fatalf("healed graph has %d crossing links, want %d", c, healthy)
	}
	if net.Graph().Links() != healthyLinks {
		t.Fatalf("healed graph has %d links, want %d", net.Graph().Links(), healthyLinks)
	}
}

func TestLossConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"rate-one", Config{Link: topology.LinkModel{Uniform: 50}, Loss: LossConfig{Rate: 1}}},
		{"rate-negative", Config{Link: topology.LinkModel{Uniform: 50}, Loss: LossConfig{Rate: -0.1}}},
		{"negative-retries", Config{Link: topology.LinkModel{Uniform: 50}, Loss: LossConfig{Rate: 0.1, Retries: -1}}},
		{"partition-duration", Config{Link: topology.LinkModel{Uniform: 50}, Partition: PartitionConfig{Period: 10, Duration: 10}}},
	}
	pts := []geom.Point{{X: 10, Y: 10}, {X: 40, Y: 10}}
	a := geom.Rect{W: 100, H: 100}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: invalid config accepted", tc.name)
				}
			}()
			NewNetwork(mobility.NewStatic(pts, a), tc.cfg, xrand.New(1))
		})
	}
}
