package manet

// Lossy delivery. The paper's NS-2 runs deliver every control packet; a
// production MANET does not. The loss model here is deliberately the
// simplest one that keeps the determinism contract intact: every
// transmission attempt of a protocol-level hop u→v in topology epoch e
// succeeds or fails according to a pure hash of (seed, e, u, v, attempt).
//
// Two properties follow directly from the purity:
//
//   - Serial == parallel, by construction. Outcomes depend only on the
//     arguments, never on draw order, so sharding protocol rounds across
//     workers cannot perturb them — there is no shared generator state to
//     race on and nothing for cardlint's stream discipline to flag.
//   - Within one epoch a hop's outcome sequence is frozen: retrying the
//     same hop in the same epoch replays the same draws ("link fade" —
//     the hop is bad for this topology interval, not per-packet noise).
//     The next refresh bumps the epoch and re-rolls every link.
//
// Accounting: the first transmission of a hop is charged to the hop's own
// category, each retransmission to CatRetry. A hop that exhausts its
// retry budget behaves exactly like a broken link — the existing
// path-recovery machinery (validation detours, query failures) takes over
// from there, which is how protocol-level timeout cost surfaces in the
// recorder without a clock.

// DefaultLossRetries is the per-hop retry budget used when LossConfig
// enables loss without choosing one.
const DefaultLossRetries = 3

// LossConfig configures the probabilistic delivery model.
type LossConfig struct {
	// Rate is the per-transmission loss probability in [0, 1). Zero keeps
	// the lossless model: every hop costs exactly one transmission.
	Rate float64
	// Retries is the per-hop retransmission budget after the first
	// attempt; zero with a positive Rate means DefaultLossRetries.
	Retries int
	// Seed overrides the loss stream seed; zero derives one from the
	// network's own generator lineage at construction.
	Seed uint64
}

// lossMix is the splitmix64 finalizer — full-avalanche, so consecutive
// (epoch, edge, attempt) tuples decorrelate completely.
func lossMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hopDelivered reports whether transmission attempt a of hop u→v succeeds
// in the current epoch. Pure in (lossSeed, epoch, u, v, attempt).
func (n *Network) hopDelivered(u, v NodeID, attempt int) bool {
	h := lossMix(n.lossSeed ^ n.epoch)
	h = lossMix(h ^ (uint64(uint32(u))<<32 | uint64(uint32(v))))
	h = lossMix(h ^ uint64(attempt))
	// Top 53 bits → uniform in [0,1), the same float discipline xrand uses.
	return float64(h>>11)*0x1p-53 >= n.lossRate
}

// TryHop models one protocol-level unicast hop u→v against the current
// snapshot: the hop needs a bidirectional link (data out, acknowledgement
// back) and delivery within the retry budget. It returns the number of
// transmissions attempted — 0 when no usable link exists and nothing was
// sent, otherwise 1 + retransmissions — and whether the packet got
// through. Callers charge the first transmission to the hop's category
// and the rest to CatRetry (WalkPath does this; protocol layers with
// local tallies do their own). Deterministic and order-independent within
// an epoch; see loss.go's package notes.
func (n *Network) TryHop(u, v NodeID) (attempts int, delivered bool) {
	if !n.graph.Bidirectional(u, v) {
		return 0, false
	}
	if n.lossRate <= 0 {
		return 1, true
	}
	for a := 0; a <= n.lossRetries; a++ {
		if n.hopDelivered(u, v, a) {
			return a + 1, true
		}
	}
	return n.lossRetries + 1, false
}
