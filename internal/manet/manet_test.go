package manet

import (
	"testing"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 500, H: 500}

func staticNet(t *testing.T, pts []geom.Point, txRange float64) *Network {
	t.Helper()
	return New(mobility.NewStatic(pts, area), txRange, xrand.New(1))
}

func TestCountersBasics(t *testing.T) {
	var k Counters
	k.Add(CatCSQ, 3)
	k.Add(CatBacktrack, 2)
	k.Add(CatCSQ, 1)
	if got := k.Get(CatCSQ); got != 4 {
		t.Errorf("Get(CSQ) = %d", got)
	}
	if got := k.Sum(CatCSQ, CatBacktrack); got != 6 {
		t.Errorf("Sum = %d", got)
	}
	if got := k.Total(); got != 6 {
		t.Errorf("Total = %d", got)
	}
	snap := k.Totals()
	k.Add(CatQuery, 5)
	d := k.DiffSince(snap)
	if d.Get(CatQuery) != 5 || d.Get(CatCSQ) != 0 {
		t.Errorf("DiffSince = %v", d.String())
	}
	k.Reset()
	if k.Total() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestCountersString(t *testing.T) {
	var k Counters
	if k.String() != "(none)" {
		t.Errorf("empty String = %q", k.String())
	}
	k.Add(CatValidate, 2)
	if k.String() != "validate=2" {
		t.Errorf("String = %q", k.String())
	}
}

func TestCategoryString(t *testing.T) {
	if CatDSDV.String() != "dsdv" || CatReply.String() != "reply" {
		t.Error("category names wrong")
	}
	if Category(99).String() != "Category(99)" {
		t.Error("out-of-range category name wrong")
	}
}

func TestNetworkSnapshot(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 100, Y: 100}}
	n := staticNet(t, pts, 15)
	if n.N() != 3 {
		t.Fatalf("N = %d", n.N())
	}
	if !n.Adjacent(0, 1) || n.Adjacent(0, 2) {
		t.Error("adjacency wrong")
	}
	if got := n.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if n.Graph().N() != 3 {
		t.Error("Graph() inconsistent")
	}
	if n.TxRange() != 15 {
		t.Error("TxRange wrong")
	}
}

func TestRefreshAdvancesEpoch(t *testing.T) {
	n := staticNet(t, []geom.Point{{X: 0, Y: 0}}, 10)
	e0 := n.Epoch()
	n.RefreshAt(1)
	if n.Epoch() != e0+1 {
		t.Errorf("epoch did not advance: %d -> %d", e0, n.Epoch())
	}
	if n.Now() != 1 {
		t.Errorf("Now = %v", n.Now())
	}
}

func TestRefreshBackwardsPanics(t *testing.T) {
	n := staticNet(t, []geom.Point{{X: 0, Y: 0}}, 10)
	n.RefreshAt(5)
	defer func() {
		if recover() == nil {
			t.Error("backwards refresh did not panic")
		}
	}()
	n.RefreshAt(4)
}

func TestBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("txRange=0 did not panic")
		}
	}()
	New(mobility.NewStatic(nil, area), 0, xrand.New(1))
}

func TestMobilityChangesTopology(t *testing.T) {
	// Two nodes walking: with RWP over a large area they will eventually be
	// out of range of each other even if they start close. Use a model where
	// we control it: random walk with high speed and check the link set
	// actually changes across refreshes at least once.
	rng := xrand.New(77)
	m, err := mobility.NewRandomWaypoint(30, area, mobility.DefaultRWP(), rng)
	if err != nil {
		t.Fatal(err)
	}
	n := New(m, 60, xrand.New(2))
	prev := n.Graph().Links()
	changed := false
	for i := 1; i <= 40; i++ {
		n.RefreshAt(float64(i))
		if n.Graph().Links() != prev {
			changed = true
			break
		}
		prev = n.Graph().Links()
	}
	if !changed {
		t.Error("40 s of RWP mobility never changed the link count")
	}
}

func TestSendAccounting(t *testing.T) {
	n := staticNet(t, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}, 15)
	n.SendHop(CatQuery)
	n.SendHops(CatQuery, 3)
	n.Broadcast(CatDSDV)
	if got := n.Totals().Get(CatQuery); got != 4 {
		t.Errorf("query count = %d", got)
	}
	if got := n.Totals().Get(CatDSDV); got != 1 {
		t.Errorf("dsdv count = %d", got)
	}
}

func TestWalkPathComplete(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 30, Y: 0}}
	n := staticNet(t, pts, 15)
	ok, holder := n.WalkPath(CatValidate, []NodeID{0, 1, 2, 3})
	if !ok || holder != 3 {
		t.Errorf("WalkPath = %v, %d", ok, holder)
	}
	if got := n.Totals().Get(CatValidate); got != 3 {
		t.Errorf("validate hops = %d, want 3", got)
	}
}

func TestWalkPathBroken(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 200, Y: 0}, {X: 210, Y: 0}}
	n := staticNet(t, pts, 15)
	ok, holder := n.WalkPath(CatValidate, []NodeID{0, 1, 2, 3})
	if ok {
		t.Error("broken path reported ok")
	}
	if holder != 1 {
		t.Errorf("holder = %d, want 1 (packet stuck at node index 1)", holder)
	}
	if got := n.Totals().Get(CatValidate); got != 1 {
		t.Errorf("validate hops = %d, want 1 (only first hop succeeded)", got)
	}
}

func TestWalkPathSingleNode(t *testing.T) {
	n := staticNet(t, []geom.Point{{X: 0, Y: 0}}, 15)
	ok, holder := n.WalkPath(CatQuery, []NodeID{0})
	if !ok || holder != 0 {
		t.Errorf("trivial walk = %v, %d", ok, holder)
	}
	if n.Totals().Total() != 0 {
		t.Error("trivial walk counted messages")
	}
}

func TestNodeIDAliasesTopology(t *testing.T) {
	var a NodeID = 3
	var b topology.NodeID = 3
	if a != b {
		t.Error("NodeID alias broken")
	}
}
