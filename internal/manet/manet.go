// Package manet binds placement, mobility and radio range into the network
// substrate the discovery protocols run on: a time-indexed unit-disk
// connectivity snapshot plus categorized control-message accounting.
//
// # Simulation model
//
// The paper's NS-2 experiments deliberately ignore MAC/PHY effects, so the
// relevant physics reduce to: (1) which links exist at time t (unit disk
// over mobile positions), and (2) how many control-message transmissions
// each mechanism generates. Network models exactly that. Control packets
// are executed as synchronous hop walks at the instant they are sent —
// packet flight time (µs–ms) is negligible against mobility and validation
// periods (seconds).
//
// The topology snapshot is refreshed explicitly (RefreshAt); protocols
// observe link churn between refreshes exactly as a beacon-driven MANET
// stack observes it between hello intervals.
package manet

import (
	"fmt"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Category classifies control messages for the paper's overhead metrics.
type Category int

// Control-message categories. The paper's figures aggregate them in
// different combinations: Fig. 4/12 count CSQBacktrack, Fig. 10/11 count
// Select+Backtrack+Validate+Recovery, Fig. 15 compares Query+Reply traffic
// across schemes with CARD's Select/Validate shown separately.
const (
	CatDSDV      Category = iota // proactive neighborhood updates
	CatCSQ                       // contact-selection forward hops
	CatBacktrack                 // contact-selection backtrack hops
	CatValidate                  // contact path-validation hops
	CatRecovery                  // local-recovery lookups and splices
	CatQuery                     // resource query hops (DSQ / flood / bordercast)
	CatReply                     // reply-path hops
	numCategories
)

var categoryNames = [numCategories]string{
	"dsdv", "csq", "backtrack", "validate", "recovery", "query", "reply",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Counters tallies control-message transmissions per category. The zero
// value is ready to use. Not safe for concurrent use: every simulation run
// owns its Network (and hence its Counters) exclusively.
type Counters struct {
	c [numCategories]int64
}

// Add records n transmissions of category cat.
func (k *Counters) Add(cat Category, n int) { k.c[cat] += int64(n) }

// Get returns the count for one category.
func (k *Counters) Get(cat Category) int64 { return k.c[cat] }

// Sum returns the combined count across the given categories.
func (k *Counters) Sum(cats ...Category) int64 {
	var s int64
	for _, c := range cats {
		s += k.c[c]
	}
	return s
}

// Total returns the count across all categories.
func (k *Counters) Total() int64 {
	var s int64
	for _, v := range k.c {
		s += v
	}
	return s
}

// Snapshot returns a copy of the current tallies, for window deltas.
func (k *Counters) Snapshot() Counters { return *k }

// DiffSince returns per-category counts accumulated since the snapshot.
func (k *Counters) DiffSince(prev Counters) Counters {
	var d Counters
	for i := range k.c {
		d.c[i] = k.c[i] - prev.c[i]
	}
	return d
}

// Reset zeroes all categories.
func (k *Counters) Reset() { k.c = [numCategories]int64{} }

func (k *Counters) String() string {
	s := ""
	for i, v := range k.c {
		if v == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", Category(i), v)
	}
	if s == "" {
		return "(none)"
	}
	return s
}

// Network is the substrate protocols run on. It is single-goroutine: each
// simulation run constructs and drives its own Network.
type Network struct {
	model   mobility.Model
	txRange float64
	rng     *xrand.Rand

	now   float64
	epoch uint64
	pos   []geom.Point
	graph *topology.Graph

	// Counters tallies all control-message transmissions on this network.
	Counters Counters
}

// New creates a network over the mobility model with the given transmission
// range and takes the initial topology snapshot at t=0.
func New(model mobility.Model, txRange float64, rng *xrand.Rand) *Network {
	if txRange <= 0 {
		panic("manet: non-positive transmission range")
	}
	n := &Network{
		model:   model,
		txRange: txRange,
		rng:     rng,
		pos:     make([]geom.Point, model.N()),
	}
	n.rebuild(0)
	return n
}

func (n *Network) rebuild(t float64) {
	n.model.PositionsAt(t, n.pos)
	n.graph = topology.Build(n.pos, n.model.Area(), n.txRange)
	n.now = t
	n.epoch++
}

// RefreshAt re-samples node positions at time t and rebuilds the
// connectivity snapshot. t must be >= the previous refresh time.
func (n *Network) RefreshAt(t float64) {
	if t < n.now {
		panic(fmt.Sprintf("manet: refresh at %v before now %v", t, n.now))
	}
	n.rebuild(t)
}

// N returns the number of nodes.
func (n *Network) N() int { return n.model.N() }

// Now returns the time of the current snapshot.
func (n *Network) Now() float64 { return n.now }

// Epoch returns a counter that increments at every refresh; consumers cache
// derived state (neighborhood views) keyed by epoch.
func (n *Network) Epoch() uint64 { return n.epoch }

// Graph returns the current connectivity snapshot.
func (n *Network) Graph() *topology.Graph { return n.graph }

// TxRange returns the radio range in meters.
func (n *Network) TxRange() float64 { return n.txRange }

// Rng returns the network's deterministic random stream (used by protocols
// for forwarding choices).
func (n *Network) Rng() *xrand.Rand { return n.rng }

// Adjacent reports whether u and v currently share a link.
func (n *Network) Adjacent(u, v NodeID) bool { return n.graph.Adjacent(u, v) }

// Neighbors returns u's current one-hop neighbors (do not mutate).
func (n *Network) Neighbors(u NodeID) []NodeID { return n.graph.Neighbors(u) }

// SendHop accounts one unicast hop transmission of category cat.
func (n *Network) SendHop(cat Category) { n.Counters.Add(cat, 1) }

// SendHops accounts k unicast hop transmissions of category cat.
func (n *Network) SendHops(cat Category, k int) { n.Counters.Add(cat, k) }

// Broadcast accounts one local broadcast transmission of category cat
// (one radio transmission heard by all current neighbors).
func (n *Network) Broadcast(cat Category) { n.Counters.Add(cat, 1) }

// WalkPath accounts the unicast transmissions needed to move one packet
// along path (len(path)-1 hops) and reports whether every hop exists in the
// current snapshot. On a broken hop it stops counting at the break and
// returns the index of the node that still holds the packet.
func (n *Network) WalkPath(cat Category, path []NodeID) (ok bool, holder int) {
	for i := 0; i+1 < len(path); i++ {
		if !n.graph.Adjacent(path[i], path[i+1]) {
			return false, i
		}
		n.SendHop(cat)
	}
	return true, len(path) - 1
}
