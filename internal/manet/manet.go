// Package manet binds placement, mobility and radio range into the network
// substrate the discovery protocols run on: a time-indexed unit-disk
// connectivity snapshot plus categorized control-message accounting.
//
// # Simulation model
//
// The paper's NS-2 experiments deliberately ignore MAC/PHY effects, so the
// relevant physics reduce to: (1) which links exist at time t (unit disk
// over mobile positions), and (2) how many control-message transmissions
// each mechanism generates. Network models exactly that. Control packets
// are executed as synchronous hop walks at the instant they are sent —
// packet flight time (µs–ms) is negligible against mobility and validation
// periods (seconds).
//
// The topology snapshot is refreshed explicitly (RefreshAt); protocols
// observe link churn between refreshes exactly as a beacon-driven MANET
// stack observes it between hello intervals. How the snapshot is computed
// is selected by TopologyMode: the default incremental spatial-hash
// builder reprocesses only nodes that moved, the full-grid mode rebuilds
// every refresh, and the naive O(N²) mode exists as the correctness and
// performance reference.
//
// Message accounting flows through a pluggable [Recorder] (see
// recorder.go): the plain [Counters] for serial runs, [AtomicCounters]
// when concurrent readers or writers are in play.
//
// # Node churn
//
// A Network may carry a [Churn] schedule (NewWithChurn): at every refresh
// the schedule is sampled and down nodes are excluded from the topology
// snapshot — no links in either direction — while keeping their ids and
// positions. The flip lists (ChurnedDown, ChurnedUp) let the protocol
// layer expire contact state exactly once per transition. Schedules are
// stream-seeded per node, so churned runs are as reproducible as fixed
// populations.
package manet

import (
	"fmt"
	"math"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Category classifies control messages for the paper's overhead metrics.
type Category int

// Control-message categories. The paper's figures aggregate them in
// different combinations: Fig. 4/12 count CSQBacktrack, Fig. 10/11 count
// Select+Backtrack+Validate+Recovery, Fig. 15 compares Query+Reply traffic
// across schemes with CARD's Select/Validate shown separately.
const (
	CatDSDV      Category = iota // proactive neighborhood updates
	CatCSQ                       // contact-selection forward hops
	CatBacktrack                 // contact-selection backtrack hops
	CatValidate                  // contact path-validation hops
	CatRecovery                  // local-recovery lookups and splices
	CatQuery                     // resource query hops (DSQ / flood / bordercast)
	CatReply                     // reply-path hops
	CatRegister                  // rendezvous registration hops and region floods
	CatRetry                     // link-layer retransmissions under a lossy link model
	numCategories
)

var categoryNames = [numCategories]string{
	"dsdv", "csq", "backtrack", "validate", "recovery", "query", "reply", "register", "retry",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// TopologyMode selects how the connectivity snapshot is recomputed at each
// refresh.
type TopologyMode int

const (
	// IncrementalTopology (default) keeps a spatial-hash grid alive across
	// refreshes and reprocesses only the nodes that moved since the last
	// snapshot — O(moved·degree) per refresh.
	IncrementalTopology TopologyMode = iota
	// FullGridTopology rebuilds the grid-indexed graph from scratch every
	// refresh — O(N·degree).
	FullGridTopology
	// NaiveTopology runs the O(N²) all-pairs scan every refresh. Reference
	// implementation for equivalence tests and scaling benchmarks.
	NaiveTopology
)

func (m TopologyMode) String() string {
	switch m {
	case IncrementalTopology:
		return "incremental"
	case FullGridTopology:
		return "full-grid"
	case NaiveTopology:
		return "naive"
	default:
		return fmt.Sprintf("TopologyMode(%d)", int(m))
	}
}

// Network is the substrate protocols run on. It is single-goroutine for
// mutation: each simulation run constructs and drives its own Network.
// Read-only access (graph queries, neighborhood lookups) is safe from
// multiple goroutines between refreshes, which is what the engine's batch
// query fan-out relies on.
type Network struct {
	model mobility.Model
	// lm is the link model the topology snapshots are built from; txRange
	// caches lm.Max() (the only range in the scalar model).
	lm      topology.LinkModel
	txRange float64
	//cardlint:stream run-owner generator stored by the single-goroutine substrate; parallel layers only ever read derived (node, round) streams
	rng  *xrand.Rand
	mode TopologyMode

	// Loss process: every protocol-level hop draws delivery outcomes from
	// a pure hash of (lossSeed, epoch, u, v, attempt) — see loss.go.
	lossRate    float64
	lossRetries int
	lossSeed    uint64

	// Partition-and-heal schedule: while partPeriod > 0, the link model's
	// barrier is active whenever mod(t, partPeriod) falls within the last
	// partDuration seconds of the period.
	partPeriod, partDuration float64

	now     float64
	epoch   uint64
	pos     []geom.Point
	graph   *topology.Graph
	builder *topology.Builder // non-nil iff mode == IncrementalTopology

	// stepper is non-nil when the mobility model supports lazy stepping
	// (mobility.Stepper): refreshes then patch only the moved nodes into
	// the builder instead of rescanning all N positions, and pos aliases
	// the model's internal slice (no per-refresh copy). dirtyScratch
	// merges the moved list with churn flips for the builder.
	stepper      mobility.Stepper
	dirtyScratch []NodeID

	// Churn state: nil churn means a fixed population. down is the
	// node-exclusion mask fed to the topology builders; wentDown/cameUp
	// list the nodes that flipped at the most recent refresh and stay
	// valid until the next one.
	churn            *Churn
	down             []bool
	wentDown, cameUp []NodeID

	rec Recorder
}

// New creates a network over the mobility model with the given transmission
// range and takes the initial topology snapshot at t=0. The network starts
// with the default incremental topology mode and a serial Counters
// recorder.
func New(model mobility.Model, txRange float64, rng *xrand.Rand) *Network {
	return NewWithMode(model, txRange, rng, IncrementalTopology)
}

// NewWithMode is New with an explicit topology mode.
func NewWithMode(model mobility.Model, txRange float64, rng *xrand.Rand, mode TopologyMode) *Network {
	return NewWithChurn(model, txRange, rng, mode, nil)
}

// NewWithChurn is NewWithMode with a node up/down schedule: at every
// refresh the schedule is sampled, down nodes are excluded from the
// topology snapshot (no links in either direction), and the flip lists
// (ChurnedDown, ChurnedUp) are refreshed for protocol-layer expiry. A nil
// churn keeps the whole population up forever.
func NewWithChurn(model mobility.Model, txRange float64, rng *xrand.Rand, mode TopologyMode, churn *Churn) *Network {
	return NewNetwork(model, Config{
		Link:  topology.LinkModel{Uniform: txRange},
		Mode:  mode,
		Churn: churn,
	}, rng)
}

// Config gathers every substrate knob for NewNetwork. The zero value of
// each optional field disables it: nil Churn keeps the population up, a
// zero Loss delivers every transmission, a zero Partition never cuts the
// area, and a Link with only Uniform set runs the scalar fast path.
type Config struct {
	// Link is the radio layer (see topology.LinkModel). Uniform must be
	// positive; Ranges (per-node, producing directed graphs) is optional.
	// Any BarrierX in it is overwritten when Partition is scheduled.
	Link topology.LinkModel
	// Mode selects how snapshots are recomputed (default incremental).
	Mode TopologyMode
	// Churn is an optional node up/down schedule (see NewWithChurn).
	Churn *Churn
	// Loss is the probabilistic delivery model (see LossConfig).
	Loss LossConfig
	// Partition schedules partition-and-heal events: with Period > 0 a
	// vertical barrier at mid-area cuts every crossing link whenever
	// mod(t, Period) >= Period-Duration, healing at the period wrap.
	Partition PartitionConfig
}

// PartitionConfig schedules recurring partition-and-heal events.
type PartitionConfig struct {
	// Period is the event cycle length in seconds (0 = no partitions);
	// Duration is how long the partition holds at the end of each cycle,
	// and must lie in (0, Period) when Period is set.
	Period, Duration float64
}

// NewNetwork creates a network over the mobility model with the full
// substrate configuration and takes the initial topology snapshot at t=0.
// It starts with a serial Counters recorder.
func NewNetwork(model mobility.Model, cfg Config, rng *xrand.Rand) *Network {
	lm := cfg.Link
	if lm.Ranges == nil && lm.Uniform <= 0 {
		panic("manet: non-positive transmission range")
	}
	if lm.Ranges != nil && len(lm.Ranges) != model.N() {
		panic(fmt.Sprintf("manet: link model covers %d nodes, model has %d", len(lm.Ranges), model.N()))
	}
	if cfg.Churn != nil && cfg.Churn.N() != model.N() {
		panic(fmt.Sprintf("manet: churn schedule covers %d nodes, model has %d", cfg.Churn.N(), model.N()))
	}
	if cfg.Loss.Rate < 0 || cfg.Loss.Rate >= 1 {
		panic("manet: loss rate outside [0, 1)")
	}
	if cfg.Loss.Retries < 0 {
		panic("manet: negative loss retry budget")
	}
	if cfg.Partition.Period > 0 &&
		(cfg.Partition.Duration <= 0 || cfg.Partition.Duration >= cfg.Partition.Period) {
		panic("manet: partition duration must lie in (0, period)")
	}
	if cfg.Partition.Period > 0 {
		lm.BarrierX = model.Area().W / 2
		lm.BarrierActive = false
	}
	n := &Network{
		model:        model,
		lm:           lm,
		txRange:      lm.Max(),
		rng:          rng,
		mode:         cfg.Mode,
		partPeriod:   cfg.Partition.Period,
		partDuration: cfg.Partition.Duration,
		pos:          make([]geom.Point, model.N()),
		churn:        cfg.Churn,
		rec:          &Counters{},
	}
	if cfg.Loss.Rate > 0 {
		n.lossRate = cfg.Loss.Rate
		n.lossRetries = cfg.Loss.Retries
		if n.lossRetries == 0 {
			n.lossRetries = DefaultLossRetries
		}
		n.lossSeed = cfg.Loss.Seed
		if n.lossSeed == 0 {
			// A derived constant substream of the run-owner generator:
			// pure read, no state advanced, same lineage discipline as
			// the per-(node, round) protocol streams.
			n.lossSeed = rng.StreamSeed(0x1055e5, 0)
		}
	}
	if cfg.Churn != nil {
		n.down = make([]bool, model.N())
	}
	if cfg.Mode == IncrementalTopology {
		n.builder = topology.NewBuilderLink(model.N(), model.Area(), n.lm)
	}
	if st, ok := model.(mobility.Stepper); ok {
		n.stepper = st
	}
	n.rebuild(0)
	return n
}

func (n *Network) rebuild(t float64) {
	if n.partPeriod > 0 {
		active := math.Mod(t, n.partPeriod) >= n.partPeriod-n.partDuration
		if active != n.lm.BarrierActive {
			n.lm.BarrierActive = active
			if n.builder != nil {
				// The toggle flips links among stationary nodes, so the
				// builder falls back to a full rebuild (all changed).
				n.builder.SetBarrier(active)
			}
		}
	}
	var moved []NodeID
	if n.stepper != nil {
		moved, n.pos = n.stepper.StepTo(t)
	} else {
		n.model.PositionsAt(t, n.pos)
	}
	if n.churn != nil {
		n.wentDown, n.cameUp = n.wentDown[:0], n.cameUp[:0]
		for i := range n.down {
			up := n.churn.UpAt(i, t)
			if up == n.down[i] { // state flip (down stores the negation)
				if up {
					n.cameUp = append(n.cameUp, NodeID(i))
				} else {
					n.wentDown = append(n.wentDown, NodeID(i))
				}
				n.down[i] = !up
			}
		}
	}
	switch n.mode {
	case IncrementalTopology:
		if n.stepper != nil {
			dirty := moved
			if n.churn != nil && len(n.wentDown)+len(n.cameUp) > 0 {
				d := append(n.dirtyScratch[:0], moved...)
				d = append(d, n.wentDown...)
				d = append(d, n.cameUp...)
				n.dirtyScratch = d
				dirty = d
			}
			n.graph = n.builder.UpdateDirtyMasked(n.pos, n.down, dirty)
		} else {
			n.graph = n.builder.UpdateMasked(n.pos, n.down)
		}
	case NaiveTopology:
		n.graph = topology.BuildNaiveLinkMasked(n.pos, n.model.Area(), n.lm, n.down)
	default:
		n.graph = topology.BuildLinkMasked(n.pos, n.model.Area(), n.lm, n.down)
	}
	n.now = t
	n.epoch++
}

// RefreshAt re-samples node positions at time t and rebuilds the
// connectivity snapshot. t must be >= the previous refresh time.
func (n *Network) RefreshAt(t float64) {
	if t < n.now {
		panic(fmt.Sprintf("manet: refresh at %v before now %v", t, n.now))
	}
	n.rebuild(t)
}

// N returns the number of nodes.
func (n *Network) N() int { return n.model.N() }

// Now returns the time of the current snapshot.
func (n *Network) Now() float64 { return n.now }

// Epoch returns a counter that increments at every refresh; consumers cache
// derived state (neighborhood views) keyed by epoch.
func (n *Network) Epoch() uint64 { return n.epoch }

// Graph returns the current connectivity snapshot. The snapshot is valid
// until the next refresh; do not retain it across RefreshAt.
func (n *Network) Graph() *topology.Graph { return n.graph }

// TxRange returns the radio range in meters — the maximum over all nodes
// when the link model is heterogeneous (see Graph.TxRange).
func (n *Network) TxRange() float64 { return n.txRange }

// LinkModel returns the radio layer the network builds snapshots from
// (with the barrier state as of the current snapshot).
func (n *Network) LinkModel() topology.LinkModel { return n.lm }

// Directed reports whether the link model can produce asymmetric links.
func (n *Network) Directed() bool { return n.lm.Ranges != nil || n.lm.BarrierX > 0 }

// LossRate returns the per-transmission loss probability (0 = lossless).
func (n *Network) LossRate() float64 { return n.lossRate }

// LossRetries returns the per-hop retry budget under loss.
func (n *Network) LossRetries() int { return n.lossRetries }

// PartitionActive reports whether the scheduled partition barrier is
// cutting links in the current snapshot.
func (n *Network) PartitionActive() bool { return n.lm.BarrierActive }

// Position returns node u's position in the current snapshot. Valid until
// the next refresh; down nodes keep a position while holding no links.
func (n *Network) Position(u NodeID) geom.Point { return n.pos[u] }

// Area returns the deployment area the mobility model covers.
func (n *Network) Area() geom.Rect { return n.model.Area() }

// TopologyMode returns how this network recomputes snapshots.
func (n *Network) TopologyMode() TopologyMode { return n.mode }

// Rng returns the network's deterministic random stream (used by protocols
// for forwarding choices).
func (n *Network) Rng() *xrand.Rand { return n.rng }

// HasChurn reports whether the network runs a node up/down schedule.
func (n *Network) HasChurn() bool { return n.churn != nil }

// Up reports whether node u is up in the current snapshot (always true
// without churn). Down nodes keep their id and position but hold no links
// and must not originate protocol rounds.
func (n *Network) Up(u NodeID) bool { return n.down == nil || !n.down[u] }

// Down reports whether node u is churned out of the current snapshot.
func (n *Network) Down(u NodeID) bool { return n.down != nil && n.down[u] }

// UpCount returns the number of up nodes in the current snapshot.
func (n *Network) UpCount() int {
	if n.down == nil {
		return n.model.N()
	}
	c := 0
	for _, d := range n.down {
		if !d {
			c++
		}
	}
	return c
}

// ChurnedDown lists the nodes that went down at the most recent refresh.
// The slice is valid until the next refresh; do not mutate or retain it.
func (n *Network) ChurnedDown() []NodeID { return n.wentDown }

// ChurnedUp lists the nodes readmitted at the most recent refresh. The
// slice is valid until the next refresh; do not mutate or retain it.
func (n *Network) ChurnedUp() []NodeID { return n.cameUp }

// AdjacencyChanged reports which nodes' adjacency lists differ from the
// previous snapshot after the most recent refresh. all=true means the
// refresh rebuilt everything (non-incremental topology modes, the first
// build, or a mass-movement fallback) and every node must be treated as
// changed; the list is then empty. Otherwise the list is exact and
// duplicate-free (see topology.Builder.Changed) and valid until the next
// refresh. The engine's dirty-set maintenance is the intended consumer.
func (n *Network) AdjacencyChanged() (changed []NodeID, all bool) {
	if n.builder == nil {
		return nil, true
	}
	return n.builder.Changed()
}

// Adjacent reports whether u can currently transmit to v (the symmetric
// link predicate on scalar-range networks).
func (n *Network) Adjacent(u, v NodeID) bool { return n.graph.Adjacent(u, v) }

// Bidirectional reports whether u and v can currently exchange packets in
// both directions — what a protocol-level unicast hop requires, since the
// link-layer acknowledgement travels the reverse edge. Identical to
// Adjacent on scalar-range networks.
func (n *Network) Bidirectional(u, v NodeID) bool { return n.graph.Bidirectional(u, v) }

// Neighbors returns u's current one-hop neighbors (do not mutate).
func (n *Network) Neighbors(u NodeID) []NodeID { return n.graph.Neighbors(u) }

// Recorder returns the active message-accounting sink.
func (n *Network) Recorder() Recorder { return n.rec }

// SetRecorder swaps the accounting sink (e.g. to AtomicCounters before a
// concurrent phase). Tallies already recorded stay with the old recorder;
// callers that need continuity should carry totals over themselves.
func (n *Network) SetRecorder(r Recorder) {
	if r == nil {
		panic("manet: nil recorder")
	}
	n.rec = r
}

// Totals returns the current per-category message tallies.
func (n *Network) Totals() Counters { return n.rec.Totals() }

// Record adds k transmissions of category cat to the active recorder.
func (n *Network) Record(cat Category, k int64) { n.rec.Record(cat, k) }

// SendHop accounts one unicast hop transmission of category cat.
func (n *Network) SendHop(cat Category) { n.rec.Record(cat, 1) }

// SendHops accounts k unicast hop transmissions of category cat.
func (n *Network) SendHops(cat Category, k int) { n.rec.Record(cat, int64(k)) }

// Broadcast accounts one local broadcast transmission of category cat
// (one radio transmission heard by all current neighbors).
func (n *Network) Broadcast(cat Category) { n.rec.Record(cat, 1) }

// WalkPath accounts the unicast transmissions needed to move one packet
// along path (len(path)-1 hops) and reports whether every hop could be
// completed against the current snapshot. A hop requires a bidirectional
// link (see TryHop) and, under loss, delivery within the retry budget;
// the first transmission of each attempted hop is charged to cat and
// retransmissions to CatRetry. On a failed hop it stops at the break and
// returns the index of the node that still holds the packet — a hop that
// exhausted its retries still charges the transmissions it burned.
func (n *Network) WalkPath(cat Category, path []NodeID) (ok bool, holder int) {
	for i := 0; i+1 < len(path); i++ {
		att, delivered := n.TryHop(path[i], path[i+1])
		if att > 0 {
			n.rec.Record(cat, 1)
			if att > 1 {
				n.rec.Record(CatRetry, int64(att-1))
			}
		}
		if !delivered {
			return false, i
		}
	}
	return true, len(path) - 1
}
