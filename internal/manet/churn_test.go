package manet

import (
	"testing"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

func testChurn(t *testing.T, n int, seed uint64) *Churn {
	t.Helper()
	c, err := NewChurn(n, ChurnConfig{MeanUp: 10, MeanDown: 4}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChurnConfigValidation(t *testing.T) {
	for _, cfg := range []ChurnConfig{{MeanUp: 0, MeanDown: 1}, {MeanUp: 1, MeanDown: -2}} {
		if _, err := NewChurn(5, cfg, xrand.New(1)); err == nil {
			t.Errorf("NewChurn accepted %+v", cfg)
		}
	}
}

// TestChurnDeterministicPerSeed pins the schedule contract: equal seeds
// give identical flip sequences under any monotone sampling, and sampling
// one node never perturbs another (per-node derived streams).
func TestChurnDeterministicPerSeed(t *testing.T) {
	const n = 40
	a := testChurn(t, n, 5)
	b := testChurn(t, n, 5)
	times := []float64{0, 0.5, 3, 3, 7.25, 20, 100, 400}
	for _, tm := range times {
		for i := 0; i < n; i++ {
			if a.UpAt(i, tm) != b.UpAt(i, tm) {
				t.Fatalf("node %d diverges at t=%v under equal seeds", i, tm)
			}
		}
	}
	// Independence: a third schedule sampled only at the final time must
	// agree with one sampled densely.
	c := testChurn(t, n, 5)
	last := times[len(times)-1]
	for i := 0; i < n; i++ {
		if got, want := c.UpAt(i, last), a.UpAt(i, last); got != want {
			t.Fatalf("node %d: sparse sampling %v != dense sampling %v", i, got, want)
		}
	}
}

func TestChurnActuallyFlips(t *testing.T) {
	const n = 50
	c := testChurn(t, n, 9)
	everDown := 0
	for i := 0; i < n; i++ {
		wasDown := false
		for tm := 0.0; tm <= 100; tm += 1 {
			if !c.UpAt(i, tm) {
				wasDown = true
			}
		}
		if wasDown {
			everDown++
		}
	}
	// Mean up-time 10 s over 100 s: virtually every node should go down.
	if everDown < n*3/4 {
		t.Errorf("only %d/%d nodes ever went down over 100 s", everDown, n)
	}
}

// TestNetworkChurnIntegration checks the substrate contract: down nodes
// are link-free in the snapshot, flip lists match state transitions, and
// the three topology modes agree on the churned graph.
func TestNetworkChurnIntegration(t *testing.T) {
	const n = 120
	area := geom.Rect{W: 500, H: 500}
	build := func(mode TopologyMode) *Network {
		rng := xrand.New(77)
		m, err := mobility.NewRandomWaypoint(n, area, mobility.DefaultRWP(), rng.Derive(0))
		if err != nil {
			t.Fatal(err)
		}
		churn, err := NewChurn(n, ChurnConfig{MeanUp: 6, MeanDown: 3}, rng.Derive(3))
		if err != nil {
			t.Fatal(err)
		}
		return NewWithChurn(m, 60, rng.Derive(1), mode, churn)
	}
	inc, full, naive := build(IncrementalTopology), build(FullGridTopology), build(NaiveTopology)

	// Snapshot the post-construction state: the t=0 build may already have
	// flipped nodes whose first up-interval rounded to zero.
	prevDown := make([]bool, n)
	for u := 0; u < n; u++ {
		prevDown[u] = inc.Down(topology.NodeID(u))
	}
	for _, tm := range []float64{0.5, 1, 2.5, 4, 8, 16, 30} {
		inc.RefreshAt(tm)
		full.RefreshAt(tm)
		naive.RefreshAt(tm)

		for u := 0; u < n; u++ {
			if inc.Up(topology.NodeID(u)) != full.Up(topology.NodeID(u)) {
				t.Fatalf("t=%v: topology modes disagree on up(%d)", tm, u)
			}
			if inc.Down(topology.NodeID(u)) && inc.Graph().Degree(topology.NodeID(u)) != 0 {
				t.Fatalf("t=%v: down node %d has links", tm, u)
			}
		}
		// Graphs must be structurally identical across modes.
		if inc.Graph().Links() != naive.Graph().Links() || full.Graph().Links() != naive.Graph().Links() {
			t.Fatalf("t=%v: link counts diverge: inc=%d full=%d naive=%d",
				tm, inc.Graph().Links(), full.Graph().Links(), naive.Graph().Links())
		}
		// Flip lists must match the observed state transitions.
		flips := map[topology.NodeID]bool{}
		for _, v := range inc.ChurnedDown() {
			flips[v] = true
			if inc.Up(v) {
				t.Fatalf("t=%v: ChurnedDown lists up node %d", tm, v)
			}
		}
		for _, v := range inc.ChurnedUp() {
			flips[v] = true
			if inc.Down(v) {
				t.Fatalf("t=%v: ChurnedUp lists down node %d", tm, v)
			}
		}
		for u := 0; u < n; u++ {
			nowDown := inc.Down(topology.NodeID(u))
			if nowDown != prevDown[u] && !flips[topology.NodeID(u)] {
				t.Fatalf("t=%v: node %d flipped without appearing in a flip list", tm, u)
			}
			if nowDown == prevDown[u] && flips[topology.NodeID(u)] {
				t.Fatalf("t=%v: node %d in a flip list without flipping", tm, u)
			}
			prevDown[u] = nowDown
		}
		if inc.UpCount()+len(downNodes(inc)) != n {
			t.Fatalf("t=%v: UpCount inconsistent", tm)
		}
	}
}

func downNodes(n *Network) []topology.NodeID {
	var out []topology.NodeID
	for u := 0; u < n.N(); u++ {
		if n.Down(topology.NodeID(u)) {
			out = append(out, topology.NodeID(u))
		}
	}
	return out
}

func TestNetworkWithoutChurnIsAllUp(t *testing.T) {
	area := geom.Rect{W: 100, H: 100}
	pts := topology.UniformPositions(10, area, xrand.New(1))
	net := New(mobility.NewStatic(pts, area), 30, xrand.New(2))
	if net.HasChurn() {
		t.Error("churn-free network reports churn")
	}
	if net.UpCount() != 10 || net.Down(3) || !net.Up(3) {
		t.Error("churn-free network has down nodes")
	}
	if len(net.ChurnedDown()) != 0 || len(net.ChurnedUp()) != 0 {
		t.Error("churn-free network has flip lists")
	}
}

func TestNewWithChurnSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on churn/model size mismatch")
		}
	}()
	area := geom.Rect{W: 100, H: 100}
	pts := topology.UniformPositions(10, area, xrand.New(1))
	churn, _ := NewChurn(7, ChurnConfig{MeanUp: 5, MeanDown: 5}, xrand.New(3))
	NewWithChurn(mobility.NewStatic(pts, area), 30, xrand.New(2), IncrementalTopology, churn)
}
