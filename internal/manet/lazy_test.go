package manet

import (
	"testing"

	"card/internal/geom"
	"card/internal/mobility"
	"card/internal/xrand"
)

// TestRefreshZeroWorkWhilePaused pins the lazy refresh path end to end:
// while every random-waypoint node dwells in its initial pause, a refresh
// must perform zero position work (no node stepped, nothing moved), keep
// the adjacency diff empty, and still advance the epoch — the whole-stack
// quiet-refresh contract the 1M preset leans on.
func TestRefreshZeroWorkWhilePaused(t *testing.T) {
	area := geom.Rect{W: 1500, H: 1500}
	m, err := mobility.NewRandomWaypoint(300, area, mobility.RWPConfig{
		MinSpeed: 1, MaxSpeed: 19, Pause: 120,
	}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	n := NewWithMode(m, 100, xrand.New(3), IncrementalTopology)
	if w := m.PositionWork(); w != 0 {
		t.Fatalf("building the network performed %d position work", w)
	}
	links := n.Graph().Links()
	epoch := n.Epoch()
	for _, tt := range []float64{1, 2.5, 40, 119.9} {
		n.RefreshAt(tt)
		if w := m.PositionWork(); w != 0 {
			t.Fatalf("RefreshAt(%g) inside the dwell performed %d position work", tt, w)
		}
		if changed, all := n.AdjacencyChanged(); all || len(changed) != 0 {
			t.Fatalf("RefreshAt(%g) reported adjacency changes (%d, all=%v) on a fully-paused field", tt, len(changed), all)
		}
		if got := n.Graph().Links(); got != links {
			t.Fatalf("RefreshAt(%g) changed link count %d -> %d on a fully-paused field", tt, links, got)
		}
	}
	if n.Epoch() == epoch {
		t.Fatal("refreshes did not advance the epoch")
	}
}
