package manet

import (
	"fmt"

	"card/internal/xrand"
)

// ChurnConfig parameterizes a node up/down schedule: nodes alternate
// between up-times and down-times drawn from exponential distributions.
// The paper's evaluation keeps the population fixed; churn models the
// Rendezvous-Regions-style regime where devices arrive, sleep, crash and
// return, which stresses contact state far harder than link churn alone.
type ChurnConfig struct {
	// MeanUp is the mean up-time in seconds (> 0).
	MeanUp float64
	// MeanDown is the mean down-time in seconds (> 0).
	MeanDown float64
}

func (c ChurnConfig) validate() error {
	if c.MeanUp <= 0 {
		return fmt.Errorf("manet: churn MeanUp must be > 0, got %v", c.MeanUp)
	}
	if c.MeanDown <= 0 {
		return fmt.Errorf("manet: churn MeanDown must be > 0, got %v", c.MeanDown)
	}
	return nil
}

// churnState is one node's position in its up/down renewal process.
type churnState struct {
	rng   *xrand.Rand
	up    bool
	until float64 // time of the next state flip
}

// Churn is a deterministic per-node up/down schedule. Every node owns a
// derived RNG stream, so its flip sequence is a pure function of the
// construction seed and the node id — independent of how (or whether) any
// other node is sampled, which is what keeps churned runs reproducible
// and lets the engine's parallel rounds stay bit-identical to serial
// execution. All nodes start up at t = 0; sampling times must be
// non-decreasing per node (the network refresh clock is monotone).
type Churn struct {
	cfg   ChurnConfig
	nodes []churnState
}

// NewChurn creates a schedule for n nodes. The rng is consumed only for
// stream derivation; the caller may keep using it.
func NewChurn(n int, cfg ChurnConfig, rng *xrand.Rand) (*Churn, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Churn{cfg: cfg, nodes: make([]churnState, n)}
	for i := range c.nodes {
		s := &c.nodes[i]
		s.rng = rng.Derive(uint64(i))
		s.up = true
		s.until = cfg.MeanUp * s.rng.ExpFloat64()
	}
	return c, nil
}

// N returns the number of nodes the schedule covers.
func (c *Churn) N() int { return len(c.nodes) }

// UpAt reports whether node i is up at time t, advancing the node's
// renewal process. t must be non-decreasing across calls for a given i.
func (c *Churn) UpAt(i int, t float64) bool {
	s := &c.nodes[i]
	for t >= s.until {
		s.up = !s.up
		if s.up {
			s.until += c.cfg.MeanUp * s.rng.ExpFloat64()
		} else {
			s.until += c.cfg.MeanDown * s.rng.ExpFloat64()
		}
	}
	return s.up
}
