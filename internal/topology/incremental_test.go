package topology

import (
	"testing"

	"card/internal/geom"
	"card/internal/xrand"
)

// graphsEqual reports full structural equality: positions, links,
// per-node sorted out-adjacency, and — for directed snapshots — the
// in-adjacency and per-node ranges as well.
func graphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("node count: want %d, got %d", want.N(), got.N())
	}
	if want.Directed() != got.Directed() {
		t.Fatalf("directed: want %v, got %v", want.Directed(), got.Directed())
	}
	if want.Links() != got.Links() {
		t.Errorf("links: want %d, got %d", want.Links(), got.Links())
	}
	for u := 0; u < want.N(); u++ {
		if want.Pos(NodeID(u)) != got.Pos(NodeID(u)) {
			t.Fatalf("node %d position: want %v, got %v", u, want.Pos(NodeID(u)), got.Pos(NodeID(u)))
		}
		if want.RangeOf(NodeID(u)) != got.RangeOf(NodeID(u)) {
			t.Fatalf("node %d range: want %v, got %v", u, want.RangeOf(NodeID(u)), got.RangeOf(NodeID(u)))
		}
		w, g := want.Neighbors(NodeID(u)), got.Neighbors(NodeID(u))
		if len(w) != len(g) {
			t.Fatalf("node %d degree: want %v, got %v", u, w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d adjacency: want %v, got %v", u, w, g)
			}
		}
		wi, gi := want.InNeighbors(NodeID(u)), got.InNeighbors(NodeID(u))
		if len(wi) != len(gi) {
			t.Fatalf("node %d in-degree: want %v, got %v", u, wi, gi)
		}
		for i := range wi {
			if wi[i] != gi[i] {
				t.Fatalf("node %d in-adjacency: want %v, got %v", u, wi, gi)
			}
		}
	}
}

func TestBuildNaiveMatchesGrid(t *testing.T) {
	area := geom.Rect{W: 400, H: 300}
	rng := xrand.New(11)
	for _, n := range []int{1, 2, 10, 120, 400} {
		pos := UniformPositions(n, area, rng)
		graphsEqual(t, BuildNaive(pos, area, 55), Build(pos, area, 55))
	}
}

// TestBuilderMatchesFullRebuild drives a Builder through a random mobility
// trace where a random subset of nodes moves each step (including the
// empty and full subsets) and checks that every incremental snapshot is
// structurally identical to a from-scratch build.
func TestBuilderMatchesFullRebuild(t *testing.T) {
	const n = 250
	area := geom.Rect{W: 600, H: 600}
	const tx = 60.0
	rng := xrand.New(7)
	pos := UniformPositions(n, area, rng)
	b := NewBuilder(n, area, tx)
	graphsEqual(t, Build(pos, area, tx), b.Update(pos))

	for step := 0; step < 60; step++ {
		// Vary the churn: steps cycle through no movement, a handful of
		// movers, a large subset (above the full-rebuild threshold), and
		// everyone.
		var movers int
		switch step % 4 {
		case 0:
			movers = 0
		case 1:
			movers = 5
		case 2:
			movers = n / 2
		case 3:
			movers = n
		}
		for k := 0; k < movers; k++ {
			i := rng.Intn(n)
			pos[i] = area.Clamp(geom.Point{
				X: pos[i].X + rng.Range(-80, 80),
				Y: pos[i].Y + rng.Range(-80, 80),
			})
		}
		graphsEqual(t, Build(pos, area, tx), b.Update(pos))
	}
}

// TestBuilderTeleport moves one node across the whole area — exercising
// grid removal and reinsertion into distant buckets.
func TestBuilderTeleport(t *testing.T) {
	area := geom.Rect{W: 500, H: 500}
	const tx = 80.0
	rng := xrand.New(3)
	pos := UniformPositions(100, area, rng)
	b := NewBuilder(100, area, tx)
	b.Update(pos)
	for step := 0; step < 20; step++ {
		i := rng.Intn(100)
		pos[i] = geom.Point{X: rng.Range(0, area.W), Y: rng.Range(0, area.H)}
		graphsEqual(t, Build(pos, area, tx), b.Update(pos))
	}
}

func TestBuilderUpdateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched position count")
		}
	}()
	b := NewBuilder(4, geom.Rect{W: 10, H: 10}, 2)
	b.Update(make([]geom.Point, 3))
}
