package topology

import (
	"testing"

	"card/internal/geom"
	"card/internal/xrand"
)

// TestMaskedBuildersAgree drives all three construction paths through a
// combined movement + churn trace and checks byte-identical structure:
// the naive masked scan is the reference, the masked grid build and the
// incremental builder must match it at every step — including steps where
// nodes move while down, flip state without moving, and flip en masse
// (crossing the full-rebuild threshold).
func TestMaskedBuildersAgree(t *testing.T) {
	const n = 220
	area := geom.Rect{W: 600, H: 600}
	const tx = 60.0
	rng := xrand.New(19)
	pos := UniformPositions(n, area, rng)
	down := make([]bool, n)
	b := NewBuilder(n, area, tx)

	check := func(step int) {
		t.Helper()
		want := BuildNaiveMasked(pos, area, tx, down)
		graphsEqual(t, want, BuildMasked(pos, area, tx, down))
		graphsEqual(t, want, b.UpdateMasked(pos, down))
	}
	check(-1)

	for step := 0; step < 50; step++ {
		// Movement: a varying subset drifts (down nodes keep moving too —
		// their radios are off, not their legs).
		movers := []int{0, 8, n / 2, n}[step%4]
		for k := 0; k < movers; k++ {
			i := rng.Intn(n)
			pos[i] = area.Clamp(geom.Point{
				X: pos[i].X + rng.Range(-70, 70),
				Y: pos[i].Y + rng.Range(-70, 70),
			})
		}
		// Churn: flip a varying subset, including a mass-flip step.
		flips := []int{3, 0, n / 3, 1}[step%4]
		for k := 0; k < flips; k++ {
			i := rng.Intn(n)
			down[i] = !down[i]
		}
		check(step)
	}
}

// TestMaskedDownNodesAreIsolated pins the mask semantics: a down node has
// no neighbors and appears in nobody's list, but keeps its id and
// position.
func TestMaskedDownNodesAreIsolated(t *testing.T) {
	area := geom.Rect{W: 100, H: 100}
	// Three collinear nodes all within range of each other.
	pos := []geom.Point{{X: 10, Y: 50}, {X: 50, Y: 50}, {X: 90, Y: 50}}
	down := []bool{false, true, false}
	for name, g := range map[string]*Graph{
		"naive": BuildNaiveMasked(pos, area, 60, down),
		"grid":  BuildMasked(pos, area, 60, down),
	} {
		if g.Degree(1) != 0 {
			t.Errorf("%s: down node has %d neighbors", name, g.Degree(1))
		}
		for _, u := range []NodeID{0, 2} {
			for _, v := range g.Neighbors(u) {
				if v == 1 {
					t.Errorf("%s: down node listed as neighbor of %d", name, u)
				}
			}
		}
		if g.Pos(1) != pos[1] {
			t.Errorf("%s: down node lost its position", name)
		}
		// 0 and 2 are 80 m apart: adjacent only to each other via node 1,
		// which is down, so the up survivors are disconnected.
		if g.Adjacent(0, 2) {
			t.Errorf("%s: phantom link across the down node", name)
		}
	}
}

// TestBuilderMaskOnReinsertion checks the cold-readmission path: a node
// that moves while down must reappear at its new position with correct
// links when it comes back up.
func TestBuilderMaskOnReinsertion(t *testing.T) {
	area := geom.Rect{W: 200, H: 200}
	pos := []geom.Point{{X: 10, Y: 10}, {X: 20, Y: 10}, {X: 190, Y: 190}}
	down := []bool{false, false, false}
	b := NewBuilder(3, area, 30)
	b.UpdateMasked(pos, down)

	// Node 1 goes down and wanders to the far corner next to node 2.
	down[1] = true
	b.UpdateMasked(pos, down)
	pos[1] = geom.Point{X: 180, Y: 190}
	b.UpdateMasked(pos, down)

	down[1] = false
	g := b.UpdateMasked(pos, down)
	graphsEqual(t, BuildNaiveMasked(pos, area, 30, down), g)
	if !g.Adjacent(1, 2) || g.Adjacent(0, 1) {
		t.Errorf("readmitted node has wrong links: neighbors(1) = %v", g.Neighbors(1))
	}
}
