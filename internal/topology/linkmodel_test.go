package topology

import (
	"testing"

	"card/internal/geom"
	"card/internal/xrand"
)

// heteroRanges draws per-node ranges spread ±spread around base, the way
// the engine's RangeSpread knob does.
func heteroRanges(n int, base, spread float64, rng *xrand.Rand) []float64 {
	ranges := make([]float64, n)
	for i := range ranges {
		ranges[i] = base * (1 + spread*rng.Range(-1, 1))
	}
	return ranges
}

// TestDirectedEdgesFollowRanges pins the core directed contract on a
// handcrafted pair: the long-range node hears nobody back.
func TestDirectedEdgesFollowRanges(t *testing.T) {
	area := geom.Rect{W: 200, H: 100}
	pos := []geom.Point{{X: 50, Y: 50}, {X: 100, Y: 50}} // 50 m apart
	lm := LinkModel{Uniform: 60, Ranges: []float64{100, 30}}
	for name, g := range map[string]*Graph{
		"naive": BuildNaiveLink(pos, area, lm),
		"grid":  BuildLink(pos, area, lm),
	} {
		if !g.Directed() || !g.Heterogeneous() {
			t.Fatalf("%s: graph not marked directed/heterogeneous", name)
		}
		if !g.Adjacent(0, 1) {
			t.Errorf("%s: 0→1 missing (dist 50 <= range 100)", name)
		}
		if g.Adjacent(1, 0) {
			t.Errorf("%s: 1→0 present (dist 50 > range 30)", name)
		}
		if g.Bidirectional(0, 1) || g.Bidirectional(1, 0) {
			t.Errorf("%s: asymmetric pair reported bidirectional", name)
		}
		if g.Links() != 1 {
			t.Errorf("%s: links = %d, want 1 directed edge", name, g.Links())
		}
		if in := g.InNeighbors(1); len(in) != 1 || in[0] != 0 {
			t.Errorf("%s: InNeighbors(1) = %v, want [0]", name, in)
		}
		if len(g.InNeighbors(0)) != 0 {
			t.Errorf("%s: InNeighbors(0) = %v, want empty", name, g.InNeighbors(0))
		}
		if min, max := g.RangeSpan(); min != 30 || max != 100 {
			t.Errorf("%s: RangeSpan = (%v,%v), want (30,100)", name, min, max)
		}
		if g.TxRange() != 100 {
			t.Errorf("%s: TxRange = %v, want max range 100", name, g.TxRange())
		}
	}
}

// TestUniformLinkMatchesScalar pins the fast-path guarantee from the other
// side: a LinkModel whose Ranges are all equal must produce exactly the
// scalar builder's structure (the scalar snapshot is undirected, so the
// comparison goes through the accessors, not graphsEqual).
func TestUniformLinkMatchesScalar(t *testing.T) {
	const n, tx = 180, 55.0
	area := geom.Rect{W: 500, H: 500}
	rng := xrand.New(23)
	pos := UniformPositions(n, area, rng)
	ranges := make([]float64, n)
	for i := range ranges {
		ranges[i] = tx
	}

	scalar := Build(pos, area, tx)
	uniform := BuildLink(pos, area, LinkModel{Uniform: tx, Ranges: ranges})
	if !uniform.Directed() {
		t.Fatal("explicit-ranges graph should run the directed machinery")
	}
	if uniform.Links() != 2*scalar.Links() {
		t.Errorf("directed links = %d, want %d (twice the undirected count)",
			uniform.Links(), 2*scalar.Links())
	}
	for u := 0; u < n; u++ {
		w, g := scalar.Neighbors(NodeID(u)), uniform.Neighbors(NodeID(u))
		if len(w) != len(g) {
			t.Fatalf("node %d degree: scalar %v, uniform %v", u, w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d adjacency: scalar %v, uniform %v", u, w, g)
			}
		}
		gi := uniform.InNeighbors(NodeID(u))
		for i := range w {
			if w[i] != gi[i] {
				t.Fatalf("node %d in-adjacency differs from out on a symmetric graph", u)
			}
		}
		if !scalarBidirAgree(scalar, uniform, NodeID(u)) {
			t.Fatalf("node %d: Bidirectional disagrees with scalar Adjacent", u)
		}
	}
}

func scalarBidirAgree(scalar, uniform *Graph, u NodeID) bool {
	for _, v := range scalar.Neighbors(u) {
		if !uniform.Bidirectional(u, v) {
			return false
		}
	}
	return true
}

// TestHeteroBuildersAgree is TestMaskedBuildersAgree for the directed
// layer: heterogeneous ranges, churn, movement, and partition barrier
// toggles drive the naive reference, the grid build, the scanning
// incremental builder, and the dirty-list incremental builder — all four
// must stay byte-identical, including in-adjacency.
func TestHeteroBuildersAgree(t *testing.T) {
	const n = 200
	area := geom.Rect{W: 600, H: 600}
	rng := xrand.New(29)
	pos := UniformPositions(n, area, rng)
	down := make([]bool, n)
	lm := LinkModel{
		Uniform:  60,
		Ranges:   heteroRanges(n, 60, 0.5, rng.Derive(1)),
		BarrierX: area.W / 2,
	}
	bScan := NewBuilderLink(n, area, lm)
	bDirty := NewBuilderLink(n, area, lm)

	check := func(dirty []NodeID) {
		t.Helper()
		want := BuildNaiveLinkMasked(pos, area, lm, down)
		graphsEqual(t, want, BuildLinkMasked(pos, area, lm, down))
		graphsEqual(t, want, bScan.UpdateMasked(pos, down))
		graphsEqual(t, want, bDirty.UpdateDirtyMasked(pos, down, dirty))
	}
	check(nil)

	mut := rng.Derive(2)
	for step := 0; step < 60; step++ {
		var dirty []NodeID
		// Movement: a varying subset drifts, including mass-move steps
		// that cross the full-rebuild threshold.
		movers := []int{0, 7, n / 2, n}[step%4]
		for k := 0; k < movers; k++ {
			i := mut.Intn(n)
			pos[i] = area.Clamp(geom.Point{
				X: pos[i].X + mut.Range(-70, 70),
				Y: pos[i].Y + mut.Range(-70, 70),
			})
			dirty = append(dirty, NodeID(i))
		}
		// Churn: flip a varying subset.
		flips := []int{3, 0, n / 3, 1}[step%4]
		for k := 0; k < flips; k++ {
			i := mut.Intn(n)
			down[i] = !down[i]
			dirty = append(dirty, NodeID(i))
		}
		// Partition: the barrier cuts the world in half every 10th step
		// and heals two steps later, while nodes keep moving.
		if step%10 == 4 {
			lm.BarrierActive = true
			bScan.SetBarrier(true)
			bDirty.SetBarrier(true)
		}
		if step%10 == 6 {
			lm.BarrierActive = false
			bScan.SetBarrier(false)
			bDirty.SetBarrier(false)
		}
		check(dirty)
	}
}

// TestBarrierForcesFullRebuild pins the Changed contract across a
// partition toggle: stationary nodes lose links, so the builder must
// report a full rebuild rather than an (empty) incremental diff.
func TestBarrierForcesFullRebuild(t *testing.T) {
	area := geom.Rect{W: 100, H: 100}
	pos := []geom.Point{{X: 45, Y: 50}, {X: 55, Y: 50}}
	lm := LinkModel{Uniform: 30, BarrierX: 50}
	b := NewBuilderLink(2, area, lm)
	g := b.Update(pos)
	if !g.Bidirectional(0, 1) {
		t.Fatal("pair should be linked before the partition")
	}

	b.SetBarrier(true)
	g = b.Update(pos)
	if g.Adjacent(0, 1) || g.Adjacent(1, 0) || g.Links() != 0 {
		t.Fatal("active barrier left links across the cut")
	}
	if _, all := b.Changed(); !all {
		t.Fatal("barrier toggle must report a full rebuild")
	}

	b.SetBarrier(false)
	g = b.Update(pos)
	if !g.Bidirectional(0, 1) {
		t.Fatal("healed partition did not restore the link")
	}
	if _, all := b.Changed(); !all {
		t.Fatal("barrier heal must report a full rebuild")
	}
}
