package topology

import (
	"testing"
	"testing/quick"

	"card/internal/geom"
	"card/internal/xrand"
)

// lineGraph builds n nodes spaced 10 m apart on a line with 15 m range, so
// each node links only to immediate neighbors: a path graph.
func lineGraph(n int) *Graph {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	return Build(pts, geom.Rect{W: float64(n) * 10, H: 10}, 15)
}

func TestBuildPathGraph(t *testing.T) {
	g := lineGraph(5)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Links() != 4 {
		t.Fatalf("Links = %d, want 4", g.Links())
	}
	if d := g.Degree(0); d != 1 {
		t.Errorf("Degree(0) = %d, want 1", d)
	}
	if d := g.Degree(2); d != 2 {
		t.Errorf("Degree(2) = %d, want 2", d)
	}
	if !g.Adjacent(1, 2) || g.Adjacent(0, 2) {
		t.Error("Adjacent wrong on path graph")
	}
	if g.Adjacent(2, 2) {
		t.Error("node adjacent to itself")
	}
}

func TestBuildPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with range 0 did not panic")
		}
	}()
	Build(nil, geom.Rect{W: 10, H: 10}, 0)
}

func TestAdjacencySymmetric(t *testing.T) {
	rng := xrand.New(3)
	g := Build(UniformPositions(200, geom.Rect{W: 500, H: 500}, rng), geom.Rect{W: 500, H: 500}, 50)
	for u := NodeID(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Adjacent(v, u) {
				t.Fatalf("asymmetric adjacency %d->%d", u, v)
			}
		}
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	rng := xrand.New(11)
	area := geom.Rect{W: 300, H: 300}
	pts := UniformPositions(120, area, rng)
	g := Build(pts, area, 40)
	links := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			within := pts[i].Dist(pts[j]) <= 40
			if within {
				links++
			}
			if g.Adjacent(NodeID(i), NodeID(j)) != within {
				t.Fatalf("adjacency(%d,%d) = %v, brute force %v", i, j, !within, within)
			}
		}
	}
	if g.Links() != links {
		t.Fatalf("Links = %d, brute force %d", g.Links(), links)
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := lineGraph(6)
	res := g.BFS(0)
	for v := 0; v < 6; v++ {
		if int(res.Dist[v]) != v {
			t.Errorf("Dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	path := res.PathTo(4)
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Errorf("PathTo(4) = %v", path)
	}
	// Path must walk adjacent nodes.
	for i := 0; i+1 < len(path); i++ {
		if !g.Adjacent(path[i], path[i+1]) {
			t.Errorf("path step %d->%d not adjacent", path[i], path[i+1])
		}
	}
}

func TestBoundedBFS(t *testing.T) {
	g := lineGraph(10)
	res := g.BoundedBFS(0, 3)
	for v := 0; v < 10; v++ {
		want := int32(v)
		if v > 3 {
			want = -1
		}
		if res.Dist[v] != want {
			t.Errorf("BoundedBFS Dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
	if len(res.Visited) != 4 {
		t.Errorf("Visited = %v, want 4 nodes", res.Visited)
	}
}

func TestBoundedBFSZeroHops(t *testing.T) {
	g := lineGraph(3)
	res := g.BoundedBFS(1, 0)
	if len(res.Visited) != 1 || res.Visited[0] != 1 {
		t.Errorf("0-hop BFS visited %v", res.Visited)
	}
}

func TestPathToUnreachable(t *testing.T) {
	// Two isolated nodes.
	g := Build([]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, geom.Rect{W: 100, H: 100}, 10)
	res := g.BFS(0)
	if res.PathTo(1) != nil {
		t.Error("PathTo(unreachable) != nil")
	}
}

func TestVisitedSortedByDistance(t *testing.T) {
	rng := xrand.New(5)
	area := geom.Rect{W: 400, H: 400}
	g := Build(UniformPositions(150, area, rng), area, 60)
	res := g.BFS(0)
	for i := 1; i < len(res.Visited); i++ {
		if res.Dist[res.Visited[i]] < res.Dist[res.Visited[i-1]] {
			t.Fatal("Visited not in non-decreasing distance order")
		}
	}
}

func TestComponents(t *testing.T) {
	// Two separated pairs plus an isolated node.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 100, Y: 0}, {X: 105, Y: 0}, {X: 200, Y: 200}}
	g := Build(pts, geom.Rect{W: 300, H: 300}, 10)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if lc := g.LargestComponent(); len(lc) != 2 {
		t.Errorf("LargestComponent size %d", len(lc))
	}
}

func TestCensusOnPath(t *testing.T) {
	g := lineGraph(5)
	c := g.ComputeCensus()
	if c.Links != 4 {
		t.Errorf("Links = %d", c.Links)
	}
	if c.Diameter != 4 {
		t.Errorf("Diameter = %d, want 4", c.Diameter)
	}
	// Path P5: mean distance over ordered reachable pairs = 2.
	if !almost(c.AvgHops, 2, 1e-12) {
		t.Errorf("AvgHops = %v, want 2", c.AvgHops)
	}
	if c.LargestComponentFrac != 1 {
		t.Errorf("LCC = %v", c.LargestComponentFrac)
	}
	if !almost(c.MeanDegree, 8.0/5.0, 1e-12) {
		t.Errorf("MeanDegree = %v", c.MeanDegree)
	}
}

func TestCensusTriangleClustering(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 2.5, Y: 4}}
	g := Build(pts, geom.Rect{W: 10, H: 10}, 6)
	c := g.ComputeCensus()
	if c.MeanClustering != 1 {
		t.Errorf("triangle clustering = %v, want 1", c.MeanClustering)
	}
	if c.Diameter != 1 {
		t.Errorf("triangle diameter = %d", c.Diameter)
	}
}

func TestCensusSampledAboveSourceCap(t *testing.T) {
	// Above censusSourceCap the Diameter/AvgHops pass samples sources at a
	// fixed stride. On a path graph node 0 is always sampled (stride
	// starts at 0) and reaches the far end, so even the sampled census
	// recovers the exact diameter; the structural fields stay exact.
	n := censusSourceCap*2 + 100
	g := lineGraph(n)
	c := g.ComputeCensus()
	if c.Links != n-1 {
		t.Errorf("Links = %d, want %d", c.Links, n-1)
	}
	if c.Diameter != n-1 {
		t.Errorf("Diameter = %d, want %d", c.Diameter, n-1)
	}
	if c.AvgHops <= 0 {
		t.Errorf("AvgHops = %v, want > 0", c.AvgHops)
	}
	if c.LargestComponentFrac != 1 {
		t.Errorf("LCC = %v, want 1", c.LargestComponentFrac)
	}
}

func TestCensusEmptyAndSingleton(t *testing.T) {
	g := Build(nil, geom.Rect{W: 10, H: 10}, 5)
	c := g.ComputeCensus()
	if c.N != 0 || c.Links != 0 || c.Diameter != 0 {
		t.Errorf("empty census = %+v", c)
	}
	g1 := Build([]geom.Point{{X: 1, Y: 1}}, geom.Rect{W: 10, H: 10}, 5)
	c1 := g1.ComputeCensus()
	if c1.N != 1 || c1.AvgHops != 0 || c1.LargestComponentFrac != 1 {
		t.Errorf("singleton census = %+v", c1)
	}
}

func TestUniformPositionsInArea(t *testing.T) {
	rng := xrand.New(9)
	area := geom.Rect{W: 710, H: 710}
	for _, p := range UniformPositions(500, area, rng) {
		if !area.Contains(p) {
			t.Fatalf("position %v outside area", p)
		}
	}
}

func TestGridPositions(t *testing.T) {
	rng := xrand.New(10)
	area := geom.Rect{W: 100, H: 100}
	pts := GridPositions(25, area, 0, rng)
	if len(pts) != 25 {
		t.Fatalf("got %d points", len(pts))
	}
	// Without jitter a 5x5 lattice has 20 m spacing starting at 10 m.
	if pts[0] != (geom.Point{X: 10, Y: 10}) {
		t.Errorf("pts[0] = %v", pts[0])
	}
	if pts[24] != (geom.Point{X: 90, Y: 90}) {
		t.Errorf("pts[24] = %v", pts[24])
	}
	for _, p := range GridPositions(30, area, 0.4, rng) {
		if !area.Contains(p) {
			t.Fatalf("jittered grid position %v outside area", p)
		}
	}
}

func TestClusteredPositions(t *testing.T) {
	rng := xrand.New(12)
	area := geom.Rect{W: 500, H: 500}
	pts := ClusteredPositions(200, 4, 30, area, rng)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !area.Contains(p) {
			t.Fatalf("clustered position %v outside area", p)
		}
	}
}

func TestClusteredPanicsOnZeroClusters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	ClusteredPositions(10, 0, 1, geom.Rect{W: 10, H: 10}, xrand.New(1))
}

func TestQuickBFSTriangleInequalityOverEdges(t *testing.T) {
	// For any edge (u,v): |dist(s,u) - dist(s,v)| <= 1.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		area := geom.Rect{W: 300, H: 300}
		n := 30 + rng.Intn(80)
		g := Build(UniformPositions(n, area, rng), area, 60)
		src := NodeID(rng.Intn(n))
		res := g.BFS(src)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(NodeID(u)) {
				du, dv := res.Dist[u], res.Dist[v]
				if (du < 0) != (dv < 0) {
					return false // adjacent nodes must be co-reachable
				}
				if du >= 0 && (du-dv > 1 || dv-du > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoundedBFSPrefixOfFull(t *testing.T) {
	// A bounded BFS must agree with the full BFS on all nodes within bound.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		area := geom.Rect{W: 300, H: 300}
		n := 30 + rng.Intn(80)
		g := Build(UniformPositions(n, area, rng), area, 50)
		src := NodeID(rng.Intn(n))
		r := 1 + rng.Intn(5)
		full := g.BFS(src)
		bounded := g.BoundedBFS(src, r)
		for v := 0; v < n; v++ {
			if full.Dist[v] >= 0 && int(full.Dist[v]) <= r {
				if bounded.Dist[v] != full.Dist[v] {
					return false
				}
			} else if bounded.Dist[v] != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartitionNodes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		area := geom.Rect{W: 500, H: 500}
		n := 20 + rng.Intn(100)
		g := Build(UniformPositions(n, area, rng), area, 40)
		seen := make(map[NodeID]bool)
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			total += len(comp)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func almost(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func BenchmarkBuild500(b *testing.B) {
	rng := xrand.New(1)
	area := geom.Rect{W: 710, H: 710}
	pts := UniformPositions(500, area, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, area, 50)
	}
}

func BenchmarkCensus500(b *testing.B) {
	rng := xrand.New(1)
	area := geom.Rect{W: 710, H: 710}
	g := Build(UniformPositions(500, area, rng), area, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ComputeCensus()
	}
}
