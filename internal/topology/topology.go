// Package topology builds and analyzes the unit-disk connectivity graphs
// underlying the MANET simulation.
//
// A Graph is an immutable snapshot: node positions plus adjacency under a
// fixed transmission range. The mobility layer produces a fresh snapshot
// whenever positions change; protocols query the snapshot through
// [manet.Network].
//
// The package also computes the connectivity census reported in the paper's
// Table 1: link count, mean node degree, network diameter, and average hop
// count between reachable pairs.
package topology

import (
	"fmt"
	"slices"
	"sort"

	"card/internal/geom"
	"card/internal/xrand"
)

// NodeID indexes a node within a Graph; ids are dense in [0, N).
type NodeID = int32

// None is the sentinel for "no node" (e.g. BFS parent of a root).
const None NodeID = -1

// Graph is an immutable unit-disk connectivity snapshot.
//
// In the classic scalar model (one uniform transmission range, the
// paper's setting) the graph is undirected and adj is the whole story. A
// heterogeneous [LinkModel] (per-node ranges, partition barrier) makes
// the graph directed: adj[u] holds the out-neighbors (nodes u can
// transmit to), in[u] the in-neighbors, and links counts directed edges.
// Neighbors/Adjacent/BFS always follow out-edges; protocol hops that need
// an acknowledgement path back use Bidirectional.
type Graph struct {
	pos  []geom.Point
	area geom.Rect
	rng  float64 // max transmission range, meters (grid cell size)
	// ranges holds per-node transmission ranges in directed mode built
	// from LinkModel.Ranges; nil means every node uses rng.
	ranges   []float64
	directed bool
	adj      [][]NodeID // out-adjacency (the only adjacency when undirected)
	in       [][]NodeID // in-adjacency; nil when undirected
	links    int
}

// Build constructs the unit-disk graph over the given positions: nodes u≠v
// are adjacent iff dist(u,v) <= txRange. Runs in O(N·density) via a uniform
// grid.
func Build(pos []geom.Point, area geom.Rect, txRange float64) *Graph {
	return BuildMasked(pos, area, txRange, nil)
}

// BuildMasked is Build with a node-exclusion mask: nodes with down[i] true
// take part in no links (their adjacency is empty and no other node lists
// them), modeling churned-out devices whose radios are off while their
// ids — and positions — persist. A nil mask means every node is up.
func BuildMasked(pos []geom.Point, area geom.Rect, txRange float64, down []bool) *Graph {
	if txRange <= 0 {
		panic("topology: non-positive transmission range")
	}
	g := &Graph{
		pos:  append([]geom.Point(nil), pos...),
		area: area,
		rng:  txRange,
		adj:  make([][]NodeID, len(pos)),
	}
	grid := geom.NewGrid(area, txRange)
	for i, p := range g.pos {
		if !isDown(down, i) {
			grid.Insert(NodeID(i), p)
		}
	}
	r2 := txRange * txRange
	for i, p := range g.pos {
		if isDown(down, i) {
			continue
		}
		u := NodeID(i)
		x0, y0, x1, y1 := grid.BucketRange(p, txRange)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				for _, v := range grid.Bucket(x, y) {
					if v != u && p.Dist2(g.pos[v]) <= r2 {
						g.adj[u] = append(g.adj[u], v)
					}
				}
			}
		}
		// Deterministic neighbor order regardless of grid traversal.
		slices.Sort(g.adj[u])
		g.links += len(g.adj[u])
	}
	g.links /= 2
	return g
}

// isDown reads an optional exclusion mask (nil = all up).
func isDown(down []bool, i int) bool { return down != nil && down[i] }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.pos) }

// Area returns the deployment area.
func (g *Graph) Area() geom.Rect { return g.area }

// TxRange returns the transmission range in meters. For a heterogeneous
// snapshot this is the maximum over all nodes — callers that render or
// size by range should check Heterogeneous and use RangeOf/RangeSpan for
// the distribution instead of silently reporting the max.
func (g *Graph) TxRange() float64 { return g.rng }

// RangeOf returns node u's own transmission range.
func (g *Graph) RangeOf(u NodeID) float64 {
	if g.ranges == nil {
		return g.rng
	}
	return g.ranges[u]
}

// Heterogeneous reports whether nodes carry individual transmission
// ranges (TxRange is then only the maximum).
func (g *Graph) Heterogeneous() bool { return g.ranges != nil }

// RangeSpan returns the smallest and largest per-node transmission range.
func (g *Graph) RangeSpan() (min, max float64) {
	if g.ranges == nil {
		return g.rng, g.rng
	}
	min, max = g.ranges[0], g.ranges[0]
	for _, r := range g.ranges[1:] {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	return min, max
}

// Directed reports whether the snapshot was built from a link model that
// can produce asymmetric links (per-node ranges or a partition barrier).
// Undirected snapshots guarantee Adjacent(u,v) == Adjacent(v,u).
func (g *Graph) Directed() bool { return g.directed }

// Pos returns the position of node u.
func (g *Graph) Pos(u NodeID) geom.Point { return g.pos[u] }

// Neighbors returns the out-adjacency list of u (every adjacency when the
// graph is undirected). Callers must not mutate it.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// InNeighbors returns the in-adjacency list of u: the nodes whose
// transmissions reach u. Identical to Neighbors on undirected snapshots.
// Callers must not mutate it.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	if g.in == nil {
		return g.adj[u]
	}
	return g.in[u]
}

// Degree returns the number of out-neighbors of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Links returns the number of links: undirected links for a scalar-range
// snapshot, directed edges for a directed one (a symmetric pair counts
// twice there).
func (g *Graph) Links() int { return g.links }

// Adjacent reports whether u can transmit to v (dist(u,v) <= range(u) and
// no active barrier between them); on undirected snapshots this is the
// symmetric link predicate. O(log degree), via a closure-free binary
// search over the sorted adjacency list — this is the innermost probe of
// path validation, query walks and the clustering census, so it must not
// allocate or indirect through a func value.
func (g *Graph) Adjacent(u, v NodeID) bool {
	_, ok := slices.BinarySearch(g.adj[u], v)
	return ok
}

// Bidirectional reports whether u and v can exchange packets in both
// directions — the requirement for a protocol-level unicast hop, whose
// link-layer acknowledgement must travel v→u. On undirected snapshots it
// is exactly Adjacent.
func (g *Graph) Bidirectional(u, v NodeID) bool {
	if !g.directed {
		return g.Adjacent(u, v)
	}
	return g.Adjacent(u, v) && g.Adjacent(v, u)
}

// BFSResult holds hop distances and a shortest-path tree rooted at Source.
type BFSResult struct {
	Source NodeID
	// Dist[v] is the hop distance from Source to v, or -1 if unreachable
	// (or beyond the hop limit for bounded searches).
	Dist []int32
	// Parent[v] is v's predecessor on a shortest path from Source, or None.
	Parent []NodeID
	// Visited lists reached nodes in non-decreasing distance order,
	// starting with Source itself.
	Visited []NodeID
}

// BFS runs a breadth-first search from src across the whole graph.
func (g *Graph) BFS(src NodeID) *BFSResult { return g.BoundedBFS(src, -1) }

// BoundedBFS runs a breadth-first search from src, exploring at most
// maxHops hops (maxHops < 0 means unbounded). Nodes beyond the bound have
// Dist -1.
func (g *Graph) BoundedBFS(src NodeID, maxHops int) *BFSResult {
	n := g.N()
	res := &BFSResult{
		Source: src,
		Dist:   make([]int32, n),
		Parent: make([]NodeID, n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = None
	}
	res.Dist[src] = 0
	res.Visited = append(res.Visited, src)
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && int(res.Dist[u]) >= maxHops {
			continue
		}
		for _, v := range g.adj[u] {
			if res.Dist[v] >= 0 {
				continue
			}
			res.Dist[v] = res.Dist[u] + 1
			res.Parent[v] = u
			res.Visited = append(res.Visited, v)
			queue = append(queue, v)
		}
	}
	return res
}

// PathTo reconstructs the shortest path source→v from a BFS result,
// inclusive of both endpoints. Returns nil if v was not reached.
func (r *BFSResult) PathTo(v NodeID) []NodeID {
	if r.Dist[v] < 0 {
		return nil
	}
	path := make([]NodeID, 0, r.Dist[v]+1)
	for u := v; u != None; u = r.Parent[u] {
		path = append(path, u)
	}
	// Reverse in place: built leaf→root.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Components returns the connected components, each a sorted node list,
// ordered by descending size (ties by smallest member).
func (g *Graph) Components() [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		res := g.BFS(NodeID(i))
		comp := make([]NodeID, len(res.Visited))
		copy(comp, res.Visited)
		sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
		for _, v := range comp {
			seen[v] = true
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) > len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
	return comps
}

// LargestComponent returns the node set of the largest connected component.
func (g *Graph) LargestComponent() []NodeID {
	comps := g.Components()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// Census is the connectivity summary reported in the paper's Table 1.
type Census struct {
	N          int     // nodes
	Links      int     // undirected links
	MeanDegree float64 // 2*Links/N
	Diameter   int     // max shortest-path length over reachable pairs
	AvgHops    float64 // mean shortest-path length over reachable pairs
	// LargestComponentFrac is the fraction of nodes in the largest
	// connected component (1.0 for a connected network). Table 1's sparser
	// scenarios (e.g. 250 nodes over 1000x1000 m) are partitioned, which is
	// visible in their small diameter / avg-hops numbers.
	LargestComponentFrac float64
	// MeanClustering is the mean local clustering coefficient — not in
	// Table 1, but reported because the small-world argument (§I, [10][13])
	// rests on high clustering plus short cuts.
	MeanClustering float64
}

// censusSourceCap bounds the number of BFS sources ComputeCensus uses
// for Diameter/AvgHops. All paper scenarios (N <= 2000) sit below the
// cap and get the exact all-pairs values; above it sources are sampled
// at a fixed stride, since exact all-pairs BFS is O(N·(N+E)) — tens of
// minutes at 100k nodes for two summary statistics.
const censusSourceCap = 2048

// ComputeCensus runs per-source BFS and summarizes connectivity. Pairs in
// different components are excluded from Diameter/AvgHops, matching how a
// partitioned scenario can legitimately report diameter smaller than a
// denser one (cf. Table 1 scenario 3). Up to censusSourceCap nodes every
// node is a source (exact all-pairs figures); beyond that, sources are an
// evenly-spaced deterministic sample, making Diameter a lower bound and
// AvgHops an estimate. Links, MeanDegree, LargestComponentFrac and
// MeanClustering are exact at every size.
func (g *Graph) ComputeCensus() Census {
	n := g.N()
	c := Census{N: n, Links: g.links}
	if n > 0 {
		if g.directed {
			// links counts directed edges; the mean out-degree is the
			// comparable figure.
			c.MeanDegree = float64(g.links) / float64(n)
		} else {
			c.MeanDegree = 2 * float64(g.links) / float64(n)
		}
	}
	stride := 1
	if n > censusSourceCap {
		stride = (n + censusSourceCap - 1) / censusSourceCap
	}
	// One distance array reused across sources: the per-source BFSResult
	// (Dist+Parent+Visited, ~2.4 MB each at 100k) was most of the census
	// cost at scale.
	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	var sumHops, pairs float64
	for src := 0; src < n; src += stride {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], NodeID(src))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			d := dist[u] + 1
			for _, v := range g.adj[u] {
				if dist[v] >= 0 {
					continue
				}
				dist[v] = d
				queue = append(queue, v)
				sumHops += float64(d)
				pairs++
				if int(d) > c.Diameter {
					c.Diameter = int(d)
				}
			}
		}
	}
	if pairs > 0 {
		c.AvgHops = sumHops / pairs
	}
	if n > 0 {
		c.LargestComponentFrac = float64(len(g.LargestComponent())) / float64(n)
	}
	c.MeanClustering = g.meanClustering()
	return c
}

func (g *Graph) meanClustering() float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for u := 0; u < n; u++ {
		adj := g.adj[u]
		k := len(adj)
		if k < 2 {
			continue
		}
		// Count closed neighbor pairs by intersecting u's sorted adjacency
		// with each neighbor's: Σ_v |adj(u) ∩ adj(v)| visits every closed
		// pair {a,b} twice (once from v=a, once from v=b). The sorted merge
		// is O(deg(u)+deg(v)) per neighbor, replacing the O(deg²·log deg)
		// pairwise Adjacent probes that dominated the census at high density.
		twiceClosed := 0
		for _, v := range adj {
			twiceClosed += sortedIntersectionCount(adj, g.adj[v])
		}
		sum += float64(twiceClosed) / float64(k*(k-1))
	}
	return sum / float64(n)
}

// sortedIntersectionCount returns |a ∩ b| for sorted slices a and b.
func sortedIntersectionCount(a, b []NodeID) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

func (c Census) String() string {
	return fmt.Sprintf("N=%d links=%d degree=%.2f diameter=%d avgHops=%.2f lcc=%.2f",
		c.N, c.Links, c.MeanDegree, c.Diameter, c.AvgHops, c.LargestComponentFrac)
}

// UniformPositions places n nodes uniformly at random in area.
func UniformPositions(n int, area geom.Rect, rng *xrand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Range(0, area.W), Y: rng.Range(0, area.H)}
	}
	return pts
}

// GridPositions places n nodes on a jittered square lattice covering area;
// jitter is the fraction of a cell by which each node is perturbed. Used by
// the static sensor-field example (sensors deployed in a rough grid).
func GridPositions(n int, area geom.Rect, jitter float64, rng *xrand.Rand) []geom.Point {
	pts := make([]geom.Point, 0, n)
	// Choose a cols x rows lattice with cols*rows >= n, as square as possible.
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	dx := area.W / float64(cols)
	dy := area.H / float64(rows)
	for i := 0; i < n; i++ {
		cx := float64(i%cols)*dx + dx/2
		cy := float64(i/cols)*dy + dy/2
		p := geom.Point{
			X: cx + rng.Range(-jitter, jitter)*dx,
			Y: cy + rng.Range(-jitter, jitter)*dy,
		}
		pts = append(pts, area.Clamp(p))
	}
	return pts
}

// ClusteredPositions places n nodes around k uniformly placed cluster
// centers with Gaussian spread sigma, clamped to the area. Models hotspot
// deployments (units concentrated around objectives).
func ClusteredPositions(n, k int, sigma float64, area geom.Rect, rng *xrand.Rand) []geom.Point {
	if k < 1 {
		panic("topology: need at least one cluster")
	}
	centers := UniformPositions(k, area, rng)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(k)]
		pts[i] = area.Clamp(geom.Point{
			X: c.X + rng.NormFloat64()*sigma,
			Y: c.Y + rng.NormFloat64()*sigma,
		})
	}
	return pts
}
