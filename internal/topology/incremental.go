package topology

import (
	"slices"

	"card/internal/geom"
)

// BuildNaive constructs the same unit-disk graph as Build with the
// textbook O(N²) all-pairs scan. It exists as the reference
// implementation: the grid and incremental builders must produce
// byte-identical adjacency, and the scaling benchmarks measure against it.
func BuildNaive(pos []geom.Point, area geom.Rect, txRange float64) *Graph {
	return BuildNaiveMasked(pos, area, txRange, nil)
}

// BuildNaiveMasked is BuildNaive with the node-exclusion mask of
// BuildMasked; it is the correctness reference for churned topologies.
func BuildNaiveMasked(pos []geom.Point, area geom.Rect, txRange float64, down []bool) *Graph {
	if txRange <= 0 {
		panic("topology: non-positive transmission range")
	}
	g := &Graph{
		pos:  append([]geom.Point(nil), pos...),
		area: area,
		rng:  txRange,
		adj:  make([][]NodeID, len(pos)),
	}
	r2 := txRange * txRange
	for i := range g.pos {
		if isDown(down, i) {
			continue
		}
		for j := i + 1; j < len(g.pos); j++ {
			if isDown(down, j) {
				continue
			}
			if g.pos[i].Dist2(g.pos[j]) <= r2 {
				// Ascending append on both sides keeps adjacency sorted
				// without an explicit sort pass.
				g.adj[i] = append(g.adj[i], NodeID(j))
				g.adj[j] = append(g.adj[j], NodeID(i))
				g.links++
			}
		}
	}
	return g
}

// Builder maintains a unit-disk graph across position updates. Unlike
// Build, which re-buckets and re-scans every node on every snapshot, a
// Builder keeps its spatial-hash grid and adjacency lists alive between
// updates and reprocesses only the nodes that actually moved (plus their
// old and new neighbors). With m moved nodes of mean degree d an update
// costs O(m·d) instead of O(N·d), which is what makes slow-churn scenarios
// (pausing waypoints, static sensor fields with a few mobile collectors)
// cheap at thousands of nodes.
//
// The Graph returned by Update aliases the Builder's internal storage and
// is invalidated by the next Update call. That matches how the simulator
// consumes snapshots — protocols re-fetch the graph from the network after
// every refresh, keyed by epoch — and avoids re-allocating O(N·d)
// adjacency every topology refresh.
type Builder struct {
	area geom.Rect
	// lm is the link model; txRange caches lm.Max() (the grid cell size,
	// and the only range in scalar mode).
	lm      LinkModel
	txRange float64
	// directed mirrors !lm.scalar(): per-node ranges or a configured
	// barrier switch the builder into directed mode, where in-adjacency
	// is maintained alongside out-adjacency.
	directed bool
	grid     *geom.Grid
	pos      []geom.Point
	adj      [][]NodeID
	in       [][]NodeID // in-adjacency; nil unless directed
	links    int
	// adjTotal is the out-degree sum Σ len(adj[i]) (= 2·links undirected,
	// = links directed), maintained as a delta by the incremental path so
	// updates never pay an O(N) recount.
	adjTotal int
	built    bool
	// barrierDirty forces the next update into a full rebuild after a
	// SetBarrier toggle, which flips arbitrarily many links at once.
	barrierDirty bool

	// down mirrors the exclusion mask of the last update: down nodes live
	// outside the grid and carry no links (see UpdateMasked).
	down []bool

	// Generation-stamped scratch: avoids clearing O(N) marker arrays on
	// every update.
	gen        uint64
	movedStamp []uint64
	moved      []NodeID
	newAdj     []NodeID
	newIn      []NodeID // directed-mode scratch for rescanned in-lists

	// Changed-adjacency tracking for dirty-set consumers (engine
	// maintenance rounds, oracle view retention): after each update,
	// changed lists the nodes whose adjacency list differs from the
	// previous snapshot, unless changedAll marks a full (re)build where
	// every node must be assumed changed. See Changed.
	changedStamp []uint64
	changed      []NodeID
	changedAll   bool
}

// fullRebuildFraction is the moved-node fraction above which an update
// falls back to a full grid rebuild. The incremental path only pays for
// moved nodes and their neighborhoods (stationary lists are patched with
// O(degree) sorted inserts, never re-sorted), so it stays cheaper than a
// full rebuild until well past half the fleet moving at once.
const fullRebuildFraction = 0.6

// NewBuilder creates an incremental builder for n nodes over area with the
// given transmission range. The first Update performs a full build.
func NewBuilder(n int, area geom.Rect, txRange float64) *Builder {
	return NewBuilderLink(n, area, LinkModel{Uniform: txRange})
}

// NewBuilderLink creates an incremental builder for an arbitrary link
// model. A plain uniform range runs the scalar (undirected) machinery
// unchanged; per-node ranges or a configured barrier run the directed
// machinery, bucketing by the maximum range and maintaining in- and
// out-adjacency incrementally.
func NewBuilderLink(n int, area geom.Rect, lm LinkModel) *Builder {
	lm.validate(n)
	b := &Builder{
		area:         area,
		lm:           lm,
		txRange:      lm.Max(),
		directed:     !lm.scalar(),
		pos:          make([]geom.Point, n),
		adj:          make([][]NodeID, n),
		down:         make([]bool, n),
		movedStamp:   make([]uint64, n),
		changedStamp: make([]uint64, n),
	}
	b.grid = geom.NewGrid(area, b.txRange)
	if b.directed {
		b.in = make([][]NodeID, n)
	}
	return b
}

// SetBarrier toggles the partition barrier configured in the builder's
// link model (no-op without one, or when the state is unchanged). The
// next update performs a full rebuild — a partition event flips
// arbitrarily many links among stationary nodes at once, so every node is
// reported changed.
func (b *Builder) SetBarrier(active bool) {
	if b.lm.BarrierX <= 0 || b.lm.BarrierActive == active {
		return
	}
	b.lm.BarrierActive = active
	b.barrierDirty = true
}

// N returns the number of nodes the builder tracks.
func (b *Builder) N() int { return len(b.pos) }

// Update brings the graph to the given positions (length must equal N) and
// returns the refreshed snapshot. The snapshot aliases builder storage and
// is invalidated by the next Update.
func (b *Builder) Update(pos []geom.Point) *Graph { return b.UpdateMasked(pos, nil) }

// UpdateMasked is Update with a node-exclusion mask (see BuildMasked): a
// node with down[i] true holds no links until it comes back up. State
// flips are handled incrementally like movement — a node going down is
// pulled from the grid and its neighbors' lists are patched; a node coming
// back up is re-inserted at its current position and rescanned — so churn
// costs O(flipped·degree) per refresh, not a rebuild. A nil mask means
// every node is up.
func (b *Builder) UpdateMasked(pos []geom.Point, down []bool) *Graph {
	if len(pos) != len(b.pos) {
		panic("topology: Builder.Update with mismatched position count")
	}
	if down != nil && len(down) != len(b.pos) {
		panic("topology: Builder.Update with mismatched mask length")
	}
	b.changed, b.changedAll = b.changed[:0], false
	if !b.built || b.barrierDirty {
		b.fullBuild(pos, down)
		b.built = true
		return b.snapshot()
	}
	// Dirty set: nodes that moved or flipped up/down state.
	b.moved = b.moved[:0]
	for i, p := range pos {
		if p != b.pos[i] || isDown(down, i) != b.down[i] {
			b.moved = append(b.moved, NodeID(i))
		}
	}
	if len(b.moved) == 0 {
		return b.snapshot()
	}
	if float64(len(b.moved)) > fullRebuildFraction*float64(len(pos)) {
		b.fullBuild(pos, down)
		return b.snapshot()
	}
	b.incremental(pos, down)
	return b.snapshot()
}

// UpdateDirtyMasked is UpdateMasked for callers that already know which
// nodes may have moved or flipped up/down state — a lazy mobility stepper
// (mobility.Stepper) reporting its moved list plus the churn flips. The
// O(N) position-compare scan is skipped entirely: only the listed nodes
// are checked, so a refresh where nothing moved costs O(1). dirty must be
// a superset of the nodes whose position or mask state changed since the
// previous update (duplicates are fine; entries that turn out unchanged
// are filtered here, keeping the moved set — and the full-rebuild
// fallback decision — identical to what the scanning path would compute).
func (b *Builder) UpdateDirtyMasked(pos []geom.Point, down []bool, dirty []NodeID) *Graph {
	if len(pos) != len(b.pos) {
		panic("topology: Builder.Update with mismatched position count")
	}
	if down != nil && len(down) != len(b.pos) {
		panic("topology: Builder.Update with mismatched mask length")
	}
	b.changed, b.changedAll = b.changed[:0], false
	if !b.built || b.barrierDirty {
		b.fullBuild(pos, down)
		b.built = true
		return b.snapshot()
	}
	b.gen++
	gen := b.gen
	b.moved = b.moved[:0]
	for _, m := range dirty {
		if b.movedStamp[m] == gen {
			continue // duplicate in the caller's list
		}
		if pos[m] != b.pos[m] || isDown(down, int(m)) != b.down[m] {
			b.movedStamp[m] = gen
			b.moved = append(b.moved, NodeID(m))
		}
	}
	if len(b.moved) == 0 {
		return b.snapshot()
	}
	if float64(len(b.moved)) > fullRebuildFraction*float64(len(pos)) {
		b.fullBuild(pos, down)
		return b.snapshot()
	}
	b.incremental(pos, down)
	return b.snapshot()
}

// fullBuild rebuilds grid and adjacency from scratch (reusing storage).
func (b *Builder) fullBuild(pos []geom.Point, down []bool) {
	b.barrierDirty = false
	copy(b.pos, pos)
	for i := range b.down {
		b.down[i] = isDown(down, i)
	}
	b.grid.Reset()
	for i, p := range b.pos {
		if !b.down[i] {
			b.grid.Insert(int32(i), p)
		}
	}
	if b.directed {
		b.fullScanDirected()
	} else {
		b.fullScanScalar()
	}
	b.recountLinks()
	b.changedAll = true
}

// fullScanScalar rescans every node's adjacency under the uniform range.
func (b *Builder) fullScanScalar() {
	r2 := b.txRange * b.txRange
	for i, p := range b.pos {
		u := NodeID(i)
		adj := b.adj[u][:0]
		if !b.down[u] {
			x0, y0, x1, y1 := b.grid.BucketRange(p, b.txRange)
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					for _, v := range b.grid.Bucket(x, y) {
						if v != u && p.Dist2(b.pos[v]) <= r2 {
							adj = append(adj, v)
						}
					}
				}
			}
			sortIDs(adj)
		}
		b.adj[u] = adj
	}
}

// fullScanDirected rescans every node's out-list under its own range
// (honoring the barrier), then derives the in-lists in one ascending
// pass, which leaves them sorted without a sort.
func (b *Builder) fullScanDirected() {
	for i, p := range b.pos {
		u := NodeID(i)
		adj := b.adj[u][:0]
		if !b.down[u] {
			ri := b.lm.RangeOf(i)
			r2 := ri * ri
			x0, y0, x1, y1 := b.grid.BucketRange(p, ri)
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					for _, v := range b.grid.Bucket(x, y) {
						if v != u && p.Dist2(b.pos[v]) <= r2 && !b.lm.cuts(p, b.pos[v]) {
							adj = append(adj, v)
						}
					}
				}
			}
			sortIDs(adj)
		}
		b.adj[u] = adj
	}
	for i := range b.in {
		b.in[i] = b.in[i][:0]
	}
	for u := range b.adj {
		for _, v := range b.adj[u] {
			b.in[v] = append(b.in[v], NodeID(u))
		}
	}
}

// incremental applies a subset-dirty update: re-bucket the moved (and
// state-flipped) nodes, rescan their neighborhoods via the grid, and patch
// stationary nodes' lists only where an edge actually appeared or
// disappeared. At fine sensing rates a moving node's displacement per
// refresh is a fraction of the radio range, so its edge set is usually
// unchanged and the patching step does no work at all — the steady-state
// cost is the dirty nodes' grid rescans.
func (b *Builder) incremental(pos []geom.Point, down []bool) {
	if b.directed {
		b.incrementalDirected(pos, down)
		return
	}
	b.gen++
	gen := b.gen
	for _, m := range b.moved {
		b.movedStamp[m] = gen
	}

	// 1. Re-bucket the dirty nodes at their new positions and states. Down
	// nodes live outside the grid entirely: a node that was up leaves the
	// grid, and only nodes that are (still or newly) up re-enter it.
	for _, m := range b.moved {
		if !b.down[m] {
			b.grid.Remove(int32(m), b.pos[m])
		}
		b.pos[m] = pos[m]
		b.down[m] = isDown(down, int(m))
		if !b.down[m] {
			b.grid.Insert(int32(m), b.pos[m])
		}
	}

	// 2. Rescan each dirty node against the updated grid (a down node's new
	// list is empty), then merge-diff the sorted old and new lists:
	// stationary endpoints of vanished edges drop m, stationary endpoints
	// of new edges gain m (sorted in place, O(degree)). Dirty–dirty edges
	// need no patching — each endpoint's own rescan settles its list.
	// The link count is carried as a delta on the directed-degree sum
	// (adjTotal), so a refresh never pays the O(N) recount the full build
	// does.
	r2 := b.txRange * b.txRange
	for _, m := range b.moved {
		p := b.pos[m]
		newAdj := b.newAdj[:0]
		if !b.down[m] {
			x0, y0, x1, y1 := b.grid.BucketRange(p, b.txRange)
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					for _, v := range b.grid.Bucket(x, y) {
						if v != m && p.Dist2(b.pos[v]) <= r2 {
							newAdj = append(newAdj, v)
						}
					}
				}
			}
			sortIDs(newAdj)
		}
		b.newAdj = newAdj // keep the (possibly grown) scratch buffer

		old := b.adj[m]
		if slices.Equal(old, newAdj) {
			continue // displacement too small to change any edge: no patching
		}
		b.markChanged(m, gen)
		i, j := 0, 0
		for i < len(old) || j < len(newAdj) {
			switch {
			case j == len(newAdj) || (i < len(old) && old[i] < newAdj[j]):
				if v := old[i]; b.movedStamp[v] != gen {
					b.adj[v] = removeSorted(b.adj[v], m)
					b.markChanged(v, gen)
					b.adjTotal--
				}
				i++
			case i == len(old) || old[i] > newAdj[j]:
				if v := newAdj[j]; b.movedStamp[v] != gen {
					b.adj[v] = insertSorted(b.adj[v], m)
					b.markChanged(v, gen)
					b.adjTotal++
				}
				j++
			default: // edge unchanged
				i++
				j++
			}
		}
		b.adjTotal += len(newAdj) - len(old)
		b.adj[m] = append(old[:0], newAdj...)
	}
	b.links = b.adjTotal / 2
}

// incrementalDirected is the directed-mode subset-dirty update. Each
// dirty node is rescanned twice against the updated grid: once for its
// out-list (its own range decides who it reaches) and once for its
// in-list (a maximum-range scan filtered by each candidate's range
// decides who reaches it). The two merge-diffs then patch the *opposite*
// lists of stationary endpoints — an out-edge m→v that appeared or
// vanished patches v's in-list, an in-edge v→m patches v's out-list —
// keeping every list sorted with O(degree) splices. Dirty–dirty edges
// settle through each endpoint's own rescans, exactly like the scalar
// path. adjTotal (= Σ out-degree = directed link count) is carried as a
// delta: a dirty node's own out-list contributes its length difference,
// and each stationary out-list splice contributes ±1, so every directed
// edge change is counted exactly once at its source.
func (b *Builder) incrementalDirected(pos []geom.Point, down []bool) {
	b.gen++
	gen := b.gen
	for _, m := range b.moved {
		b.movedStamp[m] = gen
	}

	for _, m := range b.moved {
		if !b.down[m] {
			b.grid.Remove(int32(m), b.pos[m])
		}
		b.pos[m] = pos[m]
		b.down[m] = isDown(down, int(m))
		if !b.down[m] {
			b.grid.Insert(int32(m), b.pos[m])
		}
	}

	maxR := b.txRange
	for _, m := range b.moved {
		p := b.pos[m]
		newOut := b.newAdj[:0]
		newIn := b.newIn[:0]
		if !b.down[m] {
			rm := b.lm.RangeOf(int(m))
			r2 := rm * rm
			x0, y0, x1, y1 := b.grid.BucketRange(p, rm)
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					for _, v := range b.grid.Bucket(x, y) {
						if v != m && p.Dist2(b.pos[v]) <= r2 && !b.lm.cuts(p, b.pos[v]) {
							newOut = append(newOut, v)
						}
					}
				}
			}
			sortIDs(newOut)
			// The grid holds only up nodes, so candidates need no mask
			// check; each candidate's own range decides the v→m edge.
			x0, y0, x1, y1 = b.grid.BucketRange(p, maxR)
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					for _, v := range b.grid.Bucket(x, y) {
						if v != m && !b.lm.cuts(p, b.pos[v]) {
							rv := b.lm.RangeOf(int(v))
							if p.Dist2(b.pos[v]) <= rv*rv {
								newIn = append(newIn, v)
							}
						}
					}
				}
			}
			sortIDs(newIn)
		}
		b.newAdj, b.newIn = newOut, newIn // keep the (possibly grown) scratch

		if old := b.adj[m]; !slices.Equal(old, newOut) {
			b.markChanged(m, gen)
			i, j := 0, 0
			for i < len(old) || j < len(newOut) {
				switch {
				case j == len(newOut) || (i < len(old) && old[i] < newOut[j]):
					if v := old[i]; b.movedStamp[v] != gen {
						b.in[v] = removeSorted(b.in[v], m)
						b.markChanged(v, gen)
					}
					i++
				case i == len(old) || old[i] > newOut[j]:
					if v := newOut[j]; b.movedStamp[v] != gen {
						b.in[v] = insertSorted(b.in[v], m)
						b.markChanged(v, gen)
					}
					j++
				default:
					i++
					j++
				}
			}
			b.adjTotal += len(newOut) - len(old)
			b.adj[m] = append(old[:0], newOut...)
		}
		if old := b.in[m]; !slices.Equal(old, newIn) {
			b.markChanged(m, gen)
			i, j := 0, 0
			for i < len(old) || j < len(newIn) {
				switch {
				case j == len(newIn) || (i < len(old) && old[i] < newIn[j]):
					if v := old[i]; b.movedStamp[v] != gen {
						b.adj[v] = removeSorted(b.adj[v], m)
						b.markChanged(v, gen)
						b.adjTotal--
					}
					i++
				case i == len(old) || old[i] > newIn[j]:
					if v := newIn[j]; b.movedStamp[v] != gen {
						b.adj[v] = insertSorted(b.adj[v], m)
						b.markChanged(v, gen)
						b.adjTotal++
					}
					j++
				default:
					i++
					j++
				}
			}
			b.in[m] = append(old[:0], newIn...)
		}
	}
	b.links = b.adjTotal
}

// markChanged records v in the changed-adjacency list of the update in
// progress, deduplicating via the shared generation stamp.
func (b *Builder) markChanged(v NodeID, gen uint64) {
	if b.changedStamp[v] != gen {
		b.changedStamp[v] = gen
		b.changed = append(b.changed, v)
	}
}

// Changed reports which nodes' adjacency lists differ from the previous
// snapshot after the most recent Update. all=true means the update was a
// full (re)build — the first build, or the moved fraction exceeding the
// incremental threshold — and every node must be treated as changed (the
// list is then empty). Otherwise the list is exact and duplicate-free,
// in no particular order: a node not listed has a byte-identical
// adjacency list to the previous snapshot. The slice aliases builder
// scratch and is valid until the next Update.
func (b *Builder) Changed() (changed []NodeID, all bool) {
	return b.changed, b.changedAll
}

// insertSorted adds x to the sorted slice a, keeping it sorted.
func insertSorted(a []NodeID, x NodeID) []NodeID {
	a = append(a, x)
	i := len(a) - 1
	for i > 0 && a[i-1] > x {
		a[i] = a[i-1]
		i--
	}
	a[i] = x
	return a
}

// removeSorted deletes x from the sorted slice a, keeping it sorted.
func removeSorted(a []NodeID, x NodeID) []NodeID {
	for i, v := range a {
		if v == x {
			copy(a[i:], a[i+1:])
			return a[:len(a)-1]
		}
	}
	return a
}

// recountLinks re-derives the out-degree sum and link count from
// scratch; full builds call it, incremental updates carry adjTotal as a
// delta instead.
func (b *Builder) recountLinks() {
	sum := 0
	for _, a := range b.adj {
		sum += len(a)
	}
	b.adjTotal = sum
	if b.directed {
		b.links = sum
	} else {
		b.links = sum / 2
	}
}

// snapshot wraps the builder's current state in a Graph header. The slices
// are shared, not copied; see the type comment for the lifetime contract.
func (b *Builder) snapshot() *Graph {
	return &Graph{
		pos:      b.pos,
		area:     b.area,
		rng:      b.txRange,
		ranges:   b.lm.Ranges,
		directed: b.directed,
		adj:      b.adj,
		in:       b.in,
		links:    b.links,
	}
}

func sortIDs(a []NodeID) { slices.Sort(a) }
