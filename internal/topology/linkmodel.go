package topology

import "card/internal/geom"

// LinkModel describes the radio layer a connectivity snapshot is built
// from. The zero value is invalid; most scenarios set only Uniform, which
// reproduces the classic undirected unit-disk graph through the exact
// code path (and bit pattern) the scalar builders have always used.
//
// Setting Ranges or a barrier switches the graph into directed mode:
// there is an edge u→v iff dist(u,v) <= RangeOf(u) and the barrier (when
// active) does not separate u and v. Out- and in-adjacency are then
// maintained separately; a protocol-level hop additionally needs the
// reverse edge (see Graph.Bidirectional) because link-layer
// acknowledgements must travel back.
type LinkModel struct {
	// Uniform is the scalar transmission range in meters (> 0). With
	// Ranges set it only serves as documentation of the nominal range;
	// grid sizing and Graph.TxRange use the maximum of Ranges instead.
	Uniform float64

	// Ranges, when non-nil, gives node i its own transmission range
	// Ranges[i] (> 0, length = node count), producing asymmetric links
	// between nodes with different radios.
	Ranges []float64

	// BarrierX > 0 places a vertical barrier at x = BarrierX that, while
	// BarrierActive, cuts every link crossing it — the scheduled
	// partition-and-heal scenario. The cut is symmetric, so a barrier on
	// its own never creates one-way links. BarrierX <= 0 means no barrier
	// is configured.
	BarrierX      float64
	BarrierActive bool
}

// scalar reports whether lm is the plain uniform-range model with no
// barrier configured, i.e. whether the undirected fast path applies.
// A configured-but-inactive barrier still counts as directed so that a
// builder's snapshot shape stays stable across partition toggles.
func (lm LinkModel) scalar() bool { return lm.Ranges == nil && lm.BarrierX <= 0 }

// RangeOf returns node i's transmission range.
func (lm LinkModel) RangeOf(i int) float64 {
	if lm.Ranges == nil {
		return lm.Uniform
	}
	return lm.Ranges[i]
}

// Max returns the largest transmission range in the model — the grid cell
// size, and what Graph.TxRange reports for heterogeneous snapshots.
func (lm LinkModel) Max() float64 {
	if lm.Ranges == nil {
		return lm.Uniform
	}
	m := 0.0
	for _, r := range lm.Ranges {
		if r > m {
			m = r
		}
	}
	return m
}

// Min returns the smallest transmission range in the model.
func (lm LinkModel) Min() float64 {
	if lm.Ranges == nil {
		return lm.Uniform
	}
	m := lm.Ranges[0]
	for _, r := range lm.Ranges[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// cuts reports whether the (active) barrier separates p and q.
func (lm LinkModel) cuts(p, q geom.Point) bool {
	return lm.BarrierActive && (p.X < lm.BarrierX) != (q.X < lm.BarrierX)
}

// validate panics on a malformed model (the same contract the scalar
// builders enforce for txRange <= 0).
func (lm LinkModel) validate(n int) {
	if lm.Ranges == nil {
		if lm.Uniform <= 0 {
			panic("topology: non-positive transmission range")
		}
		return
	}
	if len(lm.Ranges) != n {
		panic("topology: LinkModel.Ranges length does not match node count")
	}
	for _, r := range lm.Ranges {
		if r <= 0 {
			panic("topology: non-positive transmission range")
		}
	}
}

// BuildLink constructs the connectivity snapshot for an arbitrary link
// model: the scalar fast path for a plain uniform range, or the directed
// builder when per-node ranges or a barrier are configured.
func BuildLink(pos []geom.Point, area geom.Rect, lm LinkModel) *Graph {
	return BuildLinkMasked(pos, area, lm, nil)
}

// BuildLinkMasked is BuildLink with the node-exclusion mask of
// BuildMasked. In directed mode a down node has empty out- and in-lists.
func BuildLinkMasked(pos []geom.Point, area geom.Rect, lm LinkModel, down []bool) *Graph {
	if lm.scalar() {
		return BuildMasked(pos, area, lm.Uniform, down)
	}
	lm.validate(len(pos))
	maxR := lm.Max()
	g := &Graph{
		pos:      append([]geom.Point(nil), pos...),
		area:     area,
		rng:      maxR,
		ranges:   lm.Ranges,
		directed: true,
		adj:      make([][]NodeID, len(pos)),
		in:       make([][]NodeID, len(pos)),
	}
	// Bucket by the maximum range: a one-ring scan around u then covers
	// every candidate within any node's radius, at the cost of scanning
	// short-range nodes' buckets a little wide.
	grid := geom.NewGrid(area, maxR)
	for i, p := range g.pos {
		if !isDown(down, i) {
			grid.Insert(NodeID(i), p)
		}
	}
	for i, p := range g.pos {
		if isDown(down, i) {
			continue
		}
		u := NodeID(i)
		ri := lm.RangeOf(i)
		r2 := ri * ri
		x0, y0, x1, y1 := grid.BucketRange(p, ri)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				for _, v := range grid.Bucket(x, y) {
					if v != u && p.Dist2(g.pos[v]) <= r2 && !lm.cuts(p, g.pos[v]) {
						g.adj[u] = append(g.adj[u], v)
					}
				}
			}
		}
		sortIDs(g.adj[u])
		g.links += len(g.adj[u])
	}
	// In-lists: appending sources in ascending order keeps them sorted
	// without a sort pass.
	for u := range g.adj {
		for _, v := range g.adj[u] {
			g.in[v] = append(g.in[v], NodeID(u))
		}
	}
	return g
}

// BuildNaiveLink is BuildLink via the O(N²) all-pairs reference scan.
func BuildNaiveLink(pos []geom.Point, area geom.Rect, lm LinkModel) *Graph {
	return BuildNaiveLinkMasked(pos, area, lm, nil)
}

// BuildNaiveLinkMasked is the correctness reference for directed
// topologies: the grid and incremental link builders must produce
// byte-identical out- and in-adjacency.
func BuildNaiveLinkMasked(pos []geom.Point, area geom.Rect, lm LinkModel, down []bool) *Graph {
	if lm.scalar() {
		return BuildNaiveMasked(pos, area, lm.Uniform, down)
	}
	lm.validate(len(pos))
	g := &Graph{
		pos:      append([]geom.Point(nil), pos...),
		area:     area,
		rng:      lm.Max(),
		ranges:   lm.Ranges,
		directed: true,
		adj:      make([][]NodeID, len(pos)),
		in:       make([][]NodeID, len(pos)),
	}
	for i := range g.pos {
		if isDown(down, i) {
			continue
		}
		ri2 := lm.RangeOf(i) * lm.RangeOf(i)
		for j := i + 1; j < len(g.pos); j++ {
			if isDown(down, j) {
				continue
			}
			d2 := g.pos[i].Dist2(g.pos[j])
			if lm.cuts(g.pos[i], g.pos[j]) {
				continue
			}
			// Ascending appends on every list keep all four sorted.
			if d2 <= ri2 {
				g.adj[i] = append(g.adj[i], NodeID(j))
				g.in[j] = append(g.in[j], NodeID(i))
				g.links++
			}
			if d2 <= lm.RangeOf(j)*lm.RangeOf(j) {
				g.adj[j] = append(g.adj[j], NodeID(i))
				g.in[i] = append(g.in[i], NodeID(j))
				g.links++
			}
		}
	}
	return g
}
