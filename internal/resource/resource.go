// Package resource adds the resource layer on top of CARD's node
// discovery: named resources (services, data items, roles) hosted at one
// or more nodes, discovered through any of the three schemes.
//
// The paper evaluates node discovery and leaves "various scenarios of ...
// resource distributions in the network" as future work (§V); this
// package implements that study. A Directory maps resource ids to holder
// nodes; discovery for a resource succeeds when any holder is found, so
// replication turns one lookup into an any-cast and changes every scheme's
// cost curve.
package resource

import (
	"fmt"
	"sort"

	"card/internal/card"
	"card/internal/flood"
	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// ID names a resource.
type ID int32

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Directory records which nodes hold which resources. It is the
// simulator's bird's-eye registry; protocol-visible knowledge stays local
// (a node knows the resources of its own neighborhood through the
// proactive substrate, exactly as it knows the nodes themselves).
type Directory struct {
	n       int
	holders map[ID][]NodeID
	hosted  map[NodeID][]ID

	// PlaceReplicas sampling scratch: sample holds the identity
	// permutation between calls (each call swaps k positions and swaps
	// them back), swaps records the positions to undo.
	sample []NodeID
	swaps  []int
}

// NewDirectory creates an empty directory over an n-node network.
func NewDirectory(n int) *Directory {
	return &Directory{
		n:       n,
		holders: make(map[ID][]NodeID),
		hosted:  make(map[NodeID][]ID),
	}
}

// Place registers node u as a holder of resource id. Duplicate placements
// are ignored.
func (d *Directory) Place(id ID, u NodeID) {
	for _, h := range d.holders[id] {
		if h == u {
			return
		}
	}
	d.holders[id] = append(d.holders[id], u)
	d.hosted[u] = append(d.hosted[u], id)
}

// PlaceReplicas registers k distinct uniformly random holders for id.
//
// Holders are drawn with a partial Fisher–Yates shuffle over a persistent
// identity scratch: exactly k swaps forward, then k swaps back, so after
// the first call placing a resource costs O(k) — not the O(n) time and
// allocation of the full rng.Perm(n) it replaces. The sampled k-subsets
// are distributed identically to the Perm(n) prefix, but the draw consumes
// k values from rng instead of n-1, so placements for a given seed differ
// from pre-change streams.
func (d *Directory) PlaceReplicas(id ID, k int, rng *xrand.Rand) {
	if k > d.n {
		k = d.n
	}
	if k <= 0 {
		return
	}
	if d.sample == nil {
		d.sample = make([]NodeID, d.n)
		for i := range d.sample {
			d.sample[i] = NodeID(i)
		}
		d.swaps = make([]int, 0, k)
	}
	s, swaps := d.sample, d.swaps[:0]
	for i := 0; i < k; i++ {
		j := i + rng.Intn(d.n-i)
		s[i], s[j] = s[j], s[i]
		swaps = append(swaps, j)
		d.Place(id, s[i])
	}
	// Undo the swaps in reverse so the scratch is the identity again for
	// the next call.
	for i := k - 1; i >= 0; i-- {
		j := swaps[i]
		s[i], s[j] = s[j], s[i]
	}
	d.swaps = swaps[:0]
}

// Holders returns the nodes holding id (sorted, copy).
func (d *Directory) Holders(id ID) []NodeID {
	hs := append([]NodeID(nil), d.holders[id]...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// IDs returns every registered resource id in ascending order. The sorted
// copy is the deterministic iteration surface over the holder map — scheme
// setup passes (rendezvous registration) walk it instead of ranging the
// map directly.
func (d *Directory) IDs() []ID {
	ids := make([]ID, 0, len(d.holders))
	for id := range d.holders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Hosted returns the resources node u holds (copy).
func (d *Directory) Hosted(u NodeID) []ID {
	return append([]ID(nil), d.hosted[u]...)
}

// Resources returns the number of distinct resources registered.
func (d *Directory) Resources() int { return len(d.holders) }

func (d *Directory) String() string {
	return fmt.Sprintf("directory: %d resources over %d nodes", len(d.holders), d.n)
}

// Result reports one resource discovery.
type Result struct {
	// Found reports whether some holder was located.
	Found bool
	// Holder is the located holder (undefined when !Found).
	Holder NodeID
	// Messages is the control traffic of the discovery.
	Messages int64
	// PathHops is the route length to the holder, or -1.
	PathHops int
}

// DiscoverCARD finds a holder of id from src using the CARD protocol:
// the source checks its own neighborhood for any holder, then queries
// holders one at a time through the contact architecture, nearest-listed
// first, stopping at the first hit.
//
// Contacts leverage neighborhood knowledge: a holder inside any queried
// contact's neighborhood answers, so replication multiplies the effective
// target set exactly as it would in a real deployment.
func DiscoverCARD(p *card.Protocol, d *Directory, src NodeID, id ID) Result {
	return discoverCARD(p.Neighborhood(), p.Query, d, src, id)
}

// DiscoverCARDWith is DiscoverCARD executing on a caller-owned Querier:
// message tallies accumulate locally in q (flush after the batch joins)
// and no shared protocol state is touched, so any number of Queriers may
// discover concurrently between rounds — the sustained-workload engine
// shards its per-tick query batches exactly this way.
func DiscoverCARDWith(q *card.Querier, d *Directory, src NodeID, id ID) Result {
	return discoverCARD(q.Protocol().Neighborhood(), q.Query, d, src, id)
}

// discoverCARD is the shared discovery core behind both entry points;
// query runs one destination search (serial protocol path or per-worker
// Querier path).
func discoverCARD(nb neighborhood.Provider, query func(src, dst NodeID) card.QueryResult,
	d *Directory, src NodeID, id ID) Result {
	holders := d.holders[id]
	if len(holders) == 0 {
		return Result{Found: false, PathHops: -1}
	}
	// Local resolution: any holder within the neighborhood table.
	best := Result{Found: false, PathHops: -1}
	for _, h := range holders {
		if h == src {
			return Result{Found: true, Holder: src, PathHops: 0}
		}
		if nb.Contains(src, h) {
			hops := nb.Dist(src, h)
			if !best.Found || hops < best.PathHops {
				best = Result{Found: true, Holder: h, PathHops: hops}
			}
		}
	}
	if best.Found {
		return best
	}
	// Remote resolution through contacts, holder by holder.
	var msgs int64
	for _, h := range holders {
		r := query(src, h)
		msgs += r.Messages
		if r.Found {
			return Result{Found: true, Holder: h, Messages: msgs, PathHops: r.PathHops}
		}
	}
	return Result{Found: false, Messages: msgs, PathHops: -1}
}

// DiscoverFlood finds a holder of id from src by flooding: the query
// carries the resource id and the nearest holder answers. Cost is one
// flood bounded by the distance to the nearest holder is not modeled —
// plain duplicate-suppressed flooding reaches everyone, so the flood cost
// is component-sized regardless of replication, while the reply comes from
// the nearest holder.
func DiscoverFlood(net *manet.Network, d *Directory, src NodeID, id ID) Result {
	return DiscoverFloodR(net, net.Recorder(), d, src, id)
}

// DiscoverFloodR is DiscoverFlood accounting on an explicit recorder —
// the per-worker form the scheme layer shards with (tally locally, flush
// serially after the join, exactly like card.Querier).
func DiscoverFloodR(net *manet.Network, rec manet.Recorder, d *Directory, src NodeID, id ID) Result {
	holders := d.holders[id]
	if len(holders) == 0 {
		return Result{Found: false, PathHops: -1}
	}
	if r, ok := selfHeld(holders, src); ok {
		return r
	}
	// One flood; nearest reachable holder replies.
	bfs := net.Graph().BFS(src)
	nearest := NodeID(-1)
	bestDist := int32(1 << 30)
	for _, h := range holders {
		if bfs.Dist[h] >= 0 && bfs.Dist[h] < bestDist {
			bestDist = bfs.Dist[h]
			nearest = h
		}
	}
	if nearest < 0 {
		// No reachable holder: the query floods src's whole component and
		// dies. Charging an explicit full-component flood (rather than a
		// unicast-style query toward holders[0] as a proxy destination)
		// makes the dead-search cost a function of the topology alone,
		// identical under any holder insertion order.
		r := flood.FloodR(net, rec, src)
		return Result{Found: false, Messages: r.Messages, PathHops: -1}
	}
	r := flood.QueryR(net, rec, src, nearest, true)
	return Result{Found: r.Found, Holder: nearest, Messages: r.Messages, PathHops: r.PathHops}
}

// DiscoverExpandingRing finds a holder via TTL-doubling floods, stopping
// at the ring that first covers a holder — the classical anycast baseline.
func DiscoverExpandingRing(net *manet.Network, d *Directory, src NodeID, id ID) Result {
	return DiscoverExpandingRingR(net, net.Recorder(), d, src, id)
}

// DiscoverExpandingRingR is DiscoverExpandingRing accounting on an
// explicit recorder (see DiscoverFloodR).
func DiscoverExpandingRingR(net *manet.Network, rec manet.Recorder, d *Directory, src NodeID, id ID) Result {
	holders := d.holders[id]
	if len(holders) == 0 {
		return Result{Found: false, PathHops: -1}
	}
	if r, ok := selfHeld(holders, src); ok {
		return r
	}
	bfs := net.Graph().BFS(src)
	nearest := NodeID(-1)
	bestDist := int32(1 << 30)
	for _, h := range holders {
		if bfs.Dist[h] >= 0 && bfs.Dist[h] < bestDist {
			bestDist = bfs.Dist[h]
			nearest = h
		}
	}
	if nearest < 0 {
		// No reachable holder: the escalation runs its full TTL schedule
		// and dies. RingSweep charges exactly that, as a function of src's
		// component alone — no proxy holder destination involved.
		r := flood.RingSweepR(net, rec, src, flood.DoublingTTLs(64))
		return Result{Found: false, Messages: r.Messages, PathHops: -1}
	}
	r := flood.ExpandingRingR(net, rec, src, nearest, flood.DoublingTTLs(64), true)
	return Result{Found: r.Found, Holder: nearest, Messages: r.Messages, PathHops: r.PathHops}
}

// selfHeld resolves the query locally when src itself holds the resource:
// zero control messages, zero hops, under every discovery scheme. The
// flooding baselines used to skip this check and charge a full flood for a
// resource the source already had, inflating their overhead relative to
// DiscoverCARD (which has always answered locally) and skewing every
// cost comparison under replication.
func selfHeld(holders []NodeID, src NodeID) (Result, bool) {
	for _, h := range holders {
		if h == src {
			return Result{Found: true, Holder: src, PathHops: 0}, true
		}
	}
	return Result{}, false
}
