package resource

import (
	"testing"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

func testNet(seed uint64, n int) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	return manet.New(mobility.NewStatic(pts, area), 50, xrand.New(seed))
}

func testProtocol(t *testing.T, net *manet.Network) *card.Protocol {
	t.Helper()
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	p, err := card.New(net, nb, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p.SelectAll(0)
	return p
}

func TestDirectoryPlacement(t *testing.T) {
	d := NewDirectory(100)
	d.Place(1, 10)
	d.Place(1, 20)
	d.Place(1, 10) // duplicate ignored
	d.Place(2, 10)
	if got := d.Holders(1); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Holders(1) = %v", got)
	}
	if got := d.Hosted(10); len(got) != 2 {
		t.Errorf("Hosted(10) = %v", got)
	}
	if d.Resources() != 2 {
		t.Errorf("Resources = %d", d.Resources())
	}
}

func TestPlaceReplicasDistinct(t *testing.T) {
	d := NewDirectory(50)
	d.PlaceReplicas(5, 10, xrand.New(3))
	hs := d.Holders(5)
	if len(hs) != 10 {
		t.Fatalf("placed %d replicas, want 10", len(hs))
	}
	seen := map[NodeID]bool{}
	for _, h := range hs {
		if seen[h] {
			t.Fatal("duplicate holder from PlaceReplicas")
		}
		seen[h] = true
	}
	// Clamps to network size.
	d2 := NewDirectory(5)
	d2.PlaceReplicas(1, 99, xrand.New(4))
	if len(d2.Holders(1)) != 5 {
		t.Errorf("over-replication not clamped: %d", len(d2.Holders(1)))
	}
}

func TestDiscoverUnknownResource(t *testing.T) {
	net := testNet(1, 100)
	p := testProtocol(t, net)
	d := NewDirectory(100)
	if r := DiscoverCARD(p, d, 0, 99); r.Found || r.PathHops != -1 {
		t.Errorf("unknown resource found: %+v", r)
	}
	if r := DiscoverFlood(net, d, 0, 99); r.Found {
		t.Errorf("flood found unknown resource: %+v", r)
	}
}

func TestDiscoverSelfHolder(t *testing.T) {
	net := testNet(2, 100)
	p := testProtocol(t, net)
	d := NewDirectory(100)
	d.Place(1, 5)
	r := DiscoverCARD(p, d, 5, 1)
	if !r.Found || r.Holder != 5 || r.PathHops != 0 || r.Messages != 0 {
		t.Errorf("self-holder = %+v", r)
	}
}

func TestDiscoverNeighborhoodHolderIsFree(t *testing.T) {
	net := testNet(3, 200)
	p := testProtocol(t, net)
	nb := p.Neighborhood()
	src := NodeID(0)
	members := nb.Members(src)
	if len(members) < 2 {
		t.Skip("isolated source")
	}
	holder := members[len(members)-1]
	d := NewDirectory(200)
	d.Place(7, holder)
	r := DiscoverCARD(p, d, src, 7)
	if !r.Found || r.Messages != 0 {
		t.Errorf("neighborhood discovery = %+v, want free hit", r)
	}
	if r.PathHops != nb.Dist(src, holder) {
		t.Errorf("PathHops = %d, want %d", r.PathHops, nb.Dist(src, holder))
	}
}

func TestDiscoverPicksNearestNeighborhoodHolder(t *testing.T) {
	net := testNet(4, 200)
	p := testProtocol(t, net)
	nb := p.Neighborhood()
	src := NodeID(0)
	members := nb.Members(src)
	if len(members) < 3 {
		t.Skip("source neighborhood too small")
	}
	var near, far NodeID = -1, -1
	for _, mm := range members {
		if mm == src {
			continue
		}
		if nb.Dist(src, mm) == 1 && near < 0 {
			near = mm
		}
		if nb.Dist(src, mm) == 3 {
			far = mm
		}
	}
	if near < 0 || far < 0 {
		t.Skip("no 1-hop/3-hop pair available")
	}
	d := NewDirectory(200)
	d.Place(9, far)
	d.Place(9, near)
	r := DiscoverCARD(p, d, src, 9)
	if !r.Found || r.Holder != near {
		t.Errorf("nearest holder not preferred: %+v (near=%d far=%d)", r, near, far)
	}
}

func TestReplicationImprovesCARDDiscovery(t *testing.T) {
	net := testNet(5, 300)
	p := testProtocol(t, net)
	found1, found8 := 0, 0
	var msgs1, msgs8 int64
	for trial := 0; trial < 30; trial++ {
		rng := xrand.New(uint64(trial))
		d1 := NewDirectory(300)
		d1.PlaceReplicas(1, 1, rng)
		d8 := NewDirectory(300)
		d8.PlaceReplicas(1, 8, rng.Derive(1))
		src := NodeID(rng.Intn(300))
		r1 := DiscoverCARD(p, d1, src, 1)
		r8 := DiscoverCARD(p, d8, src, 1)
		if r1.Found {
			found1++
			msgs1 += r1.Messages
		}
		if r8.Found {
			found8++
			msgs8 += r8.Messages
		}
	}
	if found8 < found1 {
		t.Errorf("8 replicas found %d times, 1 replica %d times", found8, found1)
	}
}

func TestDiscoverFloodFindsNearest(t *testing.T) {
	net := testNet(6, 300)
	d := NewDirectory(300)
	comp := net.Graph().LargestComponent()
	if len(comp) < 50 {
		t.Skip("network too fragmented")
	}
	src := comp[0]
	bfs := net.Graph().BFS(src)
	// Place two holders at different distances within the component.
	var nearH, farH NodeID = -1, -1
	for _, v := range comp {
		d := bfs.Dist[v]
		if d == 2 && nearH < 0 {
			nearH = v
		}
		if d >= 6 && farH < 0 {
			farH = v
		}
	}
	if nearH < 0 || farH < 0 {
		t.Skip("could not place holders at distinct distances")
	}
	d.Place(3, farH)
	d.Place(3, nearH)
	r := DiscoverFlood(net, d, src, 3)
	if !r.Found || r.Holder != nearH {
		t.Errorf("flood holder = %+v, want nearest %d", r, nearH)
	}
	if r.PathHops != 2 {
		t.Errorf("PathHops = %d, want 2", r.PathHops)
	}
}

func TestExpandingRingCheaperThanFloodForNearHolder(t *testing.T) {
	netA := testNet(7, 300)
	netB := testNet(7, 300)
	comp := netA.Graph().LargestComponent()
	src := comp[0]
	bfs := netA.Graph().BFS(src)
	var holder NodeID = -1
	for _, v := range comp {
		if bfs.Dist[v] == 2 {
			holder = v
			break
		}
	}
	if holder < 0 {
		t.Skip("no 2-hop holder")
	}
	d := NewDirectory(300)
	d.Place(4, holder)
	ring := DiscoverExpandingRing(netA, d, src, 4)
	full := DiscoverFlood(netB, d, src, 4)
	if !ring.Found || !full.Found {
		t.Fatal("both should find the holder")
	}
	if ring.Messages >= full.Messages {
		t.Errorf("ring (%d msgs) not cheaper than flood (%d) for 2-hop holder",
			ring.Messages, full.Messages)
	}
}

func TestDiscoverUnreachableHolder(t *testing.T) {
	// Two components: holder in the other one.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 500, Y: 500}}
	a := geom.Rect{W: 600, H: 600}
	net := manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	cfg := card.Config{R: 2, MaxContactDist: 6, NoC: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	p, err := card.New(net, nb, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirectory(3)
	d.Place(1, 2)
	if r := DiscoverCARD(p, d, 0, 1); r.Found {
		t.Errorf("found unreachable holder: %+v", r)
	}
	if r := DiscoverFlood(net, d, 0, 1); r.Found {
		t.Errorf("flood found unreachable holder: %+v", r)
	}
	if r := DiscoverExpandingRing(net, d, 0, 1); r.Found {
		t.Errorf("ring found unreachable holder: %+v", r)
	}
}

// TestSelfHeldResourceIsFreeEverywhere is the baseline-fairness regression
// pin: a resource the source itself holds costs zero messages and zero
// hops under all three discovery schemes. The flooding baselines used to
// charge a full flood here, inflating their overhead against CARD.
func TestSelfHeldResourceIsFreeEverywhere(t *testing.T) {
	net := testNet(8, 150)
	p := testProtocol(t, net)
	d := NewDirectory(150)
	src := NodeID(3)
	// Bury the self-placement among other holders so the short-circuit is
	// exercised past the first list entry.
	d.Place(1, 90)
	d.Place(1, src)
	d.Place(1, 10)
	for name, r := range map[string]Result{
		"card":  DiscoverCARD(p, d, src, 1),
		"flood": DiscoverFlood(net, d, src, 1),
		"ring":  DiscoverExpandingRing(net, d, src, 1),
	} {
		if !r.Found || r.Holder != src || r.Messages != 0 || r.PathHops != 0 {
			t.Errorf("%s: self-held resource = %+v, want found at holder %d, 0 msgs, 0 hops",
				name, r, src)
		}
	}
}

// deadNet builds a two-component topology: a connected cluster around src
// and three isolated far nodes to use as unreachable holders.
func deadNet() *manet.Network {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 10, Y: 10}, // cluster
		{X: 500, Y: 500}, {X: 560, Y: 500}, {X: 500, Y: 560}, // isolated holders
	}
	a := geom.Rect{W: 600, H: 600}
	return manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
}

// TestDeadSearchCostHolderOrderInvariant pins the second fairness fix: when
// no holder is reachable, the charged cost is the explicit full-component
// flood (or full ring escalation) from src — identical under every holder
// insertion order, and never a function of holders[0].
func TestDeadSearchCostHolderOrderInvariant(t *testing.T) {
	orders := [][]NodeID{{4, 5, 6}, {6, 4, 5}, {5, 6, 4}}
	var floodCosts, ringCosts []int64
	for _, order := range orders {
		d := NewDirectory(7)
		for _, h := range order {
			d.Place(2, h)
		}
		rf := DiscoverFlood(deadNet(), d, 0, 2)
		rr := DiscoverExpandingRing(deadNet(), d, 0, 2)
		if rf.Found || rr.Found {
			t.Fatalf("found unreachable holders: flood=%+v ring=%+v", rf, rr)
		}
		floodCosts = append(floodCosts, rf.Messages)
		ringCosts = append(ringCosts, rr.Messages)
	}
	for i := 1; i < len(orders); i++ {
		if floodCosts[i] != floodCosts[0] {
			t.Errorf("flood dead cost varies with holder order: %v", floodCosts)
		}
		if ringCosts[i] != ringCosts[0] {
			t.Errorf("ring dead cost varies with holder order: %v", ringCosts)
		}
	}
	// The flood charge is exactly src's component size (4 nodes).
	if floodCosts[0] != 4 {
		t.Errorf("dead flood cost = %d, want 4 (component size)", floodCosts[0])
	}
	// The ring escalation pays every failed ring plus the final full
	// flood, so it must exceed the single flood.
	if ringCosts[0] <= floodCosts[0] {
		t.Errorf("dead ring cost %d not above dead flood cost %d", ringCosts[0], floodCosts[0])
	}
}

// TestDiscoverCARDWithMatchesSerial pins that the Querier-based discovery
// path returns identical results to the serial protocol path (it is the
// unit the workload layer shards across workers).
func TestDiscoverCARDWithMatchesSerial(t *testing.T) {
	netA, netB := testNet(9, 250), testNet(9, 250)
	pa, pb := testProtocol(t, netA), testProtocol(t, netB)
	rng := xrand.New(21)
	d := NewDirectory(250)
	for id := 0; id < 20; id++ {
		d.PlaceReplicas(ID(id), 2, rng.Derive(uint64(id)))
	}
	q := pb.NewQuerier()
	for trial := 0; trial < 60; trial++ {
		src := NodeID(rng.Intn(250))
		id := ID(rng.Intn(20))
		serial := DiscoverCARD(pa, d, src, id)
		batch := DiscoverCARDWith(q, d, src, id)
		if serial != batch {
			t.Fatalf("trial %d (src %d, id %d): serial %+v != querier %+v",
				trial, src, id, serial, batch)
		}
	}
	q.Flush()
	if ta, tb := netA.Totals(), netB.Totals(); ta != tb {
		t.Errorf("accounting diverges: serial %v, querier %v", ta, tb)
	}
}

// TestPlaceReplicasScratchRestored pins the partial Fisher–Yates
// bookkeeping: the identity scratch is restored after every call, so a
// placement depends only on the rng state, not on placement history.
func TestPlaceReplicasScratchRestored(t *testing.T) {
	fresh := NewDirectory(200)
	fresh.PlaceReplicas(1, 7, xrand.New(9))
	reused := NewDirectory(200)
	reused.PlaceReplicas(50, 23, xrand.New(1)) // dirty the scratch first
	reused.PlaceReplicas(51, 200, xrand.New(2))
	reused.PlaceReplicas(1, 7, xrand.New(9))
	a, b := fresh.Holders(1), reused.Holders(1)
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("holder counts = %d, %d, want 7", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement depends on history: %v vs %v", a, b)
		}
	}
}

// BenchmarkPlaceReplicas measures placing k replicas into an n-node
// directory — the allocation hot spot the partial Fisher–Yates draw fixes
// (the old full Perm(n) cost O(n) time and memory per resource).
func BenchmarkPlaceReplicas(b *testing.B) {
	const n, k = 10000, 8
	d := NewDirectory(n)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PlaceReplicas(ID(i), k, rng)
	}
}

// lineNet builds a 4-node line 0—1—2—3 (60 m spacing, 70 m range) with a
// fifth isolated node far to the right. Distances from node 0 are exactly
// 1, 2, 3 hops — small enough to hand-compute TTL-escalation charges.
func lineNet() *manet.Network {
	a := geom.Rect{W: 1100, H: 50}
	pts := []geom.Point{
		{X: 0, Y: 10}, {X: 60, Y: 10}, {X: 120, Y: 10}, {X: 180, Y: 10},
		{X: 1000, Y: 10}, // isolated
	}
	return manet.New(mobility.NewStatic(pts, a), 70, xrand.New(1))
}

// TestExpandingRingAccountingHandComputed pins the per-ring charges of
// the TTL escalation on a hand-computed line: src 0 queries the holder at
// node 3, three hops out. The doubling schedule tries TTL 1 (1 relay),
// TTL 2 (2 relays), then TTL 4, which covers the holder: 3 relays (the
// answering holder does not relay) plus a 3-hop reply. Each ring is
// charged exactly once, and the successful final ring is not
// double-counted: 1 + 2 + 3 query relays and 3 reply hops, 9 messages
// total.
func TestExpandingRingAccountingHandComputed(t *testing.T) {
	net := lineNet()
	d := NewDirectory(net.N())
	d.Place(7, 3)
	var rec manet.Counters
	r := DiscoverExpandingRingR(net, &rec, d, 0, 7)
	if !r.Found || r.Holder != 3 || r.PathHops != 3 {
		t.Fatalf("result = %+v, want holder 3 at 3 hops", r)
	}
	if r.Messages != 9 {
		t.Errorf("Messages = %d, want 9 (rings 1+2+3 + reply 3)", r.Messages)
	}
	if q := rec.Get(manet.CatQuery); q != 6 {
		t.Errorf("CatQuery = %d, want 6 (1+2+3, each ring charged once)", q)
	}
	if p := rec.Get(manet.CatReply); p != 3 {
		t.Errorf("CatReply = %d, want 3 (one reply along the route)", p)
	}
	// The recorder and the result must agree — the final ring's relays
	// and the reply appear in both exactly once.
	if total := rec.Total(); total != r.Messages {
		t.Errorf("recorder total %d != result messages %d", total, r.Messages)
	}
}

// TestExpandingRingDeadSearchAccountingHandComputed pins the escalation
// cost when no holder is reachable: the full doubling schedule runs over
// src's 4-node component. Rings TTL 1, 2 charge 1 and 2 relays; every
// ring from TTL 4 up covers the whole component (4 relays each, the
// TTL-less terminal flood included): 1+2+4+4+4+4+4 = 23, all CatQuery.
func TestExpandingRingDeadSearchAccountingHandComputed(t *testing.T) {
	net := lineNet()
	d := NewDirectory(net.N())
	d.Place(7, 4) // only holder is the isolated node
	var rec manet.Counters
	r := DiscoverExpandingRingR(net, &rec, d, 0, 7)
	if r.Found || r.PathHops != -1 {
		t.Fatalf("result = %+v, want failed search", r)
	}
	if r.Messages != 23 {
		t.Errorf("Messages = %d, want 23 (1+2+4+4+4+4+4)", r.Messages)
	}
	if q := rec.Get(manet.CatQuery); q != 23 {
		t.Errorf("CatQuery = %d, want 23", q)
	}
	if p := rec.Get(manet.CatReply); p != 0 {
		t.Errorf("CatReply = %d, want 0 (no reply on a dead search)", p)
	}
}

// TestExpandingRingRecorderMatchesResult cross-checks the escalation
// accounting on a realistic topology: for every (src, holder distance)
// the recorder delta equals Result.Messages — rings are never charged
// twice and never dropped.
func TestExpandingRingRecorderMatchesResult(t *testing.T) {
	net := testNet(3, 120)
	d := NewDirectory(net.N())
	d.Place(1, 100)
	for src := 0; src < 40; src++ {
		var rec manet.Counters
		r := DiscoverExpandingRingR(net, &rec, d, NodeID(src), 1)
		if got := rec.Total(); got != r.Messages {
			t.Fatalf("src %d: recorder delta %d != result messages %d (found=%v)",
				src, got, r.Messages, r.Found)
		}
	}
}
