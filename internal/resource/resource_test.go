package resource

import (
	"testing"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

func testNet(seed uint64, n int) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	return manet.New(mobility.NewStatic(pts, area), 50, xrand.New(seed))
}

func testProtocol(t *testing.T, net *manet.Network) *card.Protocol {
	t.Helper()
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	p, err := card.New(net, nb, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p.SelectAll(0)
	return p
}

func TestDirectoryPlacement(t *testing.T) {
	d := NewDirectory(100)
	d.Place(1, 10)
	d.Place(1, 20)
	d.Place(1, 10) // duplicate ignored
	d.Place(2, 10)
	if got := d.Holders(1); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Holders(1) = %v", got)
	}
	if got := d.Hosted(10); len(got) != 2 {
		t.Errorf("Hosted(10) = %v", got)
	}
	if d.Resources() != 2 {
		t.Errorf("Resources = %d", d.Resources())
	}
}

func TestPlaceReplicasDistinct(t *testing.T) {
	d := NewDirectory(50)
	d.PlaceReplicas(5, 10, xrand.New(3))
	hs := d.Holders(5)
	if len(hs) != 10 {
		t.Fatalf("placed %d replicas, want 10", len(hs))
	}
	seen := map[NodeID]bool{}
	for _, h := range hs {
		if seen[h] {
			t.Fatal("duplicate holder from PlaceReplicas")
		}
		seen[h] = true
	}
	// Clamps to network size.
	d2 := NewDirectory(5)
	d2.PlaceReplicas(1, 99, xrand.New(4))
	if len(d2.Holders(1)) != 5 {
		t.Errorf("over-replication not clamped: %d", len(d2.Holders(1)))
	}
}

func TestDiscoverUnknownResource(t *testing.T) {
	net := testNet(1, 100)
	p := testProtocol(t, net)
	d := NewDirectory(100)
	if r := DiscoverCARD(p, d, 0, 99); r.Found || r.PathHops != -1 {
		t.Errorf("unknown resource found: %+v", r)
	}
	if r := DiscoverFlood(net, d, 0, 99); r.Found {
		t.Errorf("flood found unknown resource: %+v", r)
	}
}

func TestDiscoverSelfHolder(t *testing.T) {
	net := testNet(2, 100)
	p := testProtocol(t, net)
	d := NewDirectory(100)
	d.Place(1, 5)
	r := DiscoverCARD(p, d, 5, 1)
	if !r.Found || r.Holder != 5 || r.PathHops != 0 || r.Messages != 0 {
		t.Errorf("self-holder = %+v", r)
	}
}

func TestDiscoverNeighborhoodHolderIsFree(t *testing.T) {
	net := testNet(3, 200)
	p := testProtocol(t, net)
	nb := p.Neighborhood()
	src := NodeID(0)
	members := nb.Set(src).Slice()
	if len(members) < 2 {
		t.Skip("isolated source")
	}
	holder := NodeID(members[len(members)-1])
	d := NewDirectory(200)
	d.Place(7, holder)
	r := DiscoverCARD(p, d, src, 7)
	if !r.Found || r.Messages != 0 {
		t.Errorf("neighborhood discovery = %+v, want free hit", r)
	}
	if r.PathHops != nb.Dist(src, holder) {
		t.Errorf("PathHops = %d, want %d", r.PathHops, nb.Dist(src, holder))
	}
}

func TestDiscoverPicksNearestNeighborhoodHolder(t *testing.T) {
	net := testNet(4, 200)
	p := testProtocol(t, net)
	nb := p.Neighborhood()
	src := NodeID(0)
	members := nb.Set(src).Slice()
	if len(members) < 3 {
		t.Skip("source neighborhood too small")
	}
	var near, far NodeID = -1, -1
	for _, m := range members {
		mm := NodeID(m)
		if mm == src {
			continue
		}
		if nb.Dist(src, mm) == 1 && near < 0 {
			near = mm
		}
		if nb.Dist(src, mm) == 3 {
			far = mm
		}
	}
	if near < 0 || far < 0 {
		t.Skip("no 1-hop/3-hop pair available")
	}
	d := NewDirectory(200)
	d.Place(9, far)
	d.Place(9, near)
	r := DiscoverCARD(p, d, src, 9)
	if !r.Found || r.Holder != near {
		t.Errorf("nearest holder not preferred: %+v (near=%d far=%d)", r, near, far)
	}
}

func TestReplicationImprovesCARDDiscovery(t *testing.T) {
	net := testNet(5, 300)
	p := testProtocol(t, net)
	found1, found8 := 0, 0
	var msgs1, msgs8 int64
	for trial := 0; trial < 30; trial++ {
		rng := xrand.New(uint64(trial))
		d1 := NewDirectory(300)
		d1.PlaceReplicas(1, 1, rng)
		d8 := NewDirectory(300)
		d8.PlaceReplicas(1, 8, rng.Derive(1))
		src := NodeID(rng.Intn(300))
		r1 := DiscoverCARD(p, d1, src, 1)
		r8 := DiscoverCARD(p, d8, src, 1)
		if r1.Found {
			found1++
			msgs1 += r1.Messages
		}
		if r8.Found {
			found8++
			msgs8 += r8.Messages
		}
	}
	if found8 < found1 {
		t.Errorf("8 replicas found %d times, 1 replica %d times", found8, found1)
	}
}

func TestDiscoverFloodFindsNearest(t *testing.T) {
	net := testNet(6, 300)
	d := NewDirectory(300)
	comp := net.Graph().LargestComponent()
	if len(comp) < 50 {
		t.Skip("network too fragmented")
	}
	src := comp[0]
	bfs := net.Graph().BFS(src)
	// Place two holders at different distances within the component.
	var nearH, farH NodeID = -1, -1
	for _, v := range comp {
		d := bfs.Dist[v]
		if d == 2 && nearH < 0 {
			nearH = v
		}
		if d >= 6 && farH < 0 {
			farH = v
		}
	}
	if nearH < 0 || farH < 0 {
		t.Skip("could not place holders at distinct distances")
	}
	d.Place(3, farH)
	d.Place(3, nearH)
	r := DiscoverFlood(net, d, src, 3)
	if !r.Found || r.Holder != nearH {
		t.Errorf("flood holder = %+v, want nearest %d", r, nearH)
	}
	if r.PathHops != 2 {
		t.Errorf("PathHops = %d, want 2", r.PathHops)
	}
}

func TestExpandingRingCheaperThanFloodForNearHolder(t *testing.T) {
	netA := testNet(7, 300)
	netB := testNet(7, 300)
	comp := netA.Graph().LargestComponent()
	src := comp[0]
	bfs := netA.Graph().BFS(src)
	var holder NodeID = -1
	for _, v := range comp {
		if bfs.Dist[v] == 2 {
			holder = v
			break
		}
	}
	if holder < 0 {
		t.Skip("no 2-hop holder")
	}
	d := NewDirectory(300)
	d.Place(4, holder)
	ring := DiscoverExpandingRing(netA, d, src, 4)
	full := DiscoverFlood(netB, d, src, 4)
	if !ring.Found || !full.Found {
		t.Fatal("both should find the holder")
	}
	if ring.Messages >= full.Messages {
		t.Errorf("ring (%d msgs) not cheaper than flood (%d) for 2-hop holder",
			ring.Messages, full.Messages)
	}
}

func TestDiscoverUnreachableHolder(t *testing.T) {
	// Two components: holder in the other one.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 500, Y: 500}}
	a := geom.Rect{W: 600, H: 600}
	net := manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	cfg := card.Config{R: 2, MaxContactDist: 6, NoC: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	p, err := card.New(net, nb, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirectory(3)
	d.Place(1, 2)
	if r := DiscoverCARD(p, d, 0, 1); r.Found {
		t.Errorf("found unreachable holder: %+v", r)
	}
	if r := DiscoverFlood(net, d, 0, 1); r.Found {
		t.Errorf("flood found unreachable holder: %+v", r)
	}
	if r := DiscoverExpandingRing(net, d, 0, 1); r.Found {
		t.Errorf("ring found unreachable holder: %+v", r)
	}
}
