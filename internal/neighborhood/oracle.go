package neighborhood

import (
	"card/internal/bitset"
	"card/internal/manet"
	"card/internal/par"
	"card/internal/topology"
)

// Oracle provides the converged R-hop neighborhood view over the network's
// current topology snapshot. Views are computed lazily per node and cached
// until the network epoch changes, so mobile simulations pay only for the
// nodes actually queried between refreshes.
type Oracle struct {
	net *manet.Network
	r   int

	epoch uint64
	views []*oracleView // indexed by node, nil = not yet computed this epoch
}

type oracleView struct {
	bfs   *topology.BFSResult
	set   *bitset.Set
	edges []NodeID
}

// NewOracle creates an oracle neighborhood provider with radius r over net.
func NewOracle(net *manet.Network, r int) *Oracle {
	if r < 1 {
		panic("neighborhood: radius must be >= 1")
	}
	return &Oracle{
		net:   net,
		r:     r,
		epoch: net.Epoch(),
		views: make([]*oracleView, net.N()),
	}
}

// R implements Provider.
func (o *Oracle) R() int { return o.r }

// invalidate drops cached views if the topology moved on.
func (o *Oracle) invalidate() {
	if e := o.net.Epoch(); e != o.epoch {
		o.epoch = e
		for i := range o.views {
			o.views[i] = nil
		}
	}
}

// compute builds u's view from the current snapshot (pure read of the
// graph; safe to run concurrently for distinct nodes).
func (o *Oracle) compute(u NodeID) *oracleView {
	g := o.net.Graph()
	bfs := g.BoundedBFS(u, o.r)
	set := bitset.New(g.N())
	var edges []NodeID
	for _, w := range bfs.Visited {
		set.Add(int(w))
		if int(bfs.Dist[w]) == o.r {
			edges = append(edges, w)
		}
	}
	return &oracleView{bfs: bfs, set: set, edges: edges}
}

func (o *Oracle) view(u NodeID) *oracleView {
	o.invalidate()
	if v := o.views[u]; v != nil {
		return v
	}
	v := o.compute(u)
	o.views[u] = v
	return v
}

// WarmAll implements Warmer: it materializes every node's view for the
// current snapshot, fanning the per-node BFS across workers. Afterwards
// Set/Contains/Dist/Route/EdgeNodes are pure reads until the next epoch.
func (o *Oracle) WarmAll() {
	o.invalidate()
	par.Do(len(o.views), func(i int) {
		if o.views[i] == nil {
			o.views[i] = o.compute(NodeID(i))
		}
	})
}

// Set implements Provider.
func (o *Oracle) Set(u NodeID) *bitset.Set { return o.view(u).set }

// Contains implements Provider.
func (o *Oracle) Contains(u, x NodeID) bool { return o.view(u).set.Contains(int(x)) }

// Dist implements Provider.
func (o *Oracle) Dist(u, x NodeID) int {
	v := o.view(u)
	if !v.set.Contains(int(x)) {
		return -1
	}
	return int(v.bfs.Dist[x])
}

// Route implements Provider.
func (o *Oracle) Route(u, x NodeID) []NodeID {
	v := o.view(u)
	if !v.set.Contains(int(x)) {
		return nil
	}
	return v.bfs.PathTo(x)
}

// EdgeNodes implements Provider.
func (o *Oracle) EdgeNodes(u NodeID) []NodeID { return o.view(u).edges }

var (
	_ Provider = (*Oracle)(nil)
	_ Warmer   = (*Oracle)(nil)
)
