package neighborhood

import (
	"card/internal/bitset"
	"card/internal/manet"
	"card/internal/topology"
)

// Oracle provides the converged R-hop neighborhood view over the network's
// current topology snapshot. Views are computed lazily per node and cached
// until the network epoch changes, so mobile simulations pay only for the
// nodes actually queried between refreshes.
type Oracle struct {
	net *manet.Network
	r   int

	epoch uint64
	views []*oracleView // indexed by node, nil = not yet computed this epoch
}

type oracleView struct {
	bfs   *topology.BFSResult
	set   *bitset.Set
	edges []NodeID
}

// NewOracle creates an oracle neighborhood provider with radius r over net.
func NewOracle(net *manet.Network, r int) *Oracle {
	if r < 1 {
		panic("neighborhood: radius must be >= 1")
	}
	return &Oracle{
		net:   net,
		r:     r,
		epoch: net.Epoch(),
		views: make([]*oracleView, net.N()),
	}
}

// R implements Provider.
func (o *Oracle) R() int { return o.r }

func (o *Oracle) view(u NodeID) *oracleView {
	if e := o.net.Epoch(); e != o.epoch {
		o.epoch = e
		for i := range o.views {
			o.views[i] = nil
		}
	}
	if v := o.views[u]; v != nil {
		return v
	}
	g := o.net.Graph()
	bfs := g.BoundedBFS(u, o.r)
	set := bitset.New(g.N())
	var edges []NodeID
	for _, w := range bfs.Visited {
		set.Add(int(w))
		if int(bfs.Dist[w]) == o.r {
			edges = append(edges, w)
		}
	}
	v := &oracleView{bfs: bfs, set: set, edges: edges}
	o.views[u] = v
	return v
}

// Set implements Provider.
func (o *Oracle) Set(u NodeID) *bitset.Set { return o.view(u).set }

// Contains implements Provider.
func (o *Oracle) Contains(u, x NodeID) bool { return o.view(u).set.Contains(int(x)) }

// Dist implements Provider.
func (o *Oracle) Dist(u, x NodeID) int {
	v := o.view(u)
	if !v.set.Contains(int(x)) {
		return -1
	}
	return int(v.bfs.Dist[x])
}

// Route implements Provider.
func (o *Oracle) Route(u, x NodeID) []NodeID {
	v := o.view(u)
	if !v.set.Contains(int(x)) {
		return nil
	}
	return v.bfs.PathTo(x)
}

// EdgeNodes implements Provider.
func (o *Oracle) EdgeNodes(u NodeID) []NodeID { return o.view(u).edges }

var _ Provider = (*Oracle)(nil)
