package neighborhood

import (
	"slices"
	"sync"

	"card/internal/manet"
	"card/internal/par"
	"card/internal/topology"
)

// Oracle provides the converged R-hop neighborhood view over the network's
// current topology snapshot. Views are computed lazily per node and cached
// until the network epoch changes, so mobile simulations pay only for the
// nodes actually queried between refreshes.
//
// # Compact views
//
// A view stores only the ball it describes — sorted member ids with
// parallel distance and BFS-parent columns — never an N-sized array. At
// 100k nodes the old representation (full BFS Dist/Parent arrays plus an
// N-bit membership set per view) would have cost ~800 KB per node, ~80 GB
// warm; the compact view is O(|ball|), a few KB. Lookups binary-search the
// member column; routes are reconstructed by chaining parents.
//
// # Retention across refreshes
//
// By default every refresh (epoch bump) invalidates every view. Engines
// running dirty-set maintenance instead call Retain with the set of nodes
// whose R-ball may have changed, keeping all other views alive across the
// refresh. The views kept are bit-identical to freshly computed ones: a
// view depends only on the subgraph within R hops of its node, so it can
// only change if some adjacency list inside that ball changed — and any
// such node is within R hops of an adjacency-changed node along a path
// that survives in both snapshots, so the caller's R-expansion of the
// adjacency diff provably covers it.
type Oracle struct {
	net *manet.Network
	r   int

	epoch uint64
	views []*oracleView // indexed by node, nil = not yet computed this epoch

	// missing tracks which views WarmAll still has to materialize, so a
	// warm call after Retain costs O(dropped), never an O(N) nil sweep.
	// allMissing covers the epoch-wipe / initial state where every view is
	// absent; when it is false, missing is a superset of the nil views
	// (on-demand computes fill a view without delisting it; duplicates
	// from repeated drops are compacted before the warm fan-out).
	missing    []NodeID
	allMissing bool

	// scratch pools the per-BFS stamp arrays: view computation runs from
	// WarmAll's worker fan-out, and the scratch contents never influence
	// the (purely graph-determined) view, so pooling is determinism-safe.
	scratch sync.Pool
}

// oracleView is one node's R-ball in structure-of-arrays form: members is
// sorted ascending, and dist/parent are parallel to it. edges lists the
// members at exactly R hops in BFS discovery order (the order the old
// full-array implementation produced, which the contact-selection shuffle
// seeds against).
type oracleView struct {
	members []NodeID
	dist    []uint8
	parent  []NodeID
	edges   []NodeID
}

// find returns the members index of x, or -1.
func (v *oracleView) find(x NodeID) int {
	i, ok := slices.BinarySearch(v.members, x)
	if !ok {
		return -1
	}
	return i
}

// oracleScratch is the reusable BFS workspace: generation-stamped visit
// markers plus full-size distance/parent columns, compacted into the
// O(ball) view on completion.
type oracleScratch struct {
	stamp  []uint64
	gen    uint64
	dist   []uint8
	parent []NodeID
	order  []NodeID // BFS discovery order; doubles as the queue
}

// NewOracle creates an oracle neighborhood provider with radius r over net.
func NewOracle(net *manet.Network, r int) *Oracle {
	if r < 1 {
		panic("neighborhood: radius must be >= 1")
	}
	if r > 255 {
		panic("neighborhood: radius exceeds uint8 distance column")
	}
	o := &Oracle{
		net:        net,
		r:          r,
		epoch:      net.Epoch(),
		views:      make([]*oracleView, net.N()),
		allMissing: true,
	}
	n := net.N()
	o.scratch.New = func() any {
		return &oracleScratch{
			stamp:  make([]uint64, n),
			dist:   make([]uint8, n),
			parent: make([]NodeID, n),
		}
	}
	return o
}

// R implements Provider.
func (o *Oracle) R() int { return o.r }

// invalidate drops cached views if the topology moved on.
func (o *Oracle) invalidate() {
	if e := o.net.Epoch(); e != o.epoch {
		o.epoch = e
		for i := range o.views {
			o.views[i] = nil
		}
		o.allMissing = true
		o.missing = o.missing[:0]
	}
}

// Retain advances the oracle to the network's current epoch while keeping
// every view except those of the listed nodes, which are dropped and
// recomputed on next use. Call immediately after a topology refresh,
// before any view is read; changed must include every node whose R-hop
// ball could differ between the two snapshots (the engine derives it by
// R-expanding the builder's adjacency diff — see the type comment for why
// that is sound). Duplicates in changed are harmless.
func (o *Oracle) Retain(changed []NodeID) {
	o.epoch = o.net.Epoch()
	for _, u := range changed {
		if o.views[u] == nil {
			continue // never computed, or already dropped and listed
		}
		o.views[u] = nil
		if !o.allMissing {
			o.missing = append(o.missing, u)
		}
	}
}

// compute builds u's view from the current snapshot (pure read of the
// graph; safe to run concurrently for distinct nodes).
func (o *Oracle) compute(u NodeID) *oracleView {
	s := o.scratch.Get().(*oracleScratch)
	v := computeView(o.net.Graph(), o.r, u, s)
	o.scratch.Put(s)
	return v
}

// computeView runs the R-bounded BFS for u over g into the reusable
// scratch and compacts the result into an O(ball) view. Pure function of
// the graph — every caller (Oracle, ViewCache, any worker) gets the
// bit-identical view for the same snapshot.
func computeView(g *topology.Graph, r int, u NodeID, s *oracleScratch) *oracleView {
	s.gen++
	gen := s.gen
	s.order = s.order[:0]
	s.stamp[u] = gen
	s.dist[u] = 0
	s.parent[u] = topology.None
	s.order = append(s.order, u)
	rr := uint8(r)
	for head := 0; head < len(s.order); head++ {
		x := s.order[head]
		if s.dist[x] == rr {
			continue
		}
		for _, y := range g.Neighbors(x) {
			if s.stamp[y] == gen {
				continue
			}
			s.stamp[y] = gen
			s.dist[y] = s.dist[x] + 1
			s.parent[y] = x
			s.order = append(s.order, y)
		}
	}
	k := len(s.order)
	edgeCount := 0
	for _, v := range s.order {
		if s.dist[v] == rr {
			edgeCount++
		}
	}
	view := &oracleView{
		members: make([]NodeID, k),
		dist:    make([]uint8, k),
		parent:  make([]NodeID, k),
	}
	if edgeCount > 0 {
		view.edges = make([]NodeID, 0, edgeCount)
		// Edge nodes in BFS discovery order, like the old implementation.
		for _, v := range s.order {
			if s.dist[v] == rr {
				view.edges = append(view.edges, v)
			}
		}
	}
	copy(view.members, s.order)
	slices.Sort(view.members)
	for i, v := range view.members {
		view.dist[i] = s.dist[v]
		view.parent[i] = s.parent[v]
	}
	return view
}

func (o *Oracle) view(u NodeID) *oracleView {
	o.invalidate()
	if v := o.views[u]; v != nil {
		return v
	}
	v := o.compute(u)
	o.views[u] = v
	return v
}

// WarmAll implements Warmer: it materializes every missing view for the
// current snapshot, fanning the per-node BFS across workers. Afterwards
// Members/Contains/Dist/Route/EdgeNodes are pure reads until the next
// epoch. Under Retain-driven retention only the dropped views are listed
// and recomputed — the warm call is O(dropped) work AND dispatch, so a
// quiet refresh costs nothing; only an epoch wipe (or the first warm)
// pays the O(N) fan-out.
func (o *Oracle) WarmAll() {
	o.invalidate()
	if o.allMissing {
		par.Do(len(o.views), func(i int) {
			if o.views[i] == nil {
				o.views[i] = o.compute(NodeID(i))
			}
		})
		o.allMissing = false
		o.missing = o.missing[:0]
		return
	}
	if len(o.missing) == 0 {
		return
	}
	// Dedup before the fan-out: a view dropped, recomputed on demand and
	// dropped again is listed twice, and two workers must never race on
	// one slot.
	slices.Sort(o.missing)
	miss := slices.Compact(o.missing)
	par.Do(len(miss), func(i int) {
		if u := miss[i]; o.views[u] == nil {
			o.views[u] = o.compute(u)
		}
	})
	o.missing = o.missing[:0]
}

// Members implements Provider.
func (o *Oracle) Members(u NodeID) []NodeID { return o.view(u).members }

// Contains implements Provider.
func (o *Oracle) Contains(u, x NodeID) bool { return o.view(u).find(x) >= 0 }

// Dist implements Provider.
func (o *Oracle) Dist(u, x NodeID) int {
	v := o.view(u)
	i := v.find(x)
	if i < 0 {
		return -1
	}
	return int(v.dist[i])
}

// Route implements Provider.
func (o *Oracle) Route(u, x NodeID) []NodeID { return o.view(u).route(x) }

// route reconstructs the BFS path to x by chaining parents (nil if x is
// outside the ball).
func (v *oracleView) route(x NodeID) []NodeID {
	i := v.find(x)
	if i < 0 {
		return nil
	}
	d := int(v.dist[i])
	path := make([]NodeID, d+1)
	path[d] = x
	for j := d; j > 0; j-- {
		p := v.parent[i]
		path[j-1] = p
		i = v.find(p)
	}
	return path
}

// EdgeNodes implements Provider.
func (o *Oracle) EdgeNodes(u NodeID) []NodeID { return o.view(u).edges }

var (
	_ Provider = (*Oracle)(nil)
	_ Warmer   = (*Oracle)(nil)
)
