package neighborhood

import (
	"fmt"
	"sync"
	"sync/atomic"

	"card/internal/manet"
)

// ViewCache is the capped-residency neighborhood provider: the same
// R-hop views as Oracle, but at most MaxResident of them materialized at
// once, held in sharded LRU caches and computed on demand. It is the
// memory half of the 1M-node story — a warm Oracle at R=2 over a
// million-node field is gigabytes of resident views, almost all of which
// a restricted maintenance round never reads.
//
// # Determinism
//
// A view is a pure function of the current topology snapshot, and
// lookups perform no accounting — so cache policy (what is resident,
// what was evicted, which goroutine computed a view first) cannot
// influence any simulation result. Every lookup returns bit-identical
// data to a fresh Oracle over the same snapshot; the cross-provider
// equivalence test pins it. Evicted views stay valid for holders of
// their member slices (the arrays are immutable once built; eviction
// only drops the cache's reference).
//
// # Concurrency
//
// Unlike Oracle — which relies on WarmAll pre-materializing every view
// before a worker fan-out — ViewCache is internally synchronized:
// get-or-compute is safe from any number of workers, so it deliberately
// does NOT implement Warmer (warming would re-introduce the per-round
// O(N) sweep; the engine's warm hook skips providers without it). The
// BFS runs outside the stripe lock; racing computes of one view produce
// identical results and the loser's copy is simply dropped.
//
// # Retention
//
// Retain matches Oracle.Retain: drop only the listed views, keep the
// rest across the epoch bump. Without Retain (non-dirty engines), the
// first lookup after a refresh observes the epoch change and wipes every
// stripe.
type ViewCache struct {
	net *manet.Network
	r   int

	// epoch is the network epoch the resident views belong to, advanced
	// by Retain (serial) or by a lock-guarded wipe on first stale read.
	epoch atomic.Uint64

	// wipeMu serializes the stale-epoch wipe so concurrent first readers
	// after an un-Retained refresh wipe exactly once.
	//
	//cardlint:parallel cache-consistency guard; views are pure functions of the snapshot, so lock order cannot alter simulation results
	wipeMu sync.Mutex

	stripes []cacheStripe

	// scratch pools the BFS workspace exactly like Oracle.
	scratch sync.Pool
}

// cacheStripe is one lock shard: nodes map onto stripes by low id bits,
// and each stripe runs an independent LRU over its residents.
type cacheStripe struct {
	//cardlint:parallel stripe guard for the shared view cache; lookups are pure reads of graph-determined data, so contention order is result-neutral
	mu      sync.Mutex
	cap     int
	entries map[NodeID]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // eviction candidate
}

// cacheEntry is an intrusive LRU node.
type cacheEntry struct {
	key        NodeID
	view       *oracleView
	prev, next *cacheEntry
}

// cacheStripeCount shards the cache 64 ways: enough that a full worker
// fan-out rarely collides on a stripe lock, small enough that per-stripe
// LRU capacity stays meaningful.
const cacheStripeCount = 64

// NewViewCache creates a capped on-demand provider with radius r keeping
// at most maxResident views materialized (rounded up to one per stripe).
func NewViewCache(net *manet.Network, r, maxResident int) *ViewCache {
	if r < 1 {
		panic("neighborhood: radius must be >= 1")
	}
	if r > 255 {
		panic("neighborhood: radius exceeds uint8 distance column")
	}
	if maxResident < 1 {
		panic(fmt.Sprintf("neighborhood: non-positive view cache capacity %d", maxResident))
	}
	c := &ViewCache{net: net, r: r, stripes: make([]cacheStripe, cacheStripeCount)}
	perStripe := (maxResident + cacheStripeCount - 1) / cacheStripeCount
	for i := range c.stripes {
		c.stripes[i] = cacheStripe{cap: perStripe, entries: make(map[NodeID]*cacheEntry)}
	}
	c.epoch.Store(net.Epoch())
	n := net.N()
	c.scratch.New = func() any {
		return &oracleScratch{
			stamp:  make([]uint64, n),
			dist:   make([]uint8, n),
			parent: make([]NodeID, n),
		}
	}
	return c
}

// R implements Provider.
func (c *ViewCache) R() int { return c.r }

// sync wipes every stripe once when the network epoch moved on without a
// Retain call. Concurrent readers double-check under wipeMu.
func (c *ViewCache) sync() {
	e := c.net.Epoch()
	if c.epoch.Load() == e {
		return
	}
	c.wipeMu.Lock()
	if c.epoch.Load() != e {
		for i := range c.stripes {
			s := &c.stripes[i]
			s.mu.Lock()
			clear(s.entries)
			s.head, s.tail = nil, nil
			s.mu.Unlock()
		}
		c.epoch.Store(e)
	}
	c.wipeMu.Unlock()
}

// Retain advances the cache to the network's current epoch keeping every
// resident view except the listed nodes' — the same contract as
// Oracle.Retain (see there for why retained views stay bit-identical).
// Serial-only: call from the engine loop right after a refresh, before
// any concurrent reader.
func (c *ViewCache) Retain(changed []NodeID) {
	for _, u := range changed {
		s := c.stripe(u)
		s.mu.Lock()
		if e := s.entries[u]; e != nil {
			s.unlink(e)
			delete(s.entries, u)
		}
		s.mu.Unlock()
	}
	c.epoch.Store(c.net.Epoch())
}

func (c *ViewCache) stripe(u NodeID) *cacheStripe {
	return &c.stripes[int(u)&(cacheStripeCount-1)]
}

// view returns u's view, computing and caching it if absent. Safe for
// concurrent use; the BFS runs outside the stripe lock.
func (c *ViewCache) view(u NodeID) *oracleView {
	c.sync()
	s := c.stripe(u)
	s.mu.Lock()
	if e := s.entries[u]; e != nil {
		s.touch(e)
		v := e.view
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()

	sc := c.scratch.Get().(*oracleScratch)
	v := computeView(c.net.Graph(), c.r, u, sc)
	c.scratch.Put(sc)

	s.mu.Lock()
	if e := s.entries[u]; e != nil {
		// Another worker won the compute race; both views are identical.
		s.touch(e)
		v = e.view
		s.mu.Unlock()
		return v
	}
	e := &cacheEntry{key: u, view: v}
	s.entries[u] = e
	s.pushFront(e)
	if len(s.entries) > s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.entries, lru.key)
	}
	s.mu.Unlock()
	return v
}

func (s *cacheStripe) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheStripe) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheStripe) touch(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Members implements Provider.
func (c *ViewCache) Members(u NodeID) []NodeID { return c.view(u).members }

// Contains implements Provider.
func (c *ViewCache) Contains(u, x NodeID) bool { return c.view(u).find(x) >= 0 }

// Dist implements Provider.
func (c *ViewCache) Dist(u, x NodeID) int {
	v := c.view(u)
	i := v.find(x)
	if i < 0 {
		return -1
	}
	return int(v.dist[i])
}

// Route implements Provider.
func (c *ViewCache) Route(u, x NodeID) []NodeID { return c.view(u).route(x) }

// EdgeNodes implements Provider.
func (c *ViewCache) EdgeNodes(u NodeID) []NodeID { return c.view(u).edges }

var _ Provider = (*ViewCache)(nil)
