package neighborhood

import (
	"reflect"
	"testing"

	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/xrand"
)

// mobileNet builds a random-waypoint network whose refreshes actually move
// edges, so epoch bumps and Retain calls are exercised for real.
func mobileNet(seed uint64, n int) *manet.Network {
	m, err := mobility.NewRandomWaypoint(n, area, mobility.RWPConfig{
		MinSpeed: 5, MaxSpeed: 15, Pause: 0,
	}, xrand.New(seed))
	if err != nil {
		panic(err)
	}
	return manet.New(m, 100, xrand.New(seed+1))
}

// checkProvidersAgree asserts every lookup of the Provider interface is
// bit-identical between the two providers for every (u, x) pair.
func checkProvidersAgree(t *testing.T, a, b Provider, n int) {
	t.Helper()
	for u := NodeID(0); int(u) < n; u++ {
		if got, want := b.Members(u), a.Members(u); !reflect.DeepEqual(got, want) {
			t.Fatalf("Members(%d): %v vs %v", u, got, want)
		}
		if got, want := b.EdgeNodes(u), a.EdgeNodes(u); !reflect.DeepEqual(got, want) {
			t.Fatalf("EdgeNodes(%d): %v vs %v", u, got, want)
		}
		for x := NodeID(0); int(x) < n; x++ {
			if got, want := b.Contains(u, x), a.Contains(u, x); got != want {
				t.Fatalf("Contains(%d,%d): %v vs %v", u, x, got, want)
			}
			if got, want := b.Dist(u, x), a.Dist(u, x); got != want {
				t.Fatalf("Dist(%d,%d): %d vs %d", u, x, got, want)
			}
			if got, want := b.Route(u, x), a.Route(u, x); !reflect.DeepEqual(got, want) {
				t.Fatalf("Route(%d,%d): %v vs %v", u, x, got, want)
			}
		}
	}
}

// TestViewCacheMatchesOracle pins the bit-identical-lookups contract: a
// ViewCache whose capacity forces constant eviction and recompute must
// answer every query exactly like a full-residency Oracle, across
// topology refreshes (epoch wipes) on the same network.
func TestViewCacheMatchesOracle(t *testing.T) {
	const n = 60
	net := mobileNet(7, n)
	o := NewOracle(net, 2)
	// Capacity 1 per stripe: nearly every lookup evicts something.
	c := NewViewCache(net, 2, 1)
	for step := 0; step <= 3; step++ {
		if step > 0 {
			net.RefreshAt(float64(step))
		}
		checkProvidersAgree(t, o, c, n)
	}
}

// TestViewCacheRetain pins the Retain half: after a refresh, retaining
// all-but-changed views (the dirty-engine pattern) must still answer
// bit-identically to a fresh Oracle over the new snapshot — including for
// the retained (not recomputed) entries.
func TestViewCacheRetain(t *testing.T) {
	const n = 40
	net := lineNet(n) // static: empty adjacency diff, so Retain(nil) is sound
	c := NewViewCache(net, 2, n)
	for u := NodeID(0); int(u) < n; u++ {
		c.Members(u) // materialize everything
	}
	net.RefreshAt(1) // epoch bump, no movement
	c.Retain(nil)
	fresh := NewOracle(net, 2)
	checkProvidersAgree(t, fresh, c, n)

	// Dropping a subset must recompute exactly those on demand.
	net.RefreshAt(2)
	c.Retain([]NodeID{3, 17, 17, 31}) // duplicates are harmless
	checkProvidersAgree(t, NewOracle(net, 2), c, n)
}

// TestViewCacheCapacity pins the residency bound: the cache never holds
// more than its per-stripe caps allow, however many views are touched.
func TestViewCacheCapacity(t *testing.T) {
	const n = 500
	net := randomNet(3, n, 80)
	const cap = 64 // one entry per stripe
	c := NewViewCache(net, 2, cap)
	for u := NodeID(0); int(u) < n; u++ {
		c.Members(u)
	}
	resident := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		if len(s.entries) > s.cap {
			t.Fatalf("stripe %d holds %d entries, cap %d", i, len(s.entries), s.cap)
		}
		resident += len(s.entries)
	}
	if resident > cap {
		t.Fatalf("%d resident views, cap %d", resident, cap)
	}
}

// TestViewCacheIsNotAWarmer documents the deliberate contract: warming a
// capped cache would reintroduce the per-round O(N) sweep, so the engine's
// warm hook must skip it.
func TestViewCacheIsNotAWarmer(t *testing.T) {
	var p Provider = NewViewCache(lineNet(4), 1, 8)
	if _, ok := p.(Warmer); ok {
		t.Fatal("ViewCache implements Warmer; on-demand compute must not be pre-warmed")
	}
}
