// Package neighborhood implements the R-hop proactive zone that every CARD
// node maintains: "each node proactively (using a protocol such as DSDV)
// maintains state for all the nodes in its neighborhood" (§III.C).
//
// Two providers are offered:
//
//   - [Oracle] — the converged view: R-hop BFS over the current topology
//     snapshot, cached per network epoch. This matches how the paper's
//     analysis treats the neighborhood (its overhead metrics deliberately
//     exclude proactive-update traffic), and is the default for experiment
//     runs.
//   - [DSDV] — an actual scoped destination-sequenced distance-vector
//     protocol: per-destination sequence numbers, periodic full dumps,
//     triggered updates on link breaks, hop-limited to R. It exists to
//     demonstrate and test the substrate end to end; on a static network it
//     provably converges to the Oracle view.
package neighborhood

import (
	"card/internal/topology"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Provider is the neighborhood view CARD consumes.
//
// By convention a node is a member of its own neighborhood (distance 0);
// this makes reachability unions self-consistent.
type Provider interface {
	// R returns the neighborhood radius in hops.
	R() int
	// Members returns the nodes of u's neighborhood (u included), sorted
	// ascending by id. The slice is owned by the provider and valid until
	// the next topology refresh or substrate round; callers must not
	// mutate it. Membership is O(ball), never O(N): at 100k nodes a view
	// is a few hundred entries, which is why the interface trades the old
	// N-bit set for a dense sorted list.
	Members(u NodeID) []NodeID
	// Contains reports whether x lies in u's neighborhood.
	Contains(u, x NodeID) bool
	// Dist returns the hop distance from u to x if x is in u's
	// neighborhood, else -1.
	Dist(u, x NodeID) int
	// Route returns an intra-neighborhood route u→x inclusive of both
	// endpoints, or nil if x is outside u's neighborhood.
	Route(u, x NodeID) []NodeID
	// EdgeNodes returns the nodes at exactly R hops from u ("edge nodes"
	// in the paper). The slice is owned by the provider; do not mutate.
	EdgeNodes(u NodeID) []NodeID
}

// Warmer is implemented by providers whose per-node views are computed
// lazily (and therefore mutate internal caches on first read). WarmAll
// materializes every node's view for the current topology snapshot, after
// which the Provider's read methods are safe to call from multiple
// goroutines until the next topology refresh or protocol round. The
// engine's batch query fan-out warms providers before going parallel.
type Warmer interface {
	WarmAll()
}

// Overlaps reports whether the neighborhoods of a and b intersect — the
// paper's overlap predicate between a candidate contact and the source (or
// a previously selected contact). The sorted member lists are merged
// directly, O(|ball(a)|+|ball(b)|), independent of network size.
func Overlaps(p Provider, a, b NodeID) bool {
	x, y := p.Members(a), p.Members(b)
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			return true
		}
	}
	return false
}
