package neighborhood

import (
	"testing"
	"testing/quick"

	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

// lineNet builds n nodes 10 m apart on a line with 15 m range (path graph).
func lineNet(n int) *manet.Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	return manet.New(mobility.NewStatic(pts, geom.Rect{W: float64(n) * 10, H: 10}), 15, xrand.New(1))
}

func randomNet(seed uint64, n int, txRange float64) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	return manet.New(mobility.NewStatic(pts, area), txRange, xrand.New(seed+1))
}

func TestOracleRadiusValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("radius 0 did not panic")
		}
	}()
	NewOracle(lineNet(3), 0)
}

func TestOracleNeighborhoodOnPath(t *testing.T) {
	net := lineNet(10)
	o := NewOracle(net, 3)
	if o.R() != 3 {
		t.Fatalf("R = %d", o.R())
	}
	members := o.Members(0)
	// Node 0's 3-hop neighborhood on a path: {0,1,2,3}.
	if got := len(members); got != 4 {
		t.Fatalf("neighborhood size = %d, want 4 (%v)", got, members)
	}
	for x := 0; x <= 3; x++ {
		if !o.Contains(0, NodeID(x)) {
			t.Errorf("Contains(0,%d) = false", x)
		}
		if got := o.Dist(0, NodeID(x)); got != x {
			t.Errorf("Dist(0,%d) = %d, want %d", x, got, x)
		}
	}
	if o.Contains(0, 4) {
		t.Error("Contains(0,4) = true beyond radius")
	}
	if o.Dist(0, 4) != -1 {
		t.Error("Dist beyond radius must be -1")
	}
}

func TestOracleSelfMembership(t *testing.T) {
	o := NewOracle(lineNet(5), 2)
	for u := NodeID(0); u < 5; u++ {
		if !o.Contains(u, u) {
			t.Errorf("node %d not in its own neighborhood", u)
		}
		if o.Dist(u, u) != 0 {
			t.Errorf("Dist(%d,%d) != 0", u, u)
		}
	}
}

func TestOracleEdgeNodes(t *testing.T) {
	net := lineNet(10)
	o := NewOracle(net, 3)
	// Node 5's edge nodes at exactly 3 hops: {2, 8}.
	edges := o.EdgeNodes(5)
	if len(edges) != 2 {
		t.Fatalf("EdgeNodes(5) = %v", edges)
	}
	seen := map[NodeID]bool{}
	for _, e := range edges {
		seen[e] = true
	}
	if !seen[2] || !seen[8] {
		t.Errorf("EdgeNodes(5) = %v, want {2 8}", edges)
	}
	// Node 0 near the end: only node 3 is at exactly 3 hops.
	if e0 := o.EdgeNodes(0); len(e0) != 1 || e0[0] != 3 {
		t.Errorf("EdgeNodes(0) = %v, want [3]", e0)
	}
}

func TestOracleRoute(t *testing.T) {
	net := lineNet(8)
	o := NewOracle(net, 4)
	route := o.Route(1, 5)
	want := []NodeID{1, 2, 3, 4, 5}
	if len(route) != len(want) {
		t.Fatalf("Route(1,5) = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("Route(1,5) = %v, want %v", route, want)
		}
	}
	if o.Route(1, 7) != nil {
		t.Error("Route beyond radius must be nil")
	}
	if r := o.Route(2, 2); len(r) != 1 || r[0] != 2 {
		t.Errorf("Route(u,u) = %v", r)
	}
}

func TestOracleMatchesBoundedBFS(t *testing.T) {
	net := randomNet(33, 200, 50)
	o := NewOracle(net, 3)
	g := net.Graph()
	for u := NodeID(0); int(u) < g.N(); u += 17 {
		bfs := g.BoundedBFS(u, 3)
		for v := NodeID(0); int(v) < g.N(); v++ {
			wantIn := bfs.Dist[v] >= 0
			if o.Contains(u, v) != wantIn {
				t.Fatalf("Contains(%d,%d) = %v, BFS says %v", u, v, !wantIn, wantIn)
			}
			if wantIn && o.Dist(u, v) != int(bfs.Dist[v]) {
				t.Fatalf("Dist(%d,%d) = %d, BFS %d", u, v, o.Dist(u, v), bfs.Dist[v])
			}
		}
	}
}

func TestOracleCacheInvalidationOnRefresh(t *testing.T) {
	// Two nodes that drift apart: neighborhood must shrink after refresh.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	m, err := mobility.NewRandomWalk(pts, geom.Rect{W: 1000, H: 10}, 50, 100, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	net := manet.New(m, 15, xrand.New(6))
	o := NewOracle(net, 2)
	before := len(o.Members(0))
	// Walk them for a while; with 50 m/s in a 1000 m corridor they will
	// separate beyond 15 m at some refresh.
	for i := 1; i <= 50; i++ {
		net.RefreshAt(float64(i))
		if len(o.Members(0)) != before {
			return // cache refreshed and view changed: success
		}
	}
	t.Error("oracle view never changed despite mobility")
}

func TestOverlapsPredicate(t *testing.T) {
	net := lineNet(12)
	o := NewOracle(net, 2)
	// Neighborhood(0) = {0..2}, neighborhood(3) = {1..5}: overlap.
	if !Overlaps(o, 0, 3) {
		t.Error("Overlaps(0,3) = false, want true")
	}
	// Neighborhood(0) = {0..2}, neighborhood(6) = {4..8}: disjoint.
	if Overlaps(o, 0, 6) {
		t.Error("Overlaps(0,6) = true, want false")
	}
}

func TestQuickOracleRoutesAreValidPaths(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		net := randomNet(seed, 80+rng.Intn(60), 60)
		o := NewOracle(net, 3)
		g := net.Graph()
		for probe := 0; probe < 20; probe++ {
			u := NodeID(rng.Intn(g.N()))
			members := o.Members(u)
			x := members[rng.Intn(len(members))]
			route := o.Route(u, x)
			if route == nil || route[0] != u || route[len(route)-1] != x {
				return false
			}
			if len(route)-1 != o.Dist(u, x) {
				return false
			}
			for i := 0; i+1 < len(route); i++ {
				if !g.Adjacent(route[i], route[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgeNodesAtExactlyR(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		net := randomNet(seed, 100, 55)
		r := 1 + rng.Intn(4)
		o := NewOracle(net, r)
		for probe := 0; probe < 10; probe++ {
			u := NodeID(rng.Intn(net.N()))
			for _, e := range o.EdgeNodes(u) {
				if o.Dist(u, e) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
