package neighborhood

import (
	"fmt"
	"sort"

	"card/internal/eventq"
	"card/internal/manet"
	"card/internal/par"
)

// DSDVConfig parameterizes the scoped distance-vector protocol.
type DSDVConfig struct {
	// Period is the full-dump interval in seconds (default 1).
	Period float64
	// ExpireAfter is the soft-state lifetime of a route entry in seconds;
	// entries not refreshed within it are purged. This is how destinations
	// that drift beyond R hops (without any link on the old path breaking)
	// leave the neighborhood. Default 3×Period.
	ExpireAfter float64
	// TriggeredUpdates, when true (default via DefaultDSDV), broadcasts
	// broken-route advertisements immediately on link-break detection
	// instead of waiting for the next periodic dump.
	TriggeredUpdates bool
}

// DefaultDSDV returns the configuration used by the examples: 1 s dumps,
// 3 s expiry, triggered updates on.
func DefaultDSDV() DSDVConfig {
	return DSDVConfig{Period: 1, ExpireAfter: 3, TriggeredUpdates: true}
}

func (c *DSDVConfig) fill() error {
	if c.Period == 0 {
		c.Period = 1
	}
	if c.Period < 0 {
		return fmt.Errorf("neighborhood: negative DSDV period %v", c.Period)
	}
	if c.ExpireAfter == 0 {
		c.ExpireAfter = 3 * c.Period
	}
	if c.ExpireAfter < c.Period {
		return fmt.Errorf("neighborhood: ExpireAfter %v shorter than Period %v", c.ExpireAfter, c.Period)
	}
	return nil
}

// dsdvEntry is one routing-table row: destination-sequenced distance vector
// per Perkins & Bhagwat. Even sequence numbers mark reachable routes; odd
// ones mark breaks, so that "route died" news outruns stale good news.
type dsdvEntry struct {
	metric  int32 // hops to dest; broken == infinity (represented r+1)
	next    NodeID
	seq     uint32
	touched float64 // last refresh time, for soft-state expiry
}

// DSDV is a hop-limited destination-sequenced distance-vector protocol: the
// proactive intra-neighborhood substrate the paper assumes. Every node
// periodically broadcasts its table (entries with metric < R); receivers
// adopt fresher-sequence or shorter-equal-sequence routes. Link breaks
// detected at topology refresh raise the destination sequence to an odd
// value and (optionally) trigger an immediate advertisement.
type DSDV struct {
	net *manet.Network
	r   int
	cfg DSDVConfig

	now       float64
	tables    []map[NodeID]*dsdvEntry
	ownSeq    []uint32
	neighbors []map[NodeID]struct{} // last observed neighbor sets

	// Per-node caches for the Provider facade, invalidated on any table
	// mutation of the owning node: sorted member lists plus the R-hop edge
	// subset, matching the Provider contract.
	dirty   []bool
	members [][]NodeID
	edges   [][]NodeID
}

// NewDSDV creates the protocol instance over net with radius r. Call Start
// to schedule its periodic behavior on an event queue, or drive it manually
// with Round / DetectBreaks in tests.
func NewDSDV(net *manet.Network, r int, cfg DSDVConfig) (*DSDV, error) {
	if r < 1 {
		return nil, fmt.Errorf("neighborhood: radius %d < 1", r)
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := net.N()
	d := &DSDV{
		net:       net,
		r:         r,
		cfg:       cfg,
		tables:    make([]map[NodeID]*dsdvEntry, n),
		ownSeq:    make([]uint32, n),
		neighbors: make([]map[NodeID]struct{}, n),
		dirty:     make([]bool, n),
		members:   make([][]NodeID, n),
		edges:     make([][]NodeID, n),
	}
	for i := 0; i < n; i++ {
		d.tables[i] = map[NodeID]*dsdvEntry{
			NodeID(i): {metric: 0, next: NodeID(i), seq: 0},
		}
		d.neighbors[i] = make(map[NodeID]struct{})
		d.dirty[i] = true
		d.observeNeighbors(NodeID(i))
	}
	return d, nil
}

// R implements Provider.
func (d *DSDV) R() int { return d.r }

func (d *DSDV) observeNeighbors(u NodeID) {
	set := d.neighbors[u]
	clear(set)
	for _, v := range d.net.Neighbors(u) {
		set[v] = struct{}{}
	}
}

// Start schedules the periodic full dumps of all nodes on q. Dumps are
// staggered uniformly across the first period so the network does not
// synchronize, mirroring real deployments.
func (d *DSDV) Start(q *eventq.Queue) {
	n := d.net.N()
	for i := 0; i < n; i++ {
		u := NodeID(i)
		offset := d.net.Rng().Range(0, d.cfg.Period)
		q.Every(offset, d.cfg.Period, func(now float64) {
			d.now = now
			d.dump(u, false)
		})
	}
}

// Round performs one synchronous full-dump round (every node advertises
// once, in id order) at time now. Convenient for tests and for converging a
// static network: R rounds always suffice.
func (d *DSDV) Round(now float64) {
	d.now = now
	for i := 0; i < d.net.N(); i++ {
		d.dump(NodeID(i), false)
	}
}

// Converge runs rounds until no table changes, up to maxRounds. It returns
// the number of rounds executed. Intended for static networks.
func (d *DSDV) Converge(now float64, maxRounds int) int {
	for round := 1; round <= maxRounds; round++ {
		before := d.tableFingerprint()
		d.Round(now)
		if d.tableFingerprint() == before {
			return round
		}
	}
	return maxRounds
}

// tableFingerprint summarizes the route structure (dest, metric, next hop)
// of all tables for convergence detection. Sequence numbers and timestamps
// are deliberately excluded: they advance every round even at the fixed
// point.
func (d *DSDV) tableFingerprint() uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for u, tab := range d.tables {
		mix(uint64(u) + 1)
		// Order-independent accumulation: XOR of per-entry hashes.
		var acc uint64
		//cardlint:ordered commutative XOR accumulation; visit order cannot reach the hash
		for dst, e := range tab {
			eh := uint64(dst+1)*0x9e3779b97f4a7c15 ^ uint64(e.metric+1)*0xc2b2ae3d27d4eb4f ^ uint64(e.next+2)
			acc ^= eh
		}
		mix(acc)
	}
	return h
}

// dump broadcasts u's table to its current neighbors. brokenOnly restricts
// the advertisement to infinite-metric entries (triggered update).
func (d *DSDV) dump(u NodeID, brokenOnly bool) {
	tab := d.tables[u]
	if !brokenOnly {
		// A periodic dump advertises a fresh own sequence number.
		d.ownSeq[u] += 2
		own := tab[u]
		own.seq = d.ownSeq[u]
		own.touched = d.now
	}
	d.net.Broadcast(manet.CatDSDV)
	inf := int32(d.r + 1)
	for _, v := range d.net.Neighbors(u) {
		//cardlint:ordered each advertised entry mutates only the receiver's row for its own dst; rows are disjoint and reads never cross entries
		for dst, e := range tab {
			if e.metric >= inf {
				// Broken routes are always advertised (metric stays
				// infinite, odd sequence).
				d.receive(v, u, dst, inf, e.seq)
				continue
			}
			if brokenOnly {
				continue
			}
			if int(e.metric) < d.r { // metric+1 must stay within scope
				d.receive(v, u, dst, e.metric+1, e.seq)
			}
		}
	}
	d.expire(u)
}

// receive applies one advertised route (dst reachable via from at metric m,
// sequence seq) to v's table.
func (d *DSDV) receive(v, from, dst NodeID, m int32, seq uint32) {
	if dst == v {
		return // never override the self route
	}
	tab := d.tables[v]
	inf := int32(d.r + 1)
	e, ok := tab[dst]
	if !ok {
		if m >= inf {
			return // no point learning a dead route to an unknown dest
		}
		tab[dst] = &dsdvEntry{metric: m, next: from, seq: seq, touched: d.now}
		d.dirty[v] = true
		return
	}
	switch {
	case seqNewer(seq, e.seq):
		changed := e.metric != m || e.next != from
		e.metric, e.next, e.seq = m, from, seq
		e.touched = d.now
		if changed {
			d.dirty[v] = true
		}
	case seq == e.seq && m < e.metric:
		e.metric, e.next = m, from
		e.touched = d.now
		d.dirty[v] = true
	case seq == e.seq && m == e.metric && e.next == from:
		e.touched = d.now // same route refreshed
	}
}

// seqNewer reports whether a is a strictly fresher sequence number than b,
// tolerating wraparound.
func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// expire drops u's soft-state entries that have not been refreshed within
// ExpireAfter. Broken entries are also garbage-collected here once stale.
func (d *DSDV) expire(u NodeID) {
	tab := d.tables[u]
	//cardlint:ordered per-dst keep/delete decisions depend only on that entry's timestamp; deletions are of the current key only
	for dst, e := range tab {
		if dst == u {
			continue
		}
		if d.now-e.touched > d.cfg.ExpireAfter {
			delete(tab, dst)
			d.dirty[u] = true
		}
	}
}

// DetectBreaks must be called after each topology refresh: every node
// compares its neighbor set against the last observation, marks routes via
// vanished neighbors broken (odd sequence), and — with TriggeredUpdates —
// immediately advertises the breaks.
func (d *DSDV) DetectBreaks(now float64) {
	d.now = now
	n := d.net.N()
	inf := int32(d.r + 1)
	var triggered []NodeID
	for i := 0; i < n; i++ {
		u := NodeID(i)
		lost := false
		cur := make(map[NodeID]struct{}, len(d.net.Neighbors(u)))
		for _, v := range d.net.Neighbors(u) {
			cur[v] = struct{}{}
		}
		//cardlint:ordered membership tests against cur plus a commutative lost flag; no order-sensitive state
		for v := range d.neighbors[u] {
			if _, still := cur[v]; !still {
				lost = true
				//cardlint:ordered a route row has one next hop, so at most one vanished v breaks it; row mutations are disjoint across the scan
				for dst, e := range d.tables[u] {
					if e.next == v && e.metric < inf && dst != u {
						e.metric = inf
						e.seq++ // odd: break owned by the detecting node
						e.touched = now
						d.dirty[u] = true
					}
				}
			}
		}
		d.neighbors[u] = cur
		if lost && d.cfg.TriggeredUpdates {
			triggered = append(triggered, u)
		}
	}
	for _, u := range triggered {
		d.dump(u, true)
	}
}

// entryLive reports whether e is a usable (finite) route.
func (d *DSDV) entryLive(e *dsdvEntry) bool { return int(e.metric) <= d.r }

func (d *DSDV) refreshCache(u NodeID) {
	if !d.dirty[u] {
		return
	}
	members := d.members[u][:0]
	edges := d.edges[u][:0]
	//cardlint:ordered both collected slices are sorted below before the Provider facade exposes them
	for dst, e := range d.tables[u] {
		if !d.entryLive(e) {
			continue
		}
		members = append(members, dst)
		if int(e.metric) == d.r {
			edges = append(edges, dst)
		}
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	sort.Slice(edges, func(a, b int) bool { return edges[a] < edges[b] })
	d.members[u] = members
	d.edges[u] = edges
	d.dirty[u] = false
}

// Members implements Provider.
func (d *DSDV) Members(u NodeID) []NodeID {
	d.refreshCache(u)
	return d.members[u]
}

// Contains implements Provider.
func (d *DSDV) Contains(u, x NodeID) bool {
	e, ok := d.tables[u][x]
	return ok && d.entryLive(e)
}

// Dist implements Provider.
func (d *DSDV) Dist(u, x NodeID) int {
	e, ok := d.tables[u][x]
	if !ok || !d.entryLive(e) {
		return -1
	}
	return int(e.metric)
}

// Route implements Provider. The route is assembled by chaining next-hop
// pointers through intermediate tables, exactly as packets would be
// forwarded; during convergence the chain may be inconsistent, in which
// case nil is returned.
func (d *DSDV) Route(u, x NodeID) []NodeID {
	if u == x {
		return []NodeID{u}
	}
	e, ok := d.tables[u][x]
	if !ok || !d.entryLive(e) {
		return nil
	}
	path := []NodeID{u}
	cur := u
	for steps := 0; steps <= d.r+1; steps++ {
		ce, ok := d.tables[cur][x]
		if !ok || !d.entryLive(ce) {
			return nil
		}
		nxt := ce.next
		path = append(path, nxt)
		if nxt == x {
			return path
		}
		cur = nxt
	}
	return nil // loop or over-length chain: not converged
}

// EdgeNodes implements Provider.
func (d *DSDV) EdgeNodes(u NodeID) []NodeID {
	d.refreshCache(u)
	return d.edges[u]
}

// WarmAll implements Warmer: it rebuilds every dirty per-node cache so the
// Provider facade is read-only until the next Round/DetectBreaks. Contains
// and Dist read the tables directly and are always safe between rounds;
// warming additionally covers Set, Route and EdgeNodes.
func (d *DSDV) WarmAll() {
	par.Do(len(d.tables), func(i int) { d.refreshCache(NodeID(i)) })
}

var (
	_ Provider = (*DSDV)(nil)
	_ Warmer   = (*DSDV)(nil)
)
