package neighborhood

import (
	"testing"

	"card/internal/eventq"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/xrand"
)

func newDSDV(t *testing.T, net *manet.Network, r int) *DSDV {
	t.Helper()
	d, err := NewDSDV(net, r, DefaultDSDV())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDSDVValidation(t *testing.T) {
	net := lineNet(3)
	if _, err := NewDSDV(net, 0, DefaultDSDV()); err == nil {
		t.Error("radius 0 accepted")
	}
	if _, err := NewDSDV(net, 2, DSDVConfig{Period: -1}); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := NewDSDV(net, 2, DSDVConfig{Period: 2, ExpireAfter: 1}); err == nil {
		t.Error("ExpireAfter < Period accepted")
	}
	if _, err := NewDSDV(net, 2, DSDVConfig{}); err != nil {
		t.Errorf("zero config (defaults) rejected: %v", err)
	}
}

func TestDSDVInitialSelfRoute(t *testing.T) {
	net := lineNet(4)
	d := newDSDV(t, net, 2)
	for u := NodeID(0); u < 4; u++ {
		if !d.Contains(u, u) || d.Dist(u, u) != 0 {
			t.Errorf("node %d missing self route", u)
		}
		if len(d.Members(u)) != 1 {
			t.Errorf("node %d knows more than itself before any dump", u)
		}
	}
}

func TestDSDVConvergesToOracleOnPath(t *testing.T) {
	net := lineNet(10)
	d := newDSDV(t, net, 3)
	rounds := d.Converge(0, 20)
	if rounds >= 20 {
		t.Fatalf("did not converge within 20 rounds")
	}
	o := NewOracle(net, 3)
	for u := NodeID(0); u < 10; u++ {
		if !sameMembers(d.Members(u), o.Members(u)) {
			t.Errorf("node %d: dsdv %v != oracle %v", u, d.Members(u), o.Members(u))
		}
		for x := NodeID(0); x < 10; x++ {
			if d.Dist(u, x) != o.Dist(u, x) {
				t.Errorf("Dist(%d,%d): dsdv %d oracle %d", u, x, d.Dist(u, x), o.Dist(u, x))
			}
		}
	}
}

func TestDSDVConvergesToOracleOnRandomNet(t *testing.T) {
	net := randomNet(17, 150, 60)
	d := newDSDV(t, net, 3)
	d.Converge(0, 30)
	o := NewOracle(net, 3)
	for u := NodeID(0); int(u) < net.N(); u += 7 {
		if !sameMembers(d.Members(u), o.Members(u)) {
			t.Fatalf("node %d neighborhood mismatch:\n dsdv %v\n orac %v", u, d.Members(u), o.Members(u))
		}
		for _, e := range d.EdgeNodes(u) {
			if o.Dist(u, e) != 3 {
				t.Fatalf("edge node %d of %d not at distance 3", e, u)
			}
		}
	}
}

func TestDSDVRoutesAreUsable(t *testing.T) {
	net := randomNet(21, 120, 60)
	d := newDSDV(t, net, 3)
	d.Converge(0, 30)
	g := net.Graph()
	rng := xrand.New(5)
	for probe := 0; probe < 40; probe++ {
		u := NodeID(rng.Intn(net.N()))
		members := d.Members(u)
		x := members[rng.Intn(len(members))]
		route := d.Route(u, x)
		if route == nil {
			t.Fatalf("no route %d->%d despite membership", u, x)
		}
		if route[0] != u || route[len(route)-1] != x {
			t.Fatalf("route endpoints wrong: %v", route)
		}
		for i := 0; i+1 < len(route); i++ {
			if !g.Adjacent(route[i], route[i+1]) {
				t.Fatalf("route %v has non-adjacent hop", route)
			}
		}
		if len(route)-1 != d.Dist(u, x) {
			t.Fatalf("route length %d != metric %d", len(route)-1, d.Dist(u, x))
		}
	}
}

func TestDSDVCountsBroadcasts(t *testing.T) {
	net := lineNet(5)
	d := newDSDV(t, net, 2)
	before := net.Totals().Get(manet.CatDSDV)
	d.Round(0)
	after := net.Totals().Get(manet.CatDSDV)
	if after-before != 5 {
		t.Errorf("one round counted %d broadcasts, want 5", after-before)
	}
}

func TestDSDVScopeLimit(t *testing.T) {
	net := lineNet(12)
	d := newDSDV(t, net, 3)
	d.Converge(0, 30)
	// Node 0 must not know node 4+ (distance > 3).
	if d.Contains(0, 4) {
		t.Error("scope leak: node 0 learned a node beyond R hops")
	}
	if len(d.Members(0)) != 4 {
		t.Errorf("node 0 neighborhood = %v", d.Members(0))
	}
}

func TestDSDVLinkBreakMarksRoutesBroken(t *testing.T) {
	// Path 0-1-2-3; break the 1-2 link by teleporting nodes 2,3 away.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 30, Y: 0}}
	world := geom.Rect{W: 5000, H: 50}
	// RandomWalk with huge speed scatters everyone; simpler: rebuild via a
	// custom two-phase static trick is not possible, so use RandomWalk.
	m, err := mobility.NewRandomWalk(pts, world, 400, 1000, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	net := manet.New(m, 15, xrand.New(10))
	d := newDSDV(t, net, 3)
	d.Converge(0, 10)
	if !d.Contains(0, 3) {
		t.Skip("initial topology did not form the expected path")
	}
	// Advance until some link 0 had disappears, then DetectBreaks must mark
	// the affected routes broken even before the next periodic dump.
	for step := 1; step <= 50; step++ {
		tm := float64(step)
		net.RefreshAt(tm)
		g := net.Graph()
		if g.Adjacent(0, 1) && g.Adjacent(1, 2) && g.Adjacent(2, 3) {
			continue
		}
		d.DetectBreaks(tm)
		// At 400 m/s everything separates; eventually 0 loses its route to 3.
		if !d.Contains(0, 3) {
			return
		}
	}
	t.Error("route 0->3 never became broken despite scattering nodes")
}

func TestDSDVSoftStateExpiry(t *testing.T) {
	net := lineNet(6)
	cfg := DSDVConfig{Period: 1, ExpireAfter: 2, TriggeredUpdates: false}
	d, err := NewDSDV(net, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Round(0)
	d.Round(1)
	if !d.Contains(0, 2) {
		t.Fatal("node 0 never learned node 2")
	}
	// Manually inject a phantom entry that no dump will ever refresh
	// (simulates a destination that silently left the neighborhood).
	d.tables[0][5] = &dsdvEntry{metric: 2, next: 1, seq: 2, touched: 1}
	d.Round(2)
	d.Round(3)
	d.Round(4)
	if d.Contains(0, 5) {
		t.Error("stale entry survived past ExpireAfter")
	}
	if !d.Contains(0, 2) {
		t.Error("live entry expired despite periodic refresh")
	}
}

func TestDSDVStartOnEventQueue(t *testing.T) {
	net := lineNet(8)
	d := newDSDV(t, net, 3)
	q := eventq.New()
	d.Start(q)
	q.RunUntil(10) // ten periods of staggered dumps
	o := NewOracle(net, 3)
	for u := NodeID(0); u < 8; u++ {
		if !sameMembers(d.Members(u), o.Members(u)) {
			t.Fatalf("event-driven DSDV did not converge at node %d: %v vs %v",
				u, d.Members(u), o.Members(u))
		}
	}
	if net.Totals().Get(manet.CatDSDV) == 0 {
		t.Error("no DSDV broadcasts counted")
	}
}

func TestDSDVRouteDuringNonConvergenceIsNilNotWrong(t *testing.T) {
	net := lineNet(10)
	d := newDSDV(t, net, 3)
	// No dump at all: only self routes exist.
	if r := d.Route(0, 3); r != nil {
		t.Errorf("route before convergence = %v, want nil", r)
	}
	if r := d.Route(2, 2); len(r) != 1 || r[0] != 2 {
		t.Errorf("self route = %v", r)
	}
}

// sameMembers reports whether two sorted member lists are identical.
func sameMembers(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intersectionCount merges two sorted member lists, counting common ids.
func intersectionCount(a, b []NodeID) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

func TestSeqNewer(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{2, 0, true}, {0, 2, false}, {5, 5, false},
		{0, 4294967294, true}, // wraparound: 0 is fresher than MaxUint32-1
	}
	for _, c := range cases {
		if got := seqNewer(c.a, c.b); got != c.want {
			t.Errorf("seqNewer(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDSDVMobileChurnKeepsViewsFresh(t *testing.T) {
	// Under sustained mobility with periodic dumps + break detection, the
	// DSDV view should track the oracle reasonably: measure overlap.
	m, err := mobility.NewRandomWaypoint(60, geom.Rect{W: 300, H: 300}, mobility.DefaultRWP(), xrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	net := manet.New(m, 60, xrand.New(32))
	d := newDSDV(t, net, 2)
	for step := 0; step < 30; step++ {
		tm := float64(step) * 0.5
		net.RefreshAt(tm)
		d.DetectBreaks(tm)
		d.Round(tm)
	}
	o := NewOracle(net, 2)
	agree, total := 0, 0
	for u := NodeID(0); int(u) < net.N(); u++ {
		ds, os := d.Members(u), o.Members(u)
		total += len(os)
		agree += intersectionCount(ds, os)
	}
	frac := float64(agree) / float64(total)
	if frac < 0.85 {
		t.Errorf("DSDV tracks only %.0f%% of oracle membership under mobility", frac*100)
	}
}
