package mobility

import (
	"fmt"

	"card/internal/geom"
	"card/internal/xrand"
)

// RPGMConfig parameterizes reference-point group mobility.
type RPGMConfig struct {
	// Groups is the number of groups (>= 1). Node i belongs to group
	// i mod Groups.
	Groups int
	// GroupRadius bounds each member's offset from the group reference
	// point: offsets stay inside the square [-GroupRadius, GroupRadius]²
	// (>= 0; 0 collapses the group onto its reference point).
	GroupRadius float64
	// Leader is the random-waypoint process the group reference point
	// follows across the deployment area.
	Leader RWPConfig
	// MemberSpeed is the maximum speed of a member's local motion around
	// the reference point in m/s (>= 0; 0 pins members to fixed offsets).
	// Member leg speeds are uniform in [MemberSpeed/4, MemberSpeed].
	MemberSpeed float64
	// MemberPause is the dwell between member jitter legs in seconds.
	MemberPause float64
}

// DefaultRPGM returns a rescue-team-like tuning: slow group leaders with
// pauses, members drifting within 150 m of the reference point.
func DefaultRPGM(groups int) RPGMConfig {
	return RPGMConfig{
		Groups:      groups,
		GroupRadius: 150,
		Leader:      RWPConfig{MinSpeed: 1, MaxSpeed: 5, Pause: 30},
		MemberSpeed: 2,
	}
}

func (c RPGMConfig) validate() error {
	if c.Groups < 1 {
		return fmt.Errorf("mobility: RPGM needs >= 1 group, got %d", c.Groups)
	}
	if c.GroupRadius < 0 {
		return fmt.Errorf("mobility: negative group radius %v", c.GroupRadius)
	}
	if c.MemberSpeed < 0 {
		return fmt.Errorf("mobility: negative member speed %v", c.MemberSpeed)
	}
	if c.MemberPause < 0 {
		return fmt.Errorf("mobility: negative member pause %v", c.MemberPause)
	}
	return c.Leader.validate()
}

// RPGM implements reference-point group mobility (Hong et al.): each group
// owns a logical reference point that performs a random-waypoint walk over
// the deployment area, and each member holds a local offset from that
// reference point that itself performs a bounded random-waypoint walk
// inside the GroupRadius square. A member's position is the clamped sum
//
//	pos(i, t) = clamp(group(i mod Groups, t) + offset(i, t))
//
// so groups move coherently while members churn links inside the group —
// the classic stressor for contact-based schemes, whose contacts want to
// bridge *between* clusters rather than within them.
//
// Like RandomWaypoint, the model is analytic: group and member legs are
// deterministic functions of the construction seed, sampled lazily as time
// advances. Sampling times must be non-decreasing. Groups draw from the
// substreams (0, g) of the construction RNG, members from (1, i), so group
// count and node count perturb each other's trajectories minimally.
type RPGM struct {
	cfg  RPGMConfig
	area geom.Rect

	groupRngs []*xrand.Rand
	groupLegs []leg

	memberRngs []*xrand.Rand
	memberLegs []leg
}

// NewRPGM creates a reference-point group mobility model for n nodes.
func NewRPGM(n int, area geom.Rect, cfg RPGMConfig, rng *xrand.Rand) (*RPGM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &RPGM{
		cfg:        cfg,
		area:       area,
		groupRngs:  make([]*xrand.Rand, cfg.Groups),
		groupLegs:  make([]leg, cfg.Groups),
		memberRngs: make([]*xrand.Rand, n),
		memberLegs: make([]leg, n),
	}
	for g := 0; g < cfg.Groups; g++ {
		m.groupRngs[g] = rng.SplitStream(0, uint64(g))
		start := geom.Point{X: m.groupRngs[g].Range(0, area.W), Y: m.groupRngs[g].Range(0, area.H)}
		m.groupLegs[g] = m.nextGroupLeg(g, start, 0)
	}
	for i := 0; i < n; i++ {
		m.memberRngs[i] = rng.SplitStream(1, uint64(i))
		start := m.drawOffset(m.memberRngs[i])
		m.memberLegs[i] = m.nextMemberLeg(i, start, 0)
	}
	return m, nil
}

// drawOffset samples a uniform offset in the GroupRadius square.
func (m *RPGM) drawOffset(r *xrand.Rand) geom.Point {
	if m.cfg.GroupRadius == 0 {
		return geom.Point{}
	}
	return geom.Point{
		X: r.Range(-m.cfg.GroupRadius, m.cfg.GroupRadius),
		Y: r.Range(-m.cfg.GroupRadius, m.cfg.GroupRadius),
	}
}

// nextGroupLeg draws the reference point's next waypoint and speed.
func (m *RPGM) nextGroupLeg(g int, p geom.Point, t float64) leg {
	r := m.groupRngs[g]
	dest := geom.Point{X: r.Range(0, m.area.W), Y: r.Range(0, m.area.H)}
	speed := r.Range(m.cfg.Leader.MinSpeed, m.cfg.Leader.MaxSpeed)
	if speed <= 0 {
		speed = m.cfg.Leader.MinSpeed
	}
	depart := t + m.cfg.Leader.Pause
	return leg{from: p, to: dest, depart: depart, arrive: depart + p.Dist(dest)/speed}
}

// nextMemberLeg draws the member's next offset waypoint inside the group
// square. With MemberSpeed == 0 the leg is a fixed point that never
// arrives (offsets are static).
func (m *RPGM) nextMemberLeg(i int, p geom.Point, t float64) leg {
	r := m.memberRngs[i]
	if m.cfg.MemberSpeed == 0 || m.cfg.GroupRadius == 0 {
		return leg{from: p, to: p, depart: t, arrive: inf()}
	}
	dest := m.drawOffset(r)
	speed := r.Range(m.cfg.MemberSpeed/4, m.cfg.MemberSpeed)
	if speed <= 0 {
		speed = m.cfg.MemberSpeed
	}
	depart := t + m.cfg.MemberPause
	return leg{from: p, to: dest, depart: depart, arrive: depart + p.Dist(dest)/speed}
}

func inf() float64 { return 1e300 }

// N implements Model.
func (m *RPGM) N() int { return len(m.memberLegs) }

// Area implements Model.
func (m *RPGM) Area() geom.Rect { return m.area }

// PositionsAt implements Model. t must be non-decreasing across calls.
func (m *RPGM) PositionsAt(t float64, dst []geom.Point) {
	for g := range m.groupLegs {
		l := &m.groupLegs[g]
		for t >= l.arrive {
			*l = m.nextGroupLeg(g, l.to, l.arrive)
		}
	}
	for i := range m.memberLegs {
		l := &m.memberLegs[i]
		for t >= l.arrive {
			*l = m.nextMemberLeg(i, l.to, l.arrive)
		}
		ref := legAt(&m.groupLegs[i%m.cfg.Groups], t)
		off := legAt(l, t)
		dst[i] = m.area.Clamp(geom.Point{X: ref.X + off.X, Y: ref.Y + off.Y})
	}
}

// legAt evaluates a leg's position at time t (t < arrive).
func legAt(l *leg, t float64) geom.Point {
	if t <= l.depart {
		return l.from
	}
	frac := (t - l.depart) / (l.arrive - l.depart)
	return l.from.Lerp(l.to, frac)
}
