package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"card/internal/geom"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

func TestStatic(t *testing.T) {
	pos := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	m := NewStatic(pos, area)
	if m.N() != 2 || m.Area() != area {
		t.Fatal("Static metadata wrong")
	}
	dst := make([]geom.Point, 2)
	m.PositionsAt(0, dst)
	m.PositionsAt(100, dst)
	if dst[0] != pos[0] || dst[1] != pos[1] {
		t.Errorf("static nodes moved: %v", dst)
	}
	// The model must have copied its input.
	pos[0].X = 99
	m.PositionsAt(200, dst)
	if dst[0].X == 99 {
		t.Error("Static aliases caller slice")
	}
}

func TestRWPConfigValidation(t *testing.T) {
	cases := []RWPConfig{
		{MinSpeed: 0, MaxSpeed: 10},
		{MinSpeed: -1, MaxSpeed: 10},
		{MinSpeed: 5, MaxSpeed: 4},
		{MinSpeed: 1, MaxSpeed: 2, Pause: -1},
	}
	for _, cfg := range cases {
		if _, err := NewRandomWaypoint(5, area, cfg, xrand.New(1)); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := NewRandomWaypoint(5, area, DefaultRWP(), xrand.New(1)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRWPStaysInArea(t *testing.T) {
	m, err := NewRandomWaypoint(50, area, DefaultRWP(), xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]geom.Point, 50)
	for ti := 0; ti <= 600; ti++ {
		tm := float64(ti) * 0.5
		m.PositionsAt(tm, dst)
		for i, p := range dst {
			if !area.Contains(p) {
				t.Fatalf("node %d at %v outside area at t=%v", i, p, tm)
			}
		}
	}
}

func TestRWPSpeedBounds(t *testing.T) {
	cfg := RWPConfig{MinSpeed: 5, MaxSpeed: 10}
	m, err := NewRandomWaypoint(20, area, cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.05
	prev := make([]geom.Point, 20)
	cur := make([]geom.Point, 20)
	m.PositionsAt(0, prev)
	for step := 1; step <= 2000; step++ {
		m.PositionsAt(float64(step)*dt, cur)
		for i := range cur {
			v := cur[i].Dist(prev[i]) / dt
			// Instantaneous speed can only be <= MaxSpeed; waypoint turns
			// within a step shorten displacement, so only check the cap.
			if v > cfg.MaxSpeed*1.0001 {
				t.Fatalf("node %d speed %v exceeds max %v", i, v, cfg.MaxSpeed)
			}
		}
		copy(prev, cur)
	}
}

func TestRWPNodesActuallyMove(t *testing.T) {
	m, _ := NewRandomWaypoint(10, area, DefaultRWP(), xrand.New(3))
	a := make([]geom.Point, 10)
	b := make([]geom.Point, 10)
	m.PositionsAt(0, a)
	m.PositionsAt(30, b)
	moved := 0
	for i := range a {
		if a[i].Dist(b[i]) > 1 {
			moved++
		}
	}
	if moved < 8 {
		t.Errorf("only %d/10 nodes moved over 30s", moved)
	}
}

func TestRWPDeterministicAcrossInstances(t *testing.T) {
	m1, _ := NewRandomWaypoint(15, area, DefaultRWP(), xrand.New(99))
	m2, _ := NewRandomWaypoint(15, area, DefaultRWP(), xrand.New(99))
	a := make([]geom.Point, 15)
	b := make([]geom.Point, 15)
	for _, tm := range []float64{0, 1.5, 7.25, 100} {
		m1.PositionsAt(tm, a)
		m2.PositionsAt(tm, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("instances diverge at t=%v node %d: %v vs %v", tm, i, a[i], b[i])
			}
		}
	}
}

func TestRWPSamplingGranularityInvariance(t *testing.T) {
	// Sampling every 0.1s vs jumping straight to t must agree: positions are
	// a function of t, not of the sampling schedule.
	m1, _ := NewRandomWaypoint(10, area, DefaultRWP(), xrand.New(5))
	m2, _ := NewRandomWaypoint(10, area, DefaultRWP(), xrand.New(5))
	fine := make([]geom.Point, 10)
	coarse := make([]geom.Point, 10)
	for ti := 1; ti <= 500; ti++ {
		m1.PositionsAt(float64(ti)*0.1, fine)
	}
	m2.PositionsAt(50, coarse)
	for i := range fine {
		if fine[i].Dist(coarse[i]) > 1e-9 {
			t.Fatalf("node %d: fine sampling %v vs coarse %v", i, fine[i], coarse[i])
		}
	}
}

func TestRWPPause(t *testing.T) {
	cfg := RWPConfig{MinSpeed: 1, MaxSpeed: 1, Pause: 5}
	m, _ := NewRandomWaypoint(5, area, cfg, xrand.New(8))
	a := make([]geom.Point, 5)
	b := make([]geom.Point, 5)
	// During the initial pause [0, 5) nodes must not move.
	m.PositionsAt(0, a)
	m.PositionsAt(4.9, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d moved during pause: %v -> %v", i, a[i], b[i])
		}
	}
}

func TestRandomWalkValidation(t *testing.T) {
	pos := []geom.Point{{X: 1, Y: 1}}
	if _, err := NewRandomWalk(pos, area, -1, 1, xrand.New(1)); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewRandomWalk(pos, area, 1, 0, xrand.New(1)); err == nil {
		t.Error("zero epoch accepted")
	}
}

func TestRandomWalkStaysInAreaAndMoves(t *testing.T) {
	rng := xrand.New(21)
	pos := make([]geom.Point, 30)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Range(0, area.W), Y: rng.Range(0, area.H)}
	}
	m, err := NewRandomWalk(pos, area, 10, 2, xrand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]geom.Point, 30)
	start := append([]geom.Point(nil), pos...)
	for ti := 1; ti <= 100; ti++ {
		m.PositionsAt(float64(ti)*0.5, dst)
		for i, p := range dst {
			if !area.Contains(p) {
				t.Fatalf("walk node %d escaped to %v", i, p)
			}
		}
	}
	moved := 0
	for i := range dst {
		if start[i].Dist(dst[i]) > 1 {
			moved++
		}
	}
	if moved < 25 {
		t.Errorf("only %d/30 random-walk nodes moved", moved)
	}
}

func TestRandomWalkSpeedRespected(t *testing.T) {
	pos := []geom.Point{{X: 355, Y: 355}}
	m, _ := NewRandomWalk(pos, area, 7, 5, xrand.New(2))
	prev := make([]geom.Point, 1)
	cur := make([]geom.Point, 1)
	m.PositionsAt(0, prev)
	const dt = 0.1
	for step := 1; step <= 500; step++ {
		m.PositionsAt(float64(step)*dt, cur)
		v := cur[0].Dist(prev[0]) / dt
		// Reflection can shorten but never lengthen displacement.
		if v > 7*1.0001 {
			t.Fatalf("walk speed %v exceeds 7", v)
		}
		copy(prev, cur)
	}
}

func TestQuickRWPPositionsFinite(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m, err := NewRandomWaypoint(5, area, DefaultRWP(), rng)
		if err != nil {
			return false
		}
		dst := make([]geom.Point, 5)
		for _, tm := range []float64{0, 3.7, 11, 250} {
			m.PositionsAt(tm, dst)
			for _, p := range dst {
				if math.IsNaN(p.X) || math.IsNaN(p.Y) || !area.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRWPSample500(b *testing.B) {
	m, _ := NewRandomWaypoint(500, area, DefaultRWP(), xrand.New(1))
	dst := make([]geom.Point, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PositionsAt(float64(i)*0.25, dst)
	}
}
