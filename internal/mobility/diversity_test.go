package mobility

import (
	"strings"
	"testing"

	"card/internal/geom"
	"card/internal/xrand"
)

// buildModel constructs one of the new models for the shared property
// tests. Each call with equal (kind, seed) must yield an identical model.
func buildModel(t *testing.T, kind string, seed uint64) Model {
	t.Helper()
	area := geom.Rect{W: 800, H: 600}
	rng := xrand.New(seed)
	switch kind {
	case "gauss-markov":
		m, err := NewGaussMarkov(60, area, DefaultGM(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	case "rpgm":
		m, err := NewRPGM(60, area, DefaultRPGM(5), rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	case "trace":
		tr := testTrace(t)
		m, err := NewTraceReplay(tr, area)
		if err != nil {
			t.Fatal(err)
		}
		return m
	default:
		t.Fatalf("unknown kind %q", kind)
		return nil
	}
}

// TestModelsStayInsideAreaAndDeterministic pins the two properties every
// model must satisfy: positions remain inside Area() at every sampled
// time, and two instances built from the same seed produce bit-identical
// trajectories under the same (monotone, irregular) sampling schedule.
func TestModelsStayInsideAreaAndDeterministic(t *testing.T) {
	times := []float64{0, 0.1, 0.25, 1, 1, 2.5, 3.1, 7, 19.99, 20, 33.3, 120}
	for _, kind := range []string{"gauss-markov", "rpgm", "trace"} {
		t.Run(kind, func(t *testing.T) {
			a := buildModel(t, kind, 42)
			b := buildModel(t, kind, 42)
			c := buildModel(t, kind, 43) // different seed: should diverge (except trace)
			area := a.Area()
			pa := make([]geom.Point, a.N())
			pb := make([]geom.Point, a.N())
			pc := make([]geom.Point, a.N())
			diverged := false
			for _, tm := range times {
				a.PositionsAt(tm, pa)
				b.PositionsAt(tm, pb)
				c.PositionsAt(tm, pc)
				for i := range pa {
					if !area.Contains(pa[i]) {
						t.Fatalf("t=%v node %d at %v outside %v", tm, i, pa[i], area)
					}
					if pa[i] != pb[i] {
						t.Fatalf("t=%v node %d: same seed diverged: %v vs %v", tm, i, pa[i], pb[i])
					}
					if pa[i] != pc[i] {
						diverged = true
					}
				}
			}
			if kind != "trace" && !diverged {
				t.Error("different seeds produced identical trajectories")
			}
		})
	}
}

// TestModelsMove sanity-checks that the stochastic models actually move
// nodes (a frozen model would trivially pass the area property).
func TestModelsMove(t *testing.T) {
	for _, kind := range []string{"gauss-markov", "rpgm"} {
		m := buildModel(t, kind, 7)
		p0 := make([]geom.Point, m.N())
		p1 := make([]geom.Point, m.N())
		m.PositionsAt(0, p0)
		m.PositionsAt(30, p1)
		moved := 0
		for i := range p0 {
			if p0[i].Dist(p1[i]) > 1 {
				moved++
			}
		}
		if moved < m.N()/2 {
			t.Errorf("%s: only %d/%d nodes moved > 1 m over 30 s", kind, moved, m.N())
		}
	}
}

// TestVelocityModelsUpdateUnderSubEpochSampling regresses the
// sampling-granularity bug: the AR(1) (Gauss–Markov) and redraw
// (RandomWalk) velocity processes must step whenever integrated time
// completes an epoch, even when every PositionsAt call advances by less
// than one epoch — the engine's refresh cadence. Under the bug, sub-epoch
// sampling froze the velocity state and both models degenerated to
// straight-line billiard motion (constant per-epoch displacement).
func TestVelocityModelsUpdateUnderSubEpochSampling(t *testing.T) {
	area := geom.Rect{W: 5000, H: 5000} // huge: no reflections to muddy displacements
	gm, err := NewGaussMarkov(8, area, DefaultGM(), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRandomWalk(UniformTestPositions(8, area), area, 10, 1, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]Model{"gauss-markov": gm, "walk": rw} {
		prev := make([]geom.Point, m.N())
		cur := make([]geom.Point, m.N())
		m.PositionsAt(0, prev)
		var disps []geom.Point
		for tm := 0.25; tm <= 20+1e-9; tm += 0.25 { // strictly sub-epoch steps
			m.PositionsAt(tm, cur)
			if tm == float64(int(tm)) { // epoch boundary: record node 0's displacement
				disps = append(disps, geom.Point{X: cur[0].X - prev[0].X, Y: cur[0].Y - prev[0].Y})
				copy(prev, cur)
			}
		}
		varied := false
		for i := 1; i < len(disps); i++ {
			if disps[i] != disps[0] {
				varied = true
				break
			}
		}
		if !varied {
			t.Errorf("%s: per-epoch displacement constant over 20 s of sub-epoch sampling — velocity process never updated", name)
		}
	}
}

// UniformTestPositions is a tiny local stand-in for
// topology.UniformPositions (mobility must not import topology).
func UniformTestPositions(n int, area geom.Rect) []geom.Point {
	rng := xrand.New(99)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Range(0, area.W), Y: rng.Range(0, area.H)}
	}
	return pts
}

// TestRPGMGroupCoherence checks the defining property of group mobility:
// a node stays within GroupRadius·√2 (box diagonal) of its group's other
// members' reference point, i.e. intra-group spread is bounded while the
// whole group travels.
func TestRPGMGroupCoherence(t *testing.T) {
	area := geom.Rect{W: 2000, H: 2000}
	cfg := DefaultRPGM(4)
	m, err := NewRPGM(40, area, cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]geom.Point, m.N())
	maxSpread := 2 * cfg.GroupRadius * 1.4143 // two offsets, box diagonal each
	for _, tm := range []float64{0, 5, 17, 60, 200} {
		m.PositionsAt(tm, pos)
		for i := 0; i < m.N(); i++ {
			for j := i + cfg.Groups; j < m.N(); j += cfg.Groups {
				if i%cfg.Groups != j%cfg.Groups {
					continue
				}
				// Same group: mutual distance bounded by twice the offset
				// diagonal (clamping at the walls only shrinks distances).
				if d := pos[i].Dist(pos[j]); d > maxSpread {
					t.Fatalf("t=%v: group members %d,%d spread %v > %v", tm, i, j, d, maxSpread)
				}
			}
		}
	}
}

const sampleTrace = `
# three nodes, setdest-style (GOD annotations interleaved, as the real
# tool emits them)
$node_(0) set X_ 10.0
$node_(0) set Y_ 20.0
$node_(0) set Z_ 0.0
$node_(1) set X_ 700.0
$node_(1) set Y_ 500.0
$node_(2) set X_ 400.0
$node_(2) set Y_ 300.0
$god_ set-dist 0 1 2
$god_ set-dist 0 2 1

$ns_ at 1.0 "$node_(0) setdest 110.0 20.0 10.0"
$ns_ at 5.0 "$node_(0) setdest 110.0 120.0 5.0"
$ns_ at 2.0 "$node_(1) setdest 700.0 100.0 20.0"
$ns_ at 3.5 "$god_ set-dist 1 2 3"
$ns_ at 4.0 "$node_(1) setdest 0.0 0.0 0.0"
`

func testTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := ParseSetdest(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseSetdest(t *testing.T) {
	tr := testTrace(t)
	if tr.N() != 3 {
		t.Fatalf("trace N = %d, want 3", tr.N())
	}
	if tr.Initial[1] != (geom.Point{X: 700, Y: 500}) {
		t.Errorf("node 1 initial = %v", tr.Initial[1])
	}
	if len(tr.Events[0]) != 2 || len(tr.Events[1]) != 2 || len(tr.Events[2]) != 0 {
		t.Fatalf("event counts: %d/%d/%d", len(tr.Events[0]), len(tr.Events[1]), len(tr.Events[2]))
	}
	if e := tr.Events[0][1]; e.T != 5 || e.X != 110 || e.Y != 120 || e.Speed != 5 {
		t.Errorf("node 0 second event = %+v", e)
	}
}

func TestParseSetdestRejectsGarbage(t *testing.T) {
	bad := []string{
		`$node_(0) set X_ ten`,
		`$node_(0) sit X_ 10`,
		`wat`,
		`$ns_ at 1.0 "$node_(0) setdest 1.0 2.0"`,                                        // missing speed
		"$node_(0) set X_ 1\n$node_(0) set Y_ 1\n$node_(5) set X_ 1\n$node_(5) set Y_ 1", // sparse ids
		``, // empty
	}
	for _, src := range bad {
		if _, err := ParseSetdest(strings.NewReader(src)); err == nil {
			t.Errorf("ParseSetdest accepted %q", src)
		}
	}
}

// TestTraceReplayInterpolation walks the sample trace through its known
// piecewise-linear checkpoints, including a mid-flight course preemption.
func TestTraceReplayInterpolation(t *testing.T) {
	m, err := NewTraceReplay(testTrace(t), geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]geom.Point, m.N())

	approx := func(a, b geom.Point) bool { return a.Dist(b) < 1e-9 }
	// t=0: everyone at initial positions.
	m.PositionsAt(0, pos)
	if !approx(pos[0], geom.Point{X: 10, Y: 20}) || !approx(pos[2], geom.Point{X: 400, Y: 300}) {
		t.Fatalf("t=0 positions wrong: %v", pos)
	}
	// t=0.5: node 0 hasn't departed yet.
	m.PositionsAt(0.5, pos)
	if !approx(pos[0], geom.Point{X: 10, Y: 20}) {
		t.Errorf("t=0.5 node 0 moved early: %v", pos[0])
	}
	// t=6: node 0 departed at t=1 toward (110,20) at 10 m/s (100 m, arrives
	// t=11) but was preempted at t=5 at (50,20), heading to (110,120) at
	// 5 m/s. One second in, it has gone 5 m along that course.
	m.PositionsAt(6, pos)
	want := geom.Point{X: 50, Y: 20}.Lerp(geom.Point{X: 110, Y: 120}, 5/geom.Point{X: 50, Y: 20}.Dist(geom.Point{X: 110, Y: 120}))
	if !approx(pos[0], want) {
		t.Errorf("t=6 node 0 = %v, want %v", pos[0], want)
	}
	// Node 1: paused at t=4 mid-flight from (700,500) to (700,100) at
	// 20 m/s — at t=4 it sits at (700, 460), forever.
	if !approx(pos[1], geom.Point{X: 700, Y: 460}) {
		t.Errorf("t=6 node 1 = %v, want (700, 460)", pos[1])
	}
	// t=1000: node 0 long arrived at (110,120); node 2 never moved.
	m.PositionsAt(1000, pos)
	if !approx(pos[0], geom.Point{X: 110, Y: 120}) || !approx(pos[2], geom.Point{X: 400, Y: 300}) {
		t.Errorf("t=1000 positions: %v", pos)
	}
}

func TestTraceBoundsInference(t *testing.T) {
	m, err := NewTraceReplay(testTrace(t), geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if a := m.Area(); a.W != 700 || a.H != 500 {
		t.Errorf("inferred area = %v, want 700x500", a)
	}
}
