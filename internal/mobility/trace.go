package mobility

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"card/internal/geom"
)

// TraceEvent is one movement command of a trace: at time T the node heads
// for (X, Y) at Speed m/s (ns-2 setdest semantics — course changes take
// effect from wherever the node currently is).
type TraceEvent struct {
	T     float64
	X, Y  float64
	Speed float64
}

// Trace is a parsed movement trace: per-node initial positions plus
// time-ordered setdest events. Traces are plain data; NewTraceReplay turns
// one into a mobility model.
type Trace struct {
	// Initial holds each node's starting position.
	Initial []geom.Point
	// Events holds each node's movement commands sorted by time.
	Events [][]TraceEvent
}

// N returns the number of nodes in the trace.
func (tr *Trace) N() int { return len(tr.Initial) }

// Bounds returns the axis-aligned bounding box of every position the trace
// names (initial placements and destinations), anchored at the origin.
func (tr *Trace) Bounds() geom.Rect {
	var w, h float64
	grow := func(x, y float64) {
		if x > w {
			w = x
		}
		if y > h {
			h = y
		}
	}
	for i, p := range tr.Initial {
		grow(p.X, p.Y)
		for _, e := range tr.Events[i] {
			grow(e.X, e.Y)
		}
	}
	return geom.Rect{W: w, H: h}
}

// ParseSetdest reads an ns-2 setdest movement trace:
//
//	$node_(7) set X_ 150.73
//	$node_(7) set Y_ 93.98
//	$ns_ at 10.0 "$node_(7) setdest 250.0 300.0 5.0"
//
// Z_ coordinates, comments (#...) and blank lines are ignored; unknown
// lines are rejected so silently truncated traces cannot masquerade as
// valid workloads. Node ids must be dense in [0, N) by the end of the
// trace (any id may appear first). A setdest speed <= 0 stops the node
// where it is, matching how generators emit "pause" commands.
func ParseSetdest(r io.Reader) (*Trace, error) {
	type nodeData struct {
		init       geom.Point
		hasX, hasY bool
		events     []TraceEvent
	}
	nodes := map[int]*nodeData{}
	get := func(id int) *nodeData {
		nd := nodes[id]
		if nd == nil {
			nd = &nodeData{}
			nodes[id] = nd
		}
		return nd
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// setdest interleaves GOD annotations ($god_ set-dist i j d, bare
		// or wrapped in $ns_ at ... "...") with the movement commands; they
		// carry shortest-path data the simulator recomputes itself.
		if strings.HasPrefix(line, "$god_") || strings.Contains(line, "\"$god_") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$node_("):
			// $node_(ID) set X_ <v>
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "set" {
				return nil, fmt.Errorf("mobility: trace line %d: malformed node command %q", lineNo, line)
			}
			id, err := parseNodeID(f[0])
			if err != nil {
				return nil, fmt.Errorf("mobility: trace line %d: %v", lineNo, err)
			}
			v, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fmt.Errorf("mobility: trace line %d: bad coordinate %q", lineNo, f[3])
			}
			nd := get(id)
			switch f[2] {
			case "X_":
				nd.init.X, nd.hasX = v, true
			case "Y_":
				nd.init.Y, nd.hasY = v, true
			case "Z_":
				// 2-D simulation: ignored.
			default:
				return nil, fmt.Errorf("mobility: trace line %d: unknown attribute %q", lineNo, f[2])
			}
		case strings.HasPrefix(line, "$ns_"):
			// $ns_ at <t> "$node_(ID) setdest <x> <y> <speed>"
			f := strings.Fields(strings.NewReplacer("\"", " ", "\\", " ").Replace(line))
			if len(f) != 8 || f[1] != "at" || f[4] != "setdest" {
				return nil, fmt.Errorf("mobility: trace line %d: malformed setdest %q", lineNo, line)
			}
			id, err := parseNodeID(f[3])
			if err != nil {
				return nil, fmt.Errorf("mobility: trace line %d: %v", lineNo, err)
			}
			var ev TraceEvent
			for _, p := range []struct {
				dst *float64
				tok string
			}{{&ev.T, f[2]}, {&ev.X, f[5]}, {&ev.Y, f[6]}, {&ev.Speed, f[7]}} {
				if *p.dst, err = strconv.ParseFloat(p.tok, 64); err != nil {
					return nil, fmt.Errorf("mobility: trace line %d: bad number %q", lineNo, p.tok)
				}
			}
			get(id).events = append(get(id).events, ev)
		default:
			return nil, fmt.Errorf("mobility: trace line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: reading trace: %w", err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("mobility: empty trace")
	}
	tr := &Trace{
		Initial: make([]geom.Point, len(nodes)),
		Events:  make([][]TraceEvent, len(nodes)),
	}
	// Walk ids in order rather than ranging the map: validation errors
	// (and therefore which malformed node is reported) stay deterministic.
	for id := 0; id < len(nodes); id++ {
		nd := nodes[id]
		if nd == nil {
			// Pigeonhole: len(nodes) distinct ids with one of [0, N)
			// missing means some id was negative or >= N.
			return nil, fmt.Errorf("mobility: trace node ids not dense: %d nodes but no node %d", len(nodes), id)
		}
		if !nd.hasX || !nd.hasY {
			return nil, fmt.Errorf("mobility: trace node %d missing initial X_/Y_", id)
		}
		sort.SliceStable(nd.events, func(a, b int) bool { return nd.events[a].T < nd.events[b].T })
		tr.Initial[id] = nd.init
		tr.Events[id] = nd.events
	}
	return tr, nil
}

func parseNodeID(tok string) (int, error) {
	open := strings.IndexByte(tok, '(')
	close := strings.IndexByte(tok, ')')
	if !strings.HasPrefix(tok, "$node_") || open < 0 || close < open {
		return 0, fmt.Errorf("malformed node reference %q", tok)
	}
	id, err := strconv.Atoi(tok[open+1 : close])
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad node id in %q", tok)
	}
	return id, nil
}

// LoadSetdestFile parses a setdest trace from a file.
func LoadSetdestFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mobility: %w", err)
	}
	defer f.Close()
	tr, err := ParseSetdest(f)
	if err != nil {
		return nil, fmt.Errorf("mobility: trace %s: %w", path, err)
	}
	return tr, nil
}

// traceSegment is one piecewise-linear piece of a node's trajectory: the
// node is at from at t0, at to at t1 (t1 > t0), and interpolates linearly
// in between. Segments are disjoint and time-ordered; between segments —
// and after the last — the node holds the previous segment's endpoint.
type traceSegment struct {
	t0, t1   float64
	from, to geom.Point
}

// TraceReplay replays a parsed movement trace as a mobility model with
// piecewise-linear interpolation, so externally generated workloads
// (ns-2 setdest output, measurement traces converted to setdest form)
// become first-class scenarios. A setdest command that arrives while a
// node is still in flight changes course from the node's mid-flight
// position, exactly as ns-2 executes it; after its last command completes
// a node holds its final position. Sampling uses a monotone per-node
// cursor, so times must be non-decreasing across calls (the simulator's
// clock is monotone).
type TraceReplay struct {
	area geom.Rect
	init []geom.Point
	segs [][]traceSegment
	cur  []int
}

// NewTraceReplay compiles a trace into a replayable model. A zero area
// infers the trace's bounding box (traces generated for a W×H field name
// its extremes); an explicit area should contain the trace — positions
// are clamped to it defensively either way.
func NewTraceReplay(tr *Trace, area geom.Rect) (*TraceReplay, error) {
	if tr.N() == 0 {
		return nil, fmt.Errorf("mobility: empty trace")
	}
	if area.W == 0 && area.H == 0 {
		area = tr.Bounds()
	}
	if area.W <= 0 || area.H <= 0 {
		return nil, fmt.Errorf("mobility: degenerate trace area %v", area)
	}
	m := &TraceReplay{
		area: area,
		init: append([]geom.Point(nil), tr.Initial...),
		segs: make([][]traceSegment, tr.N()),
		cur:  make([]int, tr.N()),
	}
	for i := range tr.Initial {
		var segs []traceSegment
		for _, e := range tr.Events[i] {
			et := e.T
			if et < 0 {
				et = 0
			}
			// Where is the node when the command fires? Truncate any
			// segment still in flight at that instant — the new command
			// preempts the old course.
			pos := m.init[i]
			if k := len(segs) - 1; k >= 0 {
				last := &segs[k]
				if et >= last.t1 {
					pos = last.to
				} else {
					if et <= last.t0 {
						// Same-instant override: drop the preempted segment.
						pos = last.from
						segs = segs[:k]
					} else {
						frac := (et - last.t0) / (last.t1 - last.t0)
						pos = last.from.Lerp(last.to, frac)
						last.t1, last.to = et, pos
					}
				}
			}
			if e.Speed <= 0 {
				continue // pause command: hold pos until the next command
			}
			dest := geom.Point{X: e.X, Y: e.Y}
			dur := pos.Dist(dest) / e.Speed
			if dur <= 0 {
				continue // already at the destination
			}
			segs = append(segs, traceSegment{t0: et, t1: et + dur, from: pos, to: dest})
		}
		m.segs[i] = segs
	}
	return m, nil
}

// N implements Model.
func (m *TraceReplay) N() int { return len(m.init) }

// Area implements Model.
func (m *TraceReplay) Area() geom.Rect { return m.area }

// PositionsAt implements Model. t must be non-decreasing across calls.
func (m *TraceReplay) PositionsAt(t float64, dst []geom.Point) {
	for i := range m.segs {
		dst[i] = m.area.Clamp(m.positionAt(i, t))
	}
}

func (m *TraceReplay) positionAt(i int, t float64) geom.Point {
	segs := m.segs[i]
	for m.cur[i] < len(segs) && t >= segs[m.cur[i]].t1 {
		m.cur[i]++
	}
	c := m.cur[i]
	if c >= len(segs) {
		if len(segs) == 0 {
			return m.init[i]
		}
		return segs[len(segs)-1].to
	}
	s := segs[c]
	if t <= s.t0 {
		if c == 0 {
			return s.from
		}
		return segs[c-1].to
	}
	frac := (t - s.t0) / (s.t1 - s.t0)
	return s.from.Lerp(s.to, frac)
}
