// Package mobility provides node-movement models for the MANET simulator.
//
// The paper evaluates CARD under the random way-point (RWP) model; the
// package also offers Static (the paper's sensor-network motivation), a
// bounded RandomWalk for robustness experiments, and the scenario-diversity
// models the small-worlds companion work motivates: GaussMarkov (smooth
// autoregressive drift with tunable memory), RPGM (reference-point group
// mobility — coherent groups with bounded member jitter), and TraceReplay
// (ns-2 setdest traces with piecewise-linear interpolation, so external
// workloads become first-class scenarios).
//
// Waypoint-style models (RWP, RPGM, TraceReplay) are *analytic*:
// Positions(t) is a pure function of the model's seed and t (each node
// follows a deterministic sequence of legs), so the simulator can sample
// positions at arbitrary times without integrating, and two samplings of
// the same time agree exactly. Velocity-process models (RandomWalk,
// GaussMarkov) integrate in fixed epochs instead. All implementations are
// deterministic per construction seed — each node owns a derived RNG
// stream — and require non-decreasing sampling times per model instance.
package mobility

import (
	"fmt"

	"card/internal/geom"
	"card/internal/xrand"
)

// Model yields node positions over time. Time arguments must be
// non-decreasing across calls (the simulator's clock is monotone).
type Model interface {
	// N returns the number of nodes.
	N() int
	// Area returns the deployment area.
	Area() geom.Rect
	// PositionsAt fills dst (length N) with node positions at time t.
	PositionsAt(t float64, dst []geom.Point)
}

// Static pins nodes at their initial placement forever.
type Static struct {
	area geom.Rect
	pos  []geom.Point
}

// NewStatic creates a static model over the given positions.
func NewStatic(pos []geom.Point, area geom.Rect) *Static {
	return &Static{area: area, pos: append([]geom.Point(nil), pos...)}
}

// N implements Model.
func (s *Static) N() int { return len(s.pos) }

// Area implements Model.
func (s *Static) Area() geom.Rect { return s.area }

// PositionsAt implements Model.
func (s *Static) PositionsAt(_ float64, dst []geom.Point) {
	copy(dst, s.pos)
}

// RWPConfig parameterizes the random way-point model.
type RWPConfig struct {
	MinSpeed float64 // m/s, > 0 (zero min speed famously decays RWP to a halt)
	MaxSpeed float64 // m/s, >= MinSpeed
	Pause    float64 // seconds to dwell at each waypoint, >= 0
}

// DefaultRWP matches the era's common NS-2 setup: uniform speed in
// [1, 19] m/s, no pause. The paper does not state its speed range; this
// choice is recorded in EXPERIMENTS.md and configurable everywhere.
func DefaultRWP() RWPConfig { return RWPConfig{MinSpeed: 1, MaxSpeed: 19, Pause: 0} }

func (c RWPConfig) validate() error {
	if c.MinSpeed <= 0 {
		return fmt.Errorf("mobility: MinSpeed must be > 0, got %v", c.MinSpeed)
	}
	if c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: MaxSpeed %v < MinSpeed %v", c.MaxSpeed, c.MinSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	return nil
}

// leg is one segment of a node's trajectory: pause at From until Depart,
// then move to To, arriving at Arrive.
type leg struct {
	from, to geom.Point
	depart   float64
	arrive   float64
}

// RandomWaypoint implements the classic RWP model: each node repeatedly
// picks a uniform destination in the area and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses, and
// repeats. Each node has its own derived RNG stream, so trajectories are
// independent of each other and of sampling granularity.
type RandomWaypoint struct {
	cfg  RWPConfig
	area geom.Rect
	rngs []*xrand.Rand
	legs []leg

	// Lazy-stepping state (see Stepper): pos holds every node's position
	// as of now; a node is either dwelling (in the paused wake queue,
	// keyed by its leg departure) or traveling (on the active list). moved
	// is the scratch slice StepTo returns; work counts per-node
	// advancement operations for the zero-work regression tests.
	now    float64
	pos    []geom.Point
	paused pauseHeap
	active []int32
	moved  []int32
	work   uint64
}

// NewRandomWaypoint creates an RWP model for n nodes. Initial positions are
// uniform in the area (the standard, if slightly non-stationary, choice).
func NewRandomWaypoint(n int, area geom.Rect, cfg RWPConfig, rng *xrand.Rand) (*RandomWaypoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &RandomWaypoint{
		cfg:    cfg,
		area:   area,
		rngs:   make([]*xrand.Rand, n),
		legs:   make([]leg, n),
		pos:    make([]geom.Point, n),
		paused: make(pauseHeap, 0, n),
	}
	for i := 0; i < n; i++ {
		m.rngs[i] = rng.Derive(uint64(i))
		start := geom.Point{X: m.rngs[i].Range(0, area.W), Y: m.rngs[i].Range(0, area.H)}
		m.legs[i] = m.nextLeg(i, start, 0)
		// At t=0 every node sits at its start until the first departure
		// (depart = Pause >= 0), so all nodes enter the wake queue; one
		// heapify beats n ordered pushes.
		m.pos[i] = start
		m.paused = append(m.paused, pauseEntry{at: m.legs[i].depart, id: int32(i)})
	}
	m.paused.heapify()
	return m, nil
}

// nextLeg draws the following waypoint and speed for node i, departing from
// p at time t (after the configured pause).
func (m *RandomWaypoint) nextLeg(i int, p geom.Point, t float64) leg {
	r := m.rngs[i]
	dest := geom.Point{X: r.Range(0, m.area.W), Y: r.Range(0, m.area.H)}
	speed := r.Range(m.cfg.MinSpeed, m.cfg.MaxSpeed)
	if speed <= 0 { // MinSpeed>0 guarantees this, but belt and braces
		speed = m.cfg.MinSpeed
	}
	depart := t + m.cfg.Pause
	travel := p.Dist(dest) / speed
	return leg{from: p, to: dest, depart: depart, arrive: depart + travel}
}

// N implements Model.
func (m *RandomWaypoint) N() int { return len(m.legs) }

// Area implements Model.
func (m *RandomWaypoint) Area() geom.Rect { return m.area }

// PositionsAt implements Model. t must be non-decreasing across calls.
// It is StepTo plus a full copy; both samplers share one trajectory state,
// so interleaving them is safe and bit-identical.
func (m *RandomWaypoint) PositionsAt(t float64, dst []geom.Point) {
	m.StepTo(t)
	copy(dst, m.pos)
}

// RandomWalk moves each node with a constant speed in a random direction,
// re-drawing the direction every Epoch seconds and reflecting off the area
// boundary. A simple adversarial complement to RWP (no convergence to the
// center, persistent motion everywhere).
type RandomWalk struct {
	area  geom.Rect
	speed float64
	epoch float64
	rngs  []*xrand.Rand
	pos   []geom.Point
	vel   []geom.Point
	now   float64
	// phase is the time integrated since the last direction redraw;
	// redraws fire whenever it completes an epoch, independent of how
	// finely PositionsAt is sampled.
	phase float64
}

// NewRandomWalk creates a random-walk model with the given constant speed
// (m/s) and direction-change epoch (s).
func NewRandomWalk(pos []geom.Point, area geom.Rect, speed, epoch float64, rng *xrand.Rand) (*RandomWalk, error) {
	if speed < 0 {
		return nil, fmt.Errorf("mobility: negative speed %v", speed)
	}
	if epoch <= 0 {
		return nil, fmt.Errorf("mobility: non-positive epoch %v", epoch)
	}
	m := &RandomWalk{
		area:  area,
		speed: speed,
		epoch: epoch,
		rngs:  make([]*xrand.Rand, len(pos)),
		pos:   append([]geom.Point(nil), pos...),
		vel:   make([]geom.Point, len(pos)),
	}
	for i := range m.rngs {
		m.rngs[i] = rng.Derive(uint64(i))
		m.redraw(i)
	}
	return m, nil
}

func (m *RandomWalk) redraw(i int) {
	// Uniform direction via rejection sampling on the unit disk: avoids
	// importing math just for Sincos and stays exactly reproducible.
	r := m.rngs[i]
	for {
		x, y := r.Range(-1, 1), r.Range(-1, 1)
		n := geom.Point{X: x, Y: y}.Norm()
		if n > 1e-3 && n <= 1 {
			m.vel[i] = geom.Point{X: x / n * m.speed, Y: y / n * m.speed}
			return
		}
	}
}

// N implements Model.
func (m *RandomWalk) N() int { return len(m.pos) }

// Area implements Model.
func (m *RandomWalk) Area() geom.Rect { return m.area }

// stepEpochs integrates a velocity-process model from *now to t in steps
// that never cross an epoch boundary: advance(dt) integrates the current
// velocities, and onEpoch fires exactly when accumulated time completes an
// epoch — independent of how finely the caller samples — so sub-epoch
// sampling cannot starve the velocity process. *phase carries the partial
// epoch across calls. Shared by RandomWalk and GaussMarkov.
func stepEpochs(t float64, now, phase *float64, epoch float64, advance func(dt float64), onEpoch func()) {
	for t > *now {
		dt := t - *now
		if remain := epoch - *phase; dt >= remain {
			advance(remain)
			*now += remain
			onEpoch()
			*phase = 0
			continue
		}
		advance(dt)
		*now += dt
		*phase += dt
	}
}

// PositionsAt implements Model. Advances internal state; t must be
// non-decreasing. Direction redraws fire whenever integrated time
// completes an epoch — also across calls — so sub-epoch sampling does not
// starve them.
func (m *RandomWalk) PositionsAt(t float64, dst []geom.Point) {
	stepEpochs(t, &m.now, &m.phase, m.epoch, m.advance, func() {
		for i := range m.rngs {
			m.redraw(i)
		}
	})
	copy(dst, m.pos)
}

func (m *RandomWalk) advance(dt float64) {
	for i := range m.pos {
		p := geom.Point{X: m.pos[i].X + m.vel[i].X*dt, Y: m.pos[i].Y + m.vel[i].Y*dt}
		// Reflect off each wall.
		if p.X < 0 {
			p.X = -p.X
			m.vel[i].X = -m.vel[i].X
		}
		if p.X > m.area.W {
			p.X = 2*m.area.W - p.X
			m.vel[i].X = -m.vel[i].X
		}
		if p.Y < 0 {
			p.Y = -p.Y
			m.vel[i].Y = -m.vel[i].Y
		}
		if p.Y > m.area.H {
			p.Y = 2*m.area.H - p.Y
			m.vel[i].Y = -m.vel[i].Y
		}
		m.pos[i] = m.area.Clamp(p)
	}
}
