package mobility

import (
	"fmt"
	"slices"

	"card/internal/geom"
)

// Stepper is the lazy-stepping extension of Model: instead of filling an
// N-sized position array on every sample, a Stepper advances its internal
// state to t and reports only the nodes whose position actually changed.
// The substrate (manet.Network) detects the interface and patches just the
// moved nodes into the topology builder, so a network where most nodes are
// dwelling at a waypoint pays O(moved) per refresh, not O(N).
//
// The contract mirrors Model's analytic guarantee: positions returned by
// StepTo are bit-identical to what PositionsAt would have produced at the
// same time — laziness changes when per-node work happens, never its
// result. Implementations keep a per-node "quiet until" time (the leg
// departure) in a priority queue; a node is touched only while it is
// traveling or when its dwell expires.
type Stepper interface {
	Model
	// StepTo advances internal positions to time t (non-decreasing across
	// calls, interleavable with PositionsAt) and returns the ids of nodes
	// whose position changed since the previous sample, ascending and
	// duplicate-free, plus the full internal position slice. Both returns
	// alias model-owned storage: read-only, valid until the next call.
	StepTo(t float64) (moved []int32, pos []geom.Point)
	// PositionWork returns a monotone counter of per-node advancement
	// operations performed so far. A fully-paused network must advance it
	// by zero across a step — the lazy-mobility regression tests pin this.
	PositionWork() uint64
}

// StepTo implements Stepper for Static: nothing ever moves, nothing is
// ever touched.
func (s *Static) StepTo(float64) ([]int32, []geom.Point) { return nil, s.pos }

// PositionWork implements Stepper for Static (always zero).
func (s *Static) PositionWork() uint64 { return 0 }

// pauseEntry is one dwelling node in the wake queue: id sleeps at its
// waypoint until at (the leg's departure time).
type pauseEntry struct {
	at float64
	id int32
}

// pauseHeap is a binary min-heap on pauseEntry.at. Hand-rolled (rather
// than container/heap) to keep Push/Pop allocation-free on the refresh
// hot path.
type pauseHeap []pauseEntry

func (h *pauseHeap) push(e pauseEntry) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].at <= a[i].at {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *pauseHeap) pop() pauseEntry {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	*h = a[:n]
	h.siftDown(0)
	return top
}

func (h *pauseHeap) siftDown(i int) {
	a := *h
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && a[r].at < a[l].at {
			m = r
		}
		if a[i].at <= a[m].at {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

// heapify establishes the heap invariant over arbitrary contents in O(n);
// used once at construction instead of n pushes.
func (h *pauseHeap) heapify() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// StepTo implements Stepper. Travelers are advanced and re-classified
// first; then every dwell that expired strictly before t is woken (a node
// departing exactly at t is still at its waypoint, matching the eager
// sampler's t <= depart rule). Per-node RNG draws happen in exactly the
// leg order the eager path would have used — laziness defers them, so the
// trajectory is bit-identical to sampling PositionsAt at every refresh.
func (m *RandomWaypoint) StepTo(t float64) ([]int32, []geom.Point) {
	if t < m.now {
		panic(fmt.Sprintf("mobility: StepTo(%v) before now %v", t, m.now))
	}
	if t == m.now {
		return nil, m.pos
	}
	m.moved = m.moved[:0]
	keep := m.active[:0]
	for _, i := range m.active {
		if m.advanceNode(int(i), t) {
			keep = append(keep, i)
		}
	}
	m.active = keep
	for len(m.paused) > 0 && m.paused[0].at < t {
		e := m.paused.pop()
		if m.advanceNode(int(e.id), t) {
			m.active = append(m.active, e.id)
		}
	}
	m.now = t
	slices.Sort(m.moved)
	return m.moved, m.pos
}

// advanceNode brings node i to time t: consume completed legs, place the
// node on its current leg, and report whether it is still traveling
// (callers keep it on the active list) or dwelling (it re-enters the wake
// queue keyed by its departure time).
func (m *RandomWaypoint) advanceNode(i int, t float64) (traveling bool) {
	m.work++
	l := &m.legs[i]
	for t >= l.arrive {
		*l = m.nextLeg(i, l.to, l.arrive)
	}
	var p geom.Point
	traveling = t > l.depart
	if traveling {
		frac := (t - l.depart) / (l.arrive - l.depart)
		p = l.from.Lerp(l.to, frac)
	} else {
		p = l.from
	}
	if p != m.pos[i] {
		m.pos[i] = p
		m.moved = append(m.moved, int32(i))
	}
	if !traveling {
		m.paused.push(pauseEntry{at: l.depart, id: int32(i)})
	}
	return traveling
}

// PositionWork implements Stepper.
func (m *RandomWaypoint) PositionWork() uint64 { return m.work }

var (
	_ Stepper = (*Static)(nil)
	_ Stepper = (*RandomWaypoint)(nil)
)
