package mobility

import (
	"testing"

	"card/internal/geom"
	"card/internal/xrand"
)

// TestStepperZeroWorkWhilePaused is the lazy-mobility regression: random
// waypoint starts every node in its initial dwell (legs depart at
// t = Pause), so stepping anywhere inside that window must touch no node
// at all — no advanceNode calls, no moved ids — however many refreshes
// sample it.
func TestStepperZeroWorkWhilePaused(t *testing.T) {
	area := geom.Rect{W: 1000, H: 1000}
	m, err := NewRandomWaypoint(200, area, RWPConfig{
		MinSpeed: 1, MaxSpeed: 19, Pause: 60,
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if w := m.PositionWork(); w != 0 {
		t.Fatalf("construction already reports %d position work", w)
	}
	for _, tt := range []float64{0.5, 1, 7, 30, 59.9} {
		moved, _ := m.StepTo(tt)
		if len(moved) != 0 {
			t.Fatalf("StepTo(%g) inside the initial dwell moved %d nodes", tt, len(moved))
		}
		if w := m.PositionWork(); w != 0 {
			t.Fatalf("StepTo(%g) inside the initial dwell performed %d position work", tt, w)
		}
	}
	// Crossing the dwell boundary wakes the whole field exactly once.
	moved, _ := m.StepTo(61)
	if len(moved) != 200 {
		t.Fatalf("StepTo past the dwell moved %d/200 nodes", len(moved))
	}
	if w := m.PositionWork(); w != 200 {
		t.Fatalf("StepTo past the dwell performed %d position work, want 200", w)
	}
}

// TestStepperMovedListExact pins the moved list against the positions
// themselves: a node is listed iff its position changed since the last
// step, and the returned slice is ascending — exactly what the eager
// all-positions diff used to compute.
func TestStepperMovedListExact(t *testing.T) {
	area := geom.Rect{W: 500, H: 500}
	m, err := NewRandomWaypoint(150, area, RWPConfig{
		MinSpeed: 2, MaxSpeed: 10, Pause: 3,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]geom.Point, 150)
	_, pos := m.StepTo(0)
	copy(prev, pos)
	for step := 1; step <= 40; step++ {
		tt := float64(step) * 0.7
		moved, pos := m.StepTo(tt)
		inMoved := make(map[int32]bool, len(moved))
		last := int32(-1)
		for _, id := range moved {
			if id <= last {
				t.Fatalf("t=%g: moved list not strictly ascending: %v", tt, moved)
			}
			last = id
			inMoved[id] = true
		}
		for i := range pos {
			if (pos[i] != prev[i]) != inMoved[int32(i)] {
				t.Fatalf("t=%g node %d: changed=%v listed=%v", tt, i, pos[i] != prev[i], inMoved[int32(i)])
			}
		}
		copy(prev, pos)
	}
}

// TestStepperMatchesCoarseSampling pins the lazy stepper's bit-exactness
// against an identically seeded twin sampled only once: intermediate
// StepTo calls must not disturb the trajectory (the per-leg RNG draws
// happen in the same order regardless of sampling).
func TestStepperMatchesCoarseSampling(t *testing.T) {
	area := geom.Rect{W: 800, H: 800}
	mk := func() *RandomWaypoint {
		m, err := NewRandomWaypoint(100, area, RWPConfig{
			MinSpeed: 1, MaxSpeed: 15, Pause: 2,
		}, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fine, coarse := mk(), mk()
	for step := 1; step <= 200; step++ {
		fine.StepTo(float64(step) * 0.25)
	}
	_, a := fine.StepTo(50)
	_, b := coarse.StepTo(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: fine sampling %v, coarse %v", i, a[i], b[i])
		}
	}
}
