package mobility

import (
	"fmt"
	"math"

	"card/internal/geom"
	"card/internal/xrand"
)

// GMConfig parameterizes the Gauss–Markov mobility model.
type GMConfig struct {
	// MeanSpeed is the asymptotic mean speed s̄ in m/s (> 0).
	MeanSpeed float64
	// Alpha is the memory parameter α in [0, 1]: 1 freezes the velocity
	// process (linear motion), 0 makes every epoch an independent draw
	// (Brownian-like motion). Typical literature values are 0.75–0.9.
	Alpha float64
	// SpeedSigma is the standard deviation of the speed noise in m/s
	// (>= 0); the stationary speed distribution is N(MeanSpeed, SpeedSigma).
	SpeedSigma float64
	// DirSigma is the standard deviation of the direction noise in radians
	// (>= 0).
	DirSigma float64
	// Epoch is the velocity-update interval in seconds (> 0).
	Epoch float64
}

// DefaultGM returns the common Gauss–Markov tuning: 10 m/s mean speed with
// moderate memory (α = 0.75) and ~23° direction noise per 1 s epoch.
func DefaultGM() GMConfig {
	return GMConfig{MeanSpeed: 10, Alpha: 0.75, SpeedSigma: 2, DirSigma: 0.4, Epoch: 1}
}

func (c GMConfig) validate() error {
	if c.MeanSpeed <= 0 {
		return fmt.Errorf("mobility: MeanSpeed must be > 0, got %v", c.MeanSpeed)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("mobility: Alpha %v outside [0, 1]", c.Alpha)
	}
	if c.SpeedSigma < 0 || c.DirSigma < 0 {
		return fmt.Errorf("mobility: negative noise sigma (%v, %v)", c.SpeedSigma, c.DirSigma)
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("mobility: non-positive epoch %v", c.Epoch)
	}
	return nil
}

// GaussMarkov implements the Gauss–Markov mobility model: each node's
// speed and direction follow first-order autoregressive processes
//
//	s_k = α·s_{k-1} + (1-α)·s̄ + √(1-α²)·N(0, σ_s)
//	θ_k = α·θ_{k-1} + (1-α)·θ̄ + √(1-α²)·N(0, σ_θ)
//
// updated every Epoch seconds, so trajectories are smooth (no RWP-style
// sharp turns) with tunable temporal correlation. Each node keeps its own
// mean direction θ̄ (drawn uniformly at construction), and nodes reflect
// off the area boundary — position, current direction and mean direction
// are all mirrored, which keeps the stationary node distribution uniform
// instead of piling mass at the walls.
//
// Each node draws from its own derived RNG stream, so trajectories are
// deterministic per construction seed and independent of sampling
// granularity at epoch resolution. Sampling times must be non-decreasing.
type GaussMarkov struct {
	cfg  GMConfig
	area geom.Rect
	rngs []*xrand.Rand
	pos  []geom.Point
	// speed, dir are the current velocity process state; meanDir is the
	// per-node θ̄ the direction process reverts to.
	speed, dir, meanDir []float64
	now                 float64
	// phase is the time integrated since the last velocity update; the
	// AR(1) step fires whenever it completes an Epoch, so update times are
	// independent of how finely the caller samples PositionsAt.
	phase float64
}

// NewGaussMarkov creates a Gauss–Markov model for n nodes with uniform
// initial placement, uniform initial direction, and initial speed s̄.
func NewGaussMarkov(n int, area geom.Rect, cfg GMConfig, rng *xrand.Rand) (*GaussMarkov, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &GaussMarkov{
		cfg:     cfg,
		area:    area,
		rngs:    make([]*xrand.Rand, n),
		pos:     make([]geom.Point, n),
		speed:   make([]float64, n),
		dir:     make([]float64, n),
		meanDir: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.rngs[i] = rng.Derive(uint64(i))
		r := m.rngs[i]
		m.pos[i] = geom.Point{X: r.Range(0, area.W), Y: r.Range(0, area.H)}
		m.dir[i] = r.Range(0, 2*math.Pi)
		m.meanDir[i] = m.dir[i]
		m.speed[i] = cfg.MeanSpeed
	}
	return m, nil
}

// N implements Model.
func (m *GaussMarkov) N() int { return len(m.pos) }

// Area implements Model.
func (m *GaussMarkov) Area() geom.Rect { return m.area }

// PositionsAt implements Model. Advances internal state; t must be
// non-decreasing across calls. Velocity updates fire whenever integrated
// time completes an Epoch — also across calls — so sampling finer than
// the epoch (the engine refreshes every ValidatePeriod slice) still steps
// the AR(1) process on schedule (see stepEpochs).
func (m *GaussMarkov) PositionsAt(t float64, dst []geom.Point) {
	stepEpochs(t, &m.now, &m.phase, m.cfg.Epoch, m.advance, m.updateVelocities)
	copy(dst, m.pos)
}

// advance integrates the current velocities over dt with boundary
// reflection.
func (m *GaussMarkov) advance(dt float64) {
	for i := range m.pos {
		sin, cos := math.Sincos(m.dir[i])
		p := geom.Point{
			X: m.pos[i].X + m.speed[i]*cos*dt,
			Y: m.pos[i].Y + m.speed[i]*sin*dt,
		}
		if p.X < 0 {
			p.X = -p.X
			m.dir[i] = math.Pi - m.dir[i]
			m.meanDir[i] = math.Pi - m.meanDir[i]
		}
		if p.X > m.area.W {
			p.X = 2*m.area.W - p.X
			m.dir[i] = math.Pi - m.dir[i]
			m.meanDir[i] = math.Pi - m.meanDir[i]
		}
		if p.Y < 0 {
			p.Y = -p.Y
			m.dir[i] = -m.dir[i]
			m.meanDir[i] = -m.meanDir[i]
		}
		if p.Y > m.area.H {
			p.Y = 2*m.area.H - p.Y
			m.dir[i] = -m.dir[i]
			m.meanDir[i] = -m.meanDir[i]
		}
		m.pos[i] = m.area.Clamp(p)
	}
}

// updateVelocities applies one step of the AR(1) recurrences.
func (m *GaussMarkov) updateVelocities() {
	a := m.cfg.Alpha
	noise := math.Sqrt(1 - a*a)
	for i, r := range m.rngs {
		s := a*m.speed[i] + (1-a)*m.cfg.MeanSpeed + noise*m.cfg.SpeedSigma*r.NormFloat64()
		if s < 0 {
			s = 0 // speeds are magnitudes; the direction term carries heading
		}
		m.speed[i] = s
		m.dir[i] = a*m.dir[i] + (1-a)*m.meanDir[i] + noise*m.cfg.DirSigma*r.NormFloat64()
	}
}
