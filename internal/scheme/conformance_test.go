package scheme_test

import (
	"testing"

	"card/internal/scheme"
	"card/internal/scheme/schemetest"
)

// TestConformance subjects every registered scheme to the cross-scheme
// conformance bench. A scheme that registers and fails here is broken by
// definition — the engine, workload and sweep layers assume these
// invariants.
func TestConformance(t *testing.T) {
	for _, name := range scheme.Names() {
		name := name
		t.Run(name, func(t *testing.T) { schemetest.RunConformance(t, name) })
	}
}
