// Package scheme turns resource discovery into a pluggable layer: every
// mechanism the repo can compare — CARD's contact architecture, the
// flooding and expanding-ring baselines, ZRP bordercasting, Rendezvous
// Regions — implements one DiscoveryScheme interface, and the engine,
// workload, sweep and experiment layers consume the interface instead of
// hardwired per-scheme arms. Registering a new scheme makes it appear in
// every sweep grid, the sustained-traffic experiment and `cardsim
// -scheme` for free, and subjects it to the cross-scheme conformance
// suite (schemetest).
//
// # Accounting and the sharding contract
//
// Workers mirror the card.Querier idiom: each worker owns private message
// tallies (a manet.Counters) and scratch, Discover never mutates shared
// scheme state, and Flush adds the local tallies to the network's shared
// recorder — called serially, in worker order, after the batch joins.
// Because per-query results are pure functions of the snapshot and
// category sums are commutative, the outcome stream and the recorder
// totals are bit-identical between serial and sharded execution at any
// GOMAXPROCS, for every scheme. Setup and Maintain run on the serial
// driver loop between ticks and account directly on the shared recorder.
package scheme

import (
	"fmt"
	"sort"

	"card/internal/card"
	"card/internal/manet"
	"card/internal/resource"
	"card/internal/topology"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Env is everything a scheme instance binds to: one simulation's network
// substrate, CARD protocol instance (for schemes that ride the contact or
// neighborhood state) and resource directory. A scheme instance lives for
// one run; build a fresh one per simulation.
type Env struct {
	// Net is the network substrate (required).
	Net *manet.Network
	// Prot is the CARD protocol instance. Required by the card and
	// bordercast schemes (bordercast reuses the R-hop neighborhood as its
	// zone); the flooding and rendezvous schemes ignore it.
	Prot *card.Protocol
	// Dir is the resource directory queries resolve against (required).
	Dir *resource.Directory
	// Seed decorrelates any scheme-internal randomness from the driver's
	// streams. The built-in schemes are deterministic and ignore it.
	Seed uint64
	// RegionsPerSide overrides the rendezvous region grid edge (K regions
	// per side, K² regions). 0 sizes the grid from the deployment area and
	// radio range.
	RegionsPerSide int
}

func (e Env) validate(name string) error {
	if e.Net == nil || e.Dir == nil {
		return fmt.Errorf("scheme %s: Env needs Net and Dir", name)
	}
	return nil
}

// DiscoveryScheme is one constructed discovery mechanism. Setup and
// Maintain mutate scheme state and account on the shared recorder; they
// run on the serial driver loop. Worker hands out per-worker query state
// for the sharded fan-out.
type DiscoveryScheme interface {
	// Name returns the registered scheme name.
	Name() string
	// Setup runs one-time registration after the directory is placed
	// (rendezvous registration floods; a no-op for stateless schemes).
	Setup()
	// Maintain runs the scheme's per-tick maintenance at simulation time
	// now — re-registration after region exit or churn. The driver calls
	// it after advancing the clock, before the tick's queries.
	Maintain(now float64)
	// Worker returns a new query worker with private accounting. Workers
	// are valid for the lifetime of the scheme; reuse them across ticks.
	Worker() Worker
}

// Worker is the per-worker query surface: Discover resolves one query,
// tallying messages locally; Flush adds the local tallies to the shared
// recorder. Call Flush serially, in worker order, after the batch joins.
type Worker interface {
	Discover(src NodeID, id resource.ID) resource.Result
	Flush()
}

// Factory builds a scheme instance over an environment.
type Factory func(env Env) (DiscoveryScheme, error)

// builtins is the static registry; extensions register at init time.
var builtins = map[string]Factory{
	"card":       newCard,
	"flood":      newFlood,
	"ring":       newRing,
	"bordercast": newBordercast,
	"rendezvous": newRendezvous,
}

// Register adds a scheme factory under name. Registering over a built-in
// or an already-registered name is a programming error.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("scheme: empty name or nil factory")
	}
	if _, dup := builtins[name]; dup {
		return fmt.Errorf("scheme: %q already registered", name)
	}
	builtins[name] = f
	return nil
}

// Names lists the registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether name resolves to a registered scheme ("" resolves
// to the default, card).
func Known(name string) bool {
	_, ok := builtins[Canon(name)]
	return ok
}

// Canon resolves the empty scheme name to the default, "card".
func Canon(name string) string {
	if name == "" {
		return "card"
	}
	return name
}

// New builds the named scheme over env. The empty name builds the default
// CARD scheme.
func New(name string, env Env) (DiscoveryScheme, error) {
	canon := Canon(name)
	f, ok := builtins[canon]
	if !ok {
		return nil, fmt.Errorf("scheme: unknown scheme %q (have %v)", name, Names())
	}
	if err := env.validate(canon); err != nil {
		return nil, err
	}
	return f(env)
}
