package scheme

import (
	"testing"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/resource"
	"card/internal/xrand"
)

// lineEnv builds a hand-checkable topology: a 4-node line 0—1—2—3 (60 m
// spacing, 70 m range) plus an isolated node 4, with a zone-2 CARD
// protocol providing the bordercast substrate.
func lineEnv(t *testing.T) Env {
	t.Helper()
	a := geom.Rect{W: 1100, H: 50}
	pts := []geom.Point{
		{X: 0, Y: 10}, {X: 60, Y: 10}, {X: 120, Y: 10}, {X: 180, Y: 10},
		{X: 1000, Y: 10}, // isolated
	}
	net := manet.New(mobility.NewStatic(pts, a), 70, xrand.New(2))
	cfg := card.Config{R: 2, MaxContactDist: 8, NoC: 2, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	prot, err := card.New(net, nb, cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prot.SelectAll(0)
	return Env{Net: net, Prot: prot, Dir: resource.NewDirectory(net.N())}
}

// TestBordercastAccountingHandComputed pins the bordercast scheme arm's
// recorder totals on the line. Node 0 queries the holder at node 3, one
// hop outside its zone (ρ = 2). The first bordercast relay 0→1 lets node
// 1's zone table answer — dist 1 + zone distance 2 = a 3-hop route —
// so the cascade charges exactly one query transmission plus the 3-hop
// reply: CatQuery 1, CatReply 3, 4 messages total.
func TestBordercastAccountingHandComputed(t *testing.T) {
	env := lineEnv(t)
	env.Dir.Place(9, 3)
	s, err := New("bordercast", env)
	if err != nil {
		t.Fatal(err)
	}
	s.Setup()
	w := s.Worker()
	before := env.Net.Totals() // contact selection already charged traffic
	r := w.Discover(0, 9)
	if !r.Found || r.Holder != 3 || r.PathHops != 3 || r.Messages != 4 {
		t.Fatalf("result = %+v, want holder 3, 3 hops, 4 messages", r)
	}
	w.Flush()
	totals := env.Net.Totals().DiffSince(before)
	if q := totals.Get(manet.CatQuery); q != 1 {
		t.Errorf("CatQuery = %d, want 1 (single relay 0→1)", q)
	}
	if p := totals.Get(manet.CatReply); p != 3 {
		t.Errorf("CatReply = %d, want 3 (reply along the 3-hop route)", p)
	}
	if got := totals.Total(); got != r.Messages {
		t.Errorf("recorder total %d != result messages %d", got, r.Messages)
	}
}

// TestBordercastDeadSearchHandComputed pins the dead cascade: the only
// holder is the isolated node, so the query bordercasts until coverage
// runs out. On the line that is the relays 0→1 and 1→2 (round one reaches
// peripheral node 2; round two finds node 2's periphery already covered):
// CatQuery 2, no reply.
func TestBordercastDeadSearchHandComputed(t *testing.T) {
	env := lineEnv(t)
	env.Dir.Place(9, 4)
	s, err := New("bordercast", env)
	if err != nil {
		t.Fatal(err)
	}
	s.Setup()
	w := s.Worker()
	before := env.Net.Totals()
	r := w.Discover(0, 9)
	if r.Found || r.PathHops != -1 || r.Messages != 2 {
		t.Fatalf("result = %+v, want failed search costing 2 messages", r)
	}
	w.Flush()
	totals := env.Net.Totals().DiffSince(before)
	if q := totals.Get(manet.CatQuery); q != 2 {
		t.Errorf("CatQuery = %d, want 2", q)
	}
	if p := totals.Get(manet.CatReply); p != 0 {
		t.Errorf("CatReply = %d, want 0", p)
	}
}
