// Rendezvous Regions (Seada & Helmy): resource keys hash to geographic
// regions of the deployment area; holders register their bindings with
// the nodes currently inside the key's region, and lookups geo-route to
// that region and flood it locally. Registration and lookup meet in the
// same region by construction — the rendezvous.
package scheme

import (
	"fmt"
	"math"
	"sort"

	"card/internal/flood"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/resource"
	"card/internal/topology"
)

// RegionGrid hashes resource keys onto a K×K grid of equal rectangular
// regions tiling a deployment area. The key→region map is a pure hash —
// no state, no geometry of the key — so every node computes the same
// region from the key alone, which is the whole trick: registration and
// lookup agree on the rendezvous without any coordination.
type RegionGrid struct {
	area geom.Rect
	k    int
}

// NewRegionGrid builds a K-per-side grid over area.
func NewRegionGrid(area geom.Rect, k int) (RegionGrid, error) {
	if k < 1 {
		return RegionGrid{}, fmt.Errorf("rendezvous: regions per side %d < 1", k)
	}
	if area.W <= 0 || area.H <= 0 {
		return RegionGrid{}, fmt.Errorf("rendezvous: empty area %vx%v", area.W, area.H)
	}
	return RegionGrid{area: area, k: k}, nil
}

// K returns the grid edge (regions per side).
func (g RegionGrid) K() int { return g.k }

// Regions returns the number of regions, K².
func (g RegionGrid) Regions() int { return g.k * g.k }

// RegionOf maps a resource key to its rendezvous region index in
// [0, Regions()). The map is a pure function of the key and the grid —
// stable across runs and identical on the registration and lookup paths.
func (g RegionGrid) RegionOf(id resource.ID) int {
	return int(hash64(uint64(uint32(id))) % uint64(g.k*g.k))
}

// RegionAt maps a position to the region containing it. Positions on the
// far edges clamp into the last row/column, so every in-area point — and,
// defensively, any point outside — lands in a valid region.
func (g RegionGrid) RegionAt(p geom.Point) int {
	col := int(p.X / g.area.W * float64(g.k))
	row := int(p.Y / g.area.H * float64(g.k))
	if col < 0 {
		col = 0
	} else if col >= g.k {
		col = g.k - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.k {
		row = g.k - 1
	}
	return row*g.k + col
}

// hash64 is the splitmix64 finalizer — a fixed, seedless bijection on
// uint64, so the key→region map never drifts between runs or hosts.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rrBinding is one (resource, holder) registration and its anchor — the
// region resident the binding was delivered to. anchor < 0 means the
// binding is currently unregistered (holder down, or the region had no
// reachable resident at the last attempt).
type rrBinding struct {
	id     resource.ID
	holder NodeID
	anchor NodeID
}

// rendezvous implements Rendezvous Regions over the snapshot substrate.
//
// Registration (Setup, and re-registration from Maintain) unicasts each
// binding from its holder to the nearest current resident of the key's
// region, then floods the region's residents; both legs charge
// CatRegister on the shared recorder. Maintain re-registers a binding
// when its anchor died or drifted out of the region — the mobile-holder
// re-registration rule — and drops bindings whose holder is down.
//
// Lookup (Worker.Discover) unicasts to the nearest reachable region
// resident and floods the region (CatQuery); a live registered binding
// answers with a unicast reply back to the querier (CatReply). Workers
// only read the shared binding/residency state — Setup and Maintain,
// which mutate it, run on the serial driver loop between ticks.
type rendezvous struct {
	env  Env
	grid RegionGrid

	// residents[r] lists the up nodes currently positioned in region r,
	// ascending. Rebuilt by Setup and Maintain from the live snapshot.
	residents [][]NodeID
	// regs holds every binding, sorted by (id, holder); index maps an id
	// to its [start, end) slice of regs. Both are built once in Setup —
	// the directory's placement is fixed for a run.
	regs  []rrBinding
	index map[resource.ID][2]int
	// byHolder orders regs indices by (holder, id) so registration passes
	// reuse one BFS per holder.
	byHolder []int
}

// defaultRegionsPerSide sizes the grid so a region spans a few radio
// ranges: large enough that region-local floods stay cheap relative to
// the network, small enough that regions are rarely empty.
func defaultRegionsPerSide(area geom.Rect, txRange float64) int {
	if txRange <= 0 {
		return 1
	}
	side := math.Min(area.W, area.H)
	k := int(side / (4 * txRange))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

func newRendezvous(env Env) (DiscoveryScheme, error) {
	k := env.RegionsPerSide
	if k == 0 {
		k = defaultRegionsPerSide(env.Net.Area(), env.Net.TxRange())
	}
	grid, err := NewRegionGrid(env.Net.Area(), k)
	if err != nil {
		return nil, err
	}
	s := &rendezvous{env: env, grid: grid}
	s.residents = make([][]NodeID, grid.Regions())
	return s, nil
}

func (s *rendezvous) Name() string { return "rendezvous" }

// Grid exposes the region grid (tests pin the hash contract through it).
func (s *rendezvous) Grid() RegionGrid { return s.grid }

// RegistrationRegion returns the region a holder registers id into.
func (s *rendezvous) RegistrationRegion(id resource.ID) int { return s.grid.RegionOf(id) }

// LookupRegion returns the region a querier sends a lookup for id to.
// It must always agree with RegistrationRegion — that agreement is the
// rendezvous invariant FuzzRegionHash pins.
func (s *rendezvous) LookupRegion(id resource.ID) int { return s.grid.RegionOf(id) }

// Setup snapshots the directory into the binding table and runs the
// initial registration round, charging CatRegister on the shared
// recorder.
func (s *rendezvous) Setup() {
	s.refreshResidents()
	dir := s.env.Dir
	s.regs = s.regs[:0]
	s.index = make(map[resource.ID][2]int, dir.Resources())
	for _, id := range dir.IDs() {
		start := len(s.regs)
		for _, h := range dir.Holders(id) {
			s.regs = append(s.regs, rrBinding{id: id, holder: h, anchor: -1})
		}
		s.index[id] = [2]int{start, len(s.regs)}
	}
	s.byHolder = make([]int, len(s.regs))
	for i := range s.byHolder {
		s.byHolder[i] = i
	}
	// regs is sorted by (id, holder); re-key the index view by (holder, id)
	// with a stable insertion order so one BFS serves each holder's batch.
	sortByHolder(s.byHolder, s.regs)
	s.registerAll()
}

// Maintain re-runs residency and repairs registrations: a binding whose
// anchor is down or has moved out of the rendezvous region is
// re-registered from its holder; bindings of down holders are dropped
// (anchor cleared) without charge — a dead node transmits nothing — and
// re-registered when the holder returns.
func (s *rendezvous) Maintain(now float64) {
	s.refreshResidents()
	s.registerAll()
}

// registerAll walks bindings in (holder, id) order and (re-)registers
// every binding that needs it, reusing one BFS per holder.
func (s *rendezvous) registerAll() {
	net := s.env.Net
	rec := net.Recorder()
	var bfs *topology.BFSResult
	last := NodeID(-1)
	for _, i := range s.byHolder {
		b := &s.regs[i]
		if net.Down(b.holder) {
			b.anchor = -1
			continue
		}
		if !s.needsRegistration(b) {
			continue
		}
		if b.holder != last || bfs == nil {
			bfs = net.Graph().BFS(b.holder)
			last = b.holder
		}
		region := s.grid.RegionOf(b.id)
		gate, dist := s.nearestResident(region, bfs)
		if gate < 0 {
			// The rendezvous region has no reachable resident right now:
			// the registration packet cannot be delivered. The holder
			// retries on a later maintenance round; no charge — suppressed
			// by the holder's own (free, proactive) view of the void.
			b.anchor = -1
			continue
		}
		// Unicast holder→gate, then flood the region's residents: each
		// resident rebroadcasts the binding once.
		rec.Record(manet.CatRegister, int64(dist)+int64(len(s.residents[region])))
		b.anchor = gate
	}
}

// needsRegistration reports whether binding b must (re-)register: never
// registered, anchor died, or anchor drifted out of the rendezvous
// region.
func (s *rendezvous) needsRegistration(b *rrBinding) bool {
	if b.anchor < 0 {
		return true
	}
	if s.env.Net.Down(b.anchor) {
		return true
	}
	return s.grid.RegionAt(s.env.Net.Position(b.anchor)) != s.grid.RegionOf(b.id)
}

// refreshResidents rebuilds the per-region resident lists from the live
// snapshot (up nodes only, ascending by construction).
func (s *rendezvous) refreshResidents() {
	for r := range s.residents {
		s.residents[r] = s.residents[r][:0]
	}
	net := s.env.Net
	n := net.N()
	for u := 0; u < n; u++ {
		if net.Down(NodeID(u)) {
			continue
		}
		r := s.grid.RegionAt(net.Position(NodeID(u)))
		s.residents[r] = append(s.residents[r], NodeID(u))
	}
}

// nearestResident returns the reachable resident of region nearest to
// bfs's source (ties to the lowest id) and its distance, or (-1, -1).
func (s *rendezvous) nearestResident(region int, bfs *topology.BFSResult) (NodeID, int32) {
	gate := NodeID(-1)
	best := int32(1 << 30)
	for _, u := range s.residents[region] {
		if d := bfs.Dist[u]; d >= 0 && d < best {
			best = d
			gate = u
		}
	}
	if gate < 0 {
		return -1, -1
	}
	return gate, best
}

func (s *rendezvous) Worker() Worker { return &rrWorker{s: s} }

type rrWorker struct {
	s    *rendezvous
	pend manet.Counters
}

// Discover looks id up through its rendezvous region: unicast to the
// nearest reachable resident, region-local flood, and — when a live
// registered binding is present — a unicast reply carrying the nearest
// live holder. An unknown or unregistered resource still pays the full
// region lookup; only a resource the querier itself holds is free.
func (w *rrWorker) Discover(src NodeID, id resource.ID) resource.Result {
	s := w.s
	net := s.env.Net
	for _, h := range s.env.Dir.Holders(id) {
		if h == src {
			return resource.Result{Found: true, Holder: src, PathHops: 0}
		}
	}
	region := s.LookupRegion(id)
	bfs := net.Graph().BFS(src)
	gate, dist := s.nearestResident(region, bfs)
	if gate < 0 {
		// Geo-routing toward an unpopulated-or-unreachable region
		// degenerates to a dead search over src's component.
		r := flood.FloodR(net, &w.pend, src)
		return resource.Result{Found: false, Messages: r.Messages, PathHops: -1}
	}
	// Unicast src→gate plus the region-local flood.
	msgs := int64(dist) + int64(len(s.residents[region]))
	w.pend.Record(manet.CatQuery, msgs)
	// A binding answers when it is registered, its holder is up, and the
	// holder is reachable from the querier — the reply carries a route,
	// and a partitioned holder is a lookup failure just like a stale
	// binding. Ties between equidistant holders go to the lowest id, so
	// the outcome is invariant under holder insertion order.
	best := NodeID(-1)
	if span, ok := s.index[id]; ok {
		for i := span[0]; i < span[1]; i++ {
			b := s.regs[i]
			if b.anchor < 0 || net.Down(b.holder) || bfs.Dist[b.holder] < 0 {
				continue
			}
			if best < 0 || bfs.Dist[b.holder] < bfs.Dist[best] ||
				(bfs.Dist[b.holder] == bfs.Dist[best] && b.holder < best) {
				best = b.holder
			}
		}
	}
	if best < 0 {
		return resource.Result{Found: false, Messages: msgs, PathHops: -1}
	}
	// Reply unicasts back along the gate route.
	w.pend.Record(manet.CatReply, int64(dist))
	msgs += int64(dist)
	return resource.Result{Found: true, Holder: best, Messages: msgs, PathHops: int(bfs.Dist[best])}
}

func (w *rrWorker) Flush() {
	w.pend.AddTo(w.s.env.Net.Recorder())
	w.pend.Reset()
}

// sortByHolder sorts reg indices by (holder, id) without ranging a map.
func sortByHolder(idx []int, regs []rrBinding) {
	sort.Slice(idx, func(a, b int) bool {
		x, y := regs[idx[a]], regs[idx[b]]
		if x.holder != y.holder {
			return x.holder < y.holder
		}
		return x.id < y.id
	})
}
