package scheme

import (
	"sort"
	"strings"
	"testing"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/resource"
	"card/internal/topology"
	"card/internal/xrand"
)

// testEnv builds a minimal static environment for registry-level tests.
func testEnv(t *testing.T, n int) Env {
	t.Helper()
	area := geom.Rect{W: 300, H: 300}
	rng := xrand.New(1)
	pts := topology.UniformPositions(n, area, rng)
	net := manet.New(mobility.NewStatic(pts, area), 60, rng.Derive(1))
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	prot, err := card.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		t.Fatal(err)
	}
	prot.SelectAll(0)
	return Env{Net: net, Prot: prot, Dir: resource.NewDirectory(net.N())}
}

func TestNamesSortedAndKnown(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	for _, want := range []string{"bordercast", "card", "flood", "rendezvous", "ring"} {
		if !Known(want) {
			t.Errorf("built-in %q not Known", want)
		}
	}
	if Known("zone-flooding") {
		t.Error("Known accepted an unregistered name")
	}
}

func TestCanon(t *testing.T) {
	if got := Canon(""); got != "card" {
		t.Errorf("Canon(\"\") = %q, want card", got)
	}
	if got := Canon("ring"); got != "ring" {
		t.Errorf("Canon(ring) = %q", got)
	}
}

// TestBuiltinsIdentify pins that every built-in constructs over a full
// environment, reports its registered name, and tolerates the no-op
// lifecycle calls.
func TestBuiltinsIdentify(t *testing.T) {
	env := testEnv(t, 20)
	for _, name := range Names() {
		s, err := New(name, env)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
		s.Setup()
		s.Maintain(0)
		if s.Worker() == nil {
			t.Errorf("%s: nil Worker", name)
		}
	}
}

func TestNewErrors(t *testing.T) {
	env := testEnv(t, 10)
	if _, err := New("warp", env); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("New(warp) err = %v, want unknown-scheme error naming it", err)
	}
	if _, err := New("flood", Env{}); err == nil {
		t.Error("New(flood) over empty Env succeeded")
	}
	// card and bordercast additionally require the protocol instance.
	bare := Env{Net: env.Net, Dir: env.Dir}
	for _, name := range []string{"card", "bordercast"} {
		if _, err := New(name, bare); err == nil || !strings.Contains(err.Error(), "Prot") {
			t.Errorf("New(%s) without Prot err = %v, want needs-Prot error", name, err)
		}
	}
}

// TestRegister exercises the extension path: bad registrations are
// rejected, and a registered factory becomes reachable through Known,
// Names and New. The registered name delegates to the flood factory so
// it satisfies the conformance contract should any later test sweep the
// registry. This test runs last in the file for the same reason.
func TestRegister(t *testing.T) {
	if err := Register("", newFlood); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := Register("x", nil); err == nil {
		t.Error("Register with nil factory succeeded")
	}
	if err := Register("card", newFlood); err == nil {
		t.Error("Register over built-in card succeeded")
	}
	if err := Register("test-flood-alias", newFlood); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !Known("test-flood-alias") {
		t.Error("registered scheme not Known")
	}
	env := testEnv(t, 10)
	if _, err := New("test-flood-alias", env); err != nil {
		t.Errorf("New of registered scheme: %v", err)
	}
	found := false
	for _, n := range Names() {
		found = found || n == "test-flood-alias"
	}
	if !found {
		t.Error("registered scheme missing from Names")
	}
}
