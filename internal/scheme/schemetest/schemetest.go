// Package schemetest is the cross-scheme conformance bench: every
// registered DiscoveryScheme — built-in or external — must pass
// RunConformance, which pins the invariants the engine, workload and
// sweep layers rely on:
//
//   - an unknown resource is never Found;
//   - a self-held resource resolves for free: Holder == src, zero
//     messages, zero hops, nothing on the recorder;
//   - outcomes are invariant under holder insertion order (Found for
//     every scheme; full cost for every scheme except card, whose remote
//     search probes holders in directory insertion order by design);
//   - identical runs are bit-identical, results and recorder totals both;
//   - serial and sharded execution agree: under mobility and churn, the
//     per-query outcome stream, the message totals and the workload
//     report are bit-identical across worker counts and GOMAXPROCS.
//
// The harness builds deterministic environments (Env) so scheme authors
// can reuse it for their own tests beyond the conformance set.
package schemetest

import (
	"reflect"
	"runtime"
	"testing"

	"card/internal/card"
	"card/internal/engine"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/resource"
	"card/internal/scheme"
	"card/internal/topology"
	"card/internal/workload"
	"card/internal/xrand"
)

// Env builds a deterministic static scenario: n nodes placed uniformly in
// a 710 m × 710 m area, 50 m radio range, a warmed CARD protocol
// (R 3, NoC 5) and an empty directory. Equal seeds give identical
// environments, bit for bit.
func Env(tb testing.TB, seed uint64, n int) scheme.Env {
	tb.Helper()
	area := geom.Rect{W: 710, H: 710}
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	net := manet.New(mobility.NewStatic(pts, area), 50, rng.Derive(1))
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	prot, err := card.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		tb.Fatal(err)
	}
	prot.SelectAll(0)
	return scheme.Env{Net: net, Prot: prot, Dir: resource.NewDirectory(net.N()), Seed: seed}
}

// LossyEnv builds a deterministic static scenario over a directed, lossy
// link graph: the same 710 m × 710 m field as Env, but per-node radio
// ranges spread ±50% around 50 m (so the unit-disk graph is directed and
// some links are asymmetric) and a 15% per-hop loss rate with a 2-retry
// budget. Equal seeds give identical environments, bit for bit.
func LossyEnv(tb testing.TB, seed uint64, n int) scheme.Env {
	tb.Helper()
	area := geom.Rect{W: 710, H: 710}
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	rr := rng.Derive(3)
	ranges := make([]float64, n)
	for i := range ranges {
		ranges[i] = 50 * (1 + 0.5*rr.Range(-1, 1))
	}
	net := manet.NewNetwork(mobility.NewStatic(pts, area), manet.Config{
		Link: topology.LinkModel{Uniform: 50, Ranges: ranges},
		Loss: manet.LossConfig{Rate: 0.15, Retries: 2},
	}, rng.Derive(1))
	cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2}
	nb := neighborhood.NewOracle(net, cfg.R)
	prot, err := card.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		tb.Fatal(err)
	}
	prot.SelectAll(0)
	return scheme.Env{Net: net, Prot: prot, Dir: resource.NewDirectory(net.N()), Seed: seed}
}

// New builds the named scheme over env, failing the test on error.
func New(tb testing.TB, name string, env scheme.Env) scheme.DiscoveryScheme {
	tb.Helper()
	s, err := scheme.New(name, env)
	if err != nil {
		tb.Fatalf("scheme.New(%q): %v", name, err)
	}
	return s
}

// RunConformance runs the full conformance bench against the named
// scheme. Call it once per registered scheme.
func RunConformance(t *testing.T, name string) {
	t.Run("unknown-never-found", func(t *testing.T) { UnknownNeverFound(t, name) })
	t.Run("self-held-free", func(t *testing.T) { SelfHeldFree(t, name) })
	t.Run("holder-order-invariant", func(t *testing.T) { HolderOrderInvariant(t, name) })
	t.Run("deterministic", func(t *testing.T) { Deterministic(t, name) })
	t.Run("parallel-equivalent", func(t *testing.T) { ParallelEquivalent(t, name) })
	t.Run("directed-lossy", func(t *testing.T) { DirectedLossy(t, name) })
}

// UnknownNeverFound pins that a query for a resource with no holders (or
// one that was never placed at all) never reports Found, from any source.
func UnknownNeverFound(t *testing.T, name string) {
	env := Env(t, 11, 60)
	for i := 0; i < 5; i++ {
		env.Dir.Place(resource.ID(i), scheme.NodeID(i*7))
	}
	s := New(t, name, env)
	s.Setup()
	w := s.Worker()
	for src := 0; src < env.Net.N(); src += 5 {
		if r := w.Discover(scheme.NodeID(src), resource.ID(9999)); r.Found {
			t.Fatalf("%s: unknown resource Found from node %d: %+v", name, src, r)
		}
	}
	w.Flush()
}

// SelfHeldFree pins that querying a resource the source itself holds
// costs nothing: Found with Holder == src, zero messages, zero hops, and
// no transmissions reach the recorder.
func SelfHeldFree(t *testing.T, name string) {
	env := Env(t, 12, 60)
	holders := []scheme.NodeID{3, 17, 41}
	for _, h := range holders {
		env.Dir.Place(7, h)
	}
	s := New(t, name, env)
	s.Setup() // rendezvous registration may charge; snapshot after it
	w := s.Worker()
	before := env.Net.Totals()
	for _, src := range holders {
		r := w.Discover(src, 7)
		if !r.Found || r.Holder != src || r.Messages != 0 || r.PathHops != 0 {
			t.Fatalf("%s: self-held query from %d not free: %+v", name, src, r)
		}
	}
	w.Flush()
	if d := env.Net.Totals().DiffSince(before); d.Total() != 0 {
		t.Fatalf("%s: self-held queries charged the recorder: %v", name, d)
	}
}

// HolderOrderInvariant pins that discovery outcomes do not depend on the
// order holders were placed in the directory. Found must be invariant for
// every scheme. The cost (Messages, PathHops) must also be invariant for
// every scheme except card: CARD's remote search probes holders one at a
// time in directory insertion order — a documented property of the
// protocol, not an accounting bug — so only its hit/miss outcome is
// order-free.
func HolderOrderInvariant(t *testing.T, name string) {
	orders := [][]scheme.NodeID{{40, 5, 23}, {23, 40, 5}, {5, 23, 40}}
	var ref []resource.Result
	for oi, order := range orders {
		env := Env(t, 13, 60)
		for _, h := range order {
			env.Dir.Place(3, h)
		}
		s := New(t, name, env)
		s.Setup()
		w := s.Worker()
		got := make([]resource.Result, 0, env.Net.N())
		for src := 0; src < env.Net.N(); src++ {
			got = append(got, w.Discover(scheme.NodeID(src), 3))
		}
		w.Flush()
		if oi == 0 {
			ref = got
			continue
		}
		for i := range got {
			if got[i].Found != ref[i].Found {
				t.Fatalf("%s: Found depends on holder order: src %d, order %v: %+v vs %+v",
					name, i, order, got[i], ref[i])
			}
			if name == "card" {
				continue
			}
			if got[i].Messages != ref[i].Messages || got[i].PathHops != ref[i].PathHops {
				t.Fatalf("%s: cost depends on holder order: src %d, order %v: %+v vs %+v",
					name, i, order, got[i], ref[i])
			}
		}
	}
}

// Deterministic pins that two runs built from the same seed produce
// bit-identical outcome streams and recorder totals.
func Deterministic(t *testing.T, name string) {
	run := func() ([]resource.Result, manet.Counters) {
		env := Env(t, 14, 80)
		place := xrand.New(99)
		for id := 0; id < 12; id++ {
			env.Dir.PlaceReplicas(resource.ID(id), 2, place)
		}
		s := New(t, name, env)
		s.Setup()
		s.Maintain(1)
		w := s.Worker()
		draws := xrand.New(7)
		out := make([]resource.Result, 0, 64)
		for q := 0; q < 64; q++ {
			src := scheme.NodeID(draws.Intn(env.Net.N()))
			id := resource.ID(draws.Intn(12))
			out = append(out, w.Discover(src, id))
		}
		w.Flush()
		return out, env.Net.Totals()
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("%s: outcome streams differ between identical runs", name)
	}
	if t1 != t2 {
		t.Fatalf("%s: recorder totals differ between identical runs: %v vs %v", name, t1, t2)
	}
}

// DirectedLossy runs the scheme over a directed, lossy fixture graph
// (heterogeneous ±50% radio ranges, 15% hop loss with 2 retries — see
// LossyEnv) and pins the invariants the richer link layer must not
// weaken: a self-held resource stays free (delivery risk only applies to
// transmitted hops), an unplaced resource is never Found, the query batch
// still resolves something (the fixture is not vacuously disconnected),
// and two identical runs produce bit-identical outcome streams and
// recorder totals — loss outcomes are a pure function of the epoch and
// edge, never of scheduling or wall clock.
func DirectedLossy(t *testing.T, name string) {
	if !t.Run("deterministic", func(t *testing.T) {
		run := func() ([]resource.Result, manet.Counters) {
			env := LossyEnv(t, 21, 80)
			place := xrand.New(99)
			for id := 0; id < 12; id++ {
				env.Dir.PlaceReplicas(resource.ID(id), 2, place)
			}
			s := New(t, name, env)
			s.Setup()
			s.Maintain(1)
			w := s.Worker()
			draws := xrand.New(7)
			out := make([]resource.Result, 0, 64)
			for q := 0; q < 64; q++ {
				src := scheme.NodeID(draws.Intn(env.Net.N()))
				id := resource.ID(draws.Intn(12))
				out = append(out, w.Discover(src, id))
			}
			w.Flush()
			return out, env.Net.Totals()
		}
		r1, t1 := run()
		r2, t2 := run()
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: outcome streams differ between identical lossy runs", name)
		}
		if t1 != t2 {
			t.Fatalf("%s: recorder totals differ between identical lossy runs: %v vs %v", name, t1, t2)
		}
		found := 0
		for _, r := range r1 {
			if r.Found {
				found++
			}
		}
		if found == 0 {
			t.Fatalf("%s: no query resolved on the lossy fixture — the check is vacuous", name)
		}
	}) {
		return
	}
	t.Run("self-held-free", func(t *testing.T) {
		env := LossyEnv(t, 22, 60)
		holders := []scheme.NodeID{3, 17, 41}
		for _, h := range holders {
			env.Dir.Place(7, h)
		}
		s := New(t, name, env)
		s.Setup()
		w := s.Worker()
		before := env.Net.Totals()
		for _, src := range holders {
			r := w.Discover(src, 7)
			if !r.Found || r.Holder != src || r.Messages != 0 || r.PathHops != 0 {
				t.Fatalf("%s: self-held query from %d not free under loss: %+v", name, src, r)
			}
		}
		w.Flush()
		if d := env.Net.Totals().DiffSince(before); d.Total() != 0 {
			t.Fatalf("%s: self-held queries charged the recorder under loss: %v", name, d)
		}
	})
	t.Run("unknown-never-found", func(t *testing.T) {
		env := LossyEnv(t, 23, 60)
		for i := 0; i < 5; i++ {
			env.Dir.Place(resource.ID(i), scheme.NodeID(i*7))
		}
		s := New(t, name, env)
		s.Setup()
		w := s.Worker()
		for src := 0; src < env.Net.N(); src += 5 {
			if r := w.Discover(scheme.NodeID(src), resource.ID(9999)); r.Found {
				t.Fatalf("%s: unknown resource Found on lossy fixture from node %d: %+v", name, src, r)
			}
		}
		w.Flush()
	})
}

// ParallelEquivalent pins the sharding contract end to end: a sustained
// workload over a mobile, churning network must produce a bit-identical
// per-query outcome stream, message totals and report whether queries run
// serially or fan out across workers, at GOMAXPROCS 1 and 4 alike.
func ParallelEquivalent(t *testing.T, name string) {
	traffic := func(workers int) workload.Config {
		return workload.Config{
			QPS: 30, Duration: 5, Tick: 0.5,
			Resources: 24, Replicas: 2, ZipfS: 0.9, Window: 64,
			Scheme: name, Seed: 5, Workers: workers, KeepOutcomes: true,
		}
	}
	run := func(workers, procs int) (*workload.Report, engine.MessageCounts) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		e, err := engine.New(engine.NetworkConfig{
			Nodes: 250, Width: 600, Height: 600, TxRange: 55,
			Mobility: engine.RandomWaypoint, MaxSpeed: 12, Pause: 1,
			ChurnMeanUp: 30, ChurnMeanDown: 6,
			Seed: 31,
		}, card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2})
		if err != nil {
			t.Fatal(err)
		}
		e.SetMaintainWorkers(workers)
		e.SelectContacts()
		rep, err := e.RunWorkload(traffic(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rep, e.Messages()
	}
	base, baseMsgs := run(1, 1)
	cases := []struct {
		label          string
		workers, procs int
	}{
		{"serial-procs4", 1, 4},
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
	}
	for _, tc := range cases {
		rep, msgs := run(tc.workers, tc.procs)
		if msgs != baseMsgs {
			t.Errorf("%s/%s: message totals diverge:\n  serial %+v\n  got    %+v",
				name, tc.label, baseMsgs, msgs)
		}
		if !reflect.DeepEqual(rep.Outcomes, base.Outcomes) {
			t.Errorf("%s/%s: outcome stream diverges from serial run", name, tc.label)
		}
		rep.Config.Workers = base.Config.Workers
		if !reflect.DeepEqual(rep, base) {
			t.Errorf("%s/%s: report diverges from serial run:\n  serial %+v\n  got    %+v",
				name, tc.label, base, rep)
		}
	}
}
