// Adapters wrapping the existing discovery mechanisms — CARD, flooding,
// expanding ring, bordercast — onto the DiscoveryScheme interface. Each
// worker owns private tallies and scratch; Flush drains them into the
// network's shared recorder.
package scheme

import (
	"fmt"

	"card/internal/bordercast"
	"card/internal/card"
	"card/internal/manet"
	"card/internal/resource"
)

// --- card ---

// cardScheme rides the CARD protocol: workers wrap card.Querier, which
// already implements the local-tally/serial-flush contract. Maintenance
// (DSDV rounds, contact validation) belongs to the protocol's own clock,
// so Maintain is a no-op here.
type cardScheme struct{ env Env }

func newCard(env Env) (DiscoveryScheme, error) {
	if env.Prot == nil {
		return nil, fmt.Errorf("scheme card: Env needs Prot")
	}
	return &cardScheme{env: env}, nil
}

func (s *cardScheme) Name() string         { return "card" }
func (s *cardScheme) Setup()               {}
func (s *cardScheme) Maintain(now float64) {}
func (s *cardScheme) Worker() Worker {
	return &cardWorker{dir: s.env.Dir, q: s.env.Prot.NewQuerier()}
}

type cardWorker struct {
	dir *resource.Directory
	q   *card.Querier
}

func (w *cardWorker) Discover(src NodeID, id resource.ID) resource.Result {
	return resource.DiscoverCARDWith(w.q, w.dir, src, id)
}
func (w *cardWorker) Flush() { w.q.Flush() }

// --- flood / ring ---

// floodScheme and ringScheme are stateless: no setup, no maintenance.
// Workers tally into a private Counters via the R-form discovery calls.
type floodScheme struct{ env Env }

func newFlood(env Env) (DiscoveryScheme, error) { return &floodScheme{env: env}, nil }

func (s *floodScheme) Name() string         { return "flood" }
func (s *floodScheme) Setup()               {}
func (s *floodScheme) Maintain(now float64) {}
func (s *floodScheme) Worker() Worker {
	return &floodWorker{net: s.env.Net, dir: s.env.Dir}
}

type floodWorker struct {
	net  *manet.Network
	dir  *resource.Directory
	pend manet.Counters
}

func (w *floodWorker) Discover(src NodeID, id resource.ID) resource.Result {
	return resource.DiscoverFloodR(w.net, &w.pend, w.dir, src, id)
}
func (w *floodWorker) Flush() {
	w.pend.AddTo(w.net.Recorder())
	w.pend.Reset()
}

type ringScheme struct{ env Env }

func newRing(env Env) (DiscoveryScheme, error) { return &ringScheme{env: env}, nil }

func (s *ringScheme) Name() string         { return "ring" }
func (s *ringScheme) Setup()               {}
func (s *ringScheme) Maintain(now float64) {}
func (s *ringScheme) Worker() Worker {
	return &ringWorker{net: s.env.Net, dir: s.env.Dir}
}

type ringWorker struct {
	net  *manet.Network
	dir  *resource.Directory
	pend manet.Counters
}

func (w *ringWorker) Discover(src NodeID, id resource.ID) resource.Result {
	return resource.DiscoverExpandingRingR(w.net, &w.pend, w.dir, src, id)
}
func (w *ringWorker) Flush() {
	w.pend.AddTo(w.net.Recorder())
	w.pend.Reset()
}

// --- bordercast ---

// bordercastScheme runs ZRP bordercasting as an anycast: a query targets
// the nearest reachable holder (ties to the lowest id, so the outcome is
// invariant under holder insertion order). The zone radius reuses CARD's
// neighborhood radius R — the same proactive substrate, exactly as the
// paper's comparison sets it up. The Protocol holds no per-query state,
// so one shared instance serves every worker.
type bordercastScheme struct {
	env Env
	bc  *bordercast.Protocol
}

func newBordercast(env Env) (DiscoveryScheme, error) {
	if env.Prot == nil {
		return nil, fmt.Errorf("scheme bordercast: Env needs Prot (zone = neighborhood radius)")
	}
	nb := env.Prot.Neighborhood()
	bc, err := bordercast.New(env.Net, nb, bordercast.Config{Zone: nb.R(), QD: bordercast.QD2})
	if err != nil {
		return nil, fmt.Errorf("scheme bordercast: %w", err)
	}
	return &bordercastScheme{env: env, bc: bc}, nil
}

func (s *bordercastScheme) Name() string         { return "bordercast" }
func (s *bordercastScheme) Setup()               {}
func (s *bordercastScheme) Maintain(now float64) {}
func (s *bordercastScheme) Worker() Worker {
	return &bordercastWorker{net: s.env.Net, dir: s.env.Dir, bc: s.bc}
}

type bordercastWorker struct {
	net  *manet.Network
	dir  *resource.Directory
	bc   *bordercast.Protocol
	pend manet.Counters
}

func (w *bordercastWorker) Discover(src NodeID, id resource.ID) resource.Result {
	holders := w.dir.Holders(id)
	if len(holders) == 0 {
		return resource.Result{Found: false, PathHops: -1}
	}
	for _, h := range holders {
		if h == src {
			return resource.Result{Found: true, Holder: src, PathHops: 0}
		}
	}
	bfs := w.net.Graph().BFS(src)
	nearest := NodeID(-1)
	bestDist := int32(1 << 30)
	for _, h := range holders {
		if bfs.Dist[h] >= 0 && bfs.Dist[h] < bestDist {
			bestDist = bfs.Dist[h]
			nearest = h
		}
	}
	if nearest < 0 {
		// No reachable holder: the cascade runs dry over src's component.
		// The cost is target-independent, so the lowest-id holder serves as
		// the nominal (unreachable) destination.
		r := w.bc.QueryR(&w.pend, src, holders[0])
		return resource.Result{Found: false, Messages: r.Messages, PathHops: -1}
	}
	r := w.bc.QueryR(&w.pend, src, nearest)
	return resource.Result{Found: r.Found, Holder: nearest, Messages: r.Messages, PathHops: r.PathHops}
}

func (w *bordercastWorker) Flush() {
	w.pend.AddTo(w.net.Recorder())
	w.pend.Reset()
}
