package scheme

import (
	"math"
	"testing"

	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/resource"
	"card/internal/xrand"
)

func TestNewRegionGridErrors(t *testing.T) {
	if _, err := NewRegionGrid(geom.Rect{W: 100, H: 100}, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := NewRegionGrid(geom.Rect{W: 0, H: 100}, 2); err == nil {
		t.Error("empty area accepted")
	}
}

func TestRegionGridGeometry(t *testing.T) {
	g, err := NewRegionGrid(geom.Rect{W: 100, H: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 4 || g.Regions() != 16 {
		t.Fatalf("K = %d, Regions = %d", g.K(), g.Regions())
	}
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Point{X: 0, Y: 0}, 0},
		{geom.Point{X: 99, Y: 0}, 3},
		{geom.Point{X: 0, Y: 99}, 12},
		{geom.Point{X: 99, Y: 99}, 15},
		// Far edges and out-of-area points clamp into the grid.
		{geom.Point{X: 100, Y: 100}, 15},
		{geom.Point{X: -5, Y: -5}, 0},
		{geom.Point{X: 500, Y: 42}, 7},
	}
	for _, c := range cases {
		if got := g.RegionAt(c.p); got != c.want {
			t.Errorf("RegionAt(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestRegionOfInBounds(t *testing.T) {
	g, err := NewRegionGrid(geom.Rect{W: 710, H: 355}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id := -500; id < 500; id++ {
		r := g.RegionOf(resource.ID(id))
		if r < 0 || r >= g.Regions() {
			t.Fatalf("RegionOf(%d) = %d out of [0,%d)", id, r, g.Regions())
		}
		if r2 := g.RegionOf(resource.ID(id)); r2 != r {
			t.Fatalf("RegionOf(%d) unstable: %d then %d", id, r, r2)
		}
	}
}

func TestDefaultRegionsPerSide(t *testing.T) {
	cases := []struct {
		area geom.Rect
		tx   float64
		want int
	}{
		{geom.Rect{W: 100, H: 100}, 0, 1},    // degenerate range
		{geom.Rect{W: 100, H: 100}, 50, 1},   // too small to split
		{geom.Rect{W: 1000, H: 800}, 50, 4},  // min side / (4·tx)
		{geom.Rect{W: 4000, H: 4000}, 50, 8}, // clamped
	}
	for _, c := range cases {
		if got := defaultRegionsPerSide(c.area, c.tx); got != c.want {
			t.Errorf("defaultRegionsPerSide(%v, %g) = %d, want %d", c.area, c.tx, got, c.want)
		}
	}
}

// FuzzRegionHash pins the rendezvous hash contract: every key maps to
// exactly one in-bounds region, the map is stable across calls and across
// independently built grids, and the registration and lookup paths agree
// on the region for every key.
func FuzzRegionHash(f *testing.F) {
	f.Add(int32(0), uint8(0), 100.0, 100.0)
	f.Add(int32(-1), uint8(6), 710.0, 355.5)
	f.Add(int32(1<<30), uint8(15), 1.5, 2000.0)
	f.Add(int32(-1<<31), uint8(255), 0.0, math.Inf(1))
	f.Fuzz(func(t *testing.T, key int32, kRaw uint8, w, h float64) {
		k := 1 + int(kRaw%16)
		if !(w > 0) || math.IsInf(w, 0) {
			w = 100
		}
		if !(h > 0) || math.IsInf(h, 0) {
			h = 100
		}
		area := geom.Rect{W: w, H: h}
		g, err := NewRegionGrid(area, k)
		if err != nil {
			t.Fatal(err)
		}
		id := resource.ID(key)
		r := g.RegionOf(id)
		if r < 0 || r >= g.Regions() {
			t.Fatalf("RegionOf(%d) = %d out of [0,%d)", key, r, g.Regions())
		}
		if r2 := g.RegionOf(id); r2 != r {
			t.Fatalf("RegionOf(%d) unstable: %d then %d", key, r, r2)
		}
		g2, err := NewRegionGrid(area, k)
		if err != nil {
			t.Fatal(err)
		}
		if r2 := g2.RegionOf(id); r2 != r {
			t.Fatalf("RegionOf(%d) differs across grid instances: %d vs %d", key, r, r2)
		}
		s := &rendezvous{grid: g}
		if s.RegistrationRegion(id) != s.LookupRegion(id) {
			t.Fatalf("registration region %d != lookup region %d for key %d",
				s.RegistrationRegion(id), s.LookupRegion(id), key)
		}
	})
}

// TestRendezvousEmptyRegionDeadSearch pins the degenerate geometry: when
// a key's rendezvous region has no residents, registration is deferred
// without charge and lookups degenerate to a component-sized dead flood.
func TestRendezvousEmptyRegionDeadSearch(t *testing.T) {
	// Cluster all 12 nodes in the lower-left quadrant of a 2×2 grid, fully
	// connected (30 m spacing, 60 m range): regions 1..3 are empty.
	area := geom.Rect{W: 400, H: 400}
	pts := make([]geom.Point, 12)
	for i := range pts {
		pts[i] = geom.Point{X: 10 + float64(i%4)*30, Y: 10 + float64(i/4)*30}
	}
	net := manet.New(mobility.NewStatic(pts, area), 60, xrand.New(5))
	grid, err := NewRegionGrid(area, 2)
	if err != nil {
		t.Fatal(err)
	}
	dead := resource.ID(-1)
	for id := 0; id < 64; id++ {
		if grid.RegionOf(resource.ID(id)) != 0 {
			dead = resource.ID(id)
			break
		}
	}
	if dead < 0 {
		t.Fatal("no key hashing outside region 0 in the probe range")
	}
	dir := resource.NewDirectory(net.N())
	dir.Place(dead, 0)
	s, err := New("rendezvous", Env{Net: net, Dir: dir, RegionsPerSide: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Setup()
	s.Maintain(1) // retries the registration; still no resident, still free
	if got := net.Totals().Get(manet.CatRegister); got != 0 {
		t.Fatalf("registration into an empty region charged %d transmissions", got)
	}
	w := s.Worker()
	r := w.Discover(5, dead)
	if r.Found {
		t.Fatalf("lookup through an empty region Found: %+v", r)
	}
	if r.Messages != 12 || r.PathHops != -1 {
		t.Fatalf("dead search = %+v, want component flood of 12 messages", r)
	}
	w.Flush()
	totals := net.Totals()
	if totals.Get(manet.CatQuery) != 12 || totals.Get(manet.CatRegister) != 0 {
		t.Fatalf("recorder totals after dead search: %v", totals)
	}
}

// TestRendezvousReregistersOnRegionExit pins the mobile-holder rule:
// once anchors drift out of their rendezvous regions, maintenance rounds
// must charge fresh registrations.
func TestRendezvousReregistersOnRegionExit(t *testing.T) {
	area := geom.Rect{W: 400, H: 400}
	rng := xrand.New(3)
	model, err := mobility.NewRandomWaypoint(80, area,
		mobility.RWPConfig{MinSpeed: 5, MaxSpeed: 15}, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := manet.New(model, 80, rng.Derive(1))
	dir := resource.NewDirectory(net.N())
	place := xrand.New(9)
	for id := 0; id < 10; id++ {
		dir.PlaceReplicas(resource.ID(id), 2, place)
	}
	s, err := New("rendezvous", Env{Net: net, Dir: dir, RegionsPerSide: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Setup()
	setup := net.Totals().Get(manet.CatRegister)
	if setup == 0 {
		t.Fatal("initial registration charged nothing")
	}
	// 60 simulated seconds at ≥5 m/s across 133 m regions: anchors move.
	for _, now := range []float64{20, 40, 60} {
		net.RefreshAt(now)
		s.Maintain(now)
	}
	if after := net.Totals().Get(manet.CatRegister); after <= setup {
		t.Fatalf("no re-registration after movement: %d then %d", setup, after)
	}
}
