package stats

import (
	"math"
	"testing"

	"card/internal/xrand"
)

// --- Welford.Merge property tests -----------------------------------------
//
// The sustained-workload percentile pipeline folds per-worker accumulators
// into run totals with Merge; these tests pin the algebra it relies on:
// merging any partition of a stream equals the single-pass accumulator.

// welfordOf runs a single-pass accumulation over xs.
func welfordOf(xs []float64) *Welford {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return &w
}

// approxEq compares with a relative tolerance: Merge reassociates floating
// point sums, so results agree to rounding, not bit-exactly.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}

func TestWelfordMergeEqualsSinglePass(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			// Mix scales and signs so catastrophic-cancellation bugs show.
			xs[i] = rng.Range(-50, 50) * math.Pow(10, float64(rng.Intn(3)))
		}
		whole := welfordOf(xs)

		// Partition the stream into 1..5 contiguous chunks and merge them
		// in order.
		chunks := 1 + rng.Intn(5)
		var merged Welford
		start := 0
		for c := 0; c < chunks; c++ {
			end := start + rng.Intn(n-start+1)
			if c == chunks-1 {
				end = n
			}
			merged.Merge(welfordOf(xs[start:end]))
			start = end
		}

		if merged.N() != whole.N() {
			t.Fatalf("trial %d: merged n=%d, single-pass n=%d", trial, merged.N(), whole.N())
		}
		if !approxEq(merged.Mean(), whole.Mean()) {
			t.Fatalf("trial %d: merged mean %v != %v", trial, merged.Mean(), whole.Mean())
		}
		if !approxEq(merged.Var(), whole.Var()) {
			t.Fatalf("trial %d: merged var %v != %v", trial, merged.Var(), whole.Var())
		}
		// Min/max track exact sample values: must be bit-equal.
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: merged min/max %v/%v != %v/%v",
				trial, merged.Min(), merged.Max(), whole.Min(), whole.Max())
		}
	}
}

// TestWelfordMergeIntoEmpty pins the empty-side edge cases: merging into an
// empty accumulator must adopt the source wholesale (including min/max,
// which are not zero-default-safe), and merging an empty source is a no-op.
func TestWelfordMergeIntoEmpty(t *testing.T) {
	src := welfordOf([]float64{3, 7, 5}) // min 3, max 7 — both positive, so
	// a zero-initialized min would corrupt the merge if copied fieldwise.
	var empty Welford
	empty.Merge(src)
	if empty != *src {
		t.Errorf("merge into empty: got %+v, want %+v", empty, *src)
	}

	before := *src
	src.Merge(&Welford{})
	if *src != before {
		t.Errorf("merge of empty source changed accumulator: %+v -> %+v", before, *src)
	}

	// All-negative stream: max must stay negative through an empty merge.
	neg := welfordOf([]float64{-9, -2, -4})
	var e2 Welford
	e2.Merge(neg)
	if e2.Max() != -2 || e2.Min() != -9 {
		t.Errorf("negative-stream merge min/max = %v/%v, want -9/-2", e2.Min(), e2.Max())
	}
}

// --- Histogram top-edge and outlier accounting ----------------------------

func TestHistogramTopEdgeClamp(t *testing.T) {
	h := NewHistogram(5, 20) // range [0, 100)
	h.Add(99.999)
	h.Add(100) // exact top edge: clamped into the last bin
	if got := h.Bin(19); got != 2 {
		t.Errorf("last bin = %d, want 2 (top edge clamps in)", got)
	}
	if _, over := h.Outliers(); over != 0 {
		t.Errorf("top edge counted as outlier: over=%d", over)
	}
	h.Add(100.5) // genuinely beyond: outlier, no bin
	h.Add(-0.01) // below range: outlier, no bin
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers = (%d, %d), want (1, 1)", under, over)
	}
	if got := h.Bin(19); got != 2 {
		t.Errorf("outliers leaked into last bin: %d", got)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4 (outliers included)", h.Total())
	}
	// In-range bin mass excludes outliers.
	var inRange int64
	for _, c := range h.Bins() {
		inRange += c
	}
	if inRange != 2 {
		t.Errorf("in-range mass = %d, want 2", inRange)
	}
}

// TestHistogramEdgesProperty sweeps every bin boundary: a sample exactly on
// a lower edge belongs to that bin, and only the top edge of the whole
// range clamps downward.
func TestHistogramEdgesProperty(t *testing.T) {
	const width, bins = 2.5, 8
	h := NewHistogram(width, bins)
	for i := 0; i < bins; i++ {
		h.Add(width * float64(i)) // lower edge of bin i
	}
	for i := 0; i < bins; i++ {
		if got := h.Bin(i); got != 1 {
			t.Fatalf("bin %d = %d, want exactly its lower-edge sample", i, got)
		}
	}
	h.Add(width * bins) // top edge of the range
	if got := h.Bin(bins - 1); got != 2 {
		t.Errorf("top edge not clamped into last bin: %d", got)
	}
	if h.Total() != bins+1 {
		t.Errorf("Total = %d, want %d", h.Total(), bins+1)
	}
}

// --- Summary / Summarize ---------------------------------------------------

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty Summarize = %+v, want zero", s)
	}
	xs := make([]float64, 100) // 1..100 shuffled
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	xrand.New(3).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	s := Summarize(xs)
	if s.N != 100 || s.Max != 100 {
		t.Errorf("N/Max = %d/%v, want 100/100", s.N, s.Max)
	}
	if s.Mean != 50.5 {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.P50 != 50.5 || s.P95 != Quantile(xs, 0.95) || s.P99 != Quantile(xs, 0.99) {
		t.Errorf("quantiles = %v/%v/%v", s.P50, s.P95, s.P99)
	}
	// Summarize must not reorder the caller's slice.
	if xs[0] == 1 && xs[1] == 2 && xs[2] == 3 && xs[3] == 4 {
		t.Error("input slice appears sorted — Summarize mutated it")
	}
}

// --- Window ----------------------------------------------------------------

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Cap() != 4 || w.Mean() != 0 || w.Quantile(0.5) != 0 {
		t.Fatalf("empty window misbehaves: len=%d cap=%d", w.Len(), w.Cap())
	}
	for i := 1; i <= 3; i++ {
		w.Add(float64(i))
	}
	if w.Len() != 3 || w.Mean() != 2 {
		t.Fatalf("partial window: len=%d mean=%v", w.Len(), w.Mean())
	}
	got := w.Values()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("partial Values = %v", got)
	}
	for i := 4; i <= 9; i++ {
		w.Add(float64(i))
	}
	// Window of 4 now holds 6..9, oldest first.
	got = w.Values()
	want := []float64{6, 7, 8, 9}
	if len(got) != 4 {
		t.Fatalf("full Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full Values = %v, want %v", got, want)
		}
	}
	if w.Len() != 4 || w.Mean() != 7.5 || w.Quantile(1) != 9 {
		t.Errorf("full window: len=%d mean=%v max=%v", w.Len(), w.Mean(), w.Quantile(1))
	}
	if s := w.Summary(); s.N != 4 || s.P50 != 7.5 || s.Max != 9 {
		t.Errorf("window summary = %+v", s)
	}
}

// TestWindowMatchesTailSummary is the property the workload reports rely
// on: a window of capacity c over a long stream summarizes exactly the
// stream's last c samples.
func TestWindowMatchesTailSummary(t *testing.T) {
	rng := xrand.New(17)
	for _, c := range []int{1, 7, 64} {
		w := NewWindow(c)
		var stream []float64
		for i := 0; i < 500; i++ {
			x := rng.Range(0, 1000)
			stream = append(stream, x)
			w.Add(x)
		}
		tail := stream[len(stream)-c:]
		if got, want := w.Summary(), Summarize(tail); got != want {
			t.Errorf("cap %d: window summary %+v != tail summary %+v", c, got, want)
		}
	}
}
