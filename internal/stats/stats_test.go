package stats

import (
	"math"
	"testing"
	"testing/quick"

	"card/internal/xrand"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(w.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty accumulator must report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Error("single sample: mean 3, var 0")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := xrand.New(42)
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Var(), all.Var(), 1e-9) {
		t.Errorf("merged var %v vs %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Error("merge with empty changed N")
	}
	var c Welford
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("merge into empty did not copy")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(5, 20)
	h.Add(0)    // bin 0
	h.Add(4.99) // bin 0
	h.Add(5)    // bin 1
	h.Add(97)   // bin 19
	h.Add(100)  // top edge -> last bin
	h.Add(150)  // over
	h.Add(-1)   // under
	bins := h.Bins()
	if bins[0] != 2 || bins[1] != 1 || bins[19] != 2 {
		t.Errorf("bins = %v", bins)
	}
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers = %d/%d", under, over)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10, 10)
	h.Add(5)  // midpoint 5
	h.Add(15) // midpoint 15
	if !almostEqual(h.Mean(), 10, 1e-12) {
		t.Errorf("Mean = %v, want 10", h.Mean())
	}
	if NewHistogram(1, 1).Mean() != 0 {
		t.Error("empty histogram mean must be 0")
	}
}

func TestHistogramFractionAtOrAbove(t *testing.T) {
	h := NewReachabilityHistogram()
	for i := 0; i < 6; i++ {
		h.Add(30) // bin [30,35)
	}
	for i := 0; i < 4; i++ {
		h.Add(80) // bin [80,85)
	}
	if got := h.FractionAtOrAbove(50); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("FractionAtOrAbove(50) = %v, want 0.4", got)
	}
	if got := h.FractionAtOrAbove(0); got != 1 {
		t.Errorf("FractionAtOrAbove(0) = %v, want 1", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(5, 4)
	b := NewHistogram(5, 4)
	a.Add(1)
	b.Add(1)
	b.Add(7)
	a.Merge(b)
	if a.Bin(0) != 2 || a.Bin(1) != 1 || a.Total() != 3 {
		t.Errorf("merged histogram wrong: %v total %d", a.Bins(), a.Total())
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merge of different shapes did not panic")
		}
	}()
	NewHistogram(5, 4).Merge(NewHistogram(5, 5))
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(5, 3)
	h.Add(2)
	h.Add(11)
	if got := h.String(); got != "[5:1 15:1]" {
		t.Errorf("String = %q", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.AddPoint(2, 100)
	s.AddPoint(4, 50)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(4); !ok || y != 50 {
		t.Errorf("YAt(4) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) should be absent")
	}
	if s.MaxY() != 100 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
	n := s.Normalized()
	if n.Y[0] != 1 || n.Y[1] != 0.5 {
		t.Errorf("Normalized = %v", n.Y)
	}
	// normalization must not mutate the original
	if s.Y[0] != 100 {
		t.Error("Normalized mutated source series")
	}
}

func TestSeriesNormalizedZero(t *testing.T) {
	var s Series
	s.AddPoint(1, 0)
	n := s.Normalized()
	if n.Y[0] != 0 {
		t.Errorf("zero series normalization = %v", n.Y)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile([]float64{3, 1}, 0.5); got != 2 {
		t.Errorf("interpolated median = %v", got)
	}
	// input must not be reordered
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile of empty did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Range(-100, 100)
			w.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Var(), naiveVar, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	// in-range counts + outliers == total, regardless of input.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		h := NewHistogram(5, 20)
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(rng.Range(-50, 200))
		}
		var inRange int64
		for _, c := range h.Bins() {
			inRange += c
		}
		under, over := h.Outliers()
		return inRange+under+over == h.Total() && h.Total() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Range(0, 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
