// Package stats provides the statistical accumulators the experiment
// harness needs: running mean/variance (Welford), fixed-bin histograms
// matching the paper's 5 %-bin reachability distributions, and time series
// for the overhead-over-time figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates mean and variance in a single numerically stable pass.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (Chan et al. parallel variance).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", w.n, w.Mean(), w.Std(), w.min, w.max)
}

// Histogram counts samples into fixed-width bins over [0, width*bins).
// The paper's reachability distributions use width=5 (%), bins=20, with each
// sample being one node's reachability percentage.
type Histogram struct {
	width  float64
	counts []int64
	under  int64 // samples < 0
	over   int64 // samples >= width*len(counts)
	total  int64
}

// NewHistogram creates a histogram with the given bin width and bin count.
func NewHistogram(width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic("stats: histogram needs positive width and bins")
	}
	return &Histogram{width: width, counts: make([]int64, bins)}
}

// NewReachabilityHistogram returns the paper's 5 %-bin, 20-bin histogram
// over [0, 100).
func NewReachabilityHistogram() *Histogram { return NewHistogram(5, 20) }

// Add counts one sample. Samples below 0 or at/above the top edge are
// tracked separately (a reachability of exactly 100 % falls in the last bin).
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		h.under++
		return
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		// Clamp the exact top edge into the final bin; anything beyond is an
		// outlier.
		if x <= h.width*float64(len(h.counts))+1e-9 {
			h.counts[len(h.counts)-1]++
			return
		}
		h.over++
		return
	}
	h.counts[i]++
}

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() float64 { return h.width }

// Total returns the number of samples added, including outliers.
func (h *Histogram) Total() int64 { return h.total }

// Outliers returns the counts of below-range and above-range samples.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// Merge adds o's counts into h. Histograms must have identical shape.
func (h *Histogram) Merge(o *Histogram) {
	if h.width != o.width || len(h.counts) != len(o.counts) {
		panic("stats: merging histograms of different shape")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.total += o.total
}

// Mean returns the histogram mean using bin midpoints (outliers excluded).
func (h *Histogram) Mean() float64 {
	var sum float64
	var n int64
	for i, c := range h.counts {
		sum += (float64(i) + 0.5) * h.width * float64(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FractionAtOrAbove returns the fraction of in-range samples in bins whose
// lower edge is >= x. Used for "fraction of nodes with reachability >= 50 %".
func (h *Histogram) FractionAtOrAbove(x float64) float64 {
	var hit, n int64
	for i, c := range h.counts {
		n += c
		if float64(i)*h.width >= x {
			hit += c
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hit) / float64(n)
}

// String renders a compact one-line view: "[5:12 10:40 ...]" listing
// upper-edge:count for non-empty bins.
func (h *Histogram) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%g:%d", float64(i+1)*h.width, c)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Series is an (x, y) sequence for time-series figures: overhead per node
// sampled at t = 2, 4, 6, 8, 10 s and the like.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends one (x, y) sample.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the first point with the given x, or
// (0, false) when absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, v := range s.X {
		if v == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, v := range s.Y {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Normalized returns a copy of the series with y values scaled into [0, 1]
// by the maximum (the paper's Fig. 14 normalization). A zero series is
// returned unchanged.
func (s *Series) Normalized() *Series {
	out := &Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: append([]float64(nil), s.Y...)}
	m := s.MaxY()
	if m == 0 {
		return out
	}
	for i := range out.Y {
		out.Y[i] /= m
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over an already-sorted non-empty slice; the
// Summary path sorts once and reads several quantiles from it.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
