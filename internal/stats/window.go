package stats

import "sort"

// Summary holds the headline order statistics of one metric stream — the
// P50/P95/P99 quantiles the sustained-workload reports use, plus mean and
// max. The zero value means "no samples".
type Summary struct {
	N             int64
	Mean          float64
	P50, P95, P99 float64
	Max           float64
}

// Summarize computes a Summary over xs (the zero Summary for empty input).
// Quantiles interpolate linearly between order statistics, like Quantile.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:    int64(len(sorted)),
		Mean: sum / float64(len(sorted)),
		P50:  quantileSorted(sorted, 0.50),
		P95:  quantileSorted(sorted, 0.95),
		P99:  quantileSorted(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// Window is a fixed-capacity sliding window over the most recent samples
// of one metric. The workload layer keeps one per tracked metric (messages
// per query, hops, success indicator) and reads trailing quantiles from it
// — the serving-style view of "how is the stream doing right now", as
// opposed to Welford's whole-run aggregates.
//
// The zero value is not usable; construct with NewWindow. Not safe for
// concurrent use.
type Window struct {
	buf  []float64
	next int // next write position
	n    int // samples held, <= cap
}

// NewWindow creates a window holding the most recent capacity samples.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: window needs positive capacity")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add appends one sample, evicting the oldest once the window is full.
func (w *Window) Add(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
	}
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Values returns a copy of the held samples, oldest first.
func (w *Window) Values() []float64 {
	out := make([]float64, 0, w.n)
	if w.n < len(w.buf) {
		return append(out, w.buf[:w.n]...)
	}
	out = append(out, w.buf[w.next:]...)
	return append(out, w.buf[:w.next]...)
}

// Mean returns the mean of the held samples (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	var sum float64
	for _, x := range w.buf[:w.n] {
		sum += x
	}
	return sum / float64(w.n)
}

// Quantile returns the q-quantile of the held samples (0 when empty).
func (w *Window) Quantile(q float64) float64 {
	if w.n == 0 {
		return 0
	}
	return Quantile(w.Values(), q)
}

// Summary returns the trailing Summary of the held samples.
func (w *Window) Summary() Summary { return Summarize(w.Values()) }
