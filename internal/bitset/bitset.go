// Package bitset provides a dense, fixed-capacity bit set keyed by small
// non-negative integers.
//
// CARD leans on set algebra for its hot paths: "does the source lie in this
// candidate's neighborhood?", "do two neighborhoods overlap?", and "union the
// neighborhoods of every contact reachable within D levels". Neighborhoods
// are sets of node indices in [0, N) with N at most a few thousand, so a
// word-packed bit set gives O(N/64) unions and O(1) membership with zero
// allocation on lookups.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over the universe [0, Len()). The zero value is an empty
// set of capacity zero; use New to create one with a given capacity.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for values in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice builds a set of capacity n containing every value in vs.
func FromSlice(n int, vs []int) *Set {
	s := New(n)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Len returns the capacity of the set (the size of its universe), not the
// number of elements; see Count for the latter.
func (s *Set) Len() int { return s.n }

// Add inserts v. It panics if v is outside [0, Len()).
func (s *Set) Add(v int) {
	s.check(v)
	s.words[v/wordBits] |= 1 << uint(v%wordBits)
}

// Remove deletes v if present. It panics if v is outside [0, Len()).
func (s *Set) Remove(v int) {
	s.check(v)
	s.words[v/wordBits] &^= 1 << uint(v%wordBits)
}

// Contains reports whether v is a member. Values outside [0, Len()) are
// reported as absent rather than panicking, because callers frequently probe
// with ids drawn from a wider universe (e.g. sentinel -1).
func (s *Set) Contains(v int) bool {
	if v < 0 || v >= s.n {
		return false
	}
	return s.words[v/wordBits]&(1<<uint(v%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every value in [0, Len()) — the complement of Clear. Bits
// beyond the capacity stay zero, so Count, ForEach and Words stay exact.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << uint(rem)) - 1
	}
}

// Words exposes the backing word array (bit v lives at words[v/64], bit
// v%64). Read-only: callers iterate set bits without the per-element
// closure cost of ForEach on hot paths. Bits at index >= Len() are zero.
func (s *Set) Words() []uint64 { return s.words }

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must share capacity.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// UnionWith adds every element of o to s (s |= o).
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o (s &= o).
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes from s every element of o (s &^= o).
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and o share at least one element, without
// allocating. This is CARD's neighborhood-overlap predicate.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectionCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// Equal reports whether s and o contain exactly the same elements. Sets of
// different capacity are never equal.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. Iteration stops if fn
// returns false.
func (s *Set) ForEach(fn func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// String renders the set as "{a b c}"; useful in tests and traces.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%d", v)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

func (s *Set) check(v int) {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("bitset: value %d out of range [0,%d)", v, s.n))
	}
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}
