package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatalf("new set not empty: %v", s)
	}
	if got := s.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if got := s.Len(); got != 130 {
		t.Fatalf("Len = %d, want 130", got)
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(200)
	vals := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, v := range vals {
		s.Add(v)
	}
	for _, v := range vals {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false after Add", v)
		}
	}
	if s.Contains(2) || s.Contains(100) {
		t.Error("Contains reports absent values present")
	}
	if got := s.Count(); got != len(vals) {
		t.Fatalf("Count = %d, want %d", got, len(vals))
	}
	for _, v := range vals {
		s.Remove(v)
	}
	if !s.Empty() {
		t.Fatalf("set not empty after removing all: %v", s)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count after double Add = %d, want 1", got)
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Error("Contains must report out-of-range values as absent")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	New(4).Add(-1)
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionWith across capacities did not panic")
		}
	}()
	New(4).UnionWith(New(8))
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64, 65})
	b := FromSlice(100, []int{3, 4, 65, 99})

	u := a.Clone()
	u.UnionWith(b)
	if got, want := u.Slice(), []int{1, 2, 3, 4, 64, 65, 99}; !reflect.DeepEqual(got, want) {
		t.Errorf("union = %v, want %v", got, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got, want := i.Slice(), []int{3, 65}; !reflect.DeepEqual(got, want) {
		t.Errorf("intersection = %v, want %v", got, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got, want := d.Slice(), []int{1, 2, 64}; !reflect.DeepEqual(got, want) {
		t.Errorf("difference = %v, want %v", got, want)
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice(128, []int{10, 70})
	b := FromSlice(128, []int{70})
	c := FromSlice(128, []int{11, 71})
	if !a.Intersects(b) {
		t.Error("a.Intersects(b) = false, want true")
	}
	if a.Intersects(c) {
		t.Error("a.Intersects(c) = true, want false")
	}
	if got := a.IntersectionCount(b); got != 1 {
		t.Errorf("IntersectionCount = %d, want 1", got)
	}
}

func TestEqualAndSubset(t *testing.T) {
	a := FromSlice(64, []int{1, 2})
	b := FromSlice(64, []int{1, 2})
	c := FromSlice(64, []int{1, 2, 3})
	if !a.Equal(b) {
		t.Error("identical sets not Equal")
	}
	if a.Equal(c) {
		t.Error("different sets Equal")
	}
	if !a.SubsetOf(c) {
		t.Error("a should be subset of c")
	}
	if c.SubsetOf(a) {
		t.Error("c should not be subset of a")
	}
	if a.Equal(FromSlice(65, []int{1, 2})) {
		t.Error("sets of different capacity must not be Equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{5, 1, 99, 64})
	var got []int
	s.ForEach(func(v int) bool {
		got = append(got, v)
		return true
	})
	if want := []int{1, 5, 64, 99}; !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
	n := 0
	s.ForEach(func(v int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice(32, []int{1})
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Error("mutating clone affected original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice(32, []int{1, 5})
	b := New(32)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom did not produce equal set")
	}
}

func TestClear(t *testing.T) {
	a := FromSlice(32, []int{1, 5, 31})
	a.Clear()
	if !a.Empty() {
		t.Error("Clear left elements behind")
	}
	if a.Len() != 32 {
		t.Error("Clear changed capacity")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1 3}" {
		t.Errorf("String = %q, want {1 3}", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("String of empty = %q, want {}", got)
	}
}

// randomPair builds two random same-capacity sets from a seed, for property
// tests.
func randomPair(seed int64) (*Set, *Set, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(300)
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			a.Add(i)
		}
		if rng.Intn(2) == 0 {
			b.Add(i)
		}
	}
	return a, b, n
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		a, b, _ := randomPair(seed)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		a, b, _ := randomPair(seed)
		u := a.Clone()
		u.UnionWith(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// complement(a ∪ b) == complement(a) ∩ complement(b), with complement
	// expressed via difference from the full universe.
	f := func(seed int64) bool {
		a, b, n := randomPair(seed)
		full := New(n)
		for i := 0; i < n; i++ {
			full.Add(i)
		}
		u := a.Clone()
		u.UnionWith(b)
		lhs := full.Clone()
		lhs.DifferenceWith(u)

		ca := full.Clone()
		ca.DifferenceWith(a)
		cb := full.Clone()
		cb.DifferenceWith(b)
		ca.IntersectWith(cb)
		return lhs.Equal(ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsConsistentWithCount(t *testing.T) {
	f := func(seed int64) bool {
		a, b, _ := randomPair(seed)
		return a.Intersects(b) == (a.IntersectionCount(b) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSliceRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a, _, n := randomPair(seed)
		return FromSlice(n, a.Slice()).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	a1, a2, _ := randomPair(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a1.Intersects(a2)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	a1, a2, _ := randomPair(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a1.UnionWith(a2)
	}
}
