package experiments

import (
	"fmt"

	"card/internal/bordercast"
	"card/internal/card"
	"card/internal/flood"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/xrand"
)

// queryWorkload draws q (src, dst) pairs uniformly from the largest
// connected component, mirroring "50 randomly selected destinations from
// 50 random sources".
func queryWorkload(net *manet.Network, q int, seed uint64) [][2]manet.NodeID {
	comp := net.Graph().LargestComponent()
	rng := xrand.New(seed).Derive(77)
	pairs := make([][2]manet.NodeID, q)
	for i := range pairs {
		src := comp[rng.Intn(len(comp))]
		dst := comp[rng.Intn(len(comp))]
		for dst == src && len(comp) > 1 {
			dst = comp[rng.Intn(len(comp))]
		}
		pairs[i] = [2]manet.NodeID{src, dst}
	}
	return pairs
}

// fig15Cell measures one (size, seed) cell of Fig. 15.
type fig15Cell struct {
	floodPerNode  float64
	borderPerNode float64
	cardPerNode   float64
	cardOverhead  float64
	cardSuccess   float64
}

func runFig15Cell(fc struct {
	Scenario Scenario
	NoC      int
	R        int
	MaxDist  int
}, scale float64, seed uint64) fig15Cell {
	sc := fc.Scenario.Scaled(scale)
	queries := 50
	if sc.N < 100 {
		queries = sc.N / 2
	}
	n := float64(sc.N)
	var out fig15Cell

	// Flooding: fresh network, identical placement seed.
	{
		net := sc.StaticNet(seed)
		var sum int64
		for _, pr := range queryWorkload(net, queries, seed) {
			sum += flood.Query(net, pr[0], pr[1], true).Messages
		}
		out.floodPerNode = float64(sum) / n
	}

	// Bordercasting with QD1+QD2, zone radius = CARD's R (same proactive
	// substrate for a fair comparison).
	{
		net := sc.StaticNet(seed)
		nb := neighborhood.NewOracle(net, fc.R)
		bc, err := bordercast.New(net, nb, bordercast.Config{Zone: fc.R, QD: bordercast.QD2})
		if err != nil {
			panic(err)
		}
		var sum int64
		for _, pr := range queryWorkload(net, queries, seed) {
			sum += bc.Query(pr[0], pr[1]).Messages
		}
		out.borderPerNode = float64(sum) / n
	}

	// CARD with D=3 (the paper's 95 %-success configuration).
	{
		net := sc.StaticNet(seed)
		cfg := card.Config{
			R: fc.R, MaxContactDist: fc.MaxDist, NoC: fc.NoC,
			Depth: 3, Method: card.EM, ValidatePeriod: 1,
		}
		prot, err := NewCARD(net, cfg, seed)
		if err != nil {
			panic(err)
		}
		prot.SelectAll(0)
		// One maintenance round so the overhead bar includes validation.
		prot.MaintainAll(1)
		out.cardOverhead = float64(net.Totals().Sum(overheadCats...)) / n

		var qsum int64
		found := 0
		pairs := queryWorkload(net, queries, seed)
		for _, pr := range pairs {
			res := prot.Query(pr[0], pr[1])
			qsum += res.Messages
			if res.Found {
				found++
			}
		}
		out.cardPerNode = float64(qsum) / n
		out.cardSuccess = 100 * float64(found) / float64(len(pairs))
	}
	return out
}

// RunFig15 regenerates Fig. 15: querying traffic per node for flooding,
// bordercasting and CARD across three network sizes, plus CARD's
// selection+maintenance overhead and its query success rate.
func RunFig15(o Options) *Table {
	o.fill()
	cells := make([]fig15Cell, len(Fig9Configs)*o.Seeds)
	Parallel(len(cells), func(i int) {
		fc := Fig9Configs[i/o.Seeds]
		cells[i] = runFig15Cell(fc, o.Scale, uint64(i%o.Seeds)+1)
	})
	t := NewTable(
		fmt.Sprintf("Fig 15: querying traffic per node, 50 queries (avg of %d seeds)", o.Seeds),
		"N", "Flooding", "Bordercasting", "CARD", "CARD overhead", "CARD success%")
	for ci, fc := range Fig9Configs {
		var agg fig15Cell
		for s := 0; s < o.Seeds; s++ {
			c := cells[ci*o.Seeds+s]
			agg.floodPerNode += c.floodPerNode / float64(o.Seeds)
			agg.borderPerNode += c.borderPerNode / float64(o.Seeds)
			agg.cardPerNode += c.cardPerNode / float64(o.Seeds)
			agg.cardOverhead += c.cardOverhead / float64(o.Seeds)
			agg.cardSuccess += c.cardSuccess / float64(o.Seeds)
		}
		t.Add(fc.Scenario.Scaled(o.Scale).N,
			agg.floodPerNode, agg.borderPerNode, agg.cardPerNode,
			agg.cardOverhead, agg.cardSuccess)
	}
	return t
}

// RunAblationMethods compares the three contact-selection protocols on the
// workhorse scenario: selection traffic, backtracking, contacts found,
// contact distance, and the reachability they buy.
func RunAblationMethods(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	methods := []card.Method{card.PM1, card.PM2, card.EM}
	type row struct{ csq, back, contacts, dist, reach float64 }
	cells := make([]row, len(methods)*o.Seeds)
	Parallel(len(cells), func(i int) {
		m := methods[i/o.Seeds]
		seed := uint64(i%o.Seeds) + 1
		net := sc.StaticNet(seed)
		cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 1, Method: m}
		prot, err := NewCARD(net, cfg, seed)
		if err != nil {
			panic(err)
		}
		prot.SelectAll(0)
		n := float64(net.N())
		r := &cells[i]
		r.csq = float64(net.Totals().Get(manet.CatCSQ)) / n
		r.back = float64(net.Totals().Get(manet.CatBacktrack)) / n
		r.contacts = float64(prot.TotalContacts()) / n
		ds := prot.ContactDistances()
		if len(ds) > 0 {
			sum := 0
			for _, d := range ds {
				sum += d
			}
			r.dist = float64(sum) / float64(len(ds))
		}
		r.reach = prot.MeanReachability(1)
	})
	rows := make([]row, len(methods))
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		s := float64(o.Seeds)
		r.csq += c.csq / s
		r.back += c.back / s
		r.contacts += c.contacts / s
		r.dist += c.dist / s
		r.reach += c.reach / s
	}
	t := NewTable(
		fmt.Sprintf("Ablation: selection method (N=%d, R=3, r=16, NoC=5)", sc.N),
		"Method", "CSQ/node", "Backtrack/node", "Contacts/node", "Mean dist", "Reach%")
	for i, m := range methods {
		r := rows[i]
		t.Add(m.String(), r.csq, r.back, r.contacts, r.dist, r.reach)
	}
	return t
}

// RunAblationRecovery quantifies what local recovery buys under mobility:
// contact survival and maintenance traffic with recovery on vs off.
func RunAblationRecovery(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	type row struct{ lost, recovered, maint, contacts float64 }
	cells := make([]row, 2*o.Seeds)
	Parallel(len(cells), func(i int) {
		disable := i/o.Seeds == 1
		seed := uint64(i%o.Seeds) + 1
		net, err := sc.MobileNet(seed, mobility.DefaultRWP())
		if err != nil {
			panic(err)
		}
		cfg := card.Config{
			R: 3, MaxContactDist: 12, NoC: 5, Depth: 1, Method: card.EM,
			ValidatePeriod: 1, DisableLocalRecovery: disable,
		}
		prot, err := NewCARD(net, cfg, seed)
		if err != nil {
			panic(err)
		}
		prot.SelectAll(0)
		for t := 0.25; t <= 10+1e-9; t += 0.25 {
			net.RefreshAt(t)
			if isMultiple(t, cfg.ValidatePeriod) {
				prot.MaintainAll(t)
			}
		}
		n := float64(net.N())
		st := prot.Stats()
		cells[i] = row{
			lost:      float64(st.ContactsLost) / n,
			recovered: float64(st.Recoveries) / n,
			maint:     float64(net.Totals().Sum(maintenanceCats...)) / n,
			contacts:  float64(prot.TotalContacts()) / n,
		}
	})
	rows := make([]row, 2)
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		s := float64(o.Seeds)
		r.lost += c.lost / s
		r.recovered += c.recovered / s
		r.maint += c.maint / s
		r.contacts += c.contacts / s
	}
	t := NewTable(
		fmt.Sprintf("Ablation: local recovery over 10 s RWP (N=%d, R=3, r=12, NoC=5)", sc.N),
		"Recovery", "Lost/node", "Splices/node", "Maint msgs/node", "Final contacts/node")
	t.Add("on", rows[0].lost, rows[0].recovered, rows[0].maint, rows[0].contacts)
	t.Add("off", rows[1].lost, rows[1].recovered, rows[1].maint, rows[1].contacts)
	return t
}

// RunAblationQD compares bordercast query-detection modes: traffic and
// success per query.
func RunAblationQD(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	modes := []bordercast.QDMode{bordercast.QDNone, bordercast.QD1, bordercast.QD2}
	type row struct{ msgs, success float64 }
	cells := make([]row, len(modes)*o.Seeds)
	Parallel(len(cells), func(i int) {
		mode := modes[i/o.Seeds]
		seed := uint64(i%o.Seeds) + 1
		net := sc.StaticNet(seed)
		nb := neighborhood.NewOracle(net, 3)
		bc, err := bordercast.New(net, nb, bordercast.Config{Zone: 3, QD: mode})
		if err != nil {
			panic(err)
		}
		queries := 30
		found := 0
		var sum int64
		for _, pr := range queryWorkload(net, queries, seed) {
			res := bc.Query(pr[0], pr[1])
			sum += res.Messages
			if res.Found {
				found++
			}
		}
		cells[i] = row{
			msgs:    float64(sum) / float64(queries),
			success: 100 * float64(found) / float64(queries),
		}
	})
	rows := make([]row, len(modes))
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		r.msgs += c.msgs / float64(o.Seeds)
		r.success += c.success / float64(o.Seeds)
	}
	t := NewTable(
		fmt.Sprintf("Ablation: bordercast query detection (N=%d, zone=3)", sc.N),
		"QD mode", "Msgs/query", "Success%")
	for i, m := range modes {
		t.Add(m.String(), rows[i].msgs, rows[i].success)
	}
	return t
}

// RunSmallWorld quantifies the small-world argument of §I: contacts as
// short cuts. It reports the base graph's clustering and characteristic
// path length, then the "degrees of separation" achievable through the
// contact tree as NoC grows.
func RunSmallWorld(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	net := sc.StaticNet(1)
	census := net.Graph().ComputeCensus()
	t := NewTable(
		fmt.Sprintf("Small-world view (N=%d): clustering=%.3f, avg path=%.2f hops",
			sc.N, census.MeanClustering, census.AvgHops),
		"NoC", "Reach% D=1", "Reach% D=2", "Reach% D=3")
	for _, noc := range []int{1, 3, 5, 8} {
		cfg := card.Config{R: 3, MaxContactDist: 16, NoC: noc, Depth: 3, Method: card.EM}
		prot, err := NewCARD(net, cfg, uint64(noc))
		if err != nil {
			panic(err)
		}
		prot.SelectAll(0)
		t.Add(noc, prot.MeanReachability(1), prot.MeanReachability(2), prot.MeanReachability(3))
	}
	return t
}
