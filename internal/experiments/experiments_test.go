package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"card/internal/scheme"
	"card/internal/sweep"
)

// quick returns lightweight options for CI.
func quick() Options { return Options{Seeds: 1, Scale: 0.3} }

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestScenarioScaled(t *testing.T) {
	s := Scenario5.Scaled(0.25)
	if s.N != 125 {
		t.Errorf("scaled N = %d, want 125", s.N)
	}
	// Area scales by sqrt(0.25)=0.5 per side: density preserved.
	if s.Area.W < 354 || s.Area.W > 356 {
		t.Errorf("scaled width = %v, want ~355", s.Area.W)
	}
	if got := Scenario5.Scaled(1); got.N != 500 {
		t.Errorf("scale 1 changed scenario: %+v", got)
	}
	if got := Scenario5.Scaled(0.0001); got.N < 10 {
		t.Errorf("scale floor violated: N = %d", got.N)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Add(1, 2.5)
	tab.Add("x", 3.0)
	text := tab.Text()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "2.5") {
		t.Errorf("Text missing content:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("Markdown header wrong: %q", md)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("", "v")
	tab.Add(`has,comma "quoted"`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma ""quoted"""`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	seen := make([]bool, 100)
	Parallel(len(seen), func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not executed", i)
		}
	}
	Parallel(0, func(int) { t.Error("fn called for n=0") })
}

func TestRegistry(t *testing.T) {
	if len(Names()) != len(PaperOrder)+len(AblationOrder) {
		t.Errorf("registry size %d != paper %d + ablations %d",
			len(Names()), len(PaperOrder), len(AblationOrder))
	}
	for _, name := range append(append([]string{}, PaperOrder...), AblationOrder...) {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTable1Quick(t *testing.T) {
	tab := RunTable1(quick())
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8", len(tab.Rows))
	}
	// Monotonic sanity within equal-N rows: larger area -> fewer links
	// (rows 1..3 are 250 nodes over growing areas).
	l1 := cellFloat(t, tab, 0, 4)
	l3 := cellFloat(t, tab, 2, 4)
	if l3 >= l1 {
		t.Errorf("sparser scenario has more links: %v >= %v", l3, l1)
	}
	// Range sweep (rows 4..6, 500 nodes, ranges 30/50/70): degree grows.
	d4 := cellFloat(t, tab, 3, 5)
	d6 := cellFloat(t, tab, 5, 5)
	if d6 <= d4 {
		t.Errorf("longer range should raise degree: %v <= %v", d6, d4)
	}
}

func TestRunFig3Quick(t *testing.T) {
	tab := RunFig3(quick())
	if len(tab.Rows) != 9 {
		t.Fatalf("Fig 3 rows = %d", len(tab.Rows))
	}
	// Reachability grows (or saturates) with NoC for EM: last >= first.
	first := cellFloat(t, tab, 0, 2)
	last := cellFloat(t, tab, len(tab.Rows)-1, 2)
	if last < first {
		t.Errorf("EM reachability fell with NoC: %v -> %v", first, last)
	}
}

func TestRunFig4Quick(t *testing.T) {
	tab := RunFig4(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig 4 rows = %d", len(tab.Rows))
	}
	// PM backtracking >= EM at the largest NoC (the figure's headline).
	pm := cellFloat(t, tab, 4, 1)
	em := cellFloat(t, tab, 4, 2)
	if pm < em {
		t.Errorf("PM backtracking %v below EM %v", pm, em)
	}
}

func TestRunFig7Quick(t *testing.T) {
	tab := RunFig7(quick())
	if len(tab.Rows) != 20 {
		t.Fatalf("Fig 7 rows = %d, want 20 bins", len(tab.Rows))
	}
	// NoC=0 column (neighborhood only) must concentrate in low bins:
	// no mass above 50 % for a scaled scenario-5 network.
	for row := 10; row < 20; row++ {
		if v := cellFloat(t, tab, row, 1); v > 0 {
			t.Errorf("NoC=0 has %v nodes above 50%% reachability", v)
		}
	}
}

func TestRunFig8Quick(t *testing.T) {
	tab := RunFig8(quick())
	// Mean reachability must grow with depth: compare histogram means via
	// weighted sums.
	mean := func(col int) float64 {
		var sum, n float64
		for row := 0; row < len(tab.Rows); row++ {
			mid := 2.5 + 5*float64(row)
			c := cellFloat(t, tab, row, col)
			sum += mid * c
			n += c
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	d1, d3 := mean(1), mean(3)
	if d3 < d1 {
		t.Errorf("depth 3 mean reachability %v below depth 1 %v", d3, d1)
	}
}

func TestRunFig10Quick(t *testing.T) {
	tab := RunFig10(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig 10 rows = %d, want 5 windows", len(tab.Rows))
	}
	// Higher NoC must cost more total overhead (sum across windows).
	sum := func(col int) float64 {
		s := 0.0
		for r := range tab.Rows {
			s += cellFloat(t, tab, r, col)
		}
		return s
	}
	if sum(4) <= sum(1) {
		t.Errorf("NoC=7 overhead (%v) not above NoC=3 (%v)", sum(4), sum(1))
	}
}

func TestRunFig13Quick(t *testing.T) {
	tab := RunFig13(quick())
	if len(tab.Rows) != 10 {
		t.Fatalf("Fig 13 rows = %d, want 10 windows over 20s", len(tab.Rows))
	}
	if cellFloat(t, tab, 0, 2) <= 0 {
		t.Error("no contacts at first window")
	}
}

func TestRunFig14Quick(t *testing.T) {
	tab := RunFig14(quick())
	if len(tab.Rows) != 11 {
		t.Fatalf("Fig 14 rows = %d", len(tab.Rows))
	}
	// Normalized columns peak at 1.
	maxNR, maxNO := 0.0, 0.0
	for r := range tab.Rows {
		if v := cellFloat(t, tab, r, 3); v > maxNR {
			maxNR = v
		}
		if v := cellFloat(t, tab, r, 4); v > maxNO {
			maxNO = v
		}
	}
	if maxNR != 1 || maxNO != 1 {
		t.Errorf("normalization peaks = %v, %v, want 1, 1", maxNR, maxNO)
	}
	// Reachability at NoC=10 must exceed NoC=0.
	if cellFloat(t, tab, 10, 1) <= cellFloat(t, tab, 0, 1) {
		t.Error("contacts bought no reachability in fig14")
	}
}

func TestRunFig15Quick(t *testing.T) {
	tab := RunFig15(quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig 15 rows = %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		fl := cellFloat(t, tab, r, 1)
		bc := cellFloat(t, tab, r, 2)
		cd := cellFloat(t, tab, r, 3)
		// Flooding must dominate both alternatives everywhere. The
		// CARD-vs-bordercast ordering is asserted only at the largest size
		// (the paper's scalability headline); at small scales CARD's
		// failed-query escalations can cost more than a cheap bordercast.
		if fl <= bc || fl <= cd {
			t.Errorf("row %d: flooding (%v) must exceed bordercast (%v) and CARD (%v)",
				r, fl, bc, cd)
		}
		if succ := cellFloat(t, tab, r, 5); succ < 50 {
			t.Errorf("row %d: CARD success %v%% implausibly low", r, succ)
		}
	}
	// Flooding grows with N.
	if cellFloat(t, tab, 2, 1) <= cellFloat(t, tab, 0, 1) {
		t.Error("flooding cost did not grow with N")
	}
}

func TestAblationsQuick(t *testing.T) {
	m := RunAblationMethods(quick())
	if len(m.Rows) != 3 {
		t.Fatalf("methods ablation rows = %d", len(m.Rows))
	}
	rec := RunAblationRecovery(quick())
	if len(rec.Rows) != 2 {
		t.Fatalf("recovery ablation rows = %d", len(rec.Rows))
	}
	// Recovery on must lose no more contacts than recovery off.
	lostOn := cellFloat(t, rec, 0, 1)
	lostOff := cellFloat(t, rec, 1, 1)
	if lostOn > lostOff {
		t.Errorf("recovery on lost more contacts (%v) than off (%v)", lostOn, lostOff)
	}
	qd := RunAblationQD(quick())
	if len(qd.Rows) != 3 {
		t.Fatalf("QD ablation rows = %d", len(qd.Rows))
	}
	sw := RunSmallWorld(quick())
	if len(sw.Rows) != 4 {
		t.Fatalf("small-world rows = %d", len(sw.Rows))
	}
	// Depth monotonicity in the small-world table.
	for r := range sw.Rows {
		d1 := cellFloat(t, sw, r, 1)
		d3 := cellFloat(t, sw, r, 3)
		if d3 < d1 {
			t.Errorf("row %d: D=3 reach %v below D=1 %v", r, d3, d1)
		}
	}
}

func TestAblationMobilityQuick(t *testing.T) {
	tab := RunAblationMobility(quick())
	if len(tab.Rows) != 6 {
		t.Fatalf("mobility ablation rows = %d", len(tab.Rows))
	}
	// Rows: static, waypoint, walk, gauss-markov, group, waypoint+churn.
	// Columns: 1 lost, 2 expired, 3 splices, 4 overhead, 5 contacts.
	if lost := cellFloat(t, tab, 0, 1); lost != 0 {
		t.Errorf("static run lost %v contacts/node", lost)
	}
	if lost := cellFloat(t, tab, 1, 1); lost <= 0 {
		t.Error("waypoint run lost no contacts at all")
	}
	// Only the churn row expires contacts, and it must expire some.
	for r := 0; r < 5; r++ {
		if exp := cellFloat(t, tab, r, 2); exp != 0 {
			t.Errorf("churn-free row %d expired %v contacts/node", r, exp)
		}
	}
	if exp := cellFloat(t, tab, 5, 2); exp <= 0 {
		t.Error("churn row expired no contacts")
	}
	// Every model must end the run holding some contacts.
	for r := 0; r < 6; r++ {
		if c := cellFloat(t, tab, r, 5); c <= 0 {
			t.Errorf("row %d ended with %v contacts/node", r, c)
		}
	}
}

func TestReplicationQuick(t *testing.T) {
	tab := RunReplication(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("replication rows = %d", len(tab.Rows))
	}
	// More replicas cannot hurt CARD's success rate (compare 1 vs 16).
	if s1, s16 := cellFloat(t, tab, 0, 2), cellFloat(t, tab, 4, 2); s16 < s1 {
		t.Errorf("replication reduced success: %v -> %v", s1, s16)
	}
	// Expanding ring gets cheaper with replication (nearer holders).
	if r1, r16 := cellFloat(t, tab, 0, 4), cellFloat(t, tab, 4, 4); r16 > r1 {
		t.Errorf("ring cost rose with replication: %v -> %v", r1, r16)
	}
}

// TestFigSweepsMatchDirectLoops is the refactor acceptance pin: the
// Fig. 11/12 time-series sweep and the Fig. 14 trade-off sweep, re-derived
// through the generic sweep harness, must match the pre-refactor direct
// loops seed for seed, bit for bit.
func TestFigSweepsMatchDirectLoops(t *testing.T) {
	o := Options{Seeds: 2, Scale: 0.15}
	o.fill()
	sc := Scenario5.Scaled(o.Scale)

	// Fig. 11/12 series: harness vs the direct serial reference
	// (OverheadOverTime runs runTimeSim with seeds 1..Seeds and averages).
	rs, got := fig11Sweep(o, sc)
	for i, r := range rs {
		cfg := fig10Base()
		cfg.NoC = 5
		cfg.MaxContactDist = r
		want := OverheadOverTime(timeSimParams{
			sc: sc, cfg: cfg, horizon: 10, window: 2, refreshDt: 0.25,
		}, o.Seeds)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("fig11 series for r=%d diverges from the direct loop", r)
		}
	}

	// Fig. 14 rows: harness pipeline vs the direct cell-major loop with
	// the identical averaging order.
	nocs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	reach := make([]float64, len(nocs))
	over := make([]float64, len(nocs))
	for i := 0; i < len(nocs)*o.Seeds; i++ {
		cfg := fig10Base()
		cfg.NoC = nocs[i/o.Seeds]
		m, err := fig14Cell(sc, cfg, uint64(i%o.Seeds)+1)
		if err != nil {
			t.Fatal(err)
		}
		reach[i/o.Seeds] += m.Reach / float64(o.Seeds)
		over[i/o.Seeds] += m.Overhead / float64(o.Seeds)
	}
	tab := RunFig14(o)
	for i := range nocs {
		if got, want := cellFloat(t, tab, i, 1), reach[i]; got != roundTrip(want) {
			t.Errorf("fig14 NoC=%d reach %v != direct %v", nocs[i], got, want)
		}
		if got, want := cellFloat(t, tab, i, 2), over[i]; got != roundTrip(want) {
			t.Errorf("fig14 NoC=%d overhead %v != direct %v", nocs[i], got, want)
		}
	}
}

// roundTrip pushes a float through the table's %.2f cell rendering, the
// only lossy step between the sweep pipeline and the compared table.
func roundTrip(v float64) float64 {
	f, _ := strconv.ParseFloat(strings.TrimRight(strings.TrimRight(
		strconv.FormatFloat(v, 'f', 2, 64), "0"), "."), 64)
	return f
}

func TestRunSweepQuick(t *testing.T) {
	tab := RunSweep(quick())
	if len(tab.Rows) != 16 {
		t.Fatalf("sweep rows = %d, want 16 (4x4 grid)", len(tab.Rows))
	}
	if tab.Columns[0] != "NoC" || tab.Columns[1] != "r" {
		t.Fatalf("sweep columns = %v", tab.Columns[:2])
	}
	frontier := 0
	last := len(tab.Columns) - 1
	for r := range tab.Rows {
		if reach := cellFloat(t, tab, r, 3); reach <= 0 || reach > 100 {
			t.Errorf("row %d: reachability %v out of (0,100]", r, reach)
		}
		if tab.Rows[r][last] == "*" {
			frontier++
		}
	}
	if frontier == 0 {
		t.Error("no point marked on the Pareto frontier")
	}
}

func TestSweepTableRendersPoints(t *testing.T) {
	g := &sweep.Grid{Axes: []sweep.Axis{{Name: "NoC", Values: []float64{1, 2}}}}
	res, err := g.Run(func(_ sweep.CellConfig, point []float64, _ int, _ uint64) (sweep.Metrics, error) {
		return sweep.Metrics{Overhead: point[0], Reach: 10 * point[0]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := SweepTable("demo", res)
	if len(tab.Rows) != 2 || tab.Columns[0] != "NoC" {
		t.Fatalf("table shape wrong: %+v", tab)
	}
}

func TestTablePlot(t *testing.T) {
	tab := NewTable("demo", "bin", "series")
	tab.Add("0-5", 10.0)
	tab.Add("5-10", 0.0)
	tab.Add("10-15", 0.4)
	out := tab.Plot()
	if !strings.Contains(out, "-- series --") {
		t.Errorf("plot missing column section:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var barFor = map[string]int{}
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			label := strings.TrimSpace(l[:i])
			barFor[label] = strings.Count(l, "#")
		}
	}
	if barFor["0-5"] != 50 {
		t.Errorf("max bar = %d, want 50", barFor["0-5"])
	}
	if barFor["5-10"] != 0 {
		t.Errorf("zero value drew %d chars", barFor["5-10"])
	}
	if barFor["10-15"] < 1 {
		t.Error("small non-zero value invisible")
	}
	// Non-numeric column must be skipped gracefully.
	tab2 := NewTable("x", "k", "v")
	tab2.Add("a", "oops")
	if out2 := tab2.Plot(); strings.Contains(out2, "-- v --") {
		t.Error("non-numeric column plotted")
	}
}

func TestRunSustainedQuick(t *testing.T) {
	tab := RunSustained(quick())
	names := scheme.Names()
	if len(tab.Rows) != len(names) {
		t.Fatalf("sustained rows = %d, want %d schemes", len(tab.Rows), len(names))
	}
	rowOf := func(name string) int {
		t.Helper()
		for r, row := range tab.Rows {
			if row[0] == name {
				return r
			}
		}
		t.Fatalf("no sustained row for scheme %q", name)
		return -1
	}
	// One row per registered scheme. Columns: 1 success, 2 offline,
	// 3 mean, 4 P50, 5 P95, 6 P99.
	for r, name := range names {
		if got := rowOf(name); got != r {
			t.Errorf("scheme %q at row %d, want registry order %d", name, got, r)
		}
		succ := cellFloat(t, tab, r, 1)
		if succ <= 0 || succ > 100 {
			t.Errorf("row %d: success %v%% out of range", r, succ)
		}
		p50 := cellFloat(t, tab, r, 4)
		p95 := cellFloat(t, tab, r, 5)
		p99 := cellFloat(t, tab, r, 6)
		if p50 > p95 || p95 > p99 {
			t.Errorf("row %d: quantiles not monotone: %v/%v/%v", r, p50, p95, p99)
		}
	}
	card, flood := rowOf("card"), rowOf("flood")
	// Churn keeps some sources offline in every scheme, identically (the
	// offered stream is shared).
	off := cellFloat(t, tab, 0, 2)
	if off <= 0 {
		t.Error("churned scenario dropped no sources")
	}
	for r := 1; r < len(tab.Rows); r++ {
		if got := cellFloat(t, tab, r, 2); got != off {
			t.Errorf("offline %% differs across schemes: %v vs %v — streams not shared", got, off)
		}
	}
	// Flooding answers everything reachable; its success cannot trail the
	// others and its mean cost must dominate CARD's.
	if fl, cd := cellFloat(t, tab, flood, 1), cellFloat(t, tab, card, 1); fl < cd {
		t.Errorf("flood success %v%% below CARD %v%%", fl, cd)
	}
	if fl, cd := cellFloat(t, tab, flood, 3), cellFloat(t, tab, card, 3); fl <= cd {
		t.Errorf("flood mean cost %v not above CARD %v", fl, cd)
	}
}
