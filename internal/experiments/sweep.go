package experiments

import (
	"fmt"

	"card/internal/engine"
	"card/internal/sweep"
)

// SweepTable renders a completed sweep as an experiments table: one row
// per seed-averaged grid point, a "*" in the pareto column marking the
// overhead-vs-reachability frontier.
func SweepTable(title string, res *sweep.Result) *Table {
	t := NewTable(title, res.Headers()...)
	for p := range res.Points {
		t.Add(res.RowCells(p)...)
	}
	return t
}

// RunSweep is the `sweep` experiment: a stock NoC x r grid over the
// paper's workhorse scenario run through the generic sweep engine —
// 10 s of random-waypoint mobility with scheduled maintenance, then a
// 50-query batch per cell. It demonstrates the trade-off surface the
// bespoke Fig. 11-14 declarations each slice one line through; ad-hoc
// grids over any preset run via `cardsim -sweep`.
func RunSweep(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	axes, err := sweep.ParseSpec("NoC=2..8..2;r=8..14..2")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // static spec bug
	}
	g := &sweep.Grid{Base: fig10Base(), Axes: axes, Seeds: o.Seeds}
	er := sweep.EngineRunner{
		Net: engine.NetworkConfig{
			Nodes: sc.N, Width: sc.Area.W, Height: sc.Area.H, TxRange: sc.TxRange,
			Mobility: engine.RandomWaypoint, MinSpeed: 1, MaxSpeed: 19,
		},
		Horizon: 10,
		Queries: 50,
		Seed:    uint64(sc.ID) << 32,
	}
	res, err := g.Run(er.Run)
	if err != nil {
		panic(fmt.Sprintf("experiments: sweep: %v", err))
	}
	return SweepTable(
		fmt.Sprintf("Sweep: overhead vs reachability over NoC x r (N=%d, R=3, D=1, 10 s RWP, %d seed(s); * = Pareto frontier)",
			sc.N, o.Seeds),
		res)
}
