package experiments

import (
	"runtime"
	"sync"
)

// Parallel runs fn(i) for every i in [0, n) across up to GOMAXPROCS worker
// goroutines and waits for completion. Each experiment cell owns its whole
// simulation (network, protocol, RNG), so cells share nothing and the
// fan-out is embarrassingly parallel; results land in caller-owned slices
// indexed by i.
func Parallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
