package experiments

import "card/internal/par"

// Parallel runs fn(i) for every i in [0, n) across up to GOMAXPROCS worker
// goroutines and waits for completion. Each experiment cell owns its whole
// simulation (network, protocol, RNG), so cells share nothing and the
// fan-out is embarrassingly parallel; results land in caller-owned slices
// indexed by i.
//
// Parallel is a thin veneer over the shared [par.Do] pool — the same
// primitive the engine uses for batch queries and the oracle for view
// warming — so every layer schedules work the same way.
func Parallel(n int, fn func(i int)) { par.Do(n, fn) }
