// Package experiments reproduces the paper's evaluation (§IV): one runner
// per table and figure, plus ablations on CARD's design choices. Each
// runner builds its own deterministic simulation per (parameter, seed)
// cell, fans the cells across worker goroutines, and renders the same rows
// or series the paper reports.
package experiments

import (
	"fmt"

	"card/internal/card"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// Scenario is one row of the paper's Table 1: a network size, deployment
// area, and transmission range.
type Scenario struct {
	ID      int
	N       int
	Area    geom.Rect
	TxRange float64
}

func (s Scenario) String() string {
	return fmt.Sprintf("#%d N=%d %s tx=%gm", s.ID, s.N, s.Area, s.TxRange)
}

// Table1Scenarios lists the eight simulation scenarios of Table 1.
var Table1Scenarios = []Scenario{
	{ID: 1, N: 250, Area: geom.Rect{W: 500, H: 500}, TxRange: 50},
	{ID: 2, N: 250, Area: geom.Rect{W: 710, H: 710}, TxRange: 50},
	{ID: 3, N: 250, Area: geom.Rect{W: 1000, H: 1000}, TxRange: 50},
	{ID: 4, N: 500, Area: geom.Rect{W: 710, H: 710}, TxRange: 30},
	{ID: 5, N: 500, Area: geom.Rect{W: 710, H: 710}, TxRange: 50},
	{ID: 6, N: 500, Area: geom.Rect{W: 710, H: 710}, TxRange: 70},
	{ID: 7, N: 1000, Area: geom.Rect{W: 710, H: 710}, TxRange: 50},
	{ID: 8, N: 1000, Area: geom.Rect{W: 1000, H: 1000}, TxRange: 50},
}

// Scenario5 is the paper's workhorse configuration (most figures).
var Scenario5 = Table1Scenarios[4]

// Scaled returns the scenario shrunk by factor f (0 < f <= 1): node count
// scales by f and the area by √f, preserving density. Benchmarks and CI
// use scaled scenarios; f = 1 reproduces the paper's sizes.
func (s Scenario) Scaled(f float64) Scenario {
	if f >= 1 {
		return s
	}
	out := s
	out.N = int(float64(s.N) * f)
	if out.N < 10 {
		out.N = 10
	}
	scale := sqrtf(f)
	out.Area = geom.Rect{W: s.Area.W * scale, H: s.Area.H * scale}
	return out
}

func sqrtf(x float64) float64 {
	// Newton's iteration; avoids importing math for one call site.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// StaticNet builds a uniformly placed static network for the scenario.
func (s Scenario) StaticNet(seed uint64) *manet.Network {
	rng := xrand.New(seed ^ uint64(s.ID)<<32)
	pts := topology.UniformPositions(s.N, s.Area, rng)
	return manet.New(mobility.NewStatic(pts, s.Area), s.TxRange, rng.Derive(1))
}

// MobileNet builds a random-waypoint network for the scenario.
func (s Scenario) MobileNet(seed uint64, cfg mobility.RWPConfig) (*manet.Network, error) {
	rng := xrand.New(seed ^ uint64(s.ID)<<32)
	m, err := mobility.NewRandomWaypoint(s.N, s.Area, cfg, rng)
	if err != nil {
		return nil, err
	}
	return manet.New(m, s.TxRange, rng.Derive(1)), nil
}

// NewCARD wires a CARD protocol with an oracle neighborhood over net.
func NewCARD(net *manet.Network, cfg card.Config, seed uint64) (*card.Protocol, error) {
	nb := neighborhood.NewOracle(net, cfg.R)
	return card.New(net, nb, cfg, xrand.New(seed).Derive(2))
}
