package experiments

import (
	"fmt"

	"card/internal/card"
	"card/internal/stats"
)

// Options tunes how heavy an experiment run is.
type Options struct {
	// Seeds is the number of independent repetitions averaged per cell
	// (default 3).
	Seeds int
	// Scale shrinks every scenario, preserving node density (default 1 =
	// the paper's sizes). Benchmarks use smaller scales.
	Scale float64
}

func (o *Options) fill() {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
}

// DefaultOptions returns full-size runs with 3 seeds.
func DefaultOptions() Options { return Options{Seeds: 3, Scale: 1} }

// QuickOptions returns a fast configuration for tests and smoke runs.
func QuickOptions() Options { return Options{Seeds: 1, Scale: 0.3} }

// RunTable1 regenerates Table 1: the connectivity census of all eight
// scenarios, averaged over seeds.
func RunTable1(o Options) *Table {
	o.fill()
	t := NewTable(
		fmt.Sprintf("Table 1: scenario census (avg of %d seeds, scale %g)", o.Seeds, o.Scale),
		"No.", "Nodes", "Area", "TxRange", "Links", "Degree", "Diameter", "AvgHops", "LCC")
	type row struct{ links, degree, diameter, hops, lcc stats.Welford }
	rows := make([]row, len(Table1Scenarios))
	cells := len(Table1Scenarios) * o.Seeds
	results := make([][5]float64, cells)
	Parallel(cells, func(i int) {
		sc := Table1Scenarios[i/o.Seeds].Scaled(o.Scale)
		seed := uint64(i%o.Seeds) + 1
		c := sc.StaticNet(seed).Graph().ComputeCensus()
		results[i] = [5]float64{
			float64(c.Links), c.MeanDegree, float64(c.Diameter), c.AvgHops, c.LargestComponentFrac,
		}
	})
	for i, res := range results {
		r := &rows[i/o.Seeds]
		r.links.Add(res[0])
		r.degree.Add(res[1])
		r.diameter.Add(res[2])
		r.hops.Add(res[3])
		r.lcc.Add(res[4])
	}
	for i, sc := range Table1Scenarios {
		s := sc.Scaled(o.Scale)
		r := &rows[i]
		t.Add(s.ID, s.N, s.Area.String(), s.TxRange,
			r.links.Mean(), r.degree.Mean(), r.diameter.Mean(), r.hops.Mean(), r.lcc.Mean())
	}
	return t
}

// reachCell is one (config, seed) reachability measurement: select contacts
// on a static snapshot, then record every node's reachability percentage.
func reachCell(sc Scenario, cfg card.Config, seed uint64) (*stats.Histogram, *stats.Welford, *card.Protocol) {
	net := sc.StaticNet(seed)
	p, err := NewCARD(net, cfg, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // static config bug, not data
	}
	p.SelectAll(0)
	h := stats.NewReachabilityHistogram()
	var w stats.Welford
	for u := 0; u < net.N(); u++ {
		v := p.Reachability(int32(u), cfg.Depth)
		h.Add(v)
		w.Add(v)
	}
	return h, &w, p
}

// ReachabilityDistribution aggregates reachCell over seeds: summed
// histogram (counts normalized per seed when rendered) and merged mean.
func ReachabilityDistribution(sc Scenario, cfg card.Config, seeds int) (*stats.Histogram, *stats.Welford) {
	hists := make([]*stats.Histogram, seeds)
	wels := make([]*stats.Welford, seeds)
	Parallel(seeds, func(i int) {
		h, w, _ := reachCell(sc, cfg, uint64(i)+1)
		hists[i], wels[i] = h, w
	})
	total := stats.NewReachabilityHistogram()
	var w stats.Welford
	for i := range hists {
		total.Merge(hists[i])
		w.Merge(wels[i])
	}
	return total, &w
}

// distributionTable renders reachability histograms (one per sweep value)
// in the paper's layout: rows are 5 % reachability bins, columns the sweep
// values, cells the number of nodes (averaged per seed).
func distributionTable(title string, labels []string, hists []*stats.Histogram, seeds int) *Table {
	cols := append([]string{"Reach%"}, labels...)
	t := NewTable(title, cols...)
	for bin := 0; bin < hists[0].NumBins(); bin++ {
		cells := make([]any, 0, len(hists)+1)
		lo := float64(bin) * hists[0].BinWidth()
		cells = append(cells, fmt.Sprintf("%g-%g", lo, lo+hists[0].BinWidth()))
		for _, h := range hists {
			cells = append(cells, float64(h.Bin(bin))/float64(seeds))
		}
		t.Add(cells...)
	}
	return t
}

// fig3Base is the configuration printed under Fig. 3/4: 500 nodes,
// 710x710 m, 50 m range, R=3, r=20, D=1.
func fig3Base() card.Config {
	return card.Config{R: 3, MaxContactDist: 20, Depth: 1}
}

// RunFig3 regenerates Fig. 3: mean reachability vs NoC (1..9) for the
// probabilistic and edge methods.
func RunFig3(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	nocs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	pm := make([]float64, len(nocs))
	em := make([]float64, len(nocs))
	Parallel(len(nocs)*2, func(i int) {
		noc := nocs[i/2]
		cfg := fig3Base()
		cfg.NoC = noc
		if i%2 == 0 {
			cfg.Method = card.PM2
		} else {
			cfg.Method = card.EM
		}
		_, w := ReachabilityDistribution(sc, cfg, o.Seeds)
		if i%2 == 0 {
			pm[i/2] = w.Mean()
		} else {
			em[i/2] = w.Mean()
		}
	})
	t := NewTable(
		fmt.Sprintf("Fig 3: reachability vs NoC, PM vs EM (N=%d, R=3, r=20, D=1)", sc.N),
		"NoC", "PM reach%", "EM reach%")
	for i, noc := range nocs {
		t.Add(noc, pm[i], em[i])
	}
	return t
}

// RunFig4 regenerates Fig. 4: backtracking messages per node during
// contact selection vs NoC (1..5), PM vs EM.
func RunFig4(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	nocs := []int{1, 2, 3, 4, 5}
	results := make([]float64, len(nocs)*2*o.Seeds)
	Parallel(len(results), func(i int) {
		cell := i / o.Seeds
		seed := uint64(i%o.Seeds) + 1
		noc := nocs[cell/2]
		cfg := fig3Base()
		cfg.NoC = noc
		if cell%2 == 0 {
			cfg.Method = card.PM2
		} else {
			cfg.Method = card.EM
		}
		net := sc.StaticNet(seed)
		p, err := NewCARD(net, cfg, seed)
		if err != nil {
			panic(err)
		}
		p.SelectAll(0)
		results[i] = float64(net.Totals().Get(backtrackCat)) / float64(net.N())
	})
	pm := make([]float64, len(nocs))
	em := make([]float64, len(nocs))
	for i, v := range results {
		cell := i / o.Seeds
		if cell%2 == 0 {
			pm[cell/2] += v / float64(o.Seeds)
		} else {
			em[cell/2] += v / float64(o.Seeds)
		}
	}
	t := NewTable(
		fmt.Sprintf("Fig 4: backtracking per node vs NoC, PM vs EM (N=%d, R=3, r=20)", sc.N),
		"NoC", "PM backtracks/node", "EM backtracks/node")
	for i, noc := range nocs {
		t.Add(noc, pm[i], em[i])
	}
	return t
}

// RunFig5 regenerates Fig. 5: reachability distribution for R = 1..7
// (r=16, NoC=10, D=1).
func RunFig5(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	rs := []int{1, 2, 3, 4, 5, 6, 7}
	hists := make([]*stats.Histogram, len(rs))
	labels := make([]string, len(rs))
	Parallel(len(rs), func(i int) {
		cfg := card.Config{R: rs[i], MaxContactDist: 16, NoC: 10, Depth: 1, Method: card.EM}
		h, _ := ReachabilityDistribution(sc, cfg, o.Seeds)
		hists[i] = h
		labels[i] = fmt.Sprintf("R=%d", rs[i])
	})
	return distributionTable(
		fmt.Sprintf("Fig 5: reachability distribution vs R (N=%d, r=16, NoC=10, D=1)", sc.N),
		labels, hists, o.Seeds)
}

// RunFig6 regenerates Fig. 6: reachability distribution for r = 2R..2R+12
// (R=3, NoC=10, D=1).
func RunFig6(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	const r1 = 3
	deltas := []int{0, 2, 4, 6, 8, 10, 12}
	hists := make([]*stats.Histogram, len(deltas))
	labels := make([]string, len(deltas))
	Parallel(len(deltas), func(i int) {
		rr := 2*r1 + deltas[i]
		cfg := card.Config{R: r1, MaxContactDist: rr, NoC: 10, Depth: 1, Method: card.EM}
		h, _ := ReachabilityDistribution(sc, cfg, o.Seeds)
		hists[i] = h
		labels[i] = fmt.Sprintf("r=2R+%d", deltas[i])
	})
	return distributionTable(
		fmt.Sprintf("Fig 6: reachability distribution vs r (N=%d, R=3, NoC=10, D=1)", sc.N),
		labels, hists, o.Seeds)
}

// RunFig7 regenerates Fig. 7: reachability distribution for NoC = 0..12
// (R=3, r=10, D=1).
func RunFig7(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	nocs := []int{0, 2, 4, 6, 8, 10, 12}
	hists := make([]*stats.Histogram, len(nocs))
	labels := make([]string, len(nocs))
	Parallel(len(nocs), func(i int) {
		cfg := card.Config{R: 3, MaxContactDist: 10, NoC: nocs[i], Depth: 1, Method: card.EM}
		h, _ := reachNoCAware(sc, cfg, o.Seeds)
		hists[i] = h
		labels[i] = fmt.Sprintf("NoC=%d", nocs[i])
	})
	return distributionTable(
		fmt.Sprintf("Fig 7: reachability distribution vs NoC (N=%d, R=3, r=10, D=1)", sc.N),
		labels, hists, o.Seeds)
}

// reachNoCAware handles the NoC=0 curve: Config.Validate treats zero as
// "default", so a literal zero is run by skipping selection entirely.
func reachNoCAware(sc Scenario, cfg card.Config, seeds int) (*stats.Histogram, *stats.Welford) {
	if cfg.NoC != 0 {
		return ReachabilityDistribution(sc, cfg, seeds)
	}
	cfg.NoC = 1 // validate, but never select
	hists := make([]*stats.Histogram, seeds)
	wels := make([]*stats.Welford, seeds)
	Parallel(seeds, func(i int) {
		net := sc.StaticNet(uint64(i) + 1)
		p, err := NewCARD(net, cfg, uint64(i)+1)
		if err != nil {
			panic(err)
		}
		h := stats.NewReachabilityHistogram()
		var w stats.Welford
		for u := 0; u < net.N(); u++ {
			v := p.Reachability(int32(u), cfg.Depth)
			h.Add(v)
			w.Add(v)
		}
		hists[i], wels[i] = h, &w
	})
	total := stats.NewReachabilityHistogram()
	var w stats.Welford
	for i := range hists {
		total.Merge(hists[i])
		w.Merge(wels[i])
	}
	return total, &w
}

// RunFig8 regenerates Fig. 8: reachability distribution for D = 1..3
// (R=3, NoC=10, r=10).
func RunFig8(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	depths := []int{1, 2, 3}
	hists := make([]*stats.Histogram, len(depths))
	labels := make([]string, len(depths))
	Parallel(len(depths), func(i int) {
		cfg := card.Config{R: 3, MaxContactDist: 10, NoC: 10, Depth: depths[i], Method: card.EM}
		h, _ := ReachabilityDistribution(sc, cfg, o.Seeds)
		hists[i] = h
		labels[i] = fmt.Sprintf("D=%d", depths[i])
	})
	return distributionTable(
		fmt.Sprintf("Fig 8: reachability distribution vs D (N=%d, R=3, r=10, NoC=10)", sc.N),
		labels, hists, o.Seeds)
}

// Fig9Configs are the per-size tunings printed inside Fig. 9.
var Fig9Configs = []struct {
	Scenario Scenario
	NoC      int
	R        int
	MaxDist  int
}{
	{Table1Scenarios[0], 10, 3, 14}, // 250 nodes, 500x500
	{Scenario5, 12, 5, 17},          // 500 nodes, 710x710
	{Table1Scenarios[7], 15, 6, 24}, // 1000 nodes, 1000x1000
}

// RunFig9 regenerates Fig. 9: reachability distributions for three network
// sizes with per-size (R, r, NoC) tunings.
func RunFig9(o Options) *Table {
	o.fill()
	hists := make([]*stats.Histogram, len(Fig9Configs))
	labels := make([]string, len(Fig9Configs))
	Parallel(len(Fig9Configs), func(i int) {
		fc := Fig9Configs[i]
		sc := fc.Scenario.Scaled(o.Scale)
		cfg := card.Config{R: fc.R, MaxContactDist: fc.MaxDist, NoC: fc.NoC, Depth: 1, Method: card.EM}
		h, _ := ReachabilityDistribution(sc, cfg, o.Seeds)
		hists[i] = h
		labels[i] = fmt.Sprintf("N=%d,R=%d,r=%d,NoC=%d", sc.N, fc.R, fc.MaxDist, fc.NoC)
	})
	return distributionTable("Fig 9: reachability distribution across network sizes",
		labels, hists, o.Seeds)
}
