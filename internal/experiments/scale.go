package experiments

import (
	"fmt"
	"time"

	"card/internal/engine"
)

// RunScale exercises the engine's workload presets beyond the paper's
// 250–1000-node scenarios: for each preset it advances the scenario over
// its horizon, fans a batched query load, and reports topology shape,
// discovery quality and wall-clock throughput. This is the scaling
// counterpart to Table 1 — where the paper characterizes connectivity, this
// table characterizes engine cost at production sizes.
//
// Scale (Options.Scale) shrinks node counts density-preserving like every
// other runner, so CI can sweep the presets cheaply while -scale 1
// reproduces the full 1k–5k regime.
func RunScale(o Options) *Table {
	o.fill()
	tab := NewTable(
		fmt.Sprintf("Engine presets under batched query load (scale %g, %d seed(s))", o.Scale, o.Seeds),
		"preset", "nodes", "degree", "reach-D1 %", "found %", "msgs/query", "sim-s", "advance-ms", "wall-ms",
	)
	const queries = 500
	for _, p := range engine.Presets() {
		nc := p.Net
		if o.Scale < 1 {
			nc.Nodes = int(float64(nc.Nodes) * o.Scale)
			if nc.Nodes < 10 {
				nc.Nodes = 10
			}
			s := sqrtf(o.Scale)
			nc.Width *= s
			nc.Height *= s
		}
		var (
			degree, reach, foundPct, msgsPerQ float64
			advance, wall                     time.Duration
		)
		results := make([]scaleCell, o.Seeds)
		Parallel(o.Seeds, func(i int) {
			results[i] = runScaleCell(nc, p, uint64(i)+1, queries)
		})
		for _, r := range results {
			degree += r.degree
			reach += r.reach
			foundPct += r.foundPct
			msgsPerQ += r.msgsPerQ
			advance += r.advance
			wall += r.wall
		}
		n := float64(o.Seeds)
		tab.Add(p.Name, nc.Nodes, degree/n, reach/n, foundPct/n, msgsPerQ/n,
			p.Horizon,
			float64((advance / time.Duration(o.Seeds)).Milliseconds()),
			float64((wall / time.Duration(o.Seeds)).Milliseconds()))
	}
	return tab
}

type scaleCell struct {
	degree, reach, foundPct, msgsPerQ float64
	// advance is the wall-clock spent inside Engine.Advance — mobility,
	// topology refreshes and the (sharded) maintenance rounds; reported
	// separately so the parallel-maintenance speedup is visible per preset.
	advance time.Duration
	wall    time.Duration
}

func runScaleCell(nc engine.NetworkConfig, p engine.Preset, seed uint64, queries int) scaleCell {
	start := time.Now()
	nc.Seed = seed
	e, err := engine.New(nc, p.Protocol)
	if err != nil {
		// Presets are static data; a failure here is a programming error.
		panic(fmt.Sprintf("experiments: preset %s: %v", p.Name, err))
	}
	e.SelectContacts()
	var advance time.Duration
	if p.Horizon > 0 {
		t0 := time.Now()
		e.Advance(p.Horizon)
		advance = time.Since(t0)
	}
	pairs := e.RandomPairs(queries, seed^0xa5a5a5a5)
	res := e.BatchQuery(pairs)
	var found int
	var msgs int64
	for _, r := range res {
		if r.Found {
			found++
		}
		msgs += r.Messages
	}
	c := scaleCell{advance: advance, wall: time.Since(start)}
	g := e.Network().Graph()
	c.degree = 2 * float64(g.Links()) / float64(g.N())
	c.reach = e.MeanReachability(1)
	if len(res) > 0 {
		c.foundPct = 100 * float64(found) / float64(len(res))
		c.msgsPerQ = float64(msgs) / float64(len(res))
	}
	return c
}
