package experiments

import (
	"fmt"

	"card/internal/card"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/sweep"
)

// backtrackCat aliases the counter category used by Fig. 4 and Fig. 12.
const backtrackCat = manet.CatBacktrack

// selectionCats are the categories charged to contact selection.
var selectionCats = []manet.Category{manet.CatCSQ, manet.CatBacktrack}

// maintenanceCats are the categories charged to contact maintenance.
var maintenanceCats = []manet.Category{manet.CatValidate, manet.CatRecovery}

// overheadCats is the paper's §IV.B total: selection + maintenance.
var overheadCats = []manet.Category{
	manet.CatCSQ, manet.CatBacktrack, manet.CatValidate, manet.CatRecovery,
}

// TimeSeries is the averaged output of a mobile overhead run: one sample
// per window boundary.
type TimeSeries struct {
	// Times are the window end times in seconds (2, 4, ... horizon).
	Times []float64
	// Overhead is selection+maintenance control messages per node within
	// each window (Fig. 10/11).
	Overhead []float64
	// Backtrack is the backtracking share within each window (Fig. 12).
	Backtrack []float64
	// Maintenance is validate+recovery messages per node per window
	// (Fig. 13).
	Maintenance []float64
	// Contacts is the number of live contacts across all tables at each
	// window end (Fig. 13's companion series).
	Contacts []float64
}

// timeSimParams collects the knobs of a mobile run.
type timeSimParams struct {
	sc        Scenario
	cfg       card.Config
	horizon   float64 // total simulated seconds
	window    float64 // sampling window
	refreshDt float64 // topology refresh step
}

// runTimeSim executes one seeded mobile simulation: initial selection at
// t=0, topology refresh every refreshDt, one maintenance round per
// ValidatePeriod, counters sampled per window.
func runTimeSim(p timeSimParams, seed uint64) TimeSeries {
	net, err := p.sc.MobileNet(seed, mobility.DefaultRWP())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	prot, err := NewCARD(net, p.cfg, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	cfg := prot.Config() // defaults filled
	prot.SelectAll(0)

	var ts TimeSeries
	snap := net.Totals()
	nextValidate := cfg.ValidatePeriod
	nextWindow := p.window
	n := float64(net.N())
	for t := p.refreshDt; t <= p.horizon+1e-9; t += p.refreshDt {
		net.RefreshAt(t)
		if t+1e-9 >= nextValidate {
			prot.MaintainAll(t)
			nextValidate += cfg.ValidatePeriod
		}
		if t+1e-9 >= nextWindow {
			d := net.Totals().DiffSince(snap)
			snap = net.Totals()
			ts.Times = append(ts.Times, nextWindow)
			ts.Overhead = append(ts.Overhead, float64(d.Sum(overheadCats...))/n)
			ts.Backtrack = append(ts.Backtrack, float64(d.Get(backtrackCat))/n)
			ts.Maintenance = append(ts.Maintenance, float64(d.Sum(maintenanceCats...))/n)
			ts.Contacts = append(ts.Contacts, float64(prot.TotalContacts()))
			nextWindow += p.window
		}
	}
	return ts
}

// averageSeries averages time series point-wise in slice order — the
// seed-aggregation every mobile figure uses.
func averageSeries(runs []TimeSeries) TimeSeries {
	seeds := len(runs)
	out := TimeSeries{Times: runs[0].Times}
	k := len(out.Times)
	out.Overhead = make([]float64, k)
	out.Backtrack = make([]float64, k)
	out.Maintenance = make([]float64, k)
	out.Contacts = make([]float64, k)
	for _, r := range runs {
		for i := 0; i < k; i++ {
			out.Overhead[i] += r.Overhead[i] / float64(seeds)
			out.Backtrack[i] += r.Backtrack[i] / float64(seeds)
			out.Maintenance[i] += r.Maintenance[i] / float64(seeds)
			out.Contacts[i] += r.Contacts[i] / float64(seeds)
		}
	}
	return out
}

// OverheadOverTime averages runTimeSim across seeds with a direct serial
// loop. It is the pre-sweep reference implementation the figure sweeps
// are pinned against (TestFigSweepsMatchDirectLoops): timeSeriesSweep
// must reproduce it seed for seed.
func OverheadOverTime(p timeSimParams, seeds int) TimeSeries {
	runs := make([]TimeSeries, seeds)
	for i := range runs {
		runs[i] = runTimeSim(p, uint64(i)+1)
	}
	return averageSeries(runs)
}

// timeSeriesSweep runs one mobile time-series cell per (grid point, seed)
// through the generic sweep harness and averages per point: the shared
// engine behind the Fig. 10-13 grid declarations. Cells use the harness's
// (point-major, seed s+1) enumeration, so every point reproduces
// OverheadOverTime's direct loop seed for seed.
func timeSeriesSweep(base card.Config, axes []sweep.Axis, seeds int, p timeSimParams) []TimeSeries {
	g := &sweep.Grid{Base: base, Axes: axes, Seeds: seeds}
	cells, err := sweep.RunCells(g, func(cfg sweep.CellConfig, _ []float64, _ int, seed uint64) TimeSeries {
		sp := p
		sp.cfg = cfg.Proto
		return runTimeSim(sp, seed)
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // static grid bug, not data
	}
	out := make([]TimeSeries, g.Points())
	for pt := range out {
		out[pt] = averageSeries(cells[pt*seeds : (pt+1)*seeds])
	}
	return out
}

// intAxis builds a sweep axis from integer values.
func intAxis(name string, vals []int) sweep.Axis {
	a := sweep.Axis{Name: name, Values: make([]float64, len(vals))}
	for i, v := range vals {
		a.Values[i] = float64(v)
	}
	return a
}

// fig10Base is the configuration printed under Fig. 10: R=3, r=10, D=1,
// validation every second.
func fig10Base() card.Config {
	return card.Config{R: 3, MaxContactDist: 10, Depth: 1, Method: card.EM, ValidatePeriod: 1}
}

// RunFig10 regenerates Fig. 10: overhead per node over time for NoC = 3,
// 4, 5, 7 (N=500, R=3, r=10) — a one-axis grid over the sweep harness.
func RunFig10(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	nocs := []int{3, 4, 5, 7}
	series := timeSeriesSweep(fig10Base(), []sweep.Axis{intAxis("NoC", nocs)}, o.Seeds,
		timeSimParams{sc: sc, horizon: 10, window: 2, refreshDt: 0.25})
	t := NewTable(
		fmt.Sprintf("Fig 10: overhead per node vs time by NoC (N=%d, R=3, r=10)", sc.N),
		"t(s)", "NoC=3", "NoC=4", "NoC=5", "NoC=7")
	for k, tm := range series[0].Times {
		t.Add(tm, series[0].Overhead[k], series[1].Overhead[k], series[2].Overhead[k], series[3].Overhead[k])
	}
	return t
}

// fig11Sweep runs the Fig. 11/12 parameter sweep (NoC=5, R=3, r varies)
// as a grid declaration and returns one TimeSeries per r.
func fig11Sweep(o Options, sc Scenario) ([]int, []TimeSeries) {
	rs := []int{8, 9, 10, 12, 15}
	base := fig10Base()
	base.NoC = 5
	series := timeSeriesSweep(base, []sweep.Axis{intAxis("r", rs)}, o.Seeds,
		timeSimParams{sc: sc, horizon: 10, window: 2, refreshDt: 0.25})
	return rs, series
}

// RunFig11 regenerates Fig. 11: total overhead per node over time for
// r = 8, 9, 10, 12, 15 (NoC=5, R=3).
func RunFig11(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	rs, series := fig11Sweep(o, sc)
	cols := []string{"t(s)"}
	for _, r := range rs {
		cols = append(cols, fmt.Sprintf("r=%d", r))
	}
	t := NewTable(
		fmt.Sprintf("Fig 11: total overhead per node vs time by r (N=%d, NoC=5, R=3)", sc.N),
		cols...)
	for k, tm := range series[0].Times {
		cells := []any{tm}
		for i := range rs {
			cells = append(cells, series[i].Overhead[k])
		}
		t.Add(cells...)
	}
	return t
}

// RunFig12 regenerates Fig. 12: backtracking overhead per node over time
// for the same sweep as Fig. 11.
func RunFig12(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	rs, series := fig11Sweep(o, sc)
	cols := []string{"t(s)"}
	for _, r := range rs {
		cols = append(cols, fmt.Sprintf("r=%d", r))
	}
	t := NewTable(
		fmt.Sprintf("Fig 12: backtracking per node vs time by r (N=%d, NoC=5, R=3)", sc.N),
		cols...)
	for k, tm := range series[0].Times {
		cells := []any{tm}
		for i := range rs {
			cells = append(cells, series[i].Backtrack[k])
		}
		t.Add(cells...)
	}
	return t
}

// RunFig13 regenerates Fig. 13: maintenance overhead per node and total
// selected contacts over a 20 s run (N=250, NoC=6, R=4, r=16) — the
// degenerate single-point grid.
func RunFig13(o Options) *Table {
	o.fill()
	sc := Table1Scenarios[1].Scaled(o.Scale) // 250 nodes, 710x710
	cfg := card.Config{R: 4, MaxContactDist: 16, NoC: 6, Depth: 1, Method: card.EM, ValidatePeriod: 1}
	ts := timeSeriesSweep(cfg, nil, o.Seeds,
		timeSimParams{sc: sc, horizon: 20, window: 2, refreshDt: 0.25})[0]
	t := NewTable(
		fmt.Sprintf("Fig 13: maintenance overhead and contact count over time (N=%d, NoC=6, R=4, r=16)", sc.N),
		"t(s)", "maintenance msgs/node", "total contacts")
	for k, tm := range ts.Times {
		t.Add(tm, ts.Maintenance[k], ts.Contacts[k])
	}
	return t
}

// fig14Cell measures one Fig. 14 cell: reachability bought and overhead
// paid after 10 s of maintained mobility. NoC 0 is the paper's
// no-contacts baseline: selection never runs, so overhead is zero and
// reachability is the bare neighborhood's.
func fig14Cell(sc Scenario, cfg card.Config, seed uint64) (sweep.Metrics, error) {
	skipSelect := cfg.NoC == 0
	if skipSelect {
		cfg.NoC = 1 // Validate rejects 0; the table stays empty regardless
	}
	net, err := sc.MobileNet(seed, mobility.DefaultRWP())
	if err != nil {
		return sweep.Metrics{}, err
	}
	prot, err := NewCARD(net, cfg, seed)
	if err != nil {
		return sweep.Metrics{}, err
	}
	if !skipSelect {
		prot.SelectAll(0)
		for t := 0.25; t <= 10+1e-9; t += 0.25 {
			net.RefreshAt(t)
			if isMultiple(t, cfg.ValidatePeriod) {
				prot.MaintainAll(t)
			}
		}
	}
	return sweep.Metrics{
		Reach:    prot.MeanReachability(cfg.Depth),
		Overhead: float64(net.Totals().Sum(overheadCats...)) / float64(net.N()),
	}, nil
}

// RunFig14 regenerates Fig. 14: the normalized reachability-vs-overhead
// trade-off as NoC grows 0..10 (R=3, r=10, 10 s mobile horizon) — a
// one-axis grid over the sweep harness's scalar pipeline.
func RunFig14(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	nocs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	g := &sweep.Grid{Base: fig10Base(), Axes: []sweep.Axis{intAxis("NoC", nocs)}, Seeds: o.Seeds}
	res, err := g.Run(func(cfg sweep.CellConfig, _ []float64, _ int, seed uint64) (sweep.Metrics, error) {
		return fig14Cell(sc, cfg.Proto, seed)
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: fig14: %v", err))
	}
	maxReach, maxOver := 0.0, 0.0
	for _, p := range res.Points {
		if p.Metrics.Reach > maxReach {
			maxReach = p.Metrics.Reach
		}
		if p.Metrics.Overhead > maxOver {
			maxOver = p.Metrics.Overhead
		}
	}
	t := NewTable(
		fmt.Sprintf("Fig 14: normalized reachability vs overhead trade-off (N=%d, R=3, r=10)", sc.N),
		"NoC", "reach%", "overhead/node", "norm reach", "norm overhead")
	for i, noc := range nocs {
		p := res.Points[i].Metrics
		nr, no := 0.0, 0.0
		if maxReach > 0 {
			nr = p.Reach / maxReach
		}
		if maxOver > 0 {
			no = p.Overhead / maxOver
		}
		t.Add(noc, p.Reach, p.Overhead, nr, no)
	}
	return t
}

func isMultiple(t, period float64) bool {
	if period <= 0 {
		return false
	}
	k := t / period
	return absf(k-float64(int(k+0.5))) < 1e-6
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
