package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper table/figure (or ablation) as a Table.
type Runner func(Options) *Table

// registry maps experiment ids to their runners. Ids match DESIGN.md's
// per-experiment index.
var registry = map[string]Runner{
	"table1":       RunTable1,
	"fig3":         RunFig3,
	"fig4":         RunFig4,
	"fig5":         RunFig5,
	"fig6":         RunFig6,
	"fig7":         RunFig7,
	"fig8":         RunFig8,
	"fig9":         RunFig9,
	"fig10":        RunFig10,
	"fig11":        RunFig11,
	"fig12":        RunFig12,
	"fig13":        RunFig13,
	"fig14":        RunFig14,
	"fig15":        RunFig15,
	"abl-methods":  RunAblationMethods,
	"abl-recovery": RunAblationRecovery,
	"abl-qd":       RunAblationQD,
	"abl-mobility": RunAblationMobility,
	"replication":  RunReplication,
	"smallworld":   RunSmallWorld,
	"scale":        RunScale,
	"sustained":    RunSustained,
	"sweep":        RunSweep,
}

// Names returns the sorted experiment ids.
func Names() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the runner for an experiment id.
func Lookup(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r, nil
}

// PaperOrder lists the paper experiments in presentation order, for
// "run everything" sweeps.
var PaperOrder = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
}

// AblationOrder lists the extra design-choice and future-work experiments.
var AblationOrder = []string{
	"abl-methods", "abl-recovery", "abl-qd", "abl-mobility",
	"replication", "smallworld", "sustained", "sweep", "scale",
}
