package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells, printable
// as aligned text, CSV, or markdown.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are formatted with %v, floats with %.2f.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("## " + t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("### " + t.Title + "\n\n")
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
