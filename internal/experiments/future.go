package experiments

import (
	"fmt"

	"card/internal/card"
	"card/internal/engine"
	"card/internal/manet"
	"card/internal/resource"
	"card/internal/xrand"
)

// RunAblationMobility implements the paper's footnote 1 / §V future work:
// "different mobility models may have different effects on performance of
// CARD". It runs the same 10 s maintenance workload under every movement
// structure the scenario engine offers — Static, RWP, bounded RandomWalk,
// Gauss–Markov drift, reference-point group mobility — plus RWP with node
// churn, and compares contact survival and overhead. Rows run through the
// engine itself (scheduled maintenance every ValidatePeriod, churn expiry
// between rounds), so the ablation measures exactly what preset runs do.
func RunAblationMobility(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	models := []struct {
		name string
		mut  func(*engine.NetworkConfig)
	}{
		{"static", func(nc *engine.NetworkConfig) { nc.Mobility = engine.Static }},
		{"waypoint", func(nc *engine.NetworkConfig) { nc.Mobility = engine.RandomWaypoint }},
		{"walk", func(nc *engine.NetworkConfig) {
			nc.Mobility = engine.RandomWalk
			nc.WalkSpeed, nc.WalkEpoch = 10, 2
		}},
		{"gauss-markov", func(nc *engine.NetworkConfig) { nc.Mobility = engine.GaussMarkov }},
		{"group", func(nc *engine.NetworkConfig) {
			nc.Mobility = engine.GroupMobility
			nc.Groups = sc.N / 25
			nc.GroupRadius = 3 * sc.TxRange
			nc.MinSpeed, nc.MaxSpeed, nc.Pause = 1, 5, 5
		}},
		{"waypoint+churn", func(nc *engine.NetworkConfig) {
			nc.Mobility = engine.RandomWaypoint
			nc.ChurnMeanUp, nc.ChurnMeanDown = 8, 3
		}},
	}
	type row struct{ lost, expired, splices, overhead, contacts float64 }
	cells := make([]row, len(models)*o.Seeds)
	Parallel(len(cells), func(i int) {
		model := models[i/o.Seeds]
		seed := uint64(i%o.Seeds) + 1
		nc := engine.NetworkConfig{
			Nodes: sc.N, Width: sc.Area.W, Height: sc.Area.H, TxRange: sc.TxRange,
			Seed: seed ^ uint64(sc.ID)<<32,
		}
		model.mut(&nc)
		cfg := card.Config{R: 3, MaxContactDist: 12, NoC: 5, Depth: 1, Method: card.EM, ValidatePeriod: 1}
		e, err := engine.New(nc, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: abl-mobility %s: %v", model.name, err))
		}
		e.SelectContacts()
		for t := 0.25; t <= 10+1e-9; t += 0.25 {
			e.Advance(0.25)
		}
		n := float64(e.Nodes())
		st := e.Stats()
		cells[i] = row{
			lost:     float64(st.ContactsLost) / n,
			expired:  float64(st.ContactsExpired) / n,
			splices:  float64(st.Recoveries) / n,
			overhead: float64(e.Network().Totals().Sum(overheadCats...)) / n,
			contacts: float64(e.Protocol().TotalContacts()) / n,
		}
	})
	rows := make([]row, len(models))
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		s := float64(o.Seeds)
		r.lost += c.lost / s
		r.expired += c.expired / s
		r.splices += c.splices / s
		r.overhead += c.overhead / s
		r.contacts += c.contacts / s
	}
	t := NewTable(
		fmt.Sprintf("Ablation: mobility model over 10 s (N=%d, R=3, r=12, NoC=5)", sc.N),
		"Mobility", "Lost/node", "Expired/node", "Splices/node", "Overhead/node", "Final contacts/node")
	for i, m := range models {
		r := rows[i]
		t.Add(m.name, r.lost, r.expired, r.splices, r.overhead, r.contacts)
	}
	return t
}

// RunReplication implements the paper's §V "resource distributions"
// future work: how replication changes discovery cost and success for
// CARD vs flooding vs expanding-ring anycast.
func RunReplication(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	replicas := []int{1, 2, 4, 8, 16}
	type row struct{ cardMsgs, cardHit, floodMsgs, ringMsgs float64 }
	cells := make([]row, len(replicas)*o.Seeds)
	Parallel(len(cells), func(i int) {
		k := replicas[i/o.Seeds]
		seed := uint64(i%o.Seeds) + 1
		net := sc.StaticNet(seed)
		cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2, Method: card.EM}
		prot, err := NewCARD(net, cfg, seed)
		if err != nil {
			panic(err)
		}
		prot.SelectAll(0)
		netFlood := sc.StaticNet(seed)
		netRing := sc.StaticNet(seed)

		rng := xrand.New(seed).Derive(55)
		const lookups = 40
		var r row
		for q := 0; q < lookups; q++ {
			dir := resource.NewDirectory(sc.N)
			dir.PlaceReplicas(resource.ID(q), k, rng.Derive(uint64(q)))
			src := manet.NodeID(rng.Intn(sc.N))
			rc := resource.DiscoverCARD(prot, dir, src, resource.ID(q))
			r.cardMsgs += float64(rc.Messages) / lookups
			if rc.Found {
				r.cardHit += 100.0 / lookups
			}
			rf := resource.DiscoverFlood(netFlood, dir, src, resource.ID(q))
			r.floodMsgs += float64(rf.Messages) / lookups
			rr := resource.DiscoverExpandingRing(netRing, dir, src, resource.ID(q))
			r.ringMsgs += float64(rr.Messages) / lookups
		}
		cells[i] = r
	})
	rows := make([]row, len(replicas))
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		s := float64(o.Seeds)
		r.cardMsgs += c.cardMsgs / s
		r.cardHit += c.cardHit / s
		r.floodMsgs += c.floodMsgs / s
		r.ringMsgs += c.ringMsgs / s
	}
	t := NewTable(
		fmt.Sprintf("Extension: resource replication (N=%d, R=3, r=16, NoC=5, D=2)", sc.N),
		"Replicas", "CARD msgs/lookup", "CARD success%", "Flood msgs/lookup", "Ring msgs/lookup")
	for i, k := range replicas {
		r := rows[i]
		t.Add(k, r.cardMsgs, r.cardHit, r.floodMsgs, r.ringMsgs)
	}
	return t
}
