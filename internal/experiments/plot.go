package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Plot renders the table as horizontal ASCII bar charts, one section per
// numeric column — the terminal rendition of the paper's histogram
// figures. Non-numeric columns are skipped; the first column labels the
// rows (reachability bins, times, NoC values).
func (t *Table) Plot() string {
	const barWidth = 50
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("## " + t.Title + "\n")
	}
	labelW := len(t.Columns[0])
	for _, row := range t.Rows {
		if len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	for col := 1; col < len(t.Columns); col++ {
		vals := make([]float64, 0, len(t.Rows))
		max := 0.0
		numeric := true
		for _, row := range t.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				numeric = false
				break
			}
			vals = append(vals, v)
			if v > max {
				max = v
			}
		}
		if !numeric {
			continue
		}
		fmt.Fprintf(&sb, "\n-- %s --\n", t.Columns[col])
		for i, row := range t.Rows {
			bar := 0
			if max > 0 {
				bar = int(vals[i] / max * barWidth)
			}
			if vals[i] > 0 && bar == 0 {
				bar = 1 // visible trace for small non-zero values
			}
			fmt.Fprintf(&sb, "%-*s |%s %s\n", labelW, row[0], strings.Repeat("#", bar), row[col])
		}
	}
	return sb.String()
}
