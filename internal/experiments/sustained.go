package experiments

import (
	"fmt"

	"card/internal/card"
	"card/internal/engine"
	"card/internal/scheme"
	"card/internal/workload"
)

// RunSustained compares every registered discovery scheme — CARD, the
// flooding and expanding-ring baselines, ZRP bordercasting and Rendezvous
// Regions — under sustained open-loop query traffic with node churn: a
// Poisson request stream with Zipf-skewed resource popularity keeps
// arriving while nodes move, power off and rejoin. Every scheme row is
// offered the bit-identical request sequence (same seeds drive the same
// arrival/popularity/placement streams), so the per-query message
// quantiles — not just means — are directly comparable. This is the
// serving-scale extension of Fig. 15's one-shot comparison, and it relies
// on the baseline fairness fixes: self-held resources answer locally at
// zero cost under every scheme, and dead searches charge an explicit
// full-component flood.
func RunSustained(o Options) *Table {
	o.fill()
	sc := Scenario5.Scaled(o.Scale)
	schemes := scheme.Names()
	type row struct {
		success, offline                float64
		msgMean, msgP50, msgP95, msgP99 float64
		hopP50, hopP95                  float64
	}
	cells := make([]row, len(schemes)*o.Seeds)
	Parallel(len(cells), func(i int) {
		arm := schemes[i/o.Seeds]
		seed := uint64(i%o.Seeds) + 1
		nc := engine.NetworkConfig{
			Nodes: sc.N, Width: sc.Area.W, Height: sc.Area.H, TxRange: sc.TxRange,
			Mobility: engine.RandomWaypoint, MinSpeed: 1, MaxSpeed: 10,
			ChurnMeanUp: 40, ChurnMeanDown: 8,
			Seed: seed ^ uint64(sc.ID)<<32,
		}
		cfg := card.Config{R: 3, MaxContactDist: 16, NoC: 5, Depth: 2, Method: card.EM, ValidatePeriod: 2}
		e, err := engine.New(nc, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: sustained %v: %v", arm, err))
		}
		e.SelectContacts()
		rep, err := e.RunWorkload(workload.Config{
			QPS: 40, Duration: 15, Resources: 64, Replicas: 2, ZipfS: 0.9,
			Scheme: arm, Seed: seed,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: sustained %v: %v", arm, err))
		}
		cells[i] = row{
			success: rep.SuccessPct,
			offline: 100 * float64(rep.SrcDown) / float64(max1(rep.Queries)),
			msgMean: rep.Messages.Mean,
			msgP50:  rep.Messages.P50,
			msgP95:  rep.Messages.P95,
			msgP99:  rep.Messages.P99,
			hopP50:  rep.Hops.P50,
			hopP95:  rep.Hops.P95,
		}
	})
	rows := make([]row, len(schemes))
	for i, c := range cells {
		r := &rows[i/o.Seeds]
		s := float64(o.Seeds)
		r.success += c.success / s
		r.offline += c.offline / s
		r.msgMean += c.msgMean / s
		r.msgP50 += c.msgP50 / s
		r.msgP95 += c.msgP95 / s
		r.msgP99 += c.msgP99 / s
		r.hopP50 += c.hopP50 / s
		r.hopP95 += c.hopP95 / s
	}
	t := NewTable(
		fmt.Sprintf("Extension: sustained query traffic under churn (N=%d, 40 qps x 15 s, Zipf 0.9, 2 replicas)", sc.N),
		"Scheme", "Success %", "Offline src %", "Msgs mean", "Msgs P50", "Msgs P95", "Msgs P99", "Hops P50", "Hops P95")
	for i, s := range schemes {
		r := rows[i]
		t.Add(s, r.success, r.offline, r.msgMean, r.msgP50, r.msgP95, r.msgP99, r.hopP50, r.hopP95)
	}
	return t
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
