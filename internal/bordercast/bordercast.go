// Package bordercast implements the Zone Routing Protocol's bordercasting
// query mechanism with query detection, the paper's second baseline
// (§II, §IV.D; Haas & Pearlman [8][9]).
//
// Every node proactively knows its zone (radius ρ hops — the same substrate
// CARD uses for its neighborhood). A query for a target outside the
// source's zone is bordercast: relayed along a tree to the zone's
// peripheral nodes (distance exactly ρ), each of which checks its own zone
// and re-bordercasts on failure. Query detection curbs the flood-like
// growth:
//
//	QD1 — nodes that relay the query remember it and suppress later
//	      deliveries into regions they cover;
//	QD2 — single-channel overhearing: every neighbor of a transmitting
//	      node also detects the query.
package bordercast

import (
	"fmt"

	"card/internal/bitset"
	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/topology"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// QDMode selects the query-detection level.
type QDMode int

const (
	// QDNone disables query detection (pure recursive bordercast).
	QDNone QDMode = iota
	// QD1 marks relaying nodes as covered.
	QD1
	// QD2 marks relaying nodes and every neighbor of a transmitter.
	QD2
)

func (m QDMode) String() string {
	switch m {
	case QDNone:
		return "none"
	case QD1:
		return "QD1"
	case QD2:
		return "QD2"
	default:
		return fmt.Sprintf("QDMode(%d)", int(m))
	}
}

// Config parameterizes the protocol.
type Config struct {
	// Zone is the zone radius ρ in hops (>= 1).
	Zone int
	// QD is the query-detection mode (default QD2, matching the paper's
	// "bordercasting was implemented with query detection (QD1 and QD2)").
	QD QDMode
	// DisableReplyCounting excludes success-reply hops from the message
	// count (included by default, mirroring card.Config).
	DisableReplyCounting bool
}

// Protocol runs bordercast queries over a network.
type Protocol struct {
	cfg Config
	net *manet.Network
	nb  neighborhood.Provider
}

// New creates a bordercasting instance. The provider's radius must equal
// cfg.Zone.
func New(net *manet.Network, nb neighborhood.Provider, cfg Config) (*Protocol, error) {
	if cfg.Zone < 1 {
		return nil, fmt.Errorf("bordercast: zone radius %d < 1", cfg.Zone)
	}
	if cfg.QD < QDNone || cfg.QD > QD2 {
		return nil, fmt.Errorf("bordercast: unknown QD mode %d", int(cfg.QD))
	}
	if nb.R() != cfg.Zone {
		return nil, fmt.Errorf("bordercast: provider radius %d != zone %d", nb.R(), cfg.Zone)
	}
	return &Protocol{cfg: cfg, net: net, nb: nb}, nil
}

// Result reports one bordercast query.
type Result struct {
	// Found reports whether some queried zone contained the target.
	Found bool
	// Messages is the control traffic generated (relay hops + replies).
	Messages int64
	// PathHops is the length of the discovered route source→target along
	// the bordercast tree, or -1.
	PathHops int
	// Rounds is the number of bordercast waves issued.
	Rounds int
}

// Query searches for target from src, accounting on the network's active
// recorder.
func (p *Protocol) Query(src, target NodeID) Result {
	return p.QueryR(p.net.Recorder(), src, target)
}

// QueryR is Query accounting on an explicit recorder. The Protocol holds
// no per-query state (covered sets and tree distances are allocated per
// call), so concurrent QueryR calls with private recorders are race-free
// between snapshot refreshes — the scheme layer's per-worker sharding
// relies on exactly this.
func (p *Protocol) QueryR(rec manet.Recorder, src, target NodeID) Result {
	var msgs int64
	res := p.query(rec, &msgs, src, target)
	res.Messages = msgs
	return res
}

func (p *Protocol) query(rec manet.Recorder, msgs *int64, src, target NodeID) Result {
	if p.nb.Contains(src, target) {
		// Intra-zone: the proactive table already has the route.
		return Result{Found: true, PathHops: p.nb.Dist(src, target)}
	}
	n := p.net.N()
	covered := bitset.New(n)
	covered.Add(int(src))
	// dist accumulates hops from the source along the bordercast tree.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0

	frontier := []NodeID{src}
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		var next []NodeID
		// Query-detection marks accumulate during the round and apply at
		// its boundary: a bordercast wave is concurrent, so transmissions
		// within it cannot suppress sibling deliveries of the same wave —
		// only the next wave sees the detection state.
		var marks []NodeID
		for _, v := range frontier {
			next = p.bordercast(rec, msgs, v, target, covered, dist, &marks, next)
			if found := dist[target]; found >= 0 {
				// Found during v's bordercast: reply unicasts back.
				if !p.cfg.DisableReplyCounting {
					rec.Record(manet.CatReply, int64(found))
					*msgs += int64(found)
				}
				return Result{Found: true, PathHops: int(found), Rounds: rounds}
			}
		}
		for _, w := range marks {
			covered.Add(int(w))
		}
		frontier = next
	}
	return Result{Found: false, PathHops: -1, Rounds: rounds}
}

// bordercast relays v's query to its uncovered peripheral nodes along the
// shortest-path tree within v's zone, applying query detection. Every
// node that receives the frame — the addressed relay and, under QD2, every
// overhearing neighbor of the transmitter — processes the query: it checks
// its own zone table for the target, exactly like a ZRP node handling an
// interzone packet. That is why query detection does not cost success:
// detected nodes have already searched their zones. It appends peripheral
// nodes that should re-bordercast to next and returns it; when some
// processing node's zone contains the target, dist[target] is set and the
// cast stops early.
func (p *Protocol) bordercast(rec manet.Recorder, msgs *int64, v, target NodeID, covered *bitset.Set, dist []int32, marks *[]NodeID, next []NodeID) []NodeID {
	// process zone-checks the query at node w, reached hops transmissions
	// from the source. Reports whether the target was located.
	process := func(w NodeID, hops int32) bool {
		if !p.nb.Contains(w, target) {
			return false
		}
		d := hops + int32(p.nb.Dist(w, target))
		if dist[target] < 0 || d < dist[target] {
			dist[target] = d
		}
		return true
	}
	// The query sits at v; v's own zone table is consulted first.
	if process(v, dist[v]) {
		return next
	}
	// sentEdge dedups tree edges: one transmission per (from,to) pair even
	// when several peripheral routes share a prefix.
	sentEdge := make(map[[2]NodeID]struct{})
	for _, b := range p.nb.EdgeNodes(v) {
		if covered.Contains(int(b)) {
			continue // QD: this region already saw the query
		}
		route := p.nb.Route(v, b)
		if route == nil {
			continue
		}
		for i := 0; i+1 < len(route); i++ {
			e := [2]NodeID{route[i], route[i+1]}
			if _, dup := sentEdge[e]; dup {
				continue
			}
			sentEdge[e] = struct{}{}
			rec.Record(manet.CatQuery, 1)
			*msgs++
			from, to := route[i], route[i+1]
			at := dist[v] + int32(i+1)
			if p.cfg.QD != QDNone {
				*marks = append(*marks, from, to)
			}
			if process(to, at) {
				return next
			}
			if p.cfg.QD == QD2 {
				// Single channel: every neighbor of the transmitter hears
				// the frame, detects the query, and checks its own zone.
				for _, w := range p.net.Neighbors(from) {
					*marks = append(*marks, w)
					if process(w, at) {
						return next
					}
				}
			}
		}
		if dist[b] < 0 || dist[v]+int32(len(route)-1) < dist[b] {
			dist[b] = dist[v] + int32(len(route)-1)
		}
		// Delivered border nodes are covered immediately: they hold the
		// query now, so delivering it again from a sibling cast is waste
		// the sender-side tree pruning avoids.
		covered.Add(int(b))
		next = append(next, b)
	}
	return next
}
