package bordercast

import (
	"testing"

	"card/internal/flood"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

var area = geom.Rect{W: 710, H: 710}

func lineNet(n int) *manet.Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	a := geom.Rect{W: float64(n) * 10, H: 10}
	return manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
}

func randomNet(seed uint64, n int) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, area, rng)
	return manet.New(mobility.NewStatic(pts, area), 50, xrand.New(seed))
}

func newBC(t *testing.T, net *manet.Network, zone int, qd QDMode) *Protocol {
	t.Helper()
	nb := neighborhood.NewOracle(net, zone)
	p, err := New(net, nb, Config{Zone: zone, QD: qd})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	net := lineNet(5)
	nb := neighborhood.NewOracle(net, 2)
	if _, err := New(net, nb, Config{Zone: 0}); err == nil {
		t.Error("zone 0 accepted")
	}
	if _, err := New(net, nb, Config{Zone: 3}); err == nil {
		t.Error("zone/provider mismatch accepted")
	}
	if _, err := New(net, nb, Config{Zone: 2, QD: QDMode(9)}); err == nil {
		t.Error("bad QD mode accepted")
	}
}

func TestQDModeString(t *testing.T) {
	if QDNone.String() != "none" || QD1.String() != "QD1" || QD2.String() != "QD2" {
		t.Error("QD mode names wrong")
	}
}

func TestIntraZoneQueryIsFree(t *testing.T) {
	net := lineNet(20)
	bc := newBC(t, net, 3, QD2)
	res := bc.Query(5, 7)
	if !res.Found || res.PathHops != 2 || res.Messages != 0 {
		t.Errorf("intra-zone query = %+v", res)
	}
}

func TestBordercastFindsFarTargetOnLine(t *testing.T) {
	net := lineNet(40)
	bc := newBC(t, net, 3, QD2)
	res := bc.Query(0, 30)
	if !res.Found {
		t.Fatalf("bordercast missed target: %+v", res)
	}
	if res.PathHops < 30 {
		t.Errorf("PathHops = %d, cannot beat the 30-hop shortest path", res.PathHops)
	}
	if res.Rounds < 2 {
		t.Errorf("a 30-hop target needs multiple bordercast waves, got %d", res.Rounds)
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestBordercastSuccessRateOnRandomNets(t *testing.T) {
	// The paper reports bordercasting at 100% query success. Verify over
	// the largest component of several random networks.
	for _, qd := range []QDMode{QDNone, QD1, QD2} {
		total, found := 0, 0
		for seed := uint64(1); seed <= 3; seed++ {
			net := randomNet(seed, 300)
			bc := newBC(t, net, 2, qd)
			comp := net.Graph().LargestComponent()
			rng := xrand.New(seed * 7)
			for q := 0; q < 30; q++ {
				src := comp[rng.Intn(len(comp))]
				dst := comp[rng.Intn(len(comp))]
				total++
				if bc.Query(src, dst).Found {
					found++
				}
			}
		}
		rate := float64(found) / float64(total)
		if rate < 0.99 {
			t.Errorf("%v: success rate %.2f below 0.99", qd, rate)
		}
	}
}

func TestQueryDetectionReducesTraffic(t *testing.T) {
	// QD1 <= none, QD2 <= QD1 in aggregate (the whole point of QD).
	traffic := map[QDMode]int64{}
	for _, qd := range []QDMode{QDNone, QD1, QD2} {
		var sum int64
		for seed := uint64(1); seed <= 3; seed++ {
			net := randomNet(seed, 300)
			bc := newBC(t, net, 2, qd)
			comp := net.Graph().LargestComponent()
			rng := xrand.New(seed * 13)
			for q := 0; q < 20; q++ {
				src := comp[rng.Intn(len(comp))]
				dst := comp[rng.Intn(len(comp))]
				sum += bc.Query(src, dst).Messages
			}
		}
		traffic[qd] = sum
	}
	if traffic[QD1] > traffic[QDNone] {
		t.Errorf("QD1 (%d) costlier than no QD (%d)", traffic[QD1], traffic[QDNone])
	}
	if traffic[QD2] > traffic[QD1] {
		t.Errorf("QD2 (%d) costlier than QD1 (%d)", traffic[QD2], traffic[QD1])
	}
}

func TestBordercastCheaperThanFlooding(t *testing.T) {
	// Fig. 15's middle bar: bordercasting sits between flooding and CARD.
	var bcSum, flSum int64
	for seed := uint64(1); seed <= 3; seed++ {
		netA := randomNet(seed, 400)
		bc := newBC(t, netA, 3, QD2)
		netB := randomNet(seed, 400)
		comp := netA.Graph().LargestComponent()
		rng := xrand.New(seed * 17)
		for q := 0; q < 15; q++ {
			src := comp[rng.Intn(len(comp))]
			dst := comp[rng.Intn(len(comp))]
			bcSum += bc.Query(src, dst).Messages
			flSum += flood.Query(netB, src, dst, true).Messages
		}
	}
	if bcSum >= flSum {
		t.Errorf("bordercast traffic (%d) not below flooding (%d)", bcSum, flSum)
	}
}

func TestUnreachableTargetTerminates(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0},
		{X: 500, Y: 0}, {X: 510, Y: 0},
	}
	a := geom.Rect{W: 600, H: 10}
	net := manet.New(mobility.NewStatic(pts, a), 15, xrand.New(1))
	bc := newBC(t, net, 1, QD1)
	res := bc.Query(0, 4)
	if res.Found {
		t.Fatal("found target in another component")
	}
	if res.PathHops != -1 {
		t.Errorf("PathHops = %d, want -1", res.PathHops)
	}
}

func TestRepliesCounted(t *testing.T) {
	net := lineNet(30)
	bc := newBC(t, net, 3, QD1)
	withReply := bc.Query(0, 20).Messages

	net2 := lineNet(30)
	nb2 := neighborhood.NewOracle(net2, 3)
	bc2, err := New(net2, nb2, Config{Zone: 3, QD: QD1, DisableReplyCounting: true})
	if err != nil {
		t.Fatal(err)
	}
	withoutReply := bc2.Query(0, 20).Messages
	if withoutReply >= withReply {
		t.Errorf("reply counting off (%d) not cheaper than on (%d)", withoutReply, withReply)
	}
}

func TestSelfQuery(t *testing.T) {
	net := lineNet(5)
	bc := newBC(t, net, 2, QD2)
	res := bc.Query(3, 3)
	if !res.Found || res.PathHops != 0 || res.Messages != 0 {
		t.Errorf("self query = %+v", res)
	}
}
