package card

import (
	"testing"

	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/xrand"
)

func TestReachabilityNoContacts(t *testing.T) {
	net := lineNet(20)
	cfg := Config{R: 3, MaxContactDist: 10, NoC: 2, Method: EM}
	p := newProtocol(t, net, cfg, 70)
	// Node 10's 3-hop neighborhood on a 20-node line: 7 nodes -> 35 %.
	got := p.Reachability(10, 1)
	if got != 35 {
		t.Errorf("Reachability = %v, want 35", got)
	}
}

func TestReachabilityGrowsWithContacts(t *testing.T) {
	net := staticNet(80, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 6, Method: EM}
	p := newProtocol(t, net, cfg, 71)
	before := p.MeanReachability(1)
	p.SelectAll(0)
	after := p.MeanReachability(1)
	if after <= before {
		t.Errorf("reachability did not grow: %.1f -> %.1f", before, after)
	}
}

func TestReachabilityMonotoneInDepth(t *testing.T) {
	net := staticNet(81, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 12, NoC: 5, Method: EM}
	p := newProtocol(t, net, cfg, 72)
	p.SelectAll(0)
	for u := NodeID(0); u < 30; u++ {
		prev := -1.0
		for d := 1; d <= 3; d++ {
			v := p.Reachability(u, d)
			if v < prev {
				t.Fatalf("node %d: reachability decreased with depth: %v -> %v", u, prev, v)
			}
			prev = v
		}
	}
}

func TestReachableSetContainsNeighborhoods(t *testing.T) {
	net := staticNet(82, 250, 50)
	cfg := Config{R: 3, MaxContactDist: 14, NoC: 4, Method: EM}
	p := newProtocol(t, net, cfg, 73)
	p.SelectAll(0)
	nb := p.Neighborhood()
	for u := NodeID(0); u < 20; u++ {
		set := p.ReachableSet(u, 1)
		for _, w := range nb.Members(u) {
			if !set.Contains(int(w)) {
				t.Fatalf("node %d: own neighborhood not in reachable set", u)
			}
		}
		for _, c := range p.Table(u).Contacts() {
			for _, w := range nb.Members(c.ID) {
				if !set.Contains(int(w)) {
					t.Fatalf("node %d: contact %d neighborhood not in reachable set", u, c.ID)
				}
			}
		}
	}
}

func TestReachabilityBounds(t *testing.T) {
	net := staticNet(83, 200, 50)
	cfg := Config{R: 3, MaxContactDist: 14, NoC: 10, Method: EM}
	p := newProtocol(t, net, cfg, 74)
	p.SelectAll(0)
	for u := NodeID(0); int(u) < net.N(); u++ {
		v := p.Reachability(u, 3)
		if v < 0 || v > 100 {
			t.Fatalf("reachability %v out of [0,100]", v)
		}
	}
	m := p.MeanReachability(1)
	if m <= 0 || m > 100 {
		t.Fatalf("mean reachability %v out of (0,100]", m)
	}
}

func TestReachabilityCountsSelf(t *testing.T) {
	// An isolated node reaches exactly itself: 1/N.
	net := customNet(t, [][2]float64{{0, 0}, {500, 500}})
	cfg := Config{R: 2, MaxContactDist: 6, NoC: 1, Method: EM}
	p := newProtocol(t, net, cfg, 75)
	if got := p.Reachability(0, 1); got != 50 {
		t.Errorf("isolated node reachability = %v, want 50 (self of N=2)", got)
	}
}

// churnedClique builds an n-node clique (every pair adjacent) with an
// exponential up/down churn schedule, advanced until some — but not all —
// nodes are down, applying the engine's serial expiry step per refresh.
func churnedClique(t *testing.T, n int) (*manet.Network, *Protocol) {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		// All nodes within 15 m of each other: a clique at the 15 m range.
		pts[i] = geom.Point{X: float64(i % 4), Y: float64(i / 4)}
	}
	area := geom.Rect{W: 100, H: 100}
	churn, err := manet.NewChurn(n, manet.ChurnConfig{MeanUp: 4, MeanDown: 4}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	net := manet.NewWithChurn(mobility.NewStatic(pts, area), 15, xrand.New(8),
		manet.IncrementalTopology, churn)
	cfg := Config{R: 1, MaxContactDist: 3, NoC: 2, Method: EM}
	p := newProtocol(t, net, cfg, 76)
	for tick := 1; tick <= 400; tick++ {
		net.RefreshAt(float64(tick) * 0.5)
		// Mirror the engine's refresh consequences: departures expire state.
		p.ExpireNodes(net.ChurnedDown())
		for _, v := range net.ChurnedUp() {
			p.ResetNode(v)
		}
		if up := net.UpCount(); up > 0 && up < n {
			return net, p
		}
	}
	t.Fatal("churn schedule never produced a partially-down snapshot")
	return nil, nil
}

// TestReachabilityChurnUpNodesOnly is the regression test for the churn
// deflation bug: on a clique every up node can reach the whole live
// population, so reachability must report 100 % no matter how many nodes
// are down. The old N-denominator (and all-nodes mean) reported
// 100·up/N instead, silently conflating churn duty cycle with contact
// quality.
func TestReachabilityChurnUpNodesOnly(t *testing.T) {
	const n = 16
	net, p := churnedClique(t, n)
	up := net.UpCount()
	t.Logf("snapshot: %d/%d nodes up", up, n)
	for u := NodeID(0); int(u) < n; u++ {
		got := p.Reachability(u, 1)
		switch {
		case net.Down(u) && got != 0:
			t.Errorf("down node %d reports reachability %v, want 0", u, got)
		case net.Up(u) && got != 100:
			t.Errorf("up node %d on a clique reports %v%%, want 100 (up=%d)", u, got, up)
		}
	}
	if m := p.MeanReachability(1); m != 100 {
		t.Errorf("MeanReachability = %v, want 100 over the %d up nodes", m, up)
	}
}

func TestEMReachesAtLeastPM(t *testing.T) {
	// Paper Fig. 3: EM achieves higher reachability than PM for equal NoC.
	// Statistical claim — compare means over a few seeds with a tolerance.
	var em, pm float64
	for seed := uint64(0); seed < 3; seed++ {
		for _, m := range []Method{EM, PM2} {
			net := staticNet(300+seed, 300, 50)
			cfg := Config{R: 3, MaxContactDist: 20, NoC: 5, Method: m}
			p := newProtocol(t, net, cfg, 400+seed)
			p.SelectAll(0)
			if m == EM {
				em += p.MeanReachability(1)
			} else {
				pm += p.MeanReachability(1)
			}
		}
	}
	if em < pm*0.95 {
		t.Errorf("EM mean reachability %.1f noticeably below PM %.1f", em/3, pm/3)
	}
}
