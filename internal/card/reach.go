package card

import (
	"card/internal/bitset"
)

// Reachability returns the percentage of live network nodes reachable from
// u with the current contact tables and a depth-D search: the union of u's
// own neighborhood with the neighborhoods of every contact in the first D
// levels of u's contact tree (§III.B, "Reachability").
//
// Under node churn the denominator is the up population, not the nominal
// network size: a down node is not discoverable by any mechanism, so
// counting it as "unreached" would deflate reachability by the churn duty
// cycle rather than measure the contact architecture. A down u reaches
// nothing and reports 0. Without churn this is the original N-denominator
// definition.
func (p *Protocol) Reachability(u NodeID, depth int) float64 {
	return p.reachability(u, depth, p.net.UpCount())
}

// reachability is Reachability with the up-population precomputed, so
// whole-network averages pay the O(N) up-count scan once, not per node.
func (p *Protocol) reachability(u NodeID, depth int, up int) float64 {
	if up == 0 || p.net.Down(u) {
		return 0
	}
	set := p.reachableSet(u, depth)
	return 100 * float64(set.Count()) / float64(up)
}

// ReachableSet returns the set of nodes counted by Reachability. The
// caller owns the returned set.
func (p *Protocol) ReachableSet(u NodeID, depth int) *bitset.Set {
	return p.reachableSet(u, depth)
}

func (p *Protocol) reachableSet(u NodeID, depth int) *bitset.Set {
	n := p.net.N()
	set := bitset.New(n)
	for _, w := range p.nb.Members(u) {
		set.Add(int(w))
	}
	seen := bitset.New(n)
	seen.Add(int(u))
	frontier := []NodeID{u}
	for level := 1; level <= depth && len(frontier) > 0; level++ {
		var next []NodeID
		for _, v := range frontier {
			cs := p.tables[v].Contacts()
			for i := range cs {
				c := &cs[i]
				if seen.Contains(int(c.ID)) {
					continue
				}
				seen.Add(int(c.ID))
				for _, w := range p.nb.Members(c.ID) {
					set.Add(int(w))
				}
				next = append(next, c.ID)
			}
		}
		frontier = next
	}
	return set
}

// MeanReachability returns the average Reachability over the up nodes.
// Down nodes hold no protocol state (their tables were expired on
// departure), so averaging them in would systematically understate what
// the live population can discover; without churn every node is up and
// this is the plain all-nodes mean.
func (p *Protocol) MeanReachability(depth int) float64 {
	n := p.net.N()
	upCount := p.net.UpCount()
	if upCount == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		if p.net.Down(NodeID(i)) {
			continue
		}
		sum += p.reachability(NodeID(i), depth, upCount)
	}
	return sum / float64(upCount)
}
