package card

import (
	"card/internal/bitset"
)

// Reachability returns the percentage of network nodes reachable from u
// with the current contact tables and a depth-D search: the union of u's
// own neighborhood with the neighborhoods of every contact in the first D
// levels of u's contact tree (§III.B, "Reachability").
func (p *Protocol) Reachability(u NodeID, depth int) float64 {
	set := p.reachableSet(u, depth)
	return 100 * float64(set.Count()) / float64(p.net.N())
}

// ReachableSet returns the set of nodes counted by Reachability. The
// caller owns the returned set.
func (p *Protocol) ReachableSet(u NodeID, depth int) *bitset.Set {
	return p.reachableSet(u, depth)
}

func (p *Protocol) reachableSet(u NodeID, depth int) *bitset.Set {
	n := p.net.N()
	set := bitset.New(n)
	set.UnionWith(p.nb.Set(u))
	seen := bitset.New(n)
	seen.Add(int(u))
	frontier := []NodeID{u}
	for level := 1; level <= depth && len(frontier) > 0; level++ {
		var next []NodeID
		for _, v := range frontier {
			for _, c := range p.tables[v].contacts {
				if seen.Contains(int(c.ID)) {
					continue
				}
				seen.Add(int(c.ID))
				set.UnionWith(p.nb.Set(c.ID))
				next = append(next, c.ID)
			}
		}
		frontier = next
	}
	return set
}

// MeanReachability returns the average Reachability over all nodes.
func (p *Protocol) MeanReachability(depth int) float64 {
	n := p.net.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Reachability(NodeID(i), depth)
	}
	return sum / float64(n)
}
