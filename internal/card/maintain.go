package card

import (
	"card/internal/manet"
)

// Maintain runs one contact-maintenance round (§III.C.3) for node u:
//
//  1. each contact is sent a validation message along its stored source
//     route;
//  2. a missing next hop triggers local recovery — the node holding the
//     message looks the missing hop (and then each later path node) up in
//     its own neighborhood table and splices the path;
//  3. contacts whose path cannot be recovered are lost;
//  4. contacts whose validated path length falls outside
//     [method lower bound, r] are dropped;
//  5. a table left below NoC triggers new contact selection.
func (p *Protocol) Maintain(u NodeID, now float64) {
	t := p.tables[u]
	for i := 0; i < len(t.contacts); {
		c := t.contacts[i]
		newPath, ok := p.validatePath(c)
		if !ok {
			p.stats.ContactsLost++
			t.removeAt(i)
			continue
		}
		hops := len(newPath) - 1
		lo := p.cfg.Method.lowerBound(p.cfg.R)
		if hops < lo || hops > p.cfg.MaxContactDist {
			p.stats.ContactsLost++
			p.stats.BoundDrops++
			t.removeAt(i)
			continue
		}
		c.Path = newPath
		c.LastValidated = now
		i++
	}
	if t.Len() < p.cfg.NoC {
		p.SelectContacts(u, now)
	}
}

// MaintainAll runs Maintain for every node, in id order.
func (p *Protocol) MaintainAll(now float64) {
	for i := 0; i < p.net.N(); i++ {
		p.Maintain(NodeID(i), now)
	}
}

// validatePath walks a contact's stored source route over the current
// topology, splicing around missing hops via local recovery. It returns
// the (possibly re-spliced) path, or ok=false when the contact is lost.
//
// Message accounting: every surviving hop of the validation walk counts as
// CatValidate; hops introduced by recovery splices count as CatRecovery.
func (p *Protocol) validatePath(c *Contact) (path []NodeID, ok bool) {
	old := c.Path
	out := make([]NodeID, 1, len(old))
	out[0] = old[0]
	i := 0 // index in old of the node the validation message sits at
	for i+1 < len(old) {
		cur := out[len(out)-1]
		next := old[i+1]
		if p.net.Adjacent(cur, next) {
			p.net.SendHop(manet.CatValidate)
			out = append(out, next)
			i++
			continue
		}
		if p.cfg.DisableLocalRecovery {
			p.stats.RecoveryFailures++
			return nil, false
		}
		// Local recovery: look for the missing hop — and failing that, each
		// subsequent node of the source path — in cur's neighborhood table.
		recovered := false
		for j := i + 1; j < len(old); j++ {
			if !p.nb.Contains(cur, old[j]) {
				continue
			}
			sub := p.nb.Route(cur, old[j])
			if sub == nil {
				continue
			}
			p.net.SendHops(manet.CatRecovery, len(sub)-1)
			out = append(out, sub[1:]...)
			i = j
			p.stats.Recoveries++
			recovered = true
			break
		}
		if !recovered {
			p.stats.RecoveryFailures++
			return nil, false
		}
	}
	return out, true
}
