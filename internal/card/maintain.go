package card

// Maintain runs one contact-maintenance round (§III.C.3) for node u:
//
//  1. each contact is sent a validation message along its stored source
//     route;
//  2. a missing next hop triggers local recovery — the node holding the
//     message looks the missing hop (and then each later path node) up in
//     its own neighborhood table and splices the path;
//  3. contacts whose path cannot be recovered are lost;
//  4. contacts whose validated loop-free path length falls outside
//     [method lower bound, r] are dropped;
//  5. a table left below NoC triggers new contact selection.
//
// Maintain is the serial entry point: it runs on the protocol's own
// [Maintainer] (consuming one RNG round) and flushes statistics and
// message tallies immediately. For concurrent maintenance rounds, create
// one Maintainer per worker instead — see Maintainer.MaintainNode and the
// engine's round fan-out.
func (p *Protocol) Maintain(u NodeID, now float64) {
	p.maint.MaintainNode(u, now, p.NextRound())
	p.maint.Flush()
}

// MaintainAll runs one maintenance round for every node, in id order. All
// nodes share the round's RNG round id: node u draws from the substream
// (u, round), so the engine's sharded rounds are bit-identical to this
// serial loop.
func (p *Protocol) MaintainAll(now float64) {
	round := p.NextRound()
	for i := 0; i < p.net.N(); i++ {
		p.maint.MaintainNode(NodeID(i), now, round)
	}
	p.maint.Flush()
}

// MaintainSet runs one maintenance round over only the listed nodes, in
// the order given (callers pass ascending ids for determinism). It
// consumes exactly one RNG round id, like MaintainAll, so dirty-set
// engines interleave freely with full rounds: a node maintained in both
// regimes sees the same (node, round) substream sequence. Nodes outside
// the set keep their tables untouched and are charged no traffic — the
// dirty-set contract is that their validation would have succeeded
// trivially and their tables are full.
func (p *Protocol) MaintainSet(nodes []NodeID, now float64) {
	round := p.NextRound()
	for _, u := range nodes {
		p.maint.MaintainNode(u, now, round)
	}
	p.maint.Flush()
}
