package card

import (
	"testing"

	"card/internal/manet"
)

func TestQuerySelfAndNeighborhood(t *testing.T) {
	net := lineNet(20)
	cfg := Config{R: 3, MaxContactDist: 10, NoC: 2, Method: EM}
	p := newProtocol(t, net, cfg, 50)

	res := p.Query(5, 5)
	if !res.Found || res.Depth != 0 || res.PathHops != 0 {
		t.Errorf("self query = %+v", res)
	}
	res = p.Query(5, 7) // 2 hops, inside R=3 neighborhood
	if !res.Found || res.Depth != 0 || res.PathHops != 2 || res.Messages != 0 {
		t.Errorf("neighborhood query = %+v", res)
	}
}

func TestQueryThroughContactDepth1(t *testing.T) {
	// Line of 30 nodes, R=2, r=12: node 0's contact sits 5..12 hops out.
	net := lineNet(30)
	cfg := Config{R: 2, MaxContactDist: 12, NoC: 1, Method: EM, Depth: 1}
	p := newProtocol(t, net, cfg, 51)
	p.SelectContacts(0, 0)
	tab := p.Table(0)
	if tab.Len() != 1 {
		t.Fatalf("selected %d contacts, want 1", tab.Len())
	}
	c := tab.Contacts()[0]
	// Pick a target inside the contact's neighborhood but outside ours.
	target := c.ID + 1
	if int(target) >= net.N() {
		target = c.ID - 1
	}
	res := p.Query(0, target)
	if !res.Found || res.Depth != 1 {
		t.Fatalf("query = %+v, want found at depth 1", res)
	}
	wantHops := c.Hops() + p.Neighborhood().Dist(c.ID, target)
	if res.PathHops != wantHops {
		t.Errorf("PathHops = %d, want %d", res.PathHops, wantHops)
	}
	// Messages: query out (c.Hops()) + reply back (c.Hops()).
	if res.Messages != int64(2*c.Hops()) {
		t.Errorf("Messages = %d, want %d", res.Messages, 2*c.Hops())
	}
}

func TestQueryNotFoundWithinDepth(t *testing.T) {
	// Line long enough that node 0 cannot see the far end at depth 1.
	net := lineNet(60)
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM, Depth: 1}
	p := newProtocol(t, net, cfg, 52)
	p.SelectAll(0)
	res := p.Query(0, 59)
	if res.Found {
		t.Fatalf("depth-1 query found a target ~59 hops away: %+v", res)
	}
	if res.PathHops != -1 {
		t.Errorf("PathHops = %d, want -1", res.PathHops)
	}
	if res.Messages == 0 {
		t.Error("failed query generated no traffic (contacts were queried)")
	}
}

func TestQueryDepth2ReachesFurther(t *testing.T) {
	net := lineNet(60)
	base := Config{R: 2, MaxContactDist: 10, NoC: 2, Method: EM}

	shallow := base
	shallow.Depth = 1
	p1 := newProtocol(t, net, shallow, 53)
	p1.SelectAll(0)

	deep := base
	deep.Depth = 3
	net2 := lineNet(60)
	p2 := newProtocol(t, net2, deep, 53)
	p2.SelectAll(0)

	// On a line with R=2, EM contacts land ~2R+1 = 5 hops out, so depth 1
	// reaches ~7 hops and depth 3 reaches ~17: probe the band between.
	found1, found2 := 0, 0
	for _, target := range []NodeID{10, 12, 14, 16} {
		if p1.Query(0, target).Found {
			found1++
		}
		if p2.Query(0, target).Found {
			found2++
		}
	}
	if found2 <= found1 {
		t.Errorf("depth 3 found %d targets, depth 1 found %d; want strictly more", found2, found1)
	}
}

func TestQueryDepthEscalationReported(t *testing.T) {
	// A target only findable at depth 2 must be reported with Depth 2.
	net := lineNet(60)
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM, Depth: 3}
	p := newProtocol(t, net, cfg, 54)
	p.SelectAll(0)
	// Find some target that depth-1 cannot resolve but deeper can.
	for target := NodeID(15); target < 60; target++ {
		res := p.Query(0, target)
		if res.Found && res.Depth >= 2 {
			return // escalation worked and was reported
		}
	}
	t.Skip("topology produced no depth>=2-only targets; acceptable but rare")
}

func TestQueryDedupTerminatesOnContactCycles(t *testing.T) {
	// Hand-craft a contact cycle: a->b, b->a, plus self-loops via tables.
	net := lineNet(40)
	cfg := Config{R: 2, MaxContactDist: 12, NoC: 2, Method: EM, Depth: 5}
	p := newProtocol(t, net, cfg, 55)
	pathAB := []NodeID{5, 6, 7, 8, 9, 10}
	pathBA := []NodeID{10, 9, 8, 7, 6, 5}
	p.Table(5).add(Contact{ID: 10, Path: pathAB})
	p.Table(10).add(Contact{ID: 5, Path: pathBA})
	// Target nowhere near either: query must terminate (not hang) and fail.
	res := p.Query(5, 39)
	if res.Found {
		t.Fatalf("query found unreachable target: %+v", res)
	}
	// With dedup the cycle is traversed a bounded number of times.
	if res.Messages > 100 {
		t.Errorf("cycle amplified traffic: %d messages", res.Messages)
	}
}

// TestQueryNeverWalksBackToSource is the regression test for the missing
// source visit-mark: a contact whose table points back at the source used
// to walk the escalated DSQ home, charging the full return path in query
// transmissions before rediscovering what the source already knew.
func TestQueryNeverWalksBackToSource(t *testing.T) {
	net := lineNet(40)
	cfg := Config{R: 2, MaxContactDist: 12, NoC: 2, Method: EM, Depth: 2}
	p := newProtocol(t, net, cfg, 59)
	// Symmetric hand-crafted contacts: 5 -> 10 and 10 -> 5 (5 hops each).
	p.Table(5).add(Contact{ID: 10, Path: []NodeID{5, 6, 7, 8, 9, 10}})
	p.Table(10).add(Contact{ID: 5, Path: []NodeID{10, 9, 8, 7, 6, 5}})
	// Target far outside both neighborhoods and the depth-2 horizon.
	res := p.Query(5, 39)
	if res.Found {
		t.Fatalf("unreachable target found: %+v", res)
	}
	// Depth 1: walk 5->10 (5 msgs), miss. Depth 2: walk 5->10 again
	// (5 msgs); node 10's only contact is the source, which is
	// visit-marked, so the escalation dies there. Total: exactly 10.
	// Before the fix the depth-2 DSQ also walked 10->5 (5 more msgs).
	if res.Messages != 10 {
		t.Errorf("Messages = %d, want 10 (no back-walk to the source)", res.Messages)
	}
}

func TestQueryReplyCountingToggle(t *testing.T) {
	run := func(disable bool) int64 {
		net := lineNet(30)
		cfg := Config{R: 2, MaxContactDist: 12, NoC: 1, Method: EM, Depth: 1,
			DisableReplyCounting: disable}
		p := newProtocol(t, net, cfg, 56)
		p.SelectContacts(0, 0)
		if p.Table(0).Len() == 0 {
			t.Fatal("no contact selected")
		}
		c := p.Table(0).Contacts()[0]
		target := c.ID + 1
		if int(target) >= net.N() {
			target = c.ID - 1
		}
		res := p.Query(0, target)
		if !res.Found {
			t.Fatal("query failed")
		}
		return res.Messages
	}
	with := run(false)
	without := run(true)
	if without >= with {
		t.Errorf("reply counting off (%d) not cheaper than on (%d)", without, with)
	}
}

func TestQueryBrokenContactPathFails(t *testing.T) {
	net := customNet(t, [][2]float64{
		{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0}, {60, 0},
	})
	cfg := Config{R: 1, MaxContactDist: 6, NoC: 1, Method: EM, Depth: 1}
	p := newProtocol(t, net, cfg, 57)
	p.Table(0).add(Contact{ID: 5, Path: []NodeID{0, 1, 2, 3, 4, 5}})
	teleport(net, 3, 900, 900)
	res := p.Query(0, 6)
	if res.Found {
		t.Fatal("query succeeded over a broken contact path")
	}
	// Traffic counted only up to the break (hops 0-1, 1-2 plus none beyond).
	if res.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (walk stops at break)", res.Messages)
	}
}

func TestQueryMessagesMatchCounters(t *testing.T) {
	net := staticNet(60, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 4, Method: EM, Depth: 2}
	p := newProtocol(t, net, cfg, 58)
	p.SelectAll(0)
	before := net.Totals().Sum(manet.CatQuery, manet.CatReply)
	var reported int64
	for u := NodeID(0); u < 50; u++ {
		reported += p.Query(u, NodeID(299-u)).Messages
	}
	delta := net.Totals().Sum(manet.CatQuery, manet.CatReply) - before
	if reported != delta {
		t.Errorf("sum of QueryResult.Messages %d != counter delta %d", reported, delta)
	}
}
