package card

// compactLoops removes every cycle from a source route in place: whenever a
// node reappears, the detour between its two occurrences is cut and the
// walk continues from the first occurrence. The result keeps the original
// endpoints, and every surviving hop is a hop of the input, so a hop-valid
// input yields a hop-valid output on the same snapshot.
//
// Two producers need this. The PM walk has no loop memory ("forwards the
// query to one of its randomly chosen neighbors"), so the accepted stack
// may self-intersect; storing it verbatim inflates Contact.Hops() and gets
// the contact wrongly bound-dropped at the next maintenance round. And
// validatePath's recovery splices route around a missing hop through
// whatever the holder's neighborhood table offers — which can revisit
// nodes already on the rebuilt prefix, producing a self-intersecting
// source route.
//
// Paths here are short (≤ MaxContactDist+1 nodes), so the quadratic scan
// beats a map and allocates nothing.
func compactLoops(path []NodeID) []NodeID {
	out := path[:0]
	for _, n := range path {
		cut := false
		for j, m := range out {
			if m == n {
				out = out[:j+1]
				cut = true
				break
			}
		}
		if !cut {
			out = append(out, n)
		}
	}
	return out
}

// pathIsSimple reports whether no node appears twice on the route.
func pathIsSimple(path []NodeID) bool {
	for i, n := range path {
		for _, m := range path[i+1:] {
			if m == n {
				return false
			}
		}
	}
	return true
}
