package card

import (
	"testing"

	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// testArea matches the paper's workhorse scenario (Table 1, #5).
var testArea = geom.Rect{W: 710, H: 710}

// staticNet builds a uniform static network.
func staticNet(seed uint64, n int, txRange float64) *manet.Network {
	rng := xrand.New(seed)
	pts := topology.UniformPositions(n, testArea, rng)
	return manet.New(mobility.NewStatic(pts, testArea), txRange, xrand.New(seed+1000))
}

// mobileNet builds an RWP network.
func mobileNet(t *testing.T, seed uint64, n int, txRange float64) *manet.Network {
	t.Helper()
	m, err := mobility.NewRandomWaypoint(n, testArea, mobility.DefaultRWP(), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return manet.New(m, txRange, xrand.New(seed+1000))
}

// newProtocol wires a protocol over net with an oracle neighborhood.
func newProtocol(t *testing.T, net *manet.Network, cfg Config, seed uint64) *Protocol {
	t.Helper()
	nb := neighborhood.NewOracle(net, cfg.R)
	p, err := New(net, nb, cfg, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// lineNet builds n nodes 10 m apart on a line with 15 m range (path graph).
func lineNet(n int) *manet.Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 10, Y: 0}
	}
	area := geom.Rect{W: float64(n) * 10, H: 10}
	return manet.New(mobility.NewStatic(pts, area), 15, xrand.New(1))
}

// checkPathValid asserts that a source route is hop-by-hop adjacent on the
// current snapshot.
func checkPathValid(t *testing.T, net *manet.Network, path []NodeID) {
	t.Helper()
	for i := 0; i+1 < len(path); i++ {
		if !net.Adjacent(path[i], path[i+1]) {
			t.Fatalf("path %v: hop %d->%d not adjacent", path, path[i], path[i+1])
		}
	}
}

// scripted is a mobility model whose positions tests mutate directly
// (teleporting nodes to break specific links).
type scripted struct {
	area geom.Rect
	pos  []geom.Point
}

func (s *scripted) N() int                                  { return len(s.pos) }
func (s *scripted) Area() geom.Rect                         { return s.area }
func (s *scripted) PositionsAt(_ float64, dst []geom.Point) { copy(dst, s.pos) }

// scriptedModels lets teleport find the model behind a network.
var scriptedModels = map[*manet.Network]*scripted{}

// customNet builds a static-but-mutable network from explicit coordinates
// (15 m radio range).
func customNet(t *testing.T, coords [][2]float64) *manet.Network {
	t.Helper()
	s := &scripted{area: geom.Rect{W: 1000, H: 1000}}
	for _, c := range coords {
		s.pos = append(s.pos, geom.Point{X: c[0], Y: c[1]})
	}
	net := manet.New(s, 15, xrand.New(99))
	scriptedModels[net] = s
	return net
}

// teleport moves one node and refreshes the snapshot.
func teleport(net *manet.Network, id NodeID, x, y float64) {
	s := scriptedModels[net]
	s.pos[id] = geom.Point{X: x, Y: y}
	net.RefreshAt(net.Now() + 0.001)
}
