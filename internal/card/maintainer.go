package card

import (
	"card/internal/manet"
	"card/internal/xrand"
)

// Maintainer executes contact selection and maintenance for individual
// nodes without touching any shared mutable protocol state: the visited
// markers, the selection-overlap scratch, the random generator, the
// protocol statistics and the message tallies all live in the Maintainer
// itself. It is the write-side sibling of [Querier]: between topology
// refreshes, any number of Maintainers may run concurrently over the same
// Protocol — one per worker, each handling a disjoint set of nodes — since
// node u's round reads and writes only u's own table.
//
// Determinism is anchored in counter-based RNG streams: MaintainNode and
// SelectNode reseed the Maintainer's generator from the substream
// (nodeID, round) of the protocol's run seed, so a node's coin flips are
// identical whether the round runs serially in id order or sharded across
// any number of workers in any interleaving. The engine's round fan-out
// relies on exactly this.
//
// A Maintainer is single-goroutine; protocol statistics and message
// tallies accumulate locally until Flush hands them over. With concurrent
// Maintainers, flush serially after the fan-out joins (the engine flushes
// in worker order).
type Maintainer struct {
	p *Protocol

	// visited is the per-CSQ "this node has seen query q" marker, epoch
	// stamped to avoid clearing between walks (EM walks only; PM walks are
	// memoryless by design).
	visited  []uint64
	visitGen uint64

	// ineligible is the per-CSQ selection-overlap scratch, epoch stamped
	// like visited; see computeIneligible.
	ineligible []uint64
	ineligGen  uint64

	// rng is reseeded from the (node, round) substream at every
	// MaintainNode/SelectNode entry; it must never be drawn from before a
	// reseed.
	rng *xrand.Rand

	// Reusable walk and validation scratch, grown on demand and retained
	// across rounds: the EM/PM walk stack, the per-step candidate list,
	// the shuffled edge-node copy and validatePath's rebuilt route. The
	// old per-walk allocations of these were the dominant GC churn of a
	// maintenance round.
	stack   []NodeID
	cand    []NodeID
	edges   []NodeID
	pathOut []NodeID

	// Locally accumulated protocol statistics and transmission tallies,
	// flushed on demand.
	stats Stats
	pend  manet.Counters
}

// NewMaintainer creates an independent selection/maintenance executor
// over p.
func (p *Protocol) NewMaintainer() *Maintainer {
	return &Maintainer{
		p:          p,
		visited:    make([]uint64, p.net.N()),
		ineligible: make([]uint64, p.net.N()),
		rng:        xrand.New(0), // reseeded per (node, round) before use
	}
}

// Flush hands the locally accumulated statistics and message tallies to
// the protocol and its network recorder, and zeroes them. Call after a
// serial round completes, or — with concurrent Maintainers — serially
// after the fan-out joins.
func (m *Maintainer) Flush() {
	m.pend.AddTo(m.p.net.Recorder())
	m.pend.Reset()
	m.p.stats.add(m.stats)
	m.stats = Stats{}
}

// sendHop accounts one unicast hop transmission of category cat into the
// local tally.
func (m *Maintainer) sendHop(cat manet.Category) { m.pend.Add(cat, 1) }

// sendHops accounts k unicast hop transmissions of category cat.
func (m *Maintainer) sendHops(cat manet.Category, k int) { m.pend.Add(cat, k) }

// SelectNode runs the contact-selection procedure of §III.C.1 for node u
// at simulation time now, drawing randomness from the (u, round)
// substream. It returns the number of contacts added. Churned-down nodes
// skip the round entirely — their radios are off — which is safe for the
// parallel fan-out because every node's randomness comes from its own
// substream, so a skip cannot shift any other node's draws. See
// Protocol.SelectContacts for the serial entry point.
func (m *Maintainer) SelectNode(u NodeID, now float64, round uint64) int {
	if m.p.net.Down(u) {
		return 0
	}
	m.rng.Reseed(m.p.rng.StreamSeed(uint64(u), round))
	return m.selectContacts(u, now)
}

// MaintainNode runs one contact-maintenance round (§III.C.3) for node u,
// drawing any refill-selection randomness from the (u, round) substream.
// Churned-down nodes skip the round (see SelectNode). See
// Protocol.Maintain for the serial entry point and the rule list.
func (m *Maintainer) MaintainNode(u NodeID, now float64, round uint64) {
	if m.p.net.Down(u) {
		return
	}
	m.rng.Reseed(m.p.rng.StreamSeed(uint64(u), round))
	m.maintain(u, now)
}

// selectContacts implements the selection round on the already-seeded
// generator: while the table holds fewer than NoC contacts, send a Contact
// Selection Query (CSQ) through each edge node, one at a time.
//
// Each CSQ performs a random depth-first walk with backtracking beyond the
// edge node, bounded to r hops from the source, until some node accepts
// contact-hood under the configured method (PM1/PM2/EM) or the region is
// exhausted.
//
// A walk that comes home empty visited everything it could reach within
// its budget, but walks launched through other edge nodes still explore
// different directions (path length is charged from the source through
// that edge). The round therefore tolerates MaxFailedWalks empty walks
// before giving up until the next maintenance round — which retries with
// fresh randomness, mattering most for the probabilistic methods whose
// coin flips may simply have failed (the paper's "lost opportunities").
func (m *Maintainer) selectContacts(u NodeID, now float64) int {
	p := m.p
	t := &p.tables[u]
	if t.Len() >= p.cfg.NoC {
		return 0
	}
	edges := append(m.edges[:0], p.nb.EdgeNodes(u)...)
	m.edges = edges
	m.rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	added, failures := 0, 0
	for _, e := range edges {
		if t.Len() >= p.cfg.NoC {
			break
		}
		path, exhausted := m.runCSQ(u, e, now)
		if path != nil {
			t.add(Contact{ID: path[len(path)-1], Path: path, SelectedAt: now, LastValidated: now})
			m.stats.ContactsSelected++
			added++
		}
		if exhausted {
			failures++
			if p.cfg.MaxFailedWalks > 0 && failures >= p.cfg.MaxFailedWalks {
				break
			}
		}
	}
	return added
}

// maintain implements the maintenance round on the already-seeded
// generator; see Protocol.Maintain for the five rules.
func (m *Maintainer) maintain(u NodeID, now float64) {
	p := m.p
	t := &p.tables[u]
	for i := 0; i < t.Len(); {
		newPath, ok := m.validatePath(t.at(i))
		if !ok {
			m.stats.ContactsLost++
			t.removeAt(i)
			continue
		}
		hops := len(newPath) - 1
		lo := p.cfg.Method.lowerBound(p.cfg.R)
		if hops < lo || hops > p.cfg.MaxContactDist {
			m.stats.ContactsLost++
			m.stats.BoundDrops++
			t.removeAt(i)
			continue
		}
		t.setPath(i, newPath)
		t.at(i).LastValidated = now
		i++
	}
	if t.Len() < p.cfg.NoC {
		m.selectContacts(u, now)
	}
}

// computeIneligible stamps into m.ineligible every node that must refuse
// contact-hood for source u.
//
// The paper phrases the test locally at the candidate X: "X checks if the
// source lies within its neighborhood [and] if its neighborhood contains
// any of the node IDs in the Contact_List [or, under EM, the Edge_List]".
// Hop distance over an undirected snapshot is symmetric, so
// (y in N(X)) == (X in N(y)); the union of N(source), N(contact_i) and —
// for EM — N(edge_j) therefore contains exactly the candidates that would
// refuse. Precomputing that union once per CSQ replaces O(|Contact_List| +
// |Edge_List|) membership probes at every visited node with one stamp
// comparison, without changing the decision each node would make. Marking
// the sorted member lists costs O(Σ|ball|), independent of N — where the
// old N-bit set unions made every CSQ pay O(N/64) at 100k nodes.
func (m *Maintainer) computeIneligible(u NodeID) {
	p := m.p
	m.ineligGen++
	gen := m.ineligGen
	for _, x := range p.nb.Members(u) {
		m.ineligible[x] = gen
	}
	t := &p.tables[u]
	for i := 0; i < t.Len(); i++ {
		for _, x := range p.nb.Members(t.at(i).ID) {
			m.ineligible[x] = gen
		}
	}
	if p.cfg.Method == EM {
		for _, e := range p.nb.EdgeNodes(u) {
			for _, x := range p.nb.Members(e) {
				m.ineligible[x] = gen
			}
		}
	}
}

// accept decides whether node x, reached with CSQ hop count d, becomes a
// contact for the current walk (§III.C.2).
func (m *Maintainer) accept(x NodeID, d int) bool {
	if m.ineligible[x] == m.ineligGen {
		return false
	}
	switch m.p.cfg.Method {
	case PM1:
		return m.rng.Bool(acceptProb(d, m.p.cfg.R, m.p.cfg.MaxContactDist))
	case PM2:
		return m.rng.Bool(acceptProb(d, 2*m.p.cfg.R, m.p.cfg.MaxContactDist))
	default: // EM: the edge-list exclusion is already in ineligible
		return true
	}
}

// runCSQ sends one Contact Selection Query from u through edge node e. It
// returns the selected contact's loop-free source route (scratch owned by
// the Maintainer, valid until its next walk — callers store it via
// Table.add, which copies), or nil with exhausted=true when the walk gave
// up (region saturated for EM; step budget burned for PM).
//
// The two walk disciplines deliberately differ, following §III.C.2:
//
//   - EM carries "the query and source IDs ... to prevent looping", i.e.
//     nodes remember the query and refuse to take it twice — a clean
//     depth-first traversal over distinct nodes that terminates once the
//     r-hop region is exhausted.
//   - PM has no such memory: each node "forwards the query to one of its
//     randomly chosen neighbor (excluding the one from which CSQ was
//     received)". The walk may revisit nodes (re-flipping the coin), its
//     hop count d is the length of the path it has built, and it bounces
//     off the d = r shell with backtracking. This wandering is exactly the
//     "extra traffic ... due to backtracking, and lost opportunities when
//     the probability fails" that Fig. 4 charges to PM; a per-query step
//     budget (2N transmissions) bounds walks that would wander forever.
//
// Message accounting: the transit u→e and every forward walk hop count as
// CatCSQ; every reverse hop (dead-end retreat, r-shell bounce, and the
// failure report back to the source) counts as CatBacktrack; the success
// reply returning the contact path counts as CatCSQ.
func (m *Maintainer) runCSQ(u, e NodeID, now float64) (path []NodeID, exhausted bool) {
	m.stats.CSQLaunched++
	route := m.p.nb.Route(u, e)
	if route == nil {
		return nil, false // stale edge information (provider mid-convergence)
	}
	m.computeIneligible(u)
	m.sendHops(manet.CatCSQ, len(route)-1)
	if m.p.cfg.Method == EM {
		return m.walkEM(route)
	}
	return m.walkPM(route)
}

// walkEM runs the edge method's loop-free depth-first walk.
func (m *Maintainer) walkEM(route []NodeID) ([]NodeID, bool) {
	m.visitGen++
	gen := m.visitGen
	for _, n := range route {
		m.visited[n] = gen
	}
	stack := append(m.stack[:0], route...)
	r := m.p.cfg.MaxContactDist
	directed := m.p.net.Directed()
	cand := m.cand
	for {
		x := stack[len(stack)-1]
		d := len(stack) - 1
		cand = cand[:0]
		if d < r {
			for _, y := range m.p.net.Neighbors(x) {
				if m.visited[y] == gen {
					continue
				}
				// Under asymmetric links the walk only advances over
				// bidirectional hops: the CSQ needs its reply (and every
				// backtrack) to travel the reverse edge, and a contact
				// reached one-way would fail its first validation anyway.
				if directed && !m.p.net.Adjacent(y, x) {
					continue
				}
				cand = append(cand, y)
			}
		}
		if len(cand) == 0 {
			// Dead end or depth limit: backtrack one hop. Walking back past
			// the edge node means the whole region is exhausted — the
			// failure report continues to the source.
			m.sendHop(manet.CatBacktrack)
			stack = stack[:len(stack)-1]
			if len(stack) < len(route) {
				m.sendHops(manet.CatBacktrack, len(stack)-1)
				m.stack, m.cand = stack, cand
				return nil, true
			}
			continue
		}
		y := cand[m.rng.Intn(len(cand))]
		m.visited[y] = gen
		stack = append(stack, y)
		m.sendHop(manet.CatCSQ)
		if m.accept(y, len(stack)-1) {
			m.stack, m.cand = stack, cand
			return m.acceptContact(stack), false
		}
	}
}

// walkPM runs the probabilistic methods' memoryless walk: forward to a
// random neighbor other than the parent, bounce off the r-hop shell, and
// give up when the per-query step budget is gone.
func (m *Maintainer) walkPM(route []NodeID) ([]NodeID, bool) {
	stack := append(m.stack[:0], route...)
	r := m.p.cfg.MaxContactDist
	directed := m.p.net.Directed()
	budget := m.csqBudget()
	cand := m.cand
	for budget > 0 {
		x := stack[len(stack)-1]
		d := len(stack) - 1
		parent := stack[len(stack)-2] // route has >= 2 nodes, stack never shrinks below it
		cand = cand[:0]
		if d < r {
			for _, y := range m.p.net.Neighbors(x) {
				if y == parent {
					continue
				}
				// Same bidirectionality requirement as the EM walk.
				if directed && !m.p.net.Adjacent(y, x) {
					continue
				}
				cand = append(cand, y)
			}
		}
		if len(cand) == 0 {
			// r-shell bounce or dead end: backtrack one hop.
			m.sendHop(manet.CatBacktrack)
			budget--
			stack = stack[:len(stack)-1]
			if len(stack) < len(route) {
				m.sendHops(manet.CatBacktrack, len(stack)-1)
				m.stack, m.cand = stack, cand
				return nil, true
			}
			continue
		}
		y := cand[m.rng.Intn(len(cand))]
		stack = append(stack, y)
		m.sendHop(manet.CatCSQ)
		budget--
		if m.accept(y, len(stack)-1) {
			m.stack, m.cand = stack, cand
			return m.acceptContact(stack), false
		}
	}
	// Budget exhausted mid-walk: the query dies and the current holder
	// reports failure back along the walk path.
	m.sendHops(manet.CatBacktrack, len(stack)-1)
	m.stack, m.cand = stack, cand
	return nil, true
}

// csqBudget is the PM walk's transmission budget: twice the network size,
// enough to cover the region several times over without letting a
// pathological walk run unbounded.
func (m *Maintainer) csqBudget() int { return 2 * m.p.net.N() }

// acceptContact finalizes a successful walk: the acceptor compacts the
// accumulated walk into a loop-free source route and returns it to the
// source, which stores the contact. The compaction runs in place on the
// walk stack — the walk is over, and the caller copies the route into the
// table's arena segment before the scratch is reused.
//
// The compaction matters for the PM walks, whose memoryless wandering may
// self-intersect: the acceptance decision uses the raw walk hop count d
// (the paper's semantics), but the route the reply carries — and the
// source stores — must be the net, loop-free path, or Contact.Hops() is
// inflated and the contact gets wrongly bound-dropped at the next
// maintenance round. EM walks are simple by construction, so compaction
// is a no-op for them.
func (m *Maintainer) acceptContact(stack []NodeID) []NodeID {
	path := compactLoops(stack)
	m.sendHops(manet.CatCSQ, len(path)-1) // reply carrying the loop-free path
	m.stats.CSQSucceeded++
	return path
}

// validatePath walks a contact's stored source route over the current
// topology, splicing around missing hops via local recovery. It returns
// the (possibly re-spliced) path — Maintainer-owned scratch, valid until
// the next validation; callers persist it via Table.setPath, which copies
// — or ok=false when the contact is lost.
//
// Recovery splices can revisit nodes already on the rebuilt prefix — the
// holder routes around the break through whatever its neighborhood table
// offers, oblivious to where the message has been — so the final route is
// compacted before it is returned: the stored path must be a simple source
// route, and maintenance rule 4 must judge the contact by its loop-free
// length.
//
// Message accounting: every surviving hop of the validation walk counts as
// CatValidate; hops introduced by recovery splices count as CatRecovery
// (both at their traveled, pre-compaction length — the transmissions
// happened). Under a lossy link model each attempted hop additionally
// charges its retransmissions to CatRetry, and a hop that exhausts its
// retry budget is treated exactly like a broken link: the validation
// message sits at the break and pays the local-recovery detour — the
// asymmetric/lossy-hop cost the directed contract prescribes. A hop whose
// reverse edge is missing (asymmetric link) attempts nothing and goes
// straight to recovery.
func (m *Maintainer) validatePath(c *Contact) (path []NodeID, ok bool) {
	p := m.p
	old := c.Path
	out := append(m.pathOut[:0], old[0])
	i := 0 // index in old of the node the validation message sits at
	for i+1 < len(old) {
		cur := out[len(out)-1]
		next := old[i+1]
		att, delivered := p.net.TryHop(cur, next)
		if att > 0 {
			m.sendHop(manet.CatValidate)
			if att > 1 {
				m.sendHops(manet.CatRetry, att-1)
			}
		}
		if delivered {
			out = append(out, next)
			i++
			continue
		}
		if p.cfg.DisableLocalRecovery {
			m.stats.RecoveryFailures++
			m.pathOut = out
			return nil, false
		}
		// Local recovery: look for the missing hop — and failing that, each
		// subsequent node of the source path — in cur's neighborhood table.
		recovered := false
		for j := i + 1; j < len(old); j++ {
			if !p.nb.Contains(cur, old[j]) {
				continue
			}
			sub := p.nb.Route(cur, old[j])
			if sub == nil {
				continue
			}
			m.sendHops(manet.CatRecovery, len(sub)-1)
			out = append(out, sub[1:]...)
			i = j
			m.stats.Recoveries++
			recovered = true
			break
		}
		if !recovered {
			m.stats.RecoveryFailures++
			m.pathOut = out
			return nil, false
		}
	}
	m.pathOut = out
	return compactLoops(out), true
}
