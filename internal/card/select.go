package card

// SelectContacts runs the contact-selection procedure of §III.C.1 for node
// u at simulation time now: while the table holds fewer than NoC contacts,
// send a Contact Selection Query (CSQ) through each edge node, one at a
// time. It returns the number of contacts added.
//
// SelectContacts is the serial entry point: it runs on the protocol's own
// [Maintainer] (consuming one RNG round) and flushes statistics and
// message tallies immediately. For concurrent selection rounds, create one
// Maintainer per worker instead — see Maintainer.SelectNode and the
// engine's round fan-out.
func (p *Protocol) SelectContacts(u NodeID, now float64) int {
	added := p.maint.SelectNode(u, now, p.NextRound())
	p.maint.Flush()
	return added
}

// SelectAll runs one selection round for every node, in id order. All
// nodes share the round's RNG round id: node u draws from the substream
// (u, round), which is what makes the engine's sharded rounds bit-identical
// to this serial loop.
func (p *Protocol) SelectAll(now float64) int {
	round := p.NextRound()
	total := 0
	for i := 0; i < p.net.N(); i++ {
		total += p.maint.SelectNode(NodeID(i), now, round)
	}
	p.maint.Flush()
	return total
}

// SelectSet runs one selection round over only the listed nodes, in the
// order given (callers pass ascending ids for determinism), consuming one
// RNG round id like SelectAll. Nodes outside the set would have
// contributed nothing anyway when their tables are full — SelectNode
// returns immediately at NoC contacts — which is what lets dirty-set
// engines skip them wholesale.
func (p *Protocol) SelectSet(nodes []NodeID, now float64) int {
	round := p.NextRound()
	total := 0
	for _, u := range nodes {
		total += p.maint.SelectNode(u, now, round)
	}
	p.maint.Flush()
	return total
}

// acceptProb evaluates P = (d-lo)/(r-lo) clamped to [0,1]. When the band is
// degenerate (r <= lo, e.g. r = 2R under eq. 2), acceptance collapses to
// "only at d >= r", the limit the formula approaches.
func acceptProb(d, lo, r int) float64 {
	if r <= lo {
		if d >= r {
			return 1
		}
		return 0
	}
	pr := float64(d-lo) / float64(r-lo)
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}
