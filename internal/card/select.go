package card

import (
	"card/internal/manet"
)

// SelectContacts runs the contact-selection procedure of §III.C.1 for node
// u at simulation time now: while the table holds fewer than NoC contacts,
// send a Contact Selection Query (CSQ) through each edge node, one at a
// time. It returns the number of contacts added.
//
// Each CSQ performs a random depth-first walk with backtracking beyond the
// edge node, bounded to r hops from the source, until some node accepts
// contact-hood under the configured method (PM1/PM2/EM) or the region is
// exhausted.
//
// A walk that comes home empty visited everything it could reach within
// its budget, but walks launched through other edge nodes still explore
// different directions (path length is charged from the source through
// that edge). The round therefore tolerates MaxFailedWalks empty walks
// before giving up until the next maintenance round — which retries with
// fresh randomness, mattering most for the probabilistic methods whose
// coin flips may simply have failed (the paper's "lost opportunities").
func (p *Protocol) SelectContacts(u NodeID, now float64) int {
	t := p.tables[u]
	if t.Len() >= p.cfg.NoC {
		return 0
	}
	edges := append([]NodeID(nil), p.nb.EdgeNodes(u)...)
	p.rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	added, failures := 0, 0
	for _, e := range edges {
		if t.Len() >= p.cfg.NoC {
			break
		}
		c, exhausted := p.runCSQ(u, e, now)
		if c != nil {
			t.add(c)
			p.stats.ContactsSelected++
			added++
		}
		if exhausted {
			failures++
			if p.cfg.MaxFailedWalks > 0 && failures >= p.cfg.MaxFailedWalks {
				break
			}
		}
	}
	return added
}

// SelectAll runs SelectContacts for every node, in id order.
func (p *Protocol) SelectAll(now float64) int {
	total := 0
	for i := 0; i < p.net.N(); i++ {
		total += p.SelectContacts(NodeID(i), now)
	}
	return total
}

// computeIneligible fills p.ineligible with every node that must refuse
// contact-hood for source u.
//
// The paper phrases the test locally at the candidate X: "X checks if the
// source lies within its neighborhood [and] if its neighborhood contains
// any of the node IDs in the Contact_List [or, under EM, the Edge_List]".
// Hop distance over an undirected snapshot is symmetric, so
// (y in N(X)) == (X in N(y)); the union of N(source), N(contact_i) and —
// for EM — N(edge_j) therefore contains exactly the candidates that would
// refuse. Precomputing that union once per CSQ replaces O(|Contact_List| +
// |Edge_List|) membership probes at every visited node with one bit test,
// without changing the decision each node would make.
func (p *Protocol) computeIneligible(u NodeID) {
	set := p.ineligible
	set.CopyFrom(p.nb.Set(u))
	for _, c := range p.tables[u].contacts {
		set.UnionWith(p.nb.Set(c.ID))
	}
	if p.cfg.Method == EM {
		for _, e := range p.nb.EdgeNodes(u) {
			set.UnionWith(p.nb.Set(e))
		}
	}
}

// accept decides whether node x, reached with CSQ hop count d, becomes a
// contact for the current walk (§III.C.2).
func (p *Protocol) accept(x NodeID, d int) bool {
	if p.ineligible.Contains(int(x)) {
		return false
	}
	switch p.cfg.Method {
	case PM1:
		return p.rng.Bool(acceptProb(d, p.cfg.R, p.cfg.MaxContactDist))
	case PM2:
		return p.rng.Bool(acceptProb(d, 2*p.cfg.R, p.cfg.MaxContactDist))
	default: // EM: the edge-list exclusion is already in ineligible
		return true
	}
}

// acceptProb evaluates P = (d-lo)/(r-lo) clamped to [0,1]. When the band is
// degenerate (r <= lo, e.g. r = 2R under eq. 2), acceptance collapses to
// "only at d >= r", the limit the formula approaches.
func acceptProb(d, lo, r int) float64 {
	if r <= lo {
		if d >= r {
			return 1
		}
		return 0
	}
	pr := float64(d-lo) / float64(r-lo)
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}

// runCSQ sends one Contact Selection Query from u through edge node e. It
// returns the selected contact, or nil with exhausted=true when the walk
// gave up (region saturated for EM; step budget burned for PM).
//
// The two walk disciplines deliberately differ, following §III.C.2:
//
//   - EM carries "the query and source IDs ... to prevent looping", i.e.
//     nodes remember the query and refuse to take it twice — a clean
//     depth-first traversal over distinct nodes that terminates once the
//     r-hop region is exhausted.
//   - PM has no such memory: each node "forwards the query to one of its
//     randomly chosen neighbor (excluding the one from which CSQ was
//     received)". The walk may revisit nodes (re-flipping the coin), its
//     hop count d is the length of the path it has built, and it bounces
//     off the d = r shell with backtracking. This wandering is exactly the
//     "extra traffic ... due to backtracking, and lost opportunities when
//     the probability fails" that Fig. 4 charges to PM; a per-query step
//     budget (2N transmissions) bounds walks that would wander forever.
//
// Message accounting: the transit u→e and every forward walk hop count as
// CatCSQ; every reverse hop (dead-end retreat, r-shell bounce, and the
// failure report back to the source) counts as CatBacktrack; the success
// reply returning the contact path counts as CatCSQ.
func (p *Protocol) runCSQ(u, e NodeID, now float64) (c *Contact, exhausted bool) {
	p.stats.CSQLaunched++
	route := p.nb.Route(u, e)
	if route == nil {
		return nil, false // stale edge information (provider mid-convergence)
	}
	p.computeIneligible(u)
	p.net.SendHops(manet.CatCSQ, len(route)-1)
	if p.cfg.Method == EM {
		return p.walkEM(route, now)
	}
	return p.walkPM(route, now)
}

// walkEM runs the edge method's loop-free depth-first walk.
func (p *Protocol) walkEM(route []NodeID, now float64) (*Contact, bool) {
	p.visitGen++
	gen := p.visitGen
	for _, n := range route {
		p.visited[n] = gen
	}
	stack := append([]NodeID(nil), route...)
	r := p.cfg.MaxContactDist
	var cand []NodeID
	for {
		x := stack[len(stack)-1]
		d := len(stack) - 1
		cand = cand[:0]
		if d < r {
			for _, y := range p.net.Neighbors(x) {
				if p.visited[y] != gen {
					cand = append(cand, y)
				}
			}
		}
		if len(cand) == 0 {
			// Dead end or depth limit: backtrack one hop. Walking back past
			// the edge node means the whole region is exhausted — the
			// failure report continues to the source.
			p.net.SendHop(manet.CatBacktrack)
			stack = stack[:len(stack)-1]
			if len(stack) < len(route) {
				p.net.SendHops(manet.CatBacktrack, len(stack)-1)
				return nil, true
			}
			continue
		}
		y := cand[p.rng.Intn(len(cand))]
		p.visited[y] = gen
		stack = append(stack, y)
		p.net.SendHop(manet.CatCSQ)
		if p.accept(y, len(stack)-1) {
			return p.acceptContact(stack, now), false
		}
	}
}

// walkPM runs the probabilistic methods' memoryless walk: forward to a
// random neighbor other than the parent, bounce off the r-hop shell, and
// give up when the per-query step budget is gone.
func (p *Protocol) walkPM(route []NodeID, now float64) (*Contact, bool) {
	stack := append([]NodeID(nil), route...)
	r := p.cfg.MaxContactDist
	budget := p.csqBudget()
	var cand []NodeID
	for budget > 0 {
		x := stack[len(stack)-1]
		d := len(stack) - 1
		parent := stack[len(stack)-2] // route has >= 2 nodes, stack never shrinks below it
		cand = cand[:0]
		if d < r {
			for _, y := range p.net.Neighbors(x) {
				if y != parent {
					cand = append(cand, y)
				}
			}
		}
		if len(cand) == 0 {
			// r-shell bounce or dead end: backtrack one hop.
			p.net.SendHop(manet.CatBacktrack)
			budget--
			stack = stack[:len(stack)-1]
			if len(stack) < len(route) {
				p.net.SendHops(manet.CatBacktrack, len(stack)-1)
				return nil, true
			}
			continue
		}
		y := cand[p.rng.Intn(len(cand))]
		stack = append(stack, y)
		p.net.SendHop(manet.CatCSQ)
		budget--
		if p.accept(y, len(stack)-1) {
			return p.acceptContact(stack, now), false
		}
	}
	// Budget exhausted mid-walk: the query dies and the current holder
	// reports failure back along the walk path.
	p.net.SendHops(manet.CatBacktrack, len(stack)-1)
	return nil, true
}

// csqBudget is the PM walk's transmission budget: twice the network size,
// enough to cover the region several times over without letting a
// pathological walk run unbounded.
func (p *Protocol) csqBudget() int { return 2 * p.net.N() }

// acceptContact finalizes a successful walk: the acceptor returns the
// accumulated path to the source, which stores the contact.
func (p *Protocol) acceptContact(stack []NodeID, now float64) *Contact {
	path := append([]NodeID(nil), stack...)
	p.net.SendHops(manet.CatCSQ, len(path)-1) // reply carrying the path
	p.stats.CSQSucceeded++
	return &Contact{ID: path[len(path)-1], Path: path, SelectedAt: now, LastValidated: now}
}
