// Package card implements the paper's contribution: the Contact-based
// Architecture for Resource Discovery (CARD).
//
// Every node maintains (a) a proactive R-hop neighborhood (provided by
// package neighborhood) and (b) up to NoC contacts — nodes roughly 2R..r
// hops away with non-overlapping neighborhoods — selected by a depth-first
// Contact Selection Query (CSQ) walk, kept alive by periodic validation
// with local recovery, and queried through multi-level Destination Search
// Queries (DSQs).
//
// The three contact-selection protocols from §III.C.2 are implemented:
// PM1 (probability eq. 1), PM2 (probability eq. 2) and EM (edge method).
package card

import "fmt"

// Method selects the contact-acceptance protocol of §III.C.2.
type Method int

const (
	// EM is the edge method: deterministic acceptance when the candidate's
	// neighborhood contains neither the source, nor any chosen contact,
	// nor any of the source's edge nodes. It is the zero value: the paper's
	// evaluation concludes EM dominates, so it is the default.
	EM Method = iota
	// PM1 accepts with probability P = (d-R)/(r-R) (paper eq. 1).
	PM1
	// PM2 accepts with probability P = (d-2R)/(r-2R) (paper eq. 2).
	PM2
)

func (m Method) String() string {
	switch m {
	case PM1:
		return "PM1"
	case PM2:
		return "PM2"
	case EM:
		return "EM"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// lowerBound is the minimum legal contact distance the method aims for;
// maintenance rule 4 drops contacts outside [lowerBound, r].
func (m Method) lowerBound(r1 int) int {
	if m == PM1 {
		return r1 + 1 // beyond the neighborhood
	}
	return 2 * r1 // beyond the overlap band (eq. 2 / edge method)
}

// Config parameterizes a CARD protocol instance. Zero fields take the
// defaults documented per field; call Validate (or rely on New) to check
// consistency.
type Config struct {
	// R is the neighborhood radius in hops (required, >= 1).
	R int
	// MaxContactDist is the paper's r: the maximum contact distance in
	// hops (required, > R).
	MaxContactDist int
	// NoC is the target number of contacts per node (default 5).
	NoC int
	// Depth is the query depth of search D (default 1).
	Depth int
	// Method selects PM1, PM2 or EM (default EM, the paper's winner).
	Method Method
	// ValidatePeriod is the contact-maintenance interval in seconds
	// (default 2).
	ValidatePeriod float64
	// LocalRecovery enables path splicing during validation (default on;
	// the ablation benches switch it off). Stored inverted so the zero
	// value means enabled.
	DisableLocalRecovery bool
	// CountReplies includes success-reply hops in query traffic (default
	// on). Stored inverted so the zero value means enabled.
	DisableReplyCounting bool
	// MaxFailedWalks bounds how many CSQ walks may come home empty within
	// one selection round before the source gives up until the next
	// round. Zero (the default) means unlimited — the paper's §III.C.1
	// behavior of sending a CSQ "through each of its edge node, one at a
	// time" until the table is full, which is what produces the large
	// saturated-regime backtracking of Figs. 4, 11 and 12. Deployments
	// that prefer bounded per-round cost set a small positive cap; the
	// trade-off is fewer contacts when the eligible band is thin (walks
	// through different edge nodes explore different directions, so one
	// failure proves little).
	MaxFailedWalks int
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if c.R < 1 {
		return fmt.Errorf("card: R = %d, need >= 1", c.R)
	}
	if c.MaxContactDist <= c.R {
		return fmt.Errorf("card: r = %d must exceed R = %d", c.MaxContactDist, c.R)
	}
	if c.NoC == 0 {
		c.NoC = 5
	}
	if c.NoC < 0 {
		return fmt.Errorf("card: NoC = %d, need >= 0", c.NoC)
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	if c.Depth < 1 {
		return fmt.Errorf("card: Depth = %d, need >= 1", c.Depth)
	}
	if c.Method < EM || c.Method > PM2 {
		return fmt.Errorf("card: unknown method %d", int(c.Method))
	}
	if c.ValidatePeriod == 0 {
		c.ValidatePeriod = 2
	}
	if c.ValidatePeriod < 0 {
		return fmt.Errorf("card: negative ValidatePeriod %v", c.ValidatePeriod)
	}
	if c.MaxFailedWalks < 0 {
		return fmt.Errorf("card: negative MaxFailedWalks %d", c.MaxFailedWalks)
	}
	return nil
}
