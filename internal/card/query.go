package card

import (
	"card/internal/manet"
)

// QueryResult reports one resource-discovery attempt.
type QueryResult struct {
	// Found reports whether a path to the target was returned.
	Found bool
	// Depth is the contact level at which the target was found: 0 means
	// the source's own neighborhood, 1 a first-level contact, and so on.
	// It is meaningless when Found is false.
	Depth int
	// Messages is the number of control messages (queries + replies) this
	// attempt generated.
	Messages int64
	// PathHops is the length of the discovered source→target path through
	// the contact chain, or -1 when not found.
	PathHops int
}

// Query runs the Destination Search Query mechanism of §III.C.4: the
// source first checks its own neighborhood table, then escalates DSQs of
// increasing depth D = 1..cfg.Depth through its contacts, each contact
// leveraging its own neighborhood knowledge (and, for D > 1, forwarding to
// its contacts with D-1).
//
// Matching the paper's "one at a time" semantics, contacts are queried
// sequentially with early termination on the first hit; an unanswered
// depth-D sweep is followed by a fresh depth-(D+1) DSQ.
func (p *Protocol) Query(u, target NodeID) QueryResult {
	if u == target {
		return QueryResult{Found: true, Depth: 0, PathHops: 0}
	}
	if p.nb.Contains(u, target) {
		// Resolved from the local neighborhood table: no control traffic.
		return QueryResult{Found: true, Depth: 0, PathHops: p.nb.Dist(u, target)}
	}
	before := p.net.Counters.Sum(manet.CatQuery, manet.CatReply)
	for depth := 1; depth <= p.cfg.Depth; depth++ {
		p.visitGen++
		if hops, ok := p.dsq(u, target, depth); ok {
			return QueryResult{
				Found:    true,
				Depth:    depth,
				Messages: p.net.Counters.Sum(manet.CatQuery, manet.CatReply) - before,
				PathHops: hops,
			}
		}
	}
	return QueryResult{
		Found:    false,
		Messages: p.net.Counters.Sum(manet.CatQuery, manet.CatReply) - before,
		PathHops: -1,
	}
}

// dsq delivers a depth-limited DSQ to v's contacts, one at a time. It
// returns the hop length of the found path from v to the target via the
// contact chain. Each contact is visited at most once per escalation
// attempt (p.visitGen), preventing the contact graph's cycles from
// amplifying traffic.
func (p *Protocol) dsq(v, target NodeID, depth int) (int, bool) {
	for _, c := range p.tables[v].contacts {
		if p.visited[c.ID] == p.visitGen {
			continue
		}
		p.visited[c.ID] = p.visitGen
		ok, _ := p.net.WalkPath(manet.CatQuery, c.Path)
		if !ok {
			continue // stored path broken under mobility: this DSQ dies
		}
		if depth == 1 {
			if p.nb.Contains(c.ID, target) {
				if !p.cfg.DisableReplyCounting {
					p.net.SendHops(manet.CatReply, c.Hops())
				}
				return c.Hops() + p.nb.Dist(c.ID, target), true
			}
			continue
		}
		if sub, found := p.dsq(c.ID, target, depth-1); found {
			if !p.cfg.DisableReplyCounting {
				p.net.SendHops(manet.CatReply, c.Hops())
			}
			return c.Hops() + sub, true
		}
	}
	return 0, false
}
