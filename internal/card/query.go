package card

import (
	"card/internal/manet"
)

// QueryResult reports one resource-discovery attempt.
type QueryResult struct {
	// Found reports whether a path to the target was returned.
	Found bool
	// Depth is the contact level at which the target was found: 0 means
	// the source's own neighborhood, 1 a first-level contact, and so on.
	// It is meaningless when Found is false.
	Depth int
	// Messages is the number of control messages (queries + replies) this
	// attempt generated.
	Messages int64
	// PathHops is the length of the discovered source→target path through
	// the contact chain, or -1 when not found.
	PathHops int
}

// Query runs the Destination Search Query mechanism of §III.C.4: the
// source first checks its own neighborhood table, then escalates DSQs of
// increasing depth D = 1..cfg.Depth through its contacts, each contact
// leveraging its own neighborhood knowledge (and, for D > 1, forwarding to
// its contacts with D-1).
//
// Matching the paper's "one at a time" semantics, contacts are queried
// sequentially with early termination on the first hit; an unanswered
// depth-D sweep is followed by a fresh depth-(D+1) DSQ.
//
// Query is the serial entry point: it runs on the protocol's own scratch
// and flushes message tallies to the network recorder immediately. For
// concurrent fan-outs, create one [Querier] per worker instead.
func (p *Protocol) Query(u, target NodeID) QueryResult {
	res := p.querier.Query(u, target)
	p.querier.Flush()
	return res
}

// Querier executes CARD queries against a protocol snapshot without
// touching any shared mutable state: visited markers and message tallies
// live in the Querier itself. Between topology refreshes and maintenance
// rounds, any number of Queriers may run concurrently over the same
// Protocol (the engine's BatchQuery does exactly that — one Querier per
// worker), provided neighborhood views are warmed first; see
// neighborhood.Warmer.
//
// A Querier is single-goroutine; message tallies accumulate locally until
// Flush hands them to the network recorder.
type Querier struct {
	p *Protocol

	// visited is the per-DSQ "this contact has seen query q" marker, epoch
	// stamped to avoid clearing between walks.
	visited  []uint64
	visitGen uint64

	// Locally accumulated transmission tallies, flushed on demand.
	pendingQuery int64
	pendingReply int64
	pendingRetry int64
}

// NewQuerier creates an independent query executor over p.
func (p *Protocol) NewQuerier() *Querier {
	return &Querier{p: p, visited: make([]uint64, p.net.N())}
}

// Protocol returns the protocol this Querier executes against, for callers
// (like the resource layer) that need the neighborhood views alongside the
// query path.
func (q *Querier) Protocol() *Protocol { return q.p }

// Flush adds the locally accumulated query/reply tallies to the network
// recorder and zeroes them. Call after a batch completes (or per query for
// live accounting); with concurrent Queriers, flush serially after the
// fan-out joins unless the recorder is concurrency-safe.
func (q *Querier) Flush() {
	if q.pendingQuery != 0 {
		q.p.net.Record(manet.CatQuery, q.pendingQuery)
		q.pendingQuery = 0
	}
	if q.pendingReply != 0 {
		q.p.net.Record(manet.CatReply, q.pendingReply)
		q.pendingReply = 0
	}
	if q.pendingRetry != 0 {
		q.p.net.Record(manet.CatRetry, q.pendingRetry)
		q.pendingRetry = 0
	}
}

// Query runs one CARD destination search from u for target. See
// Protocol.Query for the mechanism.
func (q *Querier) Query(u, target NodeID) QueryResult {
	p := q.p
	if u == target {
		return QueryResult{Found: true, Depth: 0, PathHops: 0}
	}
	if p.nb.Contains(u, target) {
		// Resolved from the local neighborhood table: no control traffic.
		return QueryResult{Found: true, Depth: 0, PathHops: p.nb.Dist(u, target)}
	}
	before := q.pendingQuery + q.pendingReply
	for depth := 1; depth <= p.cfg.Depth; depth++ {
		q.visitGen++
		// The source has already checked its own neighborhood: mark it
		// visited so a contact whose table points back at u does not walk
		// the query home and charge wasted transmissions.
		q.visited[u] = q.visitGen
		if hops, ok := q.dsq(u, target, depth); ok {
			return QueryResult{
				Found:    true,
				Depth:    depth,
				Messages: q.pendingQuery + q.pendingReply - before,
				PathHops: hops,
			}
		}
	}
	return QueryResult{
		Found:    false,
		Messages: q.pendingQuery + q.pendingReply - before,
		PathHops: -1,
	}
}

// dsq delivers a depth-limited DSQ to v's contacts, one at a time. It
// returns the hop length of the found path from v to the target via the
// contact chain. Each contact — and the source itself, stamped per
// escalation in Query — is visited at most once per escalation attempt
// (q.visitGen), preventing the contact graph's cycles from amplifying
// traffic or walking the query back to where it started.
func (q *Querier) dsq(v, target NodeID, depth int) (int, bool) {
	p := q.p
	cs := p.tables[v].Contacts()
	for i := range cs {
		c := &cs[i]
		if q.visited[c.ID] == q.visitGen {
			continue
		}
		q.visited[c.ID] = q.visitGen
		if !q.walkPath(c.Path) {
			continue // stored path broken under mobility: this DSQ dies
		}
		if depth == 1 {
			if p.nb.Contains(c.ID, target) {
				if !p.cfg.DisableReplyCounting {
					q.pendingReply += int64(c.Hops())
				}
				return c.Hops() + p.nb.Dist(c.ID, target), true
			}
			continue
		}
		if sub, found := q.dsq(c.ID, target, depth-1); found {
			if !p.cfg.DisableReplyCounting {
				q.pendingReply += int64(c.Hops())
			}
			return c.Hops() + sub, true
		}
	}
	return 0, false
}

// walkPath mirrors manet.Network.WalkPath for CatQuery traffic but tallies
// into the Querier's local counters: each attempted hop counts one query
// transmission plus its lossy retransmissions, and the walk stops at the
// first hop that is asymmetric, broken, or out of retries. TryHop is a
// pure function of (epoch, edge, attempt), so concurrent Queriers see
// identical outcomes regardless of scheduling.
func (q *Querier) walkPath(path []NodeID) bool {
	net := q.p.net
	for i := 0; i+1 < len(path); i++ {
		att, delivered := net.TryHop(path[i], path[i+1])
		if att > 0 {
			q.pendingQuery++
			q.pendingRetry += int64(att - 1)
		}
		if !delivered {
			return false
		}
	}
	return true
}
