package card

import (
	"reflect"
	"testing"

	"card/internal/manet"
)

func TestMaintainStaticKeepsAllContacts(t *testing.T) {
	net := staticNet(20, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 5, Method: EM}
	p := newProtocol(t, net, cfg, 30)
	p.SelectAll(0)
	before := p.TotalContacts()
	if before == 0 {
		t.Fatal("nothing selected")
	}
	// Sum of path hops of the contacts that will be validated.
	var wantHops int64
	for u := 0; u < net.N(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			wantHops += int64(c.Hops())
		}
	}
	p.MaintainAll(2)
	// Static topology: nothing may be lost. The count may GROW, though:
	// under-NoC tables retry selection with fresh randomness each round
	// (the paper's Fig. 13 shows exactly this creep).
	if got := p.TotalContacts(); got < before {
		t.Errorf("static maintenance lost contacts: %d -> %d", before, got)
	}
	if lost := p.Stats().ContactsLost; lost != 0 {
		t.Errorf("static maintenance lost %d contacts", lost)
	}
	if got := net.Totals().Get(manet.CatValidate); got != wantHops {
		t.Errorf("validate messages = %d, want %d (sum of pre-round path hops)", got, wantHops)
	}
}

func TestMaintainDropsOutOfBoundContacts(t *testing.T) {
	net := lineNet(30)
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM}
	p := newProtocol(t, net, cfg, 31)
	// Inject a fabricated over-long (but hop-valid) contact path 0..12:
	// 12 hops > r=10, must be dropped by rule 4. The slab arena only
	// admits routes within the r-hop bound (the protocol never stores
	// longer ones), so splice the oversized path into the slot directly.
	path := make([]NodeID, 13)
	for i := range path {
		path[i] = NodeID(i)
	}
	p.Table(0).add(Contact{ID: 12, Path: path[:1]})
	p.slots[0].Path = path
	p.Maintain(0, 1)
	for _, c := range p.Table(0).Contacts() {
		if c.ID == 12 {
			t.Fatal("rule 4 did not drop the over-long contact")
		}
	}
	if p.Stats().BoundDrops != 1 {
		t.Errorf("BoundDrops = %d, want 1", p.Stats().BoundDrops)
	}
}

func TestMaintainDropsTooCloseContacts(t *testing.T) {
	net := lineNet(30)
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM}
	p := newProtocol(t, net, cfg, 32)
	// A 3-hop contact: below the EM lower bound 2R=4.
	p.Table(0).add(Contact{ID: 3, Path: []NodeID{0, 1, 2, 3}})
	p.Maintain(0, 1)
	for _, c := range p.Table(0).Contacts() {
		if c.ID == 3 {
			t.Fatal("rule 4 did not drop the too-close contact")
		}
	}
}

func TestMaintainRefillsDeficit(t *testing.T) {
	net := staticNet(22, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 4, Method: EM}
	p := newProtocol(t, net, cfg, 33)
	p.SelectAll(0)
	// Wipe node 0's table and confirm maintenance refills it.
	src := NodeID(0)
	had := p.Table(src).Len()
	if had == 0 {
		t.Skip("node 0 found no contacts in this topology")
	}
	p.Table(src).clear()
	p.Maintain(src, 5)
	if p.Table(src).Len() == 0 {
		t.Error("maintenance did not refill an emptied table")
	}
}

// validateOnce runs one path validation on a fresh maintainer and flushes
// its accounting, so tests observe stats and message totals as the serial
// entry points would produce them. validatePath draws no randomness, so no
// round id is involved.
func validateOnce(p *Protocol, c *Contact) ([]NodeID, bool) {
	m := p.NewMaintainer()
	path, ok := m.validatePath(c)
	m.Flush()
	return path, ok
}

func TestLocalRecoverySplicesPath(t *testing.T) {
	// Hand-built scenario: contact path 0-1-2-3-4-5 where node 2 vanishes
	// (teleports away), but node 1 still reaches node 3 through relay 6
	// within its 2-hop neighborhood (1-6 and 6-3 are both ~14.1 m < 15 m).
	//
	//   row:   0(0,0) 1(10,0) 2(20,0) 3(30,0) 4(40,0) 5(50,0)
	//   relay: 6(20,10)
	net := customNet(t, [][2]float64{
		{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0},
		{20, 10},
	})
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM, ValidatePeriod: 1}
	p := newProtocol(t, net, cfg, 34)
	c := &Contact{ID: 5, Path: []NodeID{0, 1, 2, 3, 4, 5}}
	p.Table(0).add(*c)

	// Break the path: move node 2 far away.
	teleport(net, 2, 500, 500)

	newPath, ok := validateOnce(p, c)
	if !ok {
		t.Fatal("local recovery failed despite available relays")
	}
	checkPathValid(t, net, newPath)
	if newPath[0] != 0 || newPath[len(newPath)-1] != 5 {
		t.Fatalf("recovered path endpoints wrong: %v", newPath)
	}
	if p.Stats().Recoveries == 0 {
		t.Error("recovery not recorded in stats")
	}
	if net.Totals().Get(manet.CatRecovery) == 0 {
		t.Error("recovery hops not counted")
	}
}

func TestLocalRecoverySkipsToLaterPathNodes(t *testing.T) {
	// Node 2 AND node 3 vanish; node 1's neighborhood (R=3) still contains
	// node 4 via relays 6 and 7, so recovery should skip both missing hops.
	//
	//   row:    0(0,0) 1(10,0) 2(20,0) 3(30,0) 4(40,0) 5(50,0)
	//   relays: 6(20,10) 7(30,10)   — 1-6, 6-7, 7-4 all within 15 m
	net := customNet(t, [][2]float64{
		{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0},
		{20, 10}, {30, 10},
	})
	cfg := Config{R: 3, MaxContactDist: 10, NoC: 1, Method: EM}
	p := newProtocol(t, net, cfg, 35)
	c := &Contact{ID: 5, Path: []NodeID{0, 1, 2, 3, 4, 5}}
	p.Table(0).add(*c)
	teleport(net, 2, 500, 500)
	teleport(net, 3, 500, 400)

	newPath, ok := validateOnce(p, c)
	if !ok {
		t.Fatal("recovery failed despite a relay route around two missing hops")
	}
	checkPathValid(t, net, newPath)
	for _, n := range newPath {
		if n == 2 || n == 3 {
			t.Fatalf("recovered path still contains vanished node: %v", newPath)
		}
	}
}

func TestLocalRecoverySpliceCompactsLoops(t *testing.T) {
	// Geometry forcing the recovery splice to double back through a node
	// already on the rebuilt prefix. Contact path 0-1-2-3; node 2 vanishes.
	// Node 1 cannot reach 3 directly (16 m > 15 m), and its only route to 3
	// goes back through 0 and relay 4: splicing [1,0,4,3] onto the prefix
	// [0,1] yields the self-intersecting route 0-1-0-4-3, which inflated
	// Hops() from 2 to 4 before compaction.
	//
	//   0(0,0) — 1(12,0) — 2(18,-8) — 3(12,-16)
	//   relay 4(0,-13): 0-4 = 13 m, 4-3 = 12.4 m
	net := customNet(t, [][2]float64{
		{0, 0}, {12, 0}, {18, -8}, {12, -16},
		{0, -13},
	})
	cfg := Config{R: 3, MaxContactDist: 10, NoC: 1, Method: EM}
	p := newProtocol(t, net, cfg, 37)
	c := &Contact{ID: 3, Path: []NodeID{0, 1, 2, 3}}
	p.Table(0).add(*c)
	teleport(net, 2, 500, 500)

	newPath, ok := validateOnce(p, c)
	if !ok {
		t.Fatal("recovery failed despite relay route 1-0-4-3")
	}
	checkPathValid(t, net, newPath)
	if !pathIsSimple(newPath) {
		t.Fatalf("recovered path self-intersects: %v", newPath)
	}
	if newPath[0] != 0 || newPath[len(newPath)-1] != 3 {
		t.Fatalf("recovered path endpoints wrong: %v", newPath)
	}
	if want := []NodeID{0, 4, 3}; !reflect.DeepEqual(newPath, want) {
		t.Fatalf("recovered path = %v, want %v (loop through 0 compacted)", newPath, want)
	}
	if p.Stats().Recoveries == 0 {
		t.Error("recovery not recorded in stats")
	}
}

func TestDisableLocalRecoveryLosesContact(t *testing.T) {
	net := customNet(t, [][2]float64{
		{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0},
		{20, 10},
	})
	cfg := Config{R: 2, MaxContactDist: 10, NoC: 1, Method: EM, DisableLocalRecovery: true}
	p := newProtocol(t, net, cfg, 36)
	c := &Contact{ID: 5, Path: []NodeID{0, 1, 2, 3, 4, 5}}
	p.Table(0).add(*c)
	teleport(net, 2, 500, 500)
	if _, ok := validateOnce(p, c); ok {
		t.Fatal("recovery disabled but path still validated")
	}
	if p.Stats().RecoveryFailures != 1 {
		t.Errorf("RecoveryFailures = %d, want 1", p.Stats().RecoveryFailures)
	}
}

func TestMaintainUnderMobilityKeepsPathsValid(t *testing.T) {
	net := mobileNet(t, 40, 250, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 5, Method: EM, ValidatePeriod: 1}
	p := newProtocol(t, net, cfg, 41)
	p.SelectAll(0)
	for step := 1; step <= 10; step++ {
		tm := float64(step)
		net.RefreshAt(tm)
		p.MaintainAll(tm)
		// Every surviving contact path must be valid on the snapshot its
		// maintenance round just validated against.
		for u := 0; u < net.N(); u++ {
			for _, c := range p.Table(NodeID(u)).Contacts() {
				if c.LastValidated != tm {
					t.Fatalf("t=%v: contact %d of node %d not revalidated", tm, c.ID, u)
				}
				checkPathValid(t, net, c.Path)
				if c.Hops() > cfg.MaxContactDist || c.Hops() < 2*cfg.R {
					t.Fatalf("t=%v: contact hops %d outside bounds", tm, c.Hops())
				}
			}
		}
	}
	st := p.Stats()
	if st.Recoveries == 0 {
		t.Error("10 s of RWP mobility triggered no local recoveries")
	}
	if st.ContactsLost == 0 {
		t.Error("10 s of RWP mobility lost no contacts at all (suspicious)")
	}
}
