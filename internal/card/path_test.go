package card

import (
	"testing"
	"testing/quick"

	"card/internal/xrand"
)

func TestCompactLoops(t *testing.T) {
	cases := []struct {
		in, want []NodeID
	}{
		{nil, nil},
		{[]NodeID{7}, []NodeID{7}},
		{[]NodeID{1, 2, 3}, []NodeID{1, 2, 3}},
		// One revisit: the detour 2-3 is cut.
		{[]NodeID{1, 2, 3, 2, 4}, []NodeID{1, 2, 4}},
		// Walk that returns to the source and leaves again.
		{[]NodeID{1, 2, 1, 3}, []NodeID{1, 3}},
		// Overlapping loops: each revisit cuts back to the surviving
		// occurrence, and 2 (cut with the 2-3-1 detour) may legitimately
		// reappear later.
		{[]NodeID{0, 1, 2, 3, 1, 4, 2, 5}, []NodeID{0, 1, 4, 2, 5}},
		// Path collapsing to its endpoint.
		{[]NodeID{5, 6, 5}, []NodeID{5}},
	}
	for _, c := range cases {
		in := append([]NodeID(nil), c.in...)
		got := compactLoops(in)
		if len(got) != len(c.want) {
			t.Errorf("compactLoops(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("compactLoops(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// TestCompactLoopsProperties checks the three guarantees downstream code
// relies on: the result is simple, keeps the endpoints, and uses only hops
// of the input (so hop-validity is preserved).
func TestCompactLoopsProperties(t *testing.T) {
	f := func(seed uint64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := 1 + int(lenRaw%20)
		in := make([]NodeID, n)
		for i := range in {
			in[i] = NodeID(rng.Intn(8)) // small alphabet forces collisions
		}
		hops := map[[2]NodeID]bool{}
		for i := 0; i+1 < len(in); i++ {
			hops[[2]NodeID{in[i], in[i+1]}] = true
		}
		out := compactLoops(append([]NodeID(nil), in...))
		if !pathIsSimple(out) {
			return false
		}
		if out[0] != in[0] || out[len(out)-1] != in[n-1] {
			return false
		}
		for i := 0; i+1 < len(out); i++ {
			if !hops[[2]NodeID{out[i], out[i+1]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPathHygieneUnderMobility is the stored-path property test: across a
// mobile run with all three methods, every contact path — as selected and
// as re-validated/re-spliced by maintenance — is a simple source route
// that is hop-adjacent under the snapshot its round validated against.
func TestPathHygieneUnderMobility(t *testing.T) {
	for _, method := range []Method{EM, PM1, PM2} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := mobileNet(t, 50+uint64(method), 250, 50)
			cfg := Config{R: 3, MaxContactDist: 16, NoC: 5, Method: method, ValidatePeriod: 1}
			p := newProtocol(t, net, cfg, 60+uint64(method))
			p.SelectAll(0)
			check := func(tm float64) {
				for u := 0; u < net.N(); u++ {
					for _, c := range p.Table(NodeID(u)).Contacts() {
						if !pathIsSimple(c.Path) {
							t.Fatalf("t=%v node %d: stored path self-intersects: %v", tm, u, c.Path)
						}
						checkPathValid(t, net, c.Path)
						if c.Path[0] != NodeID(u) || c.Path[len(c.Path)-1] != c.ID {
							t.Fatalf("t=%v node %d: bad endpoints %v", tm, u, c.Path)
						}
					}
				}
			}
			check(0)
			for step := 1; step <= 8; step++ {
				tm := float64(step)
				net.RefreshAt(tm)
				p.MaintainAll(tm)
				check(tm)
			}
			if p.Stats().Recoveries == 0 {
				t.Error("mobility triggered no recoveries; property not exercised")
			}
		})
	}
}
