package card

import (
	"testing"
	"testing/quick"

	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/xrand"
)

func TestNewRejectsRadiusMismatch(t *testing.T) {
	net := staticNet(1, 50, 50)
	nb := neighborhood.NewOracle(net, 3)
	_, err := New(net, nb, Config{R: 4, MaxContactDist: 10}, xrand.New(1))
	if err == nil {
		t.Error("radius mismatch accepted")
	}
}

func TestSelectRespectsNoC(t *testing.T) {
	net := staticNet(2, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 20, NoC: 3, Method: EM}
	p := newProtocol(t, net, cfg, 7)
	p.SelectAll(0)
	for u := 0; u < net.N(); u++ {
		if got := p.Table(NodeID(u)).Len(); got > 3 {
			t.Fatalf("node %d has %d contacts, NoC=3", u, got)
		}
	}
}

func TestSelectEMInvariants(t *testing.T) {
	net := staticNet(3, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 6, Method: EM}
	p := newProtocol(t, net, cfg, 8)
	p.SelectAll(0)
	nb := p.Neighborhood()
	g := net.Graph()
	total := 0
	for u := 0; u < net.N(); u++ {
		src := NodeID(u)
		tab := p.Table(src)
		for _, c := range tab.Contacts() {
			total++
			// Path structure: starts at owner, ends at contact, hop-valid.
			if c.Path[0] != src || c.Path[len(c.Path)-1] != c.ID {
				t.Fatalf("node %d contact %d: bad path endpoints %v", u, c.ID, c.Path)
			}
			checkPathValid(t, net, c.Path)
			if !pathIsSimple(c.Path) {
				t.Fatalf("node %d contact %d: path self-intersects: %v", u, c.ID, c.Path)
			}
			// Walk length within (2R, r].
			if c.Hops() <= 2*cfg.R || c.Hops() > cfg.MaxContactDist {
				t.Fatalf("node %d contact %d: hops %d outside (2R, r]", u, c.ID, c.Hops())
			}
			// EM guarantee: true hop distance > 2R (Fig. 1(b) non-overlap).
			bfs := g.BFS(src)
			if int(bfs.Dist[c.ID]) <= 2*cfg.R {
				t.Fatalf("node %d contact %d: true distance %d <= 2R", u, c.ID, bfs.Dist[c.ID])
			}
			// Non-overlap with the source's neighborhood.
			if neighborhood.Overlaps(nb, src, c.ID) {
				t.Fatalf("node %d contact %d: neighborhoods overlap", u, c.ID)
			}
		}
		// The Contact_List check guarantees contacts are pairwise more than
		// R hops apart (no contact lies in another's neighborhood). Note it
		// does NOT guarantee their neighborhoods are disjoint — the paper's
		// mechanism only checks membership, not 2R separation, between
		// contacts.
		cs := tab.Contacts()
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if nb.Contains(cs[i].ID, cs[j].ID) || nb.Contains(cs[j].ID, cs[i].ID) {
					t.Fatalf("node %d: contacts %d and %d within R hops of each other",
						u, cs[i].ID, cs[j].ID)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no contacts selected anywhere — network too sparse for the test")
	}
}

func TestSelectPM1Invariants(t *testing.T) {
	net := staticNet(4, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 6, Method: PM1}
	p := newProtocol(t, net, cfg, 9)
	p.SelectAll(0)
	g := net.Graph()
	found := 0
	for u := 0; u < net.N(); u++ {
		src := NodeID(u)
		for _, c := range p.Table(src).Contacts() {
			found++
			checkPathValid(t, net, c.Path)
			if !pathIsSimple(c.Path) {
				t.Fatalf("PM1 stored path self-intersects: %v", c.Path)
			}
			if c.Hops() <= cfg.R || c.Hops() > cfg.MaxContactDist {
				t.Fatalf("PM1 contact hops %d outside (R, r]", c.Hops())
			}
			// Eligibility ensured source outside contact's neighborhood.
			if int(g.BFS(src).Dist[c.ID]) <= cfg.R {
				t.Fatalf("PM1 contact at true distance <= R")
			}
		}
	}
	if found == 0 {
		t.Fatal("PM1 selected nothing")
	}
}

func TestSelectPM2DistanceBand(t *testing.T) {
	net := staticNet(5, 300, 50)
	cfg := Config{R: 3, MaxContactDist: 16, NoC: 6, Method: PM2}
	p := newProtocol(t, net, cfg, 10)
	p.SelectAll(0)
	for u := 0; u < net.N(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			// The acceptance coin is flipped on the raw walk length (only
			// > 2R under eq. 2), but the stored route is the compacted,
			// loop-free path: guaranteed within (R, r] — the eligibility
			// check proves true distance > R, and compaction only shrinks.
			// A net length in (R, 2R] is the PM "lost opportunity" that
			// maintenance rule 4 prunes at the next round.
			if c.Hops() <= cfg.R || c.Hops() > cfg.MaxContactDist {
				t.Fatalf("PM2 stored path length %d outside (R, r]", c.Hops())
			}
			if !pathIsSimple(c.Path) {
				t.Fatalf("PM2 stored path self-intersects: %v", c.Path)
			}
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		nets := [2]*manet.Network{}
		tabs := [2][]NodeID{}
		for i := range nets {
			nets[i] = staticNet(6, 200, 50)
			cfg := Config{R: 3, MaxContactDist: 14, NoC: 4, Method: EM}
			nb := neighborhood.NewOracle(nets[i], cfg.R)
			p, err := New(nets[i], nb, cfg, xrand.New(77))
			if err != nil {
				t.Fatal(err)
			}
			p.SelectAll(0)
			for u := 0; u < nets[i].N(); u++ {
				tabs[i] = append(tabs[i], p.Table(NodeID(u)).IDs()...)
			}
		}
		if len(tabs[0]) != len(tabs[1]) {
			t.Fatalf("different contact counts across identical runs: %d vs %d", len(tabs[0]), len(tabs[1]))
		}
		for i := range tabs[0] {
			if tabs[0][i] != tabs[1][i] {
				t.Fatalf("contact tables differ at %d", i)
			}
		}
		if nets[0].Totals() != nets[1].Totals() {
			t.Fatalf("message counters differ across identical runs")
		}
	}
}

func TestSelectCountsMessages(t *testing.T) {
	net := staticNet(7, 250, 50)
	cfg := Config{R: 3, MaxContactDist: 14, NoC: 4, Method: EM}
	p := newProtocol(t, net, cfg, 11)
	p.SelectAll(0)
	if net.Totals().Get(manet.CatCSQ) == 0 {
		t.Error("selection generated no CSQ messages")
	}
	st := p.Stats()
	if st.CSQLaunched == 0 {
		t.Error("no CSQs launched")
	}
	if st.CSQSucceeded != st.ContactsSelected {
		t.Errorf("CSQSucceeded %d != ContactsSelected %d", st.CSQSucceeded, st.ContactsSelected)
	}
	if st.CSQSucceeded > st.CSQLaunched {
		t.Error("more successes than launches")
	}
}

func TestPMBacktracksMoreThanEM(t *testing.T) {
	// The paper's Fig. 4 headline: the probabilistic method pays far more
	// backtracking than the edge method. Replicate the figure's setup
	// (500 nodes, 710x710 m, 50 m range, R=3, r=20) over two seeds.
	var pmBack, emBack int64
	for seed := uint64(0); seed < 2; seed++ {
		for _, m := range []Method{PM2, EM} {
			net := staticNet(100+seed, 500, 50)
			cfg := Config{R: 3, MaxContactDist: 20, NoC: 5, Method: m}
			p := newProtocol(t, net, cfg, 200+seed)
			p.SelectAll(0)
			if m == EM {
				emBack += net.Totals().Get(manet.CatBacktrack)
			} else {
				pmBack += net.Totals().Get(manet.CatBacktrack)
			}
		}
	}
	if pmBack <= emBack {
		t.Errorf("PM backtracking (%d) not greater than EM (%d)", pmBack, emBack)
	}
}

func TestSelectOnDisconnectedNodeIsGraceful(t *testing.T) {
	// A node with no edge nodes (isolated or tiny component) selects nothing.
	net := lineNet(2) // 2-node path, R=3 covers everything: no edge nodes
	cfg := Config{R: 3, MaxContactDist: 8, NoC: 4, Method: EM}
	p := newProtocol(t, net, cfg, 12)
	added := p.SelectContacts(0, 0)
	if added != 0 || p.Table(0).Len() != 0 {
		t.Errorf("selected %d contacts on a 2-node network", added)
	}
}

func TestSelectSaturatesBelowNoC(t *testing.T) {
	// With r barely above 2R the eligible band is thin: far fewer contacts
	// than NoC must be found (the paper's saturation argument, Fig. 7).
	net := staticNet(8, 300, 50)
	tight := Config{R: 3, MaxContactDist: 7, NoC: 12, Method: EM}
	p := newProtocol(t, net, tight, 13)
	p.SelectAll(0)
	mean := float64(p.TotalContacts()) / float64(net.N())
	if mean >= 6 {
		t.Errorf("tight band selected %.1f contacts/node on average; expected far below NoC=12", mean)
	}

	wide := Config{R: 3, MaxContactDist: 20, NoC: 12, Method: EM}
	net2 := staticNet(8, 300, 50)
	p2 := newProtocol(t, net2, wide, 13)
	p2.SelectAll(0)
	if p2.TotalContacts() <= p.TotalContacts() {
		t.Errorf("wider band (r=20: %d) selected no more contacts than tight (r=7: %d)",
			p2.TotalContacts(), p.TotalContacts())
	}
}

func TestContactDistancesSorted(t *testing.T) {
	net := staticNet(9, 200, 50)
	cfg := Config{R: 2, MaxContactDist: 12, NoC: 4, Method: EM}
	p := newProtocol(t, net, cfg, 14)
	p.SelectAll(0)
	ds := p.ContactDistances()
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatal("ContactDistances not sorted")
		}
	}
}

func TestQuickSelectInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 100 + rng.Intn(150)
		net := staticNet(seed, n, 55)
		method := Method(rng.Intn(3))
		r1 := 2 + rng.Intn(2)        // R in {2,3}
		rr := 2*r1 + 2 + rng.Intn(8) // r in [2R+2, 2R+9]
		noc := 1 + rng.Intn(6)       // NoC in [1,6]
		cfg := Config{R: r1, MaxContactDist: rr, NoC: noc, Method: method}
		nb := neighborhood.NewOracle(net, r1)
		p, err := New(net, nb, cfg, xrand.New(seed+5))
		if err != nil {
			return false
		}
		p.SelectAll(0)
		// The stored (loop-free) path length floor: EM's edge-list
		// exclusion proves true distance > 2R, while the PM methods only
		// prove > R — their raw walk cleared the method's band, but the
		// compacted route may net shorter (rule 4 prunes it next round).
		lo := r1 + 1
		if method == EM {
			lo = 2*r1 + 1
		}
		for u := 0; u < n; u++ {
			tab := p.Table(NodeID(u))
			if tab.Len() > noc {
				return false
			}
			for _, c := range tab.Contacts() {
				if c.Hops() < lo || c.Hops() > rr {
					return false
				}
				if !pathIsSimple(c.Path) {
					return false
				}
				if c.Path[0] != NodeID(u) || c.Path[len(c.Path)-1] != c.ID {
					return false
				}
				for i := 0; i+1 < len(c.Path); i++ {
					if !net.Adjacent(c.Path[i], c.Path[i+1]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
