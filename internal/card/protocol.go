package card

import (
	"fmt"
	"sort"

	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Contact is one entry of a node's contact table: a distant node plus the
// source route leading to it.
type Contact struct {
	// ID is the contact node.
	ID NodeID
	// Path is the source route owner→contact, inclusive of both endpoints.
	// It is the path the CSQ traveled (spliced by local recovery over time),
	// not necessarily a shortest path.
	Path []NodeID
	// SelectedAt is the simulation time the contact was chosen.
	SelectedAt float64
	// LastValidated is the simulation time the path last validated.
	LastValidated float64
}

// Hops returns the source-route length to the contact.
func (c *Contact) Hops() int { return len(c.Path) - 1 }

// Table is one node's contact table.
type Table struct {
	owner    NodeID
	contacts []*Contact
}

// Owner returns the owning node.
func (t *Table) Owner() NodeID { return t.owner }

// Contacts returns the live contacts in selection order. Callers must not
// mutate the slice.
func (t *Table) Contacts() []*Contact { return t.contacts }

// Len returns the number of live contacts.
func (t *Table) Len() int { return len(t.contacts) }

// IDs returns the contact node ids in selection order.
func (t *Table) IDs() []NodeID {
	ids := make([]NodeID, len(t.contacts))
	for i, c := range t.contacts {
		ids[i] = c.ID
	}
	return ids
}

func (t *Table) add(c *Contact) { t.contacts = append(t.contacts, c) }

func (t *Table) removeAt(i int) {
	t.contacts = append(t.contacts[:i], t.contacts[i+1:]...)
}

// Protocol is a CARD instance covering every node of a network. All nodes
// share one protocol object (the simulator's bird's-eye view); per-node
// state lives in the tables.
//
// A Protocol's serial entry points (SelectContacts/SelectAll, Maintain/
// MaintainAll, Query) are single-goroutine, like the Network they run on.
// Concurrency happens through per-worker executors: [Querier] for the
// read-only query fan-out, [Maintainer] for sharded selection/maintenance
// rounds. All mutable round scratch lives in those executors; the Protocol
// itself holds only the tables, the run-seed lineage and the aggregated
// statistics.
type Protocol struct {
	cfg    Config
	net    *manet.Network
	nb     neighborhood.Provider
	rng    *xrand.Rand // stream lineage only; rounds draw from (node, round) substreams
	tables []*Table

	// round numbers the selection/maintenance rounds for RNG stream
	// derivation: round k gives node u the substream (u, k) of rng's
	// lineage. Serial and sharded rounds allocate ids identically (one per
	// round), which is what pins them bit-identical.
	round uint64

	// maint serves the serial SelectContacts/Maintain entry points.
	maint *Maintainer
	// querier serves the serial Protocol.Query entry point.
	querier *Querier

	// Selection statistics beyond raw message counts.
	stats Stats
}

// Stats aggregates protocol-level events that message counters cannot
// express.
type Stats struct {
	// CSQLaunched counts contact-selection walks started.
	CSQLaunched int64
	// CSQSucceeded counts walks that returned a contact.
	CSQSucceeded int64
	// ContactsSelected counts contacts ever admitted to a table.
	ContactsSelected int64
	// ContactsLost counts contacts dropped by maintenance.
	ContactsLost int64
	// Recoveries counts successful local-recovery splices.
	Recoveries int64
	// RecoveryFailures counts validation walks abandoned mid-path.
	RecoveryFailures int64
	// BoundDrops counts contacts dropped by maintenance rule 4 (validated
	// path length outside [lower, r]).
	BoundDrops int64
	// ContactsExpired counts contact entries dropped by churn — a table
	// cleared because its owner left the network, or an entry removed
	// because the contact node itself went down. Expiry is bookkeeping,
	// not protocol traffic, so it is counted separately from ContactsLost.
	ContactsExpired int64
}

// add accumulates o into s; used when per-worker Maintainers flush their
// local tallies into the protocol. Every field is a plain sum, so the
// aggregate is independent of flush order.
func (s *Stats) add(o Stats) {
	s.CSQLaunched += o.CSQLaunched
	s.CSQSucceeded += o.CSQSucceeded
	s.ContactsSelected += o.ContactsSelected
	s.ContactsLost += o.ContactsLost
	s.Recoveries += o.Recoveries
	s.RecoveryFailures += o.RecoveryFailures
	s.BoundDrops += o.BoundDrops
	s.ContactsExpired += o.ContactsExpired
}

// New creates a CARD protocol over net using the given neighborhood
// provider. The provider's radius must equal cfg.R.
func New(net *manet.Network, nb neighborhood.Provider, cfg Config, rng *xrand.Rand) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nb.R() != cfg.R {
		return nil, fmt.Errorf("card: neighborhood radius %d != config R %d", nb.R(), cfg.R)
	}
	p := &Protocol{
		cfg:    cfg,
		net:    net,
		nb:     nb,
		rng:    rng,
		tables: make([]*Table, net.N()),
	}
	for i := range p.tables {
		p.tables[i] = &Table{owner: NodeID(i)}
	}
	p.maint = p.NewMaintainer()
	p.querier = p.NewQuerier()
	return p, nil
}

// NextRound allocates the next RNG round id. Every selection or
// maintenance round — serial or sharded — consumes exactly one id, and
// node u draws its round randomness from the substream (u, id), so equal
// round sequences give equal results at any worker count. The engine's
// round fan-out calls this once per round before sharding nodes across
// Maintainers.
func (p *Protocol) NextRound() uint64 {
	r := p.round
	p.round++
	return r
}

// Config returns the active configuration (defaults filled).
func (p *Protocol) Config() Config { return p.cfg }

// Network returns the underlying substrate.
func (p *Protocol) Network() *manet.Network { return p.net }

// Neighborhood returns the neighborhood provider.
func (p *Protocol) Neighborhood() neighborhood.Provider { return p.nb }

// Table returns node u's contact table.
func (p *Protocol) Table(u NodeID) *Table { return p.tables[u] }

// Stats returns a copy of the protocol-level statistics.
func (p *Protocol) Stats() Stats { return p.stats }

// TotalContacts returns the number of live contacts across all tables.
func (p *Protocol) TotalContacts() int {
	n := 0
	for _, t := range p.tables {
		n += t.Len()
	}
	return n
}

// ContactDistances returns the multiset of current contact path lengths,
// sorted ascending. Used by the ablation benches to compare methods.
func (p *Protocol) ContactDistances() []int {
	var ds []int
	for _, t := range p.tables {
		for _, c := range t.contacts {
			ds = append(ds, c.Hops())
		}
	}
	sort.Ints(ds)
	return ds
}
