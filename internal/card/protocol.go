package card

import (
	"fmt"
	"sort"

	"card/internal/bitset"
	"card/internal/manet"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID aliases the topology node index type.
type NodeID = topology.NodeID

// Contact is one entry of a node's contact table: a distant node plus the
// source route leading to it.
type Contact struct {
	// ID is the contact node.
	ID NodeID
	// Path is the source route owner→contact, inclusive of both endpoints.
	// It is the path the CSQ traveled (spliced by local recovery over time),
	// not necessarily a shortest path. For contacts stored in a protocol
	// table the slice aliases the protocol's path arena; treat it as
	// read-only.
	Path []NodeID
	// SelectedAt is the simulation time the contact was chosen.
	SelectedAt float64
	// LastValidated is the simulation time the path last validated.
	LastValidated float64
}

// Hops returns the source-route length to the contact.
func (c *Contact) Hops() int { return len(c.Path) - 1 }

// Table is one node's contact table: a fixed-capacity view over the
// protocol's contact slab. Node u owns slab slots [u·NoC, u·NoC+n): the
// spans of distinct nodes are disjoint, which is what lets per-worker
// Maintainers mutate their shard's tables without locks.
type Table struct {
	owner NodeID
	p     *Protocol
	n     int32 // live contacts in the span
}

// Owner returns the owning node.
func (t *Table) Owner() NodeID { return t.owner }

// base returns the slab index of the table's first slot.
func (t *Table) base() int { return int(t.owner) * t.p.cfg.NoC }

// Contacts returns the live contacts in selection order — a slice of the
// protocol's contact slab. Callers must not mutate it (nor the Path
// slices, which alias the path arena), and must not retain it across a
// maintenance round.
func (t *Table) Contacts() []Contact {
	b := t.base()
	return t.p.slots[b : b+int(t.n) : b+int(t.n)]
}

// Len returns the number of live contacts.
func (t *Table) Len() int { return int(t.n) }

// at returns the i-th live contact in place.
func (t *Table) at(i int) *Contact { return &t.p.slots[t.base()+i] }

// AppendIDs appends the contact node ids in selection order to dst and
// returns the extended slice — the allocation-free sibling of IDs for
// hot-path callers with a reusable scratch buffer.
func (t *Table) AppendIDs(dst []NodeID) []NodeID {
	b := t.base()
	for i := 0; i < int(t.n); i++ {
		dst = append(dst, t.p.slots[b+i].ID)
	}
	return dst
}

// IDs returns the contact node ids in selection order.
func (t *Table) IDs() []NodeID {
	return t.AppendIDs(make([]NodeID, 0, t.n))
}

// add appends c to the table, copying c.Path into the slot's arena
// segment. The capacity is exactly NoC — selection never over-fills a
// table, and the fixed per-node spans are what keep parallel rounds
// race-free — so overflow is a protocol bug, not a growth event.
func (t *Table) add(c Contact) {
	if int(t.n) >= t.p.cfg.NoC {
		panic("card: contact table overflow")
	}
	slot := t.base() + int(t.n)
	t.p.slots[slot] = Contact{
		ID:            c.ID,
		Path:          t.p.setSeg(slot, c.Path),
		SelectedAt:    c.SelectedAt,
		LastValidated: c.LastValidated,
	}
	t.n++
}

// setPath replaces contact i's stored route with path (copied into the
// slot's arena segment). path must not alias the slot's own segment.
func (t *Table) setPath(i int, path []NodeID) {
	slot := t.base() + i
	t.p.slots[slot].Path = t.p.setSeg(slot, path)
}

// removeAt deletes contact i, preserving selection order: later contacts
// shift down one slot, their paths copied into the vacated arena segments.
func (t *Table) removeAt(i int) {
	b := t.base()
	for j := i; j < int(t.n)-1; j++ {
		next := t.p.slots[b+j+1]
		next.Path = t.p.setSeg(b+j, next.Path)
		t.p.slots[b+j] = next
	}
	t.n--
	t.p.slots[b+int(t.n)] = Contact{}
}

// clear drops every contact.
func (t *Table) clear() {
	b := t.base()
	for i := 0; i < int(t.n); i++ {
		t.p.slots[b+i] = Contact{}
	}
	t.n = 0
}

// Protocol is a CARD instance covering every node of a network. All nodes
// share one protocol object (the simulator's bird's-eye view); per-node
// state lives in the tables.
//
// A Protocol's serial entry points (SelectContacts/SelectAll, Maintain/
// MaintainAll, Query) are single-goroutine, like the Network they run on.
// Concurrency happens through per-worker executors: [Querier] for the
// read-only query fan-out, [Maintainer] for sharded selection/maintenance
// rounds. All mutable round scratch lives in those executors; the Protocol
// itself holds only the tables, the run-seed lineage and the aggregated
// statistics.
type Protocol struct {
	cfg Config
	net *manet.Network
	nb  neighborhood.Provider
	rng *xrand.Rand // stream lineage only; rounds draw from (node, round) substreams

	// Flat-slab contact storage: tables[u] is a view over slots
	// [u·NoC, (u+1)·NoC), and slot s stores its source route in the arena
	// segment pathArena[s·pathCap : (s+1)·pathCap]. Contact values and
	// their routes for the whole network live in two contiguous
	// allocations — no per-contact pointers, nothing for the GC to chase,
	// and a maintenance round walks memory linearly. pathCap is
	// MaxContactDist+1: stored routes are loop-compacted and bound-checked
	// to at most r hops before they are admitted.
	tables    []Table
	slots     []Contact
	pathArena []NodeID
	pathCap   int

	// departed is the churn-expiry scratch (see ExpireNodes); lazily
	// allocated, cleared by removing only the bits it set. affected is the
	// shrunk-owner list the same call returns.
	departed *bitset.Set
	affected []NodeID

	// round numbers the selection/maintenance rounds for RNG stream
	// derivation: round k gives node u the substream (u, k) of rng's
	// lineage. Serial and sharded rounds allocate ids identically (one per
	// round), which is what pins them bit-identical.
	round uint64

	// maint serves the serial SelectContacts/Maintain entry points.
	maint *Maintainer
	// querier serves the serial Protocol.Query entry point.
	querier *Querier

	// Selection statistics beyond raw message counts.
	stats Stats
}

// Stats aggregates protocol-level events that message counters cannot
// express.
type Stats struct {
	// CSQLaunched counts contact-selection walks started.
	CSQLaunched int64
	// CSQSucceeded counts walks that returned a contact.
	CSQSucceeded int64
	// ContactsSelected counts contacts ever admitted to a table.
	ContactsSelected int64
	// ContactsLost counts contacts dropped by maintenance.
	ContactsLost int64
	// Recoveries counts successful local-recovery splices.
	Recoveries int64
	// RecoveryFailures counts validation walks abandoned mid-path.
	RecoveryFailures int64
	// BoundDrops counts contacts dropped by maintenance rule 4 (validated
	// path length outside [lower, r]).
	BoundDrops int64
	// ContactsExpired counts contact entries dropped by churn — a table
	// cleared because its owner left the network, or an entry removed
	// because the contact node itself went down. Expiry is bookkeeping,
	// not protocol traffic, so it is counted separately from ContactsLost.
	ContactsExpired int64
}

// add accumulates o into s; used when per-worker Maintainers flush their
// local tallies into the protocol. Every field is a plain sum, so the
// aggregate is independent of flush order.
func (s *Stats) add(o Stats) {
	s.CSQLaunched += o.CSQLaunched
	s.CSQSucceeded += o.CSQSucceeded
	s.ContactsSelected += o.ContactsSelected
	s.ContactsLost += o.ContactsLost
	s.Recoveries += o.Recoveries
	s.RecoveryFailures += o.RecoveryFailures
	s.BoundDrops += o.BoundDrops
	s.ContactsExpired += o.ContactsExpired
}

// New creates a CARD protocol over net using the given neighborhood
// provider. The provider's radius must equal cfg.R.
func New(net *manet.Network, nb neighborhood.Provider, cfg Config, rng *xrand.Rand) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nb.R() != cfg.R {
		return nil, fmt.Errorf("card: neighborhood radius %d != config R %d", nb.R(), cfg.R)
	}
	n := net.N()
	p := &Protocol{
		cfg:       cfg,
		net:       net,
		nb:        nb,
		rng:       rng,
		tables:    make([]Table, n),
		slots:     make([]Contact, n*cfg.NoC),
		pathArena: make([]NodeID, n*cfg.NoC*(cfg.MaxContactDist+1)),
		pathCap:   cfg.MaxContactDist + 1,
	}
	for i := range p.tables {
		p.tables[i] = Table{owner: NodeID(i), p: p}
	}
	p.maint = p.NewMaintainer()
	p.querier = p.NewQuerier()
	return p, nil
}

// setSeg copies path into slot's arena segment and returns the stored
// slice (capacity-clamped so appends cannot scribble the next segment).
// Stored routes never exceed pathCap nodes: walk acceptance bounds them to
// r hops and maintenance re-admission bound-checks the compacted length.
func (p *Protocol) setSeg(slot int, path []NodeID) []NodeID {
	if len(path) > p.pathCap {
		panic(fmt.Sprintf("card: route of %d nodes exceeds arena segment %d", len(path), p.pathCap))
	}
	seg := p.pathArena[slot*p.pathCap : slot*p.pathCap+len(path) : (slot+1)*p.pathCap]
	copy(seg, path)
	return seg[:len(path):len(path)]
}

// NextRound allocates the next RNG round id. Every selection or
// maintenance round — serial or sharded — consumes exactly one id, and
// node u draws its round randomness from the substream (u, id), so equal
// round sequences give equal results at any worker count. The engine's
// round fan-out calls this once per round before sharding nodes across
// Maintainers.
func (p *Protocol) NextRound() uint64 {
	r := p.round
	p.round++
	return r
}

// Config returns the active configuration (defaults filled).
func (p *Protocol) Config() Config { return p.cfg }

// Network returns the underlying substrate.
func (p *Protocol) Network() *manet.Network { return p.net }

// Neighborhood returns the neighborhood provider.
func (p *Protocol) Neighborhood() neighborhood.Provider { return p.nb }

// Table returns node u's contact table.
func (p *Protocol) Table(u NodeID) *Table { return &p.tables[u] }

// Stats returns a copy of the protocol-level statistics.
func (p *Protocol) Stats() Stats { return p.stats }

// TotalContacts returns the number of live contacts across all tables.
func (p *Protocol) TotalContacts() int {
	n := 0
	for i := range p.tables {
		n += int(p.tables[i].n)
	}
	return n
}

// ContactDistances returns the multiset of current contact path lengths,
// sorted ascending. Used by the ablation benches to compare methods.
func (p *Protocol) ContactDistances() []int {
	var ds []int
	for i := range p.tables {
		for _, c := range p.tables[i].Contacts() {
			ds = append(ds, c.Hops())
		}
	}
	sort.Ints(ds)
	return ds
}
