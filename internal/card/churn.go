package card

import "card/internal/bitset"

// ExpireNodes processes a batch of nodes leaving the network (churn): each
// departed node's own contact table is cleared — a device that powers off
// forgets its soft state — and every other table drops its entries whose
// contact *is* a departed node. Entries whose stored path merely passes
// through one are left alone: their owners cannot know an intermediate hop
// vanished until the next validation walk fails, which is exactly how the
// paper's maintenance handles broken paths.
//
// The whole batch costs one pass over the tables (the engine hands over
// every node that went down at a refresh at once), not one per departure.
// All expired entries are counted in Stats.ContactsExpired.
//
// ExpireNodes mutates multiple tables and must only be called from the
// serial engine loop (between rounds), never concurrently with a round
// fan-out or batch queries.
//
// The return value lists every owner whose table shrank (the departed
// nodes themselves included — their tables were cleared), ascending and
// duplicate-free: exactly the nodes whose below-NoC status may have
// flipped, which the engine's deficit list consumes. The slice aliases
// protocol scratch and is valid until the next ExpireNodes call.
func (p *Protocol) ExpireNodes(vs []NodeID) (affected []NodeID) {
	if len(vs) == 0 {
		return nil
	}
	// Membership scratch: a lazily allocated bitset beats the old per-batch
	// map — no allocation per churn event, O(1) probes in the table sweep —
	// and is cleared by removing only the bits this batch set.
	if p.departed == nil {
		p.departed = bitset.New(p.net.N())
	}
	p.affected = p.affected[:0]
	for _, v := range vs {
		p.departed.Add(int(v))
		p.stats.ContactsExpired += int64(p.tables[v].Len())
		p.tables[v].clear()
	}
	for i := range p.tables {
		t := &p.tables[i]
		shrank := p.departed.Contains(i) // cleared above
		for j := 0; j < t.Len(); {
			if p.departed.Contains(int(t.at(j).ID)) {
				t.removeAt(j)
				p.stats.ContactsExpired++
				shrank = true
				continue
			}
			j++
		}
		if shrank {
			p.affected = append(p.affected, NodeID(i))
		}
	}
	for _, v := range vs {
		p.departed.Remove(int(v))
	}
	return p.affected
}

// ExpireNode is ExpireNodes for a single departure.
func (p *Protocol) ExpireNode(v NodeID) { p.ExpireNodes([]NodeID{v}) }

// ResetNode clears node u's contact table without touching other tables:
// a churned node is readmitted cold and re-selects contacts at the next
// round. With the engine's churn wiring the table is normally already
// empty (ExpireNodes cleared it on departure); the reset is the defensive
// half of the contract for callers driving churn by hand. Counted
// expiries only cover entries actually dropped.
//
// Like ExpireNodes, ResetNode is serial-only.
func (p *Protocol) ResetNode(u NodeID) {
	p.stats.ContactsExpired += int64(p.tables[u].Len())
	p.tables[u].clear()
}
