package card

import "testing"

func TestConfigValidateErrors(t *testing.T) {
	cases := []Config{
		{R: 0, MaxContactDist: 10},
		{R: 3, MaxContactDist: 3},
		{R: 3, MaxContactDist: 2},
		{R: 3, MaxContactDist: 10, NoC: -1},
		{R: 3, MaxContactDist: 10, Depth: -2},
		{R: 3, MaxContactDist: 10, ValidatePeriod: -1},
		{R: 3, MaxContactDist: 10, Method: Method(9)},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{R: 3, MaxContactDist: 10}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NoC != 5 || c.Depth != 1 || c.ValidatePeriod != 2 || c.Method != EM {
		t.Errorf("defaults not filled: %+v", c)
	}
}

func TestConfigNoCZeroAllowedExplicitly(t *testing.T) {
	// NoC: the zero value means "default 5"; an explicit 0 is expressed as
	// negative-impossible, so the experiments use NoC from 0 via a sweep
	// that sets Depth etc. Document the behavior: zero -> 5.
	c := Config{R: 3, MaxContactDist: 10, NoC: 0}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NoC != 5 {
		t.Errorf("NoC zero should default to 5, got %d", c.NoC)
	}
}

func TestMethodString(t *testing.T) {
	if PM1.String() != "PM1" || PM2.String() != "PM2" || EM.String() != "EM" {
		t.Error("method names wrong")
	}
	if Method(7).String() != "Method(7)" {
		t.Error("unknown method name wrong")
	}
}

func TestMethodLowerBound(t *testing.T) {
	if got := PM1.lowerBound(3); got != 4 {
		t.Errorf("PM1 lower bound = %d, want 4", got)
	}
	if got := PM2.lowerBound(3); got != 6 {
		t.Errorf("PM2 lower bound = %d, want 6", got)
	}
	if got := EM.lowerBound(3); got != 6 {
		t.Errorf("EM lower bound = %d, want 6", got)
	}
}

func TestAcceptProb(t *testing.T) {
	// eq. 1 shape: P(d=R)=0, P(d=r)=1, linear between.
	if got := acceptProb(3, 3, 20); got != 0 {
		t.Errorf("P at d=lo = %v, want 0", got)
	}
	if got := acceptProb(20, 3, 20); got != 1 {
		t.Errorf("P at d=r = %v, want 1", got)
	}
	mid := acceptProb(11, 3, 20)
	if mid <= 0 || mid >= 1 {
		t.Errorf("P mid-band = %v, want in (0,1)", mid)
	}
	// Clamping below/above the band.
	if got := acceptProb(1, 3, 20); got != 0 {
		t.Errorf("P below band = %v", got)
	}
	if got := acceptProb(30, 3, 20); got != 1 {
		t.Errorf("P above band = %v", got)
	}
	// Degenerate band r <= lo: step function at r.
	if got := acceptProb(5, 6, 6); got != 0 {
		t.Errorf("degenerate below = %v", got)
	}
	if got := acceptProb(6, 6, 6); got != 1 {
		t.Errorf("degenerate at r = %v", got)
	}
	if got := acceptProb(7, 8, 6); got != 1 {
		t.Errorf("degenerate beyond r = %v", got)
	}
}

func TestAcceptProbMonotoneInD(t *testing.T) {
	prev := -1.0
	for d := 0; d <= 25; d++ {
		p := acceptProb(d, 6, 20)
		if p < prev {
			t.Fatalf("acceptProb not monotone at d=%d: %v < %v", d, p, prev)
		}
		prev = p
	}
}
