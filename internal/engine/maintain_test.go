package engine

import (
	"reflect"
	"runtime"
	"testing"

	proto "card/internal/card"
)

// maintSnapshot captures everything the equivalence contract covers:
// every node's contact table (ids, full paths, timestamps), the protocol
// statistics, and the per-category message accounting.
type maintSnapshot struct {
	tables [][]proto.Contact
	stats  proto.Stats
	msgs   MessageCounts
	added  int
	reach  float64
}

// runMaintTrace drives a mobile scenario through initial selection plus
// several scheduled maintenance rounds with the given worker bound and
// GOMAXPROCS, and snapshots the resulting protocol state.
func runMaintTrace(t *testing.T, proactive ProactiveKind, workers, procs int) maintSnapshot {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	nc := testNet(400)
	nc.Mobility = RandomWaypoint
	nc.MinSpeed, nc.MaxSpeed, nc.Pause = 1, 15, 3
	nc.Proactive = proactive
	cfg := testCfg() // ValidatePeriod 2
	e := newEngine(t, nc, cfg)
	e.SetMaintainWorkers(workers)
	s := maintSnapshot{added: e.SelectContacts()}
	e.Advance(8) // four maintenance rounds under mobility
	p := e.Protocol()
	s.tables = make([][]proto.Contact, e.Nodes())
	for u := 0; u < e.Nodes(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			cp := c
			cp.Path = append([]NodeID(nil), c.Path...)
			s.tables[u] = append(s.tables[u], cp)
		}
	}
	s.stats = e.Stats()
	s.msgs = e.Messages()
	s.reach = e.MeanReachability(1)
	return s
}

// TestMaintainParallelEquivalence pins the round fan-out contract:
// bit-identical contact tables, protocol statistics and recorder totals
// between the serial maintenance path and the sharded one, across a
// mobility trace, at GOMAXPROCS 1 and 4 and several worker bounds. Run
// with -race to validate the sharding (CI does).
func TestMaintainParallelEquivalence(t *testing.T) {
	base := runMaintTrace(t, OracleView, 1, 1) // serial reference at GOMAXPROCS=1
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"serial-procs4", 1, 4},
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
		{"auto-procs4", 0, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := runMaintTrace(t, OracleView, c.workers, c.procs)
			if got.added != base.added {
				t.Errorf("initial selection added %d contacts, serial added %d", got.added, base.added)
			}
			if got.stats != base.stats {
				t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
			}
			if got.msgs != base.msgs {
				t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
			}
			if got.reach != base.reach {
				t.Errorf("reachability diverges: %v vs %v", got.reach, base.reach)
			}
			for u := range base.tables {
				if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
					t.Fatalf("node %d contact table diverges:\n got  %+v\n want %+v",
						u, got.tables[u], base.tables[u])
				}
			}
		})
	}
}

// TestMaintainParallelEquivalenceDSDV repeats the contract over the DSDV
// substrate, whose provider facade reads live protocol tables (warmed
// before each fan-out).
func TestMaintainParallelEquivalenceDSDV(t *testing.T) {
	base := runMaintTrace(t, DSDVProtocol, 1, 4)
	got := runMaintTrace(t, DSDVProtocol, 4, 4)
	if got.stats != base.stats {
		t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
	}
	if got.msgs != base.msgs {
		t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
	}
	for u := range base.tables {
		if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
			t.Fatalf("node %d contact table diverges", u)
		}
	}
}

// TestMaintainRoundIdsSharedWithSerial checks that forced rounds through
// the public entry points allocate RNG round ids exactly like the serial
// protocol loop: interleaving Engine.Maintain with direct protocol rounds
// on a twin engine stays in lockstep.
func TestMaintainRoundIdsSharedWithSerial(t *testing.T) {
	build := func() *Engine {
		nc := testNet(200)
		e := newEngine(t, nc, testCfg())
		return e
	}
	a, b := build(), build()
	a.SetMaintainWorkers(4)
	b.SetMaintainWorkers(1)
	a.SelectContacts()
	b.SelectContacts()
	for i := 0; i < 3; i++ {
		a.Maintain()
		b.Maintain()
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverge after interleaved forced rounds:\n a %+v\n b %+v", a.Stats(), b.Stats())
	}
	if a.Messages() != b.Messages() {
		t.Errorf("accounting diverges:\n a %+v\n b %+v", a.Messages(), b.Messages())
	}
}
