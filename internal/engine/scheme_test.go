package engine

import (
	"testing"

	"card/internal/workload"
)

// TestPresetSchemeArms runs the preset-driven scheme arms end to end:
// bordercast and rendezvous each serve a short sustained workload on the
// citywide-rwp-1k preset, and their engine-level message ledgers look the
// way the mechanisms demand — bordercast answers from zone tables and
// never registers; rendezvous pays registration traffic up front.
func TestPresetSchemeArms(t *testing.T) {
	run := func(scheme workload.Scheme) (*workload.Report, MessageCounts) {
		t.Helper()
		p, err := LookupPreset("citywide-rwp-1k")
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.New(1)
		if err != nil {
			t.Fatal(err)
		}
		e.SelectContacts()
		rep, err := e.RunWorkload(workload.Config{
			QPS: 20, Duration: 3, Tick: 0.5,
			Resources: 16, Replicas: 2, Scheme: scheme, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, e.Messages()
	}

	bc, bcMsgs := run(workload.Bordercast)
	if bc.Queries == 0 || bc.Found == 0 {
		t.Fatalf("bordercast arm served nothing: %+v", bc)
	}
	if bcMsgs.Query == 0 {
		t.Error("bordercast arm recorded no query traffic")
	}
	if bcMsgs.Register != 0 {
		t.Errorf("bordercast arm recorded registration traffic: %d", bcMsgs.Register)
	}

	rr, rrMsgs := run(workload.Rendezvous)
	if rr.Queries == 0 || rr.Found == 0 {
		t.Fatalf("rendezvous arm served nothing: %+v", rr)
	}
	if rrMsgs.Register == 0 {
		t.Error("rendezvous arm recorded no registration traffic")
	}
	if rr.Queries != bc.Queries {
		t.Errorf("offered load differs across arms: %d vs %d", rr.Queries, bc.Queries)
	}
}
