package engine

import (
	"testing"

	proto "card/internal/card"
)

func testNet(nodes int) NetworkConfig {
	return NetworkConfig{Nodes: nodes, Width: 710, Height: 710, TxRange: 50, Seed: 7}
}

func testCfg() proto.Config {
	return proto.Config{R: 3, MaxContactDist: 16, NoC: 5, ValidatePeriod: 2}
}

func newEngine(t testing.TB, nc NetworkConfig, cfg proto.Config) *Engine {
	t.Helper()
	e, err := New(nc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAdvanceNonPositiveIsNoOp(t *testing.T) {
	e := newEngine(t, testNet(50), testCfg())
	e.Advance(0)
	e.Advance(-3)
	nan := 0.0
	e.Advance(nan / nan) // NaN
	if e.Now() != 0 || e.Rounds() != 0 {
		t.Errorf("no-op Advance moved state: now=%v rounds=%d", e.Now(), e.Rounds())
	}
}

func TestAdvanceExactBoundary(t *testing.T) {
	nc := testNet(50)
	nc.Mobility = RandomWaypoint
	e := newEngine(t, nc, testCfg()) // period 2
	e.Advance(2)                     // lands exactly on boundary 1: fires
	if e.Rounds() != 1 || e.Now() != 2 {
		t.Fatalf("after Advance(2): rounds=%d now=%v, want 1, 2", e.Rounds(), e.Now())
	}
	e.Advance(1.5) // now 3.5: no boundary
	if e.Rounds() != 1 {
		t.Fatalf("after Advance(1.5): rounds=%d, want 1", e.Rounds())
	}
	e.Advance(0.5) // lands exactly on boundary 2
	if e.Rounds() != 2 || e.Now() != 4 {
		t.Fatalf("after Advance(0.5): rounds=%d now=%v, want 2, 4", e.Rounds(), e.Now())
	}
}

func TestAdvanceMultiPeriod(t *testing.T) {
	nc := testNet(50)
	nc.Mobility = RandomWaypoint
	e := newEngine(t, nc, testCfg()) // period 2
	e.Advance(7)                     // boundaries 2, 4, 6
	if e.Rounds() != 3 || e.Now() != 7 {
		t.Fatalf("after Advance(7): rounds=%d now=%v, want 3, 7", e.Rounds(), e.Now())
	}
}

// expectedRounds counts the maintenance boundaries k with
// float64(k)*period <= now — the drift-free schedule's ground truth.
func expectedRounds(now, period float64) int64 {
	var k int64
	for float64(k+1)*period <= now {
		k++
	}
	return k
}

// TestAdvanceDriftFree advances with awkward (non-representable) periods
// and step sizes and checks the round counter against the integer-indexed
// schedule after every step: no boundary is ever skipped or double-fired.
// The old int(now/period)+1 recurrence fails this under accumulation.
func TestAdvanceDriftFree(t *testing.T) {
	for _, period := range []float64{0.1, 1.0 / 3.0, 0.7, 2} {
		cfg := testCfg()
		cfg.ValidatePeriod = period
		e := newEngine(t, testNet(30), cfg)
		steps := []float64{period, period / 3, 2 * period, period, 0.9999 * period, period / 7, 5 * period}
		for pass := 0; pass < 30; pass++ {
			dt := steps[pass%len(steps)]
			before := e.Rounds()
			e.Advance(dt)
			want := expectedRounds(e.Now(), period)
			if e.Rounds() != want {
				t.Fatalf("period %v: after step %d (dt=%v, now=%v): rounds=%d, want %d",
					period, pass, dt, e.Now(), e.Rounds(), want)
			}
			if e.Rounds() < before {
				t.Fatalf("round counter went backwards")
			}
		}
	}
}

// TestTopologyKindsGiveIdenticalRuns runs the same mobile scenario under
// the incremental, full-rebuild and naive topology paths and demands
// bit-identical protocol behavior: same selections, same message totals,
// same query results for the same seeds.
func TestTopologyKindsGiveIdenticalRuns(t *testing.T) {
	run := func(kind TopologyKind) ([]proto.QueryResult, MessageCounts, float64) {
		nc := testNet(250)
		nc.Mobility = RandomWaypoint
		nc.MinSpeed, nc.MaxSpeed, nc.Pause = 1, 10, 4
		nc.Topology = kind
		e := newEngine(t, nc, testCfg())
		e.SelectContacts()
		e.Advance(5.5)
		pairs := e.RandomPairs(60, 99)
		res := e.BatchQuery(pairs)
		return res, e.Messages(), e.MeanReachability(1)
	}
	incRes, incMsg, incReach := run(SpatialGrid)
	fullRes, fullMsg, fullReach := run(FullRebuild)
	naiveRes, naiveMsg, naiveReach := run(NaiveRebuild)
	if incMsg != fullMsg || fullMsg != naiveMsg {
		t.Errorf("message totals diverge:\n inc   %+v\n full  %+v\n naive %+v", incMsg, fullMsg, naiveMsg)
	}
	if incReach != fullReach || fullReach != naiveReach {
		t.Errorf("reachability diverges: %v %v %v", incReach, fullReach, naiveReach)
	}
	if len(incRes) != len(fullRes) || len(fullRes) != len(naiveRes) {
		t.Fatalf("result counts diverge: %d %d %d", len(incRes), len(fullRes), len(naiveRes))
	}
	for i := range incRes {
		if incRes[i] != fullRes[i] || fullRes[i] != naiveRes[i] {
			t.Fatalf("query %d diverges:\n inc   %+v\n full  %+v\n naive %+v", i, incRes[i], fullRes[i], naiveRes[i])
		}
	}
}

// TestBatchQueryMatchesSequential checks the core BatchQuery contract:
// same results and same message accounting as the serial loop. Run with
// -race to validate the read-only fan-out.
func TestBatchQueryMatchesSequential(t *testing.T) {
	build := func() *Engine {
		nc := testNet(300)
		e := newEngine(t, nc, testCfg())
		e.SelectContacts()
		return e
	}
	a, b := build(), build()
	pairs := a.RandomPairs(200, 5)
	batch := a.BatchQuery(pairs)
	seq := make([]proto.QueryResult, len(pairs))
	for i, p := range pairs {
		seq[i] = b.Query(p.Src, p.Dst)
	}
	for i := range batch {
		if batch[i] != seq[i] {
			t.Fatalf("pair %d: batch %+v != sequential %+v", i, batch[i], seq[i])
		}
	}
	if a.Messages() != b.Messages() {
		t.Errorf("accounting diverges: batch %+v, sequential %+v", a.Messages(), b.Messages())
	}
	// And a second batch on the same engine reproduces itself (scratch
	// state fully resets between queries).
	if again := a.BatchQuery(pairs); len(again) == len(batch) {
		for i := range again {
			if again[i] != batch[i] {
				t.Fatalf("re-run pair %d: %+v != %+v", i, again[i], batch[i])
			}
		}
	}
}

// TestBatchQueryDSDV exercises the fan-out over the DSDV substrate, whose
// Provider facade reads protocol tables rather than oracle views.
func TestBatchQueryDSDV(t *testing.T) {
	nc := testNet(150)
	nc.Proactive = DSDVProtocol
	e := newEngine(t, nc, testCfg())
	e.SelectContacts()
	pairs := e.RandomPairs(80, 3)
	res := e.BatchQuery(pairs)
	found := 0
	for _, r := range res {
		if r.Found {
			found++
		}
	}
	if found == 0 {
		t.Error("no batched queries resolved over the DSDV substrate")
	}
}

func TestBatchQueryEmpty(t *testing.T) {
	e := newEngine(t, testNet(50), testCfg())
	if got := e.BatchQuery(nil); len(got) != 0 {
		t.Errorf("BatchQuery(nil) = %v", got)
	}
}

func TestRandomPairGuards(t *testing.T) {
	// Two nodes far outside radio range: largest component is a singleton.
	nc := NetworkConfig{Nodes: 2, Width: 10000, Height: 10000, TxRange: 1, Seed: 3}
	e := newEngine(t, nc, proto.Config{R: 2, MaxContactDist: 6})
	p, ok := e.RandomPair(1)
	if ok {
		t.Error("degenerate component reported ok")
	}
	if p.Src != p.Dst {
		t.Errorf("degenerate pair = %+v, want src == dst", p)
	}
	if int(p.Src) < 0 || int(p.Src) >= 2 {
		t.Errorf("pair out of range: %+v", p)
	}
	if pairs := e.RandomPairs(10, 1); len(pairs) != 0 {
		t.Errorf("RandomPairs on degenerate component = %v, want empty", pairs)
	}
}

func TestRandomPairDistinct(t *testing.T) {
	e := newEngine(t, testNet(100), testCfg())
	for seed := uint64(0); seed < 50; seed++ {
		p, ok := e.RandomPair(seed)
		if !ok {
			t.Fatalf("seed %d: connected component reported degenerate", seed)
		}
		if p.Src == p.Dst {
			t.Fatalf("seed %d: src == dst == %d", seed, p.Src)
		}
	}
}

func TestPresetsRunnable(t *testing.T) {
	if len(Presets()) < 4 {
		t.Fatalf("expected >= 4 built-in presets, have %d", len(Presets()))
	}
	if _, err := LookupPreset("no-such-preset"); err == nil {
		t.Error("unknown preset lookup succeeded")
	}
	// Build each preset at a reduced node count so the test stays fast;
	// the full sizes are exercised by the scaling benchmarks.
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			nc := p.Net
			nc.Nodes = 120
			nc.Width, nc.Height = nc.Width/4, nc.Height/4
			e, err := New(nc, p.Protocol)
			if err != nil {
				t.Fatal(err)
			}
			e.SelectContacts()
			e.Advance(1)
			if pairs := e.RandomPairs(5, 1); len(pairs) > 0 {
				e.BatchQuery(pairs)
			}
		})
	}
}

func TestSchedulerExposed(t *testing.T) {
	e := newEngine(t, testNet(50), testCfg())
	fired := 0
	e.Scheduler().At(1.5, func(now float64) { fired++ })
	e.Advance(1)
	if fired != 0 {
		t.Fatal("custom event fired early")
	}
	e.Advance(1)
	if fired != 1 {
		t.Fatalf("custom event fired %d times, want 1", fired)
	}
}
