package engine

import "math/bits"

// Dirty-set maintenance (NetworkConfig.DirtyMaintenance): instead of
// re-running selection and maintenance for every node every round, the
// engine tracks which nodes a round could actually affect and restricts
// the round to them.
//
// # The invariant
//
// Call a node u clean for a round when, since the last maintenance round,
// no refresh placed u within max(R, MaxContactDist) hops (on that
// refresh's new snapshot) of a node whose adjacency list changed, and u's
// table holds NoC contacts. For a clean node the round is provably a
// no-op:
//
//   - Every stored source route of u is intact in the current snapshot.
//     Induction over refreshes: suppose u's path p₀…p_k (k ≤ r hops) is
//     intact before refresh j and some link is absent after it. Take the
//     first broken link (p_a, p_{a+1}) in the new snapshot: the prefix
//     p₀…p_a survives, so dist_new(u, p_a) ≤ a ≤ r-1 — and p_a's
//     adjacency list changed at j, so the r-expansion of refresh j's diff
//     reaches u, contradicting cleanliness. An intact path validates to
//     itself (no recovery, no re-splice, same loop-free length, same
//     bound check it already passed), so maintenance rules 1–4 change
//     nothing.
//   - Rule 5 (refill) is a no-op at NoC contacts, and selection rounds
//     skip full tables outright.
//
// The below-NoC half of the round list needs no diff tracking at all: an
// O(N) table-length scan per round catches churn expiry victims, cold
// readmissions, and nodes whose earlier walks failed and that retry with
// fresh randomness every round (the paper's "lost opportunities" — these
// must keep retrying even when nothing moved nearby).
//
// What a dirty round deliberately does NOT reproduce from a full round:
// the CatValidate traffic and LastValidated refresh of clean nodes'
// trivially-successful validation walks. That traffic is the O(N·NoC·r)
// hops per round a mostly-static 100k network would spend confirming
// nothing changed — skipping it is the optimization. On rounds where
// every node is dirty the two regimes are bit-identical, messages
// included (TestDirtyMatchesFullWhenAllDirty pins this).
//
// # Determinism
//
// The round list is ascending in node id (built by one id-order scan),
// each restricted round consumes exactly one RNG round id, and each node
// draws from its own (node, round) substream — so dirty rounds are
// bit-identical serial vs sharded at any worker count, exactly like full
// rounds. The oracle views retained across refreshes are bit-identical
// to freshly computed ones (see neighborhood.Oracle.Retain), so query
// results and walk randomness cannot diverge either.

// noteTopologyChanges folds the refresh's adjacency diff into the dirty
// accumulator and retains the unaffected oracle views. Runs on the serial
// engine loop right after RefreshAt, before any view is read.
func (e *Engine) noteTopologyChanges() {
	changed, all := e.net.AdjacencyChanged()
	if all {
		// Full rebuild (first build or mass movement): every node is dirty
		// and the epoch bump wipes the oracle cache on its own.
		e.dirtyAll = true
		return
	}
	if e.dirtyAll {
		// Already fully dirty; let the oracle wipe at its next read.
		return
	}
	if len(changed) == 0 {
		e.oracle.Retain(nil) // advance the epoch keeping every view
		return
	}
	dirty, retain := e.expandChanges(changed)
	for _, v := range dirty {
		e.dirtyAcc.Add(int(v))
	}
	e.oracle.Retain(retain)
}

// expandChanges runs one multi-source BFS on the current snapshot from
// the adjacency-changed seeds out to max(R, MaxContactDist) hops. It
// returns the full expansion (the nodes to dirty — every stored path
// that could have broken has its owner here, per the package invariant)
// and its ≤R-hop prefix (the nodes whose R-ball may differ, i.e. the
// oracle views to drop). Both slices alias engine scratch, valid until
// the next call.
func (e *Engine) expandChanges(changed []NodeID) (dirty, retain []NodeID) {
	g := e.net.Graph()
	e.dirtyGen++
	gen := e.dirtyGen
	q := e.dirtyQueue[:0]
	for _, c := range changed {
		if e.dirtyStamp[c] != gen {
			e.dirtyStamp[c] = gen
			q = append(q, c)
		}
	}
	maxHops := e.cfg.MaxContactDist
	if e.cfg.R > maxHops {
		maxHops = e.cfg.R
	}
	retainLen := len(q)
	directed := g.Directed()
	head, tail := 0, len(q)
	for d := 1; d <= maxHops; d++ {
		for ; head < tail; head++ {
			for _, y := range g.Neighbors(q[head]) {
				if e.dirtyStamp[y] != gen {
					e.dirtyStamp[y] = gen
					q = append(q, y)
				}
			}
			if directed {
				// Asymmetric links break the invariant's symmetry argument:
				// "u reaches the broken hop's endpoint p_a in ≤ r-1 out-hops"
				// means p_a reaches u over *in*-edges, so the expansion must
				// traverse the union of out- and in-adjacency to cover every
				// affected path owner. On scalar graphs in == out and this
				// loop vanishes.
				for _, y := range g.InNeighbors(q[head]) {
					if e.dirtyStamp[y] != gen {
						e.dirtyStamp[y] = gen
						q = append(q, y)
					}
				}
			}
		}
		tail = len(q)
		if d == e.cfg.R {
			retainLen = len(q)
		}
	}
	e.dirtyQueue = q
	return q, q[:retainLen]
}

// dirtyRoundList builds the ascending-id list of nodes the next
// restricted round must process: accumulated dirty nodes plus every table
// below NoC. The below-NoC half is the incrementally maintained deficit
// bitset (see below), so building the list is a word-level OR of two
// bitsets plus one append per listed node — O(N/64 + |list|), never an
// O(N) table-length scan. Iterating set bits ascending reproduces the old
// scan's id order exactly, and the deficit invariant makes the contents
// bit-identical to it.
func (e *Engine) dirtyRoundList() []NodeID {
	list := e.roundList[:0]
	e.roundSet.CopyFrom(e.dirtyAcc)
	e.roundSet.UnionWith(e.deficit)
	for wi, w := range e.roundSet.Words() {
		base := wi * 64
		for w != 0 {
			list = append(list, NodeID(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	e.roundList = list
	return list
}

// The deficit invariant: e.deficit == {u : Table(u).Len() < NoC} whenever
// a round list is built. Table lengths change at exactly three kinds of
// points, each hooked:
//
//   - rounds (selection refills, maintenance drops/refills) mutate only
//     the tables of the nodes they process — noteRoundTables re-derives
//     membership for that list right after the round joins;
//   - churn expiry (ExpireNodes) clears departed tables and drops their
//     entries from other tables — it reports every shrunk owner, and a
//     shrunk table can only enter the deficit, never leave it;
//   - churn readmission (ResetNode) empties one table — always deficit.
//
// All three run on the serial engine loop, so the bitset needs no locks.
// At construction every table is empty, so the set starts full — which is
// also what makes the t=0 SelectContacts round cover all N nodes, exactly
// like the old scan.

// noteRoundTables re-derives deficit membership for the nodes a round
// just processed (the only tables it can have touched).
func (e *Engine) noteRoundTables(list []NodeID) {
	noc := e.cfg.NoC
	for _, u := range list {
		if e.prot.Table(u).Len() < noc {
			e.deficit.Add(int(u))
		} else {
			e.deficit.Remove(int(u))
		}
	}
}

// noteAllTables is noteRoundTables for a full round (every table).
func (e *Engine) noteAllTables() {
	n := e.net.N()
	noc := e.cfg.NoC
	for i := 0; i < n; i++ {
		if e.prot.Table(NodeID(i)).Len() < noc {
			e.deficit.Add(i)
		} else {
			e.deficit.Remove(i)
		}
	}
}

// LastRoundNodes reports how many nodes the most recent maintenance or
// selection round actually processed: the dirty-list length under
// DirtyMaintenance, the full network size otherwise. The dirty-vs-full
// regression test uses it to prove its scenario keeps every node dirty.
func (e *Engine) LastRoundNodes() int { return e.lastRound }
