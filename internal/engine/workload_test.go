package engine

import (
	"reflect"
	"runtime"
	"testing"

	"card/internal/workload"
)

// workloadTraffic is the traffic shape the equivalence runs use: enough
// arrivals per tick that the fan-out genuinely shards, long enough that
// several maintenance rounds interleave with the stream.
func workloadTraffic(workers int) workload.Config {
	return workload.Config{
		QPS: 30, Duration: 8, Tick: 0.5,
		Resources: 32, Replicas: 2, ZipfS: 0.9,
		Window: 64, Seed: 5, Workers: workers, KeepOutcomes: true,
	}
}

// runWorkloadTrace drives one sustained-traffic run with the given worker
// bound and GOMAXPROCS and snapshots everything the equivalence contract
// covers: the full per-query outcome stream, the aggregate report, and the
// engine's recorder totals (which include the maintenance rounds the
// stream interleaves with).
func runWorkloadTrace(t *testing.T, nc NetworkConfig, workers, procs int) (*workload.Report, MessageCounts) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	e := newEngine(t, nc, testCfg())
	e.SetMaintainWorkers(workers)
	e.SelectContacts()
	rep, err := e.RunWorkload(workloadTraffic(workers))
	if err != nil {
		t.Fatal(err)
	}
	return rep, e.Messages()
}

// TestWorkloadParallelEquivalence pins the sustained-traffic determinism
// contract: the full per-query result stream, the report aggregates and
// the recorder totals are bit-identical between serial and sharded
// execution at GOMAXPROCS 1 and 4 (CI runs it under -race), over a mobile
// scenario and — the adversarial case — over one with node churn, where
// sources and holders flip mid-stream.
func TestWorkloadParallelEquivalence(t *testing.T) {
	mobile := testNet(400)
	mobile.Mobility = RandomWaypoint
	mobile.MinSpeed, mobile.MaxSpeed, mobile.Pause = 1, 15, 3
	scenarios := []struct {
		name string
		nc   NetworkConfig
	}{
		{"mobile", mobile},
		{"churn", churnNet(400)},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base, baseMsgs := runWorkloadTrace(t, sc.nc, 1, 1) // serial reference
			if base.Queries == 0 || base.Found == 0 {
				t.Fatalf("degenerate reference run: %+v", base)
			}
			if sc.name == "churn" && base.SrcDown == 0 {
				t.Fatal("churn scenario dropped no sources; not exercising churn")
			}
			cases := []struct {
				name           string
				workers, procs int
			}{
				{"serial-procs4", 1, 4},
				{"workers4-procs1", 4, 1},
				{"workers4-procs4", 4, 4},
				{"auto-procs4", 0, 4},
			}
			for _, c := range cases {
				c := c
				t.Run(c.name, func(t *testing.T) {
					got, gotMsgs := runWorkloadTrace(t, sc.nc, c.workers, c.procs)
					// The worker bound is the one config field that
					// legitimately differs across the equivalence cases.
					got.Config.Workers = base.Config.Workers
					if gotMsgs != baseMsgs {
						t.Errorf("recorder totals diverge:\n got  %+v\n want %+v", gotMsgs, baseMsgs)
					}
					if !reflect.DeepEqual(got, base) {
						if len(got.Outcomes) != len(base.Outcomes) {
							t.Fatalf("outcome stream length %d != %d", len(got.Outcomes), len(base.Outcomes))
						}
						for i := range got.Outcomes {
							if got.Outcomes[i] != base.Outcomes[i] {
								t.Fatalf("outcome %d diverges:\n got  %+v\n want %+v",
									i, got.Outcomes[i], base.Outcomes[i])
							}
						}
						t.Fatalf("report aggregates diverge:\n got  %+v\n want %+v", got, base)
					}
				})
			}
		})
	}
}

// TestRunWorkloadAdvancesSchedule pins the interleaving: a sustained run
// moves the engine clock by its duration and fires every maintenance
// boundary on the way, exactly as plain Advance would.
func TestRunWorkloadAdvancesSchedule(t *testing.T) {
	nc := testNet(120)
	nc.Mobility = RandomWaypoint
	e := newEngine(t, nc, testCfg()) // ValidatePeriod 2
	e.SelectContacts()
	rep, err := e.RunWorkload(workload.Config{QPS: 20, Duration: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Now() != 9 {
		t.Errorf("clock at %g after a 9 s stream", e.Now())
	}
	if e.Rounds() != 4 {
		t.Errorf("fired %d maintenance rounds, want 4 (period 2 over 9 s)", e.Rounds())
	}
	if rep.Queries == 0 {
		t.Error("stream offered no queries")
	}
	if rep.Outcomes != nil {
		t.Error("outcomes kept without KeepOutcomes")
	}
}

// TestRunWorkloadRejectsBadConfig pins error propagation through the
// engine wrapper.
func TestRunWorkloadRejectsBadConfig(t *testing.T) {
	e := newEngine(t, testNet(50), testCfg())
	if _, err := e.RunWorkload(workload.Config{}); err == nil {
		t.Fatal("zero workload config accepted")
	}
}

// TestPresetTrafficShapes sanity-checks the presets that declare a
// sustained-traffic phase: positive rates and durations, catalogue sized,
// and at least one churn preset under load.
func TestPresetTrafficShapes(t *testing.T) {
	withTraffic := 0
	churned := 0
	for _, p := range Presets() {
		tr := p.Traffic
		if tr.QPS == 0 {
			continue
		}
		withTraffic++
		if tr.Duration <= 0 || tr.Resources <= 0 || tr.Replicas <= 0 {
			t.Errorf("preset %s traffic underspecified: %+v", p.Name, tr)
		}
		if p.Net.ChurnMeanUp > 0 {
			churned++
		}
	}
	if withTraffic < 2 {
		t.Errorf("only %d presets declare sustained traffic", withTraffic)
	}
	if churned == 0 {
		t.Error("no churned preset declares sustained traffic")
	}
}
