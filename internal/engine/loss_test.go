package engine

import (
	"reflect"
	"runtime"
	"testing"

	"card/internal/workload"
)

// lossyNet is the adversarial rich-links scenario: heterogeneous radios
// (directed graph), per-hop loss with a retry budget, scheduled
// partition-and-heal events, node churn, and mobility — every new
// link-layer feature at once.
func lossyNet(nodes int) NetworkConfig {
	return NetworkConfig{
		Nodes: nodes, Width: 600, Height: 600, TxRange: 55,
		Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 12, Pause: 1,
		ChurnMeanUp: 30, ChurnMeanDown: 6,
		RangeSpread: 0.4, Loss: 0.15, LossRetries: 2,
		PartitionPeriod: 6, PartitionDuration: 2,
		Seed: 31,
	}
}

// TestLossyParallelEquivalence pins the determinism contract on the
// richer link layer: over a directed, lossy, partitioning, churning
// scenario, the sustained-traffic outcome stream, the report aggregates
// and the recorder totals (retries included) are bit-identical between
// serial and sharded execution at GOMAXPROCS 1 and 4. Loss outcomes are a
// pure function of (epoch, edge, attempt), so no scheduling order can
// leak in; CI runs this under -race.
func TestLossyParallelEquivalence(t *testing.T) {
	traffic := func(workers int) workload.Config {
		return workload.Config{
			QPS: 30, Duration: 5, Tick: 0.5,
			Resources: 24, Replicas: 2, ZipfS: 0.9,
			Window: 64, Seed: 5, Workers: workers, KeepOutcomes: true,
		}
	}
	run := func(workers, procs int) (*workload.Report, MessageCounts) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		e := newEngine(t, lossyNet(250), testCfg())
		e.SetMaintainWorkers(workers)
		e.SelectContacts()
		rep, err := e.RunWorkload(traffic(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rep, e.Messages()
	}
	base, baseMsgs := run(1, 1)
	if base.Queries == 0 || base.Found == 0 {
		t.Fatalf("degenerate reference run: %+v", base)
	}
	if baseMsgs.Retry == 0 {
		t.Fatal("reference run charged no retries; loss not exercised")
	}
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"serial-procs4", 1, 4},
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, gotMsgs := run(c.workers, c.procs)
			got.Config.Workers = base.Config.Workers
			if gotMsgs != baseMsgs {
				t.Errorf("recorder totals diverge:\n got  %+v\n want %+v", gotMsgs, baseMsgs)
			}
			if !reflect.DeepEqual(got.Outcomes, base.Outcomes) {
				t.Errorf("outcome stream diverges from serial run")
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("report diverges:\n got  %+v\n want %+v", got, base)
			}
		})
	}
}

// TestLossyEngineDeterministic pins that two identical rich-links runs —
// directed graph, loss, partitions, churn — are bit-identical end to end.
func TestLossyEngineDeterministic(t *testing.T) {
	run := func() (MessageCounts, float64) {
		e := newEngine(t, lossyNet(200), testCfg())
		e.SelectContacts()
		e.Advance(12) // crosses two partition windows
		return e.Messages(), e.MeanReachability(1)
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 {
		t.Fatalf("message totals differ between identical runs:\n %+v\n %+v", m1, m2)
	}
	if r1 != r2 {
		t.Fatalf("reachability differs between identical runs: %g vs %g", r1, r2)
	}
}

// TestRichLinksRequireOracle pins the substrate gate: heterogeneous
// ranges, loss and partitions are modeled by the oracle substrate only,
// so pairing them with DSDV must fail loudly at construction.
func TestRichLinksRequireOracle(t *testing.T) {
	for _, mutate := range []func(*NetworkConfig){
		func(nc *NetworkConfig) { nc.Loss = 0.1 },
		func(nc *NetworkConfig) { nc.RangeSpread = 0.3 },
		func(nc *NetworkConfig) { nc.PartitionPeriod, nc.PartitionDuration = 10, 2 },
	} {
		nc := testNet(60)
		nc.Proactive = DSDVProtocol
		mutate(&nc)
		if _, err := New(nc, testCfg()); err == nil {
			t.Errorf("rich-links config %+v accepted with DSDV substrate", nc)
		}
	}
}

// TestNetworkConfigLinkValidation pins the engine-level validation of the
// new link-layer fields.
func TestNetworkConfigLinkValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*NetworkConfig)
	}{
		{"loss-one", func(nc *NetworkConfig) { nc.Loss = 1 }},
		{"loss-negative", func(nc *NetworkConfig) { nc.Loss = -0.2 }},
		{"spread-one", func(nc *NetworkConfig) { nc.RangeSpread = 1 }},
		{"negative-retries", func(nc *NetworkConfig) { nc.Loss = 0.1; nc.LossRetries = -1 }},
		{"period-without-duration", func(nc *NetworkConfig) { nc.PartitionPeriod = 10 }},
		{"duration-without-period", func(nc *NetworkConfig) { nc.PartitionDuration = 2 }},
		{"duration-over-period", func(nc *NetworkConfig) { nc.PartitionPeriod = 5; nc.PartitionDuration = 5 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nc := testNet(60)
			tc.mutate(&nc)
			if _, err := New(nc, testCfg()); err == nil {
				t.Fatalf("%s: invalid config accepted", tc.name)
			}
		})
	}
}
