package engine

import (
	"reflect"
	"runtime"
	"testing"

	proto "card/internal/card"
	"card/internal/neighborhood"
)

// dirtyNet is the mobile scenario the dirty-set tests share: fast, dense,
// pause-free random waypoint, so every refresh moves edges somewhere in
// the (single, well-connected) component and the r-hop expansion reaches
// everyone — the all-dirty regime.
func dirtyNet(nodes int) NetworkConfig {
	nc := testNet(nodes)
	nc.Mobility = RandomWaypoint
	nc.MinSpeed, nc.MaxSpeed, nc.Pause = 5, 15, 0
	nc.DirtyMaintenance = true
	return nc
}

// runDirtyTrace mirrors runMaintTrace with DirtyMaintenance enabled.
func runDirtyTrace(t *testing.T, nc NetworkConfig, workers, procs int) maintSnapshot {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	e := newEngine(t, nc, testCfg())
	e.SetMaintainWorkers(workers)
	s := maintSnapshot{added: e.SelectContacts()}
	e.Advance(8) // four maintenance rounds under mobility
	p := e.Protocol()
	s.tables = make([][]proto.Contact, e.Nodes())
	for u := 0; u < e.Nodes(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			cp := c
			cp.Path = append([]NodeID(nil), c.Path...)
			s.tables[u] = append(s.tables[u], cp)
		}
	}
	s.stats = e.Stats()
	s.msgs = e.Messages()
	s.reach = e.MeanReachability(1)
	return s
}

// TestDirtyParallelEquivalence extends the round fan-out contract to
// restricted rounds: with DirtyMaintenance on, the sharded dirty-list
// rounds must be bit-identical to the serial dirty-list loop — tables,
// stats, accounting and reachability — at several worker bounds and
// GOMAXPROCS settings. Run with -race (CI does) to validate the sharding.
func TestDirtyParallelEquivalence(t *testing.T) {
	base := runDirtyTrace(t, dirtyNet(400), 1, 1)
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
		{"auto-procs4", 0, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := runDirtyTrace(t, dirtyNet(400), c.workers, c.procs)
			if got.added != base.added {
				t.Errorf("initial selection added %d contacts, serial added %d", got.added, base.added)
			}
			if got.stats != base.stats {
				t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
			}
			if got.msgs != base.msgs {
				t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
			}
			if got.reach != base.reach {
				t.Errorf("reachability diverges: %v vs %v", got.reach, base.reach)
			}
			for u := range base.tables {
				if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
					t.Fatalf("node %d contact table diverges:\n got  %+v\n want %+v",
						u, got.tables[u], base.tables[u])
				}
			}
		})
	}
}

// TestDirtyParallelEquivalenceChurn repeats the dirty equivalence contract
// under node churn: expiry victims drop below NoC and must re-enter the
// round list identically on the serial and sharded paths.
func TestDirtyParallelEquivalenceChurn(t *testing.T) {
	nc := dirtyNet(300)
	nc.ChurnMeanUp, nc.ChurnMeanDown = 20, 5
	base := runDirtyTrace(t, nc, 1, 1)
	got := runDirtyTrace(t, nc, 4, 4)
	if got.stats != base.stats {
		t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
	}
	if got.msgs != base.msgs {
		t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
	}
	for u := range base.tables {
		if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
			t.Fatalf("node %d contact table diverges", u)
		}
	}
}

// TestDirtyMatchesFullWhenAllDirty is the dirty-vs-full regression test:
// on a scenario whose every refresh dirties the whole network (fast dense
// pause-free mobility — one moved edge anywhere in the connected component
// expands to everyone within max(R, MaxContactDist) hops), the restricted
// rounds must reproduce the full rounds bit-for-bit: contact tables,
// protocol statistics, per-category message totals (validation traffic
// included — nothing was skipped because nothing was clean) and
// reachability. LastRoundNodes is asserted per round so the scenario
// cannot silently stop exercising the all-dirty case.
func TestDirtyMatchesFullWhenAllDirty(t *testing.T) {
	ncDirty := dirtyNet(400)
	ncFull := ncDirty
	ncFull.DirtyMaintenance = false
	cfg := testCfg() // ValidatePeriod 2

	ed := newEngine(t, ncDirty, cfg)
	ef := newEngine(t, ncFull, cfg)
	if a, b := ed.SelectContacts(), ef.SelectContacts(); a != b {
		t.Fatalf("initial selection diverges: dirty %d, full %d", a, b)
	}
	for round := 1; round <= 4; round++ {
		ed.Advance(cfg.ValidatePeriod)
		ef.Advance(cfg.ValidatePeriod)
		if got, n := ed.LastRoundNodes(), ed.Nodes(); got != n {
			t.Fatalf("round %d processed %d/%d nodes — scenario no longer keeps every node dirty, the comparison below would be vacuous", round, got, n)
		}
		if ed.Stats() != ef.Stats() {
			t.Fatalf("round %d stats diverge:\n dirty %+v\n full  %+v", round, ed.Stats(), ef.Stats())
		}
		if ed.Messages() != ef.Messages() {
			t.Fatalf("round %d message totals diverge:\n dirty %+v\n full  %+v", round, ed.Messages(), ef.Messages())
		}
	}
	pd, pf := ed.Protocol(), ef.Protocol()
	for u := 0; u < ed.Nodes(); u++ {
		if !reflect.DeepEqual(pd.Table(NodeID(u)).Contacts(), pf.Table(NodeID(u)).Contacts()) {
			t.Fatalf("node %d contact table diverges:\n dirty %+v\n full  %+v",
				u, pd.Table(NodeID(u)).Contacts(), pf.Table(NodeID(u)).Contacts())
		}
	}
	if a, b := ed.MeanReachability(1), ef.MeanReachability(1); a != b {
		t.Fatalf("reachability diverges: dirty %v, full %v", a, b)
	}
}

// TestDirtyRestrictsQuietRounds pins the optimization itself: on a static
// network nothing is ever dirtied, so once tables have filled, maintenance
// rounds must process only the below-NoC stragglers — a strict subset of
// the network — and skip their validation traffic.
func TestDirtyRestrictsQuietRounds(t *testing.T) {
	nc := testNet(400)
	nc.DirtyMaintenance = true
	e := newEngine(t, nc, testCfg())
	e.SelectContacts()
	before := e.Messages().Validation
	e.Advance(8)
	if last := e.LastRoundNodes(); last >= e.Nodes() {
		t.Errorf("static round processed %d/%d nodes — dirty restriction inert", last, e.Nodes())
	}
	// The skipped nodes' trivially-successful validation walks must not
	// have been simulated: validation traffic stays below what even one
	// full static round would charge (sum of all stored path hops).
	var fullRound int64
	p := e.Protocol()
	for u := 0; u < e.Nodes(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			fullRound += int64(c.Hops())
		}
	}
	if grew := e.Messages().Validation - before; grew >= 4*fullRound && fullRound > 0 {
		t.Errorf("4 static dirty rounds charged %d validation hops (full rounds would charge ~%d) — skipping inert", grew, 4*fullRound)
	}
}

// TestDirtyOracleRetention checks the view-retention half of the dirty
// machinery: after a mobile dirty-mode run, every retained neighborhood
// view must equal what a fresh oracle computes from scratch on the same
// snapshot.
func TestDirtyOracleRetention(t *testing.T) {
	e := newEngine(t, dirtyNet(300), testCfg())
	e.SelectContacts()
	for step := 0; step < 6; step++ {
		e.Advance(1.5) // off-period steps: refreshes with and without rounds
		fresh := neighborhood.NewOracle(e.Network(), e.Config().R)
		for u := 0; u < e.Nodes(); u++ {
			got := e.Neighborhood().Members(NodeID(u))
			want := fresh.Members(NodeID(u))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d node %d: retained view %v, fresh view %v", step, u, got, want)
			}
		}
	}
}
