package engine

import "card/internal/workload"

// RunWorkload drives the engine with cfg's sustained, open-loop query
// traffic: Poisson arrivals, Zipf-skewed resource popularity, mobility and
// scheduled maintenance interleaved tick by tick with sharded query
// batches (see the workload package docs for the traffic model). The
// per-query outcome stream and the recorder totals are bit-identical
// between serial and sharded execution at any GOMAXPROCS — the engine's
// standing equivalence contract, pinned under churn by
// TestWorkloadParallelEquivalence.
//
// RunWorkload advances simulated time by cfg.Duration and must not overlap
// with Advance, BatchQuery or the other mutating calls.
func (e *Engine) RunWorkload(cfg workload.Config) (*workload.Report, error) {
	return workload.Run(e, cfg)
}

// Engine satisfies the workload driver surface.
var _ workload.Driver = (*Engine)(nil)
