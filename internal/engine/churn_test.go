package engine

import (
	"reflect"
	"runtime"
	"testing"

	proto "card/internal/card"
)

// churnNet is a mobile scenario with aggressive churn: short up/down
// phases so several nodes flip per maintenance round.
func churnNet(nodes int) NetworkConfig {
	nc := testNet(nodes)
	nc.Mobility = RandomWaypoint
	nc.MinSpeed, nc.MaxSpeed, nc.Pause = 1, 15, 3
	nc.ChurnMeanUp, nc.ChurnMeanDown = 12, 5
	return nc
}

// runChurnTrace drives a churned scenario through selection, scheduled
// maintenance rounds and a query batch with the given worker bound and
// GOMAXPROCS, and snapshots everything the equivalence contract covers —
// including the query results, which must not depend on the fan-out.
func runChurnTrace(t *testing.T, workers, procs int) (maintSnapshot, []proto.QueryResult) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	nc := churnNet(400)
	cfg := testCfg() // ValidatePeriod 2
	e := newEngine(t, nc, cfg)
	e.SetMaintainWorkers(workers)
	s := maintSnapshot{added: e.SelectContacts()}
	e.Advance(8) // four maintenance rounds under mobility + churn
	pairs := e.RandomPairs(120, 99)
	res := e.BatchQuery(pairs)
	p := e.Protocol()
	s.tables = make([][]proto.Contact, e.Nodes())
	for u := 0; u < e.Nodes(); u++ {
		for _, c := range p.Table(NodeID(u)).Contacts() {
			cp := c
			cp.Path = append([]NodeID(nil), c.Path...)
			s.tables[u] = append(s.tables[u], cp)
		}
	}
	s.stats = e.Stats()
	s.msgs = e.Messages()
	s.reach = e.MeanReachability(1)
	return s, res
}

// TestChurnParallelEquivalence mirrors TestMaintainParallelEquivalence
// under node churn: contact tables, statistics, recorder totals and batch
// query results must be bit-identical between the serial loops and the
// sharded ones at GOMAXPROCS 1 and 4 (run with -race in CI). Churn is the
// adversarial case for the fan-out — down nodes skip rounds and expiry
// rewrites tables between rounds — so this pins that skipping and expiry
// stay on the serial path's deterministic schedule.
func TestChurnParallelEquivalence(t *testing.T) {
	base, baseRes := runChurnTrace(t, 1, 1) // serial reference at GOMAXPROCS=1
	if base.stats.ContactsExpired == 0 {
		t.Fatal("scenario produced no churn expiries; the test is not exercising churn")
	}
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"serial-procs4", 1, 4},
		{"workers4-procs1", 4, 1},
		{"workers4-procs4", 4, 4},
		{"auto-procs4", 0, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, gotRes := runChurnTrace(t, c.workers, c.procs)
			if got.added != base.added {
				t.Errorf("initial selection added %d contacts, serial added %d", got.added, base.added)
			}
			if got.stats != base.stats {
				t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
			}
			if got.msgs != base.msgs {
				t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
			}
			if got.reach != base.reach {
				t.Errorf("reachability diverges: %v vs %v", got.reach, base.reach)
			}
			if !reflect.DeepEqual(gotRes, baseRes) {
				t.Errorf("batch query results diverge")
			}
			for u := range base.tables {
				if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
					t.Fatalf("node %d contact table diverges:\n got  %+v\n want %+v",
						u, got.tables[u], base.tables[u])
				}
			}
		})
	}
}

// TestChurnExpiresContacts checks the protocol-facing churn semantics on
// a live engine: a node that goes down vanishes from every table, and
// down nodes hold no contacts of their own.
func TestChurnExpiresContacts(t *testing.T) {
	e := newEngine(t, churnNet(300), testCfg())
	e.SelectContacts()
	e.Advance(20)
	p := e.Protocol()
	for u := 0; u < e.Nodes(); u++ {
		tab := p.Table(NodeID(u))
		if e.Network().Down(NodeID(u)) && tab.Len() != 0 {
			t.Errorf("down node %d holds %d contacts", u, tab.Len())
		}
		for _, c := range tab.Contacts() {
			if e.Network().Down(c.ID) {
				t.Errorf("node %d holds down contact %d", u, c.ID)
			}
		}
	}
	if st := e.Stats(); st.ContactsExpired == 0 {
		t.Error("20 s of aggressive churn expired no contacts")
	}
	if up := e.UpNodes(); up == 0 || up == e.Nodes() {
		t.Errorf("implausible up count %d/%d", up, e.Nodes())
	}
}

// TestChurnRejectsDSDV pins the documented gate: churn currently requires
// the oracle substrate.
func TestChurnRejectsDSDV(t *testing.T) {
	nc := churnNet(50)
	nc.Proactive = DSDVProtocol
	if _, err := New(nc, testCfg()); err == nil {
		t.Fatal("churn + DSDV accepted")
	}
	nc.Proactive = OracleView
	nc.ChurnMeanDown = 0 // half-configured churn
	if _, err := New(nc, testCfg()); err == nil {
		t.Fatal("half-configured churn accepted")
	}
}
