package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegisterRejectsBuiltinReuse(t *testing.T) {
	for _, name := range []string{"citywide-rwp-5k", "dense-sensor-field"} {
		if err := Register(Preset{Name: name}); err == nil {
			t.Errorf("Register(%q) replaced a built-in preset without error", name)
		}
	}
	// The built-in must be untouched.
	p, err := LookupPreset("citywide-rwp-5k")
	if err != nil || p.Net.Nodes != 5000 {
		t.Errorf("built-in preset damaged: %+v, %v", p, err)
	}
	if err := Register(Preset{Name: ""}); err == nil {
		t.Error("Register accepted a nameless preset")
	}
}

func TestRegisterConcurrent(t *testing.T) {
	// Concurrent registration, lookup and listing must be race-free (run
	// with -race) and every registered preset must land.
	const workers, each = 8, 25
	t.Cleanup(func() { // drop the test presets so other tests' Presets() sweeps stay lean
		presetMu.Lock()
		defer presetMu.Unlock()
		for name := range presetIndex {
			if !builtinPreset(name) {
				delete(presetIndex, name)
			}
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("test-preset-%d-%d", w, i)
				if err := Register(Preset{Name: name, Net: testNet(50), Protocol: testCfg()}); err != nil {
					t.Errorf("Register(%q): %v", name, err)
				}
				Presets()
				if _, err := LookupPreset(name); err != nil {
					t.Errorf("LookupPreset(%q): %v", name, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(Presets()); got < workers*each+5 {
		t.Errorf("registry holds %d presets, want >= %d", got, workers*each+5)
	}
}

// TestPresetDocsSynthesized pins the -presets contract: every registered
// preset carries a Doc line derived from its config (mobility model, N,
// area, churn), including presets added through Register.
func TestPresetDocsSynthesized(t *testing.T) {
	for _, p := range Presets() {
		if p.Doc == "" {
			t.Errorf("preset %s has no Doc", p.Name)
			continue
		}
		for _, want := range []string{
			p.Net.Mobility.String(),
			fmt.Sprintf("N=%d", p.Net.Nodes),
			fmt.Sprintf("%gx%gm", p.Net.Width, p.Net.Height),
		} {
			if !strings.Contains(p.Doc, want) {
				t.Errorf("preset %s Doc %q missing %q", p.Name, p.Doc, want)
			}
		}
		if churned := p.Net.ChurnMeanUp > 0; churned != strings.Contains(p.Doc, "churn up~") {
			t.Errorf("preset %s Doc %q misstates churn", p.Name, p.Doc)
		}
	}
	// Register must synthesize (and overwrite) Doc.
	name := "doc-synth-test"
	t.Cleanup(func() {
		presetMu.Lock()
		defer presetMu.Unlock()
		delete(presetIndex, name)
	})
	if err := Register(Preset{Name: name, Doc: "hand-written lies", Net: testNet(50)}); err != nil {
		t.Fatal(err)
	}
	p, err := LookupPreset(name)
	if err != nil {
		t.Fatal(err)
	}
	if p.Doc != DescribeNet(p.Net) {
		t.Errorf("registered Doc %q, want synthesized %q", p.Doc, DescribeNet(p.Net))
	}
}

// TestScenarioPresetsRun smoke-tests the scenario-diversity presets at
// reduced scale: same mobility/churn configuration, fewer nodes, so the
// whole matrix stays test-budget cheap.
func TestScenarioPresetsRun(t *testing.T) {
	for _, name := range []string{"citywide-gm-5k", "rescue-groups-1k", "churn-2k"} {
		p, err := LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		nc := p.Net
		nc.Nodes = 150
		nc.Width, nc.Height = 600, 600
		if nc.Groups > 0 {
			nc.Groups = 6
		}
		e, err := New(nc, p.Protocol)
		if err != nil {
			t.Fatalf("%s (scaled): %v", name, err)
		}
		e.SelectContacts()
		e.Advance(6)
		if e.Rounds() == 0 {
			t.Errorf("%s: no maintenance rounds fired", name)
		}
		res := e.BatchQuery(e.RandomPairs(40, 5))
		found := 0
		for _, r := range res {
			if r.Found {
				found++
			}
		}
		if found == 0 {
			t.Errorf("%s: no query succeeded", name)
		}
	}
}

func TestBuiltin10kPresetDensityMatches5k(t *testing.T) {
	p5, err := LookupPreset("citywide-rwp-5k")
	if err != nil {
		t.Fatal(err)
	}
	p10, err := LookupPreset("citywide-rwp-10k")
	if err != nil {
		t.Fatal(err)
	}
	d5 := float64(p5.Net.Nodes) / (p5.Net.Width * p5.Net.Height)
	d10 := float64(p10.Net.Nodes) / (p10.Net.Width * p10.Net.Height)
	if ratio := d10 / d5; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("10k preset density off by %.2fx from the 5k preset", ratio)
	}
	if p10.Net.Nodes != 10000 {
		t.Errorf("10k preset has %d nodes", p10.Net.Nodes)
	}
}
