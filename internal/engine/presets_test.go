package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegisterRejectsBuiltinReuse(t *testing.T) {
	for _, name := range []string{"citywide-rwp-5k", "dense-sensor-field"} {
		if err := Register(Preset{Name: name}); err == nil {
			t.Errorf("Register(%q) replaced a built-in preset without error", name)
		}
	}
	// The built-in must be untouched.
	p, err := LookupPreset("citywide-rwp-5k")
	if err != nil || p.Net.Nodes != 5000 {
		t.Errorf("built-in preset damaged: %+v, %v", p, err)
	}
	if err := Register(Preset{Name: ""}); err == nil {
		t.Error("Register accepted a nameless preset")
	}
}

func TestRegisterConcurrent(t *testing.T) {
	// Concurrent registration, lookup and listing must be race-free (run
	// with -race) and every registered preset must land.
	const workers, each = 8, 25
	t.Cleanup(func() { // drop the test presets so other tests' Presets() sweeps stay lean
		presetMu.Lock()
		defer presetMu.Unlock()
		for name := range presetIndex {
			if !builtinPreset(name) {
				delete(presetIndex, name)
			}
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("test-preset-%d-%d", w, i)
				if err := Register(Preset{Name: name, Net: testNet(50), Protocol: testCfg()}); err != nil {
					t.Errorf("Register(%q): %v", name, err)
				}
				Presets()
				if _, err := LookupPreset(name); err != nil {
					t.Errorf("LookupPreset(%q): %v", name, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(Presets()); got < workers*each+5 {
		t.Errorf("registry holds %d presets, want >= %d", got, workers*each+5)
	}
}

func TestBuiltin10kPresetDensityMatches5k(t *testing.T) {
	p5, err := LookupPreset("citywide-rwp-5k")
	if err != nil {
		t.Fatal(err)
	}
	p10, err := LookupPreset("citywide-rwp-10k")
	if err != nil {
		t.Fatal(err)
	}
	d5 := float64(p5.Net.Nodes) / (p5.Net.Width * p5.Net.Height)
	d10 := float64(p10.Net.Nodes) / (p10.Net.Width * p10.Net.Height)
	if ratio := d10 / d5; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("10k preset density off by %.2fx from the 5k preset", ratio)
	}
	if p10.Net.Nodes != 10000 {
		t.Errorf("10k preset has %d nodes", p10.Net.Nodes)
	}
}
