package engine

import (
	"reflect"
	"runtime"
	"slices"
	"testing"
)

// scanDeficit is the reference the incremental deficit bitset replaced:
// the O(N) table-length scan. The tests below rebuild it after every tick
// and demand bit-equality, so any missed shrink/grow hook fails loudly.
func scanDeficit(e *Engine) []NodeID {
	var out []NodeID
	noc := e.cfg.NoC
	for u := 0; u < e.Nodes(); u++ {
		if e.prot.Table(NodeID(u)).Len() < noc {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// deficitList reads the engine's deficit bitset ascending.
func deficitList(e *Engine) []NodeID {
	var out []NodeID
	for u := 0; u < e.Nodes(); u++ {
		if e.deficit.Contains(u) {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// refRoundList is the round list the old full-scan implementation built:
// one ascending id-order pass appending dirty-accumulated nodes and
// below-NoC tables.
func refRoundList(e *Engine) []NodeID {
	var out []NodeID
	noc := e.cfg.NoC
	for u := 0; u < e.Nodes(); u++ {
		if e.dirtyAcc.Contains(u) || e.prot.Table(NodeID(u)).Len() < noc {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// TestDeficitMatchesTableScan pins the deficit invariant under the full
// mutation surface — mobility-driven rounds, churn expiry, cold
// readmission — at serial and sharded worker settings: after every tick
// the incrementally maintained deficit bitset must equal the table-length
// scan, and the merged round list must equal what the old one-pass scan
// would have produced.
func TestDeficitMatchesTableScan(t *testing.T) {
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"serial-procs1", 1, 1},
		{"workers4-procs4", 4, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(c.procs))
			nc := dirtyNet(300)
			nc.ChurnMeanUp, nc.ChurnMeanDown = 20, 5
			cfg := testCfg()
			e := newEngine(t, nc, cfg)
			e.SetMaintainWorkers(c.workers)
			e.SelectContacts()
			for tick := 1; tick <= 8; tick++ {
				e.Advance(cfg.ValidatePeriod)
				got, want := deficitList(e), scanDeficit(e)
				if !slices.Equal(got, want) {
					t.Fatalf("tick %d: deficit bitset %v, table scan %v", tick, got, want)
				}
				if e.dirtyAll {
					continue // next round takes the full path; no list to compare
				}
				if got, want := e.dirtyRoundList(), refRoundList(e); !slices.Equal(got, want) {
					t.Fatalf("tick %d: merged round list %v, full-scan list %v", tick, got, want)
				}
			}
		})
	}
}

// TestDeficitChurnEquivalence is the black-box half: under churn AND
// mobility, the deficit-driven engine must stay bit-identical between the
// serial and sharded paths — round lists (sizes), tables, stats and
// recorder totals. (runDirtyTrace compares tables/stats/msgs/reach; the
// per-round list equality is covered white-box above.)
func TestDeficitChurnEquivalence(t *testing.T) {
	nc := dirtyNet(250)
	nc.ChurnMeanUp, nc.ChurnMeanDown = 15, 5
	base := runDirtyTrace(t, nc, 1, 1)
	got := runDirtyTrace(t, nc, 4, 4)
	if got.stats != base.stats {
		t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
	}
	if got.msgs != base.msgs {
		t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
	}
	if got.reach != base.reach {
		t.Errorf("reachability diverges: %v vs %v", got.reach, base.reach)
	}
	for u := range base.tables {
		if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
			t.Fatalf("node %d contact table diverges", u)
		}
	}
}

// TestViewCacheEngineEquivalence runs the same dirty churn+mobility trace
// with the capped on-demand view cache in place of the resident oracle:
// every table, statistic and message total must be bit-identical —
// neighborhood views are pure functions of the snapshot, so the cache
// policy must be invisible to results.
func TestViewCacheEngineEquivalence(t *testing.T) {
	nc := dirtyNet(250)
	nc.ChurnMeanUp, nc.ChurnMeanDown = 15, 5
	base := runDirtyTrace(t, nc, 1, 1)
	cached := nc
	cached.ViewCacheCap = 70 // ~2 per stripe at 250 nodes: constant eviction
	for _, c := range []struct {
		name           string
		workers, procs int
	}{
		{"serial", 1, 1},
		{"workers4-procs4", 4, 4},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := runDirtyTrace(t, cached, c.workers, c.procs)
			if got.added != base.added {
				t.Errorf("initial selection added %d contacts, oracle added %d", got.added, base.added)
			}
			if got.stats != base.stats {
				t.Errorf("stats diverge:\n got  %+v\n want %+v", got.stats, base.stats)
			}
			if got.msgs != base.msgs {
				t.Errorf("message totals diverge:\n got  %+v\n want %+v", got.msgs, base.msgs)
			}
			if got.reach != base.reach {
				t.Errorf("reachability diverges: %v vs %v", got.reach, base.reach)
			}
			for u := range base.tables {
				if !reflect.DeepEqual(got.tables[u], base.tables[u]) {
					t.Fatalf("node %d contact table diverges", u)
				}
			}
		})
	}
}
