package engine

import (
	"fmt"
	"sort"
	"sync"

	proto "card/internal/card"
	"card/internal/manet"
	"card/internal/workload"
)

// Preset is a named, ready-to-run workload: a network scenario plus a
// protocol tuning that suits it. New workloads are one struct literal away
// — add an entry to the table below (or call Register from an experiment)
// and every consumer (cmd/cardsim -preset, the examples, the scaling
// benchmarks) can run it by name.
type Preset struct {
	Name        string
	Description string
	// Doc is the one-line scenario summary shown by cardsim -presets:
	// mobility model, node count, area, radio range and churn. It is
	// synthesized from Net at registration time (see DescribeNet), never
	// hand-written, so it cannot drift from the config it documents.
	Doc      string
	Net      NetworkConfig
	Protocol proto.Config
	// Horizon is the suggested simulated duration in seconds for a
	// representative run (0 = static scenario, query-only).
	Horizon float64
	// Traffic is the preset's suggested sustained query-traffic shape for
	// RunWorkload (zero QPS = no sustained-traffic phase). cardsim runs it
	// after the one-shot query batch and overlays the -qps/-zipf flags on
	// top; Traffic.Seed 0 means "derive from the run seed".
	Traffic workload.Config
}

// DescribeNet renders the scenario facts of a network config as one
// line; preset Doc lines are synthesized with it, and cardsim reuses it
// when flag overlays (e.g. -churn) change a preset's config after lookup.
func DescribeNet(nc NetworkConfig) string {
	churn := "no churn"
	if nc.hasChurn() {
		churn = fmt.Sprintf("churn up~%gs/down~%gs", nc.ChurnMeanUp, nc.ChurnMeanDown)
	}
	extra := ""
	if nc.Mobility == GroupMobility {
		g := nc.rpgmConfig()
		extra = fmt.Sprintf(" (%d groups, r=%gm)", g.Groups, g.GroupRadius)
	}
	size := fmt.Sprintf("N=%d | %gx%gm", nc.Nodes, nc.Width, nc.Height)
	if nc.Mobility == TraceReplay && nc.Nodes == 0 {
		// Trace presets may be registered before the trace is loaded; N and
		// the area are then inferred by engine.New, not known here.
		size = fmt.Sprintf("%s | N/area from trace", nc.TracePath)
	}
	// Heterogeneous radios report the whole range distribution — printing
	// only the nominal (max) range would silently misdescribe a directed
	// scenario.
	tx := fmt.Sprintf("tx %gm", nc.TxRange)
	if nc.RangeSpread > 0 {
		tx = fmt.Sprintf("tx %g-%gm (spread %g, asymmetric)",
			nc.TxRange*(1-nc.RangeSpread), nc.TxRange*(1+nc.RangeSpread), nc.RangeSpread)
	}
	doc := fmt.Sprintf("%s%s | %s | %s | %s",
		nc.Mobility, extra, size, tx, churn)
	if nc.Loss > 0 {
		retries := nc.LossRetries
		if retries == 0 {
			retries = manet.DefaultLossRetries
		}
		doc += fmt.Sprintf(" | loss %g%% (%d retries)", nc.Loss*100, retries)
	}
	if nc.PartitionPeriod > 0 {
		doc += fmt.Sprintf(" | partition %gs every %gs", nc.PartitionDuration, nc.PartitionPeriod)
	}
	return doc
}

// withDoc returns p with its Doc synthesized from the network config.
func withDoc(p Preset) Preset {
	p.Doc = DescribeNet(p.Net)
	return p
}

// New builds an engine for the preset. seed overrides the preset's
// default; pass the same seed to get the same run.
func (p Preset) New(seed uint64) (*Engine, error) {
	nc := p.Net
	nc.Seed = seed
	return New(nc, p.Protocol)
}

// The built-in presets span the deployment classes the paper motivates
// (§II): dense static sensor fields, sparse slow-moving rescue teams, and
// citywide random-waypoint fleets at the 1k–5k scale the companion
// small-world study evaluates. Protocol tunings follow the paper's Fig. 9
// recipe: R and NoC grow with N so shallow queries cover most of the
// field.
var builtinPresets = []Preset{
	{
		Name:        "dense-sensor-field",
		Description: "2000 static sensors, 1000x1000 m, 50 m radio — dense energy-bound field",
		Net:         NetworkConfig{Nodes: 2000, Width: 1000, Height: 1000, TxRange: 50, Mobility: Static, Seed: 1},
		Protocol:    proto.Config{R: 4, MaxContactDist: 20, NoC: 8, Depth: 3},
	},
	{
		Name:        "sparse-rescue",
		Description: "1000 responders over 2000x2000 m, 100 m radio, 1-5 m/s with 30 s pauses",
		Net: NetworkConfig{
			Nodes: 1000, Width: 2000, Height: 2000, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 5, Pause: 30, Seed: 1,
		},
		Protocol: proto.Config{R: 3, MaxContactDist: 14, NoC: 6, Depth: 2, ValidatePeriod: 2},
		Horizon:  60,
	},
	{
		Name:        "citywide-rwp-1k",
		Description: "1000 vehicles over 1500x1500 m, 100 m radio, 1-19 m/s random waypoint",
		Net: NetworkConfig{
			Nodes: 1000, Width: 1500, Height: 1500, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Seed: 1,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 6, Depth: 2, ValidatePeriod: 2},
		Horizon:  30,
		// Moderate serving load: ~100 lookups/s against a 256-entry
		// catalogue with a hot head (Zipf 0.9), 4 replicas each.
		Traffic: workload.Config{QPS: 100, Duration: 30, Resources: 256, Replicas: 4, ZipfS: 0.9},
	},
	{
		Name:        "citywide-rwp-5k",
		Description: "5000 vehicles over 3000x3000 m, 100 m radio — the large-scale regime",
		Net: NetworkConfig{
			Nodes: 5000, Width: 3000, Height: 3000, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 10, Seed: 1,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
		// The large-scale serving regime: 200 qps over a 512-entry
		// catalogue, Zipf-hot head, 8 replicas.
		Traffic: workload.Config{QPS: 200, Duration: 30, Resources: 512, Replicas: 8, ZipfS: 0.9},
	},
	{
		// Density-matched to citywide-rwp-5k (~5.6e-4 nodes/m²): the
		// headroom scenario for the parallel maintenance rounds, double the
		// node count the serial write loop was tuned on.
		Name:        "citywide-rwp-10k",
		Description: "10000 vehicles over 4200x4200 m, 100 m radio — parallel-maintenance headroom",
		Net: NetworkConfig{
			Nodes: 10000, Width: 4200, Height: 4200, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 10, Seed: 1,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
	},
	{
		// Density-matched to the 10k preset (~5.7e-4 nodes/m²) at 10× the
		// population: the scale target for dirty-set maintenance. Long
		// pauses keep per-refresh adjacency diffs sparse, so restricted
		// rounds touch a small fraction of the field; the flat-slab state
		// keeps the 100k-node footprint cache-friendly. DirtyMaintenance is
		// on by default — this is the first preset where full rounds are
		// the wrong trade.
		Name:        "citywide-rwp-100k",
		Description: "100000 vehicles over 13300x13300 m, 100 m radio — dirty-set maintenance at scale",
		Net: NetworkConfig{
			Nodes: 100000, Width: 13300, Height: 13300, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 60, Seed: 1,
			DirtyMaintenance: true,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
	},
	{
		// Density-matched to the citywide family (~5.7e-4 nodes/m²) at the
		// million-node rung. Everything O(N)-per-step is gone at this size:
		// lazy mobility steps only un-paused travelers, the incremental
		// builder re-examines only the moved list, the deficit bitset
		// replaces the below-NoC table scan, and ViewCacheCap bounds
		// resident neighborhood views to a quarter-million LRU entries
		// computed on demand — a warm full view table alone would dwarf the
		// rest of the footprint. Long pauses keep per-refresh diffs sparse,
		// so a steady-state round touches thousands of nodes, not 10⁶.
		Name:        "metro-rwp-1m",
		Description: "1000000 vehicles over 42000x42000 m, 100 m radio — the million-node rung",
		Net: NetworkConfig{
			Nodes: 1_000_000, Width: 42000, Height: 42000, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 120, Seed: 1,
			DirtyMaintenance: true, ViewCacheCap: 1 << 18,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
	},
	{
		// The 5k regime under Gauss–Markov: smooth correlated trajectories
		// keep links alive longer than RWP's sharp turns, so contact paths
		// decay gradually instead of snapping — the favorable-mobility
		// bookend to rescue-groups-1k.
		Name:        "citywide-gm-5k",
		Description: "5000 vehicles over 3000x3000 m, 100 m radio, Gauss-Markov drift (12 m/s, alpha 0.85)",
		Net: NetworkConfig{
			Nodes: 5000, Width: 3000, Height: 3000, TxRange: 100,
			Mobility: GaussMarkov, GMMeanSpeed: 12, GMAlpha: 0.85, GMSpeedSigma: 3, Seed: 1,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
	},
	{
		// Reference-point group mobility: 25 teams that stay internally
		// dense while the teams themselves scatter — contacts must bridge
		// between groups, the worst case for neighborhood-overlap pruning.
		Name:        "rescue-groups-1k",
		Description: "1000 responders in 25 groups over 2000x2000 m, 100 m radio, RPGM with 150 m group radius",
		Net: NetworkConfig{
			Nodes: 1000, Width: 2000, Height: 2000, TxRange: 100,
			Mobility: GroupMobility, Groups: 25, GroupRadius: 150,
			MinSpeed: 1, MaxSpeed: 5, Pause: 30, MemberSpeed: 2, Seed: 1,
		},
		Protocol: proto.Config{R: 3, MaxContactDist: 14, NoC: 6, Depth: 2, ValidatePeriod: 2},
		Horizon:  60,
	},
	{
		// Heterogeneous radios in a disaster field: per-node transmission
		// ranges spread ±50% around the nominal 100 m (handhelds next to
		// vehicle-mounted sets), making the link graph directed — a strong
		// transmitter hears nobody back. Every 60 s a 15 s partition cuts
		// the field down the middle (a collapsed corridor) and heals, so
		// contact tables repeatedly lose and rediscover the far half.
		Name:        "disaster-hetero-5k",
		Description: "5000 responders over 3000x3000 m, mixed 50-150 m radios, partition-and-heal every 60 s",
		Net: NetworkConfig{
			Nodes: 5000, Width: 3000, Height: 3000, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 5, Pause: 30, Seed: 1,
			RangeSpread:     0.5,
			PartitionPeriod: 60, PartitionDuration: 15,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
	},
	{
		// The 10k citywide regime over lossy urban links: every unicast hop
		// is dropped with 10% probability (frozen per link within a refresh
		// epoch — link fade, not per-packet noise) and retried up to 3
		// times, so validation and query traffic pay a visible retry tax
		// and some stored paths break purely from loss.
		Name:        "lossy-metro-10k",
		Description: "10000 vehicles over 4200x4200 m, 100 m radio, 10% hop loss with 3 retries",
		Net: NetworkConfig{
			Nodes: 10000, Width: 4200, Height: 4200, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 10, Seed: 1,
			Loss: 0.1, LossRetries: 3,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2},
		Horizon:  30,
		// Sustained serving load under loss: the retry tax shows up in the
		// workload report's per-category message split.
		Traffic: workload.Config{QPS: 100, Duration: 30, Resources: 512, Replicas: 8, ZipfS: 0.9},
	},
	{
		// Node churn over a mobile fleet: nodes power off for ~15 s out of
		// every ~75 s, so roughly a fifth of the population is dark at any
		// instant and contact tables are perpetually rebuilding.
		Name:        "churn-2k",
		Description: "2000 vehicles over 2000x2000 m, 100 m radio, RWP with exponential up/down churn",
		Net: NetworkConfig{
			Nodes: 2000, Width: 2000, Height: 2000, TxRange: 100,
			Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 10,
			ChurnMeanUp: 60, ChurnMeanDown: 15, Seed: 1,
		},
		Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 6, Depth: 2, ValidatePeriod: 2},
		Horizon:  30,
		// Sustained load under churn: offered queries keep arriving while
		// ~a fifth of sources and holders are dark at any instant.
		Traffic: workload.Config{QPS: 100, Duration: 30, Resources: 256, Replicas: 4, ZipfS: 0.9},
	},
}

// presetMu guards presetIndex: experiments and tests register workloads
// from whatever goroutine builds them, and the parallel experiment cells
// look presets up concurrently.
//
//cardlint:parallel registry guard off the sim path; lookups are reads and registration happens before any cell runs
var presetMu sync.RWMutex

var presetIndex = func() map[string]Preset {
	m := make(map[string]Preset, len(builtinPresets))
	for _, p := range builtinPresets {
		m[p.Name] = withDoc(p)
	}
	return m
}()

// builtinPreset reports whether name is one of the compiled-in workloads,
// which Register refuses to replace.
func builtinPreset(name string) bool {
	for _, p := range builtinPresets {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Presets returns all registered presets sorted by name.
func Presets() []Preset {
	presetMu.RLock()
	defer presetMu.RUnlock()
	out := make([]Preset, 0, len(presetIndex))
	for _, p := range presetIndex {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupPreset returns the preset registered under name.
func LookupPreset(name string) (Preset, error) {
	presetMu.RLock()
	defer presetMu.RUnlock()
	p, ok := presetIndex[name]
	if !ok {
		names := make([]string, 0, len(presetIndex))
		for n := range presetIndex {
			names = append(names, n)
		}
		sort.Strings(names)
		return Preset{}, fmt.Errorf("engine: unknown preset %q (have %v)", name, names)
	}
	return p, nil
}

// Register adds a preset to the registry, replacing any previously
// registered preset of the same name. It errors — rather than silently
// replacing — when the name collides with a built-in workload, so a
// benchmark baseline can never be redefined out from under a consumer.
// The preset's Doc line is synthesized from its network config (any
// caller-provided Doc is overwritten; docs never drift from code). Safe
// for concurrent use.
func Register(p Preset) error {
	if p.Name == "" {
		return fmt.Errorf("engine: preset without a name")
	}
	if builtinPreset(p.Name) {
		return fmt.Errorf("engine: preset %q is built in and cannot be replaced", p.Name)
	}
	presetMu.Lock()
	defer presetMu.Unlock()
	presetIndex[p.Name] = withDoc(p)
	return nil
}
