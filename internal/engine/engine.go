// Package engine owns the simulation core: it binds a mobile network, its
// proactive neighborhood substrate and a CARD protocol instance, drives
// simulated time through the discrete-event scheduler, and fans read-only
// batch queries across worker goroutines.
//
// The engine is the seam every scaling feature plugs into. Layering (see
// DESIGN.md):
//
//	geom / xrand / bitset / par      primitives
//	topology  mobility  eventq       structure, movement, time
//	manet                            substrate: snapshots + accounting
//	neighborhood  card  flood  ...   protocols
//	engine                           time-stepping, batching, presets
//	card (root)  experiments  cmd/   facades and harnesses
//
// # Time stepping
//
// Advance runs the maintenance schedule on an event queue. Maintenance
// boundaries are indexed by an integer round counter — boundary k fires at
// float64(k)·ValidatePeriod — so repeated advancing can neither skip nor
// double-fire a round near floating-point representability edges (the
// failure mode of the old int(now/period)+1 recurrence).
//
// # Batch queries
//
// BatchQuery exploits that CARD queries are pure reads of the protocol
// state between rounds: each worker gets its own card.Querier (private
// visited scratch and message tallies), neighborhood views are warmed
// before the fan-out, and tallies are flushed serially after the join —
// results and accounting are bit-identical to the sequential loop, at
// GOMAXPROCS-way speedup.
//
// # Parallel rounds
//
// The write-side hot loop — network-wide contact selection and
// maintenance — is sharded the same way (see maintain.go): one
// card.Maintainer per worker, per-node counter-based RNG streams keyed by
// (nodeID, round), serial flush in worker order. Node u's round touches
// only u's own table, so the fan-out is race-free and bit-identical to
// the serial id-order loop at any GOMAXPROCS; SetMaintainWorkers bounds
// or disables it.
//
// # Scenarios and churn
//
// NetworkConfig selects among six mobility models (static, RWP, random
// walk, Gauss–Markov, RPGM groups, ns-2 trace replay) and may overlay a
// node churn schedule: at each refresh, nodes that went down are expired
// from every contact table (ExpireNodes) and readmitted nodes start cold
// (ResetNode), both on the serial engine loop between rounds — so the
// parallel paths stay bit-identical under churn (the churn equivalence
// test pins it). Ready-made workloads live in the preset registry
// (presets.go); each carries a Doc line synthesized from its config.
//
// # Sustained workloads
//
// RunWorkload (workload.go) layers the open-loop query-traffic subsystem
// (internal/workload) on the same clock: Poisson arrivals and Zipf
// resource popularity generated as a pure function of the workload seed,
// executed in sharded per-tick batches between Advance steps — the
// per-query outcome stream is bit-identical serial vs sharded at any
// GOMAXPROCS, including under churn.
package engine

import (
	"fmt"

	"card/internal/bitset"
	"card/internal/bordercast"
	proto "card/internal/card"
	"card/internal/eventq"
	"card/internal/flood"
	"card/internal/geom"
	"card/internal/manet"
	"card/internal/mobility"
	"card/internal/neighborhood"
	"card/internal/topology"
	"card/internal/xrand"
)

// NodeID identifies a node; ids are dense in [0, Nodes).
type NodeID = topology.NodeID

// MobilityKind selects the node-movement model of a simulation.
type MobilityKind int

const (
	// Static pins nodes at their initial uniform placement (sensor
	// networks, the paper's motivating static case).
	Static MobilityKind = iota
	// RandomWaypoint is the paper's mobility model: uniform waypoints,
	// uniform speed in [MinSpeed, MaxSpeed], optional pauses.
	RandomWaypoint
	// RandomWalk moves nodes at constant speed with periodic random
	// direction changes, reflecting off the boundary.
	RandomWalk
	// GaussMarkov runs the Gauss–Markov model: autoregressive speed and
	// direction with tunable memory (GMAlpha), producing smooth
	// temporally-correlated trajectories.
	GaussMarkov
	// GroupMobility runs reference-point group mobility (RPGM): groups
	// share a random-waypoint leader trajectory with bounded per-member
	// jitter — the classic stressor for contact-based schemes.
	GroupMobility
	// TraceReplay replays an ns-2 setdest movement trace (TracePath) with
	// piecewise-linear interpolation; Nodes and the area come from the
	// trace unless overridden.
	TraceReplay
)

func (k MobilityKind) String() string {
	switch k {
	case Static:
		return "static"
	case RandomWaypoint:
		return "waypoint"
	case RandomWalk:
		return "walk"
	case GaussMarkov:
		return "gauss-markov"
	case GroupMobility:
		return "group"
	case TraceReplay:
		return "trace"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// ProactiveKind selects the neighborhood substrate implementation.
type ProactiveKind int

const (
	// OracleView (default) uses the converged R-hop view recomputed from
	// each topology snapshot — the paper's modeling choice, whose metrics
	// exclude proactive-update traffic.
	OracleView ProactiveKind = iota
	// DSDVProtocol runs the real scoped destination-sequenced
	// distance-vector protocol: periodic dumps, triggered updates, soft
	// state. Neighborhood views then converge with protocol dynamics and
	// proactive broadcasts appear in MessageCounts.Proactive.
	DSDVProtocol
)

// TopologyKind selects how connectivity snapshots are recomputed; see
// manet.TopologyMode.
type TopologyKind int

const (
	// SpatialGrid (default) is the incremental spatial-hash builder.
	SpatialGrid TopologyKind = iota
	// FullRebuild rebuilds the grid-indexed graph every refresh.
	FullRebuild
	// NaiveRebuild is the O(N²) all-pairs reference path.
	NaiveRebuild
)

func (k TopologyKind) mode() (manet.TopologyMode, error) {
	switch k {
	case SpatialGrid:
		return manet.IncrementalTopology, nil
	case FullRebuild:
		return manet.FullGridTopology, nil
	case NaiveRebuild:
		return manet.NaiveTopology, nil
	default:
		return 0, fmt.Errorf("engine: unknown topology kind %d", int(k))
	}
}

// NetworkConfig describes the simulated network.
type NetworkConfig struct {
	// Nodes is the network size (>= 2). For TraceReplay it defaults to the
	// trace's node count and may not disagree with it.
	Nodes int
	// Width, Height are the deployment area in meters. For TraceReplay,
	// zero values take the trace's bounding box.
	Width, Height float64
	// TxRange is the radio range in meters (> 0).
	TxRange float64
	// Mobility selects the movement model (default Static).
	Mobility MobilityKind
	// MinSpeed, MaxSpeed bound RWP speeds in m/s (defaults 1 and 19).
	// Under GroupMobility they bound the group leader trajectory instead.
	MinSpeed, MaxSpeed float64
	// Pause is the RWP (or RPGM leader) dwell time at waypoints in seconds.
	Pause float64

	// WalkSpeed, WalkEpoch parameterize RandomWalk: constant speed in m/s
	// (default 10) and direction-change interval in seconds (default 2).
	WalkSpeed, WalkEpoch float64

	// GMMeanSpeed, GMAlpha, GMSpeedSigma, GMDirSigma, GMEpoch parameterize
	// GaussMarkov; zero values take mobility.DefaultGM (10 m/s, α 0.75,
	// σ_s 2 m/s, σ_θ 0.4 rad, 1 s epoch). To request α = 0 exactly
	// (memoryless), set a negative GMAlpha.
	GMMeanSpeed, GMAlpha, GMSpeedSigma, GMDirSigma, GMEpoch float64

	// Groups, GroupRadius, MemberSpeed, MemberPause parameterize
	// GroupMobility: number of groups (default Nodes/20, min 1), member
	// offset bound in meters (default 2·TxRange), member jitter speed in
	// m/s (default 2) and jitter dwell in seconds.
	Groups                                int
	GroupRadius, MemberSpeed, MemberPause float64

	// TracePath names an ns-2 setdest movement trace for TraceReplay.
	TracePath string

	// ChurnMeanUp, ChurnMeanDown enable node churn when both are > 0:
	// every node alternates exponentially distributed up/down phases
	// (deterministic per Seed via per-node RNG streams). Down nodes hold
	// no links, run no protocol rounds, and are readmitted cold. Churn
	// currently requires the OracleView substrate.
	ChurnMeanUp, ChurnMeanDown float64

	// RangeSpread, in [0, 1), gives every node its own radio range drawn
	// uniformly from [TxRange·(1−s), TxRange·(1+s)] — deterministic per
	// Seed from an id-ordered stream. Any positive spread makes links
	// asymmetric and the connectivity graph directed: protocol-level hops
	// then require bidirectional reachability (see topology.LinkModel).
	// Requires the OracleView substrate.
	RangeSpread float64
	// Loss enables probabilistic delivery: each transmission of a
	// protocol-level hop is lost with this probability (in [0, 1)), and
	// LossRetries bounds per-hop retransmissions (default 3 when Loss is
	// set). Retransmissions surface as MessageCounts.Retry; a hop that
	// exhausts the budget behaves like a broken link and pays the
	// protocol's usual recovery cost. Deterministic per Seed and
	// order-independent (see manet/loss.go). Requires OracleView.
	Loss        float64
	LossRetries int
	// PartitionPeriod and PartitionDuration schedule partition-and-heal
	// events (both > 0 to enable): a vertical mid-area barrier cuts every
	// crossing link during the last PartitionDuration seconds of each
	// PartitionPeriod, then heals. Requires OracleView.
	PartitionPeriod, PartitionDuration float64

	// Proactive selects the neighborhood substrate (default OracleView).
	Proactive ProactiveKind
	// ViewCacheCap, when > 0, replaces the resident per-node view table of
	// the OracleView substrate with a capped LRU cache of at most this many
	// materialized views, computed on demand. Lookups stay bit-identical
	// (views are pure functions of the snapshot; see neighborhood.ViewCache)
	// but a million-node field no longer pays O(N) view memory or O(N)
	// per-round warm sweeps — only the views rounds actually read exist.
	// Requires the OracleView substrate. Sized well below the working set
	// it trades recompute time for memory; the 1M preset uses it.
	ViewCacheCap int
	// DSDVPeriod is the full-dump interval for DSDVProtocol in seconds
	// (default 1).
	DSDVPeriod float64
	// Topology selects the snapshot strategy (default SpatialGrid).
	Topology TopologyKind
	// DirtyMaintenance restricts maintenance and selection rounds to the
	// nodes whose outcome could differ from a no-op: nodes within
	// max(R, MaxContactDist) hops of an adjacency change since the last
	// round (so every possibly-broken stored path and stale neighborhood
	// view is revisited — see engine/dirty.go for the invariant), plus
	// every node whose table sits below NoC (covering churn comebacks,
	// expiry victims and walk retries). Clean nodes' tables are provably
	// bit-identical to what a full round would leave; the traffic their
	// trivially-successful validation walks would have generated is not
	// simulated, which is the point — at 100k mostly-pausing nodes a full
	// round is O(N·NoC·r) validation hops for nothing.
	//
	// Requires the SpatialGrid topology (the incremental builder is what
	// reports adjacency diffs) and the OracleView substrate (whose views
	// are retained across refreshes by the same diff).
	DirtyMaintenance bool
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64
}

func (nc *NetworkConfig) fill() error {
	if nc.Nodes < 2 {
		return fmt.Errorf("engine: need at least 2 nodes, got %d", nc.Nodes)
	}
	if nc.Width <= 0 || nc.Height <= 0 {
		return fmt.Errorf("engine: non-positive area %gx%g", nc.Width, nc.Height)
	}
	if nc.TxRange <= 0 {
		return fmt.Errorf("engine: non-positive TxRange %g", nc.TxRange)
	}
	if nc.MinSpeed == 0 {
		nc.MinSpeed = 1
	}
	if nc.MaxSpeed == 0 {
		nc.MaxSpeed = 19
	}
	if (nc.ChurnMeanUp > 0) != (nc.ChurnMeanDown > 0) {
		return fmt.Errorf("engine: churn needs both ChurnMeanUp and ChurnMeanDown > 0 (got %g, %g)",
			nc.ChurnMeanUp, nc.ChurnMeanDown)
	}
	if nc.DirtyMaintenance {
		if nc.Topology != SpatialGrid {
			return fmt.Errorf("engine: DirtyMaintenance requires the SpatialGrid topology (got %v)", nc.Topology)
		}
		if nc.Proactive != OracleView {
			return fmt.Errorf("engine: DirtyMaintenance requires the OracleView substrate")
		}
	}
	if nc.ViewCacheCap < 0 {
		return fmt.Errorf("engine: negative ViewCacheCap %d", nc.ViewCacheCap)
	}
	if nc.ViewCacheCap > 0 && nc.Proactive != OracleView {
		return fmt.Errorf("engine: ViewCacheCap requires the OracleView substrate")
	}
	if nc.RangeSpread < 0 || nc.RangeSpread >= 1 {
		return fmt.Errorf("engine: RangeSpread %g outside [0, 1)", nc.RangeSpread)
	}
	if nc.Loss < 0 || nc.Loss >= 1 {
		return fmt.Errorf("engine: Loss %g outside [0, 1)", nc.Loss)
	}
	if nc.LossRetries < 0 {
		return fmt.Errorf("engine: negative LossRetries %d", nc.LossRetries)
	}
	if (nc.PartitionPeriod > 0) != (nc.PartitionDuration > 0) {
		return fmt.Errorf("engine: partitions need both PartitionPeriod and PartitionDuration > 0 (got %g, %g)",
			nc.PartitionPeriod, nc.PartitionDuration)
	}
	if nc.PartitionPeriod > 0 && nc.PartitionDuration >= nc.PartitionPeriod {
		return fmt.Errorf("engine: PartitionDuration %g must be shorter than PartitionPeriod %g",
			nc.PartitionDuration, nc.PartitionPeriod)
	}
	if nc.richLinks() && nc.Proactive != OracleView {
		return fmt.Errorf("engine: heterogeneous ranges, loss and partitions require the OracleView substrate (DSDV does not yet model them)")
	}
	return nil
}

// richLinks reports whether the config departs from the paper's uniform
// lossless radio model.
func (nc *NetworkConfig) richLinks() bool {
	return nc.RangeSpread > 0 || nc.Loss > 0 || nc.PartitionPeriod > 0
}

// hasChurn reports whether the config enables node churn.
func (nc *NetworkConfig) hasChurn() bool { return nc.ChurnMeanUp > 0 && nc.ChurnMeanDown > 0 }

// gmConfig resolves the Gauss–Markov parameters against DefaultGM.
func (nc *NetworkConfig) gmConfig() mobility.GMConfig {
	cfg := mobility.DefaultGM()
	if nc.GMMeanSpeed > 0 {
		cfg.MeanSpeed = nc.GMMeanSpeed
	}
	if nc.GMAlpha != 0 {
		cfg.Alpha = nc.GMAlpha
		if cfg.Alpha < 0 {
			cfg.Alpha = 0
		}
	}
	if nc.GMSpeedSigma > 0 {
		cfg.SpeedSigma = nc.GMSpeedSigma
	}
	if nc.GMDirSigma > 0 {
		cfg.DirSigma = nc.GMDirSigma
	}
	if nc.GMEpoch > 0 {
		cfg.Epoch = nc.GMEpoch
	}
	return cfg
}

// rpgmConfig resolves the group-mobility parameters.
func (nc *NetworkConfig) rpgmConfig() mobility.RPGMConfig {
	groups := nc.Groups
	if groups <= 0 {
		groups = nc.Nodes / 20
		if groups < 1 {
			groups = 1
		}
	}
	radius := nc.GroupRadius
	if radius <= 0 {
		radius = 2 * nc.TxRange
	}
	speed := nc.MemberSpeed
	if speed <= 0 {
		speed = 2
	}
	return mobility.RPGMConfig{
		Groups:      groups,
		GroupRadius: radius,
		Leader:      mobility.RWPConfig{MinSpeed: nc.MinSpeed, MaxSpeed: nc.MaxSpeed, Pause: nc.Pause},
		MemberSpeed: speed,
		MemberPause: nc.MemberPause,
	}
}

// Engine binds network, substrate and protocol and owns simulated time.
//
// Mutation (Advance, SelectContacts, Maintain) is single-goroutine; run
// independent engines on separate goroutines for parameter sweeps.
// BatchQuery manages its own internal parallelism and must not overlap
// with mutation.
type Engine struct {
	net  *manet.Network
	prot *proto.Protocol
	nb   neighborhood.Provider
	dsdv *neighborhood.DSDV // non-nil iff Proactive == DSDVProtocol
	cfg  proto.Config

	q *eventq.Queue
	// rounds is the number of maintenance boundaries fired; boundary k
	// (1-based) fires at exactly float64(k) * cfg.ValidatePeriod.
	rounds int64
	// maintWorkers bounds the maintenance/selection fan-out; see
	// SetMaintainWorkers. 0 = up to GOMAXPROCS, 1 = serial.
	maintWorkers int
	// maintPool caches the per-worker Maintainers across rounds (their
	// O(N) scratch would otherwise be reallocated every ValidatePeriod);
	// grown on demand in workerMaintainers.
	maintPool []*proto.Maintainer

	// Dirty-set round state (NetworkConfig.DirtyMaintenance); see dirty.go.
	dirtyMode bool
	oracle    viewRetainer // the substrate's retention hook; non-nil iff dirtyMode
	dirtyAcc  *bitset.Set  // nodes dirtied since the last maintenance round
	deficit   *bitset.Set  // nodes whose table sits below NoC (see dirty.go)
	roundSet  *bitset.Set  // scratch: dirtyAcc ∪ deficit for the round list
	dirtyAll  bool         // a full rebuild invalidated everything
	lastRound int          // nodes processed by the most recent round
	// Multi-source BFS scratch for expanding adjacency diffs.
	dirtyStamp []uint64
	dirtyGen   uint64
	dirtyQueue []NodeID
	roundList  []NodeID
}

// viewRetainer is the slice of the neighborhood substrate the dirty-set
// machinery needs: advance the view cache's epoch keeping every view
// except the listed ones. Oracle and ViewCache both implement it.
type viewRetainer interface {
	Retain(changed []NodeID)
}

// New builds a network per nc and a CARD engine per cfg.
func New(nc NetworkConfig, cfg proto.Config) (*Engine, error) {
	var trace *mobility.Trace
	if nc.Mobility == TraceReplay {
		if nc.TracePath == "" {
			return nil, fmt.Errorf("engine: TraceReplay mobility needs a TracePath")
		}
		tr, err := mobility.LoadSetdestFile(nc.TracePath)
		if err != nil {
			return nil, err
		}
		trace = tr
		if nc.Nodes == 0 {
			nc.Nodes = tr.N()
		}
		if nc.Nodes != tr.N() {
			return nil, fmt.Errorf("engine: config says %d nodes but trace %s has %d",
				nc.Nodes, nc.TracePath, tr.N())
		}
		if nc.Width == 0 && nc.Height == 0 {
			b := tr.Bounds()
			nc.Width, nc.Height = b.W, b.H
		}
	}
	if err := nc.fill(); err != nil {
		return nil, err
	}
	area := geom.Rect{W: nc.Width, H: nc.Height}
	rng := xrand.New(nc.Seed)
	var model mobility.Model
	var err error
	switch nc.Mobility {
	case Static:
		model = mobility.NewStatic(topology.UniformPositions(nc.Nodes, area, rng.Derive(0)), area)
	case RandomWaypoint:
		model, err = mobility.NewRandomWaypoint(nc.Nodes, area, mobility.RWPConfig{
			MinSpeed: nc.MinSpeed, MaxSpeed: nc.MaxSpeed, Pause: nc.Pause,
		}, rng.Derive(0))
	case RandomWalk:
		speed, epoch := nc.WalkSpeed, nc.WalkEpoch
		if speed == 0 {
			speed = 10
		}
		if epoch == 0 {
			epoch = 2
		}
		pts := topology.UniformPositions(nc.Nodes, area, rng.Derive(0))
		model, err = mobility.NewRandomWalk(pts, area, speed, epoch, rng.Derive(4))
	case GaussMarkov:
		model, err = mobility.NewGaussMarkov(nc.Nodes, area, nc.gmConfig(), rng.Derive(0))
	case GroupMobility:
		model, err = mobility.NewRPGM(nc.Nodes, area, nc.rpgmConfig(), rng.Derive(0))
	case TraceReplay:
		model, err = mobility.NewTraceReplay(trace, area)
	default:
		return nil, fmt.Errorf("engine: unknown mobility kind %d", int(nc.Mobility))
	}
	if err != nil {
		return nil, err
	}
	mode, err := nc.Topology.mode()
	if err != nil {
		return nil, err
	}
	var churn *manet.Churn
	if nc.hasChurn() {
		if nc.Proactive == DSDVProtocol {
			return nil, fmt.Errorf("engine: churn requires the OracleView substrate (DSDV does not yet model node departure)")
		}
		churn, err = manet.NewChurn(nc.Nodes, manet.ChurnConfig{
			MeanUp: nc.ChurnMeanUp, MeanDown: nc.ChurnMeanDown,
		}, rng.Derive(3))
		if err != nil {
			return nil, err
		}
	}
	lm := topology.LinkModel{Uniform: nc.TxRange}
	if nc.RangeSpread > 0 {
		// Per-node ranges from their own derived stream, drawn in id
		// order — stable against every other knob.
		rr := rng.Derive(5)
		ranges := make([]float64, nc.Nodes)
		for i := range ranges {
			ranges[i] = nc.TxRange * (1 + nc.RangeSpread*rr.Range(-1, 1))
		}
		lm.Ranges = ranges
	}
	net := manet.NewNetwork(model, manet.Config{
		Link:      lm,
		Mode:      mode,
		Churn:     churn,
		Loss:      manet.LossConfig{Rate: nc.Loss, Retries: nc.LossRetries},
		Partition: manet.PartitionConfig{Period: nc.PartitionPeriod, Duration: nc.PartitionDuration},
	}, rng.Derive(1))
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var nb neighborhood.Provider
	var dsdv *neighborhood.DSDV
	switch nc.Proactive {
	case OracleView:
		if nc.ViewCacheCap > 0 {
			nb = neighborhood.NewViewCache(net, cfg.R, nc.ViewCacheCap)
		} else {
			nb = neighborhood.NewOracle(net, cfg.R)
		}
	case DSDVProtocol:
		dcfg := neighborhood.DefaultDSDV()
		if nc.DSDVPeriod > 0 {
			dcfg.Period = nc.DSDVPeriod
			dcfg.ExpireAfter = 3 * nc.DSDVPeriod
		}
		d, err := neighborhood.NewDSDV(net, cfg.R, dcfg)
		if err != nil {
			return nil, err
		}
		// Converge the initial tables so t=0 selection sees a warm
		// substrate, exactly as a deployment would after R dump periods.
		d.Converge(0, 4*cfg.R)
		nb = d
		dsdv = d
	default:
		return nil, fmt.Errorf("engine: unknown proactive kind %d", int(nc.Proactive))
	}
	p, err := proto.New(net, nb, cfg, rng.Derive(2))
	if err != nil {
		return nil, err
	}
	e := &Engine{net: net, prot: p, nb: nb, dsdv: dsdv, cfg: p.Config(), q: eventq.New()}
	if nc.DirtyMaintenance {
		e.dirtyMode = true
		e.oracle = nb.(viewRetainer) // fill() pinned Proactive == OracleView
		e.dirtyAcc = bitset.New(nc.Nodes)
		e.deficit = bitset.New(nc.Nodes)
		e.deficit.Fill() // every table starts empty, hence below NoC
		e.roundSet = bitset.New(nc.Nodes)
		e.dirtyStamp = make([]uint64, nc.Nodes)
	}
	e.scheduleMaintenance()
	return e, nil
}

// scheduleMaintenance queues the next maintenance boundary. Boundaries are
// derived from the integer round counter, never from the float clock, so
// the schedule is drift-free: boundary k is always exactly
// float64(k)·period, each fires exactly once, and the sequence is strictly
// increasing.
func (e *Engine) scheduleMaintenance() {
	k := e.rounds + 1
	e.q.At(float64(k)*e.cfg.ValidatePeriod, e.maintainTick)
}

func (e *Engine) maintainTick(now float64) {
	e.refresh(now)
	if e.dsdv != nil {
		e.dsdv.Round(now)
	}
	e.maintainRound(now)
	e.rounds++
	e.scheduleMaintenance()
}

// refresh re-snapshots the network at time t and applies the consequences:
// churn flips expire protocol state, and the DSDV substrate observes link
// breaks. Runs serially (between rounds), so the expiry order — down
// flips in id order, then up flips — is deterministic.
func (e *Engine) refresh(t float64) {
	e.net.RefreshAt(t)
	if e.dirtyMode {
		e.noteTopologyChanges()
	}
	if e.net.HasChurn() {
		affected := e.prot.ExpireNodes(e.net.ChurnedDown())
		if e.dirtyMode {
			// Expiry only shrinks tables: every affected owner is now
			// below NoC or was already — deficit entries, never exits.
			for _, u := range affected {
				e.deficit.Add(int(u))
			}
		}
		for _, v := range e.net.ChurnedUp() {
			e.prot.ResetNode(v)
			if e.dirtyMode {
				e.deficit.Add(int(v)) // readmitted cold: empty table
			}
		}
	}
	if e.dsdv != nil {
		e.dsdv.DetectBreaks(t)
	}
}

// Advance moves simulated time forward by dt seconds: node positions and
// the connectivity snapshot are refreshed, one maintenance round runs at
// every elapsed ValidatePeriod boundary (a boundary landing exactly on the
// target time fires), and — under DSDVProtocol — the proactive substrate
// detects link breaks and issues its periodic dumps. dt <= 0 (or NaN) is a
// no-op.
func (e *Engine) Advance(dt float64) {
	if !(dt > 0) {
		return
	}
	target := e.q.Now() + dt
	e.q.RunUntil(target)
	if target > e.net.Now() {
		e.refresh(target)
	}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.q.Now() }

// Rounds returns how many maintenance rounds have fired so far.
func (e *Engine) Rounds() int64 { return e.rounds }

// Nodes returns the network size (up or down; see UpNodes).
func (e *Engine) Nodes() int { return e.net.N() }

// UpNodes returns how many nodes are up in the current snapshot (equal to
// Nodes without churn).
func (e *Engine) UpNodes() int { return e.net.UpCount() }

// Config returns the protocol configuration with defaults filled.
func (e *Engine) Config() proto.Config { return e.cfg }

// Network exposes the underlying substrate.
func (e *Engine) Network() *manet.Network { return e.net }

// Protocol exposes the underlying CARD protocol instance for advanced use
// (per-node tables, raw reachability sets).
func (e *Engine) Protocol() *proto.Protocol { return e.prot }

// Neighborhood returns the proactive substrate.
func (e *Engine) Neighborhood() neighborhood.Provider { return e.nb }

// Scheduler exposes the engine's event queue so callers can hang custom
// periodic behavior (workload generators, measurement probes) off the same
// clock. Events must not assume they run before or after maintenance at
// equal timestamps beyond the queue's FIFO tie-break.
func (e *Engine) Scheduler() *eventq.Queue { return e.q }

// SelectContacts runs initial contact selection for every node, sharded
// across the maintenance worker pool (see SetMaintainWorkers); results are
// bit-identical to the serial id-order loop.
func (e *Engine) SelectContacts() int { return e.selectRound(e.Now()) }

// Maintain forces one maintenance round for every node now (outside the
// periodic schedule; the boundary counter is not advanced). Like the
// scheduled rounds, it is sharded across the maintenance worker pool.
func (e *Engine) Maintain() { e.maintainRound(e.Now()) }

// Query runs a CARD destination search from src for target.
func (e *Engine) Query(src, target NodeID) proto.QueryResult {
	return e.prot.Query(src, target)
}

// Reachability returns the percentage of live network nodes u can reach
// with a depth-D contact search. Under churn the denominator is the up
// population (a down node is not discoverable by any mechanism) and a
// down u reports 0; without churn this is the plain over-N percentage.
func (e *Engine) Reachability(u NodeID, depth int) float64 {
	return e.prot.Reachability(u, depth)
}

// MeanReachability averages Reachability over the up nodes (all nodes
// when the scenario runs no churn).
func (e *Engine) MeanReachability(depth int) float64 {
	return e.prot.MeanReachability(depth)
}

// Stats returns protocol-level statistics.
func (e *Engine) Stats() proto.Stats { return e.prot.Stats() }

// MessageCounts reports the cumulative control-message tallies by purpose.
type MessageCounts struct {
	Selection    int64 // CSQ forward + reply hops
	Backtrack    int64 // CSQ backtracking hops
	Validation   int64 // contact path-validation hops
	Recovery     int64 // local-recovery splice hops
	Query        int64 // discovery query hops (CARD, flooding, bordercast)
	Reply        int64 // success-reply hops
	Proactive    int64 // neighborhood protocol broadcasts (when DSDV runs)
	Register     int64 // rendezvous registration hops and region floods
	Retry        int64 // link-layer retransmissions under a lossy link model
	TotalPerNode float64
}

// Messages returns the engine's control-message accounting.
func (e *Engine) Messages() MessageCounts {
	k := e.net.Totals()
	return MessageCounts{
		Selection:    k.Get(manet.CatCSQ),
		Backtrack:    k.Get(manet.CatBacktrack),
		Validation:   k.Get(manet.CatValidate),
		Recovery:     k.Get(manet.CatRecovery),
		Query:        k.Get(manet.CatQuery),
		Reply:        k.Get(manet.CatReply),
		Proactive:    k.Get(manet.CatDSDV),
		Register:     k.Get(manet.CatRegister),
		Retry:        k.Get(manet.CatRetry),
		TotalPerNode: float64(k.Total()) / float64(e.net.N()),
	}
}

// FloodQuery runs the flooding baseline on the current topology.
func (e *Engine) FloodQuery(src, target NodeID) (found bool, messages int64) {
	r := flood.Query(e.net, src, target, true)
	return r.Found, r.Messages
}

// BordercastQuery runs the ZRP bordercasting baseline (zone radius = R,
// query detection QD2) on the current topology.
func (e *Engine) BordercastQuery(src, target NodeID) (found bool, messages int64, err error) {
	bc, err := bordercast.New(e.net, e.nb, bordercast.Config{Zone: e.cfg.R, QD: bordercast.QD2})
	if err != nil {
		return false, 0, err
	}
	r := bc.Query(src, target)
	return r.Found, r.Messages, nil
}

// RandomPair draws a uniformly random (src, dst) pair of distinct nodes
// from the largest connected component — the standard query workload. ok
// is false when the component holds fewer than two nodes; src and dst are
// then both the component's sole member (or 0 on an empty graph), never an
// out-of-range index.
func (e *Engine) RandomPair(seed uint64) (p Pair, ok bool) {
	comp := e.net.Graph().LargestComponent()
	rng := xrand.New(seed)
	return drawPair(comp, rng)
}

// RandomPairs draws k independent pairs from the largest component with
// one derived random stream (deterministic in seed). Pairs whose component
// is degenerate are skipped, so the result may be shorter than k.
func (e *Engine) RandomPairs(k int, seed uint64) []Pair {
	if k <= 0 {
		return nil
	}
	comp := e.net.Graph().LargestComponent()
	rng := xrand.New(seed)
	pairs := make([]Pair, 0, k)
	for i := 0; i < k; i++ {
		p, ok := drawPair(comp, rng)
		if !ok {
			break // degenerate component: no distinct pairs exist
		}
		pairs = append(pairs, p)
	}
	return pairs
}

// drawPair picks two distinct members of comp without rejection sampling:
// the second index is drawn from the remaining len-1 slots.
func drawPair(comp []NodeID, rng *xrand.Rand) (Pair, bool) {
	switch len(comp) {
	case 0:
		return Pair{}, false
	case 1:
		return Pair{Src: comp[0], Dst: comp[0]}, false
	}
	si := rng.Intn(len(comp))
	di := rng.Intn(len(comp) - 1)
	if di >= si {
		di++
	}
	return Pair{Src: comp[si], Dst: comp[di]}, true
}
