package engine

import (
	proto "card/internal/card"
	"card/internal/neighborhood"
	"card/internal/par"
)

// The round fan-out parallelizes the write-side hot loop — network-wide
// contact selection and maintenance — with the same recipe BatchQuery uses
// for the read side, plus one extra ingredient for the writes:
//
//  1. neighborhood views are warmed before the fan-out, so provider reads
//     are pure;
//  2. each worker owns a card.Maintainer (private visited/overlap scratch,
//     private RNG, private stats and message tallies), flushed serially in
//     worker order after the join;
//  3. node u draws its round randomness from the counter-based substream
//     (u, round) of the run seed — never from a shared generator — so its
//     coin flips do not depend on which worker runs it or in what order.
//
// Node u's round reads and writes only u's own contact table, so sharding
// nodes across workers is race-free, and (3) makes it bit-identical to the
// serial id-order loop at any GOMAXPROCS. TestMaintainParallelEquivalence
// pins that contract.

// SetMaintainWorkers bounds the worker fan-out of maintenance and
// selection rounds: 0 (the default) uses up to GOMAXPROCS workers, 1
// forces the serial reference path, n > 1 caps the pool at n. Results,
// statistics and message accounting are bit-identical at every setting.
// Not safe to call concurrently with Advance.
func (e *Engine) SetMaintainWorkers(n int) { e.maintWorkers = n }

// roundWorkers resolves the worker bound for a round over n nodes.
func (e *Engine) roundWorkers(n int) int {
	w := e.maintWorkers
	if w <= 0 {
		w = par.Limit()
	}
	if w > n {
		w = n
	}
	return w
}

// warmProvider materializes lazily-computed neighborhood views up front:
// afterwards the provider is read-only until the next refresh or substrate
// round, so workers share it without locks.
func (e *Engine) warmProvider() {
	if w, ok := e.nb.(neighborhood.Warmer); ok {
		w.WarmAll()
	}
}

// workerMaintainers returns the cached per-worker Maintainers, growing
// the pool to the requested bound. Maintainers are reusable across
// rounds: the RNG is reseeded per (node, round) and Flush zeroes the
// tallies, so caching them avoids reallocating O(N) scratch every
// ValidatePeriod. Must be called before the fan-out starts (growing the
// pool inside workers would race).
func (e *Engine) workerMaintainers(workers int) []*proto.Maintainer {
	for len(e.maintPool) < workers {
		e.maintPool = append(e.maintPool, e.prot.NewMaintainer())
	}
	return e.maintPool[:workers]
}

// maintainRound runs one maintenance round, sharded across the worker
// pool (or serially when the bound says so). Under DirtyMaintenance the
// round is restricted to the dirty list (see dirty.go), which it
// consumes; otherwise it covers every node.
func (e *Engine) maintainRound(now float64) {
	n := e.net.N()
	if e.dirtyMode && !e.dirtyAll {
		list := e.dirtyRoundList()
		e.lastRound = len(list)
		e.maintainList(list, now)
		e.noteRoundTables(list) // only the listed tables could have changed
		e.dirtyAcc.Clear()
		return
	}
	e.lastRound = n
	if e.dirtyMode {
		e.dirtyAll = false
		e.dirtyAcc.Clear()
		defer e.noteAllTables()
	}
	workers := e.roundWorkers(n)
	if workers <= 1 {
		e.prot.MaintainAll(now)
		return
	}
	e.warmProvider()
	round := e.prot.NextRound()
	ms := e.workerMaintainers(workers)
	par.WorkersN(workers, n, func(worker, i int) {
		ms[worker].MaintainNode(NodeID(i), now, round)
	})
	flushAll(ms)
}

// maintainList runs one maintenance round over just the listed nodes
// (ascending ids), sharded like a full round and bit-identical to the
// serial proto.MaintainSet loop.
func (e *Engine) maintainList(list []NodeID, now float64) {
	workers := e.roundWorkers(len(list))
	if workers <= 1 {
		e.prot.MaintainSet(list, now)
		return
	}
	e.warmProvider()
	round := e.prot.NextRound()
	ms := e.workerMaintainers(workers)
	par.WorkersN(workers, len(list), func(worker, i int) {
		ms[worker].MaintainNode(list[i], now, round)
	})
	flushAll(ms)
}

// selectRound runs one selection round, sharded like maintainRound, and
// returns the number of contacts added. Under DirtyMaintenance it reads
// the dirty list without consuming it — only a maintenance round clears
// the accumulator (selection is the lighter half of the round pair and
// may be invoked out of schedule, e.g. the t=0 warm-up).
func (e *Engine) selectRound(now float64) int {
	n := e.net.N()
	if e.dirtyMode && !e.dirtyAll {
		list := e.dirtyRoundList()
		e.lastRound = len(list)
		added := e.selectList(list, now)
		e.noteRoundTables(list)
		return added
	}
	e.lastRound = n
	if e.dirtyMode {
		defer e.noteAllTables()
	}
	workers := e.roundWorkers(n)
	if workers <= 1 {
		return e.prot.SelectAll(now)
	}
	e.warmProvider()
	round := e.prot.NextRound()
	ms := e.workerMaintainers(workers)
	added := make([]int, n)
	par.WorkersN(workers, n, func(worker, i int) {
		added[i] = ms[worker].SelectNode(NodeID(i), now, round)
	})
	flushAll(ms)
	total := 0
	for _, a := range added {
		total += a
	}
	return total
}

// selectList runs one selection round over just the listed nodes
// (ascending ids), sharded like a full round.
func (e *Engine) selectList(list []NodeID, now float64) int {
	workers := e.roundWorkers(len(list))
	if workers <= 1 {
		return e.prot.SelectSet(list, now)
	}
	e.warmProvider()
	round := e.prot.NextRound()
	ms := e.workerMaintainers(workers)
	added := make([]int, len(list))
	par.WorkersN(workers, len(list), func(worker, i int) {
		added[i] = ms[worker].SelectNode(list[i], now, round)
	})
	flushAll(ms)
	total := 0
	for _, a := range added {
		total += a
	}
	return total
}

// flushAll hands the workers' local stats and message tallies to the
// protocol serially, in worker order: the shared recorder sees one
// deterministic sum per category, whatever the interleaving was.
func flushAll(ms []*proto.Maintainer) {
	for _, m := range ms {
		m.Flush()
	}
}
