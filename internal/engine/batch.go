package engine

import (
	proto "card/internal/card"
	"card/internal/par"
)

// Pair is one (source, destination) query assignment.
type Pair struct {
	Src, Dst NodeID
}

// BatchQuery runs one CARD destination search per pair and returns the
// results indexed like pairs. Queries are fanned across up to GOMAXPROCS
// workers; because each query is a pure read of the protocol state between
// maintenance rounds, the results — and the message accounting — are
// identical to running e.Query over the pairs sequentially, regardless of
// scheduling. Determinism contract: equal engine state and equal pairs
// give equal results, with any number of workers.
//
// BatchQuery must not run concurrently with Advance, SelectContacts or
// Maintain (the engine is externally synchronized, like the network it
// drives); concurrent BatchQuery calls on one engine are likewise not
// allowed, since workers flush tallies into the shared recorder at the
// end. Swap in a manet.AtomicCounters recorder if live concurrent
// accounting across engines is needed.
func (e *Engine) BatchQuery(pairs []Pair) []proto.QueryResult {
	out := make([]proto.QueryResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	e.warmProvider()
	// One Querier per worker: private visited scratch, private tallies.
	// The worker-count bound is read once and passed explicitly so a
	// concurrent GOMAXPROCS change cannot desync ids from the slice.
	limit := par.Limit()
	queriers := make([]*proto.Querier, limit)
	par.WorkersN(limit, len(pairs), func(worker, i int) {
		q := queriers[worker]
		if q == nil {
			q = e.prot.NewQuerier()
			queriers[worker] = q
		}
		out[i] = q.Query(pairs[i].Src, pairs[i].Dst)
	})
	// Serial flush after the join: totals land in the recorder in one
	// deterministic sum, whatever the interleaving was.
	for _, q := range queriers {
		if q != nil {
			q.Flush()
		}
	}
	return out
}
