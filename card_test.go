package card

import (
	"testing"
)

func newSim(t *testing.T, nc NetworkConfig, cfg Config) *Simulation {
	t.Helper()
	s, err := NewSimulation(nc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func staticCfg() (NetworkConfig, Config) {
	return NetworkConfig{Nodes: 300, Width: 710, Height: 710, TxRange: 50, Seed: 7},
		Config{R: 3, MaxContactDist: 16, NoC: 5}
}

func TestNewSimulationValidation(t *testing.T) {
	bad := []NetworkConfig{
		{Nodes: 1, Width: 10, Height: 10, TxRange: 5},
		{Nodes: 10, Width: 0, Height: 10, TxRange: 5},
		{Nodes: 10, Width: 10, Height: 10, TxRange: 0},
		{Nodes: 10, Width: 10, Height: 10, TxRange: 5, Mobility: MobilityKind(9)},
	}
	for i, nc := range bad {
		if _, err := NewSimulation(nc, Config{R: 2, MaxContactDist: 6}); err == nil {
			t.Errorf("case %d accepted: %+v", i, nc)
		}
	}
	nc, _ := staticCfg()
	if _, err := NewSimulation(nc, Config{R: 0, MaxContactDist: 6}); err == nil {
		t.Error("bad protocol config accepted")
	}
}

func TestEndToEndStaticDiscovery(t *testing.T) {
	nc, cfg := staticCfg()
	s := newSim(t, nc, cfg)
	if s.Nodes() != 300 {
		t.Fatalf("Nodes = %d", s.Nodes())
	}
	added := s.SelectContacts()
	if added == 0 {
		t.Fatal("no contacts selected")
	}
	before := s.MeanReachability(1)
	// Query a pair from the largest component: CARD should find most, and
	// flooding all.
	found, floodFound := 0, 0
	const q = 40
	for i := 0; i < q; i++ {
		src, dst := s.RandomPair(uint64(i))
		if s.Query(src, dst).Found {
			found++
		}
		if ok, _ := s.FloodQuery(src, dst); ok {
			floodFound++
		}
	}
	if floodFound != q {
		t.Errorf("flooding found %d/%d connected pairs", floodFound, q)
	}
	if found == 0 {
		t.Error("CARD found nothing")
	}
	if before <= 0 {
		t.Error("reachability not positive")
	}
	m := s.Messages()
	if m.Selection == 0 || m.TotalPerNode <= 0 {
		t.Errorf("message accounting empty: %+v", m)
	}
}

func TestEndToEndComparisonTraffic(t *testing.T) {
	nc, cfg := staticCfg()
	s := newSim(t, nc, cfg)
	s.SelectContacts()
	var cardMsgs, floodMsgs, bcMsgs int64
	for i := 0; i < 25; i++ {
		src, dst := s.RandomPair(uint64(100 + i))
		cardMsgs += s.Query(src, dst).Messages
		_, fm := s.FloodQuery(src, dst)
		floodMsgs += fm
		_, bm, err := s.BordercastQuery(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		bcMsgs += bm
	}
	if cardMsgs >= floodMsgs {
		t.Errorf("CARD traffic (%d) not below flooding (%d)", cardMsgs, floodMsgs)
	}
	if bcMsgs >= floodMsgs {
		t.Errorf("bordercast traffic (%d) not below flooding (%d)", bcMsgs, floodMsgs)
	}
}

func TestMobileSimulationAdvance(t *testing.T) {
	nc, cfg := staticCfg()
	nc.Mobility = RandomWaypoint
	nc.Nodes = 200
	cfg.ValidatePeriod = 1
	s := newSim(t, nc, cfg)
	s.SelectContacts()
	s.Advance(5.5)
	if s.Now() != 5.5 {
		t.Errorf("Now = %v, want 5.5", s.Now())
	}
	st := s.Stats()
	if st.ContactsSelected == 0 {
		t.Error("no contacts ever selected")
	}
	m := s.Messages()
	if m.Validation == 0 {
		t.Error("Advance ran no validation rounds")
	}
	// Advancing by zero or negative is a no-op.
	s.Advance(0)
	s.Advance(-1)
	if s.Now() != 5.5 {
		t.Error("no-op Advance moved the clock")
	}
}

func TestTopologyCensus(t *testing.T) {
	nc, cfg := staticCfg()
	s := newSim(t, nc, cfg)
	c := s.TopologyCensus()
	if c.Links == 0 || c.MeanDegree <= 0 || c.Diameter == 0 {
		t.Errorf("census empty: %+v", c)
	}
	if c.LargestCompPct <= 0 || c.LargestCompPct > 100 {
		t.Errorf("LCC%% = %v", c.LargestCompPct)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	nc, cfg := staticCfg()
	a := newSim(t, nc, cfg)
	b := newSim(t, nc, cfg)
	a.SelectContacts()
	b.SelectContacts()
	if a.Messages() != b.Messages() {
		t.Error("same-seed simulations diverged in message counts")
	}
	if a.MeanReachability(1) != b.MeanReachability(1) {
		t.Error("same-seed simulations diverged in reachability")
	}
}

func TestContactsAccessor(t *testing.T) {
	nc, cfg := staticCfg()
	s := newSim(t, nc, cfg)
	s.SelectContacts()
	total := 0
	for u := NodeID(0); int(u) < s.Nodes(); u++ {
		for _, c := range s.Contacts(u) {
			total++
			if c.Hops() <= 0 {
				t.Fatalf("contact with non-positive hops: %+v", c)
			}
		}
	}
	if total == 0 {
		t.Error("no contacts visible through accessor")
	}
}

func TestDSDVSubstrateEndToEnd(t *testing.T) {
	nc, cfg := staticCfg()
	nc.Proactive = DSDVProtocol
	nc.Nodes = 200
	s := newSim(t, nc, cfg)
	if s.SelectContacts() == 0 {
		t.Fatal("no contacts selected on DSDV substrate")
	}
	m := s.Messages()
	if m.Proactive == 0 {
		t.Error("DSDV substrate counted no proactive broadcasts")
	}
	// Static network: the converged DSDV view must equal the oracle view,
	// so reachability through either substrate agrees.
	ncO := nc
	ncO.Proactive = OracleView
	o := newSim(t, ncO, cfg)
	o.SelectContacts()
	dr, or := s.MeanReachability(1), o.MeanReachability(1)
	if dr <= 0 {
		t.Fatalf("DSDV reachability = %v", dr)
	}
	diff := dr - or
	if diff < 0 {
		diff = -diff
	}
	if diff > 5 {
		t.Errorf("DSDV (%v%%) and oracle (%v%%) reachability diverge on a static net", dr, or)
	}
	// Queries resolve over DSDV tables too.
	found := 0
	for i := 0; i < 20; i++ {
		src, dst := s.RandomPair(uint64(i))
		if s.Query(src, dst).Found {
			found++
		}
	}
	if found == 0 {
		t.Error("no queries resolved over the DSDV substrate")
	}
}

func TestDSDVSubstrateUnderMobility(t *testing.T) {
	nc, cfg := staticCfg()
	nc.Proactive = DSDVProtocol
	nc.Mobility = RandomWaypoint
	nc.Nodes = 120
	nc.DSDVPeriod = 0.5
	cfg.ValidatePeriod = 1
	s := newSim(t, nc, cfg)
	s.SelectContacts()
	s.Advance(5)
	m := s.Messages()
	if m.Proactive == 0 || m.Validation == 0 {
		t.Errorf("mobile DSDV run missing traffic: %+v", m)
	}
	if s.MeanReachability(1) <= 0 {
		t.Error("reachability collapsed under mobile DSDV")
	}
}

// TestScale1kTopologyEquivalence is the correctness half of the scaling
// acceptance bar (the speed half lives in BenchmarkScale1k*): the 1000-node
// random-waypoint scenario with 500 batched queries produces bit-identical
// QueryResults and message accounting on the spatial-grid engine and on the
// O(N²) rebuild path for equal seeds.
func TestScale1kTopologyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node naive-topology run is slow")
	}
	grid := newScale1k(t, SpatialGrid)
	naive := newScale1k(t, NaiveRebuild)
	resG := runScale1k(t, grid, 30)
	resN := runScale1k(t, naive, 30)
	if len(resG) != len(resN) {
		t.Fatalf("result counts differ: %d vs %d", len(resG), len(resN))
	}
	for i := range resG {
		if resG[i] != resN[i] {
			t.Fatalf("query %d differs: grid %+v, naive %+v", i, resG[i], resN[i])
		}
	}
	if grid.Messages() != naive.Messages() {
		t.Errorf("accounting differs:\n grid  %+v\n naive %+v", grid.Messages(), naive.Messages())
	}
}

func TestBatchQueryFacade(t *testing.T) {
	nc, cfg := staticCfg()
	s := newSim(t, nc, cfg)
	s.SelectContacts()
	pairs := s.RandomPairs(100, 42)
	if len(pairs) != 100 {
		t.Fatalf("RandomPairs drew %d, want 100", len(pairs))
	}
	res := s.BatchQuery(pairs)
	// Cross-check against sequential queries on an identical simulation.
	s2 := newSim(t, nc, cfg)
	s2.SelectContacts()
	for i, p := range pairs {
		if seq := s2.Query(p.Src, p.Dst); seq != res[i] {
			t.Fatalf("pair %d: batch %+v != sequential %+v", i, res[i], seq)
		}
	}
	if s.Messages() != s2.Messages() {
		t.Errorf("batch accounting %+v != sequential %+v", s.Messages(), s2.Messages())
	}
}

func TestPresetSimulation(t *testing.T) {
	if len(Presets()) == 0 {
		t.Fatal("no presets registered")
	}
	if _, err := NewPresetSimulation("no-such", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if testing.Short() {
		t.Skip("full-size preset build is slow")
	}
	s, err := NewPresetSimulation("sparse-rescue", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.SelectContacts() == 0 {
		t.Error("preset simulation selected no contacts")
	}
}

func TestBadProactiveKindRejected(t *testing.T) {
	nc, cfg := staticCfg()
	nc.Proactive = ProactiveKind(9)
	if _, err := NewSimulation(nc, cfg); err == nil {
		t.Error("unknown proactive kind accepted")
	}
}
