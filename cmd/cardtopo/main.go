// Command cardtopo inspects the unit-disk topologies behind the paper's
// Table 1: it generates a scenario (or a custom network) and prints its
// connectivity census.
//
// Usage:
//
//	cardtopo                          # census of all 8 Table-1 scenarios
//	cardtopo -scenario 5 -seeds 10    # one scenario, more repetitions
//	cardtopo -n 400 -area 600 -range 40
package main

import (
	"flag"
	"fmt"
	"os"

	"card/internal/experiments"
	"card/internal/geom"
	"card/internal/stats"
)

func main() {
	var (
		scenario = flag.Int("scenario", 0, "Table-1 scenario id (1..8); 0 = all")
		n        = flag.Int("n", 0, "custom: node count (overrides -scenario)")
		area     = flag.Float64("area", 710, "custom: square area side in meters")
		txRange  = flag.Float64("range", 50, "custom: transmission range in meters")
		seeds    = flag.Int("seeds", 3, "repetitions to average")
	)
	flag.Parse()

	if *n > 0 {
		sc := experiments.Scenario{ID: 0, N: *n, Area: geom.Rect{W: *area, H: *area}, TxRange: *txRange}
		printCensus(sc, *seeds)
		return
	}
	if *scenario != 0 {
		if *scenario < 1 || *scenario > len(experiments.Table1Scenarios) {
			fmt.Fprintln(os.Stderr, "cardtopo: scenario must be 1..8")
			os.Exit(2)
		}
		printCensus(experiments.Table1Scenarios[*scenario-1], *seeds)
		return
	}
	tab := experiments.RunTable1(experiments.Options{Seeds: *seeds, Scale: 1})
	fmt.Println(tab.Text())
}

func printCensus(sc experiments.Scenario, seeds int) {
	var links, degree, diam, hops, lcc, clus stats.Welford
	for s := 1; s <= seeds; s++ {
		c := sc.StaticNet(uint64(s)).Graph().ComputeCensus()
		links.Add(float64(c.Links))
		degree.Add(c.MeanDegree)
		diam.Add(float64(c.Diameter))
		hops.Add(c.AvgHops)
		lcc.Add(100 * c.LargestComponentFrac)
		clus.Add(c.MeanClustering)
	}
	fmt.Printf("scenario %s (avg of %d seeds)\n", sc, seeds)
	fmt.Printf("  links        %.1f ± %.1f\n", links.Mean(), links.Std())
	fmt.Printf("  node degree  %.2f ± %.2f\n", degree.Mean(), degree.Std())
	fmt.Printf("  diameter     %.1f ± %.1f\n", diam.Mean(), diam.Std())
	fmt.Printf("  avg hops     %.2f ± %.2f\n", hops.Mean(), hops.Std())
	fmt.Printf("  largest comp %.1f%% ± %.1f\n", lcc.Mean(), lcc.Std())
	fmt.Printf("  clustering   %.3f ± %.3f\n", clus.Mean(), clus.Std())
}
