// Command cardlint runs the determinism-contract analysis suite
// (internal/lint) over card packages.
//
// It speaks two protocols:
//
//	cardlint ./...                 # standalone: load, typecheck, analyze
//	go vet -vettool=cardlint ./... # single-unit mode driven by the go command
//
// The vettool mode implements the same command-line contract as
// golang.org/x/tools/go/analysis/unitchecker — -V=full for build
// caching, -flags for flag discovery, and a JSON .cfg file naming one
// compilation unit — re-implemented on the standard library because
// this module deliberately has no external dependencies. Exit status is
// 1 when findings are reported, 0 on a clean run.
//
// Analyzer selection mirrors go vet: -maprange, -purity, -gostmt,
// -streamdiscipline. Naming any analyzer with =true runs only the named
// set; naming with =false runs all but the named set.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"card/internal/lint"
)

// triState distinguishes unset from explicit true/false, mirroring the
// vet flag convention for analyzer selection.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (t *triState) IsBoolFlag() bool { return true }
func (t *triState) String() string   { return "unset" }
func (t *triState) Set(s string) error {
	switch s {
	case "true", "1":
		*t = setTrue
	case "false", "0":
		*t = setFalse
	default:
		return fmt.Errorf("invalid boolean value %q", s)
	}
	return nil
}

// versionFlag implements the -V=full protocol "go vet" uses for build
// caching: print "<progname> version devel … buildID=<content hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(prog)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cardlint: ")

	selections := make(map[string]*triState, len(lint.Analyzers))
	for _, a := range lint.Analyzers {
		t := new(triState)
		selections[a.Name] = t
		flag.Var(t, a.Name, "enable only/disable the "+a.Name+" analyzer")
	}
	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	flag.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility; ignored)")
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	analyzers := selectAnalyzers(selections)
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, *jsonOut)
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := lint.Check(".", nil, analyzers, args...)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies vet's selection convention.
func selectAnalyzers(sel map[string]*triState) []*lint.Analyzer {
	anyTrue := false
	for _, t := range sel {
		if *t == setTrue {
			anyTrue = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.Analyzers {
		switch *sel[a.Name] {
		case setTrue:
			out = append(out, a)
		case setFalse:
		default:
			if !anyTrue {
				out = append(out, a)
			}
		}
	}
	return out
}

// printFlags describes the tool's flags as JSON, the discovery handshake
// "go vet" performs before forwarding user flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unitConfig is the JSON compilation-unit description "go vet" hands to
// a vettool, one package per invocation (the unitchecker Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by cfgFile and
// exits with vet's status convention (1 when findings exist).
func runUnit(cfgFile string, analyzers []*lint.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}
	// The go command caches the (empty: cardlint records no facts)
	// facts file; it must exist even on failure paths.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	checkPath := cfg.ImportPath
	if i := strings.Index(checkPath, " ["); i >= 0 {
		checkPath = checkPath[:i] // test variant "p [p.test]" typechecks as p
	}
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			os.Exit(0)
		}
		log.Fatal(err)
	}

	diags := lint.RunPackage(lint.DefaultScope, fset, files, pkg, info, cfg.ImportPath, analyzers)
	writeVetx()
	if cfg.VetxOnly || len(diags) == 0 {
		os.Exit(0)
	}
	if jsonOut {
		// The unitchecker JSON shape: {pkgID: {analyzer: [{posn, message}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		tree := map[string]map[string][]jsonDiag{cfg.ID: {}}
		for _, d := range diags {
			tree[cfg.ID][d.Analyzer] = append(tree[cfg.ID][d.Analyzer],
				jsonDiag{Posn: d.Pos.String(), Message: d.Message})
		}
		out, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	os.Exit(1)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
