package main

import (
	"strings"
	"testing"
)

// TestUnknownPresetListsNames pins the operator-typo path: an unknown
// -preset must name every registered preset and exit 1, not fail
// opaquely.
func TestUnknownPresetListsNames(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-preset", "no-such-preset"}, &out, &errw)
	if code != 1 {
		t.Fatalf("run(-preset no-such-preset) = exit %d, want 1\nstderr: %s", code, errw.String())
	}
	msg := errw.String()
	if !strings.Contains(msg, `unknown -preset "no-such-preset"`) {
		t.Errorf("stderr does not name the bad preset:\n%s", msg)
	}
	for _, want := range []string{"citywide-rwp-1k", "citywide-rwp-100k", "metro-rwp-1m", "dense-sensor-field"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr does not list registered preset %q:\n%s", want, msg)
		}
	}
}

// TestUnknownSchemeListsNames pins the same contract for -scheme.
func TestUnknownSchemeListsNames(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-preset", "citywide-rwp-1k", "-scheme", "gossip"}, &out, &errw)
	if code != 1 {
		t.Fatalf("run(-scheme gossip) = exit %d, want 1\nstderr: %s", code, errw.String())
	}
	msg := errw.String()
	if !strings.Contains(msg, `unknown -scheme "gossip"`) {
		t.Errorf("stderr does not name the bad scheme:\n%s", msg)
	}
	for _, want := range []string{"card", "flood", "bordercast", "rendezvous"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr does not list registered scheme %q:\n%s", want, msg)
		}
	}
}

// TestBadFlagExitsTwo pins that malformed invocations (as opposed to
// unknown registry names) keep the usage exit code.
func TestBadFlagExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("run(-no-such-flag) = exit %d, want 2", code)
	}
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("run() with no args = exit %d, want 2", code)
	}
}

// TestListAndPresetsExitZero smoke-tests the two listing paths through
// the same entry point.
func TestListAndPresetsExitZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-presets"}, &out, &errw); code != 0 {
		t.Fatalf("run(-presets) = exit %d, want 0\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "metro-rwp-1m") {
		t.Errorf("-presets output does not list metro-rwp-1m:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run(-list) = exit %d, want 0\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "fig3") {
		t.Errorf("-list output does not include fig3:\n%s", out.String())
	}
}
