// Command cardsim regenerates the paper's tables and figures and runs the
// engine's workload presets.
//
// Usage:
//
//	cardsim -exp fig7                 # one experiment, aligned text
//	cardsim -exp all -format md       # every paper experiment, markdown
//	cardsim -exp ablations            # the design-choice ablations
//	cardsim -list                     # available experiment ids
//	cardsim -exp fig3 -seeds 5 -scale 0.5 -format csv
//
//	cardsim -presets                  # list workload presets
//	cardsim -preset citywide-rwp-1k   # run one preset end to end
//	cardsim -preset sparse-rescue -queries 1000 -horizon 30 -topology naive
//	cardsim -preset citywide-rwp-1k -churn 60,15   # add node churn
//	cardsim -preset citywide-rwp-1k -loss 0.1 -rangespread 0.5   # lossy directed links
//	cardsim -preset citywide-rwp-1k -qps 200 -zipf 1.1   # sustained traffic
//	cardsim -trace movements.tcl -tx 100 -horizon 60   # replay an ns-2 trace
//
//	cardsim -preset citywide-rwp-1k -sweep "NoC=2..8..2;r=8..14..2"
//	cardsim -preset churn-2k -sweep "Method=EM,PM2;NoC=2,4" -seeds 5 -format csv
//	cardsim -sweep "NoC=1..4" -scheme rendezvous    # scheme cells on the default preset
//	cardsim -preset citywide-rwp-1k -sweep "Scheme=card,rendezvous;NoC=2,4"
//
// A -sweep grid runs one isolated engine per (point, seed) cell over the
// preset's scenario (citywide-rwp-1k when -preset is omitted) and reports
// the overhead-vs-reachability trade-off per point, with Pareto-frontier
// configurations starred. -scheme routes every cell's (and every
// sustained-traffic run's) queries through the named discovery scheme;
// a Scheme sweep axis overrides it per point.
//
// Experiment ids match the per-experiment index in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	proto "card/internal/card"
	"card/internal/engine"
	"card/internal/experiments"
	"card/internal/scheme"
	"card/internal/sweep"
	"card/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// presetNames returns the registered preset names, sorted — the "did you
// mean" list printed when -preset misses the registry.
func presetNames() []string {
	ps := engine.Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// run is the testable body of main: it parses args on its own FlagSet and
// returns the process exit code instead of calling os.Exit, so the unit
// tests can drive the flag-parsing path directly. Unknown -preset and
// -scheme values print the registered names and exit 1 (actionable
// operator typos); malformed invocations keep exit 2.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cardsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "", "experiment id, or 'all' / 'ablations' / 'everything'")
		format = fs.String("format", "text", "output format: text, csv, md, plot")
		seeds  = fs.Int("seeds", 3, "independent repetitions per cell")
		scale  = fs.Float64("scale", 1, "scenario scale in (0,1]; 1 = paper-size networks")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		timing = fs.Bool("time", false, "print wall-clock time per experiment")

		presets   = fs.Bool("presets", false, "list workload presets and exit")
		preset    = fs.String("preset", "", "run one workload preset end to end")
		trace     = fs.String("trace", "", "replay an ns-2 setdest movement trace end to end")
		tx        = fs.Float64("tx", 100, "radio range in meters for -trace runs")
		churn     = fs.String("churn", "", "add node churn to the run: meanUp,meanDown seconds (e.g. 60,15)")
		loss      = fs.Float64("loss", -1, "per-hop loss probability in [0,1) (-1 = preset default)")
		spread    = fs.Float64("rangespread", -1, "per-node radio-range spread in [0,1); >0 makes links directed (-1 = preset default)")
		queries   = fs.Int("queries", 500, "batched queries per preset run")
		horizon   = fs.Float64("horizon", -1, "simulated seconds before querying (-1 = preset default)")
		seed      = fs.Uint64("seed", 1, "preset run seed")
		topology  = fs.String("topology", "grid", "topology path: grid (incremental), full, naive")
		qps       = fs.Float64("qps", -1, "sustained query-traffic rate in queries/s (-1 = preset default, 0 = off)")
		zipf      = fs.Float64("zipf", -1, "resource popularity skew for sustained traffic (-1 = preset default)")
		sweepArg  = fs.String("sweep", "", `parameter-sweep grid over the preset, e.g. "NoC=1..10;r=6..20"`)
		schemeArg = fs.String("scheme", "", "discovery scheme for sweeps and sustained traffic: card, flood, ring, bordercast, rendezvous")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *presets {
		for _, p := range engine.Presets() {
			fmt.Fprintf(stdout, "%-20s %s\n", p.Name, p.Doc)
			fmt.Fprintf(stdout, "%-20s   %s\n", "", p.Description)
		}
		return 0
	}
	if *schemeArg != "" && !scheme.Known(*schemeArg) {
		fmt.Fprintf(stderr, "cardsim: unknown -scheme %q; registered schemes:\n", *schemeArg)
		for _, n := range scheme.Names() {
			fmt.Fprintf(stderr, "  %s\n", n)
		}
		return 1
	}
	if *preset != "" {
		if _, err := engine.LookupPreset(*preset); err != nil {
			fmt.Fprintf(stderr, "cardsim: unknown -preset %q; registered presets:\n", *preset)
			for _, n := range presetNames() {
				fmt.Fprintf(stderr, "  %s\n", n)
			}
			return 1
		}
	}
	// A bare -sweep runs over the default citywide preset.
	if *sweepArg != "" && *preset == "" && *trace == "" {
		*preset = "citywide-rwp-1k"
	}
	if *preset != "" || *trace != "" {
		p, err := resolveWorkload(*preset, *trace, *tx, *churn, *loss, *spread)
		if err == nil {
			if *sweepArg != "" {
				if *qps >= 0 || *zipf >= 0 {
					err = fmt.Errorf("-qps/-zipf (sustained traffic) do not compose with -sweep; sweep cells measure batched queries")
				} else {
					err = runSweep(p, *sweepArg, *schemeArg, *seeds, *queries, *horizon, *seed, *topology, *format)
				}
			} else {
				err = runPreset(p, *queries, *horizon, *seed, *topology, resolveTraffic(p, *qps, *zipf, *schemeArg))
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "cardsim:", err)
			return 2
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "cardsim: -exp, -preset or -trace required (try -list / -presets)")
		return 2
	}

	var ids []string
	switch *exp {
	case "all":
		ids = experiments.PaperOrder
	case "ablations":
		ids = experiments.AblationOrder
	case "everything":
		ids = append(append([]string{}, experiments.PaperOrder...), experiments.AblationOrder...)
	default:
		ids = []string{*exp}
	}

	opts := experiments.Options{Seeds: *seeds, Scale: *scale}
	for _, id := range ids {
		runner, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(stderr, "cardsim:", err)
			return 2
		}
		start := time.Now()
		tab := runner(opts)
		switch *format {
		case "csv":
			fmt.Fprint(stdout, tab.CSV())
		case "md":
			fmt.Fprintln(stdout, tab.Markdown())
		case "plot":
			fmt.Fprintln(stdout, tab.Plot())
		default:
			fmt.Fprintln(stdout, tab.Text())
		}
		if *timing {
			fmt.Fprintf(stderr, "[%s: %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}

// resolveWorkload turns the -preset / -trace / -churn / -loss /
// -rangespread flags into one runnable Preset: a registered preset by
// name, or an ad-hoc trace-replay scenario, optionally overlaid with a
// churn schedule and link-layer overrides (-1 keeps the preset's values;
// 0 explicitly turns the feature off).
func resolveWorkload(preset, trace string, tx float64, churn string, loss, spread float64) (engine.Preset, error) {
	var p engine.Preset
	switch {
	case preset != "" && trace != "":
		return p, fmt.Errorf("-preset and -trace are mutually exclusive")
	case trace != "":
		p = engine.Preset{
			Name:        "trace:" + trace,
			Description: "ad-hoc ns-2 setdest replay",
			Net:         engine.NetworkConfig{Mobility: engine.TraceReplay, TracePath: trace, TxRange: tx},
			// The citywide recipe suits the mid-size urban traces setdest
			// emits; tune via a registered preset for anything exotic.
			Protocol: proto.Config{R: 2, MaxContactDist: 10, NoC: 6, Depth: 2, ValidatePeriod: 2},
			Horizon:  30,
		}
	default:
		var err error
		if p, err = engine.LookupPreset(preset); err != nil {
			return p, err
		}
	}
	if churn != "" {
		upStr, downStr, found := strings.Cut(strings.TrimSpace(churn), ",")
		up, err1 := strconv.ParseFloat(strings.TrimSpace(upStr), 64)
		down, err2 := strconv.ParseFloat(strings.TrimSpace(downStr), 64)
		if !found || err1 != nil || err2 != nil || up <= 0 || down <= 0 {
			return p, fmt.Errorf("bad -churn %q: want meanUp,meanDown seconds, both > 0", churn)
		}
		p.Net.ChurnMeanUp, p.Net.ChurnMeanDown = up, down
		p.Doc = engine.DescribeNet(p.Net) // keep the header honest about the overlay
	}
	if loss >= 0 {
		if loss >= 1 {
			return p, fmt.Errorf("bad -loss %g: want a probability in [0, 1)", loss)
		}
		p.Net.Loss = loss
		p.Doc = engine.DescribeNet(p.Net)
	}
	if spread >= 0 {
		if spread >= 1 {
			return p, fmt.Errorf("bad -rangespread %g: want a fraction in [0, 1)", spread)
		}
		p.Net.RangeSpread = spread
		p.Doc = engine.DescribeNet(p.Net)
	}
	return p, nil
}

// resolveTraffic overlays the -qps/-zipf flags on the preset's suggested
// sustained-traffic shape. qps 0 disables the phase outright; qps > 0 on a
// traffic-less preset enables it with the workload defaults.
func resolveTraffic(p engine.Preset, qps, zipf float64, schemeName string) workload.Config {
	tr := p.Traffic
	switch {
	case qps == 0:
		tr.QPS = 0
	case qps > 0:
		tr.QPS = qps
	}
	if zipf >= 0 {
		tr.ZipfS = zipf
	}
	if schemeName != "" {
		tr.Scheme = schemeName
	}
	return tr
}

// runPreset builds the workload, advances it over its horizon, fans a
// query batch, and reports topology, reachability, traffic and wall-clock
// numbers — the quickest way to feel a workload's scale. A non-zero
// traffic config then keeps the clock running under sustained query load
// and reports the serving-style quantiles.
func runPreset(p engine.Preset, queries int, horizon float64, seed uint64, topo string, traffic workload.Config) error {
	if err := applyTopology(&p.Net, topo); err != nil {
		return err
	}
	if horizon < 0 {
		horizon = p.Horizon
	}
	if p.Doc != "" {
		fmt.Printf("preset %s: %s\n", p.Name, p.Doc)
	} else {
		fmt.Printf("preset %s: %s\n", p.Name, p.Description)
	}

	start := time.Now()
	e, err := p.New(seed)
	if err != nil {
		return err
	}
	build := time.Since(start)

	start = time.Now()
	e.SelectContacts()
	sel := time.Since(start)

	start = time.Now()
	if horizon > 0 {
		const step = 0.5
		for e.Now() < horizon {
			e.Advance(step)
		}
	}
	adv := time.Since(start)

	start = time.Now()
	pairs := e.RandomPairs(queries, seed^0x9e3779b97f4a7c15)
	res := e.BatchQuery(pairs)
	q := time.Since(start)

	found := 0
	var msgs int64
	for _, r := range res {
		if r.Found {
			found++
		}
		msgs += r.Messages
	}
	c := e.Network().Graph().ComputeCensus()
	m := e.Messages()
	churnNote := ""
	if e.Network().HasChurn() {
		churnNote = fmt.Sprintf(" (%d up)", e.UpNodes())
	}
	fmt.Printf("topology: %d nodes%s, %d links, mean degree %.1f, %.0f%% in largest component\n",
		e.Nodes(), churnNote, c.Links, c.MeanDegree, 100*c.LargestComponentFrac)
	fmt.Printf("after %ss simulated (%d maintenance rounds): reach(D=1) %.1f%%\n",
		trimSeconds(e.Now()), e.Rounds(), e.MeanReachability(1))
	fmt.Printf("queries: %d/%d found, %.1f msgs/query\n", found, len(res), avg(msgs, len(res)))
	fmt.Printf("traffic/node: %.1f total (selection %d, validation %d, query %d)\n",
		m.TotalPerNode, m.Selection, m.Validation, m.Query)
	fmt.Printf("wall clock [%s topology]: build %v, select %v, advance %v, %d queries %v\n",
		topoName(topo), build.Round(time.Millisecond), sel.Round(time.Millisecond),
		adv.Round(time.Millisecond), len(res), q.Round(time.Millisecond))

	if traffic.QPS > 0 {
		if traffic.Duration <= 0 {
			traffic.Duration = p.Horizon
			if traffic.Duration <= 0 {
				traffic.Duration = 10
			}
		}
		if traffic.Seed == 0 {
			traffic.Seed = seed ^ 0xc0ffee
		}
		start = time.Now()
		rep, err := e.RunWorkload(traffic)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Printf("sustained traffic [%s]: %d queries over %ss @ %g qps (zipf %g, %d resources x%d)\n",
			rep.Scheme, rep.Queries, trimSeconds(rep.Horizon), rep.Config.QPS,
			rep.Config.ZipfS, rep.Config.Resources, rep.Config.Replicas)
		offline := ""
		if rep.SrcDown > 0 {
			offline = fmt.Sprintf(" (%d offline sources)", rep.SrcDown)
		}
		fmt.Printf("  success %.1f%%%s, msgs/query p50 %.0f p95 %.0f p99 %.0f (mean %.1f)\n",
			rep.SuccessPct, offline, rep.Messages.P50, rep.Messages.P95, rep.Messages.P99,
			rep.Messages.Mean)
		fmt.Printf("  hops p50 %.0f p95 %.0f; trailing window: success %.1f%%, msgs p95 %.0f; wall %v\n",
			rep.Hops.P50, rep.Hops.P95, rep.WindowSuccessPct, rep.WindowMessages.P95,
			wall.Round(time.Millisecond))
	}
	return nil
}

// applyTopology resolves the -topology flag onto a network config.
func applyTopology(nc *engine.NetworkConfig, topo string) error {
	switch topo {
	case "grid", "":
		nc.Topology = engine.SpatialGrid
	case "full":
		nc.Topology = engine.FullRebuild
	case "naive":
		nc.Topology = engine.NaiveRebuild
	default:
		return fmt.Errorf("unknown -topology %q (grid, full, naive)", topo)
	}
	return nil
}

// runSweep spans the -sweep grid over the resolved workload: every
// (point, seed) cell is one isolated engine run on the preset's scenario
// with the point's protocol tuning, measured over -horizon simulated
// seconds and a -queries batch. The per-point table (Pareto frontier
// starred) renders through -format; "json" additionally carries the raw
// per-cell metrics.
func runSweep(p engine.Preset, spec, schemeName string, seeds, queries int, horizon float64, seed uint64, topo, format string) error {
	axes, err := sweep.ParseSpec(spec)
	if err != nil {
		return err
	}
	if err := applyTopology(&p.Net, topo); err != nil {
		return err
	}
	if horizon < 0 {
		horizon = p.Horizon
	}
	g := &sweep.Grid{Base: p.Protocol, Scheme: schemeName, Axes: axes, Seeds: seeds}
	if err := g.Validate(); err != nil {
		return err
	}
	er := sweep.EngineRunner{Net: p.Net, Horizon: horizon, Queries: queries, Seed: seed}
	fmt.Printf("sweep over %s: %d points x %d seed(s) = %d cells, horizon %gs, %d queries/cell\n",
		p.Name, g.Points(), g.Seeds, g.Cells(), horizon, queries)
	start := time.Now()
	res, err := g.Run(er.Run)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	title := fmt.Sprintf("Sweep %s over %s (* = Pareto frontier)", spec, p.Name)
	tab := experiments.SweepTable(title, res)
	switch format {
	case "csv":
		fmt.Print(tab.CSV())
	case "md":
		fmt.Println(tab.Markdown())
	case "plot":
		fmt.Println(tab.Plot())
	case "json":
		b, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	default:
		fmt.Println(tab.Text())
	}
	front := res.Pareto()
	fmt.Printf("pareto frontier: %d of %d points; wall %v\n",
		len(front), g.Points(), wall.Round(time.Millisecond))
	return nil
}

func topoName(t string) string {
	if t == "" {
		return "grid"
	}
	return t
}

func avg(total int64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func trimSeconds(s float64) string { return fmt.Sprintf("%g", s) }
