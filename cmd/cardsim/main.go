// Command cardsim regenerates the paper's tables and figures.
//
// Usage:
//
//	cardsim -exp fig7                 # one experiment, aligned text
//	cardsim -exp all -format md       # every paper experiment, markdown
//	cardsim -exp ablations            # the design-choice ablations
//	cardsim -list                     # available experiment ids
//	cardsim -exp fig3 -seeds 5 -scale 0.5 -format csv
//
// Experiment ids match the per-experiment index in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"card/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id, or 'all' / 'ablations' / 'everything'")
		format = flag.String("format", "text", "output format: text, csv, md, plot")
		seeds  = flag.Int("seeds", 3, "independent repetitions per cell")
		scale  = flag.Float64("scale", 1, "scenario scale in (0,1]; 1 = paper-size networks")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		timing = flag.Bool("time", false, "print wall-clock time per experiment")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cardsim: -exp required (try -list)")
		os.Exit(2)
	}

	var ids []string
	switch *exp {
	case "all":
		ids = experiments.PaperOrder
	case "ablations":
		ids = experiments.AblationOrder
	case "everything":
		ids = append(append([]string{}, experiments.PaperOrder...), experiments.AblationOrder...)
	default:
		ids = []string{*exp}
	}

	opts := experiments.Options{Seeds: *seeds, Scale: *scale}
	for _, id := range ids {
		runner, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cardsim:", err)
			os.Exit(2)
		}
		start := time.Now()
		tab := runner(opts)
		switch *format {
		case "csv":
			fmt.Print(tab.CSV())
		case "md":
			fmt.Println(tab.Markdown())
		case "plot":
			fmt.Println(tab.Plot())
		default:
			fmt.Println(tab.Text())
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
