// Command cardquery demonstrates the three discovery schemes side by side
// on one network: CARD, flooding, and ZRP bordercasting.
//
// Usage:
//
//	cardquery -n 500 -queries 25
//	cardquery -n 1000 -mobile -horizon 10 -queries 50
package main

import (
	"flag"
	"fmt"
	"os"

	"card"
)

func main() {
	var (
		n       = flag.Int("n", 500, "node count")
		side    = flag.Float64("area", 710, "square area side in meters")
		txRange = flag.Float64("range", 50, "transmission range in meters")
		radius  = flag.Int("R", 3, "neighborhood radius (hops)")
		maxDist = flag.Int("r", 16, "maximum contact distance (hops)")
		noc     = flag.Int("noc", 5, "contacts per node")
		depth   = flag.Int("D", 2, "query depth of search")
		queries = flag.Int("queries", 25, "number of random queries")
		mobile  = flag.Bool("mobile", false, "random-waypoint mobility instead of static")
		horizon = flag.Float64("horizon", 5, "seconds of mobility before querying")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	nc := card.NetworkConfig{
		Nodes: *n, Width: *side, Height: *side, TxRange: *txRange, Seed: *seed,
	}
	if *mobile {
		nc.Mobility = card.RandomWaypoint
	}
	sim, err := card.NewSimulation(nc, card.Config{
		R: *radius, MaxContactDist: *maxDist, NoC: *noc, Depth: *depth, ValidatePeriod: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cardquery:", err)
		os.Exit(1)
	}

	c := sim.TopologyCensus()
	fmt.Printf("network: N=%d area=%gx%g range=%gm links=%d degree=%.1f diameter=%d\n",
		sim.Nodes(), *side, *side, *txRange, c.Links, c.MeanDegree, c.Diameter)

	sim.SelectContacts()
	if *mobile {
		sim.Advance(*horizon)
		fmt.Printf("advanced %gs under random-waypoint mobility\n", *horizon)
	}
	m := sim.Messages()
	fmt.Printf("contact setup: selection=%d backtrack=%d validate=%d recovery=%d (%.1f msgs/node)\n",
		m.Selection, m.Backtrack, m.Validation, m.Recovery, m.TotalPerNode)
	fmt.Printf("mean reachability: D=1 %.1f%%  D=%d %.1f%%\n\n",
		sim.MeanReachability(1), *depth, sim.MeanReachability(*depth))

	var cardMsgs, floodMsgs, bcMsgs int64
	cardFound, floodFound, bcFound := 0, 0, 0
	for i := 0; i < *queries; i++ {
		src, dst := sim.RandomPair(uint64(i) + 1000)
		res := sim.Query(src, dst)
		cardMsgs += res.Messages
		if res.Found {
			cardFound++
		}
		okF, fm := sim.FloodQuery(src, dst)
		floodMsgs += fm
		if okF {
			floodFound++
		}
		okB, bm, err := sim.BordercastQuery(src, dst)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cardquery:", err)
			os.Exit(1)
		}
		bcMsgs += bm
		if okB {
			bcFound++
		}
	}
	q := float64(*queries)
	fmt.Printf("%-14s %10s %10s\n", "scheme", "msgs/query", "success")
	fmt.Printf("%-14s %10.1f %9.0f%%\n", "CARD", float64(cardMsgs)/q, 100*float64(cardFound)/q)
	fmt.Printf("%-14s %10.1f %9.0f%%\n", "flooding", float64(floodMsgs)/q, 100*float64(floodFound)/q)
	fmt.Printf("%-14s %10.1f %9.0f%%\n", "bordercasting", float64(bcMsgs)/q, 100*float64(bcFound)/q)
}
