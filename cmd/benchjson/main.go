// Command benchjson converts `go test -bench` output into the BENCH_*.json
// records CI uploads as artifacts. It replaces the former awk one-liners,
// which silently mis-indexed fields whenever a benchmark line carried
// extra metrics (-benchmem, b.ReportMetric) and could not be unit-tested.
//
// Usage:
//
//	go test -bench . | benchjson -o BENCH_1.json
//	benchjson -o BENCH_6.json bench6.out
//
// Input is one or more bench output files (stdin when none are given);
// output is a JSON array with one record per benchmark result line:
//
//	{"name": "BenchmarkScale1k-8", "iterations": 10, "ns_per_op": 123456}
//
// plus "bytes_per_op" and "allocs_per_op" when the run used -benchmem.
// The JSON is written to -o (stdout when unset) and echoed to stdout so
// the record stays visible in the CI log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result. Pointer fields are omitted when the
// metric is absent, keeping non-benchmem records at the historical
// three-key shape.
type Record struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parseBench extracts benchmark result lines from go test -bench output.
// A result line is "BenchmarkName-P  N  <value> <unit> [<value> <unit>…]";
// headers (goos/goarch/pkg), PASS/ok trailers and b.Log output are
// skipped. A line that starts with "Benchmark" but does not parse is an
// error — that is exactly the malformed-line case awk passed through.
func parseBench(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// "BenchmarkFoo" alone announces a starting benchmark under -v;
		// only lines with an iteration count are results.
		if len(f) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark line %q: bad iteration count %q", line, f[1])
		}
		rec := Record{Name: f[0], Iterations: iters, NsPerOp: -1}
		for i := 2; i+1 < len(f); i += 2 {
			val, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark line %q: bad metric value %q", line, f[i])
			}
			switch f[i+1] {
			case "ns/op":
				rec.NsPerOp = val
			case "B/op":
				v := val
				rec.BytesPerOp = &v
			case "allocs/op":
				v := val
				rec.AllocsPerOp = &v
			default:
				// Custom b.ReportMetric units (MB/s, contacts/op, …) are
				// not part of the record shape; ignore them.
			}
		}
		if rec.NsPerOp < 0 {
			return nil, fmt.Errorf("benchmark line %q: no ns/op metric", line)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func run(out io.Writer, outPath string, inputs []string) error {
	var recs []Record
	if len(inputs) == 0 {
		rs, err := parseBench(os.Stdin)
		if err != nil {
			return err
		}
		recs = rs
	}
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rs, err := parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, rs...)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	_, err = out.Write(data)
	return err
}

func main() {
	outPath := flag.String("o", "", "write the JSON record to this file (as well as stdout)")
	flag.Parse()
	if err := run(os.Stdout, *outPath, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
