package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseCapturedOutput runs the parser over real `go test -bench`
// output (testdata/bench.out holds a captured run of the repo's
// BenchmarkSelectionRound, once plain and once with -benchmem).
func TestParseCapturedOutput(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	plain, mem := recs[0], recs[1]
	if plain.Name != "BenchmarkSelectionRound" || plain.Iterations != 1 || plain.NsPerOp <= 0 {
		t.Errorf("plain record mangled: %+v", plain)
	}
	if plain.BytesPerOp != nil || plain.AllocsPerOp != nil {
		t.Errorf("plain record grew -benchmem fields: %+v", plain)
	}
	if mem.BytesPerOp == nil || mem.AllocsPerOp == nil {
		t.Fatalf("-benchmem record lost B/op or allocs/op: %+v", mem)
	}
	if *mem.BytesPerOp <= 0 || *mem.AllocsPerOp <= 0 {
		t.Errorf("-benchmem metrics not positive: %+v", mem)
	}
}

// TestRecordShape pins the artifact JSON: non-benchmem records keep the
// historical three keys, -benchmem records add exactly two more. The
// BENCH_*.json consumers key on these names.
func TestRecordShape(t *testing.T) {
	input := "BenchmarkAdvance100k-8   \t       3\t 456789 ns/op\t 1024 B/op\t 17 allocs/op\n" +
		"BenchmarkScale1k-8   \t      10\t 123456 ns/op\n"
	recs, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var generic []map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	wantKeys := [][]string{
		{"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"},
		{"name", "iterations", "ns_per_op"},
	}
	for i, keys := range wantKeys {
		if len(generic[i]) != len(keys) {
			t.Errorf("record %d: got %d keys %v, want %v", i, len(generic[i]), generic[i], keys)
		}
		for _, k := range keys {
			if _, ok := generic[i][k]; !ok {
				t.Errorf("record %d: missing key %q", i, k)
			}
		}
	}
	if generic[0]["bytes_per_op"].(float64) != 1024 || generic[0]["allocs_per_op"].(float64) != 17 {
		t.Errorf("benchmem fields mis-parsed: %v", generic[0])
	}
}

// TestParseSkipsNoise checks headers, trailers and -v "Benchmark" name
// announcements fall through without producing records.
func TestParseSkipsNoise(t *testing.T) {
	input := "goos: linux\ngoarch: amd64\nBenchmarkFoo\nBenchmarkFoo-4 \t 2\t 99 ns/op\nPASS\nok  \tcard\t0.1s\n"
	recs, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "BenchmarkFoo-4" || recs[0].Iterations != 2 || recs[0].NsPerOp != 99 {
		t.Fatalf("got %+v, want one BenchmarkFoo-4 record", recs)
	}
}

// TestParseRejectsMangledLines pins the error path: a result line with a
// non-numeric count or missing ns/op is a hard failure, not a silent
// pass-through (the failure mode of the old awk emitters).
func TestParseRejectsMangledLines(t *testing.T) {
	for _, input := range []string{
		"BenchmarkFoo-4 \t two\t 99 ns/op\n",
		"BenchmarkFoo-4 \t 2\t 1024 B/op\n",
		"BenchmarkFoo-4 \t 2\t abc ns/op\n",
	} {
		if _, err := parseBench(strings.NewReader(input)); err == nil {
			t.Errorf("parseBench(%q) succeeded, want error", input)
		}
	}
}

// TestRunWritesFileAndStdout checks the -o path: the record lands in
// the output file and is echoed to the writer byte-for-byte.
func TestRunWritesFileAndStdout(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_T.json")
	var stdout bytes.Buffer
	if err := run(&stdout, out, []string{filepath.Join("testdata", "bench.out")}); err != nil {
		t.Fatal(err)
	}
	fileData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileData, stdout.Bytes()) {
		t.Error("file and stdout copies differ")
	}
	var recs []Record
	if err := json.Unmarshal(fileData, &recs); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}
