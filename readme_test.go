package card

import (
	"os"
	"strings"
	"testing"

	"card/internal/engine"
	"card/internal/experiments"
	"card/internal/lint"
	"card/internal/scheme"
)

// TestReadmeListsEverything is the docs gate CI runs: README.md must name
// every registered workload preset and every experiment id, so the front
// door cannot silently fall behind the code. Names are matched as
// backquoted table cells, the way the README renders them.
func TestReadmeListsEverything(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md missing: %v", err)
	}
	readme := string(b)
	for _, p := range engine.Presets() {
		if !strings.Contains(readme, "`"+p.Name+"`") {
			t.Errorf("README.md does not list preset %q", p.Name)
		}
	}
	for _, id := range experiments.Names() {
		if !strings.Contains(readme, "`"+id+"`") {
			t.Errorf("README.md does not list experiment %q", id)
		}
	}
	// The discovery-scheme table must track the scheme registry.
	for _, s := range scheme.Names() {
		if !strings.Contains(readme, "`"+s+"`") {
			t.Errorf("README.md does not list discovery scheme %q", s)
		}
	}
	// The tooling table must track the lint suite the same way the
	// preset/experiment tables track their registries.
	for _, tool := range []string{"cardlint", "benchjson"} {
		if !strings.Contains(readme, "`"+tool+"`") {
			t.Errorf("README.md does not list tool %q", tool)
		}
	}
	for _, a := range lint.Analyzers {
		if !strings.Contains(readme, "`"+a.Name+"`") {
			t.Errorf("README.md does not list cardlint analyzer %q", a.Name)
		}
	}
}

// TestReadmeCommandsExist spot-checks that the flags the quickstart
// invokes are real: a stale README is as bad as none.
func TestReadmeCommandsExist(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(b)
	for _, preset := range []string{"citywide-rwp-1k", "rescue-groups-1k"} {
		if !strings.Contains(readme, preset) {
			t.Errorf("README quickstart lost preset %s", preset)
		}
		if _, err := engine.LookupPreset(preset); err != nil {
			t.Errorf("README names unknown preset: %v", err)
		}
	}
	if _, err := experiments.Lookup("fig7"); err != nil {
		t.Errorf("README names unknown experiment: %v", err)
	}
	for _, f := range []string{"-preset", "-presets", "-exp", "-list", "-churn", "-trace", "-scale", "-seeds", "-qps", "-zipf", "-sweep", "-scheme", "-loss", "-rangespread"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README no longer documents cardsim flag %s", f)
		}
	}
}
