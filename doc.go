// Package card is a Go reproduction of "Contact-Based Architecture for
// Resource Discovery (CARD) in Large Scale MANets" (Garg, Pamu, Nahata,
// Helmy — IPDPS 2003).
//
// CARD discovers resources in large mobile ad hoc networks without
// flooding, hierarchy, or GPS. Each node proactively tracks its R-hop
// neighborhood and maintains a handful of contacts — nodes 2R..r hops away
// with non-overlapping neighborhoods — that act as small-world short cuts.
// Queries escalate through levels of contacts instead of expanding rings
// of flooding.
//
// The package exposes a simulation facade over the full stack implemented
// under internal/: unit-disk topologies, analytic mobility models, a
// discrete-event engine, a scoped-DSDV proactive substrate, the CARD
// protocol (PM/EM selection, validation with local recovery, multi-level
// DSQ querying), and the flooding and ZRP-bordercasting baselines the
// paper compares against.
//
// Quick start:
//
//	sim, err := card.NewSimulation(card.NetworkConfig{
//	    Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 1,
//	}, card.Config{R: 3, MaxContactDist: 16, NoC: 5})
//	if err != nil { ... }
//	sim.SelectContacts()
//	res := sim.Query(12, 451)
//
// The experiment harness regenerating every table and figure of the paper
// lives in cmd/cardsim; see DESIGN.md and EXPERIMENTS.md.
package card
