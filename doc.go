// Package card is a Go reproduction of "Contact-Based Architecture for
// Resource Discovery (CARD) in Large Scale MANets" (Garg, Pamu, Nahata,
// Helmy — IPDPS 2003), grown into a deterministic, parallel MANET
// simulation engine.
//
// CARD discovers resources in large mobile ad hoc networks without
// flooding, hierarchy, or GPS. Each node proactively tracks its R-hop
// neighborhood and maintains a handful of contacts — nodes 2R..r hops away
// with non-overlapping neighborhoods — that act as small-world short cuts.
// Queries escalate through levels of contacts instead of expanding rings
// of flooding.
//
// # The facade
//
// [Simulation] is the package's entry point: it binds a mobile network, a
// proactive neighborhood substrate and a CARD protocol instance, and
// exposes the flooding and ZRP-bordercasting baselines on the same
// topology. Construct one from explicit configs ([NewSimulation]) or from
// a named workload preset ([NewPresetSimulation]; see [Presets]). The full
// stack lives under internal/ — unit-disk topology (incremental
// spatial-hash builder), six mobility models, a discrete-event engine, a
// scoped-DSDV substrate, the protocol itself — and [Simulation.Engine]
// exposes the engine layer for advanced use (custom scheduled events,
// direct network access, worker bounds).
//
// # Determinism guarantees
//
// Every run is a pure function of (configuration, seed). The package
// carries its own RNG suite (SplitMix64 seeding, xoshiro256++ streams), so
// results are bit-identical across machines and Go releases; every
// concurrent code path is pinned bit-identical to its serial reference:
//
//   - BatchQuery fans read-only queries across workers; results and
//     message accounting equal a sequential Query loop at any GOMAXPROCS.
//   - The selection/maintenance rounds inside Advance, SelectContacts and
//     Maintain shard nodes across workers, with each node drawing from a
//     counter-based (node, round) RNG substream — tables, statistics and
//     recorder totals equal the serial id-order loop at any worker count
//     (Engine().SetMaintainWorkers bounds or disables the fan-out).
//   - Node churn (NetworkConfig.ChurnMeanUp / ChurnMeanDown) schedules
//     per-node up/down phases from per-node derived streams, so churned
//     runs — including the parallel paths above — stay reproducible.
//   - [Simulation.RunWorkload] streams sustained open-loop query traffic
//     (Poisson arrivals, Zipf-skewed resource popularity) in sharded ticks
//     interleaved with maintenance; the per-query outcome stream and the
//     recorder totals equal the serial execution at any GOMAXPROCS.
//   - [SweepGrid] spans parameter studies over the configuration axes
//     ([ParseSweepSpec], e.g. "NoC=1..10;r=6..20"): every (point, seed)
//     cell is an isolated engine run on a counter-based substream of the
//     root seed, sharded across workers with bit-identical metrics at any
//     worker count, aggregated into the overhead-vs-reachability Pareto
//     frontier ([SweepResult]).
//
// The source side of these guarantees is enforced at compile time by
// cardlint (internal/lint, driver cmd/cardlint), a static-analysis
// suite CI runs as a go vet -vettool: no order-sensitive map iteration,
// no wall-clock or global-RNG reads in sim code, goroutines and raw
// locks only inside internal/par, and per-(item, round) xrand stream
// discipline around the worker pool. Deliberate exceptions carry a
// reviewed //cardlint:<key> <reason> annotation; see the "Determinism
// contract" section of DESIGN.md.
//
// # Scenarios
//
// NetworkConfig selects the movement structure: [Static], [RandomWaypoint]
// (the paper's model), [RandomWalk], [GaussMarkov] (smooth autoregressive
// drift), [GroupMobility] (reference-point group mobility) or
// [TraceReplay] (ns-2 setdest traces, piecewise-linearly interpolated).
// Churn overlays any of them: down nodes lose their links and contacts,
// and re-enter cold. Ready-made large-scale presets (dense sensor fields,
// rescue groups, citywide fleets at 1k–10k nodes, churned fleets) are
// listed by [Presets].
//
// # Observability knobs
//
// Message accounting flows through a pluggable recorder on the network
// (manet.Recorder): plain counters by default, atomic counters for
// concurrent consumers; [Simulation.Messages] reports the per-category
// totals the paper's overhead figures use. TopologyKind selects how
// connectivity snapshots are recomputed — [SpatialGrid] (incremental,
// default), [FullRebuild], or the O(N²) [NaiveRebuild] reference — all
// three byte-identical in output, which the tests enforce.
//
// Quick start:
//
//	sim, err := card.NewSimulation(card.NetworkConfig{
//	    Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 1,
//	}, card.Config{R: 3, MaxContactDist: 16, NoC: 5})
//	if err != nil { ... }
//	sim.SelectContacts()
//	res := sim.Query(12, 451)
//
//	sim.Advance(30)                                   // drift-free schedule
//	results := sim.BatchQuery(sim.RandomPairs(500, 7)) // parallel, bit-identical
//
//	sim, err = card.NewPresetSimulation("churn-2k", 42)
//	report, err := sim.RunWorkload(card.WorkloadConfig{ // sustained traffic
//	    QPS: 150, Duration: 60, Resources: 256, Replicas: 4, ZipfS: 0.9,
//	})
//
// The experiment harness regenerating every table and figure of the paper
// lives in cmd/cardsim; see README.md for the preset and experiment
// tables and DESIGN.md for the engine layering and per-experiment index.
package card
