// Package card is a Go reproduction of "Contact-Based Architecture for
// Resource Discovery (CARD) in Large Scale MANets" (Garg, Pamu, Nahata,
// Helmy — IPDPS 2003).
//
// CARD discovers resources in large mobile ad hoc networks without
// flooding, hierarchy, or GPS. Each node proactively tracks its R-hop
// neighborhood and maintains a handful of contacts — nodes 2R..r hops away
// with non-overlapping neighborhoods — that act as small-world short cuts.
// Queries escalate through levels of contacts instead of expanding rings
// of flooding.
//
// The package exposes a simulation facade over the full stack implemented
// under internal/: unit-disk topologies (with an incremental spatial-hash
// builder for large mobile networks), analytic mobility models, a
// discrete-event simulation engine, a scoped-DSDV proactive substrate, the
// CARD protocol (PM/EM selection, validation with local recovery,
// multi-level DSQ querying), and the flooding and ZRP-bordercasting
// baselines the paper compares against.
//
// Quick start:
//
//	sim, err := card.NewSimulation(card.NetworkConfig{
//	    Nodes: 500, Width: 710, Height: 710, TxRange: 50, Seed: 1,
//	}, card.Config{R: 3, MaxContactDist: 16, NoC: 5})
//	if err != nil { ... }
//	sim.SelectContacts()
//	res := sim.Query(12, 451)
//
// Advance(dt) steps simulated time on a drift-free maintenance schedule
// driven by the internal event engine. For bulk workloads, BatchQuery fans
// read-only queries across CPU cores with results bit-identical to a
// sequential loop:
//
//	sim.Advance(30)
//	results := sim.BatchQuery(sim.RandomPairs(500, 7))
//
// Ready-made large-scale scenarios (dense sensor fields, sparse rescue
// teams, citywide fleets at 1k-10k nodes) are available as presets:
//
//	sim, err := card.NewPresetSimulation("citywide-rwp-1k", 42)
//
// The experiment harness regenerating every table and figure of the paper
// lives in cmd/cardsim; see DESIGN.md for the engine layering and the
// per-experiment index.
package card
