package card

import "testing"

// TestAllocBudgetAdvance1k pins the steady-state allocation cost of one
// engine tick at the 1k scale. The scenario deliberately minimizes real
// protocol work — static nodes, dirty maintenance, serial rounds — so
// what remains per Advance(period) is the fixed machinery: the event-queue
// reschedule, the (empty-diff) topology refresh, the oracle epoch advance
// and the restricted round over the below-NoC stragglers. The flat-slab
// contact tables and the reused maintainer/walk scratch are what keep this
// figure flat; before them, every round paid O(N) table and path churn.
//
// The budget is allocations per tick, not bytes: a steady state that
// allocates proportionally to N (or to NoC·N paths) fails loudly here
// long before it shows up as GC pressure at 100k.
func TestAllocBudgetAdvance1k(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	sim, err := NewSimulation(NetworkConfig{
		Nodes: 1000, Width: 1500, Height: 1500, TxRange: 100,
		DirtyMaintenance: true, Seed: 9,
	}, Config{R: 2, MaxContactDist: 10, NoC: 6, Depth: 2, ValidatePeriod: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.SelectContacts()
	sim.Engine().SetMaintainWorkers(1)
	period := sim.Config().ValidatePeriod
	// Warm up: let retrying walkers exhaust their fresh randomness churn
	// and every reusable buffer reach its steady capacity.
	for i := 0; i < 5; i++ {
		sim.Advance(period)
	}
	got := testing.AllocsPerRun(20, func() {
		sim.Advance(period)
	})
	// Steady-state ticks on this scenario measure ~3 allocations (the
	// event-queue reschedule plus walk-retry leftovers). The budget
	// leaves slack for toolchain drift but sits three orders of magnitude
	// below the ~N·NoC the pre-slab representation paid.
	const budget = 50
	t.Logf("allocs per 1k-node tick: %.1f (budget %d)", got, budget)
	if got > budget {
		t.Errorf("steady-state tick allocates %.1f times, budget %d", got, budget)
	}
}

// TestAllocBudgetQuietAdvance10k pins the quiet-refresh machinery the 1M
// preset leans on: random-waypoint nodes inside their synchronized
// initial dwell, so every tick runs the full lazy stack — StepTo with an
// empty moved list, UpdateDirtyMasked's empty-diff early-out, the
// deficit∪dirty round list over the stragglers — against reused scratch:
// the expandChanges BFS queue and stamps, the dirtyAcc/deficit/roundSet
// bitsets and the round-list slice all persist across refreshes. A leak
// of any of them (or a fallback onto an O(N) scan allocating per tick)
// breaks the budget at 10k long before the 1M preset feels it.
func TestAllocBudgetQuietAdvance10k(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	sim, err := NewSimulation(NetworkConfig{
		Nodes: 10000, Width: 4200, Height: 4200, TxRange: 100,
		Mobility: RandomWaypoint, MinSpeed: 1, MaxSpeed: 19, Pause: 600,
		DirtyMaintenance: true, Seed: 9,
	}, Config{R: 2, MaxContactDist: 10, NoC: 8, Depth: 3, ValidatePeriod: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.SelectContacts()
	sim.Engine().SetMaintainWorkers(1)
	period := sim.Config().ValidatePeriod
	for i := 0; i < 5; i++ {
		sim.Advance(period)
	}
	got := testing.AllocsPerRun(20, func() {
		sim.Advance(period)
	})
	const budget = 50
	t.Logf("allocs per quiet 10k-node tick: %.1f (budget %d)", got, budget)
	if got > budget {
		t.Errorf("quiet steady-state tick allocates %.1f times, budget %d", got, budget)
	}
}
